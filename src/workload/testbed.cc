#include "workload/testbed.h"

#include "common/logging.h"

namespace spongefiles::workload {

Testbed::Testbed(const TestbedConfig& config) {
  cluster::ClusterConfig cc;
  cc.num_nodes = config.num_nodes;
  cc.nodes_per_rack = config.nodes_per_rack;
  if (config.oversubscription > 0) {
    cc.network.cross_rack_bandwidth =
        static_cast<double>(config.nodes_per_rack) * cc.network.bandwidth /
        config.oversubscription;
  }
  cc.node.physical_memory = config.node_memory;
  cc.node.map_slots = 2;
  cc.node.reduce_slots = 1;
  cc.node.heap_per_slot = config.heap_per_slot;
  cc.node.sponge_memory = config.sponge_memory;
  cc.node.pinned_memory = config.pinned_memory;
  cc.node.ssd = config.ssd;
  if (config.shard_projection == ShardProjection::kNode) {
    sharding_ = std::make_unique<sim::Sharding>(
        &engine_, sim::NodeShardPlan(config.num_nodes, cc.network.latency),
        config.shard_threads);
  } else if (config.shard_projection == ShardProjection::kRack) {
    std::vector<size_t> rack_of;
    rack_of.reserve(config.num_nodes);
    for (size_t i = 0; i < config.num_nodes; ++i) {
      rack_of.push_back(i / config.nodes_per_rack);
    }
    const size_t num_racks = rack_of.empty() ? 1 : rack_of.back() + 1;
    sharding_ = std::make_unique<sim::Sharding>(
        &engine_,
        sim::RackShardPlan(rack_of, num_racks,
                           cc.network.latency +
                               cc.network.cross_rack_latency),
        config.shard_threads);
  }
  cluster_ = std::make_unique<cluster::Cluster>(&engine_, cc);
  dfs_ = std::make_unique<cluster::Dfs>(cluster_.get());
  env_ = std::make_unique<sponge::SpongeEnv>(cluster_.get(), dfs_.get(),
                                             config.sponge, config.pool);
  tracker_ = std::make_unique<mapred::JobTracker>(env_.get(), dfs_.get());
  // One tracker poll so the free list exists before any job runs, then
  // keep the services alive for the duration.
  env_->tracker().Start();
  env_->StartServices();
  engine_.RunUntil(engine_.now() + Millis(10));
}

Testbed::~Testbed() {
  // Reclaim the service loops (tracker polls, GC sweeps) and any frames
  // parked on hung servers while the cluster objects they reference are
  // still alive; the engine member itself is destroyed last.
  engine_.DrainDetached();
}

Result<mapred::JobResult> Testbed::RunJob(
    mapred::JobConfig config, std::optional<mapred::JobConfig> background,
    std::vector<mapred::TaskStats>* background_tasks) {
  Result<mapred::JobResult> result = mapred::JobResult{};
  bool main_done = false;
  bool background_done = !background.has_value();

  std::shared_ptr<bool> background_cancel;
  if (background.has_value()) {
    if (!background->cancel) {
      background->cancel = std::make_shared<bool>(false);
    }
    background_cancel = background->cancel;
  }

  auto run_main = [](Testbed* bed, mapred::JobConfig job,
                     Result<mapred::JobResult>* out, bool* done,
                     std::shared_ptr<bool> cancel_background) -> sim::Task<> {
    *out = co_await bed->tracker().Run(std::move(job));
    *done = true;
    if (cancel_background != nullptr) *cancel_background = true;
  };
  auto run_background = [](Testbed* bed, mapred::JobConfig job,
                           std::vector<mapred::TaskStats>* tasks,
                           bool* done) -> sim::Task<> {
    auto finished = co_await bed->tracker().Run(std::move(job));
    if (finished.ok() && tasks != nullptr) {
      for (auto& stats : finished->map_tasks) {
        if (stats.completed) tasks->push_back(stats);
      }
    }
    *done = true;
  };

  engine_.Spawn(run_main(this, std::move(config), &result, &main_done,
                         background_cancel));
  if (background.has_value()) {
    // Submitted right after the measured job, so its tasks fill whatever
    // slots the measured job leaves idle.
    engine_.Spawn(run_background(this, std::move(*background),
                                 background_tasks, &background_done));
  }
  // The sponge services (tracker polls, GC sweeps) run forever, so the
  // event queue never drains; advance time until both jobs finish.
  const SimTime deadline = engine_.now() + Minutes(24 * 60.0);
  while (!(main_done && background_done)) {
    SPONGE_CHECK(engine_.now() < deadline) << "job exceeded one day";
    engine_.RunUntil(engine_.now() + Seconds(10));
  }
  return result;
}

}  // namespace spongefiles::workload
