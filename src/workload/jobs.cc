#include "workload/jobs.h"

namespace spongefiles::workload {

namespace {

// The classic MapReduce exact-median plan: the map phase emits each value
// as its own (zero-padded, hence lexicographically numeric) key, the
// framework's sort/merge delivers values to the single reduce task in
// order, and the reducer streams to the middle element. The total count
// comes from the map phase's record counter (a stock Hadoop feature), so
// no reduce-side buffering is needed — the only spilling is the
// framework's own shuffle/merge spilling, which is exactly what Table 2
// reports (spilled bytes ~= input bytes for the SpongeFile run).
class StreamingMedianReducer : public mapred::Reducer {
 public:
  explicit StreamingMedianReducer(uint64_t total_count)
      : target_((total_count == 0 ? 0 : total_count - 1) / 2) {}

  sim::Task<Status> StartKey(std::string key) override {
    (void)key;
    co_return Status::OK();
  }
  sim::Task<Status> AddValue(mapred::Record value) override {
    if (index_ == target_) median_ = value.number;
    ++index_;
    co_return Status::OK();
  }
  sim::Task<Status> FinishKey() override { co_return Status::OK(); }
  sim::Task<Status> Finish() override {
    mapred::Record out;
    out.key = "median";
    out.number = median_;
    ctx_->output->push_back(std::move(out));
    co_return Status::OK();
  }

 private:
  uint64_t target_;
  uint64_t index_ = 0;
  double median_ = 0;
};

std::string PaddedKey(double number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(number));
  return buf;
}

}  // namespace

mapred::JobConfig MakeMedianJob(NumbersDataset* input,
                                mapred::SpillMode spill_mode) {
  mapred::JobConfig config;
  config.name = "median";
  config.input = input;
  config.num_reducers = 1;
  config.spill_mode = spill_mode;
  config.map_fn = [](const mapred::Record& in,
                     std::vector<mapred::Record>* out) {
    mapred::Record r = in;
    r.key = PaddedKey(in.number);
    out->push_back(std::move(r));
  };
  uint64_t count = input->config().count;
  config.reducer_factory = [count] {
    return std::make_unique<StreamingMedianReducer>(count);
  };
  return config;
}

mapred::JobConfig MakeAnchortextJob(WebDataset* input,
                                    mapred::SpillMode spill_mode, size_t k,
                                    int num_reducers,
                                    uint64_t projected_size) {
  pig::GroupByQuery query;
  query.name = "frequent-anchortext";
  query.input = input;
  query.num_reducers = num_reducers;
  query.spill_mode = spill_mode;
  query.group_key = [](const mapred::Record& page) {
    return page.fields[1];  // language
  };
  query.project = [projected_size](const mapred::Record& page) {
    // Keep only the anchortext terms; drop the bulky crawl metadata.
    mapred::Record out;
    out.fields.assign(page.fields.begin() + 2, page.fields.end());
    out.size = projected_size;
    return out;
  };
  query.udf_factory = [k] { return std::make_unique<pig::TopKUdf>(k); };
  mapred::JobConfig config = pig::Compile(query);
  // Pig's interpreted tuple pipeline costs far more CPU per record than
  // the raw MapReduce path; with realistic per-tuple costs the SpongeFile
  // prefetch/async machinery gets computation to overlap transfers with
  // (section 3.1.2).
  config.map_cpu_per_record = Micros(30);
  config.reduce_cpu_per_record = Micros(60);
  // English is by far the largest group; give it a reduce of its own (the
  // paper's straggling reduce) and spread the rest.
  config.partitioner = [](const mapred::Record& record, int reducers) {
    if (record.key == "english") return size_t{0};
    uint64_t h = 1469598103934665603ull;
    for (char c : record.key) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
    if (reducers <= 1) return size_t{0};
    return static_cast<size_t>(
        1 + h % static_cast<uint64_t>(reducers - 1));
  };
  return config;
}

mapred::JobConfig MakeSpamQuantilesJob(WebDataset* input,
                                       mapred::SpillMode spill_mode,
                                       int num_reducers) {
  pig::GroupByQuery query;
  query.name = "spam-quantiles";
  query.input = input;
  query.num_reducers = num_reducers;
  query.spill_mode = spill_mode;
  query.group_key = [](const mapred::Record& page) {
    return page.fields[0];  // domain
  };
  // Deliberately no projection: the full crawl row rides along.
  query.udf_factory = [] {
    return std::make_unique<pig::SpamQuantilesUdf>();
  };
  mapred::JobConfig config = pig::Compile(query);
  config.map_cpu_per_record = Micros(30);
  config.reduce_cpu_per_record = Micros(60);
  std::string giant = WebDataset::DomainName(0);
  config.partitioner = [giant](const mapred::Record& record, int reducers) {
    if (record.key == giant) return size_t{0};
    uint64_t h = 1469598103934665603ull;
    for (char c : record.key) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
    if (reducers <= 1) return size_t{0};
    return static_cast<size_t>(
        1 + h % static_cast<uint64_t>(reducers - 1));
  };
  return config;
}

mapred::JobConfig MakeGrepJob(ScanDataset* input,
                              std::shared_ptr<bool> cancel,
                              double task_cpu_seconds) {
  mapred::JobConfig config;
  config.name = "grep";
  config.input = input;
  config.map_fn = [](const mapred::Record&, std::vector<mapred::Record>*) {};
  config.cancel = std::move(cancel);
  // The per-task CPU comes from scanning its 128 MB split.
  config.map_scan_bandwidth =
      128.0 * 1024 * 1024 / task_cpu_seconds;
  return config;
}

}  // namespace spongefiles::workload
