#ifndef SPONGEFILES_WORKLOAD_JOBS_H_
#define SPONGEFILES_WORKLOAD_JOBS_H_

#include <memory>
#include <string>

#include "mapred/job.h"
#include "pig/query.h"
#include "workload/webdata.h"

namespace spongefiles::workload {

// Builders for the paper's three evaluation jobs (section 4.2.1) plus the
// background contention job. Each returns a JobConfig ready for
// JobTracker::Run; callers set spill_mode per experiment.

// The MapReduce job: exact median of the numbers dataset through a single
// reduce task (inter-job skew: one task gets the entire ~10 GB input).
mapred::JobConfig MakeMedianJob(NumbersDataset* input,
                                mapred::SpillMode spill_mode);

// "Frequent Anchortext": group pages by language, top-k anchortext terms
// per language (holistic UDF over skewed groups). The map side projects
// pages down to their anchortext (the well-written part of this query);
// English is the straggling group. The custom partitioner isolates the
// giant group on partition 0, mirroring the paper's single overloaded
// reduce.
mapred::JobConfig MakeAnchortextJob(WebDataset* input,
                                    mapred::SpillMode spill_mode,
                                    size_t k = 10, int num_reducers = 8,
                                    uint64_t projected_size = 4096);

// "Spam Quantiles": group pages by domain, spam-score quantiles per domain
// (holistic UDF with internal state, no projection — full 10 KB tuples
// shuffle and fill the bags). The rank-0 domain (~30% of the data) is the
// straggling group.
mapred::JobConfig MakeSpamQuantilesJob(WebDataset* input,
                                       mapred::SpillMode spill_mode,
                                       int num_reducers = 8);

// The background "grep" job: a map-only scan over `input` that saturates
// idle map slots and the disks under them. `cpu_seconds_per_task` tunes
// per-task runtime (~16 s in the paper's cluster).
mapred::JobConfig MakeGrepJob(ScanDataset* input,
                              std::shared_ptr<bool> cancel,
                              double task_cpu_seconds = 14.0);

}  // namespace spongefiles::workload

#endif  // SPONGEFILES_WORKLOAD_JOBS_H_
