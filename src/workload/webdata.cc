#include "workload/webdata.h"

#include <algorithm>

namespace spongefiles::workload {

namespace {
constexpr uint64_t kSplitBytes = cluster::Dfs::kBlockSize;  // 128 MB
}  // namespace

std::string WebDataset::DomainName(size_t rank) {
  return "domain" + std::to_string(rank) + ".com";
}

std::string WebDataset::LanguageName(size_t index) {
  if (index == 0) return "english";
  static const char* kNames[] = {"french",  "german",   "spanish",
                                 "italian", "japanese", "korean",
                                 "arabic",  "hindi",    "dutch"};
  if (index - 1 < sizeof(kNames) / sizeof(kNames[0])) {
    return kNames[index - 1];
  }
  return "lang" + std::to_string(index);
}

WebDataset::WebDataset(cluster::Dfs* dfs, std::string name,
                       const WebDatasetConfig& config)
    : dfs_(dfs), name_(std::move(name)), config_(config) {
  domain_sampler_ = std::make_shared<ZipfSampler>(config.num_domains,
                                                  config.domain_zipf);
  term_sampler_ =
      std::make_shared<ZipfSampler>(config.vocabulary, config.term_zipf);
  records_per_split_ = kSplitBytes / config.record_size;
  uint64_t total_records = config.total_bytes / config.record_size;
  num_splits_ = static_cast<size_t>(
      (total_records + records_per_split_ - 1) / records_per_split_);
  (void)dfs_->CreateFile(name_, static_cast<uint64_t>(num_splits_) *
                                    kSplitBytes);
}

std::vector<mapred::Record> WebDataset::GenerateSplit(size_t index) const {
  Rng rng(config_.seed * 1000003 + index);
  std::vector<mapred::Record> records;
  records.reserve(records_per_split_);
  for (uint64_t i = 0; i < records_per_split_; ++i) {
    mapred::Record page;
    size_t domain = domain_sampler_->Sample(rng);
    size_t language;
    if (rng.NextDouble() < config_.english_fraction) {
      language = 0;
    } else {
      language = 1 + rng.Uniform(config_.num_languages - 1);
    }
    page.fields.reserve(2 + config_.terms_per_page);
    page.fields.push_back(DomainName(domain));
    page.fields.push_back(LanguageName(language));
    for (size_t t = 0; t < config_.terms_per_page; ++t) {
      page.fields.push_back("term" +
                            std::to_string(term_sampler_->Sample(rng)));
    }
    page.number = rng.NextDouble();  // spam score
    page.size = config_.record_size;
    records.push_back(std::move(page));
  }
  return records;
}

std::vector<mapred::InputSplit> WebDataset::Splits() {
  std::vector<mapred::InputSplit> splits;
  splits.reserve(num_splits_);
  for (size_t s = 0; s < num_splits_; ++s) {
    mapred::InputSplit split;
    split.dfs_file = name_;
    split.offset = s * kSplitBytes;
    split.bytes = kSplitBytes;
    const WebDataset* self = this;
    split.generate = [self, s]() { return self->GenerateSplit(s); };
    splits.push_back(std::move(split));
  }
  return splits;
}

NumbersDataset::NumbersDataset(cluster::Dfs* dfs, std::string name,
                               const NumbersDatasetConfig& config)
    : dfs_(dfs), name_(std::move(name)), config_(config) {
  records_per_split_ = kSplitBytes / config.record_size;
  num_splits_ = static_cast<size_t>(
      (config.count + records_per_split_ - 1) / records_per_split_);
  (void)dfs_->CreateFile(name_, static_cast<uint64_t>(num_splits_) *
                                    kSplitBytes);
}

std::vector<mapred::InputSplit> NumbersDataset::Splits() {
  std::vector<mapred::InputSplit> splits;
  splits.reserve(num_splits_);
  for (size_t s = 0; s < num_splits_; ++s) {
    mapred::InputSplit split;
    split.dfs_file = name_;
    split.offset = s * kSplitBytes;
    split.bytes = kSplitBytes;
    uint64_t first = s * records_per_split_;
    uint64_t last = std::min(config_.count, first + records_per_split_);
    uint64_t record_size = config_.record_size;
    uint64_t count = config_.count;
    uint64_t seed = config_.seed;
    split.generate = [first, last, record_size, count, seed]() {
      std::vector<mapred::Record> records;
      records.reserve(last - first);
      // A value permutation via an affine bijection modulo a prime
      // p >= count, with cycle walking back into [0, count): every value
      // 0..count-1 appears exactly once, in scattered order. Falls back to
      // the identity for counts beyond the prime.
      constexpr uint64_t kPrime = 1000003;
      const uint64_t a = 48271 + seed % 1000;  // < p, nonzero
      const uint64_t c = seed % kPrime;
      for (uint64_t i = first; i < last; ++i) {
        mapred::Record r;
        uint64_t x = i;
        if (count <= kPrime) {
          do {
            x = static_cast<uint64_t>(
                (static_cast<unsigned __int128>(x) * a + c) % kPrime);
          } while (x >= count);
        }
        r.number = static_cast<double>(x);
        r.size = record_size;
        records.push_back(std::move(r));
      }
      return records;
    };
    splits.push_back(std::move(split));
  }
  return splits;
}

ScanDataset::ScanDataset(cluster::Dfs* dfs, std::string name,
                         uint64_t total_bytes)
    : name_(std::move(name)), total_bytes_(total_bytes) {
  (void)dfs->CreateFile(name_, total_bytes);
}

std::vector<mapred::InputSplit> ScanDataset::Splits() {
  std::vector<mapred::InputSplit> splits;
  uint64_t offset = 0;
  while (offset < total_bytes_) {
    mapred::InputSplit split;
    split.dfs_file = name_;
    split.offset = offset;
    split.bytes = std::min(kSplitBytes, total_bytes_ - offset);
    splits.push_back(std::move(split));
    offset += split.bytes;
  }
  return splits;
}

}  // namespace spongefiles::workload
