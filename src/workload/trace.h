#ifndef SPONGEFILES_WORKLOAD_TRACE_H_
#define SPONGEFILES_WORKLOAD_TRACE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/stats.h"

namespace spongefiles::workload {

// Synthesizes a month of production reduce-task input sizes with the
// qualitative properties of Figure 1: per-task inputs spanning ~8 orders
// of magnitude (bytes to ~105 GB, far beyond any node's memory), and
// within-job distributions whose unbiased skewness is heavy on both tails
// with a large fraction beyond +/-1.
struct TraceConfig {
  size_t num_jobs = 20000;
  uint64_t seed = 14;
  // Per-job reduce count: lognormal, clamped to [1, max_reduces].
  double reduces_mu = 3.0;
  double reduces_sigma = 1.5;
  size_t max_reduces = 2000;
  // Base per-task input size: lognormal around tens of MB.
  double size_mu = 17.0;    // e^17 ~ 24 MB
  double size_sigma = 2.5;  // heavy spread
  // Fraction of jobs with an extra heavy-tailed straggler group.
  double skewed_job_fraction = 0.5;
  double pareto_alpha = 0.9;
  uint64_t max_task_bytes = 105ull * 1024 * 1024 * 1024;
};

struct TraceJob {
  std::vector<double> reduce_input_bytes;
  double average_input() const;
  double skewness() const;  // unbiased estimator over task inputs
};

class TraceSynthesizer {
 public:
  explicit TraceSynthesizer(const TraceConfig& config) : config_(config) {}

  std::vector<TraceJob> Generate() const;

  // The three curves of Figure 1, as CDF point sets:
  // all reduce-task inputs, per-job average inputs, per-job skewness.
  struct Figure1 {
    std::vector<CdfPoint> task_inputs;
    std::vector<CdfPoint> job_average_inputs;
    std::vector<CdfPoint> job_skewness;
  };
  Figure1 BuildFigure1(size_t cdf_points = 40) const;

 private:
  TraceConfig config_;
};

}  // namespace spongefiles::workload

#endif  // SPONGEFILES_WORKLOAD_TRACE_H_
