#include "workload/trace.h"

#include <algorithm>
#include <cmath>

namespace spongefiles::workload {

double TraceJob::average_input() const {
  return Mean(reduce_input_bytes);
}

double TraceJob::skewness() const {
  return UnbiasedSkewness(reduce_input_bytes);
}

std::vector<TraceJob> TraceSynthesizer::Generate() const {
  Rng rng(config_.seed);
  std::vector<TraceJob> jobs;
  jobs.reserve(config_.num_jobs);
  for (size_t j = 0; j < config_.num_jobs; ++j) {
    TraceJob job;
    size_t reduces = static_cast<size_t>(std::clamp(
        rng.LogNormal(config_.reduces_mu, config_.reduces_sigma), 1.0,
        static_cast<double>(config_.max_reduces)));
    job.reduce_input_bytes.reserve(reduces);
    // Per-job base scale, so jobs differ from each other (inter-job skew).
    double job_scale = rng.LogNormal(0.0, 1.0);
    for (size_t t = 0; t < reduces; ++t) {
      double bytes = job_scale *
                     rng.LogNormal(config_.size_mu, config_.size_sigma);
      job.reduce_input_bytes.push_back(std::min(
          bytes, static_cast<double>(config_.max_task_bytes)));
    }
    // Half the jobs get a hot-key straggler: one task's input inflated by
    // a Pareto factor (the "millions of anchortexts for one site" effect).
    // A minority are inflated on the opposite side (all-but-one large),
    // producing the negative-skew tail of Figure 1(b).
    if (rng.NextDouble() < config_.skewed_job_fraction && reduces >= 3) {
      double u = rng.NextDouble();
      double factor =
          std::pow(1.0 - u, -1.0 / config_.pareto_alpha);  // Pareto >= 1
      size_t victim = rng.Uniform(reduces);
      if (rng.NextDouble() < 0.25) {
        // Negative skew: every task but one is inflated.
        for (size_t t = 0; t < reduces; ++t) {
          if (t != victim) {
            job.reduce_input_bytes[t] = std::min(
                job.reduce_input_bytes[t] * factor,
                static_cast<double>(config_.max_task_bytes));
          }
        }
      } else {
        job.reduce_input_bytes[victim] = std::min(
            job.reduce_input_bytes[victim] * factor,
            static_cast<double>(config_.max_task_bytes));
      }
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TraceSynthesizer::Figure1 TraceSynthesizer::BuildFigure1(
    size_t cdf_points) const {
  std::vector<TraceJob> jobs = Generate();
  std::vector<double> all_tasks;
  std::vector<double> averages;
  std::vector<double> skews;
  for (const TraceJob& job : jobs) {
    all_tasks.insert(all_tasks.end(), job.reduce_input_bytes.begin(),
                     job.reduce_input_bytes.end());
    averages.push_back(job.average_input());
    if (job.reduce_input_bytes.size() >= 3) {
      skews.push_back(job.skewness());
    }
  }
  Figure1 fig;
  fig.task_inputs = EmpiricalCdf(std::move(all_tasks), cdf_points);
  fig.job_average_inputs = EmpiricalCdf(std::move(averages), cdf_points);
  fig.job_skewness = EmpiricalCdf(std::move(skews), cdf_points);
  return fig;
}

}  // namespace spongefiles::workload
