#ifndef SPONGEFILES_WORKLOAD_TESTBED_H_
#define SPONGEFILES_WORKLOAD_TESTBED_H_

#include <memory>
#include <optional>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "mapred/job_tracker.h"
#include "sim/engine.h"
#include "sim/parallel.h"
#include "sponge/sponge_env.h"
#include "workload/jobs.h"

namespace spongefiles::workload {

// How the simulated cluster maps onto engine lanes (DESIGN.md §13).
// kNone keeps the legacy single-queue engine — the default, bit-exact old
// behaviour. kNode and kRack shard the event loop by node / by rack; with
// shard_threads == 0 the sharded schedule runs serially (--engine=seq, the
// canonical reference), with shard_threads > 0 phase A runs on a thread
// pool (--engine=par, byte-identical to seq by construction).
enum class ShardProjection { kNone, kNode, kRack };

// The evaluation testbed of section 4.2.2: 30 nodes in one rack, two map
// slots and one reduce slot per node, 1 GB heaps, 1 GB sponge memory, and
// the microbenchmark machines' disk/network characteristics. Experiments
// vary node memory (4 vs 16 GB), sponge size, and heap size.
struct TestbedConfig {
  size_t num_nodes = 30;
  // 40 keeps the default testbed single-rack like the paper's; smaller
  // values split it into racks (tracker shards, rack-local spill rungs).
  size_t nodes_per_rack = 40;
  // 0 leaves the core non-blocking; > 0 meters cross-rack transfers at
  // nodes_per_rack * bandwidth / oversubscription per rack uplink.
  double oversubscription = 0;
  uint64_t node_memory = 16ull * 1024 * 1024 * 1024;
  uint64_t heap_per_slot = 1024ull * 1024 * 1024;
  uint64_t sponge_memory = 1024ull * 1024 * 1024;
  uint64_t pinned_memory = 0;
  // Per-node local SSD for the cascade's SSD rung; capacity 0 (default)
  // means no SSD — every placement identical to the pre-SSD testbed.
  cluster::SsdConfig ssd;
  sponge::SpongeConfig sponge;
  // Pool shape: size classes, per-level lock model. `pool.flat = true` is
  // the pre-tiered allocator (one global free list, one global lock) kept
  // as the perf baseline for bench_selfperf --pool=flat.
  sponge::ChunkPoolConfig pool;
  // Engine sharding. The lookahead is derived from the network config:
  // one-way latency for the node projection, latency + cross-rack latency
  // for the rack projection (the minimum cross-shard message delay each
  // projection guarantees).
  ShardProjection shard_projection = ShardProjection::kNone;
  unsigned shard_threads = 0;
};

// Owns the full simulated stack and provides synchronous helpers that
// spin the event loop (one Testbed per experiment run).
class Testbed {
 public:
  explicit Testbed(const TestbedConfig& config = {});
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  sim::Engine& engine() { return engine_; }
  cluster::Cluster& cluster() { return *cluster_; }
  cluster::Dfs& dfs() { return *dfs_; }
  sponge::SpongeEnv& env() { return *env_; }
  mapred::JobTracker& tracker() { return *tracker_; }

  // Runs `config` to completion and returns its result. When
  // `background` is set, that job is submitted right after the measured
  // one (soaking up the idle slots, per section 4.2.3) and cancelled once
  // the measured job finishes; its completed task stats are appended to
  // `background_tasks` when provided.
  Result<mapred::JobResult> RunJob(
      mapred::JobConfig config,
      std::optional<mapred::JobConfig> background = std::nullopt,
      std::vector<mapred::TaskStats>* background_tasks = nullptr);

 private:
  sim::Engine engine_;
  // Declared right after the engine (so it outlives every component that
  // might emit metrics or traces during teardown) and constructed before
  // the cluster: ConfigureShards must precede all scheduling, and the
  // per-lane state in Network and SpongeEnv is sized off lane_count().
  std::unique_ptr<sim::Sharding> sharding_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Dfs> dfs_;
  std::unique_ptr<sponge::SpongeEnv> env_;
  std::unique_ptr<mapred::JobTracker> tracker_;
};

}  // namespace spongefiles::workload

#endif  // SPONGEFILES_WORKLOAD_TESTBED_H_
