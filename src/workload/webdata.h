#ifndef SPONGEFILES_WORKLOAD_WEBDATA_H_
#define SPONGEFILES_WORKLOAD_WEBDATA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/dfs.h"
#include "common/random.h"
#include "mapred/job.h"

namespace spongefiles::workload {

// Synthetic stand-in for the paper's 10 GB web-crawl sample: complete
// samples of 100 domains with the largest domain scaled up to its real
// size (~30% of the data), a skewed language mix dominated by English,
// Zipf-distributed anchortext terms, and uniform spam scores. Each page
// record carries `record_size` logical bytes (URL + metadata + anchortext
// of a real crawl row).
//
// Record layout: fields[0] = domain, fields[1] = language,
// fields[2..] = anchortext terms, number = spam score in [0, 1).
struct WebDatasetConfig {
  uint64_t total_bytes = 10ull * 1024 * 1024 * 1024;
  uint64_t record_size = 10ull * 1024;
  size_t num_domains = 100;
  double domain_zipf = 1.3;  // rank-1 domain holds ~30% of the pages
  // Language mix: english dominates (the straggling anchortext group).
  double english_fraction = 0.6;
  size_t num_languages = 10;
  size_t vocabulary = 20000;
  double term_zipf = 1.0;
  size_t terms_per_page = 6;
  uint64_t seed = 2014;
};

// An InputFormat whose splits deterministically synthesize page records;
// the backing DFS file provides IO timing and map placement.
class WebDataset : public mapred::InputFormat {
 public:
  // Creates the DFS file `name` (total_bytes) and prepares split metadata.
  WebDataset(cluster::Dfs* dfs, std::string name,
             const WebDatasetConfig& config);

  std::vector<mapred::InputSplit> Splits() override;

  // Name of the rank-`rank` domain (rank 0 is the giant one).
  static std::string DomainName(size_t rank);
  static std::string LanguageName(size_t index);  // 0 is "english"

  const WebDatasetConfig& config() const { return config_; }
  uint64_t records_per_split() const { return records_per_split_; }
  size_t num_splits() const { return num_splits_; }

  // Generates one split's records (used by Splits(); exposed for tests).
  std::vector<mapred::Record> GenerateSplit(size_t index) const;

 private:
  cluster::Dfs* dfs_;
  std::string name_;
  WebDatasetConfig config_;
  std::shared_ptr<ZipfSampler> domain_sampler_;
  std::shared_ptr<ZipfSampler> term_sampler_;
  uint64_t records_per_split_ = 0;
  size_t num_splits_ = 0;
};

// The median job's input: `count` numbers, each carried by a record of
// `record_size` logical bytes. Values are a deterministic permutation so
// the exact median is known: with count = 2k+1 values 0..2k, the median is
// k.
struct NumbersDatasetConfig {
  uint64_t count = 1000001;
  uint64_t record_size = 10ull * 1024;
  uint64_t seed = 99;
};

class NumbersDataset : public mapred::InputFormat {
 public:
  NumbersDataset(cluster::Dfs* dfs, std::string name,
                 const NumbersDatasetConfig& config);

  std::vector<mapred::InputSplit> Splits() override;

  double expected_median() const {
    return static_cast<double>((config_.count - 1) / 2);
  }
  const NumbersDatasetConfig& config() const { return config_; }

 private:
  cluster::Dfs* dfs_;
  std::string name_;
  NumbersDatasetConfig config_;
  uint64_t records_per_split_ = 0;
  size_t num_splits_ = 0;
};

// A pure scan input for the background grep job: `total_bytes` of data,
// no records (the map function only reads).
class ScanDataset : public mapred::InputFormat {
 public:
  ScanDataset(cluster::Dfs* dfs, std::string name, uint64_t total_bytes);

  std::vector<mapred::InputSplit> Splits() override;

 private:
  std::string name_;
  uint64_t total_bytes_;
};

}  // namespace spongefiles::workload

#endif  // SPONGEFILES_WORKLOAD_WEBDATA_H_
