#include "sponge/memory_tracker.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace spongefiles::sponge {

MemoryTracker::MemoryTracker(sim::Engine* engine, cluster::Network* network,
                             std::vector<SpongeServer*>* servers,
                             size_t home_node,
                             const MemoryTrackerConfig& config)
    : engine_(engine),
      network_(network),
      servers_(servers),
      home_node_(home_node),
      config_(config) {}

void MemoryTracker::Start() {
  if (running_) return;
  running_ = true;
  engine_->Spawn(PollLoop());
}

sim::Task<> MemoryTracker::PollLoop() {
  while (!stopping_) {
    if (!down_ && !poll_paused_) co_await PollOnce();
    co_await engine_->Delay(config_.poll_period);
  }
  running_ = false;
}

sim::Task<> MemoryTracker::PollOnce() {
  static obs::Counter* const polls_counter =
      obs::Registry::Default().counter("sponge.tracker.polls");
  obs::SpanGuard span(&obs::Tracer::Default(), engine_, home_node_, 0,
                      "tracker", "tracker.poll");
  std::vector<FreeSpaceEntry> fresh;
  for (SpongeServer* server : *servers_) {
    if (!server->alive()) continue;
    if (server->node_id() != home_node_) {
      co_await network_->Rpc(home_node_, server->node_id(),
                             config_.rpc_message_bytes,
                             config_.rpc_message_bytes);
    }
    uint64_t free = server->free_bytes();
    if (free > 0) fresh.push_back({server->node_id(), free});
  }
  std::sort(fresh.begin(), fresh.end(),
            [](const FreeSpaceEntry& a, const FreeSpaceEntry& b) {
              if (a.free_bytes != b.free_bytes) {
                return a.free_bytes > b.free_bytes;
              }
              return a.node < b.node;
            });
  free_list_ = std::move(fresh);
  ++polls_completed_;
  polls_counter->Increment();
  span.Arg("entries", static_cast<uint64_t>(free_list_.size()));
}

sim::Task<Result<std::vector<FreeSpaceEntry>>> MemoryTracker::Query(
    size_t from_node) {
  static obs::Counter* const queries_counter =
      obs::Registry::Default().counter("sponge.tracker.queries");
  queries_counter->Increment();
  obs::SpanGuard span(&obs::Tracer::Default(), engine_, from_node, 0,
                      "tracker", "tracker.query");
  if (from_node != home_node_) {
    co_await network_->Rpc(from_node, home_node_, config_.rpc_message_bytes,
                           config_.rpc_message_bytes * 4);
  }
  if (down_) {
    // The caller paid the round trip only to find nobody home (in real
    // life a connection refusal / timeout).
    co_return Unavailable("memory tracker down");
  }
  co_return free_list_;
}

}  // namespace spongefiles::sponge
