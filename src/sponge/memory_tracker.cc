#include "sponge/memory_tracker.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/access.h"

namespace spongefiles::sponge {

namespace {

void SortFreeList(std::vector<FreeSpaceEntry>* list) {
  std::sort(list->begin(), list->end(),
            [](const FreeSpaceEntry& a, const FreeSpaceEntry& b) {
              if (a.free_bytes != b.free_bytes) {
                return a.free_bytes > b.free_bytes;
              }
              return a.node < b.node;
            });
}

}  // namespace

TrackerShard::TrackerShard(sim::Engine* engine, cluster::Network* network,
                           std::vector<SpongeServer*> members, size_t rack,
                           size_t num_racks,
                           const MemoryTrackerConfig* config)
    : engine_(engine),
      network_(network),
      members_(std::move(members)),
      rack_(rack),
      config_(config) {
  SPONGE_CHECK(!members_.empty()) << "rack " << rack << " has no servers";
  home_node_ = members_.front()->node_id();
  member_alive_.assign(members_.size(), 1);
  digests_.resize(num_racks);
  for (size_t r = 0; r < num_racks; ++r) digests_[r].rack = r;
}

sim::Task<> TrackerShard::PollOnce() {
  static obs::Counter* const polls_counter =
      obs::Registry::Default().counter("sponge.tracker.polls");
  obs::SpanGuard span(&obs::Tracer::Default(), engine_, home_node_, 0,
                      "tracker", "tracker.poll");
  span.Arg("rack", static_cast<uint64_t>(rack_));
  static obs::Counter* const deaths_counter =
      obs::Registry::Default().counter("sponge.tracker.deaths_detected");
  std::vector<FreeSpaceEntry> fresh;
  for (size_t i = 0; i < members_.size(); ++i) {
    SpongeServer* server = members_[i];
    // The failure detector's view of a remote node, not shared data
    // state: in a real deployment this is the poll RPC timing out.
    // lint: shard-ok(liveness observed via poll timeout, not shared data)
    if (!server->alive()) {
      // In real life this poll RPC would time out; the edge (server was
      // alive last round, is not now) is the shard detecting a fail-stop
      // crash. Fires the death listener exactly once per transition.
      if (member_alive_[i] != 0) {
        SIM_WRITE(engine_, this, "TrackerShard", "membership",
                  sim::AccessRecorder::RackDomain(rack_));
        member_alive_[i] = 0;
        deaths_counter->Increment();
        if (death_listener_) death_listener_(server->node_id());
      }
      continue;
    }
    SIM_WRITE(engine_, this, "TrackerShard", "membership",
              sim::AccessRecorder::RackDomain(rack_));
    member_alive_[i] = 1;
    // The poll is a request hop, the member filling in its free-byte
    // count, and a response hop (the same two Transfers Network::Rpc is
    // made of, so the timing is unchanged); the read sits between the
    // hops because that is when the member composes the response.
    if (server->node_id() != home_node_) {
      co_await network_->Transfer(home_node_, server->node_id(),
                                  config_->rpc_message_bytes);
    }
    SIM_READ(engine_, server, "SpongeServer", "pool",
             sim::AccessRecorder::NodeDomain(server->node_id()));
    // lint: shard-ok(poll response payload, read at the member between hops)
    uint64_t free = server->free_bytes();
    // lint: shard-ok(poll response payload, read at the member between hops)
    uint64_t free_bulk = server->free_bulk_bytes();
    if (server->node_id() != home_node_) {
      co_await network_->Transfer(server->node_id(), home_node_,
                                  config_->rpc_message_bytes);
    }
    if (free > 0) {
      fresh.push_back({server->node_id(), free, free_bulk, rack_});
    }
  }
  SIM_WRITE(engine_, this, "TrackerShard", "state",
            sim::AccessRecorder::RackDomain(rack_));
  SortFreeList(&fresh);
  rack_list_ = std::move(fresh);
  ++polls_completed_;
  polls_counter->Increment();

  // Rebuild this rack's own digest from the fresh list.
  RackDigest& own = digests_[rack_];
  own.version = polls_completed_;
  own.built_at = engine_->now();
  own.total_free = 0;
  own.top.clear();
  for (const FreeSpaceEntry& entry : rack_list_) {
    own.total_free += entry.free_bytes;
    if (own.top.size() < config_->digest_entries) own.top.push_back(entry);
  }
  span.Arg("entries", static_cast<uint64_t>(rack_list_.size()));
}

void TrackerShard::MergeDigest(const RackDigest& digest) {
  SIM_WRITE(engine_, this, "TrackerShard", "state",
            sim::AccessRecorder::RackDomain(rack_));
  if (digest.rack == rack_) return;  // own rack is always poll-fresh
  RackDigest& held = digests_[digest.rack];
  if (digest.version <= held.version) return;
  held = digest;
  ++digests_merged_;
}

std::vector<FreeSpaceEntry> TrackerShard::MergedView(SimTime now) const {
  std::vector<FreeSpaceEntry> view = rack_list_;
  for (const RackDigest& digest : digests_) {
    if (digest.rack == rack_ || digest.version == 0) continue;
    if (now - digest.built_at > config_->max_digest_age) continue;
    view.insert(view.end(), digest.top.begin(), digest.top.end());
  }
  SortFreeList(&view);
  return view;
}

ShardedMemoryTracker::ShardedMemoryTracker(
    sim::Engine* engine, cluster::Network* network,
    std::vector<SpongeServer*>* servers, const MemoryTrackerConfig& config)
    : engine_(engine), network_(network), config_(config) {
  size_t num_racks = network->num_racks();
  std::vector<std::vector<SpongeServer*>> by_rack(num_racks);
  for (SpongeServer* server : *servers) {
    by_rack[network->rack_of(server->node_id())].push_back(server);
  }
  shards_.reserve(num_racks);
  for (size_t r = 0; r < num_racks; ++r) {
    shards_.push_back(std::make_unique<TrackerShard>(
        engine, network, std::move(by_rack[r]), r, num_racks, &config_));
  }
}

void ShardedMemoryTracker::Start() {
  if (running_) return;
  running_ = true;
  for (auto& shard : shards_) engine_->Spawn(ShardPollLoop(shard.get()));
  if (shards_.size() > 1) engine_->Spawn(GossipLoop());
}

sim::Task<> ShardedMemoryTracker::ShardPollLoop(TrackerShard* shard) {
  while (!stopping_) {
    if (!shard->down() && !shard->poll_paused()) co_await shard->PollOnce();
    co_await engine_->Delay(config_.poll_period);
  }
}

sim::Task<> ShardedMemoryTracker::GossipLoop() {
  while (!stopping_) {
    co_await engine_->Delay(config_.gossip_period);
    if (stopping_) break;
    co_await GossipRound();
  }
}

uint64_t ShardedMemoryTracker::DigestWireBytes(
    const TrackerShard& shard) const {
  uint64_t bytes = 0;
  for (const RackDigest& digest : shard.digests()) {
    if (digest.version == 0) continue;
    bytes += config_.gossip_digest_bytes +
             config_.gossip_entry_bytes * digest.top.size();
  }
  return std::max<uint64_t>(bytes, config_.gossip_digest_bytes);
}

sim::Task<> ShardedMemoryTracker::Exchange(TrackerShard* a, TrackerShard* b) {
  static obs::Counter* const exchanges_counter =
      obs::Registry::Default().counter("sponge.tracker.gossip.exchanges");
  static obs::Counter* const digest_bytes_counter =
      obs::Registry::Default().counter("sponge.tracker.gossip.bytes");
  obs::SpanGuard span(&obs::Tracer::Default(), engine_, a->home_node(), 0,
                      "tracker", "tracker.gossip");
  span.Arg("peer_rack", static_cast<uint64_t>(b->rack()));
  // Zero-cost yield: each exchange initiation is its own event, anchored at
  // the initiating shard, rather than a continuation of the previous
  // exchange's completion (which ends at a *different* shard's home). The
  // parallel port sends exchange kick-offs as messages for the same reason.
  co_await engine_->Delay(0);
  // Full digest-set exchange (standard anti-entropy): both sides walk away
  // with the element-wise newest of the two tables. a's table is snapshotted
  // before the first hop (it is the request payload), each merge happens
  // when its message arrives at the destination shard, and the two
  // Transfers are exactly what Network::Rpc was made of, so the timing is
  // unchanged.
  SIM_READ(engine_, a, "TrackerShard", "state",
           sim::AccessRecorder::RackDomain(a->rack()));
  uint64_t request = DigestWireBytes(*a);
  std::vector<RackDigest> a_table = a->digests();
  co_await network_->Transfer(a->home_node(), b->home_node(), request);
  for (const RackDigest& digest : a_table) {
    if (digest.version > 0) b->MergeDigest(digest);
  }
  SIM_READ(engine_, b, "TrackerShard", "state",
           sim::AccessRecorder::RackDomain(b->rack()));
  uint64_t response = DigestWireBytes(*b);
  std::vector<RackDigest> b_table = b->digests();
  co_await network_->Transfer(b->home_node(), a->home_node(), response);
  for (const RackDigest& digest : b_table) {
    if (digest.version > 0) a->MergeDigest(digest);
  }
  exchanges_counter->Increment();
  digest_bytes_counter->Increment(request + response);
}

sim::Task<> ShardedMemoryTracker::GossipRound() {
  static obs::Counter* const rounds_counter =
      obs::Registry::Default().counter("sponge.tracker.gossip.rounds");
  const size_t num = shards_.size();
  if (num < 2) co_return;
  const size_t step = gossip_step_;
  gossip_step_ = gossip_step_ % (num - 1) + 1;
  for (size_t i = 0; i < num; ++i) {
    TrackerShard* a = shards_[i].get();
    TrackerShard* b = shards_[(i + step) % num].get();
    if (a->down() || b->down()) continue;
    if (a->gossip_partitioned() || b->gossip_partitioned()) continue;
    co_await Exchange(a, b);
  }
  ++gossip_rounds_;
  rounds_counter->Increment();
}

sim::Task<> ShardedMemoryTracker::PollOnce() {
  for (auto& shard : shards_) {
    if (!shard->down() && !shard->poll_paused()) co_await shard->PollOnce();
  }
  co_await GossipRound();
}

sim::Task<Result<std::vector<FreeSpaceEntry>>> ShardedMemoryTracker::Query(
    size_t from_node) {
  if (engine_->OnForeignLane(shards_[network_->rack_of(from_node)]
                                 ->home_node())) {
    const uint32_t home = engine_->current_lane();
    co_await engine_->HopToLane(0);
    Result<std::vector<FreeSpaceEntry>> result = co_await QueryBody(from_node);
    co_await engine_->HopToLane(home);
    co_return result;
  }
  co_return co_await QueryBody(from_node);
}

sim::Task<Result<std::vector<FreeSpaceEntry>>> ShardedMemoryTracker::QueryBody(
    size_t from_node) {
  static obs::Counter* const queries_counter =
      obs::Registry::Default().counter("sponge.tracker.queries");
  queries_counter->Increment();
  obs::SpanGuard span(&obs::Tracer::Default(), engine_, from_node, 0,
                      "tracker", "tracker.query");
  TrackerShard& shard = *shards_[network_->rack_of(from_node)];
  span.Arg("rack", static_cast<uint64_t>(shard.rack()));
  if (from_node != shard.home_node()) {
    // Always a rack-local hop: the shard home lives on the caller's rack.
    co_await network_->Rpc(from_node, shard.home_node(),
                           config_.rpc_message_bytes,
                           config_.rpc_message_bytes * 4);
  }
  if (shard.down()) {
    // The caller paid the round trip only to find nobody home (in real
    // life a connection refusal / timeout).
    co_return Unavailable("memory tracker shard down");
  }
  SIM_READ(engine_, &shard, "TrackerShard", "state",
           sim::AccessRecorder::RackDomain(shard.rack()));
  shard.RecordQuery();
  co_return shard.MergedView(engine_->now());
}

const std::vector<FreeSpaceEntry>& ShardedMemoryTracker::snapshot() const {
  snapshot_cache_.clear();
  for (const auto& shard : shards_) {
    snapshot_cache_.insert(snapshot_cache_.end(), shard->rack_list().begin(),
                           shard->rack_list().end());
  }
  SortFreeList(&snapshot_cache_);
  return snapshot_cache_;
}

uint64_t ShardedMemoryTracker::polls_completed() const {
  uint64_t min_polls = shards_.empty() ? 0 : shards_[0]->polls_completed();
  for (const auto& shard : shards_) {
    min_polls = std::min(min_polls, shard->polls_completed());
  }
  return min_polls;
}

void ShardedMemoryTracker::SetDown(bool down) {
  for (auto& shard : shards_) shard->SetDown(down);
}

bool ShardedMemoryTracker::down() const {
  for (const auto& shard : shards_) {
    if (!shard->down()) return false;
  }
  return !shards_.empty();
}

void ShardedMemoryTracker::SetPollPaused(bool paused) {
  for (auto& shard : shards_) shard->SetPollPaused(paused);
}

}  // namespace spongefiles::sponge
