#include "sponge/sponge_server.h"

#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/access.h"

namespace spongefiles::sponge {

namespace {

// The liveness flag is deliberately shared state: trackers and peers
// observe it as the stand-in for probe timeouts (see the shard-ok
// waivers at those sites), and the chaos controller writes it.
sim::AccessRecorder::Domain AliveDomain() {
  return sim::AccessRecorder::GlobalDomain(
      "failure-detector state: remote reads model probe timeouts, writes "
      "are fault injection");
}

obs::Counter* RpcCounter(const char* op) {
  static obs::Registry& registry = obs::Registry::Default();
  static obs::Counter* const alloc =
      registry.counter("sponge.server.rpcs", {{"op", "alloc"}});
  static obs::Counter* const write =
      registry.counter("sponge.server.rpcs", {{"op", "write"}});
  static obs::Counter* const read =
      registry.counter("sponge.server.rpcs", {{"op", "read"}});
  static obs::Counter* const free =
      registry.counter("sponge.server.rpcs", {{"op", "free"}});
  static obs::Counter* const liveness =
      registry.counter("sponge.server.rpcs", {{"op", "liveness"}});
  switch (op[0]) {
    case 'a': return alloc;
    case 'w': return write;
    case 'r': return read;
    case 'f': return free;
    default: return liveness;
  }
}

}  // namespace

SpongeServer::SpongeServer(sim::Engine* engine, cluster::Network* network,
                           TaskRegistry* registry, size_t node_id,
                           const ChunkPoolConfig& pool_config,
                           const SpongeServerConfig& config)
    : engine_(engine),
      network_(network),
      registry_(registry),
      node_id_(node_id),
      config_(config),
      pool_(std::make_unique<ChunkPool>(pool_config, engine)) {}

sim::Task<> SpongeServer::FaultPoint() {
  if (rpc_extra_delay_ > 0) co_await engine_->Delay(rpc_extra_delay_);
  // Loop: the server may be re-hung between this frame's wake-up being
  // scheduled and it actually running.
  while (hung_) {
    co_await hang_cleared_->Wait();
  }
}

void SpongeServer::SetHung(bool hung) {
  if (hung == hung_) return;
  hung_ = hung;
  if (hung) {
    if (hang_cleared_ != nullptr) {
      retired_hang_events_.push_back(std::move(hang_cleared_));
    }
    hang_cleared_ = std::make_unique<sim::Event>(engine_);
  } else if (hang_cleared_ != nullptr) {
    hang_cleared_->Set();
  }
}

bool SpongeServer::QuotaAllows(const ChunkOwner& owner) const {
  if (config_.quota_chunks_per_task == 0) return true;
  // Count by task id, not full owner identity: a task's replicas share its
  // quota — replication must not double a misbehaving task's footprint.
  // The pool keeps the per-task tally, so this no longer scans the pool.
  return pool_->HeldByTask(owner.task_id) < config_.quota_chunks_per_task;
}

// ---- cross-lane hop wrappers ----------------------------------------------
//
// Sharded engine only (OnForeignLane is constant-false otherwise): the
// operation executes at the global lane, which phase-exclusively may touch
// this server's pool even though the server's node lives on another worker
// lane. Payloads are detached at the boundary — a ByteRuns crossing lanes
// must not share buffers with state the source lane keeps mutating.

sim::Task<Result<ChunkHandle>> SpongeServer::RemoteAllocate(size_t from,
                                                            ChunkOwner owner,
                                                            uint64_t bytes) {
  if (engine_->OnForeignLane(node_id_)) {
    const uint32_t home = engine_->current_lane();
    co_await engine_->HopToLane(0);
    Result<ChunkHandle> result = co_await AllocateBody(from, owner, bytes);
    co_await engine_->HopToLane(home);
    co_return result;
  }
  co_return co_await AllocateBody(from, owner, bytes);
}

sim::Task<Status> SpongeServer::RemoteWrite(size_t from, ChunkHandle handle,
                                            ChunkOwner owner, ByteRuns data) {
  if (engine_->OnForeignLane(node_id_)) {
    const uint32_t home = engine_->current_lane();
    co_await engine_->HopToLane(0);
    // Detach on the global lane: phase B is exclusive, so reading the
    // source lane's buffers here cannot race with their owner.
    Status result =
        co_await WriteBody(from, handle, owner, data.Detached());
    data.Clear();
    co_await engine_->HopToLane(home);
    co_return result;
  }
  co_return co_await WriteBody(from, handle, owner, std::move(data));
}

sim::Task<Result<ByteRuns>> SpongeServer::RemoteRead(size_t from,
                                                     ChunkHandle handle,
                                                     ChunkOwner owner) {
  if (engine_->OnForeignLane(node_id_)) {
    const uint32_t home = engine_->current_lane();
    co_await engine_->HopToLane(0);
    Result<ByteRuns> result = co_await ReadBody(from, handle, owner);
    // Detach before carrying the payload home: the pool slot's buffers
    // stay with the server's lane.
    if (result.ok()) result = result.value().Detached();
    co_await engine_->HopToLane(home);
    co_return result;
  }
  co_return co_await ReadBody(from, handle, owner);
}

sim::Task<Status> SpongeServer::RemoteFree(size_t from, ChunkHandle handle,
                                           ChunkOwner owner) {
  if (engine_->OnForeignLane(node_id_)) {
    const uint32_t home = engine_->current_lane();
    co_await engine_->HopToLane(0);
    Status result = co_await FreeBody(from, handle, owner);
    co_await engine_->HopToLane(home);
    co_return result;
  }
  co_return co_await FreeBody(from, handle, owner);
}

sim::Task<bool> SpongeServer::RemoteIsTaskAlive(size_t from,
                                                uint64_t task_id) {
  if (engine_->OnForeignLane(node_id_)) {
    const uint32_t home = engine_->current_lane();
    co_await engine_->HopToLane(0);
    bool result = co_await IsTaskAliveBody(from, task_id);
    co_await engine_->HopToLane(home);
    co_return result;
  }
  co_return co_await IsTaskAliveBody(from, task_id);
}

// ---- operation bodies ------------------------------------------------------

sim::Task<Result<ChunkHandle>> SpongeServer::AllocateBody(size_t from,
                                                          ChunkOwner owner,
                                                          uint64_t bytes) {
  RpcCounter("alloc")->Increment();
  obs::SpanGuard span(&obs::Tracer::Default(), engine_, node_id_,
                      owner.task_id, "rpc", "rpc.alloc");
  span.Arg("from", static_cast<uint64_t>(from));
  // Request hop, server-side work, response hop: the two Transfers are
  // exactly what Network::Rpc was made of, so the timing is unchanged,
  // but the pool mutation now happens *at the server* (between the hops)
  // — an error response still pays the return trip.
  co_await network_->Transfer(from, node_id_, config_.rpc_message_bytes);
  co_await FaultPoint();
  SIM_READ(engine_, &alive_, "SpongeServer.alive", "flag", AliveDomain());
  Result<ChunkHandle> handle = Unavailable("sponge server down");
  if (alive_) {
    SIM_WRITE(engine_, this, "SpongeServer", "pool",
              sim::AccessRecorder::NodeDomain(node_id_));
    if (!QuotaAllows(owner)) {
      ++failed_allocations_;
      handle = ResourceExhausted("task over quota");
    } else {
      handle = pool_->Allocate(owner, bytes);
      if (handle.ok()) {
        ++remote_allocations_;
      } else {
        ++failed_allocations_;
      }
      // The RPC pays the pool-lock convoy it just experienced: the server
      // thread held (and possibly waited for) the level's lock.
      Duration lock_wait = pool_->TakeLockWait();
      if (lock_wait > 0) co_await engine_->Delay(lock_wait);
    }
  }
  co_await network_->Transfer(node_id_, from, config_.rpc_message_bytes);
  co_return handle;
}

sim::Task<Status> SpongeServer::WriteBody(size_t from, ChunkHandle handle,
                                          ChunkOwner owner, ByteRuns data) {
  RpcCounter("write")->Increment();
  obs::SpanGuard span(&obs::Tracer::Default(), engine_, node_id_,
                      owner.task_id, "rpc", "rpc.write");
  span.Arg("from", static_cast<uint64_t>(from));
  span.Arg("bytes", data.size());
  // The chunk payload travels over the network, then the server moves it
  // into the pool slot. The *simulated* server-side copy below still
  // charges time (the real system memcpys socket buffer -> pool segment),
  // but on the host the incoming ByteRuns already shares the caller's
  // buffers and the pool slot takes them by move — the double copy this
  // path used to do (payload into the RPC frame, then again into the pool
  // slot representation) is gone.
  co_await network_->Transfer(from, node_id_, data.size());
  co_await FaultPoint();
  SIM_READ(engine_, &alive_, "SpongeServer.alive", "flag", AliveDomain());
  if (!alive_) co_return Unavailable("sponge server down");
  SIM_WRITE(engine_, this, "SpongeServer", "pool",
            sim::AccessRecorder::NodeDomain(node_id_));
  auto holder = pool_->OwnerOf(handle);
  if (!holder.ok() || !(*holder == owner)) {
    co_return FailedPrecondition("chunk not owned by caller");
  }
  co_await engine_->Delay(
      TransferTime(data.size(), config_.server_copy_bandwidth));
  *pool_->chunk_data(handle) = std::move(data);
  co_return Status::OK();
}

sim::Task<Result<ByteRuns>> SpongeServer::ReadBody(size_t from,
                                                   ChunkHandle handle,
                                                   ChunkOwner owner) {
  RpcCounter("read")->Increment();
  obs::SpanGuard span(&obs::Tracer::Default(), engine_, node_id_,
                      owner.task_id, "rpc", "rpc.read");
  span.Arg("from", static_cast<uint64_t>(from));
  // Request message to the server.
  co_await network_->Transfer(from, node_id_, config_.rpc_message_bytes);
  co_await FaultPoint();
  SIM_READ(engine_, &alive_, "SpongeServer.alive", "flag", AliveDomain());
  if (!alive_) co_return Unavailable("sponge server down");
  SIM_READ(engine_, this, "SpongeServer", "pool",
           sim::AccessRecorder::NodeDomain(node_id_));
  auto holder = pool_->OwnerOf(handle);
  if (!holder.ok() || !(*holder == owner)) {
    co_return FailedPrecondition("chunk not owned by caller");
  }
  ByteRuns* data = pool_->chunk_data(handle);
  co_await engine_->Delay(
      TransferTime(data->size(), config_.server_copy_bandwidth));
  // Hand the reader a shared view of the slot (O(runs), no payload copy);
  // copy-on-write keeps it stable if the slot is later corrupted or reused.
  ByteRuns copy = *data;
  co_await network_->Transfer(node_id_, from, copy.size());
  co_return copy;
}

sim::Task<Status> SpongeServer::FreeBody(size_t from, ChunkHandle handle,
                                         ChunkOwner owner) {
  RpcCounter("free")->Increment();
  obs::SpanGuard span(&obs::Tracer::Default(), engine_, node_id_,
                      owner.task_id, "rpc", "rpc.free");
  span.Arg("from", static_cast<uint64_t>(from));
  // Request hop, free at the server, response hop (see RemoteAllocate).
  co_await network_->Transfer(from, node_id_, config_.rpc_message_bytes);
  co_await FaultPoint();
  SIM_READ(engine_, &alive_, "SpongeServer.alive", "flag", AliveDomain());
  SIM_WRITE(engine_, this, "SpongeServer", "pool",
            sim::AccessRecorder::NodeDomain(node_id_));
  Status result = alive_ ? pool_->Free(handle, owner)
                         : Unavailable("sponge server down");
  co_await network_->Transfer(node_id_, from, config_.rpc_message_bytes);
  co_return result;
}

sim::Task<bool> SpongeServer::IsTaskAliveBody(size_t from, uint64_t task_id) {
  RpcCounter("liveness")->Increment();
  obs::SpanGuard span(&obs::Tracer::Default(), engine_, node_id_, task_id,
                      "rpc", "rpc.is_task_alive");
  span.Arg("from", static_cast<uint64_t>(from));
  // Request hop, registry lookup at the server, response hop (see
  // RemoteAllocate).
  co_await network_->Transfer(from, node_id_, config_.rpc_message_bytes);
  co_await FaultPoint();
  SIM_READ(engine_, &alive_, "SpongeServer.alive", "flag", AliveDomain());
  bool task_alive = alive_ && registry_->IsAliveOn(task_id, node_id_);
  co_await network_->Transfer(node_id_, from, config_.rpc_message_bytes);
  co_return task_alive;
}

void SpongeServer::StartGc(std::vector<SpongeServer*>* peers) {
  peers_ = peers;
  if (gc_running_) return;
  gc_running_ = true;
  engine_->Spawn(GcLoop(peers));
}

sim::Task<> SpongeServer::GcLoop(std::vector<SpongeServer*>* peers) {
  peers_ = peers;
  while (!stopping_) {
    co_await engine_->Delay(config_.gc_period);
    if (stopping_) break;
    if (alive_) co_await GcSweep();
  }
  gc_running_ = false;
}

sim::Task<uint64_t> SpongeServer::GcSweep() {
  static obs::Counter* const gc_reclaimed_counter =
      obs::Registry::Default().counter("sponge.server.gc_reclaimed");
  obs::SpanGuard span(&obs::Tracer::Default(), engine_, node_id_, 0, "gc",
                      "gc.sweep");
  uint64_t reclaimed = 0;
  // Cache liveness verdicts per owner so a task holding many chunks costs
  // one probe, not one per chunk.
  std::unordered_map<uint64_t, bool> verdicts;
  SIM_READ(engine_, this, "SpongeServer", "pool",
           sim::AccessRecorder::NodeDomain(node_id_));
  for (const auto& [handle, owner] : pool_->AllocatedChunks()) {
    auto it = verdicts.find(owner.task_id);
    bool live;
    if (it != verdicts.end()) {
      live = it->second;
    } else if (owner.node == node_id_) {
      // Local process: consult the local process table directly.
      live = registry_->IsAliveOn(owner.task_id, node_id_);
      verdicts[owner.task_id] = live;
    } else if (peers_ != nullptr && owner.node < peers_->size() &&
               (*peers_)[owner.node]->alive()) {
      // Remote process: ask the sponge server on the owner's node to check
      // on our behalf.
      live = co_await (*peers_)[owner.node]->RemoteIsTaskAlive(
          node_id_, owner.task_id);
      verdicts[owner.task_id] = live;
    } else {
      // Owner's node is gone; the task cannot be alive.
      live = false;
      verdicts[owner.task_id] = live;
    }
    if (!live) {
      // The owner may have freed this chunk while we awaited the probe.
      SIM_WRITE(engine_, this, "SpongeServer", "pool",
                sim::AccessRecorder::NodeDomain(node_id_));
      auto still_owned = pool_->OwnerOf(handle);
      if (still_owned.ok() && *still_owned == owner) {
        (void)pool_->ForceFree(handle);
        ++reclaimed;
      }
    }
  }
  gc_reclaimed_ += reclaimed;
  gc_reclaimed_counter->Increment(reclaimed);
  span.Arg("reclaimed", reclaimed);
  co_return reclaimed;
}

uint64_t SpongeServer::EnforceQuotas() {
  if (config_.quota_chunks_per_task == 0 || !alive_) return 0;
  // Count holdings per owner, then free everything beyond the quota
  // (later allocations first: the task keeps its oldest chunks, which it
  // will read first).
  std::unordered_map<uint64_t, uint64_t> held;
  uint64_t reclaimed = 0;
  SIM_WRITE(engine_, this, "SpongeServer", "pool",
            sim::AccessRecorder::NodeDomain(node_id_));
  for (const auto& [handle, owner] : pool_->AllocatedChunks()) {
    uint64_t count = ++held[owner.task_id];
    if (count > config_.quota_chunks_per_task) {
      (void)pool_->ForceFree(handle);
      ++reclaimed;
    }
  }
  gc_reclaimed_ += reclaimed;
  return reclaimed;
}

void SpongeServer::Crash() {
  SIM_WRITE(engine_, &alive_, "SpongeServer.alive", "flag", AliveDomain());
  SIM_WRITE(engine_, this, "SpongeServer", "pool",
            sim::AccessRecorder::NodeDomain(node_id_));
  alive_ = false;
  pool_->Reset();
}

void SpongeServer::Restart() {
  SIM_WRITE(engine_, &alive_, "SpongeServer.alive", "flag", AliveDomain());
  alive_ = true;
}

}  // namespace spongefiles::sponge
