#include "sponge/rpc_client.h"

#include <string>

#include "obs/metrics.h"
#include "sim/access.h"

namespace spongefiles::sponge {

namespace internal_rpc {

void CountTimeout() {
  static obs::Counter* const timeouts =
      obs::Registry::Default().counter("sponge.rpc.timeouts");
  timeouts->Increment();
}

void CountRetry() {
  static obs::Counter* const retries =
      obs::Registry::Default().counter("sponge.rpc.retries");
  retries->Increment();
}

void CountBackoff(Duration slept) {
  static obs::Counter* const backoff_us =
      obs::Registry::Default().counter("sponge.rpc.backoff_us");
  backoff_us->Increment(static_cast<uint64_t>(slept));
}

void CountHedgeIssued() {
  static obs::Counter* const issued =
      obs::Registry::Default().counter("sponge.read.hedge.issued");
  issued->Increment();
}

void CountHedgeWon() {
  static obs::Counter* const won =
      obs::Registry::Default().counter("sponge.read.hedge.won");
  won->Increment();
}

}  // namespace internal_rpc

namespace {

obs::Counter* BreakerCounter(const char* event) {
  static obs::Registry& registry = obs::Registry::Default();
  static obs::Counter* const trip =
      registry.counter("sponge.rpc.breaker", {{"event", "trip"}});
  static obs::Counter* const recover =
      registry.counter("sponge.rpc.breaker", {{"event", "recover"}});
  return event[0] == 't' ? trip : recover;
}

}  // namespace

void HealthBoard::NoteAccess(bool write) const {
  SIM_ACCESS(engine_, this, "HealthBoard", "breakers", write,
             sim::AccessRecorder::GlobalDomain(
                 "per-server breaker and latency state shared by every "
                 "client; replicate per node or feed by message under the "
                 "parallel engine"));
}

HealthBoard::ServerHealth& HealthBoard::StateFor(size_t node) {
  if (node >= health_.size()) health_.resize(node + 1);
  return health_[node];
}

bool HealthBoard::AllowRequest(size_t node) {
  NoteAccess(/*write=*/true);
  ServerHealth& state = StateFor(node);
  if (!state.open) return true;
  if (engine_->now() < state.open_until) return false;
  if (state.probing) return false;
  state.probing = true;
  return true;
}

void HealthBoard::RecordSuccess(size_t node) {
  NoteAccess(/*write=*/true);
  ServerHealth& state = StateFor(node);
  state.consecutive_failures = 0;
  if (state.open) {
    state.open = false;
    state.probing = false;
    ++recoveries_;
    BreakerCounter("recover")->Increment();
  }
}

void HealthBoard::RecordFailure(size_t node) {
  NoteAccess(/*write=*/true);
  ServerHealth& state = StateFor(node);
  ++state.consecutive_failures;
  if (state.open) {
    // A failed half-open probe (or a straggling in-flight call): re-arm
    // the cooldown; the server stays ejected.
    state.probing = false;
    state.open_until = engine_->now() + policy_->breaker_cooldown;
    return;
  }
  if (state.consecutive_failures >= policy_->breaker_threshold) {
    state.open = true;
    state.probing = false;
    state.open_until = engine_->now() + policy_->breaker_cooldown;
    ++trips_;
    BreakerCounter("trip")->Increment();
  }
}

bool HealthBoard::IsOpen(size_t node) const {
  NoteAccess(/*write=*/false);
  if (node >= health_.size()) return false;
  return health_[node].open;
}

obs::Histogram* HealthBoard::LatencyFor(size_t node) const {
  if (node >= read_latency_.size()) read_latency_.resize(node + 1, nullptr);
  if (read_latency_[node] == nullptr) {
    read_latency_[node] = obs::Registry::Default().histogram(
        "sponge.read.latency", {{"node", std::to_string(node)}});
  }
  return read_latency_[node];
}

void HealthBoard::RecordReadLatency(size_t node, Duration latency) {
  NoteAccess(/*write=*/true);
  if (latency < 0) latency = 0;
  LatencyFor(node)->Record(static_cast<uint64_t>(latency));
}

Duration HealthBoard::HedgeDelay(size_t node) const {
  NoteAccess(/*write=*/false);
  obs::Histogram* latency = LatencyFor(node);
  Duration delay = policy_->hedge_min_delay;
  if (latency->count() >= policy_->hedge_min_samples) {
    auto tail =
        static_cast<Duration>(latency->Quantile(policy_->hedge_quantile));
    if (tail > delay) delay = tail;
  }
  return delay;
}

}  // namespace spongefiles::sponge
