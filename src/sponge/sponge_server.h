#ifndef SPONGEFILES_SPONGE_SPONGE_SERVER_H_
#define SPONGEFILES_SPONGE_SPONGE_SERVER_H_

#include <cstdint>
#include <memory>

#include "cluster/network.h"
#include "common/byte_runs.h"
#include "common/status.h"
#include "common/units.h"
#include "sim/access.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sponge/chunk_pool.h"
#include "sponge/task_registry.h"

namespace spongefiles::sponge {

// lint: shard(value)
struct SpongeServerConfig {
  // Size of control messages (allocate/free/liveness requests and
  // responses) on the wire.
  uint64_t rpc_message_bytes = 256;
  // Copy rate between a request buffer and the pool on the server side.
  double server_copy_bandwidth = 2.0 * 1024 * 1024 * 1024;
  // Period between garbage-collection sweeps.
  Duration gc_period = Seconds(30);
  // Per-task per-node chunk quota; 0 disables enforcement (the paper's
  // access-control section sketches quotas; this implements them).
  uint64_t quota_chunks_per_task = 0;
};

// The per-node sponge server. It shares the node's chunk pool with local
// tasks, exports its free space to the memory tracker, serves allocation /
// write / read / free requests from remote tasks, and garbage-collects
// chunks owned by dead tasks. The server is stateless: all durable state
// is the pool metadata itself.
// lint: shard(node)
class SpongeServer {
 public:
  SpongeServer(sim::Engine* engine, cluster::Network* network,
               TaskRegistry* registry, size_t node_id,
               const ChunkPoolConfig& pool_config,
               const SpongeServerConfig& config);

  SpongeServer(const SpongeServer&) = delete;
  SpongeServer& operator=(const SpongeServer&) = delete;

  size_t node_id() const { return node_id_; }
  ChunkPool& pool() { return *pool_; }
  bool alive() const { return alive_; }

  // Free sponge memory right now (what the tracker's poll reads), and the
  // bulk-class subset of it (what a full-size chunk can actually use).
  uint64_t free_bytes() const { return pool_->free_bytes(); }
  uint64_t free_bulk_bytes() const { return pool_->free_bulk_bytes(); }

  // --- remote operations (called by tasks on other nodes; `from` is the
  // --- caller's node, used to charge network time) ---
  //
  // All parameters are taken BY VALUE: a caller running under
  // CallWithDeadline may abandon the operation and destroy its own frame
  // while the op is still parked on this (possibly hung) server, so the
  // op must own every piece of state it touches after resuming.
  //
  // Sharded engine: when the caller's lane does not own this server's
  // node, the operation hops to the global lane (the safe harbor that may
  // touch any lane's state), executes there, and hops back — each hop
  // lands at a window barrier, so a cross-lane RPC is quantized to the
  // lookahead, which is by construction no larger than the network
  // latency it already pays. Payloads are deep-copied (ByteRuns::Detached)
  // at the boundary so no buffer is ever shared across lanes. Same-lane
  // calls (rack-local RPC under the rack projection, everything on the
  // legacy engine) take the direct zero-copy path.

  // Allocates one chunk for `owner`; RESOURCE_EXHAUSTED when full — the
  // caller then tries the next server on its (possibly stale) free list.
  // `bytes` is the declared spill size, so the tiered pool can place small
  // chunks into a matching size class (0 = a full bulk chunk).
  sim::Task<Result<ChunkHandle>> RemoteAllocate(size_t from, ChunkOwner owner,
                                                uint64_t bytes = 0);

  // Ships `data` from node `from` into chunk `handle`.
  sim::Task<Status> RemoteWrite(size_t from, ChunkHandle handle,
                                ChunkOwner owner, ByteRuns data);

  // Reads chunk `handle` back to node `from`.
  sim::Task<Result<ByteRuns>> RemoteRead(size_t from, ChunkHandle handle,
                                         ChunkOwner owner);

  sim::Task<Status> RemoteFree(size_t from, ChunkHandle handle,
                               ChunkOwner owner);

  // Liveness probe used by peer servers' GC: is `task_id` alive on this
  // node? `from` pays for the RPC.
  sim::Task<bool> RemoteIsTaskAlive(size_t from, uint64_t task_id);

  // --- local operations (same-node tasks through shared memory; no
  // --- server involvement, hence no IPC cost — the SpongeFile charges the
  // --- raw memory copy itself) ---
  // The caller should collect pool().TakeLockWait() afterwards and pay it
  // as a Delay — the simulated pool-lock convoy (see ChunkPoolConfig).
  Result<ChunkHandle> LocalAllocate(const ChunkOwner& owner,
                                    uint64_t bytes = 0) {
    SIM_WRITE(engine_, this, "SpongeServer", "pool",
              sim::AccessRecorder::NodeDomain(node_id_));
    if (!alive_) return Unavailable("sponge server down");
    if (!QuotaAllows(owner)) return ResourceExhausted("task over quota");
    return pool_->Allocate(owner, bytes);
  }
  Status LocalFree(ChunkHandle handle, const ChunkOwner& owner) {
    SIM_WRITE(engine_, this, "SpongeServer", "pool",
              sim::AccessRecorder::NodeDomain(node_id_));
    return pool_->Free(handle, owner);
  }

  // --- garbage collection ---

  // Provides the peer list GcSweep consults for remote liveness checks.
  void SetPeers(std::vector<SpongeServer*>* peers) { peers_ = peers; }

  // Starts the periodic GC loop; it runs until Shutdown().
  void StartGc(std::vector<SpongeServer*>* peers);

  // One sweep: frees chunks whose owner is dead. Local owners are checked
  // against the local process table; remote owners via the owning node's
  // server. Returns the number of chunks reclaimed.
  sim::Task<uint64_t> GcSweep();

  // Corrective action for quota offenders (section 3.1.4): scans for
  // owners holding more than the per-task quota and reclaims their excess
  // chunks (the offending task discovers the loss on its next read and is
  // restarted by the framework). No-op when quotas are disabled. Returns
  // the number of chunks reclaimed.
  uint64_t EnforceQuotas();

  // Adjusts the per-task quota at runtime (operator action); enforced on
  // subsequent allocations and EnforceQuotas sweeps.
  void set_quota_chunks_per_task(uint64_t quota) {
    config_.quota_chunks_per_task = quota;
  }

  // Simulated machine failure: pool contents are lost; subsequent remote
  // operations fail UNAVAILABLE.
  void Crash();
  // The server restarts empty (it is stateless).
  void Restart();

  // --- gray failures ---

  // Hung server: the process is alive (liveness at the machine level still
  // passes) but every RPC parks after its request arrives and answers
  // nothing until the hang clears — the failure mode that motivates
  // client-side deadlines. Clearing the hang releases parked requests,
  // which then complete normally (their clients have typically given up).
  void SetHung(bool hung);
  bool hung() const { return hung_; }

  // Slow server: adds `delay` of server-side processing to every RPC
  // (GC-pausing JVM, an overloaded host). 0 restores nominal speed.
  void set_rpc_extra_delay(Duration delay) {
    rpc_extra_delay_ = delay < 0 ? 0 : delay;
  }

  void Shutdown() { stopping_ = true; }

  // --- statistics ---
  uint64_t remote_allocations() const { return remote_allocations_; }
  uint64_t failed_allocations() const { return failed_allocations_; }
  uint64_t gc_reclaimed() const { return gc_reclaimed_; }

 private:
  bool QuotaAllows(const ChunkOwner& owner) const;

  // The real remote-operation implementations; the public RemoteXxx
  // entry points add the cross-lane hop when needed (sharded engine) and
  // call these directly otherwise.
  sim::Task<Result<ChunkHandle>> AllocateBody(size_t from, ChunkOwner owner,
                                              uint64_t bytes);
  sim::Task<Status> WriteBody(size_t from, ChunkHandle handle,
                              ChunkOwner owner, ByteRuns data);
  sim::Task<Result<ByteRuns>> ReadBody(size_t from, ChunkHandle handle,
                                       ChunkOwner owner);
  sim::Task<Status> FreeBody(size_t from, ChunkHandle handle,
                             ChunkOwner owner);
  sim::Task<bool> IsTaskAliveBody(size_t from, uint64_t task_id);

  // Awaited by every remote operation after its request reaches the
  // server (deliberately after the network hop, so an abandoned request
  // never wedges a NIC pipe): pays the injected slow-server delay and
  // parks while the server is hung.
  sim::Task<> FaultPoint();

  sim::Task<> GcLoop(std::vector<SpongeServer*>* peers);

  sim::Engine* engine_;
  cluster::Network* network_;
  TaskRegistry* registry_;
  size_t node_id_;
  SpongeServerConfig config_;
  std::unique_ptr<ChunkPool> pool_;
  std::vector<SpongeServer*>* peers_ = nullptr;

  bool alive_ = true;
  bool stopping_ = false;
  bool gc_running_ = false;

  bool hung_ = false;
  Duration rpc_extra_delay_ = 0;
  // Requests park on this event while hung. Cleared events are retired,
  // not destroyed: handles scheduled by Set() may still be in the engine
  // queue when a new hang begins.
  std::unique_ptr<sim::Event> hang_cleared_;
  std::vector<std::unique_ptr<sim::Event>> retired_hang_events_;

  uint64_t remote_allocations_ = 0;
  uint64_t failed_allocations_ = 0;
  uint64_t gc_reclaimed_ = 0;
};

}  // namespace spongefiles::sponge

#endif  // SPONGEFILES_SPONGE_SPONGE_SERVER_H_
