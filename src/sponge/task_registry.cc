#include "sponge/task_registry.h"

namespace spongefiles::sponge {

uint64_t TaskRegistry::Register(size_t node) {
  uint64_t id = next_id_++;
  tasks_[id] = node;
  return id;
}

void TaskRegistry::Deregister(uint64_t task_id) { tasks_.erase(task_id); }

bool TaskRegistry::IsAliveOn(uint64_t task_id, size_t node) const {
  auto it = tasks_.find(task_id);
  return it != tasks_.end() && it->second == node;
}

Result<size_t> TaskRegistry::NodeOf(uint64_t task_id) const {
  auto it = tasks_.find(task_id);
  if (it == tasks_.end()) return NotFound("task not alive");
  return it->second;
}

}  // namespace spongefiles::sponge
