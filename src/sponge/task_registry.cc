#include "sponge/task_registry.h"

#include <algorithm>

namespace spongefiles::sponge {

void ReplicaDirectory::NoteAccess(bool write) const {
  if (engine_ == nullptr) return;
  SIM_ACCESS(engine_, this, "ReplicaDirectory", "chunks", write,
             sim::AccessRecorder::GlobalDomain(
                 "chunk-to-replica map shared by the write, read-failover, "
                 "and repair paths; shard or message it before going "
                 "parallel"));
}

void TaskRegistry::NoteAccess(bool write) const {
  if (engine_ == nullptr) return;
  SIM_ACCESS(engine_, this, "TaskRegistry", "tasks", write,
             sim::AccessRecorder::GlobalDomain(
                 "attempt-liveness oracle consulted by every node's GC "
                 "sweep; becomes per-shard caches fed by liveness "
                 "messages"));
}

uint64_t ReplicaDirectory::Register(uint64_t owner_task, uint64_t size,
                                    uint64_t checksum) {
  NoteAccess(/*write=*/true);
  uint64_t id = next_id_++;
  ReplicatedChunk& entry = chunks_[id];
  entry.chunk_id = id;
  entry.owner_task = owner_task;
  entry.size = size;
  entry.checksum = checksum;
  return id;
}

void ReplicaDirectory::AddLocation(uint64_t chunk_id,
                                   const ReplicaLocation& location) {
  NoteAccess(/*write=*/true);
  auto it = chunks_.find(chunk_id);
  if (it == chunks_.end()) return;
  for (const ReplicaLocation& held : it->second.locations) {
    if (held.node == location.node && held.handle == location.handle) return;
  }
  it->second.locations.push_back(location);
}

void ReplicaDirectory::DropLocation(uint64_t chunk_id, size_t node) {
  NoteAccess(/*write=*/true);
  auto it = chunks_.find(chunk_id);
  if (it == chunks_.end()) return;
  auto& locations = it->second.locations;
  locations.erase(std::remove_if(locations.begin(), locations.end(),
                                 [node](const ReplicaLocation& location) {
                                   return location.node == node;
                                 }),
                  locations.end());
}

void ReplicaDirectory::Forget(uint64_t chunk_id) {
  NoteAccess(/*write=*/true);
  chunks_.erase(chunk_id);
}

const ReplicatedChunk* ReplicaDirectory::Find(uint64_t chunk_id) const {
  NoteAccess(/*write=*/false);
  auto it = chunks_.find(chunk_id);
  return it == chunks_.end() ? nullptr : &it->second;
}

std::vector<uint64_t> ReplicaDirectory::ChunksOn(size_t node) const {
  NoteAccess(/*write=*/false);
  std::vector<uint64_t> ids;
  for (const auto& [id, entry] : chunks_) {
    for (const ReplicaLocation& location : entry.locations) {
      if (location.node == node) {
        ids.push_back(id);
        break;
      }
    }
  }
  return ids;
}

uint64_t TaskRegistry::Register(size_t node) {
  NoteAccess(/*write=*/true);
  uint64_t id = next_id_++;
  tasks_[id] = node;
  return id;
}

void TaskRegistry::Deregister(uint64_t task_id) {
  NoteAccess(/*write=*/true);
  tasks_.erase(task_id);
}

bool TaskRegistry::IsAliveOn(uint64_t task_id, size_t node) const {
  NoteAccess(/*write=*/false);
  auto it = tasks_.find(task_id);
  return it != tasks_.end() && it->second == node;
}

Result<size_t> TaskRegistry::NodeOf(uint64_t task_id) const {
  NoteAccess(/*write=*/false);
  auto it = tasks_.find(task_id);
  if (it == tasks_.end()) return NotFound("task not alive");
  return it->second;
}

}  // namespace spongefiles::sponge
