#include "sponge/task_registry.h"

#include <algorithm>

namespace spongefiles::sponge {

void ReplicaDirectory::AttachEngine(sim::Engine* engine) {
  engine_ = engine;
  parts_.resize(engine == nullptr ? 1 : engine->lane_count());
}

uint32_t ReplicaDirectory::LaneNow() const {
  if (engine_ == nullptr) return 0;
  const uint32_t lane = engine_->current_lane();
  return lane < parts_.size() ? lane : 0;
}

const ReplicaDirectory::Part* ReplicaDirectory::PartOf(uint64_t id) const {
  const uint64_t lane = id >> kLaneShift;
  return lane < parts_.size() ? &parts_[lane] : nullptr;
}

void ReplicaDirectory::NoteAccess(uint32_t lane, bool write) const {
  if (engine_ == nullptr) return;
  SIM_ACCESS(engine_, &parts_[lane], "ReplicaDirectory", "chunks", write,
             sim::AccessRecorder::GlobalDomain(
                 "chunk-to-replica map shared by the write, read-failover, "
                 "and repair paths; lane-partitioned by minting lane under "
                 "the sharded engine"));
}

void TaskRegistry::AttachEngine(sim::Engine* engine) {
  engine_ = engine;
  parts_.resize(engine == nullptr ? 1 : engine->lane_count());
  replicas_.AttachEngine(engine);
}

uint32_t TaskRegistry::LaneNow() const {
  if (engine_ == nullptr) return 0;
  const uint32_t lane = engine_->current_lane();
  return lane < parts_.size() ? lane : 0;
}

const TaskRegistry::Part* TaskRegistry::PartOf(uint64_t id) const {
  const uint64_t lane = id >> kLaneShift;
  return lane < parts_.size() ? &parts_[lane] : nullptr;
}

void TaskRegistry::NoteAccess(uint32_t lane, bool write) const {
  if (engine_ == nullptr) return;
  SIM_ACCESS(engine_, &parts_[lane], "TaskRegistry", "tasks", write,
             sim::AccessRecorder::GlobalDomain(
                 "attempt-liveness oracle consulted by every node's GC "
                 "sweep; lane-partitioned by minting lane under the "
                 "sharded engine"));
}

uint64_t ReplicaDirectory::Register(uint64_t owner_task, uint64_t size,
                                    uint64_t checksum) {
  const uint32_t lane = LaneNow();
  NoteAccess(lane, /*write=*/true);
  Part& part = parts_[lane];
  uint64_t id = part.next_seq++;
  if (lane != 0) id |= uint64_t(lane) << kLaneShift;
  ReplicatedChunk& entry = part.chunks[id];
  entry.chunk_id = id;
  entry.owner_task = owner_task;
  entry.size = size;
  entry.checksum = checksum;
  return id;
}

void ReplicaDirectory::AddLocation(uint64_t chunk_id,
                                   const ReplicaLocation& location) {
  Part* part = PartOf(chunk_id);
  if (part == nullptr) return;
  NoteAccess(static_cast<uint32_t>(chunk_id >> kLaneShift), /*write=*/true);
  auto it = part->chunks.find(chunk_id);
  if (it == part->chunks.end()) return;
  for (const ReplicaLocation& held : it->second.locations) {
    if (held.node == location.node && held.handle == location.handle) return;
  }
  it->second.locations.push_back(location);
}

void ReplicaDirectory::DropLocation(uint64_t chunk_id, size_t node) {
  Part* part = PartOf(chunk_id);
  if (part == nullptr) return;
  NoteAccess(static_cast<uint32_t>(chunk_id >> kLaneShift), /*write=*/true);
  auto it = part->chunks.find(chunk_id);
  if (it == part->chunks.end()) return;
  auto& locations = it->second.locations;
  locations.erase(std::remove_if(locations.begin(), locations.end(),
                                 [node](const ReplicaLocation& location) {
                                   return location.node == node;
                                 }),
                  locations.end());
}

void ReplicaDirectory::Forget(uint64_t chunk_id) {
  Part* part = PartOf(chunk_id);
  if (part == nullptr) return;
  NoteAccess(static_cast<uint32_t>(chunk_id >> kLaneShift), /*write=*/true);
  part->chunks.erase(chunk_id);
}

const ReplicatedChunk* ReplicaDirectory::Find(uint64_t chunk_id) const {
  const Part* part = PartOf(chunk_id);
  if (part == nullptr) return nullptr;
  NoteAccess(static_cast<uint32_t>(chunk_id >> kLaneShift), /*write=*/false);
  auto it = part->chunks.find(chunk_id);
  return it == part->chunks.end() ? nullptr : &it->second;
}

std::vector<uint64_t> ReplicaDirectory::ChunksOn(size_t node) const {
  std::vector<uint64_t> ids;
  for (size_t lane = 0; lane < parts_.size(); ++lane) {
    NoteAccess(static_cast<uint32_t>(lane), /*write=*/false);
    for (const auto& [id, entry] : parts_[lane].chunks) {
      for (const ReplicaLocation& location : entry.locations) {
        if (location.node == node) {
          ids.push_back(id);
          break;
        }
      }
    }
  }
  return ids;
}

size_t ReplicaDirectory::size() const {
  size_t n = 0;
  for (const Part& part : parts_) n += part.chunks.size();
  return n;
}

uint64_t TaskRegistry::Register(size_t node) {
  const uint32_t lane = LaneNow();
  NoteAccess(lane, /*write=*/true);
  Part& part = parts_[lane];
  uint64_t id = part.next_seq++;
  if (lane != 0) id |= uint64_t(lane) << kLaneShift;
  part.tasks[id] = node;
  return id;
}

void TaskRegistry::Deregister(uint64_t task_id) {
  Part* part = PartOf(task_id);
  if (part == nullptr) return;
  NoteAccess(static_cast<uint32_t>(task_id >> kLaneShift), /*write=*/true);
  part->tasks.erase(task_id);
}

bool TaskRegistry::IsAliveOn(uint64_t task_id, size_t node) const {
  const Part* part = PartOf(task_id);
  if (part == nullptr) return false;
  NoteAccess(static_cast<uint32_t>(task_id >> kLaneShift), /*write=*/false);
  auto it = part->tasks.find(task_id);
  return it != part->tasks.end() && it->second == node;
}

Result<size_t> TaskRegistry::NodeOf(uint64_t task_id) const {
  const Part* part = PartOf(task_id);
  if (part == nullptr) return NotFound("task not alive");
  NoteAccess(static_cast<uint32_t>(task_id >> kLaneShift), /*write=*/false);
  auto it = part->tasks.find(task_id);
  if (it == part->tasks.end()) return NotFound("task not alive");
  return it->second;
}

}  // namespace spongefiles::sponge
