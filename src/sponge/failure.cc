#include "sponge/failure.h"

#include <cmath>
#include <string>
#include <utility>

#include "sim/task.h"

namespace spongefiles::sponge {

double TaskFailureProbability(int num_machines, Duration task_runtime,
                              Duration mttf) {
  if (num_machines <= 0 || task_runtime <= 0) return 0.0;
  double exponent = -static_cast<double>(num_machines) *
                    static_cast<double>(task_runtime) /
                    static_cast<double>(mttf);
  return 1.0 - std::exp(exponent);
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kHang: return "hang";
    case FaultKind::kRpcDelay: return "rpc-delay";
    case FaultKind::kDiskSlowdown: return "disk-slowdown";
    case FaultKind::kLinkDegradation: return "link-degradation";
    case FaultKind::kTrackerOutage: return "tracker-outage";
    case FaultKind::kTrackerStale: return "tracker-stale";
    case FaultKind::kBitRot: return "bit-rot";
    case FaultKind::kTrackerShardOutage: return "tracker-shard-outage";
    case FaultKind::kTrackerShardStale: return "tracker-shard-stale";
    case FaultKind::kGossipPartition: return "gossip-partition";
    case FaultKind::kSsdSlowdown: return "ssd-slowdown";
    case FaultKind::kSsdWear: return "ssd-wear";
  }
  return "?";
}

Result<FaultKind> FaultKindFromName(std::string_view name) {
  for (FaultKind kind : kAllFaultKinds) {
    if (name == FaultKindName(kind)) return kind;
  }
  return InvalidArgument("unknown fault kind: " + std::string(name));
}

namespace {

sim::Task<> CrashAt(SpongeEnv* env, size_t node, Duration downtime) {
  env->CrashNode(node);
  if (downtime > 0) {
    co_await env->engine()->Delay(downtime);
    env->RestartNode(node);
  }
  co_return;
}

sim::Task<> HangFor(SpongeEnv* env, size_t node, Duration duration) {
  env->server(node).SetHung(true);
  co_await env->engine()->Delay(duration);
  env->server(node).SetHung(false);
}

sim::Task<> SlowRpcsFor(SpongeEnv* env, size_t node, Duration extra,
                        Duration duration) {
  env->server(node).set_rpc_extra_delay(extra);
  co_await env->engine()->Delay(duration);
  env->server(node).set_rpc_extra_delay(0);
}

sim::Task<> SlowDiskFor(SpongeEnv* env, size_t node, double factor,
                        Duration duration) {
  env->cluster()->node(node).disk().SetSlowdown(factor);
  co_await env->engine()->Delay(duration);
  env->cluster()->node(node).disk().SetSlowdown(1.0);
}

sim::Task<> SlowSsdFor(SpongeEnv* env, size_t node, double factor,
                       Duration duration) {
  cluster::Node& machine = env->cluster()->node(node);
  if (!machine.has_ssd()) co_return;  // SSD-less node: nothing to throttle
  machine.ssd().SetSlowdown(factor);
  co_await env->engine()->Delay(duration);
  machine.ssd().SetSlowdown(1.0);
}

sim::Task<> WearSsdFor(SpongeEnv* env, size_t node, Duration duration) {
  cluster::Node& machine = env->cluster()->node(node);
  if (!machine.has_ssd()) co_return;
  machine.ssd().SetWorn(true);
  co_await env->engine()->Delay(duration);
  machine.ssd().SetWorn(false);
}

sim::Task<> DegradeLinkFor(SpongeEnv* env, size_t node,
                           double bandwidth_factor, Duration extra_latency,
                           Duration duration) {
  env->cluster()->network().DegradeLink(node, bandwidth_factor,
                                        extra_latency);
  co_await env->engine()->Delay(duration);
  env->cluster()->network().RestoreLink(node);
}

sim::Task<> TrackerOutageFor(SpongeEnv* env, Duration duration) {
  env->tracker().SetDown(true);
  co_await env->engine()->Delay(duration);
  env->tracker().SetDown(false);
}

sim::Task<> TrackerStaleFor(SpongeEnv* env, Duration duration) {
  env->tracker().SetPollPaused(true);
  co_await env->engine()->Delay(duration);
  env->tracker().SetPollPaused(false);
}

sim::Task<> TrackerShardOutageFor(SpongeEnv* env, size_t rack,
                                  Duration duration) {
  env->tracker().SetShardDown(rack, true);
  co_await env->engine()->Delay(duration);
  env->tracker().SetShardDown(rack, false);
}

sim::Task<> TrackerShardStaleFor(SpongeEnv* env, size_t rack,
                                 Duration duration) {
  env->tracker().SetShardPollPaused(rack, true);
  co_await env->engine()->Delay(duration);
  env->tracker().SetShardPollPaused(rack, false);
}

sim::Task<> GossipPartitionFor(SpongeEnv* env, size_t rack,
                               Duration duration) {
  env->tracker().SetGossipPartitioned(rack, true);
  co_await env->engine()->Delay(duration);
  env->tracker().SetGossipPartitioned(rack, false);
}

// `slot_pick` / `byte_pick` were drawn at schedule time; reducing them
// modulo the live pool state at fire time keeps the schedule itself (and
// hence every Rng draw) independent of workload timing.
sim::Task<> BitRotAt(SpongeEnv* env, size_t node, uint64_t slot_pick,
                     uint64_t byte_pick) {
  SpongeServer& server = env->server(node);
  if (server.alive()) {
    auto allocated = server.pool().AllocatedChunks();
    if (!allocated.empty()) {
      ChunkHandle victim = allocated[slot_pick % allocated.size()].first;
      ByteRuns* data = server.pool().chunk_data(victim);
      if (data != nullptr && data->size() > 0) {
        data->CorruptByte(byte_pick % data->size());
      }
    }
  }
  co_return;
}

}  // namespace

void FailureInjector::Record(FaultKind kind, size_t node, SimTime at,
                             Duration duration, double severity) {
  schedule_.push_back({kind, node, at, duration, severity});
}

void FailureInjector::ScheduleCrash(size_t node, SimTime at,
                                    Duration downtime) {
  ++crashes_;
  Record(FaultKind::kCrash, node, at, downtime);
  env_->engine()->SpawnAt(at, CrashAt(env_, node, downtime));
}

void FailureInjector::ScheduleHang(size_t node, SimTime at,
                                   Duration duration) {
  Record(FaultKind::kHang, node, at, duration);
  env_->engine()->SpawnAt(at, HangFor(env_, node, duration));
}

void FailureInjector::ScheduleRpcDelay(size_t node, SimTime at,
                                       Duration extra, Duration duration) {
  Record(FaultKind::kRpcDelay, node, at, duration,
         static_cast<double>(extra));
  env_->engine()->SpawnAt(at, SlowRpcsFor(env_, node, extra, duration));
}

void FailureInjector::ScheduleDiskSlowdown(size_t node, SimTime at,
                                           double factor,
                                           Duration duration) {
  Record(FaultKind::kDiskSlowdown, node, at, duration, factor);
  env_->engine()->SpawnAt(at, SlowDiskFor(env_, node, factor, duration));
}

void FailureInjector::ScheduleSsdSlowdown(size_t node, SimTime at,
                                          double factor, Duration duration) {
  Record(FaultKind::kSsdSlowdown, node, at, duration, factor);
  env_->engine()->SpawnAt(at, SlowSsdFor(env_, node, factor, duration));
}

void FailureInjector::ScheduleSsdWear(size_t node, SimTime at,
                                      Duration duration) {
  Record(FaultKind::kSsdWear, node, at, duration);
  env_->engine()->SpawnAt(at, WearSsdFor(env_, node, duration));
}

void FailureInjector::ScheduleLinkDegradation(size_t node, SimTime at,
                                              double bandwidth_factor,
                                              Duration extra_latency,
                                              Duration duration) {
  Record(FaultKind::kLinkDegradation, node, at, duration, bandwidth_factor);
  env_->engine()->SpawnAt(
      at, DegradeLinkFor(env_, node, bandwidth_factor, extra_latency,
                         duration));
}

void FailureInjector::ScheduleTrackerOutage(SimTime at, Duration duration) {
  Record(FaultKind::kTrackerOutage, 0, at, duration);
  env_->engine()->SpawnAt(at, TrackerOutageFor(env_, duration));
}

void FailureInjector::ScheduleTrackerStale(SimTime at, Duration duration) {
  Record(FaultKind::kTrackerStale, 0, at, duration);
  env_->engine()->SpawnAt(at, TrackerStaleFor(env_, duration));
}

void FailureInjector::ScheduleTrackerShardOutage(size_t rack, SimTime at,
                                                 Duration duration) {
  Record(FaultKind::kTrackerShardOutage, rack, at, duration);
  env_->engine()->SpawnAt(at, TrackerShardOutageFor(env_, rack, duration));
}

void FailureInjector::ScheduleTrackerShardStale(size_t rack, SimTime at,
                                                Duration duration) {
  Record(FaultKind::kTrackerShardStale, rack, at, duration);
  env_->engine()->SpawnAt(at, TrackerShardStaleFor(env_, rack, duration));
}

void FailureInjector::ScheduleGossipPartition(size_t rack, SimTime at,
                                              Duration duration) {
  Record(FaultKind::kGossipPartition, rack, at, duration);
  env_->engine()->SpawnAt(at, GossipPartitionFor(env_, rack, duration));
}

void FailureInjector::ScheduleBitRot(size_t node, SimTime at) {
  uint64_t slot_pick = rng_.Next();
  uint64_t byte_pick = rng_.Next();
  Record(FaultKind::kBitRot, node, at, 0);
  env_->engine()->SpawnAt(at, BitRotAt(env_, node, slot_pick, byte_pick));
}

size_t FailureInjector::ScheduleChaos(const ChaosOptions& options) {
  std::vector<FaultKind> kinds;
  if (options.crashes) kinds.push_back(FaultKind::kCrash);
  if (options.hangs) kinds.push_back(FaultKind::kHang);
  if (options.rpc_delays) kinds.push_back(FaultKind::kRpcDelay);
  if (options.disk_slowdowns) kinds.push_back(FaultKind::kDiskSlowdown);
  if (options.link_degradations) {
    kinds.push_back(FaultKind::kLinkDegradation);
  }
  if (options.tracker_outages) {
    kinds.push_back(FaultKind::kTrackerOutage);
    kinds.push_back(FaultKind::kTrackerStale);
  }
  if (options.bit_rot) kinds.push_back(FaultKind::kBitRot);
  if (options.tracker_shard_faults) {
    kinds.push_back(FaultKind::kTrackerShardOutage);
    kinds.push_back(FaultKind::kTrackerShardStale);
  }
  if (options.gossip_partitions) {
    kinds.push_back(FaultKind::kGossipPartition);
  }
  if (options.ssd_faults) {
    kinds.push_back(FaultKind::kSsdSlowdown);
    kinds.push_back(FaultKind::kSsdWear);
  }
  if (kinds.empty() || options.horizon <= options.start) return 0;

  size_t num_nodes = env_->cluster()->size();
  size_t scheduled = 0;
  for (size_t i = 0; i < options.num_faults; ++i) {
    FaultKind kind = kinds[rng_.Uniform(kinds.size())];
    size_t node = rng_.Uniform(num_nodes);
    SimTime at = options.start +
                 static_cast<SimTime>(rng_.Uniform(static_cast<uint64_t>(
                     options.horizon - options.start)));
    Duration span = options.max_duration > options.min_duration
                        ? options.min_duration +
                              static_cast<Duration>(rng_.Uniform(
                                  static_cast<uint64_t>(options.max_duration -
                                                        options.min_duration)))
                        : options.min_duration;
    switch (kind) {
      case FaultKind::kCrash:
        ScheduleCrash(node, at,
                      options.fail_stop_crashes ? 0 : /*downtime=*/span);
        break;
      case FaultKind::kHang:
        ScheduleHang(node, at, span);
        break;
      case FaultKind::kRpcDelay:
        // Delay drawn between 10% and 110% of the span: sometimes under,
        // sometimes over a typical client deadline.
        ScheduleRpcDelay(node, at,
                         static_cast<Duration>(
                             static_cast<double>(span) *
                             (0.1 + rng_.NextDouble())),
                         span);
        break;
      case FaultKind::kDiskSlowdown:
        ScheduleDiskSlowdown(node, at, 2.0 + 8.0 * rng_.NextDouble(), span);
        break;
      case FaultKind::kLinkDegradation:
        ScheduleLinkDegradation(node, at, 0.05 + 0.45 * rng_.NextDouble(),
                                Micros(100), span);
        break;
      case FaultKind::kTrackerOutage:
        ScheduleTrackerOutage(at, span);
        break;
      case FaultKind::kTrackerStale:
        ScheduleTrackerStale(at, span);
        break;
      case FaultKind::kBitRot:
        ScheduleBitRot(node, at);
        break;
      // Shard faults reuse the node draw (so every kind consumes the same
      // Rng sequence) and target the drawn node's rack.
      case FaultKind::kTrackerShardOutage:
        ScheduleTrackerShardOutage(env_->cluster()->rack_of(node), at, span);
        break;
      case FaultKind::kTrackerShardStale:
        ScheduleTrackerShardStale(env_->cluster()->rack_of(node), at, span);
        break;
      case FaultKind::kGossipPartition:
        ScheduleGossipPartition(env_->cluster()->rack_of(node), at, span);
        break;
      case FaultKind::kSsdSlowdown:
        ScheduleSsdSlowdown(node, at, 2.0 + 8.0 * rng_.NextDouble(), span);
        break;
      case FaultKind::kSsdWear:
        ScheduleSsdWear(node, at, span);
        break;
    }
    ++scheduled;
  }
  return scheduled;
}

size_t FailureInjector::SchedulePoissonCrashes(Duration mttf, SimTime horizon,
                                               Duration downtime) {
  size_t scheduled = 0;
  for (size_t node = 0; node < env_->cluster()->size(); ++node) {
    SimTime t = env_->engine()->now();
    while (true) {
      t += static_cast<Duration>(
          rng_.Exponential(static_cast<double>(mttf)));
      if (t > horizon) break;
      ScheduleCrash(node, t, downtime);
      ++scheduled;
    }
  }
  return scheduled;
}

}  // namespace spongefiles::sponge
