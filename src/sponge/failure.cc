#include "sponge/failure.h"

#include <cmath>

#include "sim/task.h"

namespace spongefiles::sponge {

double TaskFailureProbability(int num_machines, Duration task_runtime,
                              Duration mttf) {
  if (num_machines <= 0 || task_runtime <= 0) return 0.0;
  double exponent = -static_cast<double>(num_machines) *
                    static_cast<double>(task_runtime) /
                    static_cast<double>(mttf);
  return 1.0 - std::exp(exponent);
}

namespace {

sim::Task<> CrashAt(SpongeEnv* env, size_t node, Duration downtime) {
  env->CrashNode(node);
  if (downtime > 0) {
    co_await env->engine()->Delay(downtime);
    env->RestartNode(node);
  }
  co_return;
}

}  // namespace

void FailureInjector::ScheduleCrash(size_t node, SimTime at,
                                    Duration downtime) {
  ++crashes_;
  env_->engine()->SpawnAt(at, CrashAt(env_, node, downtime));
}

size_t FailureInjector::SchedulePoissonCrashes(Duration mttf, SimTime horizon,
                                               Duration downtime) {
  size_t scheduled = 0;
  for (size_t node = 0; node < env_->cluster()->size(); ++node) {
    SimTime t = env_->engine()->now();
    while (true) {
      t += static_cast<Duration>(
          rng_.Exponential(static_cast<double>(mttf)));
      if (t > horizon) break;
      ScheduleCrash(node, t, downtime);
      ++scheduled;
    }
  }
  return scheduled;
}

}  // namespace spongefiles::sponge
