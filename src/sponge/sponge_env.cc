#include "sponge/sponge_env.h"

#include "sponge/repair.h"

namespace spongefiles::sponge {

SpongeEnv::~SpongeEnv() = default;

SpongeEnv::SpongeEnv(cluster::Cluster* cluster, cluster::Dfs* dfs,
                     const SpongeConfig& config,
                     const ChunkPoolConfig& pool_config,
                     const SpongeServerConfig& server_config,
                     const MemoryTrackerConfig& tracker_config)
    : cluster_(cluster), dfs_(dfs), config_(config) {
  registry_.AttachEngine(cluster->engine());
  // One health board and jitter rng per lane (one of each on the legacy
  // engine). Requires any ConfigureShards to have happened before the env
  // is built — Testbed and the benches uphold that. Lane 0 keeps the
  // configured seed verbatim (bit-exact legacy behaviour on an unsharded
  // engine); each worker lane mixes in its index for an independent — but
  // fully deterministic — jitter stream.
  const uint32_t lanes = cluster->engine()->lane_count();
  for (uint32_t lane = 0; lane < lanes; ++lane) {
    health_.push_back(
        std::make_unique<HealthBoard>(cluster->engine(), &config_.rpc));
    const uint64_t seed =
        lane == 0 ? config.rpc_jitter_seed
                  : config.rpc_jitter_seed ^ (0x9e3779b97f4a7c15ull * lane);
    rpc_rngs_.push_back(std::make_unique<Rng>(seed));
  }
  servers_.reserve(cluster->size());
  for (size_t i = 0; i < cluster->size(); ++i) {
    ChunkPoolConfig node_pool = pool_config;
    node_pool.pool_size = cluster->node(i).config().sponge_memory;
    node_pool.chunk_size = config.chunk_size;
    servers_.push_back(std::make_unique<SpongeServer>(
        cluster->engine(), &cluster->network(), &registry_, i, node_pool,
        server_config));
    server_ptrs_.push_back(servers_.back().get());
  }
  for (auto& server : servers_) server->SetPeers(&server_ptrs_);
  // One tracker shard per rack, homed on the rack's lowest-numbered node
  // (any node works; shards are stateless — the paper suggests leader
  // election via ZooKeeper for placement). Single-rack clusters get
  // exactly the old single tracker on node 0.
  tracker_ = std::make_unique<MemoryTracker>(cluster->engine(),
                                             &cluster->network(),
                                             &server_ptrs_, tracker_config);
  repair_ = std::make_unique<RepairService>(this);
}

void SpongeEnv::StartServices() {
  tracker_->Start();
  for (auto& server : servers_) server->StartGc(&server_ptrs_);
  if (config_.replication.enabled) {
    // Crash recovery rides on the tracker's poll loop: the shard that
    // stops hearing from a server reports the death, the repair service
    // restores the two-copy invariant for its chunks.
    RepairService* repair = repair_.get();
    tracker_->SetDeathListener(
        [repair](size_t node) { repair->NotifyServerDeath(node); });
  }
}

void SpongeEnv::StopServices() {
  tracker_->Shutdown();
  for (auto& server : servers_) server->Shutdown();
  repair_->Shutdown();
}

TaskContext SpongeEnv::StartTask(size_t node) {
  TaskContext task;
  task.task_id = registry_.Register(node);
  task.node = node;
  return task;
}

void SpongeEnv::EndTask(const TaskContext& task) {
  registry_.Deregister(task.task_id);
}

}  // namespace spongefiles::sponge
