#ifndef SPONGEFILES_SPONGE_CHUNK_POOL_H_
#define SPONGEFILES_SPONGE_CHUNK_POOL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/byte_runs.h"
#include "common/status.h"
#include "common/units.h"

namespace spongefiles {
namespace sim {
class Engine;
}  // namespace sim

namespace sponge {

// Identifies the task that owns a chunk: the analogue of the (process id,
// IP address) pair the paper stores per chunk slot, used by the garbage
// collector to detect chunks orphaned by dead tasks.
// lint: shard(value)
struct ChunkOwner {
  uint64_t task_id = 0;  // 0 means the slot is free
  size_t node = 0;       // node where the owning task runs
  // Marks a redundant second copy placed by the replication subsystem.
  // Replicas share the owning task's id — GC liveness is keyed by task_id,
  // so a dead attempt's replicas are reclaimed along with its primaries —
  // but carry a distinct identity so diagnostics and ownership checks can
  // tell the copies apart.
  bool replica = false;

  bool operator==(const ChunkOwner& other) const {
    return task_id == other.task_id && node == other.node &&
           replica == other.replica;
  }
};

// A handle to one chunk slot. For bulk chunks (level 0) `segment`/`index`
// name a pool segment and a slot within it, exactly as before the tiered
// rebuild; for small size classes (level >= 1) `segment` names a slab of
// that level and `index` a slot within the slab. Aggregate-initializing
// just {segment, index} therefore still denotes a bulk chunk.
// lint: shard(value)
struct ChunkHandle {
  uint32_t segment = 0;
  uint32_t index = 0;
  uint32_t level = 0;  // 0 = bulk class; i >= 1 = i-th small size class

  bool operator==(const ChunkHandle& other) const {
    return segment == other.segment && index == other.index &&
           level == other.level;
  }
};

// lint: shard(value)
struct ChunkPoolConfig {
  uint64_t pool_size = 1024ull * 1024 * 1024;  // 1 GB sponge per node
  uint64_t chunk_size = 1024ull * 1024;        // bulk 1 MB chunks
  // Mirror of the JVM's 2 GB memory-mapped-file limit that forces the pool
  // to be built from multiple mapped segments.
  uint64_t max_segment_size = 2048ull * 1024 * 1024;
  // Small size classes (slot bytes, ascending), for the header-ish partial
  // chunks that used to burn a whole bulk chunk. Classes are carved on
  // demand: when a small level runs dry it converts one free bulk chunk
  // into a slab of chunk_size / class_bytes slots, and a slab whose slots
  // all free returns its backing chunk to the bulk level — no capacity is
  // statically reserved. Classes that do not divide chunk_size (or are not
  // smaller than it) are dropped at construction.
  std::vector<uint64_t> small_classes = {64 * 1024, 256 * 1024};
  // Compatibility mode: one level of chunk_size slots behind one global
  // lock, the paper's original pool (bench_selfperf --pool=flat).
  bool flat = false;
  // Simulated occupancy of one pool critical section (free-list pop/push
  // plus metadata update). Every operation holds its level's lock for this
  // long in simulated time; allocations additionally *wait* for the lock
  // when a concurrent operation holds it — the convoy the per-level locks
  // exist to break. In flat mode a single lock serializes every operation
  // on the node and an allocation's critical section also covers the
  // linear segment scan (twice the hold). 0 disables the model.
  Duration lock_hold = Micros(2);
};

// The shared sponge-memory pool of one node, rebuilt (ISSUE 10) as a
// tiered, size-classed allocator after ligra's multi-level chunk_allocator
// and the temporal-slab design: a bulk level of chunk_size slots living in
// mapped segments, plus small size-class levels whose slabs are carved on
// demand from free bulk chunks. Each level has its own free list and its
// own (simulated) lock; tasks on the node use the pool directly through
// mapped memory, remote tasks go through the node's SpongeServer.
//
// The pool charges no simulated time itself — it is called from both
// coroutine and plain contexts — but it models lock contention: every
// operation advances its level's lock-busy horizon, and the wait+hold an
// allocation incurred is accumulated for the caller to collect via
// TakeLockWait() and pay as a Delay. Built without an engine (unit tests)
// the lock model is off.
// lint: shard(node)
class ChunkPool {
 public:
  explicit ChunkPool(const ChunkPoolConfig& config,
                     sim::Engine* engine = nullptr);

  ChunkPool(const ChunkPool&) = delete;
  ChunkPool& operator=(const ChunkPool&) = delete;

  // Finds a free slot in the smallest size class that fits `bytes` (0 or
  // anything above the largest small class means a bulk chunk), records
  // `owner` in its metadata entry, and returns its handle;
  // RESOURCE_EXHAUSTED when nothing fits. A small-class request falls
  // upward through larger classes (and finally bulk) when its own level is
  // dry and no bulk chunk is free to carve.
  Result<ChunkHandle> Allocate(const ChunkOwner& owner, uint64_t bytes = 0);

  // Marks the chunk free and drops its contents. Freeing a free chunk or a
  // chunk owned by someone else is an error.
  Status Free(ChunkHandle handle, const ChunkOwner& owner);

  // Frees regardless of owner (garbage collector path).
  Status ForceFree(ChunkHandle handle);

  // Content accessors; the handle must be allocated.
  ByteRuns* chunk_data(ChunkHandle handle);
  Result<ChunkOwner> OwnerOf(ChunkHandle handle) const;

  // Every allocated chunk with its owner. Walks the per-level allocated
  // indexes, so the scan is O(live chunks), not O(total slots) — the GC
  // sweep, quota enforcement, and the repair scanner all ride on this.
  std::vector<std::pair<ChunkHandle, ChunkOwner>> AllocatedChunks() const;

  // Drops all contents and marks everything free (node crash). Small-class
  // slabs dissolve back into bulk chunks.
  void Reset();

  // Simulated lock wait+hold accumulated by Allocate calls since the last
  // collection; the caller (the allocating task or the serving RPC) pays
  // it as a Delay. Frees advance the lock horizon but charge nobody.
  Duration TakeLockWait();

  // Slot capacity of the class `handle` lives in (bulk: chunk_size).
  uint64_t slot_bytes(ChunkHandle handle) const;
  // Slot bytes an allocation of `bytes` would occupy (placement gates).
  uint64_t class_bytes_for(uint64_t bytes) const;

  // Chunks currently held per task, all levels, O(log tasks) — quota
  // checks used to scan the whole pool for this.
  uint64_t HeldByTask(uint64_t task_id) const;

  uint64_t chunk_size() const { return config_.chunk_size; }
  // Bulk slot count — the pool's capacity in chunk_size units. Constant:
  // carving moves capacity between levels but never changes it.
  uint64_t total_chunks() const { return total_chunks_; }
  // Bulk slots neither allocated nor carved into a slab.
  uint64_t free_chunks() const { return free_chunks_; }
  // Free bytes across every level: free bulk chunks plus free small slots
  // in carved slabs.
  uint64_t free_bytes() const;
  // The bulk-class subset of free_bytes (what a full-size spill chunk can
  // actually use; the tracker reports both).
  uint64_t free_bulk_bytes() const { return free_chunks_ * config_.chunk_size; }
  size_t segments() const { return segments_.size(); }

  // 1 + small-class count (1 in flat mode).
  size_t levels() const { return 1 + small_levels_.size(); }
  uint64_t level_class_bytes(size_t level) const;
  uint64_t allocated_count() const { return allocated_count_; }
  // Live internal fragmentation: slot bytes minus requested bytes, summed
  // over allocated slots whose request size was declared.
  uint64_t frag_bytes() const { return frag_bytes_; }
  uint64_t slabs_carved() const { return slabs_carved_; }
  uint64_t slabs_released() const { return slabs_released_; }
  Duration lock_wait_total() const { return lock_wait_total_; }

 private:
  struct Slot {
    ChunkOwner owner;  // task_id == 0 => free
    ByteRuns data;
    uint64_t req_bytes = 0;  // declared size, for fragmentation accounting
  };
  struct Segment {
    std::vector<Slot> slots;
    // Free-slot free list (indices into slots; excludes carved slots).
    std::vector<uint32_t> free_list;
    std::vector<uint8_t> carved;  // slot backs a small-class slab
    // Allocated-slot index: ordered so scans stay deterministic.
    std::set<uint32_t> allocated;
  };
  // One bulk chunk carved into chunk_size / class_bytes small slots.
  struct Slab {
    uint32_t backing_segment = 0;
    uint32_t backing_index = 0;
    bool active = false;
    std::vector<Slot> slots;
    std::vector<uint32_t> free_list;
    std::set<uint32_t> allocated;
  };
  struct SmallLevel {
    uint64_t class_bytes = 0;
    std::vector<Slab> slabs;
    std::vector<uint32_t> retired;  // inactive slab indices, reused first
    std::set<uint32_t> open;        // active slabs with a free slot
    uint64_t free_slots = 0;
    SimTime lock_free_at = 0;
  };

  // Advances `lock_free_at` past one critical section of `hold` and
  // returns the wait+hold incurred (0 without an engine).
  Duration AcquireLock(SimTime* lock_free_at, Duration hold);
  Result<ChunkHandle> AllocateBulk(const ChunkOwner& owner, uint64_t bytes);
  Result<ChunkHandle> AllocateSmall(uint32_t level, const ChunkOwner& owner,
                                    uint64_t bytes);
  // Converts one free bulk chunk into a slab for `level`; false when the
  // bulk level is exhausted.
  bool CarveSlab(SmallLevel* level);
  void ReleaseSlab(SmallLevel* level, uint32_t slab_index);
  Status ForceFreeBulk(ChunkHandle handle);
  Status ForceFreeSmall(ChunkHandle handle);
  const Slot* FindSlot(ChunkHandle handle) const;
  Slot* FindSlot(ChunkHandle handle) {
    return const_cast<Slot*>(
        static_cast<const ChunkPool*>(this)->FindSlot(handle));
  }
  void NoteAllocated(const ChunkOwner& owner, uint64_t class_bytes,
                     uint64_t req_bytes);
  void NoteFreed(const ChunkOwner& owner, uint64_t class_bytes,
                 uint64_t req_bytes);

  ChunkPoolConfig config_;
  sim::Engine* engine_;
  std::vector<Segment> segments_;
  std::vector<SmallLevel> small_levels_;
  uint64_t total_chunks_ = 0;
  uint64_t free_chunks_ = 0;
  uint64_t allocated_count_ = 0;
  uint64_t frag_bytes_ = 0;
  uint64_t slabs_carved_ = 0;
  uint64_t slabs_released_ = 0;
  // Per-task held-chunk counts (ordered: deterministic iteration).
  std::map<uint64_t, uint64_t> held_by_task_;
  SimTime bulk_lock_free_at_ = 0;
  Duration pending_lock_wait_ = 0;
  Duration lock_wait_total_ = 0;
};

}  // namespace sponge
}  // namespace spongefiles

// Hashes for handle/owner keyed containers (replica bookkeeping, tests,
// leak checks) so call sites stop linear-scanning or re-keying via pairs.
template <>
// lint: affinity-ok(std::hash specialization, a stateless value functor)
struct std::hash<spongefiles::sponge::ChunkHandle> {
  size_t operator()(
      const spongefiles::sponge::ChunkHandle& handle) const noexcept {
    uint64_t packed = (static_cast<uint64_t>(handle.level) << 58) ^
                      (static_cast<uint64_t>(handle.segment) << 32) ^
                      handle.index;
    // SplitMix64 finalizer: cheap, well-distributed for dense indices.
    packed ^= packed >> 30;
    packed *= 0xbf58476d1ce4e5b9ull;
    packed ^= packed >> 27;
    packed *= 0x94d049bb133111ebull;
    packed ^= packed >> 31;
    return static_cast<size_t>(packed);
  }
};

template <>
// lint: affinity-ok(std::hash specialization, a stateless value functor)
struct std::hash<spongefiles::sponge::ChunkOwner> {
  size_t operator()(
      const spongefiles::sponge::ChunkOwner& owner) const noexcept {
    uint64_t packed = owner.task_id * 0x9e3779b97f4a7c15ull;
    packed ^= static_cast<uint64_t>(owner.node) + (owner.replica ? 1 : 0) +
              (packed << 6) + (packed >> 2);
    return static_cast<size_t>(packed);
  }
};

#endif  // SPONGEFILES_SPONGE_CHUNK_POOL_H_
