#ifndef SPONGEFILES_SPONGE_CHUNK_POOL_H_
#define SPONGEFILES_SPONGE_CHUNK_POOL_H_

#include <cstdint>
#include <vector>

#include "common/byte_runs.h"
#include "common/status.h"
#include "common/units.h"

namespace spongefiles::sponge {

// Identifies the task that owns a chunk: the analogue of the (process id,
// IP address) pair the paper stores per chunk slot, used by the garbage
// collector to detect chunks orphaned by dead tasks.
// lint: shard(value)
struct ChunkOwner {
  uint64_t task_id = 0;  // 0 means the slot is free
  size_t node = 0;       // node where the owning task runs
  // Marks a redundant second copy placed by the replication subsystem.
  // Replicas share the owning task's id — GC liveness is keyed by task_id,
  // so a dead attempt's replicas are reclaimed along with its primaries —
  // but carry a distinct identity so diagnostics and ownership checks can
  // tell the copies apart.
  bool replica = false;

  bool operator==(const ChunkOwner& other) const {
    return task_id == other.task_id && node == other.node &&
           replica == other.replica;
  }
};

// A handle to one chunk slot: segment index + slot index within segment.
// lint: shard(value)
struct ChunkHandle {
  uint32_t segment = 0;
  uint32_t index = 0;

  bool operator==(const ChunkHandle& other) const {
    return segment == other.segment && index == other.index;
  }
};

// lint: shard(value)
struct ChunkPoolConfig {
  uint64_t pool_size = 1024ull * 1024 * 1024;  // 1 GB sponge per node
  uint64_t chunk_size = 1024ull * 1024;        // fixed 1 MB chunks
  // Mirror of the JVM's 2 GB memory-mapped-file limit that forces the pool
  // to be built from multiple mapped segments.
  uint64_t max_segment_size = 2048ull * 1024 * 1024;
};

// The shared sponge-memory pool of one node: fixed equal-sized chunks plus
// a metadata region (a global lock and one owner entry per chunk). Tasks on
// the node use it directly through mapped memory; remote tasks go through
// the node's SpongeServer. The pool itself is a passive data structure —
// timing for copies in and out of it is charged by the callers.
// lint: shard(node)
class ChunkPool {
 public:
  explicit ChunkPool(const ChunkPoolConfig& config);

  ChunkPool(const ChunkPool&) = delete;
  ChunkPool& operator=(const ChunkPool&) = delete;

  // Finds a free chunk, records `owner` in its metadata entry, and returns
  // its handle; RESOURCE_EXHAUSTED when the pool is full. (The global-lock
  // acquire/release the paper describes is instantaneous in simulated time;
  // its cost is part of the caller's charged copy time.)
  Result<ChunkHandle> Allocate(const ChunkOwner& owner);

  // Marks the chunk free and drops its contents. Freeing a free chunk or a
  // chunk owned by someone else is an error.
  Status Free(ChunkHandle handle, const ChunkOwner& owner);

  // Frees regardless of owner (garbage collector path).
  Status ForceFree(ChunkHandle handle);

  // Content accessors; the handle must be allocated.
  ByteRuns* chunk_data(ChunkHandle handle);
  Result<ChunkOwner> OwnerOf(ChunkHandle handle) const;

  // Every allocated chunk with its owner (garbage-collection scan).
  std::vector<std::pair<ChunkHandle, ChunkOwner>> AllocatedChunks() const;

  // Drops all contents and marks everything free (node crash).
  void Reset();

  uint64_t chunk_size() const { return config_.chunk_size; }
  uint64_t total_chunks() const { return total_chunks_; }
  uint64_t free_chunks() const { return free_chunks_; }
  uint64_t free_bytes() const { return free_chunks_ * config_.chunk_size; }
  size_t segments() const { return segments_.size(); }

 private:
  struct Slot {
    ChunkOwner owner;  // task_id == 0 => free
    ByteRuns data;
  };
  struct Segment {
    std::vector<Slot> slots;
    // Free-slot free list (indices into slots).
    std::vector<uint32_t> free_list;
  };

  bool ValidHandle(ChunkHandle handle) const;

  ChunkPoolConfig config_;
  std::vector<Segment> segments_;
  uint64_t total_chunks_ = 0;
  uint64_t free_chunks_ = 0;
};

}  // namespace spongefiles::sponge

#endif  // SPONGEFILES_SPONGE_CHUNK_POOL_H_
