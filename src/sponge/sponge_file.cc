#include "sponge/sponge_file.h"

#include <algorithm>
#include <string_view>

#include "common/crypto.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace spongefiles::sponge {

namespace {

// Per-medium spill accounting. These are the counters the benches check
// against the SpillStats the tasks report: both are incremented on the same
// code path, once per stored chunk.
// lint: shard(value)
struct MediumMetrics {
  obs::Counter* bytes;
  obs::Counter* chunks;
};

const MediumMetrics& MediumMetricsFor(ChunkLocation location) {
  static obs::Registry& registry = obs::Registry::Default();
  static const MediumMetrics metrics[] = {
      {registry.counter("sponge.spill.bytes", {{"medium", "local-memory"}}),
       registry.counter("sponge.spill.chunks", {{"medium", "local-memory"}})},
      {registry.counter("sponge.spill.bytes", {{"medium", "remote-memory"}}),
       registry.counter("sponge.spill.chunks",
                        {{"medium", "remote-memory"}})},
      {registry.counter("sponge.spill.bytes", {{"medium", "local-ssd"}}),
       registry.counter("sponge.spill.chunks", {{"medium", "local-ssd"}})},
      {registry.counter("sponge.spill.bytes", {{"medium", "local-disk"}}),
       registry.counter("sponge.spill.chunks", {{"medium", "local-disk"}})},
      {registry.counter("sponge.spill.bytes", {{"medium", "dfs"}}),
       registry.counter("sponge.spill.chunks", {{"medium", "dfs"}})},
  };
  return metrics[static_cast<size_t>(location)];
}

obs::Counter* DecisionCounter(std::string_view reason) {
  static obs::Registry& registry = obs::Registry::Default();
  static obs::Counter* const pool_full =
      registry.counter("sponge.alloc.decisions", {{"reason", "pool-full"}});
  static obs::Counter* const tracker_stale = registry.counter(
      "sponge.alloc.decisions", {{"reason", "tracker-stale"}});
  static obs::Counter* const tracker_down = registry.counter(
      "sponge.alloc.decisions", {{"reason", "tracker-down"}});
  static obs::Counter* const rack_restricted = registry.counter(
      "sponge.alloc.decisions", {{"reason", "rack-restricted"}});
  static obs::Counter* const server_sick = registry.counter(
      "sponge.alloc.decisions", {{"reason", "server-sick"}});
  static obs::Counter* const rpc_timeout = registry.counter(
      "sponge.alloc.decisions", {{"reason", "rpc-timeout"}});
  static obs::Counter* const ssd_full = registry.counter(
      "sponge.alloc.decisions", {{"reason", "ssd-full"}});
  static obs::Counter* const ssd_worn = registry.counter(
      "sponge.alloc.decisions", {{"reason", "ssd-worn"}});
  static obs::Counter* const affinity_hit = registry.counter(
      "sponge.alloc.decisions", {{"reason", "affinity-hit"}});
  if (reason == "pool-full") return pool_full;
  if (reason == "ssd-full") return ssd_full;
  if (reason == "ssd-worn") return ssd_worn;
  if (reason == "tracker-stale") return tracker_stale;
  if (reason == "tracker-down") return tracker_down;
  if (reason == "rack-restricted") return rack_restricted;
  if (reason == "server-sick") return server_sick;
  if (reason == "rpc-timeout") return rpc_timeout;
  return affinity_hit;
}

// Remote-memory placements split by rack locality (the cross-rack rung).
const MediumMetrics& RemoteLocalityMetricsFor(bool cross_rack) {
  static obs::Registry& registry = obs::Registry::Default();
  static const MediumMetrics metrics[] = {
      {registry.counter("sponge.spill.remote.bytes",
                        {{"locality", "rack-local"}}),
       registry.counter("sponge.spill.remote.chunks",
                        {{"locality", "rack-local"}})},
      {registry.counter("sponge.spill.remote.bytes",
                        {{"locality", "cross-rack"}}),
       registry.counter("sponge.spill.remote.chunks",
                        {{"locality", "cross-rack"}})},
  };
  return metrics[cross_rack ? 1 : 0];
}

// Replication write-path accounting.
// lint: shard(value)
struct ReplicaMetrics {
  obs::Counter* stored;
  obs::Counter* bytes;
  obs::Counter* skipped;
};

const ReplicaMetrics& ReplicaMetricsAll() {
  static obs::Registry& registry = obs::Registry::Default();
  static const ReplicaMetrics metrics = {
      registry.counter("sponge.replica.stored"),
      registry.counter("sponge.replica.bytes"),
      registry.counter("sponge.replica.skipped"),
  };
  return metrics;
}

// Read-failover accounting: attempted = primary lost with a replica on
// record, won = the replica served the bytes, exhausted = every copy gone.
obs::Counter* FailoverCounter(std::string_view which) {
  static obs::Registry& registry = obs::Registry::Default();
  static obs::Counter* const attempted =
      registry.counter("sponge.read.failover.attempted");
  static obs::Counter* const won =
      registry.counter("sponge.read.failover.won");
  static obs::Counter* const exhausted =
      registry.counter("sponge.read.failover.exhausted");
  if (which == "attempted") return attempted;
  if (which == "won") return won;
  return exhausted;
}

obs::Counter* CorruptionCounter() {
  static obs::Counter* const counter =
      obs::Registry::Default().counter("sponge.chunk.corruptions");
  return counter;
}

// Records why the allocation cascade moved past (or preferred) a placement:
// a counter bump (cluster-wide and per-rack) plus, when tracing, an instant
// event at the task's lane.
void SpillDecision(SpongeEnv* env, const TaskContext* task,
                   const char* reason) {
  DecisionCounter(reason)->Increment();
  // The per-rack breakdown is what lets a tracker-shard outage be pinned
  // to its rack: only that rack's tracker-down count moves.
  obs::Registry::Default()
      .counter("sponge.spill.reason",
               {{"rack", std::to_string(env->cluster()->rack_of(task->node))},
                {"reason", reason}})
      ->Increment();
  obs::Tracer& tracer = obs::Tracer::Default();
  if (tracer.enabled()) {
    tracer.InstantEvent(env->engine()->now(), task->node, task->task_id,
                        "sponge", "spill.decision",
                        {obs::TraceArg::Str("reason", reason)});
  }
}

}  // namespace

const char* ChunkLocationName(ChunkLocation location) {
  switch (location) {
    case ChunkLocation::kLocalMemory:
      return "local-memory";
    case ChunkLocation::kRemoteMemory:
      return "remote-memory";
    case ChunkLocation::kLocalSsd:
      return "local-ssd";
    case ChunkLocation::kLocalDisk:
      return "local-disk";
    case ChunkLocation::kDfs:
      return "dfs";
  }
  return "?";
}

SpongeFile::SpongeFile(SpongeEnv* env, TaskContext* task, std::string name)
    : env_(env), task_(task), name_(std::move(name)) {}

SpongeFile::~SpongeFile() {
  // Deliberately no cleanup here: freeing remote chunks takes simulated
  // time, which a destructor cannot spend. Tasks delete their SpongeFiles
  // explicitly; the sponge servers' GC reclaims anything a buggy or dead
  // task leaves behind (that path is what section 3.1.3 describes).
}

sim::Task<Status> SpongeFile::Append(ByteRuns data) {
  if (state_ != State::kWriting) {
    co_return FailedPrecondition("append on closed SpongeFile");
  }
  if (task_->killed) co_return Aborted("task killed");
  if (!pending_error_.ok()) co_return pending_error_;

  size_ += data.size();
  stats_.bytes_written += data.size();
  buffer_.Append(data);
  const uint64_t chunk_size = env_->config().chunk_size;
  while (buffer_.size() >= chunk_size) {
    ByteRuns chunk = buffer_.SplitPrefix(chunk_size);
    CO_RETURN_IF_ERROR(co_await StoreChunk(std::move(chunk)));
    if (task_->killed) co_return Aborted("task killed");
  }
  co_return Status::OK();
}

// lint: ref-ok(awaited inline by the writer; the record buffer outlives the append)
sim::Task<Status> SpongeFile::AppendBytes(Slice data) {
  ByteRuns runs;
  runs.AppendLiteral(data);
  co_return co_await Append(std::move(runs));
}

sim::Task<Status> SpongeFile::WaitForPendingStore() {
  if (pending_store_ != nullptr) {
    co_await pending_store_->Wait();
    pending_store_.reset();
  }
  co_return pending_error_;
}

sim::Task<Status> SpongeFile::StoreChunk(ByteRuns chunk) {
  // One store may be in flight; wait for it so placement decisions see
  // up-to-date pool state and disk chunks coalesce in order.
  CO_RETURN_IF_ERROR(co_await WaitForPendingStore());

  size_t index = chunks_.size();
  chunks_.emplace_back();

  // Placement is decided synchronously; only the data movement is
  // overlapped with the caller.
  if (env_->config().async_write) {
    auto event = std::make_unique<sim::Event>(env_->engine());
    sim::Event* raw = event.get();
    pending_store_ = std::move(event);
    auto store = [](SpongeFile* file, size_t slot, ByteRuns data,
                    sim::Event* done) -> sim::Task<> {
      Status status = co_await file->StoreIntoRecord(slot, std::move(data));
      if (!status.ok() && file->pending_error_.ok()) {
        file->pending_error_ = status;
      }
      done->Set();
    };
    env_->engine()->Spawn(store(this, index, std::move(chunk), raw));
    co_return Status::OK();
  }
  co_return co_await StoreIntoRecord(index, std::move(chunk));
}

sim::Task<Status> SpongeFile::StoreIntoRecord(size_t index, ByteRuns chunk) {
  ChunkRecord& record = chunks_[index];
  record.size = chunk.size();
  const SpongeConfig& config = env_->config();
  ChunkOwner owner{task_->task_id, task_->node};
  SpongeServer& local = env_->server(task_->node);

  // One span per stored chunk, covering the whole allocate->write cascade;
  // the medium arg is attached where placement is decided.
  obs::SpanGuard span(&obs::Tracer::Default(), env_->engine(), task_->node,
                      task_->task_id, "sponge", "chunk.store");
  span.Arg("bytes", record.size);

  if (config.encrypt) {
    // Transform before the chunk leaves the task (section 3.1.4).
    XteaCtr cipher(XteaCtr::DeriveKey(config.encryption_passphrase));
    cipher.ApplyToLiterals(ChunkNonce(index), &chunk);
    co_await env_->engine()->Delay(
        TransferTime(chunk.size(), config.cipher_bandwidth));
  }
  // Checksum the stored representation (post-encryption) so every read —
  // from any medium — can detect corruption. The hash rides along with the
  // copy, so no simulated time is charged.
  record.checksum = chunk.Checksum64();

  // Copy-on-write view of the stored representation, kept only when
  // replication is on: memory placements below may move `chunk` into a
  // pool slot, and the replica write needs the bytes afterwards.
  ByteRuns replica_copy;
  if (config.replication.enabled) replica_copy = chunk;

  // 1. Local sponge memory. The declared size lets the tiered pool place a
  // partial chunk into a small size class instead of burning a bulk slot.
  Result<ChunkHandle> handle = local.LocalAllocate(owner, chunk.size());
  {
    // Pay the simulated pool-lock convoy the allocation just went through
    // (per-level lock, or the flat pool's global lock).
    Duration lock_wait = local.pool().TakeLockWait();
    if (lock_wait > 0) co_await env_->engine()->Delay(lock_wait);
  }
  if (handle.ok()) {
    bool stored_locally = true;
    if (config.direct_local_access) {
      // Mapped shared memory: a raw copy into the pool.
      co_await env_->engine()->Delay(
          TransferTime(chunk.size(), config.shared_memory_bandwidth));
      *local.pool().chunk_data(*handle) = std::move(chunk);
    } else {
      // Through the local sponge server over a socket (Table 1 column 2).
      // Hardened like a remote write: a hung local server must not park
      // the task; on failure, release the slot and fall down the cascade.
      // (`slot`, not `handle`: factory captures must be trivially
      // destructible — see rpc_client.h.)
      ChunkHandle slot = *handle;
      Status stored = co_await HardenedCall<Status>(
          env_->engine(), &env_->health(), config.rpc, &env_->rpc_rng(),
          task_->node, [this, &local, &owner, slot, &chunk] {
            return local.RemoteWrite(task_->node, slot, owner, chunk);
          });
      if (!stored.ok()) {
        stored_locally = false;
        (void)local.LocalFree(*handle, owner);
        SpillDecision(env_, task_,
                      IsRpcTimeout(stored) ? "rpc-timeout" : "server-sick");
      }
    }
    if (stored_locally) {
      record.location = ChunkLocation::kLocalMemory;
      record.node = task_->node;
      record.handle = *handle;
      ++stats_.chunks_local_memory;
      stats_.bytes_local_memory += record.size;
      // Fragmentation is measured against the slot actually occupied: a
      // small-class slot wastes class_bytes - size, not chunk_size - size.
      stats_.fragmentation_bytes +=
          local.pool().slot_bytes(*handle) - record.size;
      MediumMetricsFor(ChunkLocation::kLocalMemory).bytes->Increment(
          record.size);
      MediumMetricsFor(ChunkLocation::kLocalMemory).chunks->Increment();
      span.Arg("medium", std::string("local-memory"));
      // A crash wipes the local pool even though (in this sim) the task
      // itself keeps running, so local-memory chunks want a replica too.
      if (config.replication.enabled) {
        co_await ReplicateChunk(index, std::move(replica_copy));
      }
      co_return Status::OK();
    }
  } else {
    SpillDecision(env_, task_, "pool-full");
  }

  // 2. Remote sponge memory: first the rack-local rung, then — only when
  // the config allows it and every rack-local candidate is exhausted — the
  // cross-rack rung over the oversubscribed core. Each iteration allocates
  // a slot somewhere and tries the (hardened) write; a server that accepts
  // the allocation but then fails the write is bounced and the next
  // candidate tried, until both rungs run dry and we fall to disk.
  if (config.allow_remote_memory) {
    const int passes = config.allow_cross_rack ? 2 : 1;
    for (int pass = 0; pass < passes; ++pass) {
      const bool cross_rack = pass == 1;
      while (true) {
        auto allocated = co_await AllocateRemote(cross_rack, chunk.size());
        if (!allocated.ok()) break;
        auto [target, remote_handle] = *allocated;
        Status stored = co_await HardenedCall<Status>(
            env_->engine(), &env_->health(), config.rpc, &env_->rpc_rng(),
            target, [this, target, remote_handle, &owner, &chunk] {
              return env_->server(target).RemoteWrite(task_->node,
                                                      remote_handle, owner,
                                                      chunk);
            });
        if (!stored.ok()) {
          SpillDecision(env_, task_,
                        IsRpcTimeout(stored) ? "rpc-timeout" : "server-sick");
          if (std::find(bounced_nodes_.begin(), bounced_nodes_.end(),
                        target) == bounced_nodes_.end()) {
            bounced_nodes_.push_back(target);
          }
          continue;
        }
        record.location = ChunkLocation::kRemoteMemory;
        record.node = target;
        record.handle = remote_handle;
        if (std::find(task_->sponge_affinity.begin(),
                      task_->sponge_affinity.end(),
                      target) == task_->sponge_affinity.end()) {
          task_->sponge_affinity.push_back(target);
        }
        ++stats_.chunks_remote_memory;
        stats_.bytes_remote_memory += record.size;
        if (cross_rack) {
          ++stats_.chunks_remote_cross_rack;
          stats_.bytes_remote_cross_rack += record.size;
        }
        stats_.fragmentation_bytes +=
            env_->server(target).pool().slot_bytes(remote_handle) -
            record.size;
        MediumMetricsFor(ChunkLocation::kRemoteMemory).bytes->Increment(
            record.size);
        MediumMetricsFor(ChunkLocation::kRemoteMemory).chunks->Increment();
        RemoteLocalityMetricsFor(cross_rack).bytes->Increment(record.size);
        RemoteLocalityMetricsFor(cross_rack).chunks->Increment();
        span.Arg("medium", std::string("remote-memory"));
        span.Arg("locality", std::string(cross_rack ? "cross-rack"
                                                    : "rack-local"));
        span.Arg("node", static_cast<uint64_t>(target));
        if (config.replication.enabled) {
          co_await ReplicateChunk(index, std::move(replica_copy));
        }
        co_return Status::OK();
      }
    }
  }

  if (config.memory_only) {
    co_return ResourceExhausted("no sponge memory available");
  }

  // 3. Local SSD: the middle rung between remote memory and the spindle.
  // Capacity is reserved up-front (released on Delete); a worn device
  // whose program op fails just falls through to disk.
  if (config.ssd_enabled) {
    cluster::Node& self = env_->cluster()->node(task_->node);
    if (self.has_ssd()) {
      cluster::Ssd& ssd = self.ssd();
      const uint64_t allowed = static_cast<uint64_t>(
          config.ssd_max_used_fraction * static_cast<double>(ssd.capacity()));
      if (ssd.used_bytes() + chunk.size() > allowed ||
          !ssd.TryReserve(chunk.size())) {
        SpillDecision(env_, task_, "ssd-full");
      } else {
        Status written = co_await ssd.Write(chunk.size());
        if (written.ok()) {
          record.location = ChunkLocation::kLocalSsd;
          record.node = task_->node;
          record.data = std::move(chunk);
          ++stats_.chunks_local_ssd;
          stats_.bytes_local_ssd += record.size;
          MediumMetricsFor(ChunkLocation::kLocalSsd).bytes->Increment(
              record.size);
          MediumMetricsFor(ChunkLocation::kLocalSsd).chunks->Increment();
          span.Arg("medium", std::string("local-ssd"));
          co_return Status::OK();
        }
        ssd.Release(chunk.size());
        SpillDecision(env_, task_, "ssd-worn");
      }
    }
  }

  // 4. Local disk, appending to the previous on-disk chunk when there is
  // one so on-disk data stays contiguous and file-system metadata
  // operations stay rare.
  cluster::LocalFs& fs = env_->cluster()->node(task_->node).fs();
  if (!chunks_.empty() && index > 0 &&
      chunks_[index - 1].location == ChunkLocation::kLocalDisk) {
    ChunkRecord& prev = chunks_[index - 1];
    Status appended = co_await fs.Append(prev.fs_file, chunk.size());
    if (appended.ok()) {
      record.location = ChunkLocation::kLocalDisk;
      record.fs_file = prev.fs_file;
      record.offset = prev.offset + prev.size;
      record.data = std::move(chunk);
      ++stats_.chunks_local_disk;
      stats_.bytes_local_disk += record.size;
      MediumMetricsFor(ChunkLocation::kLocalDisk).bytes->Increment(
          record.size);
      MediumMetricsFor(ChunkLocation::kLocalDisk).chunks->Increment();
      span.Arg("medium", std::string("local-disk"));
      co_return Status::OK();
    }
  } else {
    auto file = fs.Create(name_ + ".spill" + std::to_string(index));
    if (file.ok()) {
      Status appended = co_await fs.Append(*file, chunk.size());
      if (appended.ok()) {
        record.location = ChunkLocation::kLocalDisk;
        record.fs_file = *file;
        record.offset = 0;
        record.data = std::move(chunk);
        ++stats_.chunks_local_disk;
        ++stats_.disk_files;
        stats_.bytes_local_disk += record.size;
        MediumMetricsFor(ChunkLocation::kLocalDisk).bytes->Increment(
            record.size);
        MediumMetricsFor(ChunkLocation::kLocalDisk).chunks->Increment();
        span.Arg("medium", std::string("local-disk"));
        co_return Status::OK();
      }
      (void)fs.Delete(*file);
    }
  }

  // 5. The distributed filesystem, as a last resort.
  record.dfs_name = name_ + ".dfs" + std::to_string(index);
  Status stored =
      co_await env_->dfs()->AppendBlock(record.dfs_name, task_->node,
                                        chunk.size());
  if (!stored.ok()) co_return stored;
  record.location = ChunkLocation::kDfs;
  record.data = std::move(chunk);
  ++stats_.chunks_dfs;
  stats_.bytes_dfs += record.size;
  MediumMetricsFor(ChunkLocation::kDfs).bytes->Increment(record.size);
  MediumMetricsFor(ChunkLocation::kDfs).chunks->Increment();
  span.Arg("medium", std::string("dfs"));
  co_return Status::OK();
}

sim::Task<Result<std::pair<size_t, ChunkHandle>>>
SpongeFile::AllocateRemote(bool cross_rack, uint64_t bytes) {
  const SpongeConfig& config = env_->config();
  if (!free_list_loaded_) {
    Result<std::vector<FreeSpaceEntry>> list =
        co_await env_->tracker().Query(task_->node);
    if (list.ok()) {
      free_list_ = std::move(*list);
    } else {
      // The tracker is an optimization, not a dependency: with no free
      // list we can still try affinity nodes, and otherwise fall to disk.
      SpillDecision(env_, task_, "tracker-down");
      free_list_.clear();
    }
    free_list_loaded_ = true;
  }

  // Each pass walks one locality rung: the rack-local pass only considers
  // same-rack servers, the cross-rack pass only off-rack ones (anything
  // rack-local was already exhausted by then).
  auto eligible = [&](size_t node) {
    if (node == task_->node) return false;
    const bool same_rack = env_->cluster()->SameRack(node, task_->node);
    if (same_rack == cross_rack) {
      // An off-rack candidate skipped with no cross-rack rung to catch it
      // later is the paper's rack restriction biting.
      if (!cross_rack && !config.allow_cross_rack) {
        SpillDecision(env_, task_, "rack-restricted");
      }
      return false;
    }
    return true;
  };
  auto estimate_of = [&](size_t node) -> FreeSpaceEntry* {
    for (FreeSpaceEntry& entry : free_list_) {
      if (entry.node == node) return &entry;
    }
    return nullptr;
  };

  // Candidate order: affinity nodes first (fewer distinct machines hold
  // this task's data, shrinking its failure footprint), then the rest of
  // the tracker's list.
  std::vector<size_t> candidates;
  if (config.affinity) {
    for (size_t node : task_->sponge_affinity) {
      if (eligible(node)) candidates.push_back(node);
    }
  }
  for (const FreeSpaceEntry& entry : free_list_) {
    if (eligible(entry.node) &&
        std::find(candidates.begin(), candidates.end(), entry.node) ==
            candidates.end()) {
      candidates.push_back(entry.node);
    }
  }

  ChunkOwner owner{task_->task_id, task_->node};
  for (size_t node : candidates) {
    if (std::find(bounced_nodes_.begin(), bounced_nodes_.end(), node) !=
        bounced_nodes_.end()) {
      continue;
    }
    // Size-class-aware gate: the slot this chunk will occupy on the
    // candidate, so a full-size chunk skips servers whose bulk level is
    // exhausted even when their small classes still advertise free bytes.
    const uint64_t need =
        env_->server(node).pool().class_bytes_for(bytes);
    FreeSpaceEntry* estimate = estimate_of(node);
    if (estimate != nullptr &&
        (estimate->free_bytes == 0 ||
         (need >= env_->config().chunk_size &&
          estimate->free_bulk_bytes < need))) {
      continue;
    }
    // Circuit breaker: a server with an open breaker is skipped (but not
    // permanently bounced — it may recover and later chunks can use it).
    // An AllowRequest "true" on an open breaker is the half-open probe;
    // the HardenedCall below always settles it via RecordSuccess/Failure.
    if (!env_->health().AllowRequest(node)) {
      SpillDecision(env_, task_, "server-sick");
      continue;
    }
    Result<ChunkHandle> handle = co_await HardenedCall<Result<ChunkHandle>>(
        env_->engine(), &env_->health(), config.rpc, &env_->rpc_rng(), node,
        [this, node, &owner, bytes] {
          return env_->server(node).RemoteAllocate(task_->node, owner, bytes);
        });
    if (handle.ok()) {
      const uint64_t taken = env_->server(node).pool().slot_bytes(*handle);
      if (estimate != nullptr) {
        estimate->free_bytes =
            estimate->free_bytes >= taken ? estimate->free_bytes - taken : 0;
        if (taken >= config.chunk_size) {
          estimate->free_bulk_bytes = estimate->free_bulk_bytes >= taken
                                          ? estimate->free_bulk_bytes - taken
                                          : 0;
        }
      }
      if (config.affinity &&
          std::find(task_->sponge_affinity.begin(),
                    task_->sponge_affinity.end(),
                    node) != task_->sponge_affinity.end()) {
        SpillDecision(env_, task_, "affinity-hit");
      }
      co_return std::make_pair(node, *handle);
    }
    // Stale list entry (dead/quota-limited server) or a sick one that
    // timed out through its retries: remember it is unusable and move on —
    // the paper's "try the rest of the servers in the free list one at a
    // time".
    static obs::Counter* const stale_retries_counter =
        obs::Registry::Default().counter("sponge.alloc.stale_retries");
    ++stats_.stale_list_retries;
    stale_retries_counter->Increment();
    const Status& why = handle.status();
    if (IsRpcTimeout(why)) {
      SpillDecision(env_, task_, "rpc-timeout");
    } else if (why.code() == StatusCode::kUnavailable) {
      SpillDecision(env_, task_, "server-sick");
    } else {
      SpillDecision(env_, task_, "tracker-stale");
    }
    if (estimate != nullptr) {
      estimate->free_bytes = 0;
      estimate->free_bulk_bytes = 0;
    }
    bounced_nodes_.push_back(node);
  }
  co_return NotFound("no remote sponge server with free memory");
}

sim::Task<Status> SpongeFile::Close() {
  if (state_ == State::kDeleted) {
    co_return FailedPrecondition("close on deleted SpongeFile");
  }
  if (state_ == State::kClosed) co_return pending_error_;
  if (!buffer_.empty()) {
    ByteRuns rest = std::move(buffer_);
    buffer_.Clear();
    Status stored = co_await StoreChunk(std::move(rest));
    if (!stored.ok()) co_return stored;
  }
  CO_RETURN_IF_ERROR(co_await WaitForPendingStore());
  state_ = State::kClosed;
  co_return Status::OK();
}

sim::Task<Result<ByteRuns>> SpongeFile::FetchChunk(size_t index) {
  Result<ByteRuns> fetched = co_await FetchChunkRaw(index);
  const SpongeConfig& config = env_->config();
  if (fetched.ok() && config.verify_checksums &&
      fetched->Checksum64() != chunks_[index].checksum) {
    // Bit rot, a stolen pool slot, a buggy server — whatever happened,
    // the chunk is gone. Surface it as lost (UNAVAILABLE) so failover —
    // and failing that, the framework's task retry — regenerates it;
    // never return bad bytes.
    CorruptionCounter()->Increment();
    fetched = Unavailable("chunk checksum mismatch");
  }
  // Failover: a primary lost to a crash, an open breaker, or corruption
  // is served from the replica before the loss reaches the framework (and
  // turns into a task re-run). Only UNAVAILABLE qualifies — other errors
  // (aborted task, corrupt record) are not a lost copy.
  if (!fetched.ok() &&
      fetched.status().code() == StatusCode::kUnavailable &&
      chunks_[index].replica_id != 0) {
    FailoverCounter("attempted")->Increment();
    Result<ByteRuns> replica = co_await FetchFromReplica(index);
    if (replica.ok()) {
      FailoverCounter("won")->Increment();
      ++stats_.replica_failovers;
      fetched = std::move(replica);
    } else {
      FailoverCounter("exhausted")->Increment();
    }
  }
  if (!fetched.ok()) co_return fetched;
  if (config.encrypt) {
    XteaCtr cipher(XteaCtr::DeriveKey(config.encryption_passphrase));
    cipher.ApplyToLiterals(ChunkNonce(index), &*fetched);
    co_await env_->engine()->Delay(
        TransferTime(fetched->size(), config.cipher_bandwidth));
  }
  co_return fetched;
}

sim::Task<> SpongeFile::ReplicateChunk(size_t index, ByteRuns chunk) {
  ChunkRecord& record = chunks_[index];
  const SpongeConfig& config = env_->config();

  // Pressure gate and candidate list both come from the same tracker
  // snapshot the cascade uses, so replication never queries twice.
  if (!free_list_loaded_) {
    Result<std::vector<FreeSpaceEntry>> list =
        co_await env_->tracker().Query(task_->node);
    if (list.ok()) {
      free_list_ = std::move(*list);
    } else {
      free_list_.clear();
    }
    free_list_loaded_ = true;
  }

  // Candidate order: rack-diverse servers first (a whole-rack failure —
  // the switch, a PDU — then still leaves one copy), same-rack as the
  // fallback pass. The pressure gate keeps replication from competing
  // with foreground spills: a server must advertise at least
  // min_free_fraction of its pool free, so replicas only consume slack.
  const size_t primary_rack = env_->cluster()->rack_of(record.node);
  std::vector<size_t> candidates;
  const int passes = config.replication.prefer_rack_diverse ? 2 : 1;
  for (int pass = 0; pass < passes; ++pass) {
    for (const FreeSpaceEntry& entry : free_list_) {
      if (entry.node == record.node || entry.node == task_->node) continue;
      if (std::find(bounced_nodes_.begin(), bounced_nodes_.end(),
                    entry.node) != bounced_nodes_.end()) {
        continue;
      }
      if (config.replication.prefer_rack_diverse) {
        const bool diverse =
            env_->cluster()->rack_of(entry.node) != primary_rack;
        if ((pass == 0) != diverse) continue;
      }
      ChunkPool& pool = env_->server(entry.node).pool();
      const uint64_t capacity = pool.total_chunks() * config.chunk_size;
      const uint64_t min_free = static_cast<uint64_t>(
          config.replication.min_free_fraction * capacity);
      // Size-class-aware placement: gate on the slot this replica will
      // actually occupy, so a small chunk's copy still fits on servers
      // whose bulk level is under pressure.
      const uint64_t need = pool.class_bytes_for(record.size);
      if (entry.free_bytes < min_free || entry.free_bytes < need ||
          (need >= config.chunk_size && entry.free_bulk_bytes < need)) {
        continue;
      }
      candidates.push_back(entry.node);
    }
  }

  obs::SpanGuard span(&obs::Tracer::Default(), env_->engine(), task_->node,
                      task_->task_id, "sponge", "chunk.replicate");
  span.Arg("bytes", record.size);

  // Replicas share the task's id (GC reclaims them with the attempt) but
  // carry the replica mark so their ownership is distinct from the
  // primary's.
  ChunkOwner replica_owner{task_->task_id, task_->node, /*replica=*/true};
  for (size_t node : candidates) {
    if (!env_->health().AllowRequest(node)) continue;
    Result<ChunkHandle> handle = co_await HardenedCall<Result<ChunkHandle>>(
        env_->engine(), &env_->health(), config.rpc, &env_->rpc_rng(), node,
        [this, node, &replica_owner, &record] {
          return env_->server(node).RemoteAllocate(task_->node, replica_owner,
                                                   record.size);
        });
    if (!handle.ok()) continue;
    // `slot`, not `handle`: factory captures must be trivially
    // destructible — see rpc_client.h.
    ChunkHandle slot = *handle;
    Status stored = co_await HardenedCall<Status>(
        env_->engine(), &env_->health(), config.rpc, &env_->rpc_rng(), node,
        [this, node, slot, &replica_owner, &chunk] {
          return env_->server(node).RemoteWrite(task_->node, slot,
                                                replica_owner, chunk);
        });
    // A half-written slot is GC fodder; move to the next candidate.
    if (!stored.ok()) continue;
    const uint64_t taken = env_->server(node).pool().slot_bytes(slot);
    for (FreeSpaceEntry& entry : free_list_) {
      if (entry.node == node && entry.free_bytes >= taken) {
        entry.free_bytes -= taken;
        if (taken >= config.chunk_size &&
            entry.free_bulk_bytes >= taken) {
          entry.free_bulk_bytes -= taken;
        }
        break;
      }
    }
    ReplicaDirectory& directory = env_->replicas();
    record.replica_id =
        directory.Register(task_->task_id, record.size, record.checksum);
    directory.AddLocation(
        record.replica_id,
        {record.node, record.handle,
         ChunkOwner{task_->task_id, task_->node, /*replica=*/false}});
    directory.AddLocation(record.replica_id, {node, slot, replica_owner});
    ++stats_.chunks_replicated;
    stats_.bytes_replicated += record.size;
    ReplicaMetricsAll().stored->Increment();
    ReplicaMetricsAll().bytes->Increment(record.size);
    span.Arg("node", static_cast<uint64_t>(node));
    co_return;
  }
  // Best effort only: under pressure (or with every candidate sick) the
  // chunk simply stays single-copy and a loss falls back to a task re-run.
  ReplicaMetricsAll().skipped->Increment();
}

sim::Task<Result<ByteRuns>> SpongeFile::FetchFromReplica(size_t index) {
  ChunkRecord& record = chunks_[index];
  const SpongeConfig& config = env_->config();
  const ReplicatedChunk* entry = env_->replicas().Find(record.replica_id);
  if (entry == nullptr) {
    co_return Unavailable("replica directory entry gone");
  }
  // Copy: repair and GC mutate the directory across the awaits below.
  const std::vector<ReplicaLocation> locations = entry->locations;
  for (const ReplicaLocation& location : locations) {
    if (location.node == record.node && location.handle == record.handle) {
      continue;  // the copy that just failed
    }
    SpongeServer& server = env_->server(location.node);
    if (!server.alive()) continue;
    if (!env_->health().AllowRequest(location.node)) continue;
    // Named locals: factory captures must be trivially destructible — see
    // rpc_client.h.
    const ChunkHandle slot = location.handle;
    const ChunkOwner owner = location.owner;
    Result<ByteRuns> fetched{ByteRuns{}};
    if (config.rpc.hedge_reads) {
      fetched = co_await HedgedCall<Result<ByteRuns>>(
          env_->engine(), &env_->health(), config.rpc, location.node,
          [this, &server, slot, owner] {
            return server.RemoteRead(task_->node, slot, owner);
          });
    } else {
      fetched = co_await HardenedCall<Result<ByteRuns>>(
          env_->engine(), &env_->health(), config.rpc, &env_->rpc_rng(),
          location.node, [this, &server, slot, owner] {
            return server.RemoteRead(task_->node, slot, owner);
          });
    }
    if (!fetched.ok()) continue;
    // The replica is verified independently of the primary read: a
    // corrupted primary must not be "rescued" by an equally bad copy.
    if (config.verify_checksums &&
        fetched->Checksum64() != record.checksum) {
      CorruptionCounter()->Increment();
      continue;
    }
    co_return fetched;
  }
  co_return Unavailable("all replica copies lost");
}

uint64_t SpongeFile::ChunkNonce(size_t index) const {
  uint64_t h = 14695981039346656037ull;
  for (char c : name_) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h ^ (task_->task_id << 20) ^ index;
}

sim::Task<Result<ByteRuns>> SpongeFile::FetchChunkRaw(size_t index) {
  ChunkRecord& record = chunks_[index];
  const SpongeConfig& config = env_->config();
  ChunkOwner owner{task_->task_id, task_->node};
  obs::SpanGuard span(&obs::Tracer::Default(), env_->engine(), task_->node,
                      task_->task_id, "sponge", "chunk.read");
  span.Arg("medium", std::string(ChunkLocationName(record.location)));
  span.Arg("bytes", record.size);
  switch (record.location) {
    case ChunkLocation::kLocalMemory: {
      SpongeServer& server = env_->server(record.node);
      ByteRuns* data = server.pool().chunk_data(record.handle);
      if (data == nullptr) {
        co_return Unavailable("local chunk lost");
      }
      if (config.direct_local_access) {
        co_await env_->engine()->Delay(
            TransferTime(record.size, config.shared_memory_bandwidth));
        co_return *data;
      }
      co_return co_await HardenedCall<Result<ByteRuns>>(
          env_->engine(), &env_->health(), config.rpc, &env_->rpc_rng(),
          record.node, [this, &server, &record, &owner] {
            return server.RemoteRead(task_->node, record.handle, owner);
          });
    }
    case ChunkLocation::kRemoteMemory: {
      SpongeServer& server = env_->server(record.node);
      if (!server.alive()) {
        co_return Unavailable("remote sponge server down");
      }
      // Breaker gate: a known-sick server is not worth the deadline wait —
      // report the chunk lost so the framework's retry kicks in.
      if (!env_->health().AllowRequest(record.node)) {
        SpillDecision(env_, task_, "server-sick");
        co_return Unavailable("sponge server circuit open");
      }
      Result<ByteRuns> fetched{ByteRuns{}};
      if (config.rpc.hedge_reads) {
        // Hedged read: a duplicate races the slow copy under the loose
        // hedge_deadline instead of deadline-retrying into the breaker —
        // a slow-but-honest server still loses only latency, not chunks.
        fetched = co_await HedgedCall<Result<ByteRuns>>(
            env_->engine(), &env_->health(), config.rpc, record.node,
            [this, &server, &record, &owner] {
              return server.RemoteRead(task_->node, record.handle, owner);
            });
      } else {
        fetched = co_await HardenedCall<Result<ByteRuns>>(
            env_->engine(), &env_->health(), config.rpc, &env_->rpc_rng(),
            record.node, [this, &server, &record, &owner] {
              return server.RemoteRead(task_->node, record.handle, owner);
            });
      }
      if (!fetched.ok() &&
          fetched.status().code() != StatusCode::kUnavailable) {
        // FAILED_PRECONDITION / NOT_FOUND from the server means our slot
        // is gone (e.g. a crash-restart cycle); to the reader that is the
        // same lost chunk.
        co_return Unavailable("remote chunk lost: " +
                              fetched.status().message());
      }
      co_return fetched;
    }
    case ChunkLocation::kLocalSsd: {
      // Reads still work on a worn device (wear kills program ops, not
      // page reads); a slow SSD just stretches the transfer.
      cluster::Ssd& ssd = env_->cluster()->node(task_->node).ssd();
      Status read = co_await ssd.Read(record.size);
      if (!read.ok()) co_return read;
      co_return record.data;
    }
    case ChunkLocation::kLocalDisk: {
      cluster::LocalFs& fs = env_->cluster()->node(task_->node).fs();
      Status read = co_await fs.Read(record.fs_file, record.offset,
                                     record.size);
      if (!read.ok()) co_return read;
      co_return record.data;
    }
    case ChunkLocation::kDfs: {
      Status read = co_await env_->dfs()->Read(record.dfs_name, task_->node,
                                               0, record.size);
      if (!read.ok()) co_return read;
      co_return record.data;
    }
  }
  co_return Internal("corrupt chunk record");
}

void SpongeFile::MaybePrefetch(size_t index) {
  if (!env_->config().prefetch) return;
  if (index >= chunks_.size()) return;
  // Local-memory chunks are already a memory copy away; prefetching them
  // buys nothing (the paper prefetches the next non-local chunk).
  if (chunks_[index].location == ChunkLocation::kLocalMemory) return;
  prefetch_done_ = std::make_unique<sim::Event>(env_->engine());
  prefetch_index_ = index;
  prefetch_active_ = true;
  auto fetch = [](SpongeFile* file, size_t slot,
                  sim::Event* done) -> sim::Task<> {
    file->prefetch_result_ = co_await file->FetchChunk(slot);
    done->Set();
  };
  env_->engine()->Spawn(fetch(this, index, prefetch_done_.get()));
}

sim::Task<Result<ByteRuns>> SpongeFile::ReadNext() {
  if (state_ != State::kClosed) {
    co_return FailedPrecondition("read before Close (or after Delete)");
  }
  if (task_->killed) co_return Aborted("task killed");
  if (next_read_ >= chunks_.size()) co_return ByteRuns{};

  size_t index = next_read_++;
  Result<ByteRuns> result{ByteRuns{}};
  if (prefetch_active_ && prefetch_index_ == index) {
    co_await prefetch_done_->Wait();
    prefetch_active_ = false;
    result = std::move(prefetch_result_);
    prefetch_result_ = ByteRuns{};
  } else {
    result = co_await FetchChunk(index);
  }
  // Kick off the next chunk's fetch before handing this one back, so the
  // caller's processing overlaps the next transfer.
  MaybePrefetch(next_read_);
  co_return result;
}

sim::Task<> SpongeFile::Delete() {
  if (state_ == State::kDeleted) co_return;
  obs::SpanGuard span(&obs::Tracer::Default(), env_->engine(), task_->node,
                      task_->task_id, "sponge", "file.delete");
  span.Arg("chunks", static_cast<uint64_t>(chunks_.size()));
  (void)co_await WaitForPendingStore();
  if (prefetch_active_) {
    co_await prefetch_done_->Wait();
    prefetch_active_ = false;
  }
  state_ = State::kDeleted;
  ChunkOwner owner{task_->task_id, task_->node};
  std::vector<uint64_t> deleted_files;
  for (ChunkRecord& record : chunks_) {
    switch (record.location) {
      case ChunkLocation::kLocalMemory:
        (void)env_->server(record.node).LocalFree(record.handle, owner);
        break;
      case ChunkLocation::kRemoteMemory:
        // Best effort, one attempt under deadline, and none at all for
        // dead or breaker-open servers: the GC sweep is the backstop for
        // anything a free misses.
        if (env_->server(record.node).alive() &&
            !env_->health().IsOpen(record.node)) {
          // Named local, not a temporary argument (see rpc_client.h).
          sim::Task<Status> free_op = env_->server(record.node)
              .RemoteFree(task_->node, record.handle, owner);
          (void)co_await CallWithDeadline<Status>(
              env_->engine(), env_->config().rpc.deadline,
              std::move(free_op));
        }
        break;
      case ChunkLocation::kLocalSsd:
        env_->cluster()->node(task_->node).ssd().Release(record.size);
        record.data.Clear();
        break;
      case ChunkLocation::kLocalDisk: {
        // Coalesced chunks share one file; delete it once.
        if (std::find(deleted_files.begin(), deleted_files.end(),
                      record.fs_file) == deleted_files.end()) {
          (void)env_->cluster()->node(task_->node).fs().Delete(
              record.fs_file);
          deleted_files.push_back(record.fs_file);
        }
        record.data.Clear();
        break;
      }
      case ChunkLocation::kDfs:
        (void)env_->dfs()->Delete(record.dfs_name);
        record.data.Clear();
        break;
    }
    if (record.replica_id != 0) {
      // Free the extra copies (the primary was handled above) and drop the
      // directory entry so repair stops maintaining it. Best effort like
      // the primary frees: GC is the backstop.
      const ReplicatedChunk* entry = env_->replicas().Find(record.replica_id);
      if (entry != nullptr) {
        const std::vector<ReplicaLocation> locations = entry->locations;
        for (const ReplicaLocation& location : locations) {
          if (location.node == record.node &&
              location.handle == record.handle) {
            continue;  // the primary copy, already freed
          }
          if (location.node == task_->node) {
            (void)env_->server(location.node).LocalFree(location.handle,
                                                        location.owner);
            continue;
          }
          if (!env_->server(location.node).alive() ||
              env_->health().IsOpen(location.node)) {
            continue;
          }
          // Named local, not a temporary argument (see rpc_client.h).
          sim::Task<Status> free_op = env_->server(location.node)
              .RemoteFree(task_->node, location.handle, location.owner);
          (void)co_await CallWithDeadline<Status>(
              env_->engine(), env_->config().rpc.deadline,
              std::move(free_op));
        }
      }
      env_->replicas().Forget(record.replica_id);
    }
  }
}

std::vector<ChunkLocation> SpongeFile::ChunkPlacements() const {
  std::vector<ChunkLocation> out;
  out.reserve(chunks_.size());
  for (const ChunkRecord& record : chunks_) out.push_back(record.location);
  return out;
}

}  // namespace spongefiles::sponge
