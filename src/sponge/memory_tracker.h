#ifndef SPONGEFILES_SPONGE_MEMORY_TRACKER_H_
#define SPONGEFILES_SPONGE_MEMORY_TRACKER_H_

#include <cstdint>
#include <vector>

#include "cluster/network.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sim/task.h"
#include "sponge/sponge_server.h"

namespace spongefiles::sponge {

// Free-space snapshot for one sponge server, as reported by a poll.
struct FreeSpaceEntry {
  size_t node = 0;
  uint64_t free_bytes = 0;
};

struct MemoryTrackerConfig {
  Duration poll_period = Seconds(1);
  uint64_t rpc_message_bytes = 256;
};

// The single cluster-wide memory tracking server. It periodically polls
// every sponge server for free space and hands the (deliberately,
// cheaply stale) list to SpongeFiles that need remote chunks. The tracker
// is stateless: it can restart anywhere and rebuild its view in one poll
// round, which is exactly why the paper accepts the relaxed consistency —
// allocation failures from staleness just fall through to the next server
// on the list and ultimately to disk.
class MemoryTracker {
 public:
  MemoryTracker(sim::Engine* engine, cluster::Network* network,
                std::vector<SpongeServer*>* servers, size_t home_node,
                const MemoryTrackerConfig& config);

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  // Launches the polling loop (runs until Shutdown).
  void Start();
  void Shutdown() { stopping_ = true; }

  // One poll round: RPCs every live server for its free space and
  // replaces the published list.
  sim::Task<> PollOnce();

  // Client query from `from_node`: returns the current (possibly stale)
  // list of servers with free memory, most free space first. Charges the
  // query RPC. UNAVAILABLE while the tracker is down — clients degrade to
  // an empty free list (all spills fall through to disk) rather than
  // blocking, because the tracker is an optimization, not a dependency.
  sim::Task<Result<std::vector<FreeSpaceEntry>>> Query(size_t from_node);

  // Snapshot without RPC cost (tests and diagnostics).
  const std::vector<FreeSpaceEntry>& snapshot() const { return free_list_; }

  uint64_t polls_completed() const { return polls_completed_; }

  // --- gray failures ---

  // Tracker outage: queries fail UNAVAILABLE and polling stops (the
  // published list is rebuilt one poll round after recovery — the
  // stateless-restart story the paper tells).
  void SetDown(bool down) { down_ = down; }
  bool down() const { return down_; }

  // Staleness spike: polling pauses but queries still answer with the
  // last published list (a wedged poller, or servers too slow to answer).
  void SetPollPaused(bool paused) { poll_paused_ = paused; }

 private:
  sim::Task<> PollLoop();

  sim::Engine* engine_;
  cluster::Network* network_;
  std::vector<SpongeServer*>* servers_;
  size_t home_node_;
  MemoryTrackerConfig config_;

  std::vector<FreeSpaceEntry> free_list_;
  bool stopping_ = false;
  bool running_ = false;
  bool down_ = false;
  bool poll_paused_ = false;
  uint64_t polls_completed_ = 0;
};

}  // namespace spongefiles::sponge

#endif  // SPONGEFILES_SPONGE_MEMORY_TRACKER_H_
