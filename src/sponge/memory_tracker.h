#ifndef SPONGEFILES_SPONGE_MEMORY_TRACKER_H_
#define SPONGEFILES_SPONGE_MEMORY_TRACKER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/network.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sim/task.h"
#include "sponge/sponge_server.h"

namespace spongefiles::sponge {

// Free-space snapshot for one sponge server, as reported by a poll (or, for
// cross-rack entries, by a gossiped digest).
// lint: shard(value)
struct FreeSpaceEntry {
  size_t node = 0;
  uint64_t free_bytes = 0;
  // The bulk-size-class subset of free_bytes (tiered pool): what a
  // full-size chunk can actually use on this server. Lets the cascade
  // skip servers whose remaining space is all small-class slots.
  uint64_t free_bulk_bytes = 0;
  size_t rack = 0;
};

// lint: shard(value)
struct MemoryTrackerConfig {
  Duration poll_period = Seconds(1);
  uint64_t rpc_message_bytes = 256;
  // --- sharded-tracker gossip ---
  // Anti-entropy round period: each round every shard exchanges its full
  // digest set with one rotating partner, so new information reaches every
  // shard in O(log num_racks) rounds.
  Duration gossip_period = Seconds(1);
  // Wire size per digest header and per carried free-space entry; the
  // digest is compact by construction (top-N entries, not the full rack).
  uint64_t gossip_digest_bytes = 32;
  uint64_t gossip_entry_bytes = 24;
  // Top-N free-space entries carried per rack digest.
  size_t digest_entries = 16;
  // Staleness bound: merged answers drop any remote-rack digest older than
  // this, so a dead or partitioned shard's rack fades from other racks'
  // cross-rack candidates instead of attracting doomed allocations.
  Duration max_digest_age = Seconds(10);
};

// Compact free-space summary of one rack, exchanged between tracker shards
// during anti-entropy gossip. `version` is the owning shard's poll counter;
// merges keep the higher version, so digests only move forward no matter
// what order gossip delivers them in.
// lint: shard(value)
struct RackDigest {
  size_t rack = 0;
  uint64_t version = 0;
  SimTime built_at = 0;
  uint64_t total_free = 0;
  std::vector<FreeSpaceEntry> top;  // largest-free-first, at most top-N
};

// One tracker shard: owns a single rack, polls only that rack's sponge
// servers, and keeps a digest table for every other rack fed by gossip.
// The shard home is the rack's lowest-numbered node, so queries from rack
// members never cross the core.
// lint: shard(rack)
class TrackerShard {
 public:
  TrackerShard(sim::Engine* engine, cluster::Network* network,
               std::vector<SpongeServer*> members, size_t rack,
               size_t num_racks, const MemoryTrackerConfig* config);

  TrackerShard(const TrackerShard&) = delete;
  TrackerShard& operator=(const TrackerShard&) = delete;

  // One poll round over this rack's live servers; rebuilds the rack free
  // list and this rack's own digest.
  sim::Task<> PollOnce();

  // Fresh (last-poll) free list for this shard's own rack, most free first.
  const std::vector<FreeSpaceEntry>& rack_list() const { return rack_list_; }

  // Everything this shard knows: its own digest plus gossiped ones. Entries
  // with version == 0 are unheard-from racks.
  const std::vector<RackDigest>& digests() const { return digests_; }

  // Keeps `digest` iff it is newer than what the table already holds.
  void MergeDigest(const RackDigest& digest);

  // Cluster-wide answer from this shard's bounded-staleness view: the own
  // rack's fresh list plus, for every other rack, the digest's top entries
  // — unless the digest is older than config.max_digest_age, in which case
  // the rack is omitted entirely. Sorted most-free-first, node-ascending.
  std::vector<FreeSpaceEntry> MergedView(SimTime now) const;

  // Death detection: the poll loop is the one component that regularly
  // talks to every server on the rack, so an alive -> dead transition
  // observed by PollOnce (the sim's stand-in for a poll RPC timing out) is
  // where a fail-stop crash becomes actionable. The listener fires once
  // per transition, from inside the polling coroutine; a server that
  // restarts and dies again fires again.
  void SetDeathListener(std::function<void(size_t node)> listener) {
    death_listener_ = std::move(listener);
  }

  size_t rack() const { return rack_; }
  size_t home_node() const { return home_node_; }
  uint64_t polls_completed() const { return polls_completed_; }
  uint64_t queries_served() const { return queries_served_; }
  uint64_t digests_merged() const { return digests_merged_; }
  void RecordQuery() { ++queries_served_; }

  // --- gray failures ---

  // Shard outage: this rack's queries fail UNAVAILABLE and its polling and
  // gossip stop. Other racks keep their last digest of this rack until it
  // ages past the staleness bound, then drop it.
  void SetDown(bool down) { down_ = down; }
  bool down() const { return down_; }

  // Staleness spike: polling pauses but queries still answer.
  void SetPollPaused(bool paused) { poll_paused_ = paused; }
  bool poll_paused() const { return poll_paused_; }

  // Gossip partition: the shard keeps serving its own rack from fresh
  // polls, but exchanges no digests — its view of other racks (and theirs
  // of it) ages out until the partition heals.
  void SetGossipPartitioned(bool partitioned) {
    gossip_partitioned_ = partitioned;
  }
  bool gossip_partitioned() const { return gossip_partitioned_; }

 private:
  sim::Engine* engine_;
  cluster::Network* network_;
  std::vector<SpongeServer*> members_;
  size_t rack_;
  size_t home_node_;
  const MemoryTrackerConfig* config_;

  std::vector<FreeSpaceEntry> rack_list_;
  std::vector<RackDigest> digests_;  // indexed by rack
  // Last liveness observed per member (parallel to members_), for
  // edge-triggered death detection.
  std::vector<uint8_t> member_alive_;
  std::function<void(size_t node)> death_listener_;
  bool down_ = false;
  bool poll_paused_ = false;
  bool gossip_partitioned_ = false;
  uint64_t polls_completed_ = 0;
  uint64_t queries_served_ = 0;
  uint64_t digests_merged_ = 0;
};

// The sharded memory tracker: one TrackerShard per rack plus the gossip
// loop that stitches their views together. Replaces the paper's single
// cluster-wide tracker — same deliberately-stale free list contract, but
// polls stay rack-local (no poll RPC ever crosses the core), a shard
// outage blinds only its own rack, and cross-rack visibility degrades
// gracefully through the digest staleness bound instead of failing whole.
// On a single-rack cluster this degenerates to exactly the old tracker:
// one shard on node 0, no gossip.
// lint: shard(global: facade routing queries to rack shards; snapshot and poll aggregation are control-plane only)
class ShardedMemoryTracker {
 public:
  ShardedMemoryTracker(sim::Engine* engine, cluster::Network* network,
                       std::vector<SpongeServer*>* servers,
                       const MemoryTrackerConfig& config);

  ShardedMemoryTracker(const ShardedMemoryTracker&) = delete;
  ShardedMemoryTracker& operator=(const ShardedMemoryTracker&) = delete;

  // Launches every shard's polling loop and the gossip loop.
  void Start();
  void Shutdown() { stopping_ = true; }

  // One full round: every live shard polls its rack, then one anti-entropy
  // exchange propagates the digests (tests prime the free list with this).
  sim::Task<> PollOnce();

  // Client query from `from_node`: one rack-local RPC to the node's own
  // shard, answered from the shard's bounded-staleness merged view.
  // UNAVAILABLE while that shard is down — callers degrade to an empty
  // free list (spills fall through to disk) rather than blocking.
  //
  // Sharded engine: when the shard's home node lives on a foreign lane
  // (node projection; never the rack projection, where the rack-local
  // shard shares the caller's lane), the query hops to the global lane
  // and back, like every other cross-lane RPC. The reply is a value
  // vector — nothing shared crosses the boundary.
  sim::Task<Result<std::vector<FreeSpaceEntry>>> Query(size_t from_node);

  // Union of all shards' fresh rack lists, without RPC cost (tests and
  // diagnostics). Rebuilt on demand.
  const std::vector<FreeSpaceEntry>& snapshot() const;

  // Complete cluster-coverage rounds: the minimum over shards, so a wedged
  // shard shows up as the whole tracker falling behind.
  uint64_t polls_completed() const;

  // Installs `listener` on every shard (each shard watches its own rack).
  void SetDeathListener(std::function<void(size_t node)> listener) {
    for (auto& shard : shards_) shard->SetDeathListener(listener);
  }

  size_t num_shards() const { return shards_.size(); }
  TrackerShard& shard(size_t rack) { return *shards_[rack]; }
  const TrackerShard& shard(size_t rack) const { return *shards_[rack]; }

  uint64_t gossip_rounds() const { return gossip_rounds_; }

  // --- gray failures ---

  // Whole-tracker outage/pause: applied to every shard (the legacy chaos
  // events from PR 2 keep their meaning).
  void SetDown(bool down);
  bool down() const;
  void SetPollPaused(bool paused);

  // Per-shard variants, promoted into FailureInjector chaos schedules.
  void SetShardDown(size_t rack, bool down) { shards_[rack]->SetDown(down); }
  void SetShardPollPaused(size_t rack, bool paused) {
    shards_[rack]->SetPollPaused(paused);
  }
  void SetGossipPartitioned(size_t rack, bool partitioned) {
    shards_[rack]->SetGossipPartitioned(partitioned);
  }

 private:
  sim::Task<Result<std::vector<FreeSpaceEntry>>> QueryBody(size_t from_node);
  sim::Task<> ShardPollLoop(TrackerShard* shard);
  sim::Task<> GossipLoop();
  // One anti-entropy round: shard i exchanges full digest sets with shard
  // (i + step) % R, with `step` rotating 1..R-1 each round so every pair
  // meets periodically. Down or partitioned shards sit the round out.
  sim::Task<> GossipRound();
  sim::Task<> Exchange(TrackerShard* a, TrackerShard* b);
  uint64_t DigestWireBytes(const TrackerShard& shard) const;

  sim::Engine* engine_;
  cluster::Network* network_;
  MemoryTrackerConfig config_;
  std::vector<std::unique_ptr<TrackerShard>> shards_;
  mutable std::vector<FreeSpaceEntry> snapshot_cache_;
  bool stopping_ = false;
  bool running_ = false;
  uint64_t gossip_rounds_ = 0;
  uint64_t gossip_step_ = 1;
};

// The facade keeps the original name: the rest of the tree (and the test
// prime idiom) talks to "the memory tracker" regardless of shard count.
using MemoryTracker = ShardedMemoryTracker;

}  // namespace spongefiles::sponge

#endif  // SPONGEFILES_SPONGE_MEMORY_TRACKER_H_
