#ifndef SPONGEFILES_SPONGE_FAILURE_H_
#define SPONGEFILES_SPONGE_FAILURE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/units.h"
#include "sponge/sponge_env.h"

namespace spongefiles::sponge {

// The paper's failure analysis (section 4.3): a task whose spilled data is
// spread over N machines fails if any of them fails during its runtime t.
// Machine failures are modeled as a Poisson process, giving
//   P = 1 - exp(-N * t / MTTF).
double TaskFailureProbability(int num_machines, Duration task_runtime,
                              Duration mttf);

// The fault vocabulary the injector speaks. Crashes are the paper's
// fail-stop model; the rest are gray failures — the machine stays up but
// misbehaves — which is what the client-side hardening (rpc_client.h)
// exists to survive.
enum class FaultKind {
  kCrash,            // fail-stop: pool contents lost, RPCs UNAVAILABLE
  kHang,             // RPCs park unanswered until the hang clears
  kRpcDelay,         // every RPC gains server-side processing delay
  kDiskSlowdown,     // disk accesses take `severity` times longer
  kLinkDegradation,  // NIC at `severity` of nominal bandwidth + latency
  kTrackerOutage,    // every tracker shard: queries fail, polling stops
  kTrackerStale,     // every shard pauses polling; queries serve aging lists
  kBitRot,           // one random in-pool chunk byte flips
  // Sharded-tracker gray failures; FaultEvent.node carries the RACK.
  kTrackerShardOutage,  // one rack's shard: queries fail, polling stops
  kTrackerShardStale,   // one rack's shard pauses polling
  kGossipPartition,     // one shard stops exchanging digests
  // Local-SSD gray failures (no-ops on nodes without an SSD).
  kSsdSlowdown,  // SSD accesses take `severity` times longer
  kSsdWear,      // endurance exhausted: writes fail, reads still work
};

// Every fault kind, in declaration order. Kept next to the enum so adding
// a kind updates both (the round-trip test catches a missed entry).
inline constexpr FaultKind kAllFaultKinds[] = {
    FaultKind::kCrash,
    FaultKind::kHang,
    FaultKind::kRpcDelay,
    FaultKind::kDiskSlowdown,
    FaultKind::kLinkDegradation,
    FaultKind::kTrackerOutage,
    FaultKind::kTrackerStale,
    FaultKind::kBitRot,
    FaultKind::kTrackerShardOutage,
    FaultKind::kTrackerShardStale,
    FaultKind::kGossipPartition,
    FaultKind::kSsdSlowdown,
    FaultKind::kSsdWear,
};

const char* FaultKindName(FaultKind kind);

// Inverse of FaultKindName (fault schedules read back from logs/configs);
// INVALID_ARGUMENT for an unknown name.
Result<FaultKind> FaultKindFromName(std::string_view name);

// One scheduled fault, recorded so tests can assert determinism and logs
// can explain a run. `severity` is the slowdown factor (kDiskSlowdown),
// the bandwidth fraction (kLinkDegradation), or unused.
// lint: shard(value)
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  size_t node = 0;
  SimTime at = 0;
  Duration duration = 0;  // downtime / hang length / degradation window
  double severity = 0.0;

  bool operator==(const FaultEvent& other) const {
    return kind == other.kind && node == other.node && at == other.at &&
           duration == other.duration && severity == other.severity;
  }
};

// Knobs for ScheduleChaos: a randomized fault schedule drawn from the
// injector's seeded Rng, uniformly over [start, horizon] and over the
// enabled fault kinds.
// lint: shard(value)
struct ChaosOptions {
  SimTime start = 0;
  SimTime horizon = 0;
  size_t num_faults = 8;
  Duration min_duration = Millis(200);
  Duration max_duration = Seconds(5);
  bool crashes = true;
  // When set, chaos crashes are fail-stop (the node never restarts) —
  // the paper's failure model and what the replication subsystem is built
  // to survive. Off, crashed nodes restart after the drawn span.
  bool fail_stop_crashes = false;
  bool hangs = true;
  bool rpc_delays = true;
  bool disk_slowdowns = true;
  bool link_degradations = true;
  bool tracker_outages = true;
  bool bit_rot = true;
  // Per-shard tracker faults (outage + staleness, rack drawn from the node
  // draw) and gossip partitions. No-ops degrade gracefully on single-rack
  // clusters, where the one shard IS the tracker.
  bool tracker_shard_faults = true;
  bool gossip_partitions = true;
  // SSD slowdowns and wear-out (no-ops on SSD-less nodes, where the
  // cascade has no SSD rung to degrade).
  bool ssd_faults = true;
};

// Injects machine failures into a SpongeEnv: either scheduled
// deterministically (tests) or drawn from the seeded Rng (the failure
// experiment and the chaos test). All randomness is consumed at schedule
// time, never at fire time, so two injectors with the same seed and the
// same schedule calls produce identical fault timelines regardless of
// what the workload does in between.
// lint: shard(global: chaos controller that reaches into components by design; test-only machinery outside the parallel data plane)
class FailureInjector {
 public:
  FailureInjector(SpongeEnv* env, uint64_t seed)
      : env_(env), rng_(seed) {}

  // Crashes `node` at absolute simulated time `at` (optionally restarting
  // it `downtime` later, with an empty pool — sponge servers are
  // stateless).
  void ScheduleCrash(size_t node, SimTime at, Duration downtime = 0);

  // Hangs `node`'s sponge server at `at` for `duration`: requests park
  // unanswered (clients' deadlines fire); the machine itself stays alive.
  void ScheduleHang(size_t node, SimTime at, Duration duration);

  // Adds `extra` of server-side delay to every RPC on `node` during the
  // window (an overloaded host or GC-pausing process).
  void ScheduleRpcDelay(size_t node, SimTime at, Duration extra,
                        Duration duration);

  // Multiplies `node`'s disk access times by `factor` during the window.
  void ScheduleDiskSlowdown(size_t node, SimTime at, double factor,
                            Duration duration);

  // Multiplies `node`'s SSD access times by `factor` during the window
  // (thermal throttling, a congested controller). No-op without an SSD.
  void ScheduleSsdSlowdown(size_t node, SimTime at, double factor,
                           Duration duration);

  // Wears out `node`'s SSD for the window: writes fail UNAVAILABLE (the
  // cascade falls through to disk), reads of stored chunks still succeed.
  void ScheduleSsdWear(size_t node, SimTime at, Duration duration);

  // Degrades `node`'s NIC to `bandwidth_factor` of nominal and adds
  // `extra_latency` per transfer during the window.
  void ScheduleLinkDegradation(size_t node, SimTime at,
                               double bandwidth_factor,
                               Duration extra_latency, Duration duration);

  // Tracker outage (every shard): queries fail UNAVAILABLE, polling stops.
  void ScheduleTrackerOutage(SimTime at, Duration duration);

  // Staleness spike (every shard): polling pauses; queries keep serving
  // the aging list.
  void ScheduleTrackerStale(SimTime at, Duration duration);

  // Single-shard outage: only `rack`'s queries fail; other racks keep
  // their remote-memory visibility (minus this rack, once its gossiped
  // digest ages out).
  void ScheduleTrackerShardOutage(size_t rack, SimTime at, Duration duration);

  // Single-shard staleness spike: only `rack`'s polling pauses.
  void ScheduleTrackerShardStale(size_t rack, SimTime at, Duration duration);

  // Gossip partition: `rack`'s shard exchanges no digests during the
  // window; cross-rack visibility ages out both ways and heals after.
  void ScheduleGossipPartition(size_t rack, SimTime at, Duration duration);

  // Flips one byte of one allocated chunk in `node`'s pool at `at` (both
  // picks pre-drawn from the seeded Rng; no-op on an empty pool). Reads of
  // the victim chunk fail their checksum and report the chunk lost.
  void ScheduleBitRot(size_t node, SimTime at);

  // Draws a randomized schedule of `options.num_faults` faults over the
  // enabled kinds, uniformly over nodes and [start, horizon]. Returns the
  // number scheduled.
  size_t ScheduleChaos(const ChaosOptions& options);

  // Draws exponential inter-failure times per node with the given MTTF and
  // schedules crashes up to `horizon`. Returns the number scheduled.
  size_t SchedulePoissonCrashes(Duration mttf, SimTime horizon,
                                Duration downtime = 0);

  size_t crashes_injected() const { return crashes_; }

  // Every fault scheduled so far, in schedule-call order (not fire order).
  const std::vector<FaultEvent>& schedule() const { return schedule_; }

 private:
  void Record(FaultKind kind, size_t node, SimTime at, Duration duration,
              double severity = 0.0);

  SpongeEnv* env_;
  Rng rng_;
  size_t crashes_ = 0;
  std::vector<FaultEvent> schedule_;
};

}  // namespace spongefiles::sponge

#endif  // SPONGEFILES_SPONGE_FAILURE_H_
