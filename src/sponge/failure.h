#ifndef SPONGEFILES_SPONGE_FAILURE_H_
#define SPONGEFILES_SPONGE_FAILURE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "sponge/sponge_env.h"

namespace spongefiles::sponge {

// The paper's failure analysis (section 4.3): a task whose spilled data is
// spread over N machines fails if any of them fails during its runtime t.
// Machine failures are modeled as a Poisson process, giving
//   P = 1 - exp(-N * t / MTTF).
double TaskFailureProbability(int num_machines, Duration task_runtime,
                              Duration mttf);

// Injects machine failures into a SpongeEnv: either scheduled
// deterministically (tests) or drawn from the Poisson process (the failure
// experiment). A crashed node loses its sponge-pool contents; tasks reading
// chunks from it observe UNAVAILABLE and must be restarted by the
// framework.
class FailureInjector {
 public:
  FailureInjector(SpongeEnv* env, uint64_t seed)
      : env_(env), rng_(seed) {}

  // Crashes `node` at absolute simulated time `at` (optionally restarting
  // it `downtime` later, with an empty pool — sponge servers are
  // stateless).
  void ScheduleCrash(size_t node, SimTime at, Duration downtime = 0);

  // Draws exponential inter-failure times per node with the given MTTF and
  // schedules crashes up to `horizon`. Returns the number scheduled.
  size_t SchedulePoissonCrashes(Duration mttf, SimTime horizon,
                                Duration downtime = 0);

  size_t crashes_injected() const { return crashes_; }

 private:
  SpongeEnv* env_;
  Rng rng_;
  size_t crashes_ = 0;
};

}  // namespace spongefiles::sponge

#endif  // SPONGEFILES_SPONGE_FAILURE_H_
