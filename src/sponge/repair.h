#ifndef SPONGEFILES_SPONGE_REPAIR_H_
#define SPONGEFILES_SPONGE_REPAIR_H_

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "sim/task.h"

namespace spongefiles::sponge {

class SpongeEnv;

// Tracker-driven re-replication: when a TrackerShard detects a dead sponge
// server, the repair service walks the replica directory for chunks that
// had a copy there, drops the dead locations, and — for chunks of live
// tasks left with a single surviving copy — has the survivor push a fresh
// replica to a new server, restoring the two-copy invariant before a
// second failure can make the chunk unrecoverable.
//
// Repair is deliberately background-class traffic. One serialized drain
// loop processes dead servers in notification order, and after each copied
// chunk the loop idles long enough that its long-run throughput never
// exceeds ReplicationConfig::repair_bandwidth_fraction of the rack uplink
// rate (the NIC rate when the core is unmetered) — foreground spills are
// never starved no matter how many chunks a crash orphans.
//
// Races are resolved by construction, not locks: every step re-reads the
// directory after an await, a survivor's slot is re-verified (owner and
// checksum) immediately before copying, and a repair that loses against a
// concurrent Delete/commit leaves at worst one orphan replica owned by the
// (now dead) task — which the ordinary GC sweep reclaims.
// lint: shard(global: cluster-wide re-replication coordinator with a global bandwidth budget; candidate for its own shard)
class RepairService {
 public:
  explicit RepairService(SpongeEnv* env) : env_(env) {}

  RepairService(const RepairService&) = delete;
  RepairService& operator=(const RepairService&) = delete;

  // Called by the tracker's death listener; enqueues the dead server and
  // starts the drain loop if it is idle. Cheap and non-blocking.
  void NotifyServerDeath(size_t node);

  void Shutdown() { stopping_ = true; }

  // The throughput ceiling the pacing enforces, in bytes/second.
  double budget_bandwidth() const;

  // --- statistics (cross-checked by bench_recovery) ---
  uint64_t repairs_completed() const { return repairs_completed_; }
  uint64_t repair_bytes() const { return repair_bytes_; }
  // Directory entries forgotten because their owner was already dead (GC
  // owns those slots) plus entries that lost every location.
  uint64_t entries_dropped() const { return entries_dropped_; }
  // Entries whose last copy died before repair could run: the failure
  // replication exists to prevent, when it loses the race.
  uint64_t copies_lost() const { return copies_lost_; }
  // Wall (simulated) time the drain loop spent repairing, pacing included;
  // repair_bytes / active_time is the measured repair throughput and is
  // <= budget_bandwidth by construction.
  Duration active_time() const { return active_time_; }
  SimTime last_repair_at() const { return last_repair_at_; }

 private:
  sim::Task<> Drain();
  sim::Task<> RepairNode(size_t dead_node);
  sim::Task<> RepairEntry(uint64_t chunk_id);

  SpongeEnv* env_;
  std::vector<size_t> queue_;
  bool draining_ = false;
  bool stopping_ = false;

  uint64_t repairs_completed_ = 0;
  uint64_t repair_bytes_ = 0;
  uint64_t entries_dropped_ = 0;
  uint64_t copies_lost_ = 0;
  Duration active_time_ = 0;
  SimTime last_repair_at_ = 0;
};

}  // namespace spongefiles::sponge

#endif  // SPONGEFILES_SPONGE_REPAIR_H_
