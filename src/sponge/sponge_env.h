#ifndef SPONGEFILES_SPONGE_SPONGE_ENV_H_
#define SPONGEFILES_SPONGE_SPONGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/random.h"
#include "common/units.h"
#include "sponge/memory_tracker.h"
#include "sponge/rpc_client.h"
#include "sponge/sponge_server.h"
#include "sponge/task_registry.h"

namespace spongefiles::sponge {

class RepairService;

// Chunk replication: place a second copy of every memory-resident chunk on
// another server when pool pressure allows, so a fail-stop crash of the
// holder costs a failover read instead of a task re-run. Off by default —
// it spends memory and network to buy durability, the opposite trade from
// the paper's baseline.
// lint: shard(value)
struct ReplicationConfig {
  bool enabled = false;
  // Pressure gate: a candidate server qualifies as a replica target only
  // while its digest-reported free space is at least this fraction of a
  // node's pool. Replication is strictly best-effort — under pressure the
  // spare copy is skipped rather than crowding out foreground spills.
  double min_free_fraction = 0.25;
  // Prefer a replica on a different rack from the primary (survives
  // rack-correlated failures); falls back to same-rack when no off-rack
  // candidate passes the pressure gate.
  bool prefer_rack_diverse = true;
  // Re-replication repair budget, as a fraction of the rack uplink rate
  // (the NIC rate when the core is unmetered): after copying a chunk the
  // repair loop idles long enough that its average throughput never
  // exceeds this, so repair cannot starve foreground spills.
  double repair_bandwidth_fraction = 0.10;
};

// Knobs governing SpongeFile behaviour; defaults match the paper's
// implementation choices (1 MB chunks, rack-local remote spilling, chunk
// prefetch on read, asynchronous writes to non-local media, direct
// shared-memory access for local chunks).
// lint: shard(value)
struct SpongeConfig {
  uint64_t chunk_size = 1024ull * 1024;
  // Raw copy rate into the node's mapped shared-memory pool.
  double shared_memory_bandwidth = 1.0 * 1024 * 1024 * 1024;
  // When false, even local chunks are stored through the local sponge
  // server over a socket (Table 1's second column) instead of directly
  // through shared memory.
  bool direct_local_access = true;
  // Adds the cross-rack rung to the cascade: local memory -> rack-local
  // remote memory -> cross-rack remote memory -> disk. Off by default (the
  // paper's rack-local policy, respecting oversubscribed cross-rack
  // links); when on, cross-rack servers are tried only after every
  // rack-local candidate is exhausted.
  bool allow_cross_rack = false;
  // Prefer remote servers already hosting chunks of this task.
  bool affinity = true;
  // Prefetch the next non-local chunk during sequential reads.
  bool prefetch = true;
  // Overlap non-local chunk writes with the writer's computation.
  bool async_write = true;
  // Disable the disk/DFS fallbacks (memory-only operation; allocation
  // failures surface as RESOURCE_EXHAUSTED). Also disables the SSD rung —
  // an SSD is not memory.
  bool memory_only = false;
  // --- SSD rung ---
  // Use the node's local SSD (NodeConfig::ssd with capacity > 0) as the
  // cascade rung between remote memory and local disk. Inert — every
  // placement is bit-identical to before — on nodes without an SSD.
  bool ssd_enabled = true;
  // Spill to the SSD only while its used fraction stays at or below this
  // (headroom for other consumers of the device).
  double ssd_max_used_fraction = 1.0;
  // Disable remote memory entirely (local pool then disk).
  bool allow_remote_memory = true;
  // Encrypt chunk contents before they leave the task (section 3.1.4's
  // access-control story: sponge memory is readable by anyone on the
  // cluster). Costs cipher_bandwidth per spilled/read byte.
  bool encrypt = false;
  std::string encryption_passphrase = "spongefiles";
  double cipher_bandwidth = 500.0 * 1024 * 1024;
  // Verify each chunk's stored checksum on read; a mismatch is treated as
  // a lost chunk (UNAVAILABLE) and recovered by the framework's task
  // retry. The hash rides along with the memcpy in a real implementation,
  // so no simulated time is charged.
  bool verify_checksums = true;
  // Client-side hardening of remote sponge operations (deadlines,
  // retries, circuit breaker); see rpc_client.h.
  RpcPolicy rpc;
  // Seeds the deterministic backoff jitter.
  uint64_t rpc_jitter_seed = 0x5f0a9e;
  // Chunk replication and crash recovery (see ReplicationConfig above).
  ReplicationConfig replication;
};

// The per-task view a SpongeFile needs: identity for chunk ownership and
// the node whose pool / disk / NIC it uses. `killed` supports failure
// injection: spilling tasks observe it at operation boundaries.
// `sponge_affinity` is the set of remote servers already holding any of
// this task's chunks — the paper's allocation preference that keeps a
// task's failure footprint small; it is task-wide, shared by all of the
// task's SpongeFiles.
// lint: shard(value)
struct TaskContext {
  uint64_t task_id = 0;
  size_t node = 0;
  bool killed = false;
  std::vector<size_t> sponge_affinity;
};

// Wires together everything SpongeFiles need on a cluster: one sponge
// server per node, the memory tracker, the task registry, and the DFS
// last-resort target. Owns the sponge services; the cluster substrate is
// borrowed.
// lint: shard(global: wiring facade that owns the sponge services; construction and control-plane only)
class SpongeEnv {
 public:
  SpongeEnv(cluster::Cluster* cluster, cluster::Dfs* dfs,
            const SpongeConfig& config,
            const ChunkPoolConfig& pool_config = {},
            const SpongeServerConfig& server_config = {},
            const MemoryTrackerConfig& tracker_config = {});

  SpongeEnv(const SpongeEnv&) = delete;
  SpongeEnv& operator=(const SpongeEnv&) = delete;
  ~SpongeEnv();  // defined in .cc: RepairService is incomplete here

  // Starts the tracker poll loop, each server's GC loop, and (when
  // replication is enabled) hooks the tracker's death detection up to the
  // repair service.
  void StartServices();
  // Stops the loops (lets Engine::Run drain).
  void StopServices();

  cluster::Cluster* cluster() { return cluster_; }
  cluster::Dfs* dfs() { return dfs_; }
  sim::Engine* engine() { return cluster_->engine(); }
  TaskRegistry& registry() { return registry_; }
  MemoryTracker& tracker() { return *tracker_; }
  SpongeServer& server(size_t node) { return *servers_[node]; }
  std::vector<SpongeServer*>* servers() { return &server_ptrs_; }
  const SpongeConfig& config() const { return config_; }
  // Shared per-server circuit-breaker state for every SpongeFile client in
  // this environment, and the seeded Rng their backoff jitter draws from.
  // Sharded engine: one board and one rng per lane — clients on a worker
  // lane observe (and record) server health locally, so no lane ever
  // touches another's breaker state. On the legacy engine (one lane) this
  // is exactly the old single shared board.
  HealthBoard& health() { return *health_[engine()->current_lane()]; }
  Rng& rpc_rng() { return *rpc_rngs_[engine()->current_lane()]; }
  ReplicaDirectory& replicas() { return registry_.replicas(); }
  RepairService& repair() { return *repair_; }

  // Registers a task with the registry and hands out its context.
  TaskContext StartTask(size_t node);
  void EndTask(const TaskContext& task);

  // Simulates a machine failure: its sponge contents are lost.
  void CrashNode(size_t node) { servers_[node]->Crash(); }
  void RestartNode(size_t node) { servers_[node]->Restart(); }

 private:
  cluster::Cluster* cluster_;
  cluster::Dfs* dfs_;
  SpongeConfig config_;
  TaskRegistry registry_;
  std::vector<std::unique_ptr<SpongeServer>> servers_;
  std::vector<SpongeServer*> server_ptrs_;
  std::unique_ptr<MemoryTracker> tracker_;
  std::vector<std::unique_ptr<HealthBoard>> health_;   // indexed by lane
  std::vector<std::unique_ptr<Rng>> rpc_rngs_;         // indexed by lane
  std::unique_ptr<RepairService> repair_;
};

}  // namespace spongefiles::sponge

#endif  // SPONGEFILES_SPONGE_SPONGE_ENV_H_
