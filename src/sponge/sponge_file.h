#ifndef SPONGEFILES_SPONGE_SPONGE_FILE_H_
#define SPONGEFILES_SPONGE_SPONGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/byte_runs.h"
#include "common/status.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sponge/sponge_env.h"

namespace spongefiles::sponge {

// Where a chunk ended up in the allocation cascade.
enum class ChunkLocation {
  kLocalMemory,
  kRemoteMemory,
  kLocalSsd,
  kLocalDisk,
  kDfs,
};

const char* ChunkLocationName(ChunkLocation location);

// A SpongeFile: the paper's distributed-memory spill target. A logical
// byte array with exactly one writer and one reader, written once front to
// back, closed, read back sequentially once, then deleted. Chunks are
// placed by the cascade: local sponge memory -> remote sponge memory on
// the same rack (servers already hosting this task's chunks first) ->
// remote sponge memory across racks (only when allow_cross_rack is set) ->
// the node's local SSD (when present and SpongeConfig::ssd_enabled) ->
// local disk (coalescing consecutive disk chunks into one growing file) ->
// the distributed filesystem as the last resort.
//
// Reads prefetch the next non-local-memory chunk and writes to non-local
// media are asynchronous (one outstanding store), overlapping IO with the
// spilling task's computation.
// lint: shard(value)
class SpongeFile {
 public:
  struct Stats {
    uint64_t bytes_written = 0;
    uint64_t chunks_local_memory = 0;
    uint64_t chunks_remote_memory = 0;
    uint64_t chunks_local_ssd = 0;
    uint64_t chunks_local_disk = 0;   // coalesced count: appends, not files
    uint64_t chunks_dfs = 0;
    // Logical bytes stored on each medium; the sum equals bytes_written
    // once the file is closed.
    uint64_t bytes_local_memory = 0;
    uint64_t bytes_remote_memory = 0;
    uint64_t bytes_local_ssd = 0;
    uint64_t bytes_local_disk = 0;
    uint64_t bytes_dfs = 0;
    // Cross-rack subset of the remote-memory totals above (the cascade's
    // third rung; zero unless SpongeConfig::allow_cross_rack).
    uint64_t chunks_remote_cross_rack = 0;
    uint64_t bytes_remote_cross_rack = 0;
    uint64_t disk_files = 0;
    uint64_t stale_list_retries = 0;  // allocation attempts that bounced
    // Replication: memory chunks that got a second copy, the logical bytes
    // those copies carry, and reads served from a replica after the
    // primary copy was lost.
    uint64_t chunks_replicated = 0;
    uint64_t bytes_replicated = 0;
    uint64_t replica_failovers = 0;
    // Memory occupied by in-memory chunk slots beyond the logical bytes
    // stored in them (internal fragmentation, paper section 4.2.3).
    uint64_t fragmentation_bytes = 0;
    uint64_t total_chunks() const {
      return chunks_local_memory + chunks_remote_memory + chunks_local_ssd +
             chunks_local_disk + chunks_dfs;
    }
  };

  // `name` must be unique per task (it names disk spill files).
  SpongeFile(SpongeEnv* env, TaskContext* task, std::string name);
  ~SpongeFile();

  SpongeFile(const SpongeFile&) = delete;
  SpongeFile& operator=(const SpongeFile&) = delete;

  // --- write phase ---

  // Appends `data`; buffers internally and stores a chunk whenever a full
  // chunk_size accumulates. Fails if the file is closed, the task was
  // killed, or a prior asynchronous store failed.
  sim::Task<Status> Append(ByteRuns data);

  // Convenience for literal payloads.
  // lint: ref-ok(awaited inline by the writer; the record buffer outlives the append)
  sim::Task<Status> AppendBytes(Slice data);

  // Flushes the partial buffer as a final chunk and waits for outstanding
  // asynchronous stores. Idempotent.
  sim::Task<Status> Close();

  // --- read phase (only after Close) ---

  // Returns the next chunk's content, or an empty ByteRuns at end of
  // file. Consumes the file: a chunk can be read only once.
  sim::Task<Result<ByteRuns>> ReadNext();

  // --- teardown ---

  // Frees every chunk (pool slots locally and via RPC remotely, disk and
  // DFS files through their filesystems). Idempotent.
  sim::Task<> Delete();

  uint64_t size() const { return size_; }
  const Stats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

  // Chunk placement summary, in write order (tests and diagnostics).
  std::vector<ChunkLocation> ChunkPlacements() const;

 private:
  enum class State { kWriting, kClosed, kDeleted };

  struct ChunkRecord {
    // Defaulted so a record whose store failed entirely is still safe for
    // Delete() to walk (an empty dfs_name delete is a no-op).
    ChunkLocation location = ChunkLocation::kDfs;
    size_t node = 0;          // memory chunks: owning server
    ChunkHandle handle;       // memory chunks: pool slot
    uint64_t fs_file = 0;     // local-disk chunks: LocalFs id
    std::string dfs_name;     // DFS chunks
    uint64_t offset = 0;      // within the (coalesced) disk file
    uint64_t size = 0;
    ByteRuns data;            // content for disk/DFS chunks
    // Checksum of the stored representation (post-encryption), verified
    // on every read; a mismatch means the chunk is lost.
    uint64_t checksum = 0;
    // ReplicaDirectory entry id when this chunk has a second copy;
    // 0 means unreplicated (reads have no failover).
    uint64_t replica_id = 0;
  };

  // Decides placement for one full buffer and stores it (possibly
  // asynchronously). Appends the record synchronously so ordering and
  // coalescing stay correct.
  sim::Task<Status> StoreChunk(ByteRuns chunk);

  // The store cascade; returns the record index it stored into.
  sim::Task<Status> StoreIntoRecord(size_t index, ByteRuns chunk);

  // Walks the candidate servers (affinity nodes first, then the tracker's
  // free list) issuing allocation RPCs until one succeeds; NOT_FOUND when
  // every candidate is full or ineligible. Bounced attempts (stale list)
  // are counted and the bounced server is skipped for later chunks.
  // `cross_rack` selects the locality rung: false walks same-rack
  // candidates only, true off-rack only. `bytes` is the chunk's actual
  // size, declared so the target's tiered pool can place it in a matching
  // size class.
  sim::Task<Result<std::pair<size_t, ChunkHandle>>> AllocateRemote(
      bool cross_rack, uint64_t bytes);

  sim::Task<Status> WaitForPendingStore();

  // Best-effort second copy of a memory-resident chunk on another server
  // (rack-diverse from the primary when possible, pressure-gated by the
  // tracker's free-space digests). On success, registers the pair in the
  // replica directory and stamps the record's replica_id. Failure is
  // silent — the chunk simply stays single-copy.
  sim::Task<> ReplicateChunk(size_t index, ByteRuns chunk);

  // Fetches chunk `index`'s content, charging media time and decrypting
  // when encryption is enabled. A primary lost to a crash, open breaker,
  // or checksum mismatch fails over to the replica before surfacing
  // UNAVAILABLE.
  sim::Task<Result<ByteRuns>> FetchChunk(size_t index);
  sim::Task<Result<ByteRuns>> FetchChunkRaw(size_t index);

  // Reads the surviving copy of a replicated chunk, checksum-verified
  // independently of the primary read.
  sim::Task<Result<ByteRuns>> FetchFromReplica(size_t index);

  // Deterministic per-chunk cipher nonce.
  uint64_t ChunkNonce(size_t index) const;

  void MaybePrefetch(size_t index);

  SpongeEnv* env_;
  TaskContext* task_;
  std::string name_;
  State state_ = State::kWriting;

  ByteRuns buffer_;
  uint64_t size_ = 0;
  std::vector<ChunkRecord> chunks_;

  // Remote allocation state. `free_list_` is this file's working copy of
  // the tracker snapshot: successful allocations decrement the entry and
  // bounced ones zero it, so exhausted servers are not re-tried per chunk.
  bool free_list_loaded_ = false;
  std::vector<FreeSpaceEntry> free_list_;
  
  std::vector<size_t> bounced_nodes_;   // servers that rejected us

  // Async write state: at most one store in flight.
  std::unique_ptr<sim::Event> pending_store_;
  Status pending_error_;

  // Read state.
  size_t next_read_ = 0;
  std::unique_ptr<sim::Event> prefetch_done_;
  size_t prefetch_index_ = 0;
  Result<ByteRuns> prefetch_result_{ByteRuns{}};
  bool prefetch_active_ = false;

  Stats stats_;
};

}  // namespace spongefiles::sponge

#endif  // SPONGEFILES_SPONGE_SPONGE_FILE_H_
