#include "sponge/repair.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sponge/rpc_client.h"
#include "sponge/sponge_env.h"

namespace spongefiles::sponge {

namespace {

// lint: shard(value)
struct RepairMetrics {
  obs::Counter* chunks;
  obs::Counter* bytes;
  obs::Counter* deaths;
  obs::Counter* lost;
};

const RepairMetrics& Metrics() {
  static obs::Registry& registry = obs::Registry::Default();
  static const RepairMetrics metrics = {
      registry.counter("sponge.repair.chunks"),
      registry.counter("sponge.repair.bytes"),
      registry.counter("sponge.repair.deaths_handled"),
      registry.counter("sponge.repair.copies_lost"),
  };
  return metrics;
}

}  // namespace

double RepairService::budget_bandwidth() const {
  const cluster::NetworkConfig& net = env_->cluster()->network().config();
  // "Fraction of rack uplink": when the core is metered that is the shared
  // cross-rack pipe; on a non-blocking core the NIC rate is the bound.
  double uplink = net.cross_rack_bandwidth > 0 ? net.cross_rack_bandwidth
                                               : net.bandwidth;
  return uplink * env_->config().replication.repair_bandwidth_fraction;
}

void RepairService::NotifyServerDeath(size_t node) {
  if (stopping_) return;
  queue_.push_back(node);
  if (!draining_) {
    draining_ = true;
    sim::Task<> drain = Drain();
    env_->engine()->Spawn(std::move(drain));
  }
}

sim::Task<> RepairService::Drain() {
  while (!queue_.empty() && !stopping_) {
    size_t dead = queue_.front();
    queue_.erase(queue_.begin());
    co_await RepairNode(dead);
    Metrics().deaths->Increment();
  }
  draining_ = false;
}

sim::Task<> RepairService::RepairNode(size_t dead_node) {
  ReplicaDirectory& directory = env_->registry().replicas();
  // Ids are snapshotted up front; everything below re-reads the directory
  // per entry because deletes and commits run concurrently with repair.
  std::vector<uint64_t> affected = directory.ChunksOn(dead_node);
  for (uint64_t chunk_id : affected) {
    if (stopping_) co_return;
    directory.DropLocation(chunk_id, dead_node);
    const ReplicatedChunk* entry = directory.Find(chunk_id);
    if (entry == nullptr) continue;  // deleted while we worked
    if (!env_->registry().IsAlive(entry->owner_task)) {
      // Dead owner: its surviving slots belong to the GC sweep, and no one
      // will ever read this chunk again — just forget the pairing.
      directory.Forget(chunk_id);
      ++entries_dropped_;
      continue;
    }
    if (entry->locations.empty()) {
      // Both copies died before repair could run. The owning task will see
      // UNAVAILABLE on its next read and the framework re-runs it — the
      // cost replication usually amortizes away.
      Metrics().lost->Increment();
      ++copies_lost_;
      directory.Forget(chunk_id);
      ++entries_dropped_;
      continue;
    }
    if (entry->locations.size() >= 2) continue;  // still fully replicated
    co_await RepairEntry(chunk_id);
  }
}

sim::Task<> RepairService::RepairEntry(uint64_t chunk_id) {
  SimTime started = env_->engine()->now();
  ReplicaDirectory& directory = env_->registry().replicas();
  const ReplicatedChunk* entry = directory.Find(chunk_id);
  if (entry == nullptr || entry->locations.empty()) co_return;
  const ReplicaLocation source = entry->locations.front();
  const uint64_t checksum = entry->checksum;
  const uint64_t owner_task = entry->owner_task;

  SpongeServer& survivor = env_->server(source.node);
  if (!survivor.alive()) {
    directory.DropLocation(chunk_id, source.node);
    co_return;
  }
  // Verify the survivor's slot before shipping it anywhere: GC or a quota
  // sweep may have reassigned it, and bit rot may have corrupted it.
  // Re-replicating garbage would turn one lost chunk into two lies.
  Result<ChunkOwner> holder = survivor.pool().OwnerOf(source.handle);
  if (!holder.ok() || !(*holder == source.owner)) {
    directory.DropLocation(chunk_id, source.node);
    co_return;
  }
  ByteRuns data = *survivor.pool().chunk_data(source.handle);
  if (data.Checksum64() != checksum) co_return;

  // Pick the new home from the tracker's freshest view: alive, not already
  // holding a copy, past the pressure gate, rack-diverse from the survivor
  // when possible.
  const SpongeConfig& config = env_->config();
  const std::vector<FreeSpaceEntry>& view = env_->tracker().snapshot();
  const size_t source_rack = env_->cluster()->rack_of(source.node);
  size_t target = source.node;
  bool found = false;
  const int passes = config.replication.prefer_rack_diverse ? 2 : 1;
  for (int pass = 0; pass < passes && !found; ++pass) {
    const bool want_diverse = config.replication.prefer_rack_diverse &&
                              pass == 0;
    for (const FreeSpaceEntry& candidate : view) {
      if (candidate.node == source.node) continue;
      if (!env_->server(candidate.node).alive()) continue;
      const bool diverse =
          env_->cluster()->rack_of(candidate.node) != source_rack;
      if (want_diverse && !diverse) continue;
      ChunkPool& pool = env_->server(candidate.node).pool();
      const uint64_t capacity = pool.total_chunks() * config.chunk_size;
      const uint64_t min_free = static_cast<uint64_t>(
          config.replication.min_free_fraction *
          static_cast<double>(capacity));
      // Size-class-aware: gate on the slot the repaired copy will occupy.
      const uint64_t need = pool.class_bytes_for(data.size());
      if (candidate.free_bytes < min_free || candidate.free_bytes < need ||
          (need >= config.chunk_size &&
           candidate.free_bulk_bytes < need)) {
        continue;
      }
      target = candidate.node;
      found = true;
      break;
    }
  }
  if (!found) co_return;  // cluster under pressure; stay single-copy

  // The new copy is a replica owned by the same attempt, so GC reclaims it
  // with the attempt whether or not anyone ever reads it. The owner's node
  // (where GC directs its liveness probe) comes from the registry, not the
  // stale location record.
  Result<size_t> owner_node = env_->registry().NodeOf(owner_task);
  if (!owner_node.ok()) co_return;  // owner died while we verified
  ChunkOwner new_owner{owner_task, *owner_node, /*replica=*/true};

  obs::SpanGuard span(&obs::Tracer::Default(), env_->engine(), source.node,
                      owner_task, "repair", "repair.chunk");
  span.Arg("bytes", data.size());
  span.Arg("target", static_cast<uint64_t>(target));

  // The survivor pushes the copy: allocate on the target, then ship the
  // bytes. Plain deadline calls, no retries — repair is best-effort
  // background work and another pass costs nothing but time. An abandoned
  // or half-finished slot is owned by the task and GC'd with it.
  sim::Task<Result<ChunkHandle>> alloc_op =
      env_->server(target).RemoteAllocate(source.node, new_owner,
                                          data.size());
  Result<ChunkHandle> slot = co_await CallWithDeadline<Result<ChunkHandle>>(
      env_->engine(), config.rpc.deadline, std::move(alloc_op));
  if (!slot.ok()) {
    active_time_ += env_->engine()->now() - started;
    co_return;
  }
  const uint64_t bytes = data.size();
  sim::Task<Status> write_op = env_->server(target).RemoteWrite(
      source.node, *slot, new_owner, std::move(data));
  Status stored = co_await CallWithDeadline<Status>(
      env_->engine(), config.rpc.hedge_deadline, std::move(write_op));
  if (!stored.ok()) {
    active_time_ += env_->engine()->now() - started;
    co_return;
  }

  // Publish the new location; a no-op if a concurrent Delete forgot the
  // entry (the orphan copy is then GC fodder, never served).
  directory.AddLocation(chunk_id, {target, *slot, new_owner});
  ++repairs_completed_;
  repair_bytes_ += bytes;
  last_repair_at_ = env_->engine()->now();
  Metrics().chunks->Increment();
  Metrics().bytes->Increment(bytes);
  env_->cluster()->network().NoteRepairTraffic(source.node, target, bytes);

  // Budget pacing: idle after the copy until the loop's average rate drops
  // under the cap. The transfer itself took extra time on top, so the
  // measured throughput is strictly below budget_bandwidth.
  Duration pace = TransferTime(bytes, budget_bandwidth());
  co_await env_->engine()->Delay(pace);
  active_time_ += env_->engine()->now() - started;
}

}  // namespace spongefiles::sponge
