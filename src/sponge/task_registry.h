#ifndef SPONGEFILES_SPONGE_TASK_REGISTRY_H_
#define SPONGEFILES_SPONGE_TASK_REGISTRY_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sim/access.h"
#include "sim/engine.h"
#include "sponge/chunk_pool.h"

namespace spongefiles::sponge {

// One physical copy of a replicated chunk: which server's pool holds it,
// under what slot and owner identity. The owner identity is stored in full
// (including the replica flag) so reads and frees of the copy pass the
// server-side ownership check.
// lint: shard(value)
struct ReplicaLocation {
  size_t node = 0;
  ChunkHandle handle;
  ChunkOwner owner;
};

// Directory entry for one chunk that has (or had) a second copy. The
// checksum is the stored representation's — any location whose content no
// longer hashes to it is corrupt and unusable.
// lint: shard(value)
struct ReplicatedChunk {
  uint64_t chunk_id = 0;
  uint64_t owner_task = 0;
  uint64_t size = 0;
  uint64_t checksum = 0;
  std::vector<ReplicaLocation> locations;  // [0] is the original primary
};

// Tracks where replicated chunks live: the write path registers an entry
// per successfully replicated chunk, reads consult it to fail over when the
// primary is lost, and the repair service prunes dead locations and adds
// re-replicated ones. The directory is bookkeeping only — pool slots are
// still owned by the chunks' tasks, and the GC sweep (keyed on task
// liveness) reclaims them with or without a directory entry. A std::map
// keeps iteration order deterministic.
//
// Sharded engine: the directory is partitioned by the minting lane. Each
// lane registers into (and looks up from) its own partition, so worker
// lanes never touch each other's maps; only the global lane (repair, the
// dead-server scan) reads across partitions, and it runs in its own
// exclusive phase. Ids encode the partition — see Part below.
// lint: shard(global: chunk-to-replica map shared by the write, read-failover, and repair paths; lane-partitioned by minting lane under the sharded engine)
class ReplicaDirectory {
 public:
  ReplicaDirectory() = default;

  // Wires up access-set recording (sim/access.h) and sizes the per-lane id
  // partitions; optional — the directory works unattached (unit tests
  // construct it bare and get the single legacy partition).
  void AttachEngine(sim::Engine* engine);

  // Creates an entry and returns its id (never 0; 0 in a chunk record
  // means "not replicated").
  uint64_t Register(uint64_t owner_task, uint64_t size, uint64_t checksum);

  // Both are no-ops on an unknown id: a repair can race a Delete that
  // already forgot the entry.
  void AddLocation(uint64_t chunk_id, const ReplicaLocation& location);
  void DropLocation(uint64_t chunk_id, size_t node);

  void Forget(uint64_t chunk_id);

  // Borrowed pointer, invalidated by Forget of the same id (and by nothing
  // else); callers that await between lookup and use must re-Find.
  const ReplicatedChunk* Find(uint64_t chunk_id) const;

  // Ids of every entry with a location on `node` (dead-server repair scan).
  // Scans every partition in lane order — global-lane callers only.
  std::vector<uint64_t> ChunksOn(size_t node) const;

  size_t size() const;
  // The global lane's partition — the only one on the legacy engine and in
  // unit tests. Worker-lane entries live in their own partitions; use
  // Find / ChunksOn for id-routed access.
  const std::map<uint64_t, ReplicatedChunk>& chunks() const {
    return parts_[0].chunks;
  }

 private:
  // Ids encode the minting lane so partitions can never collide and a
  // lookup routes to its partition without touching any other lane's map:
  //   lane 0 (global lane; the whole legacy engine): plain sequence, ids
  //     stay below 2^40 — bit-identical to the unpartitioned directory;
  //   worker lane L: (L << 40) | sequence.
  struct Part {
    uint64_t next_seq = 1;
    std::map<uint64_t, ReplicatedChunk> chunks;
  };

  static constexpr uint32_t kLaneShift = 40;

  // The calling context's partition index (0 when unattached).
  uint32_t LaneNow() const;
  // The partition owning `id`; nullptr for ids no partition could have
  // minted (treated as unknown by every lookup).
  const Part* PartOf(uint64_t id) const;
  Part* PartOf(uint64_t id) {
    return const_cast<Part*>(
        static_cast<const ReplicaDirectory*>(this)->PartOf(id));
  }
  // Access-set recording against the partition object (not the directory):
  // disjoint partitions must not read as one shared object to the lane
  // conflict detector.
  void NoteAccess(uint32_t lane, bool write) const;

  sim::Engine* engine_ = nullptr;
  std::vector<Part> parts_ = std::vector<Part>(1);
};

// Tracks which tasks are alive on which node. This stands in for the OS
// process table each sponge server consults to decide whether a local
// process still exists; the garbage collector uses it to find chunks
// owned by dead tasks.
//
// Sharded engine: lane-partitioned exactly like ReplicaDirectory above —
// a task registers on the lane that runs it, ids encode the lane, and
// liveness lookups route by id. Worker-lane callers only ever look up
// task ids minted on their own lane (cross-lane RPCs hop to the global
// lane first); the GC sweep and repair service run on the global lane and
// may read every partition.
// lint: shard(global: attempt-liveness oracle consulted by every node's GC sweep; lane-partitioned by minting lane under the sharded engine)
class TaskRegistry {
 public:
  TaskRegistry() = default;

  // Wires up access-set recording for the registry and its replica
  // directory and sizes the per-lane id partitions; optional (unit tests
  // construct the registry bare).
  void AttachEngine(sim::Engine* engine);

  // Registers a live task running on `node`; returns a fresh task id
  // (never 0; 0 marks a free chunk slot).
  uint64_t Register(size_t node);

  // Marks the task dead (normal exit or crash).
  void Deregister(uint64_t task_id);

  // Whether `task_id` is alive *on `node`* — a sponge server can only
  // check processes on its own machine, so callers must direct the query
  // to the right node (remote queries go through that node's server).
  bool IsAliveOn(uint64_t task_id, size_t node) const;

  // Node where the task was registered (dead tasks are forgotten).
  Result<size_t> NodeOf(uint64_t task_id) const;

  // Liveness regardless of node (the repair service's view: it only needs
  // to know whether re-replicating for this owner is still worthwhile).
  bool IsAlive(uint64_t task_id) const {
    const Part* part = PartOf(task_id);
    return part != nullptr && part->tasks.find(task_id) != part->tasks.end();
  }

  size_t live_count() const {
    size_t n = 0;
    for (const Part& part : parts_) n += part.tasks.size();
    return n;
  }

  // The chunk-replica directory rides on the registry: both are the
  // cluster-wide "who owns what" bookkeeping that every sponge component
  // already has a path to.
  ReplicaDirectory& replicas() { return replicas_; }
  const ReplicaDirectory& replicas() const { return replicas_; }

 private:
  // See ReplicaDirectory::Part for the id scheme.
  struct Part {
    uint64_t next_seq = 1;
    std::unordered_map<uint64_t, size_t> tasks;  // id -> node
  };

  static constexpr uint32_t kLaneShift = 40;

  uint32_t LaneNow() const;
  const Part* PartOf(uint64_t id) const;
  Part* PartOf(uint64_t id) {
    return const_cast<Part*>(
        static_cast<const TaskRegistry*>(this)->PartOf(id));
  }
  void NoteAccess(uint32_t lane, bool write) const;

  sim::Engine* engine_ = nullptr;
  std::vector<Part> parts_ = std::vector<Part>(1);
  ReplicaDirectory replicas_;
};

}  // namespace spongefiles::sponge

#endif  // SPONGEFILES_SPONGE_TASK_REGISTRY_H_
