#ifndef SPONGEFILES_SPONGE_TASK_REGISTRY_H_
#define SPONGEFILES_SPONGE_TASK_REGISTRY_H_

#include <cstdint>
#include <unordered_map>

#include "common/status.h"

namespace spongefiles::sponge {

// Tracks which tasks are alive on which node. This stands in for the OS
// process table each sponge server consults to decide whether a local
// process still exists; the garbage collector uses it to find chunks
// owned by dead tasks.
class TaskRegistry {
 public:
  TaskRegistry() = default;

  // Registers a live task running on `node`; returns a fresh task id
  // (never 0; 0 marks a free chunk slot).
  uint64_t Register(size_t node);

  // Marks the task dead (normal exit or crash).
  void Deregister(uint64_t task_id);

  // Whether `task_id` is alive *on `node`* — a sponge server can only
  // check processes on its own machine, so callers must direct the query
  // to the right node (remote queries go through that node's server).
  bool IsAliveOn(uint64_t task_id, size_t node) const;

  // Node where the task was registered (dead tasks are forgotten).
  Result<size_t> NodeOf(uint64_t task_id) const;

  size_t live_count() const { return tasks_.size(); }

 private:
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, size_t> tasks_;  // id -> node
};

}  // namespace spongefiles::sponge

#endif  // SPONGEFILES_SPONGE_TASK_REGISTRY_H_
