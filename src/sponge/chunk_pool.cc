#include "sponge/chunk_pool.h"

#include <algorithm>

#include "obs/metrics.h"

namespace spongefiles::sponge {

namespace {

// lint: shard(value)
struct PoolMetrics {
  obs::Counter* allocs;
  obs::Counter* alloc_failures;
  obs::Counter* frees;
  obs::Gauge* used_chunks;
};

const PoolMetrics& Metrics() {
  static const PoolMetrics metrics = {
      obs::Registry::Default().counter("sponge.pool.allocs"),
      obs::Registry::Default().counter("sponge.pool.alloc_failures"),
      obs::Registry::Default().counter("sponge.pool.frees"),
      obs::Registry::Default().gauge("sponge.pool.used_chunks"),
  };
  return metrics;
}

}  // namespace

ChunkPool::ChunkPool(const ChunkPoolConfig& config) : config_(config) {
  uint64_t chunks_total = config.pool_size / config.chunk_size;
  uint64_t chunks_per_segment =
      std::max<uint64_t>(1, config.max_segment_size / config.chunk_size);
  while (chunks_total > 0) {
    uint64_t n = std::min(chunks_total, chunks_per_segment);
    Segment segment;
    segment.slots.resize(n);
    segment.free_list.reserve(n);
    // Reverse order so allocation proceeds from low indices first.
    for (uint64_t i = n; i-- > 0;) {
      segment.free_list.push_back(static_cast<uint32_t>(i));
    }
    segments_.push_back(std::move(segment));
    chunks_total -= n;
    total_chunks_ += n;
  }
  free_chunks_ = total_chunks_;
}

Result<ChunkHandle> ChunkPool::Allocate(const ChunkOwner& owner) {
  if (owner.task_id == 0) return InvalidArgument("owner task_id must be != 0");
  for (uint32_t s = 0; s < segments_.size(); ++s) {
    Segment& segment = segments_[s];
    if (segment.free_list.empty()) continue;
    uint32_t index = segment.free_list.back();
    segment.free_list.pop_back();
    segment.slots[index].owner = owner;
    --free_chunks_;
    Metrics().allocs->Increment();
    Metrics().used_chunks->Add(1);
    return ChunkHandle{s, index};
  }
  Metrics().alloc_failures->Increment();
  return ResourceExhausted("sponge pool full");
}

bool ChunkPool::ValidHandle(ChunkHandle handle) const {
  return handle.segment < segments_.size() &&
         handle.index < segments_[handle.segment].slots.size();
}

Status ChunkPool::Free(ChunkHandle handle, const ChunkOwner& owner) {
  if (!ValidHandle(handle)) return InvalidArgument("bad chunk handle");
  Slot& slot = segments_[handle.segment].slots[handle.index];
  if (slot.owner.task_id == 0) {
    return FailedPrecondition("double free of sponge chunk");
  }
  if (!(slot.owner == owner)) {
    return FailedPrecondition("chunk owned by another task");
  }
  return ForceFree(handle);
}

Status ChunkPool::ForceFree(ChunkHandle handle) {
  if (!ValidHandle(handle)) return InvalidArgument("bad chunk handle");
  Slot& slot = segments_[handle.segment].slots[handle.index];
  if (slot.owner.task_id == 0) {
    return FailedPrecondition("double free of sponge chunk");
  }
  slot.owner = ChunkOwner{};
  slot.data.Clear();
  segments_[handle.segment].free_list.push_back(handle.index);
  ++free_chunks_;
  Metrics().frees->Increment();
  Metrics().used_chunks->Sub(1);
  return Status::OK();
}

ByteRuns* ChunkPool::chunk_data(ChunkHandle handle) {
  if (!ValidHandle(handle)) return nullptr;
  Slot& slot = segments_[handle.segment].slots[handle.index];
  if (slot.owner.task_id == 0) return nullptr;
  return &slot.data;
}

Result<ChunkOwner> ChunkPool::OwnerOf(ChunkHandle handle) const {
  if (!ValidHandle(handle)) return InvalidArgument("bad chunk handle");
  const Slot& slot = segments_[handle.segment].slots[handle.index];
  if (slot.owner.task_id == 0) return NotFound("chunk is free");
  return slot.owner;
}

std::vector<std::pair<ChunkHandle, ChunkOwner>> ChunkPool::AllocatedChunks()
    const {
  std::vector<std::pair<ChunkHandle, ChunkOwner>> out;
  for (uint32_t s = 0; s < segments_.size(); ++s) {
    const Segment& segment = segments_[s];
    for (uint32_t i = 0; i < segment.slots.size(); ++i) {
      if (segment.slots[i].owner.task_id != 0) {
        out.push_back({ChunkHandle{s, i}, segment.slots[i].owner});
      }
    }
  }
  return out;
}

void ChunkPool::Reset() {
  Metrics().used_chunks->Sub(
      static_cast<int64_t>(total_chunks_ - free_chunks_));
  for (Segment& segment : segments_) {
    segment.free_list.clear();
    for (uint64_t i = segment.slots.size(); i-- > 0;) {
      segment.slots[i].owner = ChunkOwner{};
      segment.slots[i].data.Clear();
      segment.free_list.push_back(static_cast<uint32_t>(i));
    }
  }
  free_chunks_ = total_chunks_;
}

}  // namespace spongefiles::sponge
