#include "sponge/chunk_pool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "sim/engine.h"

namespace spongefiles::sponge {

namespace {

// lint: shard(value)
struct PoolMetrics {
  obs::Counter* allocs;
  obs::Counter* alloc_failures;
  obs::Counter* frees;
  obs::Gauge* used_chunks;
  // Reclaimed internal fragmentation: bytes a small-class allocation did
  // NOT burn compared to the flat pool's full bulk chunk.
  obs::Counter* frag_bytes;
  // Live internal fragmentation (slot bytes minus requested bytes).
  obs::Gauge* frag_current_bytes;
  // Simulated lock wait+hold charged to allocating callers.
  obs::Counter* lock_wait_us;
  obs::Counter* slabs_carved;
  obs::Counter* slabs_released;
};

const PoolMetrics& Metrics() {
  static const PoolMetrics metrics = {
      obs::Registry::Default().counter("sponge.pool.allocs"),
      obs::Registry::Default().counter("sponge.pool.alloc_failures"),
      obs::Registry::Default().counter("sponge.pool.frees"),
      obs::Registry::Default().gauge("sponge.pool.used_chunks"),
      obs::Registry::Default().counter("sponge.pool.frag_bytes"),
      obs::Registry::Default().gauge("sponge.pool.frag_current_bytes"),
      obs::Registry::Default().counter("sponge.pool.lock_wait_us"),
      obs::Registry::Default().counter("sponge.pool.slabs_carved"),
      obs::Registry::Default().counter("sponge.pool.slabs_released"),
  };
  return metrics;
}

}  // namespace

ChunkPool::ChunkPool(const ChunkPoolConfig& config, sim::Engine* engine)
    : config_(config), engine_(engine) {
  uint64_t chunks_total = config.pool_size / config.chunk_size;
  uint64_t chunks_per_segment =
      std::max<uint64_t>(1, config.max_segment_size / config.chunk_size);
  while (chunks_total > 0) {
    uint64_t n = std::min(chunks_total, chunks_per_segment);
    Segment segment;
    segment.slots.resize(n);
    segment.free_list.reserve(n);
    segment.carved.assign(n, 0);
    // Reverse order so allocation proceeds from low indices first.
    for (uint64_t i = n; i-- > 0;) {
      segment.free_list.push_back(static_cast<uint32_t>(i));
    }
    segments_.push_back(std::move(segment));
    chunks_total -= n;
    total_chunks_ += n;
  }
  free_chunks_ = total_chunks_;

  if (!config.flat) {
    std::vector<uint64_t> classes = config.small_classes;
    std::sort(classes.begin(), classes.end());
    for (uint64_t class_bytes : classes) {
      if (class_bytes == 0 || class_bytes >= config.chunk_size) continue;
      if (config.chunk_size % class_bytes != 0) continue;
      if (!small_levels_.empty() &&
          small_levels_.back().class_bytes == class_bytes) {
        continue;
      }
      SmallLevel level;
      level.class_bytes = class_bytes;
      small_levels_.push_back(std::move(level));
    }
  }
}

Duration ChunkPool::AcquireLock(SimTime* lock_free_at, Duration hold) {
  if (engine_ == nullptr || config_.lock_hold <= 0) return 0;
  SimTime now = engine_->now();
  Duration wait = *lock_free_at > now ? *lock_free_at - now : 0;
  *lock_free_at = now + wait + hold;
  return wait + hold;
}

uint64_t ChunkPool::class_bytes_for(uint64_t bytes) const {
  if (bytes != 0) {
    for (const SmallLevel& level : small_levels_) {
      if (bytes <= level.class_bytes) return level.class_bytes;
    }
  }
  return config_.chunk_size;
}

uint64_t ChunkPool::level_class_bytes(size_t level) const {
  if (level == 0 || level > small_levels_.size()) return config_.chunk_size;
  return small_levels_[level - 1].class_bytes;
}

void ChunkPool::NoteAllocated(const ChunkOwner& owner, uint64_t class_bytes,
                              uint64_t req_bytes) {
  ++allocated_count_;
  ++held_by_task_[owner.task_id];
  uint64_t frag = req_bytes != 0 && req_bytes < class_bytes
                      ? class_bytes - req_bytes
                      : 0;
  frag_bytes_ += frag;
  if (frag != 0) Metrics().frag_current_bytes->Add(static_cast<int64_t>(frag));
  if (class_bytes < config_.chunk_size) {
    Metrics().frag_bytes->Increment(config_.chunk_size - class_bytes);
  }
  Metrics().allocs->Increment();
  Metrics().used_chunks->Add(1);
}

void ChunkPool::NoteFreed(const ChunkOwner& owner, uint64_t class_bytes,
                          uint64_t req_bytes) {
  --allocated_count_;
  auto held = held_by_task_.find(owner.task_id);
  if (held != held_by_task_.end() && --held->second == 0) {
    held_by_task_.erase(held);
  }
  uint64_t frag = req_bytes != 0 && req_bytes < class_bytes
                      ? class_bytes - req_bytes
                      : 0;
  frag_bytes_ -= frag;
  if (frag != 0) Metrics().frag_current_bytes->Sub(static_cast<int64_t>(frag));
  Metrics().frees->Increment();
  Metrics().used_chunks->Sub(1);
}

Result<ChunkHandle> ChunkPool::Allocate(const ChunkOwner& owner,
                                        uint64_t bytes) {
  if (owner.task_id == 0) return InvalidArgument("owner task_id must be != 0");
  if (bytes != 0) {
    // Smallest class that fits, falling upward through larger classes when
    // a level is dry and no bulk chunk is free to carve a new slab from.
    for (uint32_t level = 1; level <= small_levels_.size(); ++level) {
      if (bytes > small_levels_[level - 1].class_bytes) continue;
      Result<ChunkHandle> handle = AllocateSmall(level, owner, bytes);
      if (handle.ok()) return handle;
    }
  }
  return AllocateBulk(owner, bytes);
}

Result<ChunkHandle> ChunkPool::AllocateBulk(const ChunkOwner& owner,
                                            uint64_t bytes) {
  // Flat mode's single lock also covers the linear segment scan.
  Duration charged = AcquireLock(
      &bulk_lock_free_at_,
      config_.flat ? config_.lock_hold * 2 : config_.lock_hold);
  pending_lock_wait_ += charged;
  lock_wait_total_ += charged;
  if (charged > 0) Metrics().lock_wait_us->Increment(static_cast<uint64_t>(charged));
  for (uint32_t s = 0; s < segments_.size(); ++s) {
    Segment& segment = segments_[s];
    if (segment.free_list.empty()) continue;
    uint32_t index = segment.free_list.back();
    segment.free_list.pop_back();
    Slot& slot = segment.slots[index];
    slot.owner = owner;
    slot.req_bytes = bytes;
    segment.allocated.insert(index);
    --free_chunks_;
    NoteAllocated(owner, config_.chunk_size, bytes);
    return ChunkHandle{s, index, 0};
  }
  Metrics().alloc_failures->Increment();
  return ResourceExhausted("sponge pool full");
}

bool ChunkPool::CarveSlab(SmallLevel* level) {
  // Take one free bulk chunk (under the bulk lock) and split it into
  // chunk_size / class_bytes slots.
  Duration charged = AcquireLock(&bulk_lock_free_at_, config_.lock_hold);
  pending_lock_wait_ += charged;
  lock_wait_total_ += charged;
  if (charged > 0) Metrics().lock_wait_us->Increment(static_cast<uint64_t>(charged));
  for (uint32_t s = 0; s < segments_.size(); ++s) {
    Segment& segment = segments_[s];
    if (segment.free_list.empty()) continue;
    uint32_t index = segment.free_list.back();
    segment.free_list.pop_back();
    segment.carved[index] = 1;
    --free_chunks_;

    uint32_t slab_index;
    if (!level->retired.empty()) {
      slab_index = level->retired.back();
      level->retired.pop_back();
    } else {
      slab_index = static_cast<uint32_t>(level->slabs.size());
      level->slabs.emplace_back();
    }
    Slab& slab = level->slabs[slab_index];
    uint64_t n = config_.chunk_size / level->class_bytes;
    slab.backing_segment = s;
    slab.backing_index = index;
    slab.active = true;
    slab.slots.assign(n, Slot{});
    slab.free_list.clear();
    slab.free_list.reserve(n);
    for (uint64_t i = n; i-- > 0;) {
      slab.free_list.push_back(static_cast<uint32_t>(i));
    }
    slab.allocated.clear();
    level->open.insert(slab_index);
    level->free_slots += n;
    ++slabs_carved_;
    Metrics().slabs_carved->Increment();
    return true;
  }
  return false;
}

void ChunkPool::ReleaseSlab(SmallLevel* level, uint32_t slab_index) {
  Slab& slab = level->slabs[slab_index];
  level->open.erase(slab_index);
  level->free_slots -= slab.slots.size();
  Segment& segment = segments_[slab.backing_segment];
  segment.carved[slab.backing_index] = 0;
  segment.free_list.push_back(slab.backing_index);
  ++free_chunks_;
  slab.active = false;
  slab.slots.clear();
  slab.free_list.clear();
  slab.allocated.clear();
  level->retired.push_back(slab_index);
  ++slabs_released_;
  Metrics().slabs_released->Increment();
}

Result<ChunkHandle> ChunkPool::AllocateSmall(uint32_t level_index,
                                             const ChunkOwner& owner,
                                             uint64_t bytes) {
  SmallLevel& level = small_levels_[level_index - 1];
  Duration charged = AcquireLock(&level.lock_free_at, config_.lock_hold);
  pending_lock_wait_ += charged;
  lock_wait_total_ += charged;
  if (charged > 0) Metrics().lock_wait_us->Increment(static_cast<uint64_t>(charged));
  if (level.open.empty() && !CarveSlab(&level)) {
    return ResourceExhausted("size class dry and no bulk chunk to carve");
  }
  uint32_t slab_index = *level.open.begin();
  Slab& slab = level.slabs[slab_index];
  uint32_t index = slab.free_list.back();
  slab.free_list.pop_back();
  Slot& slot = slab.slots[index];
  slot.owner = owner;
  slot.req_bytes = bytes;
  slab.allocated.insert(index);
  if (slab.free_list.empty()) level.open.erase(slab_index);
  --level.free_slots;
  NoteAllocated(owner, level.class_bytes, bytes);
  return ChunkHandle{slab_index, index, level_index};
}

const ChunkPool::Slot* ChunkPool::FindSlot(ChunkHandle handle) const {
  if (handle.level == 0) {
    if (handle.segment >= segments_.size()) return nullptr;
    const Segment& segment = segments_[handle.segment];
    if (handle.index >= segment.slots.size()) return nullptr;
    if (segment.carved[handle.index]) return nullptr;
    return &segment.slots[handle.index];
  }
  if (handle.level > small_levels_.size()) return nullptr;
  const SmallLevel& level = small_levels_[handle.level - 1];
  if (handle.segment >= level.slabs.size()) return nullptr;
  const Slab& slab = level.slabs[handle.segment];
  if (!slab.active || handle.index >= slab.slots.size()) return nullptr;
  return &slab.slots[handle.index];
}

Status ChunkPool::Free(ChunkHandle handle, const ChunkOwner& owner) {
  const Slot* slot = FindSlot(handle);
  if (slot == nullptr) return InvalidArgument("bad chunk handle");
  if (slot->owner.task_id == 0) {
    return FailedPrecondition("double free of sponge chunk");
  }
  if (!(slot->owner == owner)) {
    return FailedPrecondition("chunk owned by another task");
  }
  return ForceFree(handle);
}

Status ChunkPool::ForceFree(ChunkHandle handle) {
  if (handle.level == 0) return ForceFreeBulk(handle);
  return ForceFreeSmall(handle);
}

Status ChunkPool::ForceFreeBulk(ChunkHandle handle) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) return InvalidArgument("bad chunk handle");
  if (slot->owner.task_id == 0) {
    return FailedPrecondition("double free of sponge chunk");
  }
  // Frees advance the lock horizon (occupying the critical section that
  // the next allocation convoys behind) but charge no one directly.
  AcquireLock(&bulk_lock_free_at_, config_.lock_hold);
  ChunkOwner owner = slot->owner;
  uint64_t req = slot->req_bytes;
  slot->owner = ChunkOwner{};
  slot->req_bytes = 0;
  slot->data.Clear();
  Segment& segment = segments_[handle.segment];
  segment.free_list.push_back(handle.index);
  segment.allocated.erase(handle.index);
  ++free_chunks_;
  NoteFreed(owner, config_.chunk_size, req);
  return Status::OK();
}

Status ChunkPool::ForceFreeSmall(ChunkHandle handle) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) return InvalidArgument("bad chunk handle");
  if (slot->owner.task_id == 0) {
    return FailedPrecondition("double free of sponge chunk");
  }
  SmallLevel& level = small_levels_[handle.level - 1];
  AcquireLock(&level.lock_free_at, config_.lock_hold);
  Slab& slab = level.slabs[handle.segment];
  ChunkOwner owner = slot->owner;
  uint64_t req = slot->req_bytes;
  slot->owner = ChunkOwner{};
  slot->req_bytes = 0;
  slot->data.Clear();
  slab.free_list.push_back(handle.index);
  slab.allocated.erase(handle.index);
  level.open.insert(handle.segment);
  ++level.free_slots;
  NoteFreed(owner, level.class_bytes, req);
  // A fully-free slab dissolves back into a bulk chunk, so small classes
  // borrow bulk capacity only while they actually hold data.
  if (slab.allocated.empty()) ReleaseSlab(&level, handle.segment);
  return Status::OK();
}

ByteRuns* ChunkPool::chunk_data(ChunkHandle handle) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr || slot->owner.task_id == 0) return nullptr;
  return &slot->data;
}

Result<ChunkOwner> ChunkPool::OwnerOf(ChunkHandle handle) const {
  const Slot* slot = FindSlot(handle);
  if (slot == nullptr) return InvalidArgument("bad chunk handle");
  if (slot->owner.task_id == 0) return NotFound("chunk is free");
  return slot->owner;
}

uint64_t ChunkPool::slot_bytes(ChunkHandle handle) const {
  if (handle.level == 0 || handle.level > small_levels_.size()) {
    return config_.chunk_size;
  }
  return small_levels_[handle.level - 1].class_bytes;
}

uint64_t ChunkPool::free_bytes() const {
  uint64_t bytes = free_chunks_ * config_.chunk_size;
  for (const SmallLevel& level : small_levels_) {
    bytes += level.free_slots * level.class_bytes;
  }
  return bytes;
}

uint64_t ChunkPool::HeldByTask(uint64_t task_id) const {
  auto held = held_by_task_.find(task_id);
  return held == held_by_task_.end() ? 0 : held->second;
}

std::vector<std::pair<ChunkHandle, ChunkOwner>> ChunkPool::AllocatedChunks()
    const {
  std::vector<std::pair<ChunkHandle, ChunkOwner>> out;
  out.reserve(allocated_count_);
  for (uint32_t s = 0; s < segments_.size(); ++s) {
    const Segment& segment = segments_[s];
    for (uint32_t i : segment.allocated) {
      out.push_back({ChunkHandle{s, i, 0}, segment.slots[i].owner});
    }
  }
  for (uint32_t level = 1; level <= small_levels_.size(); ++level) {
    const SmallLevel& small = small_levels_[level - 1];
    for (uint32_t slab_index = 0; slab_index < small.slabs.size();
         ++slab_index) {
      const Slab& slab = small.slabs[slab_index];
      if (!slab.active) continue;
      for (uint32_t i : slab.allocated) {
        out.push_back({ChunkHandle{slab_index, i, level}, slab.slots[i].owner});
      }
    }
  }
  return out;
}

Duration ChunkPool::TakeLockWait() {
  Duration wait = pending_lock_wait_;
  pending_lock_wait_ = 0;
  return wait;
}

void ChunkPool::Reset() {
  Metrics().used_chunks->Sub(static_cast<int64_t>(allocated_count_));
  if (frag_bytes_ != 0) {
    Metrics().frag_current_bytes->Sub(static_cast<int64_t>(frag_bytes_));
  }
  for (Segment& segment : segments_) {
    segment.free_list.clear();
    segment.allocated.clear();
    for (uint64_t i = segment.slots.size(); i-- > 0;) {
      segment.slots[i].owner = ChunkOwner{};
      segment.slots[i].req_bytes = 0;
      segment.slots[i].data.Clear();
      segment.carved[i] = 0;
      segment.free_list.push_back(static_cast<uint32_t>(i));
    }
  }
  for (SmallLevel& level : small_levels_) {
    level.slabs.clear();
    level.retired.clear();
    level.open.clear();
    level.free_slots = 0;
    level.lock_free_at = 0;
  }
  free_chunks_ = total_chunks_;
  allocated_count_ = 0;
  frag_bytes_ = 0;
  held_by_task_.clear();
  bulk_lock_free_at_ = 0;
  pending_lock_wait_ = 0;
}

}  // namespace spongefiles::sponge
