#ifndef SPONGEFILES_SPONGE_RPC_CLIENT_H_
#define SPONGEFILES_SPONGE_RPC_CLIENT_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace spongefiles::obs {
class Histogram;
}  // namespace spongefiles::obs

namespace spongefiles::sponge {

// Client-side hardening for remote sponge operations. The paper's cascade
// degrades gracefully only if a sick server cannot stall the client: a
// clean crash already surfaces as UNAVAILABLE, but a hung or slow server
// would park the spilling task forever. Every remote call therefore runs
// under a deadline with bounded retries, exponential backoff, and seeded
// jitter; a per-server health scoreboard acts as a circuit breaker that
// ejects servers from allocation and reads until a half-open probe
// succeeds, so SpongeFile falls down the cascade (local pool -> remote ->
// disk -> DFS) instead of hanging.
// lint: shard(value)
struct RpcPolicy {
  // Per-attempt deadline on a remote sponge operation. Generous next to
  // the ~10 ms a healthy chunk write takes, tight next to task runtimes.
  Duration deadline = Millis(500);
  // Attempts per logical call (1 original + retries).
  int max_attempts = 3;
  // Exponential backoff between attempts, with deterministic jitter drawn
  // from the environment's seeded Rng.
  Duration backoff_base = Millis(10);
  double backoff_multiplier = 2.0;
  Duration backoff_max = Seconds(2);
  double jitter_fraction = 0.5;
  // Circuit breaker: this many consecutive failures open the breaker for
  // `breaker_cooldown`, after which a single half-open probe is let
  // through; success closes the breaker, failure re-arms the cooldown.
  int breaker_threshold = 3;
  Duration breaker_cooldown = Seconds(5);
  // Hedged remote chunk reads (tail-latency mitigation): instead of
  // riding per-attempt deadline retries into the circuit breaker, a read
  // launches a duplicate of the still-unanswered RPC once it has been
  // outstanding longer than the server's hedge_quantile read latency
  // (tracked per server in the sponge.read.latency obs histograms), and
  // the first copy to answer wins. The whole read gets hedge_deadline —
  // generous next to the per-attempt `deadline` above, because a slow
  // but honest answer is still cheaper than declaring the chunk lost and
  // re-running the owning task.
  bool hedge_reads = false;
  double hedge_quantile = 0.95;
  // Hedge-delay floor, also used until a server has hedge_min_samples
  // recorded reads (cold start: an early duplicate is cheap).
  Duration hedge_min_delay = Millis(20);
  uint64_t hedge_min_samples = 8;
  Duration hedge_deadline = Seconds(2);
};

// Per-server health scoreboard shared by every SpongeFile in an
// environment (like a client library's shared channel state). States per
// server: closed (healthy), open (ejected until cooldown expires), and
// half-open (one probe in flight).
// lint: shard(global: per-server breaker and latency state shared by every client in the environment; the parallel engine must replicate it per node or feed it by message)
class HealthBoard {
 public:
  HealthBoard(sim::Engine* engine, const RpcPolicy* policy)
      : engine_(engine), policy_(policy) {}

  HealthBoard(const HealthBoard&) = delete;
  HealthBoard& operator=(const HealthBoard&) = delete;

  // Gate before issuing a request to `node`. Closed: true. Open: false
  // until the cooldown elapses, then true exactly once (the half-open
  // probe) — every true MUST be followed by RecordSuccess or
  // RecordFailure for that node, or the probe slot stays taken.
  bool AllowRequest(size_t node);

  // Any definitive response from the server (including "pool full"): the
  // server is alive. Closes the breaker and resets the failure streak.
  void RecordSuccess(size_t node);

  // A timeout or UNAVAILABLE. Trips the breaker at breaker_threshold
  // consecutive failures; a failed half-open probe re-arms the cooldown.
  void RecordFailure(size_t node);

  // Open or half-open (no probe budget available without AllowRequest).
  bool IsOpen(size_t node) const;

  // Completed-read latency sample for `node`, feeding the hedge trigger
  // (recorded into the per-server sponge.read.latency histogram).
  void RecordReadLatency(size_t node, Duration latency);

  // How long a read of `node` should stay unanswered before a duplicate
  // is launched: the hedge_quantile of the server's recorded latencies,
  // floored at hedge_min_delay (which also covers the cold start).
  Duration HedgeDelay(size_t node) const;

  uint64_t trips() const { return trips_; }
  uint64_t recoveries() const { return recoveries_; }

 private:
  struct ServerHealth {
    int consecutive_failures = 0;
    bool open = false;
    bool probing = false;
    SimTime open_until = 0;
  };

  ServerHealth& StateFor(size_t node);
  obs::Histogram* LatencyFor(size_t node) const;
  void NoteAccess(bool write) const;

  sim::Engine* engine_;
  const RpcPolicy* policy_;
  std::vector<ServerHealth> health_;
  // Per-server read-latency histograms (sponge.read.latency{node=i}),
  // created lazily in the default registry.
  mutable std::vector<obs::Histogram*> read_latency_;
  uint64_t trips_ = 0;
  uint64_t recoveries_ = 0;
};

// The message CallWithDeadline stamps on a deadline-expired status;
// IsRpcTimeout distinguishes a timeout from other UNAVAILABLE causes
// (telemetry and spill-decision labeling only — retry behaviour treats
// them identically).
inline constexpr const char kRpcDeadlineMessage[] = "rpc deadline exceeded";

inline bool IsRpcTimeout(const Status& status) {
  return status.code() == StatusCode::kUnavailable &&
         status.message() == kRpcDeadlineMessage;
}

namespace internal_rpc {

// Uniform view over the two remote-call return shapes (Status and
// Result<T>): extract the status, construct the deadline-expired value.
template <typename T>
struct CallTraits;

template <>
// lint: shard(value)
struct CallTraits<Status> {
  static Status Timeout() { return Unavailable(kRpcDeadlineMessage); }
  static const Status& StatusOf(const Status& value) { return value; }
};

template <typename T>
// lint: shard(value)
struct CallTraits<Result<T>> {
  static Result<T> Timeout() {
    return Status(StatusCode::kUnavailable, kRpcDeadlineMessage);
  }
  static const Status& StatusOf(const Result<T>& value) {
    return value.status();
  }
};

// Telemetry hooks (defined in rpc_client.cc so the counters are created
// once, not per template instantiation).
void CountTimeout();
void CountRetry();
void CountBackoff(Duration slept);
void CountHedgeIssued();
void CountHedgeWon();

}  // namespace internal_rpc

// Runs `op` against a wall-clock budget of `deadline`. If the deadline
// fires first, returns UNAVAILABLE ("rpc deadline exceeded") and sets
// *timed_out; the operation itself keeps running detached — the simulated
// server cannot tell its client gave up — and its eventual result is
// discarded. The engine's teardown pass reclaims ops that never finish
// (e.g. parked on a hung server).
template <typename T>
sim::Task<T> CallWithDeadline(sim::Engine* engine, Duration deadline,
                              sim::Task<T> op, bool* timed_out = nullptr) {
  // lint: shard(value)
  struct Shared {
    explicit Shared(sim::Engine* e) : done(e) {}
    sim::Event done;
    std::optional<T> result;
  };
  auto shared = std::make_shared<Shared>(engine);
  auto runner = [](std::shared_ptr<Shared> state,
                   sim::Task<T> call) -> sim::Task<> {
    T value = co_await call;
    if (!state->result.has_value()) state->result = std::move(value);
    state->done.Set();
  };
  auto timer = [](std::shared_ptr<Shared> state, sim::Engine* eng,
                  Duration budget) -> sim::Task<> {
    co_await eng->Delay(budget);
    state->done.Set();
  };
  engine->Spawn(runner(shared, std::move(op)));
  engine->Spawn(timer(shared, engine, deadline));
  co_await shared->done.Wait();
  if (shared->result.has_value()) {
    if (timed_out != nullptr) *timed_out = false;
    co_return std::move(*shared->result);
  }
  if (timed_out != nullptr) *timed_out = true;
  internal_rpc::CountTimeout();
  co_return internal_rpc::CallTraits<T>::Timeout();
}

// A remote call with the full client-side hardening: per-attempt deadline,
// bounded retries with exponential backoff and seeded jitter, and health
// accounting on `board`. `make_op` creates a fresh operation Task per
// attempt (an abandoned attempt keeps running detached and cannot be
// re-awaited). Only transport-class failures (timeout, UNAVAILABLE) are
// retried; a definitive server answer — success, pool full, ownership
// mismatch — returns immediately and counts as proof of health. Callers
// gate the *first* attempt with board->AllowRequest; retries stop early if
// the breaker opens mid-call.
//
// TOOLCHAIN CONSTRAINT: a factory passed as a temporary lambda must capture
// only trivially-destructible state (pointers, references, handles). GCC 12
// miscompiles non-trivially-destructible temporaries that are arguments
// inside a co_await full-expression — their cleanup funclet runs on a
// corrupted copy. Hoist the lambda into a named local if it must own a
// string, Status, or container.
// `policy` is by value (it is a small POD): the coroutine frame must not
// reference storage owned by a caller that may already be gone.
template <typename T, typename Factory>
sim::Task<T> HardenedCall(sim::Engine* engine, HealthBoard* board,
                          RpcPolicy policy, Rng* rng, size_t node,
                          Factory make_op) {
  Duration backoff = policy.backoff_base;
  int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1;; ++attempt) {
    bool timed_out = false;
    // Named local (not a temporary argument) — see the constraint above;
    // Task's destructor is non-trivial.
    sim::Task<T> op = make_op();
    T value = co_await CallWithDeadline<T>(engine, policy.deadline,
                                           std::move(op), &timed_out);
    const Status& status = internal_rpc::CallTraits<T>::StatusOf(value);
    if (!timed_out && status.code() != StatusCode::kUnavailable) {
      board->RecordSuccess(node);
      co_return value;
    }
    board->RecordFailure(node);
    if (attempt >= max_attempts || board->IsOpen(node)) co_return value;
    internal_rpc::CountRetry();
    double jitter = policy.jitter_fraction * rng->NextDouble();
    Duration sleep = static_cast<Duration>(
        static_cast<double>(backoff) * (1.0 + jitter));
    internal_rpc::CountBackoff(sleep);
    co_await engine->Delay(sleep);
    backoff = std::min<Duration>(
        static_cast<Duration>(static_cast<double>(backoff) *
                              policy.backoff_multiplier),
        policy.backoff_max);
  }
}

// A hedged remote read: the primary copy of the operation starts
// immediately; if it is still unanswered after board->HedgeDelay(node), a
// duplicate is launched and the first copy to settle wins. The whole call
// runs against policy.hedge_deadline — much looser than the per-attempt
// `deadline` of HardenedCall, because the point of hedging is to accept a
// slow-but-honest answer instead of declaring the chunk lost and tripping
// the breaker. Both copies are created eagerly (sim::Task is lazy, so the
// unused duplicate costs nothing) while the caller's frame is guaranteed
// alive; copies that outlive the call keep running detached, like
// CallWithDeadline's abandoned attempts. Health accounting: a settled
// result records success/failure by its status; deadline expiry records a
// failure. Completed copies record their latency into the per-server
// histogram that drives future hedge delays.
//
// The TOOLCHAIN CONSTRAINT above HardenedCall applies here too: `make_op`
// temporaries must capture only trivially-destructible state.
template <typename T, typename Factory>
sim::Task<T> HedgedCall(sim::Engine* engine, HealthBoard* board,
                        RpcPolicy policy, size_t node, Factory make_op) {
  // lint: shard(value)
  struct Shared {
    explicit Shared(sim::Engine* e) : done(e) {}
    sim::Event done;
    std::optional<T> result;
    bool hedge_won = false;
  };
  auto shared = std::make_shared<Shared>(engine);
  auto runner = [](std::shared_ptr<Shared> state, HealthBoard* hb,
                   size_t target, sim::Engine* eng, sim::Task<T> call,
                   bool is_hedge) -> sim::Task<> {
    SimTime started = eng->now();
    T value = co_await call;
    const Status& status = internal_rpc::CallTraits<T>::StatusOf(value);
    if (status.code() != StatusCode::kUnavailable) {
      hb->RecordReadLatency(target, eng->now() - started);
    }
    if (!state->result.has_value()) {
      state->hedge_won = is_hedge;
      state->result = std::move(value);
      state->done.Set();
    }
  };
  auto hedger = [](std::shared_ptr<Shared> state, sim::Engine* eng,
                   Duration delay, sim::Task<> duplicate) -> sim::Task<> {
    co_await eng->Delay(delay);
    if (state->result.has_value()) co_return;  // primary already answered
    internal_rpc::CountHedgeIssued();
    co_await duplicate;
  };
  auto timer = [](std::shared_ptr<Shared> state, sim::Engine* eng,
                  Duration budget) -> sim::Task<> {
    co_await eng->Delay(budget);
    state->done.Set();
  };
  // Both copies' operations are created now, while the caller (and
  // whatever state the factory captures) is alive; the duplicate only
  // starts if the hedger decides to await it.
  sim::Task<T> primary_op = make_op();
  sim::Task<T> hedge_op = make_op();
  sim::Task<> hedge_runner =
      runner(shared, board, node, engine, std::move(hedge_op), true);
  engine->Spawn(runner(shared, board, node, engine, std::move(primary_op),
                       false));
  engine->Spawn(hedger(shared, engine, board->HedgeDelay(node),
                       std::move(hedge_runner)));
  engine->Spawn(timer(shared, engine, policy.hedge_deadline));
  co_await shared->done.Wait();
  if (shared->result.has_value()) {
    const Status& status =
        internal_rpc::CallTraits<T>::StatusOf(*shared->result);
    if (status.code() != StatusCode::kUnavailable) {
      board->RecordSuccess(node);
    } else {
      board->RecordFailure(node);
    }
    if (shared->hedge_won) internal_rpc::CountHedgeWon();
    co_return std::move(*shared->result);
  }
  internal_rpc::CountTimeout();
  board->RecordFailure(node);
  co_return internal_rpc::CallTraits<T>::Timeout();
}

}  // namespace spongefiles::sponge

#endif  // SPONGEFILES_SPONGE_RPC_CLIENT_H_
