#ifndef SPONGEFILES_SPONGE_RPC_CLIENT_H_
#define SPONGEFILES_SPONGE_RPC_CLIENT_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace spongefiles::sponge {

// Client-side hardening for remote sponge operations. The paper's cascade
// degrades gracefully only if a sick server cannot stall the client: a
// clean crash already surfaces as UNAVAILABLE, but a hung or slow server
// would park the spilling task forever. Every remote call therefore runs
// under a deadline with bounded retries, exponential backoff, and seeded
// jitter; a per-server health scoreboard acts as a circuit breaker that
// ejects servers from allocation and reads until a half-open probe
// succeeds, so SpongeFile falls down the cascade (local pool -> remote ->
// disk -> DFS) instead of hanging.
struct RpcPolicy {
  // Per-attempt deadline on a remote sponge operation. Generous next to
  // the ~10 ms a healthy chunk write takes, tight next to task runtimes.
  Duration deadline = Millis(500);
  // Attempts per logical call (1 original + retries).
  int max_attempts = 3;
  // Exponential backoff between attempts, with deterministic jitter drawn
  // from the environment's seeded Rng.
  Duration backoff_base = Millis(10);
  double backoff_multiplier = 2.0;
  Duration backoff_max = Seconds(2);
  double jitter_fraction = 0.5;
  // Circuit breaker: this many consecutive failures open the breaker for
  // `breaker_cooldown`, after which a single half-open probe is let
  // through; success closes the breaker, failure re-arms the cooldown.
  int breaker_threshold = 3;
  Duration breaker_cooldown = Seconds(5);
};

// Per-server health scoreboard shared by every SpongeFile in an
// environment (like a client library's shared channel state). States per
// server: closed (healthy), open (ejected until cooldown expires), and
// half-open (one probe in flight).
class HealthBoard {
 public:
  HealthBoard(sim::Engine* engine, const RpcPolicy* policy)
      : engine_(engine), policy_(policy) {}

  HealthBoard(const HealthBoard&) = delete;
  HealthBoard& operator=(const HealthBoard&) = delete;

  // Gate before issuing a request to `node`. Closed: true. Open: false
  // until the cooldown elapses, then true exactly once (the half-open
  // probe) — every true MUST be followed by RecordSuccess or
  // RecordFailure for that node, or the probe slot stays taken.
  bool AllowRequest(size_t node);

  // Any definitive response from the server (including "pool full"): the
  // server is alive. Closes the breaker and resets the failure streak.
  void RecordSuccess(size_t node);

  // A timeout or UNAVAILABLE. Trips the breaker at breaker_threshold
  // consecutive failures; a failed half-open probe re-arms the cooldown.
  void RecordFailure(size_t node);

  // Open or half-open (no probe budget available without AllowRequest).
  bool IsOpen(size_t node) const;

  uint64_t trips() const { return trips_; }
  uint64_t recoveries() const { return recoveries_; }

 private:
  struct ServerHealth {
    int consecutive_failures = 0;
    bool open = false;
    bool probing = false;
    SimTime open_until = 0;
  };

  ServerHealth& StateFor(size_t node);

  sim::Engine* engine_;
  const RpcPolicy* policy_;
  std::vector<ServerHealth> health_;
  uint64_t trips_ = 0;
  uint64_t recoveries_ = 0;
};

// The message CallWithDeadline stamps on a deadline-expired status;
// IsRpcTimeout distinguishes a timeout from other UNAVAILABLE causes
// (telemetry and spill-decision labeling only — retry behaviour treats
// them identically).
inline constexpr const char kRpcDeadlineMessage[] = "rpc deadline exceeded";

inline bool IsRpcTimeout(const Status& status) {
  return status.code() == StatusCode::kUnavailable &&
         status.message() == kRpcDeadlineMessage;
}

namespace internal_rpc {

// Uniform view over the two remote-call return shapes (Status and
// Result<T>): extract the status, construct the deadline-expired value.
template <typename T>
struct CallTraits;

template <>
struct CallTraits<Status> {
  static Status Timeout() { return Unavailable(kRpcDeadlineMessage); }
  static const Status& StatusOf(const Status& value) { return value; }
};

template <typename T>
struct CallTraits<Result<T>> {
  static Result<T> Timeout() {
    return Status(StatusCode::kUnavailable, kRpcDeadlineMessage);
  }
  static const Status& StatusOf(const Result<T>& value) {
    return value.status();
  }
};

// Telemetry hooks (defined in rpc_client.cc so the counters are created
// once, not per template instantiation).
void CountTimeout();
void CountRetry();
void CountBackoff(Duration slept);

}  // namespace internal_rpc

// Runs `op` against a wall-clock budget of `deadline`. If the deadline
// fires first, returns UNAVAILABLE ("rpc deadline exceeded") and sets
// *timed_out; the operation itself keeps running detached — the simulated
// server cannot tell its client gave up — and its eventual result is
// discarded. The engine's teardown pass reclaims ops that never finish
// (e.g. parked on a hung server).
template <typename T>
sim::Task<T> CallWithDeadline(sim::Engine* engine, Duration deadline,
                              sim::Task<T> op, bool* timed_out = nullptr) {
  struct Shared {
    explicit Shared(sim::Engine* e) : done(e) {}
    sim::Event done;
    std::optional<T> result;
  };
  auto shared = std::make_shared<Shared>(engine);
  auto runner = [](std::shared_ptr<Shared> state,
                   sim::Task<T> call) -> sim::Task<> {
    T value = co_await call;
    if (!state->result.has_value()) state->result = std::move(value);
    state->done.Set();
  };
  auto timer = [](std::shared_ptr<Shared> state, sim::Engine* eng,
                  Duration budget) -> sim::Task<> {
    co_await eng->Delay(budget);
    state->done.Set();
  };
  engine->Spawn(runner(shared, std::move(op)));
  engine->Spawn(timer(shared, engine, deadline));
  co_await shared->done.Wait();
  if (shared->result.has_value()) {
    if (timed_out != nullptr) *timed_out = false;
    co_return std::move(*shared->result);
  }
  if (timed_out != nullptr) *timed_out = true;
  internal_rpc::CountTimeout();
  co_return internal_rpc::CallTraits<T>::Timeout();
}

// A remote call with the full client-side hardening: per-attempt deadline,
// bounded retries with exponential backoff and seeded jitter, and health
// accounting on `board`. `make_op` creates a fresh operation Task per
// attempt (an abandoned attempt keeps running detached and cannot be
// re-awaited). Only transport-class failures (timeout, UNAVAILABLE) are
// retried; a definitive server answer — success, pool full, ownership
// mismatch — returns immediately and counts as proof of health. Callers
// gate the *first* attempt with board->AllowRequest; retries stop early if
// the breaker opens mid-call.
//
// TOOLCHAIN CONSTRAINT: a factory passed as a temporary lambda must capture
// only trivially-destructible state (pointers, references, handles). GCC 12
// miscompiles non-trivially-destructible temporaries that are arguments
// inside a co_await full-expression — their cleanup funclet runs on a
// corrupted copy. Hoist the lambda into a named local if it must own a
// string, Status, or container.
// `policy` is by value (it is a small POD): the coroutine frame must not
// reference storage owned by a caller that may already be gone.
template <typename T, typename Factory>
sim::Task<T> HardenedCall(sim::Engine* engine, HealthBoard* board,
                          RpcPolicy policy, Rng* rng, size_t node,
                          Factory make_op) {
  Duration backoff = policy.backoff_base;
  int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1;; ++attempt) {
    bool timed_out = false;
    // Named local (not a temporary argument) — see the constraint above;
    // Task's destructor is non-trivial.
    sim::Task<T> op = make_op();
    T value = co_await CallWithDeadline<T>(engine, policy.deadline,
                                           std::move(op), &timed_out);
    const Status& status = internal_rpc::CallTraits<T>::StatusOf(value);
    if (!timed_out && status.code() != StatusCode::kUnavailable) {
      board->RecordSuccess(node);
      co_return value;
    }
    board->RecordFailure(node);
    if (attempt >= max_attempts || board->IsOpen(node)) co_return value;
    internal_rpc::CountRetry();
    double jitter = policy.jitter_fraction * rng->NextDouble();
    Duration sleep = static_cast<Duration>(
        static_cast<double>(backoff) * (1.0 + jitter));
    internal_rpc::CountBackoff(sleep);
    co_await engine->Delay(sleep);
    backoff = std::min<Duration>(
        static_cast<Duration>(static_cast<double>(backoff) *
                              policy.backoff_multiplier),
        policy.backoff_max);
  }
}

}  // namespace spongefiles::sponge

#endif  // SPONGEFILES_SPONGE_RPC_CLIENT_H_
