#ifndef SPONGEFILES_MAPRED_SPILL_H_
#define SPONGEFILES_MAPRED_SPILL_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "cluster/local_fs.h"
#include "common/byte_runs.h"
#include "common/status.h"
#include "sim/task.h"
#include "sponge/sponge_env.h"
#include "sponge/sponge_file.h"

namespace spongefiles::mapred {

// An independent sequential read cursor over a closed spill file. Every
// reader owns its position, so concurrent consumers — two attempts of the
// same reduce task shuffling one map output — never disturb each other or
// the file's own cursor. Readers borrow the file: the file must outlive
// them (the JobTracker keeps map outputs alive until every attempt has
// drained).
// lint: shard(value)
class SpillReader {
 public:
  virtual ~SpillReader() = default;
  // Next sequential piece; empty ByteRuns at EOF.
  virtual sim::Task<Result<ByteRuns>> ReadNext() = 0;
};

// A spill target with SpongeFile semantics: write once sequentially,
// close, read back once sequentially, delete. The two implementations are
// the baseline (local disk through the node's buffer cache, stock Hadoop)
// and SpongeFiles; a third, memory-backed one holds a reduce task's
// in-memory shuffle segments so the merge machinery can treat every
// segment uniformly.
// lint: shard(value)
class SpillFile {
 public:
  virtual ~SpillFile() = default;

  virtual sim::Task<Status> Append(ByteRuns data) = 0;
  virtual sim::Task<Status> Close() = 0;
  // Next sequential piece of the file; empty ByteRuns at EOF.
  virtual sim::Task<Result<ByteRuns>> ReadNext() = 0;
  virtual sim::Task<> Delete() = 0;

  // Opens an independent cursor over the closed file (shuffle sources:
  // map outputs are fetched concurrently by every attempt of every
  // reduce). Supported by the media map outputs live on (local disk,
  // memory); SpongeFiles are strictly read-once and do not support this.
  virtual Result<std::unique_ptr<SpillReader>> OpenReader() {
    return FailedPrecondition("spill file is read-once");
  }

  virtual uint64_t size() const = 0;
  // Placement stats when backed by a SpongeFile, nullptr otherwise.
  virtual const sponge::SpongeFile::Stats* sponge_stats() const {
    return nullptr;
  }
};

// Where a task's spills go; what Figures 4-6 vary.
enum class SpillMode { kDisk, kSponge };

// Aggregate spill accounting for one task (Table 2's columns).
// lint: shard(value)
struct SpillStats {
  uint64_t bytes_spilled = 0;
  uint64_t files_created = 0;
  uint64_t sponge_chunks = 0;
  uint64_t sponge_chunks_local = 0;
  uint64_t sponge_chunks_remote = 0;
  uint64_t sponge_chunks_ssd = 0;
  uint64_t sponge_chunks_disk = 0;
  uint64_t sponge_chunks_dfs = 0;
  // Logical bytes the sponge cascade placed on each medium (sums to
  // bytes_spilled for a pure-sponge task).
  uint64_t sponge_bytes_local = 0;
  uint64_t sponge_bytes_remote = 0;
  uint64_t sponge_bytes_ssd = 0;
  uint64_t sponge_bytes_disk = 0;
  uint64_t sponge_bytes_dfs = 0;
  uint64_t fragmentation_bytes = 0;
  uint64_t stale_list_retries = 0;

  void Add(const SpillStats& other);
};

// Creates spill files for one task and accumulates their statistics.
// lint: shard(value)
class Spiller {
 public:
  virtual ~Spiller() = default;

  virtual Result<std::unique_ptr<SpillFile>> Create(
      const std::string& name) = 0;

  // Maximum segments merged at once. Disk merging is bounded by
  // io.sort.factor (10) to limit concurrent streams and their seeks;
  // SpongeFile merging has no seeks to avoid, so it is unbounded and the
  // merge happens in a single round (paper section 4.2.3).
  virtual size_t merge_factor() const = 0;

  SpillStats& stats() { return stats_; }
  const SpillStats& stats() const { return stats_; }

 protected:
  SpillStats stats_;
};

// Baseline: spill files on the task node's local filesystem (through the
// buffer cache, exactly like stock Hadoop/Pig intermediate files).
// lint: shard(value)
class DiskSpiller : public Spiller {
 public:
  DiskSpiller(sim::Engine* engine, cluster::LocalFs* fs,
              std::string name_prefix, size_t merge_factor = 10)
      : engine_(engine),
        fs_(fs),
        name_prefix_(std::move(name_prefix)),
        merge_factor_(merge_factor) {}

  Result<std::unique_ptr<SpillFile>> Create(const std::string& name) override;
  size_t merge_factor() const override { return merge_factor_; }

 private:
  sim::Engine* engine_;
  cluster::LocalFs* fs_;
  std::string name_prefix_;
  size_t merge_factor_;
  uint64_t next_id_ = 0;
};

// SpongeFile-backed spilling (the paper's contribution).
// lint: shard(value)
class SpongeSpiller : public Spiller {
 public:
  SpongeSpiller(sponge::SpongeEnv* env, sponge::TaskContext* task,
                std::string name_prefix)
      : env_(env), task_(task), name_prefix_(std::move(name_prefix)) {}

  Result<std::unique_ptr<SpillFile>> Create(const std::string& name) override;
  size_t merge_factor() const override {
    return std::numeric_limits<size_t>::max();
  }

 private:
  sponge::SpongeEnv* env_;
  sponge::TaskContext* task_;
  std::string name_prefix_;
  uint64_t next_id_ = 0;
};

// A purely in-memory segment (a reduce task's shuffle buffer contents).
// Reads cost only heap copy time.
// lint: shard(value)
class MemorySpillFile : public SpillFile {
 public:
  MemorySpillFile(sim::Engine* engine, uint64_t read_unit = kMiB,
                  double memory_bandwidth = 3.0 * 1024 * 1024 * 1024)
      : engine_(engine),
        read_unit_(read_unit),
        memory_bandwidth_(memory_bandwidth) {}

  sim::Task<Status> Append(ByteRuns data) override;
  sim::Task<Status> Close() override;
  sim::Task<Result<ByteRuns>> ReadNext() override;
  sim::Task<> Delete() override;
  Result<std::unique_ptr<SpillReader>> OpenReader() override;
  // Resets the file's own cursor (not part of the SpillFile interface:
  // shuffle re-reads go through OpenReader; this exists for segment reuse
  // within one attempt).
  Status Rewind();
  uint64_t size() const override { return size_; }

 private:
  class Reader;

  sim::Engine* engine_;
  uint64_t read_unit_;
  double memory_bandwidth_;
  ByteRuns content_;
  uint64_t size_ = 0;
  uint64_t read_offset_ = 0;
  bool closed_ = false;
};

}  // namespace spongefiles::mapred

#endif  // SPONGEFILES_MAPRED_SPILL_H_
