#ifndef SPONGEFILES_MAPRED_REDUCE_TASK_H_
#define SPONGEFILES_MAPRED_REDUCE_TASK_H_

#include <memory>
#include <vector>

#include "mapred/job.h"
#include "mapred/map_task.h"
#include "mapred/merger.h"
#include "mapred/task_attempt.h"
#include "sponge/sponge_env.h"

namespace spongefiles::mapred {

// Everything one successful reduce attempt produces.
// lint: shard(value)
struct ReduceAttemptResult {
  std::vector<Record> output;
  TaskStats stats;
};

// Runs one reduce attempt (section 2.1.2 semantics):
//   1. shuffle: fetch this partition from every map output; segments live
//      in the in-memory buffer (shuffle_buffer_fraction of the heap) and
//      overflow is merged and spilled through the task's spiller;
//   2. with reduce_retain_fraction = 0, the remaining in-memory segments
//      are spilled too;
//   3. while more than merge_factor segments remain, the smallest
//      merge_factor are k-way merged into a new spilled run (multi-round
//      merging exists to bound concurrent disk streams; SpongeFile
//      spilling reports an unbounded factor, so this loop never runs and
//      the merge happens in a single round);
//   4. the final merge streams key groups into the Reducer.
// lint: shard(value)
class ReduceTask {
 public:
  ReduceTask(sponge::SpongeEnv* env, const JobConfig* config,
             std::vector<MapOutput>* map_outputs, size_t partition,
             TaskAttempt* attempt);

  sim::Task<Result<ReduceAttemptResult>> Run();

 private:
  // Fetches one map output's partition into a fresh in-memory segment
  // through an independent read cursor (concurrent attempts of this
  // partition shuffle the same map-side files), spilling the buffer first
  // if it would overflow.
  sim::Task<Status> FetchSegment(MapOutput* output);

  // Merges all in-memory segments into one spilled run.
  sim::Task<Status> SpillMemorySegments();

  sim::Task<Status> IntermediateMergeRounds();

  sim::Task<Status> DriveReducer(RecordSource* stream,
                                 std::vector<Record>* job_output,
                                 TaskStats* stats);

  std::unique_ptr<Spiller> MakeSpiller();

  // This task's JVM heap (per-job override or the node's slot default).
  uint64_t ReduceHeap() const;

  sponge::SpongeEnv* env_;
  const JobConfig* config_;
  std::vector<MapOutput>* map_outputs_;
  size_t partition_;
  TaskAttempt* attempt_;
  size_t node_;

  std::unique_ptr<Spiller> spiller_;
  std::unique_ptr<Reducer> reducer_;

  std::vector<std::unique_ptr<SpillFile>> memory_segments_;
  uint64_t memory_bytes_ = 0;
  std::vector<std::unique_ptr<SpillFile>> spilled_segments_;
  int next_run_ = 0;
};

}  // namespace spongefiles::mapred

#endif  // SPONGEFILES_MAPRED_REDUCE_TASK_H_
