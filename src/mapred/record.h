#ifndef SPONGEFILES_MAPRED_RECORD_H_
#define SPONGEFILES_MAPRED_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/byte_runs.h"
#include "common/status.h"

namespace spongefiles::mapred {

// The key/value record flowing through map and reduce. Fields are the
// small, semantically meaningful columns (domain, language, anchortext
// term, ...); `number` carries numeric columns (spam score, the median
// job's values); `size` is the record's logical serialized size — real web
// rows carry kilobytes of metadata the queries never touch, represented
// here as zero filler so capacities and IO times stay faithful without the
// RAM cost (see DESIGN.md).
// lint: shard(value)
struct Record {
  std::string key;
  double number = 0;
  std::vector<std::string> fields;
  uint64_t size = 0;

  bool operator==(const Record& other) const {
    return key == other.key && number == other.number &&
           fields == other.fields && size == other.size;
  }
};

// Serialized bytes of the header (everything except the filler).
uint64_t RecordHeaderSize(const Record& record);

// Appends the record's wire form to `out`: a literal header followed by
// zero filler up to max(record.size, header size).
void SerializeRecord(const Record& record, ByteRuns* out);

// Total wire size of `record` (header plus filler).
uint64_t SerializedSize(const Record& record);

// Incremental parser over a stream of serialized chunks. Records may span
// chunk boundaries; Feed() chunks in order and drain with Next().
//
// Zero-copy: fed chunks are shared, not flattened — only each record's
// header bytes are ever copied out (into a reused scratch buffer); the
// zero filler, which dominates the logical volume, is skipped via a
// ByteRuns::Cursor and never materialized on the host.
// lint: shard(value)
class RecordParser {
 public:
  RecordParser() = default;

  void Feed(const ByteRuns& chunk);

  // Parses the next record into `out`. Returns true on success, false when
  // more data is needed. Corrupt input is a CHECK failure (the stream is
  // produced by SerializeRecord).
  bool Next(Record* out);

  // Bytes buffered but not yet consumed.
  uint64_t pending_bytes() const { return cursor_.available(); }

 private:
  ByteRuns pending_;
  ByteRuns::Cursor cursor_{&pending_};
  std::vector<uint8_t> scratch_;  // header bytes of the record under parse
};

}  // namespace spongefiles::mapred

#endif  // SPONGEFILES_MAPRED_RECORD_H_
