#include "mapred/task_attempt.h"

#include <string>

#include "obs/metrics.h"
#include "sponge/rpc_client.h"

namespace spongefiles::mapred {

const char* TaskRerunReason(const Status& status) {
  if (sponge::IsRpcTimeout(status)) return "timeout";
  // Checksum mismatches surface as UNAVAILABLE too (the chunk is equally
  // lost), but corruption and crashes are different operational problems;
  // split them by the message the verifier attaches.
  if (status.message().find("checksum") != std::string::npos) {
    return "checksum";
  }
  switch (status.code()) {
    case StatusCode::kUnavailable:
      return "chunk-lost";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    default:
      return "other";
  }
}

void CountTaskRerun(const Status& status) {
  obs::Registry::Default()
      .counter("mapred.task.rerun.reason",
               {{"reason", TaskRerunReason(status)}})
      ->Increment();
}

namespace {

obs::Counter* SpeculationCounter(const char* event) {
  static obs::Registry& registry = obs::Registry::Default();
  static obs::Counter* const launched =
      registry.counter("mapred.speculation.launched");
  static obs::Counter* const won = registry.counter("mapred.speculation.won");
  static obs::Counter* const cancelled =
      registry.counter("mapred.speculation.cancelled");
  switch (event[0]) {
    case 'l':
      return launched;
    case 'w':
      return won;
    default:
      return cancelled;
  }
}

}  // namespace

std::string TaskAttemptId::ToString() const {
  return job + (kind == TaskKind::kMap ? ".m" : ".r") +
         std::to_string(task_index) + ".a" + std::to_string(attempt);
}

TaskAttempt* AttemptSet::Launch(sponge::SpongeEnv* env, const std::string& job,
                                TaskKind kind, int task_index, size_t node,
                                bool backup) {
  auto attempt = std::make_unique<TaskAttempt>();
  attempt->id.job = job;
  attempt->id.kind = kind;
  attempt->id.task_index = task_index;
  attempt->id.attempt = launched() + 1;
  attempt->id.node = node;
  attempt->ctx = env->StartTask(node);
  attempt->id.attempt_id = attempt->ctx.task_id;
  attempt->backup = backup;
  attempt->started_at = env->engine()->now();
  if (backup) {
    ++backups_;
    SpeculationCounter("launched")->Increment();
  }
  attempts_.push_back(std::move(attempt));
  return attempts_.back().get();
}

void AttemptSet::Finish(sponge::SpongeEnv* env, TaskAttempt* attempt) {
  if (attempt->finished) return;
  attempt->finished = true;
  env->EndTask(attempt->ctx);
}

bool AttemptSet::TryCommit(TaskAttempt* attempt) {
  if (winner_ != nullptr) return false;
  winner_ = attempt;
  for (const auto& other : attempts_) {
    if (other.get() == attempt || other->finished || other->killed()) {
      continue;
    }
    other->Kill();
    // Only races created by speculation count as cancellations; a lone
    // primary has no competitors to kill.
    if (other->backup || attempt->backup) {
      SpeculationCounter("cancelled")->Increment();
    }
  }
  if (attempt->backup) SpeculationCounter("won")->Increment();
  return true;
}

void AttemptSet::KillAll() {
  for (const auto& attempt : attempts_) {
    if (!attempt->finished) attempt->Kill();
  }
}

TaskAttempt* AttemptSet::RunningPrimary() const {
  for (const auto& attempt : attempts_) {
    if (!attempt->finished && !attempt->backup) return attempt.get();
  }
  return nullptr;
}

uint64_t AttemptSet::BestProgress() const {
  uint64_t best = 0;
  for (const auto& attempt : attempts_) {
    if (attempt->progress() > best) best = attempt->progress();
  }
  return best;
}

}  // namespace spongefiles::mapred
