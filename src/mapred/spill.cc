#include "mapred/spill.h"

#include <limits>

#include "obs/metrics.h"

namespace spongefiles::mapred {

namespace {

obs::Counter* SpillModeCounter(SpillMode mode) {
  static obs::Counter* const disk = obs::Registry::Default().counter(
      "mapred.spill.bytes", {{"mode", "disk"}});
  static obs::Counter* const sponge = obs::Registry::Default().counter(
      "mapred.spill.bytes", {{"mode", "sponge"}});
  return mode == SpillMode::kDisk ? disk : sponge;
}

}  // namespace

void SpillStats::Add(const SpillStats& other) {
  bytes_spilled += other.bytes_spilled;
  files_created += other.files_created;
  sponge_chunks += other.sponge_chunks;
  sponge_chunks_local += other.sponge_chunks_local;
  sponge_chunks_remote += other.sponge_chunks_remote;
  sponge_chunks_ssd += other.sponge_chunks_ssd;
  sponge_chunks_disk += other.sponge_chunks_disk;
  sponge_chunks_dfs += other.sponge_chunks_dfs;
  sponge_bytes_local += other.sponge_bytes_local;
  sponge_bytes_remote += other.sponge_bytes_remote;
  sponge_bytes_ssd += other.sponge_bytes_ssd;
  sponge_bytes_disk += other.sponge_bytes_disk;
  sponge_bytes_dfs += other.sponge_bytes_dfs;
  fragmentation_bytes += other.fragmentation_bytes;
  stale_list_retries += other.stale_list_retries;
}

namespace {

// Disk-backed spill file: content kept alongside the LocalFs file that
// provides timing and capacity accounting.
class DiskSpillFile;

// lint: shard(value)
class DiskSpillReader : public SpillReader {
 public:
  explicit DiskSpillReader(DiskSpillFile* file) : file_(file) {}
  sim::Task<Result<ByteRuns>> ReadNext() override;

 private:
  DiskSpillFile* file_;
  uint64_t offset_ = 0;
};

// lint: shard(value)
class DiskSpillFile : public SpillFile {
 public:
  DiskSpillFile(cluster::LocalFs* fs, uint64_t file_id, SpillStats* stats)
      : fs_(fs), file_id_(file_id), stats_(stats) {}

  ~DiskSpillFile() override {
    if (!deleted_) (void)fs_->Delete(file_id_);
  }

  sim::Task<Status> Append(ByteRuns data) override {
    if (closed_) co_return FailedPrecondition("append after close");
    uint64_t n = data.size();
    content_.Append(data);
    size_ += n;
    stats_->bytes_spilled += n;
    SpillModeCounter(SpillMode::kDisk)->Increment(n);
    co_return co_await fs_->Append(file_id_, n);
  }

  sim::Task<Status> Close() override {
    closed_ = true;
    co_return Status::OK();
  }

  sim::Task<Result<ByteRuns>> ReadNext() override {
    if (!closed_) co_return FailedPrecondition("read before close");
    if (read_offset_ >= size_) co_return ByteRuns{};
    uint64_t n = std::min<uint64_t>(kMiB, size_ - read_offset_);
    Status read = co_await fs_->Read(file_id_, read_offset_, n);
    if (!read.ok()) co_return read;
    ByteRuns piece = content_.SubRange(read_offset_, n);
    read_offset_ += n;
    co_return piece;
  }

  Result<std::unique_ptr<SpillReader>> OpenReader() override {
    if (!closed_) return FailedPrecondition("read before close");
    return std::unique_ptr<SpillReader>(new DiskSpillReader(this));
  }

  sim::Task<> Delete() override {
    if (!deleted_) {
      (void)fs_->Delete(file_id_);
      deleted_ = true;
      content_.Clear();
    }
    co_return;
  }

  uint64_t size() const override { return size_; }

 private:
  friend class DiskSpillReader;

  cluster::LocalFs* fs_;
  uint64_t file_id_;
  SpillStats* stats_;
  ByteRuns content_;
  uint64_t size_ = 0;
  uint64_t read_offset_ = 0;
  bool closed_ = false;
  bool deleted_ = false;
};

sim::Task<Result<ByteRuns>> DiskSpillReader::ReadNext() {
  if (offset_ >= file_->size_) co_return ByteRuns{};
  uint64_t n = std::min<uint64_t>(kMiB, file_->size_ - offset_);
  Status read = co_await file_->fs_->Read(file_->file_id_, offset_, n);
  if (!read.ok()) co_return read;
  ByteRuns piece = file_->content_.SubRange(offset_, n);
  offset_ += n;
  co_return piece;
}

// SpongeFile-backed spill file.
// lint: shard(value)
class SpongeSpillFile : public SpillFile {
 public:
  SpongeSpillFile(sponge::SpongeEnv* env, sponge::TaskContext* task,
                  const std::string& name, SpillStats* stats)
      : file_(env, task, name), stats_(stats) {}

  sim::Task<Status> Append(ByteRuns data) override {
    uint64_t n = data.size();
    Status status = co_await file_.Append(std::move(data));
    if (status.ok()) {
      stats_->bytes_spilled += n;
      SpillModeCounter(SpillMode::kSponge)->Increment(n);
    }
    co_return status;
  }

  sim::Task<Status> Close() override {
    Status status = co_await file_.Close();
    if (status.ok() && !counted_) {
      counted_ = true;
      const auto& s = file_.stats();
      stats_->sponge_chunks += s.total_chunks();
      stats_->sponge_chunks_local += s.chunks_local_memory;
      stats_->sponge_chunks_remote += s.chunks_remote_memory;
      stats_->sponge_chunks_ssd += s.chunks_local_ssd;
      stats_->sponge_chunks_disk += s.chunks_local_disk;
      stats_->sponge_chunks_dfs += s.chunks_dfs;
      stats_->sponge_bytes_local += s.bytes_local_memory;
      stats_->sponge_bytes_remote += s.bytes_remote_memory;
      stats_->sponge_bytes_ssd += s.bytes_local_ssd;
      stats_->sponge_bytes_disk += s.bytes_local_disk;
      stats_->sponge_bytes_dfs += s.bytes_dfs;
      stats_->fragmentation_bytes += s.fragmentation_bytes;
      stats_->stale_list_retries += s.stale_list_retries;
    }
    co_return status;
  }

  sim::Task<Result<ByteRuns>> ReadNext() override {
    co_return co_await file_.ReadNext();
  }

  sim::Task<> Delete() override { co_await file_.Delete(); }

  uint64_t size() const override { return file_.size(); }

  const sponge::SpongeFile::Stats* sponge_stats() const override {
    return &file_.stats();
  }

 private:
  sponge::SpongeFile file_;
  SpillStats* stats_;
  bool counted_ = false;
};

}  // namespace

Result<std::unique_ptr<SpillFile>> DiskSpiller::Create(
    const std::string& name) {
  auto file_id =
      fs_->Create(name_prefix_ + "." + name + "." + std::to_string(next_id_++));
  if (!file_id.ok()) return file_id.status();
  ++stats_.files_created;
  return std::unique_ptr<SpillFile>(
      new DiskSpillFile(fs_, *file_id, &stats_));
}

Result<std::unique_ptr<SpillFile>> SpongeSpiller::Create(
    const std::string& name) {
  ++stats_.files_created;
  return std::unique_ptr<SpillFile>(new SpongeSpillFile(
      env_, task_,
      name_prefix_ + "." + name + "." + std::to_string(next_id_++), &stats_));
}

sim::Task<Status> MemorySpillFile::Append(ByteRuns data) {
  if (closed_) co_return FailedPrecondition("append after close");
  uint64_t n = data.size();
  content_.Append(data);
  size_ += n;
  co_await engine_->Delay(TransferTime(n, memory_bandwidth_));
  co_return Status::OK();
}

sim::Task<Status> MemorySpillFile::Close() {
  closed_ = true;
  co_return Status::OK();
}

sim::Task<Result<ByteRuns>> MemorySpillFile::ReadNext() {
  if (!closed_) co_return FailedPrecondition("read before close");
  if (read_offset_ >= size_) co_return ByteRuns{};
  uint64_t n = std::min<uint64_t>(read_unit_, size_ - read_offset_);
  co_await engine_->Delay(TransferTime(n, memory_bandwidth_));
  ByteRuns piece = content_.SubRange(read_offset_, n);
  read_offset_ += n;
  co_return piece;
}

Status MemorySpillFile::Rewind() {
  read_offset_ = 0;
  return Status::OK();
}

// lint: shard(value)
class MemorySpillFile::Reader : public SpillReader {
 public:
  explicit Reader(MemorySpillFile* file) : file_(file) {}

  sim::Task<Result<ByteRuns>> ReadNext() override {
    if (offset_ >= file_->size_) co_return ByteRuns{};
    uint64_t n = std::min<uint64_t>(file_->read_unit_, file_->size_ - offset_);
    co_await file_->engine_->Delay(TransferTime(n, file_->memory_bandwidth_));
    ByteRuns piece = file_->content_.SubRange(offset_, n);
    offset_ += n;
    co_return piece;
  }

 private:
  MemorySpillFile* file_;
  uint64_t offset_ = 0;
};

Result<std::unique_ptr<SpillReader>> MemorySpillFile::OpenReader() {
  if (!closed_) return FailedPrecondition("read before close");
  return std::unique_ptr<SpillReader>(new Reader(this));
}

sim::Task<> MemorySpillFile::Delete() {
  content_.Clear();
  co_return;
}

}  // namespace spongefiles::mapred
