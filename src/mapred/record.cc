#include "mapred/record.h"

#include <cstring>

#include "common/logging.h"

namespace spongefiles::mapred {

namespace {

// Wire format (little endian):
//   u32 header_len   (bytes of header, including this field)
//   u64 total_len    (header_len + filler)
//   u16 key_len, key bytes
//   f64 number
//   u16 nfields, then per field: u32 len, bytes
// followed by (total_len - header_len) zero bytes of filler.

template <typename T>
void PutRaw(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
T GetRaw(const uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

std::string BuildHeader(const Record& record) {
  std::string header;
  header.reserve(32 + record.key.size());
  PutRaw<uint32_t>(&header, 0);  // patched below
  PutRaw<uint64_t>(&header, 0);  // patched below
  SPONGE_CHECK(record.key.size() <= 0xffff) << "key too long";
  PutRaw<uint16_t>(&header, static_cast<uint16_t>(record.key.size()));
  header.append(record.key);
  PutRaw<double>(&header, record.number);
  SPONGE_CHECK(record.fields.size() <= 0xffff) << "too many fields";
  PutRaw<uint16_t>(&header, static_cast<uint16_t>(record.fields.size()));
  for (const std::string& field : record.fields) {
    PutRaw<uint32_t>(&header, static_cast<uint32_t>(field.size()));
    header.append(field);
  }
  uint32_t header_len = static_cast<uint32_t>(header.size());
  uint64_t total_len = std::max<uint64_t>(record.size, header_len);
  std::memcpy(header.data(), &header_len, sizeof(header_len));
  std::memcpy(header.data() + sizeof(header_len), &total_len,
              sizeof(total_len));
  return header;
}

}  // namespace

uint64_t RecordHeaderSize(const Record& record) {
  uint64_t n = 4 + 8 + 2 + record.key.size() + 8 + 2;
  for (const std::string& field : record.fields) n += 4 + field.size();
  return n;
}

uint64_t SerializedSize(const Record& record) {
  return std::max<uint64_t>(record.size, RecordHeaderSize(record));
}

void SerializeRecord(const Record& record, ByteRuns* out) {
  std::string header = BuildHeader(record);
  uint64_t total_len;
  std::memcpy(&total_len, header.data() + 4, sizeof(total_len));
  out->AppendLiteral(Slice(header));
  out->AppendZeros(total_len - header.size());
}

namespace {

// Decodes a header whose bytes start at `p` (12-byte length prefix
// included) into `out`. Returns the decoded header length.
uint64_t ParseHeader(const uint8_t* p, Record* out) {
  const uint8_t* cursor = p + 12;
  uint16_t key_len = GetRaw<uint16_t>(cursor);
  cursor += 2;
  out->key.assign(reinterpret_cast<const char*>(cursor), key_len);
  cursor += key_len;
  out->number = GetRaw<double>(cursor);
  cursor += 8;
  uint16_t nfields = GetRaw<uint16_t>(cursor);
  cursor += 2;
  out->fields.clear();
  out->fields.reserve(nfields);
  for (uint16_t i = 0; i < nfields; ++i) {
    uint32_t len = GetRaw<uint32_t>(cursor);
    cursor += 4;
    out->fields.emplace_back(reinterpret_cast<const char*>(cursor), len);
    cursor += len;
  }
  return static_cast<uint64_t>(cursor - p);
}

}  // namespace

#ifdef SPONGEFILES_LEGACY_DATAPLANE

// Legacy (pre-zero-copy) parser: every fed chunk is flattened into one
// host buffer — filler bytes included — and compacted by memmove.

void RecordParser::Feed(const ByteRuns& chunk) {
  Compact();
  size_t old = buffer_.size();
  buffer_.resize(old + chunk.size());
  if (chunk.size() > 0) chunk.Read(0, chunk.size(), buffer_.data() + old);
}

void RecordParser::Compact() {
  if (consumed_ == 0) return;
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<long>(consumed_));
  consumed_ = 0;
}

bool RecordParser::Next(Record* out) {
  const size_t available = buffer_.size() - consumed_;
  if (available < 12) return false;
  const uint8_t* p = buffer_.data() + consumed_;
  uint32_t header_len = GetRaw<uint32_t>(p);
  uint64_t total_len = GetRaw<uint64_t>(p + 4);
  SPONGE_CHECK(header_len >= 24 && total_len >= header_len)
      << "corrupt record header";
  if (available < total_len) return false;
  SPONGE_CHECK(ParseHeader(p, out) == header_len)
      << "header length mismatch";
  out->size = total_len;
  consumed_ += total_len;
  return true;
}

#else  // !SPONGEFILES_LEGACY_DATAPLANE

void RecordParser::Feed(const ByteRuns& chunk) {
  // Drop what Next() consumed, share the new chunk's runs, and rebuild the
  // cursor (mutation invalidates it). No payload byte is copied.
  pending_.TrimPrefix(cursor_.position());
  pending_.Append(chunk);
  cursor_ = ByteRuns::Cursor(&pending_);
}

bool RecordParser::Next(Record* out) {
  if (cursor_.available() < 12) return false;
  uint8_t lens[12];
  cursor_.Peek(12, lens);
  uint32_t header_len = GetRaw<uint32_t>(lens);
  uint64_t total_len = GetRaw<uint64_t>(lens + 4);
  SPONGE_CHECK(header_len >= 24 && total_len >= header_len)
      << "corrupt record header";
  if (cursor_.available() < total_len) return false;
  // Only the header's bytes are materialized; Skip() walks over the filler
  // without touching it.
  scratch_.resize(header_len);
  cursor_.Peek(header_len, scratch_.data());
  SPONGE_CHECK(ParseHeader(scratch_.data(), out) == header_len)
      << "header length mismatch";
  out->size = total_len;
  cursor_.Skip(total_len);
  return true;
}

#endif  // SPONGEFILES_LEGACY_DATAPLANE

}  // namespace spongefiles::mapred
