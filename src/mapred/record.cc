#include "mapred/record.h"

#include <cstring>

#include "common/logging.h"

namespace spongefiles::mapred {

namespace {

// Wire format (little endian):
//   u32 header_len   (bytes of header, including this field)
//   u64 total_len    (header_len + filler)
//   u16 key_len, key bytes
//   f64 number
//   u16 nfields, then per field: u32 len, bytes
// followed by (total_len - header_len) zero bytes of filler.

template <typename T>
uint8_t* PutRaw(uint8_t* out, T value) {
  std::memcpy(out, &value, sizeof(T));
  return out + sizeof(T);
}

template <typename T>
T GetRaw(const uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

// Encodes `record`'s header (exactly RecordHeaderSize(record) bytes,
// already validated to fit) into `out`. Returns one past the last byte.
uint8_t* EncodeHeader(const Record& record, uint64_t header_len,
                      uint8_t* out) {
  uint64_t total_len = std::max<uint64_t>(record.size, header_len);
  out = PutRaw<uint32_t>(out, static_cast<uint32_t>(header_len));
  out = PutRaw<uint64_t>(out, total_len);
  out = PutRaw<uint16_t>(out, static_cast<uint16_t>(record.key.size()));
  std::memcpy(out, record.key.data(), record.key.size());
  out += record.key.size();
  out = PutRaw<double>(out, record.number);
  out = PutRaw<uint16_t>(out, static_cast<uint16_t>(record.fields.size()));
  for (const std::string& field : record.fields) {
    out = PutRaw<uint32_t>(out, static_cast<uint32_t>(field.size()));
    std::memcpy(out, field.data(), field.size());
    out += field.size();
  }
  return out;
}

}  // namespace

uint64_t RecordHeaderSize(const Record& record) {
  uint64_t n = 4 + 8 + 2 + record.key.size() + 8 + 2;
  for (const std::string& field : record.fields) n += 4 + field.size();
  return n;
}

uint64_t SerializedSize(const Record& record) {
  return std::max<uint64_t>(record.size, RecordHeaderSize(record));
}

void SerializeRecord(const Record& record, ByteRuns* out) {
  SPONGE_CHECK(record.key.size() <= 0xffff) << "key too long";
  SPONGE_CHECK(record.fields.size() <= 0xffff) << "too many fields";
  const uint64_t header_len = RecordHeaderSize(record);
  // Encode on the stack — this is the hottest serialization line in the
  // spill path (one call per record), and the header is a few dozen bytes
  // for every workload we generate. Oversized keys/fields fall back to a
  // heap scratch buffer.
  uint8_t stack_buf[320];
  std::vector<uint8_t> heap_buf;
  uint8_t* buf = stack_buf;
  if (header_len > sizeof(stack_buf)) {
    heap_buf.resize(header_len);
    buf = heap_buf.data();
  }
  uint8_t* end = EncodeHeader(record, header_len, buf);
  SPONGE_CHECK(static_cast<uint64_t>(end - buf) == header_len)
      << "header length mismatch";
  out->AppendLiteral(Slice(buf, header_len));
  out->AppendZeros(std::max<uint64_t>(record.size, header_len) - header_len);
}

namespace {

// Decodes a header whose bytes start at `p` (12-byte length prefix
// included) into `out`. Returns the decoded header length.
uint64_t ParseHeader(const uint8_t* p, Record* out) {
  const uint8_t* cursor = p + 12;
  uint16_t key_len = GetRaw<uint16_t>(cursor);
  cursor += 2;
  out->key.assign(reinterpret_cast<const char*>(cursor), key_len);
  cursor += key_len;
  out->number = GetRaw<double>(cursor);
  cursor += 8;
  uint16_t nfields = GetRaw<uint16_t>(cursor);
  cursor += 2;
  out->fields.clear();
  out->fields.reserve(nfields);
  for (uint16_t i = 0; i < nfields; ++i) {
    uint32_t len = GetRaw<uint32_t>(cursor);
    cursor += 4;
    out->fields.emplace_back(reinterpret_cast<const char*>(cursor), len);
    cursor += len;
  }
  return static_cast<uint64_t>(cursor - p);
}

}  // namespace

void RecordParser::Feed(const ByteRuns& chunk) {
  // Drop what Next() consumed, share the new chunk's runs, and rebuild the
  // cursor (mutation invalidates it). No payload byte is copied.
  pending_.TrimPrefix(cursor_.position());
  pending_.Append(chunk);
  cursor_ = ByteRuns::Cursor(&pending_);
}

bool RecordParser::Next(Record* out) {
  if (cursor_.available() < 12) return false;
  uint8_t lens[12];
  cursor_.Peek(12, lens);
  uint32_t header_len = GetRaw<uint32_t>(lens);
  uint64_t total_len = GetRaw<uint64_t>(lens + 4);
  SPONGE_CHECK(header_len >= 24 && total_len >= header_len)
      << "corrupt record header";
  if (cursor_.available() < total_len) return false;
  // Only the header's bytes are materialized; Skip() walks over the filler
  // without touching it.
  scratch_.resize(header_len);
  cursor_.Peek(header_len, scratch_.data());
  SPONGE_CHECK(ParseHeader(scratch_.data(), out) == header_len)
      << "header length mismatch";
  out->size = total_len;
  cursor_.Skip(total_len);
  return true;
}

}  // namespace spongefiles::mapred
