#include "mapred/job_tracker.h"

#include <algorithm>

#include "mapred/reduce_task.h"

namespace spongefiles::mapred {

JobTracker::JobTracker(sponge::SpongeEnv* env, cluster::Dfs* dfs)
    : env_(env), dfs_(dfs) {
  for (size_t i = 0; i < env->cluster()->size(); ++i) {
    const auto& node_config = env->cluster()->node(i).config();
    free_map_slots_.push_back(node_config.map_slots);
    pending_local_.emplace_back();
    reduce_slots_.push_back(std::make_unique<sim::Semaphore>(
        env->engine(), node_config.reduce_slots));
  }
}

void JobTracker::AssignMap(PendingMap* task, size_t node) {
  task->done = true;
  task->node = node;
  --free_map_slots_[node];
  task->assigned->Set();
}

void JobTracker::ReleaseMapSlot(size_t node) {
  ++free_map_slots_[node];
  // Oldest data-local waiter first.
  while (!pending_local_[node].empty()) {
    std::shared_ptr<PendingMap> task = pending_local_[node].front();
    pending_local_[node].pop_front();
    if (task->done) continue;  // assigned elsewhere already
    AssignMap(task.get(), node);
    return;
  }
  // Then anyone whose locality wait already expired.
  while (!relaxed_.empty()) {
    std::shared_ptr<PendingMap> task = relaxed_.front();
    relaxed_.pop_front();
    if (task->done) continue;
    AssignMap(task.get(), node);
    return;
  }
}

sim::Task<> JobTracker::DeadlineWake(std::shared_ptr<PendingMap> task) {
  if (task->done) co_return;
  // Past the locality wait: take any free slot now, or join the relaxed
  // queue so the next freed slot anywhere picks this task up.
  for (size_t node = 0; node < free_map_slots_.size(); ++node) {
    if (free_map_slots_[node] > 0) {
      AssignMap(task.get(), node);
      co_return;
    }
  }
  relaxed_.push_back(std::move(task));
}

sim::Task<> JobTracker::AcquireMapSlot(std::shared_ptr<PendingMap> task,
                                       Duration locality_wait) {
  if (free_map_slots_[task->preferred] > 0) {
    AssignMap(task.get(), task->preferred);
    co_return;
  }
  pending_local_[task->preferred].push_back(task);
  if (locality_wait > 0) {
    auto wake = [](JobTracker* tracker,
                   std::shared_ptr<PendingMap> waiter) -> sim::Task<> {
      co_await tracker->DeadlineWake(std::move(waiter));
    };
    env_->engine()->SpawnAt(env_->engine()->now() + locality_wait,
                            wake(this, task));
  }
  co_await task->assigned->Wait();
}

bool JobTracker::TryReserveBackupSlot(TaskKind kind, size_t node) {
  if (kind == TaskKind::kMap) {
    if (free_map_slots_[node] <= 0) return false;
    --free_map_slots_[node];
    return true;
  }
  return reduce_slots_[node]->TryAcquire();
}

size_t JobTracker::MapNodeFor(const InputSplit& split) const {
  auto location = dfs_->BlockLocation(split.dfs_file, split.offset);
  if (location.ok()) return *location;
  // Non-DFS input: spread round-robin.
  return const_cast<JobTracker*>(this)->next_map_node_++ %
         env_->cluster()->size();
}

size_t JobTracker::ReduceNodeFor(const JobConfig& config,
                                 size_t partition) const {
  for (const auto& [pinned_partition, node] : config.reduce_pins) {
    if (pinned_partition == partition) return node;
  }
  return partition % env_->cluster()->size();
}

sim::Task<> JobTracker::RunOneMap(const JobConfig* config, MapTaskState* state,
                                  sim::Channel<TaskOutcome>* outcomes,
                                  sim::WaitGroup* wg) {
  size_t preferred = MapNodeFor(*state->split);
  if (config->cancel && *config->cancel) {
    state->stats.completed = false;
    outcomes->Push({state->index, Status::OK()});
    wg->Done();
    co_return;
  }
  // Delay scheduling: hold out for a data-local slot for up to
  // locality_wait, then take any free slot (the split is then fetched
  // over the network, which the DFS read path charges automatically).
  auto pending = std::make_shared<PendingMap>();
  pending->preferred = preferred;
  pending->assigned = std::make_unique<sim::Event>(env_->engine());
  co_await AcquireMapSlot(pending, config->locality_wait);
  size_t node = pending->node;
  state->stats.node = node;
  state->stats.data_local = node == preferred;
  Status last;
  while (true) {
    if (state->attempts.committed()) break;  // a backup won while we waited
    if (config->cancel && *config->cancel) {
      state->stats.completed = false;
      break;
    }
    TaskAttempt* attempt = state->attempts.Launch(
        env_, config->name, TaskKind::kMap, state->index, node,
        /*backup=*/false);
    MapTask map_task(env_, dfs_, config, state->split, attempt);
    Result<MapAttemptResult> outcome = co_await map_task.Run();
    state->attempts.Finish(env_, attempt);
    if (outcome.ok()) {
      MapAttemptResult produced = std::move(*outcome);
      if (state->attempts.TryCommit(attempt)) {
        produced.stats.attempts = state->attempts.launched();
        produced.stats.data_local = node == preferred;
        state->output = std::move(produced.output);
        state->stats = std::move(produced.stats);
      }
      // A race loser's output is simply dropped; its spill files delete
      // on destruction, and its registry id is already gone.
      last = Status::OK();
      break;
    }
    last = outcome.status();
    if (last.code() == StatusCode::kAborted) {
      if (config->cancel && *config->cancel) {
        state->stats.completed = false;
        last = Status::OK();
        break;
      }
      if (attempt->killed()) {
        // Killed mid-run: either a backup committed (the task is done) or
        // the job is tearing down; either way the chain stops here.
        if (state->attempts.committed()) last = Status::OK();
        break;
      }
    }
    if (state->attempts.primary_attempts() >= config->max_attempts) break;
    // Falling through to another Launch: this is a real re-run, count it
    // with the failure that caused it.
    CountTaskRerun(last);
  }
  if (!last.ok()) state->attempts.KillAll();
  ReleaseMapSlot(node);
  outcomes->Push({state->index, last});
  wg->Done();
}

sim::Task<> JobTracker::RunMapBackup(const JobConfig* config,
                                     MapTaskState* state, size_t node,
                                     sim::WaitGroup* wg) {
  // The monitor reserved our slot on `node` before spawning us.
  if (!state->attempts.committed() &&
      !(config->cancel && *config->cancel)) {
    TaskAttempt* attempt = state->attempts.Launch(
        env_, config->name, TaskKind::kMap, state->index, node,
        /*backup=*/true);
    MapTask map_task(env_, dfs_, config, state->split, attempt);
    Result<MapAttemptResult> outcome = co_await map_task.Run();
    state->attempts.Finish(env_, attempt);
    if (outcome.ok()) {
      MapAttemptResult produced = std::move(*outcome);
      if (state->attempts.TryCommit(attempt)) {
        produced.stats.attempts = state->attempts.launched();
        produced.stats.data_local = node == MapNodeFor(*state->split);
        produced.stats.speculative = true;
        state->output = std::move(produced.output);
        state->stats = std::move(produced.stats);
      }
    }
    // A backup never reports an outcome: failures and lost races are
    // silent, the primary chain owns the task's status.
  }
  ReleaseMapSlot(node);
  wg->Done();
}

sim::Task<> JobTracker::RunOneReduce(const JobConfig* config,
                                     std::vector<MapOutput>* outputs,
                                     ReduceTaskState* state,
                                     sim::Channel<TaskOutcome>* outcomes,
                                     sim::WaitGroup* wg) {
  size_t node = ReduceNodeFor(*config, state->partition);
  state->stats.node = node;
  if (config->cancel && *config->cancel) {
    state->stats.completed = false;
    outcomes->Push({static_cast<int>(state->partition), Status::OK()});
    wg->Done();
    co_return;
  }
  co_await reduce_slots_[node]->Acquire();
  Status last;
  while (true) {
    if (state->attempts.committed()) break;
    if (config->cancel && *config->cancel) {
      state->stats.completed = false;
      break;
    }
    TaskAttempt* attempt = state->attempts.Launch(
        env_, config->name, TaskKind::kReduce,
        static_cast<int>(state->partition), node, /*backup=*/false);
    ReduceTask reduce_task(env_, config, outputs, state->partition, attempt);
    Result<ReduceAttemptResult> outcome = co_await reduce_task.Run();
    state->attempts.Finish(env_, attempt);
    if (outcome.ok()) {
      ReduceAttemptResult produced = std::move(*outcome);
      if (state->attempts.TryCommit(attempt)) {
        produced.stats.attempts = state->attempts.launched();
        state->output = std::move(produced.output);
        state->stats = std::move(produced.stats);
      }
      last = Status::OK();
      break;
    }
    last = outcome.status();
    if (last.code() == StatusCode::kAborted) {
      if (config->cancel && *config->cancel) {
        state->stats.completed = false;
        last = Status::OK();
        break;
      }
      if (attempt->killed()) {
        if (state->attempts.committed()) last = Status::OK();
        break;
      }
    }
    if (state->attempts.primary_attempts() >= config->max_attempts) break;
    CountTaskRerun(last);
  }
  if (!last.ok()) state->attempts.KillAll();
  reduce_slots_[node]->Release();
  outcomes->Push({static_cast<int>(state->partition), last});
  wg->Done();
}

sim::Task<> JobTracker::RunReduceBackup(const JobConfig* config,
                                        std::vector<MapOutput>* outputs,
                                        ReduceTaskState* state, size_t node,
                                        sim::WaitGroup* wg) {
  if (!state->attempts.committed() &&
      !(config->cancel && *config->cancel)) {
    TaskAttempt* attempt = state->attempts.Launch(
        env_, config->name, TaskKind::kReduce,
        static_cast<int>(state->partition), node, /*backup=*/true);
    ReduceTask reduce_task(env_, config, outputs, state->partition, attempt);
    Result<ReduceAttemptResult> outcome = co_await reduce_task.Run();
    state->attempts.Finish(env_, attempt);
    if (outcome.ok()) {
      ReduceAttemptResult produced = std::move(*outcome);
      if (state->attempts.TryCommit(attempt)) {
        produced.stats.attempts = state->attempts.launched();
        produced.stats.speculative = true;
        state->output = std::move(produced.output);
        state->stats = std::move(produced.stats);
      }
    }
  }
  reduce_slots_[node]->Release();
  wg->Done();
}

sim::Task<> JobTracker::SpeculationLoop(const JobConfig* config, TaskKind kind,
                                        std::deque<MapTaskState>* maps,
                                        std::deque<ReduceTaskState>* reduces,
                                        std::vector<MapOutput>* outputs,
                                        const bool* wave_done,
                                        sim::WaitGroup* wg) {
  const SpeculationConfig& spec = config->speculation;
  sim::Engine* engine = env_->engine();
  size_t count = kind == TaskKind::kMap ? maps->size() : reduces->size();
  auto set_of = [&](size_t i) -> AttemptSet& {
    return kind == TaskKind::kMap ? (*maps)[i].attempts
                                  : (*reduces)[i].attempts;
  };
  while (!*wave_done) {
    co_await engine->Delay(spec.check_period);
    if (*wave_done) break;
    if (config->cancel && *config->cancel) break;
    // Median best-progress across the wave's logical tasks; committed
    // tasks keep anchoring it with their final progress. With all tasks
    // near zero (wave just started) there is nothing to compare yet.
    std::vector<uint64_t> progress;
    progress.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      progress.push_back(set_of(i).BestProgress());
    }
    std::sort(progress.begin(), progress.end());
    uint64_t median = progress[count / 2];
    if (median == 0) continue;
    for (size_t i = 0; i < count; ++i) {
      AttemptSet& set = set_of(i);
      if (set.committed()) continue;
      if (set.backups() >= spec.max_backups_per_task) continue;
      TaskAttempt* primary = set.RunningPrimary();
      if (primary == nullptr) continue;  // between retries / awaiting slot
      if (engine->now() - primary->started_at < spec.min_attempt_age) {
        continue;
      }
      if (static_cast<double>(set.BestProgress()) * spec.lag_factor >=
          static_cast<double>(median)) {
        continue;
      }
      // Straggler: place the backup on a free slot on a node no live
      // attempt of this task occupies (lowest index first, deterministic).
      size_t chosen = free_map_slots_.size();
      for (size_t node = 0; node < free_map_slots_.size(); ++node) {
        bool occupied = false;
        for (const auto& attempt : set.attempts()) {
          if (!attempt->finished && attempt->id.node == node) {
            occupied = true;
            break;
          }
        }
        if (occupied) continue;
        if (TryReserveBackupSlot(kind, node)) {
          chosen = node;
          break;
        }
      }
      if (chosen == free_map_slots_.size()) continue;  // no slot this round
      wg->Add(1);
      if (kind == TaskKind::kMap) {
        engine->Spawn(RunMapBackup(config, &(*maps)[i], chosen, wg));
      } else {
        engine->Spawn(
            RunReduceBackup(config, outputs, &(*reduces)[i], chosen, wg));
      }
    }
  }
  wg->Done();
}

sim::Task<Result<JobResult>> JobTracker::Run(JobConfig config) {
  sim::Engine* engine = env_->engine();
  SimTime start = engine->now();
  JobResult result;
  Status job_status;

  if (config.input == nullptr) co_return InvalidArgument("job needs input");
  std::vector<InputSplit> splits = config.input->Splits();

  sim::Channel<TaskOutcome> outcomes(engine);
  std::deque<MapTaskState> map_states;
  for (size_t i = 0; i < splits.size(); ++i) {
    map_states.emplace_back();
    map_states.back().split = &splits[i];
    map_states.back().index = static_cast<int>(i);
  }

  // One WaitGroup per wave (the underlying event is one-shot): it counts
  // every attempt driver plus the monitor, so by the time it clears, no
  // coroutine still references this frame's wave state.
  bool map_wave_done = false;
  sim::WaitGroup map_workers(engine);
  map_workers.Add(static_cast<int64_t>(map_states.size()));
  for (MapTaskState& state : map_states) {
    engine->Spawn(RunOneMap(&config, &state, &outcomes, &map_workers));
  }
  if (config.speculation.enabled && map_states.size() >= 2) {
    map_workers.Add(1);
    engine->Spawn(SpeculationLoop(&config, TaskKind::kMap, &map_states,
                                  nullptr, nullptr, &map_wave_done,
                                  &map_workers));
  }
  // Each primary driver reports exactly one outcome; a cancelled backup
  // never reports, so it cannot clobber the job status.
  for (size_t i = 0; i < map_states.size(); ++i) {
    std::optional<TaskOutcome> outcome = co_await outcomes.Pop();
    if (outcome.has_value() && !outcome->status.ok() && job_status.ok()) {
      job_status = outcome->status;
    }
  }
  map_wave_done = true;
  co_await map_workers.Wait();
  if (!job_status.ok()) co_return job_status;

  result.map_tasks.reserve(map_states.size());
  std::vector<MapOutput> map_outputs;
  map_outputs.reserve(map_states.size());
  for (MapTaskState& state : map_states) {
    result.map_tasks.push_back(state.stats);
    map_outputs.push_back(std::move(state.output));
  }

  if (config.reducer_factory) {
    std::deque<ReduceTaskState> reduce_states;
    for (int p = 0; p < config.num_reducers; ++p) {
      reduce_states.emplace_back();
      reduce_states.back().partition = static_cast<size_t>(p);
    }
    bool reduce_wave_done = false;
    sim::WaitGroup reduce_workers(engine);
    reduce_workers.Add(config.num_reducers);
    for (ReduceTaskState& state : reduce_states) {
      engine->Spawn(RunOneReduce(&config, &map_outputs, &state, &outcomes,
                                 &reduce_workers));
    }
    if (config.speculation.enabled && reduce_states.size() >= 2) {
      reduce_workers.Add(1);
      engine->Spawn(SpeculationLoop(&config, TaskKind::kReduce, nullptr,
                                    &reduce_states, &map_outputs,
                                    &reduce_wave_done, &reduce_workers));
    }
    for (int p = 0; p < config.num_reducers; ++p) {
      std::optional<TaskOutcome> outcome = co_await outcomes.Pop();
      if (outcome.has_value() && !outcome->status.ok() && job_status.ok()) {
        job_status = outcome->status;
      }
    }
    reduce_wave_done = true;
    // Drained before map outputs are deleted below: a losing attempt may
    // still be mid-shuffle on its independent cursor.
    co_await reduce_workers.Wait();
    if (!job_status.ok()) co_return job_status;

    result.reduce_tasks.reserve(reduce_states.size());
    for (ReduceTaskState& state : reduce_states) {
      result.reduce_tasks.push_back(state.stats);
      // Job output is assembled in partition order (not completion
      // order), so reruns — and races under speculation — are
      // byte-identical.
      result.output.insert(result.output.end(),
                           std::make_move_iterator(state.output.begin()),
                           std::make_move_iterator(state.output.end()));
    }
  }

  // Job finished: the framework cleans up the map outputs (and with them
  // any on-disk spill directories, per section 3.1.3).
  for (MapOutput& output : map_outputs) {
    for (auto& partition : output.partitions) {
      if (partition != nullptr) co_await partition->Delete();
    }
  }

  result.runtime = engine->now() - start;
  co_return result;
}

}  // namespace spongefiles::mapred
