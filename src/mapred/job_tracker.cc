#include "mapred/job_tracker.h"

#include "mapred/reduce_task.h"

namespace spongefiles::mapred {

JobTracker::JobTracker(sponge::SpongeEnv* env, cluster::Dfs* dfs)
    : env_(env), dfs_(dfs) {
  for (size_t i = 0; i < env->cluster()->size(); ++i) {
    const auto& node_config = env->cluster()->node(i).config();
    free_map_slots_.push_back(node_config.map_slots);
    pending_local_.emplace_back();
    reduce_slots_.push_back(std::make_unique<sim::Semaphore>(
        env->engine(), node_config.reduce_slots));
  }
}

void JobTracker::AssignMap(PendingMap* task, size_t node) {
  task->done = true;
  task->node = node;
  --free_map_slots_[node];
  task->assigned->Set();
}

void JobTracker::ReleaseMapSlot(size_t node) {
  ++free_map_slots_[node];
  // Oldest data-local waiter first.
  while (!pending_local_[node].empty()) {
    std::shared_ptr<PendingMap> task = pending_local_[node].front();
    pending_local_[node].pop_front();
    if (task->done) continue;  // assigned elsewhere already
    AssignMap(task.get(), node);
    return;
  }
  // Then anyone whose locality wait already expired.
  while (!relaxed_.empty()) {
    std::shared_ptr<PendingMap> task = relaxed_.front();
    relaxed_.pop_front();
    if (task->done) continue;
    AssignMap(task.get(), node);
    return;
  }
}

sim::Task<> JobTracker::DeadlineWake(std::shared_ptr<PendingMap> task) {
  if (task->done) co_return;
  // Past the locality wait: take any free slot now, or join the relaxed
  // queue so the next freed slot anywhere picks this task up.
  for (size_t node = 0; node < free_map_slots_.size(); ++node) {
    if (free_map_slots_[node] > 0) {
      AssignMap(task.get(), node);
      co_return;
    }
  }
  relaxed_.push_back(std::move(task));
}

sim::Task<> JobTracker::AcquireMapSlot(std::shared_ptr<PendingMap> task,
                                       Duration locality_wait) {
  if (free_map_slots_[task->preferred] > 0) {
    AssignMap(task.get(), task->preferred);
    co_return;
  }
  pending_local_[task->preferred].push_back(task);
  if (locality_wait > 0) {
    auto wake = [](JobTracker* tracker,
                   std::shared_ptr<PendingMap> waiter) -> sim::Task<> {
      co_await tracker->DeadlineWake(std::move(waiter));
    };
    env_->engine()->SpawnAt(env_->engine()->now() + locality_wait,
                            wake(this, task));
  }
  co_await task->assigned->Wait();
}

void JobTracker::PinReduce(size_t partition, size_t node) {
  reduce_pins_.push_back({partition, node});
}

size_t JobTracker::MapNodeFor(const InputSplit& split) const {
  auto location = dfs_->BlockLocation(split.dfs_file, split.offset);
  if (location.ok()) return *location;
  // Non-DFS input: spread round-robin.
  return const_cast<JobTracker*>(this)->next_map_node_++ %
         env_->cluster()->size();
}

size_t JobTracker::ReduceNodeFor(size_t partition) const {
  for (const auto& [pinned_partition, node] : reduce_pins_) {
    if (pinned_partition == partition) return node;
  }
  return partition % env_->cluster()->size();
}

sim::Task<> JobTracker::RunOneMap(const JobConfig* config,
                                  const InputSplit* split, int index,
                                  MapOutput* output, TaskStats* stats,
                                  Status* job_status, sim::WaitGroup* wg) {
  size_t preferred = MapNodeFor(*split);
  if (config->cancel && *config->cancel) {
    stats->completed = false;
    wg->Done();
    co_return;
  }
  // Delay scheduling: hold out for a data-local slot for up to
  // locality_wait, then take any free slot (the split is then fetched
  // over the network, which the DFS read path charges automatically).
  auto pending = std::make_shared<PendingMap>();
  pending->preferred = preferred;
  pending->assigned = std::make_unique<sim::Event>(env_->engine());
  co_await AcquireMapSlot(pending, config->locality_wait);
  size_t node = pending->node;
  stats->node = node;
  stats->data_local = node == preferred;
  Status last;
  for (int attempt = 1; attempt <= config->max_attempts; ++attempt) {
    if (config->cancel && *config->cancel) {
      stats->completed = false;
      break;
    }
    MapTask map_task(env_, dfs_, config, split, node, index);
    MapOutput attempt_output;
    TaskStats attempt_stats;
    attempt_stats.attempts = attempt;
    last = co_await map_task.Run(&attempt_output, &attempt_stats);
    if (last.ok()) {
      *output = std::move(attempt_output);
      *stats = std::move(attempt_stats);
      break;
    }
    if (last.code() == StatusCode::kAborted && config->cancel &&
        *config->cancel) {
      stats->completed = false;
      last = Status::OK();
      break;
    }
  }
  if (!last.ok() && job_status->ok()) *job_status = last;
  ReleaseMapSlot(node);
  wg->Done();
}

sim::Task<> JobTracker::RunOneReduce(const JobConfig* config,
                                     std::vector<MapOutput>* outputs,
                                     size_t partition,
                                     std::vector<Record>* job_output,
                                     TaskStats* stats, Status* job_status,
                                     sim::WaitGroup* wg) {
  size_t node = ReduceNodeFor(partition);
  stats->node = node;
  if (config->cancel && *config->cancel) {
    stats->completed = false;
    wg->Done();
    co_return;
  }
  co_await reduce_slots_[node]->Acquire();
  Status last;
  for (int attempt = 1; attempt <= config->max_attempts; ++attempt) {
    if (config->cancel && *config->cancel) {
      stats->completed = false;
      break;
    }
    if (attempt > 1) {
      // Re-shuffle: rewind the surviving map-side copies.
      for (MapOutput& output : *outputs) {
        if (output.partitions.size() > partition &&
            output.partitions[partition] != nullptr) {
          (void)output.partitions[partition]->Rewind();
        }
      }
    }
    ReduceTask reduce_task(env_, config, outputs, partition, node);
    TaskStats attempt_stats;
    attempt_stats.attempts = attempt;
    std::vector<Record> attempt_output;
    last = co_await reduce_task.Run(&attempt_output, &attempt_stats);
    if (last.ok()) {
      *stats = std::move(attempt_stats);
      job_output->insert(job_output->end(),
                         std::make_move_iterator(attempt_output.begin()),
                         std::make_move_iterator(attempt_output.end()));
      break;
    }
    if (last.code() == StatusCode::kAborted && config->cancel &&
        *config->cancel) {
      stats->completed = false;
      last = Status::OK();
      break;
    }
  }
  if (!last.ok() && job_status->ok()) *job_status = last;
  reduce_slots_[node]->Release();
  wg->Done();
}

sim::Task<Result<JobResult>> JobTracker::Run(JobConfig config) {
  sim::Engine* engine = env_->engine();
  SimTime start = engine->now();
  JobResult result;
  Status job_status;

  if (config.input == nullptr) co_return InvalidArgument("job needs input");
  std::vector<InputSplit> splits = config.input->Splits();
  std::vector<MapOutput> map_outputs(splits.size());
  result.map_tasks.resize(splits.size());

  sim::WaitGroup map_wg(engine);
  map_wg.Add(static_cast<int64_t>(splits.size()));
  for (size_t i = 0; i < splits.size(); ++i) {
    engine->Spawn(RunOneMap(&config, &splits[i], static_cast<int>(i),
                            &map_outputs[i], &result.map_tasks[i],
                            &job_status, &map_wg));
  }
  co_await map_wg.Wait();
  if (!job_status.ok()) co_return job_status;

  if (config.reducer_factory) {
    result.reduce_tasks.resize(static_cast<size_t>(config.num_reducers));
    sim::WaitGroup reduce_wg(engine);
    reduce_wg.Add(config.num_reducers);
    for (int p = 0; p < config.num_reducers; ++p) {
      engine->Spawn(RunOneReduce(&config, &map_outputs,
                                 static_cast<size_t>(p), &result.output,
                                 &result.reduce_tasks[static_cast<size_t>(p)],
                                 &job_status, &reduce_wg));
    }
    co_await reduce_wg.Wait();
    if (!job_status.ok()) co_return job_status;
  }

  // Job finished: the framework cleans up the map outputs (and with them
  // any on-disk spill directories, per section 3.1.3).
  for (MapOutput& output : map_outputs) {
    for (auto& partition : output.partitions) {
      if (partition != nullptr) co_await partition->Delete();
    }
  }

  result.runtime = engine->now() - start;
  co_return result;
}

}  // namespace spongefiles::mapred
