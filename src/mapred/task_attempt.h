#ifndef SPONGEFILES_MAPRED_TASK_ATTEMPT_H_
#define SPONGEFILES_MAPRED_TASK_ATTEMPT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "sponge/sponge_env.h"

namespace spongefiles::mapred {

// Classifies why a failed attempt is being re-run: "timeout" (RPC deadline
// chains), "checksum" (corrupted data detected on read), "chunk-lost"
// (other unavailable sponge data — crashed server, open breaker),
// "aborted", "resource-exhausted", or "other".
const char* TaskRerunReason(const Status& status);

// Bumps mapred.task.rerun.reason{reason=...}. Called by the JobTracker
// right before launching a sequential retry — backups and final failures
// are not re-runs and stay uncounted, so the counter total equals
// launched-minus-first attempts of the primary chains.
void CountTaskRerun(const Status& status);

enum class TaskKind { kMap, kReduce };

// Names one attempt of one logical task, Hadoop-style: a logical task may
// run several times (sequential retries after failures, plus at most a few
// concurrent speculative backups), and everything an attempt touches —
// sponge chunks, spill files, trace spans — is keyed by the attempt, not
// the logical task. `attempt_id` is the TaskRegistry id this attempt
// registered under; it becomes the ChunkOwner of every sponge chunk the
// attempt spills, so a losing attempt's chunks are reclaimed by the
// ordinary dead-task GC the moment the attempt deregisters.
// lint: shard(value)
struct TaskAttemptId {
  std::string job;
  TaskKind kind = TaskKind::kMap;
  int task_index = 0;
  int attempt = 1;  // 1-based; > 1 for retries and backups
  size_t node = 0;
  uint64_t attempt_id = 0;  // TaskRegistry id == ChunkOwner.task_id

  // "job.m3.a2" — stable, collision-free label for spill-file prefixes
  // and trace spans.
  std::string ToString() const;
};

// One in-flight (or finished) attempt. The embedded sponge::TaskContext is
// the attempt-scoped identity handed to spillers and SpongeFiles; killing
// the attempt flips ctx.killed, which the task observes at its next
// operation boundary. Progress counters are written by the running task
// and read by the JobTracker's speculation monitor; both sides live on the
// same deterministic engine, so plain fields suffice.
// lint: shard(global: progress is written by the task coroutine and read by the tracker monitor; becomes a heartbeat message under the parallel engine)
struct TaskAttempt {
  TaskAttemptId id;
  sponge::TaskContext ctx;
  bool backup = false;     // launched by the speculation monitor
  bool finished = false;   // driver observed the attempt's result
  SimTime started_at = 0;

  // Progress estimator inputs: bytes scanned/shuffled plus records pushed
  // through the map function or reducer. Comparable across attempts of
  // the same wave because every attempt does the same accounting.
  uint64_t records_processed = 0;
  uint64_t bytes_processed = 0;

  uint64_t progress() const { return bytes_processed + records_processed; }
  bool killed() const { return ctx.killed; }
  void Kill() { ctx.killed = true; }
  void Note(uint64_t records, uint64_t bytes) {
    records_processed += records;
    bytes_processed += bytes;
  }
};

// Shared bookkeeping for every attempt of one logical task: the attempts
// launched so far and the first-commit-wins barrier. Owned by the
// JobTracker's per-task state; attempts have stable addresses for the
// lifetime of the set.
// lint: shard(global: first-commit-wins barrier shared by the tracker and all attempts of one task; commit is one engine event today, a tracker message tomorrow)
class AttemptSet {
 public:
  AttemptSet() = default;
  AttemptSet(const AttemptSet&) = delete;
  AttemptSet& operator=(const AttemptSet&) = delete;

  // Starts attempt number launched()+1 on `node`: registers an attempt id
  // with the environment's task registry (making the attempt "alive" for
  // chunk-GC purposes) and returns the attempt. The caller must balance
  // with Finish() when the attempt's driver observes its result.
  TaskAttempt* Launch(sponge::SpongeEnv* env, const std::string& job,
                      TaskKind kind, int task_index, size_t node,
                      bool backup);

  // Deregisters the attempt from the task registry (its sponge chunks
  // become dead-task garbage unless it committed) and marks it finished.
  void Finish(sponge::SpongeEnv* env, TaskAttempt* attempt);

  // First-commit-wins barrier: true iff `attempt` is the first to commit.
  // The winner's live competitors are killed (they abort at their next
  // checkpoint) and counted in mapred.speculation.cancelled when the race
  // involved a backup.
  bool TryCommit(TaskAttempt* attempt);

  // Kills every unfinished attempt (job cancellation / permanent failure).
  void KillAll();

  bool committed() const { return winner_ != nullptr; }
  const TaskAttempt* winner() const { return winner_; }
  int launched() const { return static_cast<int>(attempts_.size()); }
  int backups() const { return backups_; }
  // The primary driver's sequential-retry budget excludes backups.
  int primary_attempts() const { return launched() - backups_; }

  // The unfinished non-backup attempt currently running, if any (what the
  // monitor measures for straggling).
  TaskAttempt* RunningPrimary() const;

  // Progress of the most advanced attempt; a committed task reports its
  // winner's final progress so it keeps anchoring the job median.
  uint64_t BestProgress() const;

  const std::vector<std::unique_ptr<TaskAttempt>>& attempts() const {
    return attempts_;
  }

 private:
  std::vector<std::unique_ptr<TaskAttempt>> attempts_;
  TaskAttempt* winner_ = nullptr;
  int backups_ = 0;
};

}  // namespace spongefiles::mapred

#endif  // SPONGEFILES_MAPRED_TASK_ATTEMPT_H_
