#ifndef SPONGEFILES_MAPRED_JOB_H_
#define SPONGEFILES_MAPRED_JOB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "mapred/record.h"
#include "mapred/spill.h"
#include "sim/engine.h"
#include "sim/task.h"
#include "sponge/sponge_env.h"

namespace spongefiles::mapred {

// Batches simulated CPU time so a million-record pass does not cost a
// million engine events: debt accumulates and is slept off in >= 1 ms
// slices.
// lint: shard(value)
class CpuMeter {
 public:
  explicit CpuMeter(sim::Engine* engine) : engine_(engine) {}

  sim::Task<> Charge(Duration cost);
  sim::Task<> Flush();

  Duration total_charged() const { return total_; }

 private:
  sim::Engine* engine_;
  Duration debt_ = 0;
  Duration total_ = 0;
};

// One parallel slice of a job's input. `generate` deterministically
// synthesizes the split's records (the DFS provides read timing; record
// payloads come from the workload generators — see DESIGN.md).
// lint: shard(value)
struct InputSplit {
  std::string dfs_file;
  uint64_t offset = 0;
  uint64_t bytes = 0;
  std::function<std::vector<Record>()> generate;
};

// lint: shard(value)
class InputFormat {
 public:
  virtual ~InputFormat() = default;
  virtual std::vector<InputSplit> Splits() = 0;
};

using MapFn =
    std::function<void(const Record& in, std::vector<Record>* out)>;

// Everything a reducer may touch while running: the task's spiller (Pig
// bags spill through it, so their spills land on whatever medium the
// experiment selects), CPU meter, memory budget, and the job output sink.
// lint: shard(value)
struct ReduceContext {
  sim::Engine* engine = nullptr;
  Spiller* spiller = nullptr;
  sponge::TaskContext* task = nullptr;
  CpuMeter* cpu = nullptr;
  std::vector<Record>* output = nullptr;
  uint64_t heap_bytes = 0;
};

// Streaming reduce interface: values of one key arrive one at a time
// between StartKey and FinishKey. Holistic functions (median, quantiles,
// top-k) buffer internally — through a spillable DataBag in the Pig layer.
// lint: shard(value)
class Reducer {
 public:
  virtual ~Reducer() = default;

  virtual sim::Task<Status> Start(ReduceContext* ctx) {
    ctx_ = ctx;
    co_return Status::OK();
  }
  virtual sim::Task<Status> StartKey(std::string key) = 0;
  virtual sim::Task<Status> AddValue(Record value) = 0;
  virtual sim::Task<Status> FinishKey() = 0;
  virtual sim::Task<Status> Finish() { co_return Status::OK(); }

 protected:
  ReduceContext* ctx_ = nullptr;
};

// Speculative execution (Hadoop's backup tasks, the tail-latency half of
// the paper's recovery story): the JobTracker samples every attempt's
// progress each check_period and launches one backup for a task whose
// best attempt lags the wave's median progress by lag_factor, provided
// the attempt has run at least min_attempt_age (young tasks have noisy
// progress) and a slot is free on some other node. First attempt to
// commit wins; the loser is killed and deregistered, so its sponge chunks
// are reclaimed by the ordinary dead-task GC.
// lint: shard(value)
struct SpeculationConfig {
  bool enabled = false;
  Duration check_period = Seconds(1);
  Duration min_attempt_age = Seconds(5);
  // A task is straggling when progress * lag_factor < median progress.
  double lag_factor = 2.0;
  int max_backups_per_task = 1;
};

// lint: shard(value)
struct JobConfig {
  std::string name = "job";
  InputFormat* input = nullptr;
  MapFn map_fn;  // null: identity map
  std::function<std::unique_ptr<Reducer>()> reducer_factory;  // null: map-only
  int num_reducers = 1;
  SpillMode spill_mode = SpillMode::kDisk;
  std::function<size_t(const Record&, int)> partitioner;  // default: key hash

  // Hadoop knobs from section 2.1.2 (logical bytes).
  uint64_t io_sort_mb = 128ull * 1024 * 1024;       // map sort buffer
  double shuffle_buffer_fraction = 0.70;            // of reduce heap
  double reduce_retain_fraction = 0.0;              // kept in memory after merge
  // Per-job reduce JVM heap; 0 uses the node's slot default. (Figure 6's
  // "no spilling" configuration gives the single reduce a 12 GB heap.)
  uint64_t reduce_heap_bytes = 0;

  // CPU cost model.
  Duration map_cpu_per_record = Micros(2);
  double map_scan_bandwidth = 500.0 * 1024 * 1024;  // input bytes/second
  Duration reduce_cpu_per_record = Micros(2);

  int max_attempts = 4;
  SpeculationConfig speculation;
  // Per-job reduce pinning: partition -> node (benches use this to place
  // the straggling reduce deterministically). Part of the job, not the
  // shared tracker, so concurrent jobs cannot inherit each other's pins.
  std::vector<std::pair<size_t, size_t>> reduce_pins;
  // Delay scheduling (the locality technique the paper's production
  // clusters run): a map task waits up to this long for a slot on the
  // node holding its DFS block before accepting any free slot elsewhere
  // (paying a remote block read). 0 disables relaxation: tasks always
  // run data-local.
  Duration locality_wait = Seconds(5.0);
  // Cooperative cancellation: when *cancel becomes true, unstarted tasks
  // are skipped and running ones abort at their next checkpoint (used to
  // stop the background contention job once the measured job finishes).
  std::shared_ptr<bool> cancel;
};

// lint: shard(value)
struct TaskStats {
  size_t node = 0;
  Duration runtime = 0;
  uint64_t input_bytes = 0;
  uint64_t input_records = 0;
  SpillStats spill;
  int attempts = 1;        // attempts launched for the logical task
  bool completed = true;   // false: cancelled
  bool data_local = true;  // map ran on the node holding its block
  bool speculative = false;  // a backup attempt produced this result
};

// lint: shard(value)
struct JobResult {
  Duration runtime = 0;
  std::vector<TaskStats> map_tasks;
  std::vector<TaskStats> reduce_tasks;
  std::vector<Record> output;

  // The longest-running reduce task (the straggler whose runtime dominates
  // the job, per section 4.2.3). Null for map-only jobs.
  const TaskStats* straggler() const;
};

}  // namespace spongefiles::mapred

#endif  // SPONGEFILES_MAPRED_JOB_H_
