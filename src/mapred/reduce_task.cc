#include "mapred/reduce_task.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace spongefiles::mapred {

ReduceTask::ReduceTask(sponge::SpongeEnv* env, const JobConfig* config,
                       std::vector<MapOutput>* map_outputs, size_t partition,
                       TaskAttempt* attempt)
    : env_(env),
      config_(config),
      map_outputs_(map_outputs),
      partition_(partition),
      attempt_(attempt),
      node_(attempt->id.node) {}

uint64_t ReduceTask::ReduceHeap() const {
  if (config_->reduce_heap_bytes > 0) return config_->reduce_heap_bytes;
  return env_->cluster()->node(node_).config().heap_per_slot;
}

std::unique_ptr<Spiller> ReduceTask::MakeSpiller() {
  // Attempt-unique prefix: concurrent attempts of one partition must not
  // share spill files (or sponge chunk names).
  std::string prefix = attempt_->id.ToString();
  if (config_->spill_mode == SpillMode::kSponge) {
    return std::make_unique<SpongeSpiller>(env_, &attempt_->ctx, prefix);
  }
  return std::make_unique<DiskSpiller>(env_->engine(),
                                       &env_->cluster()->node(node_).fs(),
                                       prefix);
}

sim::Task<Status> ReduceTask::SpillMemorySegments() {
  if (memory_segments_.empty()) co_return Status::OK();
  obs::SpanGuard span(&obs::Tracer::Default(), env_->engine(), node_,
                      attempt_->id.attempt_id, "mapred", "reduce.spill");
  span.Arg("bytes", memory_bytes_);
  span.Arg("segments", static_cast<uint64_t>(memory_segments_.size()));
  std::unique_ptr<SpillFile> run;
  if (memory_segments_.size() == 1) {
    // A single segment is already a sorted run; stream it out directly.
    SpillFileSource source(std::move(memory_segments_[0]));
    auto written = co_await WriteSortedRun(
        spiller_.get(), "run" + std::to_string(next_run_++), &source);
    co_await source.Done();
    if (!written.ok()) co_return written.status();
    run = std::move(*written);
  } else {
    std::vector<std::unique_ptr<RecordSource>> inputs;
    for (auto& segment : memory_segments_) {
      inputs.push_back(
          std::make_unique<SpillFileSource>(std::move(segment)));
    }
    MergeStream merge(std::move(inputs));
    auto written = co_await WriteSortedRun(
        spiller_.get(), "run" + std::to_string(next_run_++), &merge);
    co_await merge.Done();
    if (!written.ok()) co_return written.status();
    run = std::move(*written);
  }
  memory_segments_.clear();
  memory_bytes_ = 0;
  spilled_segments_.push_back(std::move(run));
  co_return Status::OK();
}

sim::Task<Status> ReduceTask::FetchSegment(MapOutput* output) {
  SpillFile* source = output->partitions[partition_].get();
  if (source == nullptr || source->size() == 0) co_return Status::OK();
  obs::SpanGuard span(&obs::Tracer::Default(), env_->engine(), node_,
                      attempt_->id.attempt_id, "mapred",
                      "reduce.fetch_segment");
  span.Arg("from", static_cast<uint64_t>(output->node));
  span.Arg("bytes", source->size());

  uint64_t heap = ReduceHeap();
  uint64_t shuffle_buffer = static_cast<uint64_t>(
      config_->shuffle_buffer_fraction * static_cast<double>(heap));
  if (memory_bytes_ + source->size() > shuffle_buffer) {
    CO_RETURN_IF_ERROR(co_await SpillMemorySegments());
  }

  // An independent cursor per attempt: the map-side copy is shared by
  // every attempt of this partition and survives until the job ends.
  auto reader = source->OpenReader();
  if (!reader.ok()) co_return reader.status();
  auto segment = std::make_unique<MemorySpillFile>(env_->engine());
  while (true) {
    auto chunk = co_await (*reader)->ReadNext();
    if (!chunk.ok()) co_return chunk.status();
    if (chunk->empty()) break;
    uint64_t n = chunk->size();
    if (output->node != node_) {
      co_await env_->cluster()->network().Transfer(output->node, node_, n);
    }
    attempt_->Note(0, n);
    CO_RETURN_IF_ERROR(co_await segment->Append(std::move(*chunk)));
    if (attempt_->killed()) co_return Aborted("attempt killed");
  }
  CO_RETURN_IF_ERROR(co_await segment->Close());
  memory_bytes_ += segment->size();
  memory_segments_.push_back(std::move(segment));
  co_return Status::OK();
}

sim::Task<Status> ReduceTask::IntermediateMergeRounds() {
  size_t factor = spiller_->merge_factor();
  while (spilled_segments_.size() > factor) {
    obs::SpanGuard span(&obs::Tracer::Default(), env_->engine(), node_,
                        attempt_->id.attempt_id, "mapred",
                        "reduce.merge_round");
    span.Arg("segments", static_cast<uint64_t>(spilled_segments_.size()));
    // Merge the `factor` smallest segments (Hadoop's polyphase heuristic)
    // into a new run.
    std::sort(spilled_segments_.begin(), spilled_segments_.end(),
              [](const std::unique_ptr<SpillFile>& a,
                 const std::unique_ptr<SpillFile>& b) {
                return a->size() < b->size();
              });
    std::vector<std::unique_ptr<RecordSource>> inputs;
    for (size_t i = 0; i < factor; ++i) {
      inputs.push_back(std::make_unique<SpillFileSource>(
          std::move(spilled_segments_[i])));
    }
    spilled_segments_.erase(spilled_segments_.begin(),
                            spilled_segments_.begin() +
                                static_cast<long>(factor));
    MergeStream merge(std::move(inputs));
    auto written = co_await WriteSortedRun(
        spiller_.get(), "merge" + std::to_string(next_run_++), &merge);
    co_await merge.Done();
    if (!written.ok()) co_return written.status();
    spilled_segments_.push_back(std::move(*written));
  }
  co_return Status::OK();
}

sim::Task<Status> ReduceTask::DriveReducer(RecordSource* stream,
                                           std::vector<Record>* job_output,
                                           TaskStats* stats) {
  obs::SpanGuard span(&obs::Tracer::Default(), env_->engine(), node_,
                      attempt_->id.attempt_id, "mapred", "reduce.reduce");
  CpuMeter cpu(env_->engine());
  ReduceContext ctx;
  ctx.engine = env_->engine();
  ctx.spiller = spiller_.get();
  ctx.task = &attempt_->ctx;
  ctx.cpu = &cpu;
  ctx.output = job_output;
  ctx.heap_bytes = ReduceHeap();
  CO_RETURN_IF_ERROR(co_await reducer_->Start(&ctx));

  bool in_key = false;
  std::string current_key;
  Record record;
  while (true) {
    auto has = co_await stream->Next(&record);
    if (!has.ok()) co_return has.status();
    if (!*has) break;
    if (attempt_->killed()) co_return Aborted("attempt killed");
    ++stats->input_records;
    uint64_t bytes = SerializedSize(record);
    stats->input_bytes += bytes;
    attempt_->Note(1, bytes);
    if (!in_key || record.key != current_key) {
      if (in_key) CO_RETURN_IF_ERROR(co_await reducer_->FinishKey());
      current_key = record.key;
      in_key = true;
      CO_RETURN_IF_ERROR(co_await reducer_->StartKey(current_key));
    }
    co_await cpu.Charge(config_->reduce_cpu_per_record);
    CO_RETURN_IF_ERROR(co_await reducer_->AddValue(std::move(record)));
  }
  if (in_key) CO_RETURN_IF_ERROR(co_await reducer_->FinishKey());
  CO_RETURN_IF_ERROR(co_await reducer_->Finish());
  co_await cpu.Flush();
  co_return Status::OK();
}

sim::Task<Result<ReduceAttemptResult>> ReduceTask::Run() {
  static obs::Counter* const tasks_counter = obs::Registry::Default().counter(
      "mapred.tasks", {{"kind", "reduce"}});
  tasks_counter->Increment();
  sim::Engine* engine = env_->engine();
  SimTime start = engine->now();
  ReduceAttemptResult result;
  result.stats.node = node_;
  spiller_ = MakeSpiller();
  reducer_ = config_->reducer_factory();
  obs::SpanGuard span(&obs::Tracer::Default(), engine, node_,
                      attempt_->id.attempt_id, "mapred", "reduce.task");
  span.Arg("partition", static_cast<uint64_t>(partition_));

  auto finish = [&](Status status) {
    result.stats.spill = spiller_->stats();
    result.stats.runtime = engine->now() - start;
    return status;
  };

  // 1. Shuffle.
  {
    obs::SpanGuard shuffle_span(&obs::Tracer::Default(), engine, node_,
                                attempt_->id.attempt_id, "mapred",
                                "reduce.shuffle");
    for (MapOutput& output : *map_outputs_) {
      if (config_->cancel && *config_->cancel) {
        co_return finish(Aborted("job cancelled"));
      }
      if (attempt_->killed()) co_return finish(Aborted("attempt killed"));
      Status fetched = co_await FetchSegment(&output);
      if (!fetched.ok()) co_return finish(fetched);
    }
  }

  // 2. Nothing is retained in memory for the merge by default
  // (reduce_retain_fraction = 0): spill what the shuffle buffer holds.
  uint64_t heap = ReduceHeap();
  uint64_t retain = static_cast<uint64_t>(
      config_->reduce_retain_fraction * static_cast<double>(heap));
  if (memory_bytes_ > retain) {
    Status spilled = co_await SpillMemorySegments();
    if (!spilled.ok()) co_return finish(spilled);
  }

  // 3. Multi-round merge while too many runs remain.
  Status merged = co_await IntermediateMergeRounds();
  if (!merged.ok()) co_return finish(merged);

  // 4. Final merge streams into the reducer.
  std::vector<std::unique_ptr<RecordSource>> inputs;
  for (auto& segment : memory_segments_) {
    inputs.push_back(std::make_unique<SpillFileSource>(std::move(segment)));
  }
  memory_segments_.clear();
  for (auto& segment : spilled_segments_) {
    inputs.push_back(std::make_unique<SpillFileSource>(std::move(segment)));
  }
  spilled_segments_.clear();
  MergeStream merge(std::move(inputs));
  Status reduced = co_await DriveReducer(&merge, &result.output,
                                         &result.stats);
  co_await merge.Done();
  Status status = finish(reduced);
  if (!status.ok()) co_return status;
  co_return result;
}

}  // namespace spongefiles::mapred
