#ifndef SPONGEFILES_MAPRED_MAP_TASK_H_
#define SPONGEFILES_MAPRED_MAP_TASK_H_

#include <memory>
#include <vector>

#include "cluster/dfs.h"
#include "mapred/job.h"
#include "mapred/merger.h"
#include "mapred/spill.h"
#include "mapred/task_attempt.h"
#include "sponge/sponge_env.h"

namespace spongefiles::mapred {

// The sorted, partitioned output of one completed map task, left on the
// map node's local disk for reduce tasks to fetch (stock Hadoop behaviour;
// the paper's modification is on the reduce side).
// lint: shard(value)
struct MapOutput {
  size_t node = 0;
  // One sorted run per reduce partition; null when the partition is empty.
  std::vector<std::unique_ptr<SpillFile>> partitions;
  std::vector<uint64_t> partition_records;
  // Keeps the spill-stats storage the partition files point into alive.
  std::unique_ptr<DiskSpiller> spiller;
};

// Everything one successful map attempt produces; the attempt's driver
// moves it into the logical task's slot when the attempt commits.
// lint: shard(value)
struct MapAttemptResult {
  MapOutput output;
  TaskStats stats;
};

// Runs one map attempt: streams the split from the DFS, applies the map
// function, sorts output in the io.sort.mb buffer (spilling full buffers
// to local disk, section 2.1.2), and merges the spills into the final
// partitioned output. The attempt supplies identity (spill-file prefixes
// are attempt-unique, so concurrent attempts never collide), the kill
// flag checked at operation boundaries, and the progress counters the
// speculation monitor reads.
// lint: shard(value)
class MapTask {
 public:
  MapTask(sponge::SpongeEnv* env, cluster::Dfs* dfs, const JobConfig* config,
          const InputSplit* split, TaskAttempt* attempt);

  sim::Task<Result<MapAttemptResult>> Run();

 private:
  size_t PartitionOf(const Record& record) const;

  // Sorts the buffer by (partition, key) and spills one sorted run per
  // non-empty partition to local disk.
  sim::Task<Status> SortAndSpill();

  sponge::SpongeEnv* env_;
  cluster::Dfs* dfs_;
  const JobConfig* config_;
  const InputSplit* split_;
  TaskAttempt* attempt_;
  size_t node_;

  // Sort buffer: records per partition plus total logical bytes.
  std::vector<std::vector<Record>> buffer_;
  uint64_t buffer_bytes_ = 0;

  // Spilled sorted runs, per partition, across spills.
  std::vector<std::vector<std::unique_ptr<SpillFile>>> spilled_;
  std::vector<uint64_t> partition_records_;
  std::unique_ptr<DiskSpiller> spiller_;
  int spill_count_ = 0;
};

}  // namespace spongefiles::mapred

#endif  // SPONGEFILES_MAPRED_MAP_TASK_H_
