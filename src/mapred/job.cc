#include "mapred/job.h"

namespace spongefiles::mapred {

sim::Task<> CpuMeter::Charge(Duration cost) {
  debt_ += cost;
  total_ += cost;
  if (debt_ >= kMillisecond) {
    Duration sleep = debt_;
    debt_ = 0;
    co_await engine_->Delay(sleep);
  }
}

sim::Task<> CpuMeter::Flush() {
  if (debt_ > 0) {
    Duration sleep = debt_;
    debt_ = 0;
    co_await engine_->Delay(sleep);
  }
}

const TaskStats* JobResult::straggler() const {
  const TaskStats* worst = nullptr;
  for (const TaskStats& stats : reduce_tasks) {
    if (worst == nullptr || stats.runtime > worst->runtime) worst = &stats;
  }
  return worst;
}

}  // namespace spongefiles::mapred
