#ifndef SPONGEFILES_MAPRED_MERGER_H_
#define SPONGEFILES_MAPRED_MERGER_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "mapred/record.h"
#include "mapred/spill.h"
#include "sim/task.h"

namespace spongefiles::mapred {

// A stream of records in key order.
// lint: shard(value)
class RecordSource {
 public:
  virtual ~RecordSource() = default;

  // Produces the next record. Returns false at end of stream.
  virtual sim::Task<Result<bool>> Next(Record* out) = 0;

  // Releases backing storage (deletes the underlying spill file).
  virtual sim::Task<> Done() = 0;
};

// Streams a (sorted) spill file, parsing records chunk by chunk.
// lint: shard(value)
class SpillFileSource : public RecordSource {
 public:
  explicit SpillFileSource(std::unique_ptr<SpillFile> file)
      : file_(std::move(file)) {}

  sim::Task<Result<bool>> Next(Record* out) override;
  sim::Task<> Done() override;

  SpillFile* file() { return file_.get(); }

 private:
  std::unique_ptr<SpillFile> file_;
  RecordParser parser_;
  bool exhausted_ = false;
};

// Streams an in-memory vector of records (already sorted by the caller).
// lint: shard(value)
class VectorSource : public RecordSource {
 public:
  explicit VectorSource(std::vector<Record> records)
      : records_(std::move(records)) {}

  sim::Task<Result<bool>> Next(Record* out) override;
  sim::Task<> Done() override;

 private:
  std::vector<Record> records_;
  size_t next_ = 0;
};

// K-way merge of sorted sources into one sorted stream. This is the
// operation whose disk incarnation ruins performance under spilling: k
// concurrent file streams on one spindle seek on every switch, which is
// why Hadoop caps k at io.sort.factor and pays multiple rounds instead.
// lint: shard(value)
class MergeStream : public RecordSource {
 public:
  struct Head {
    Record record;
    size_t input;
  };

  explicit MergeStream(std::vector<std::unique_ptr<RecordSource>> inputs)
      : inputs_(std::move(inputs)) {}

  sim::Task<Result<bool>> Next(Record* out) override;
  sim::Task<> Done() override;

 private:

  sim::Task<Status> Prime();

  std::vector<std::unique_ptr<RecordSource>> inputs_;
  // Min-heap by key over the current head of each non-exhausted input.
  std::vector<Head> heap_;
  bool primed_ = false;
};

// Drains `source` into a freshly created spill file named `name`,
// serializing records in order. Returns the closed file.
sim::Task<Result<std::unique_ptr<SpillFile>>> WriteSortedRun(
    Spiller* spiller, std::string name, RecordSource* source);

}  // namespace spongefiles::mapred

#endif  // SPONGEFILES_MAPRED_MERGER_H_
