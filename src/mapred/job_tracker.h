#ifndef SPONGEFILES_MAPRED_JOB_TRACKER_H_
#define SPONGEFILES_MAPRED_JOB_TRACKER_H_

#include <deque>
#include <memory>
#include <vector>

#include "cluster/dfs.h"
#include "mapred/job.h"
#include "mapred/map_task.h"
#include "sim/sync.h"
#include "sponge/sponge_env.h"

namespace spongefiles::mapred {

// The cluster's job scheduler: one instance per cluster, shared by every
// concurrently running job (the slot pools are the shared resource — a
// background job's tasks soak up whatever map slots the measured job
// leaves free, exactly the paper's multi-tenant setup).
//
// Scheduling model: delay scheduling for maps (the locality technique the
// paper's production clusters run): a map waits up to its job's
// locality_wait for a slot on the node holding its DFS block, then takes
// any free slot and reads the block remotely. Reduce tasks are placed
// round-robin unless the job pins them. Failed tasks are retried up to
// max_attempts, which is how the framework recovers a task whose
// SpongeFile chunk was lost to a machine failure (section 3.1).
class JobTracker {
 public:
  JobTracker(sponge::SpongeEnv* env, cluster::Dfs* dfs);

  JobTracker(const JobTracker&) = delete;
  JobTracker& operator=(const JobTracker&) = delete;

  // Runs a job to completion (or first unrecoverable task failure).
  // Multiple jobs may run concurrently from separate coroutines.
  sim::Task<Result<JobResult>> Run(JobConfig config);

  // Pins a job's reduce task for `partition` to a node (benches use this
  // to place the straggling reduce deterministically). Applies to the next
  // Run call.
  void PinReduce(size_t partition, size_t node);

 private:
  // A map task waiting for a slot. Event-driven (no polling): the task is
  // assigned when (a) a slot frees on its preferred node, (b) its
  // locality deadline fires with a free slot somewhere, or (c) a slot
  // frees anywhere after the deadline moved it to the relaxed queue.
  struct PendingMap {
    size_t preferred = 0;
    std::unique_ptr<sim::Event> assigned;
    size_t node = 0;
    bool done = false;
  };

  sim::Task<> RunOneMap(const JobConfig* config, const InputSplit* split,
                        int index, MapOutput* output, TaskStats* stats,
                        Status* job_status, sim::WaitGroup* wg);
  sim::Task<> RunOneReduce(const JobConfig* config,
                           std::vector<MapOutput>* outputs, size_t partition,
                           std::vector<Record>* job_output, TaskStats* stats,
                           Status* job_status, sim::WaitGroup* wg);

  size_t MapNodeFor(const InputSplit& split) const;
  size_t ReduceNodeFor(size_t partition) const;

  // Acquires a map slot for `task` honoring delay scheduling; resolves
  // task->node.
  sim::Task<> AcquireMapSlot(std::shared_ptr<PendingMap> task,
                             Duration locality_wait);
  void ReleaseMapSlot(size_t node);
  void AssignMap(PendingMap* task, size_t node);
  sim::Task<> DeadlineWake(std::shared_ptr<PendingMap> task);

  sponge::SpongeEnv* env_;
  cluster::Dfs* dfs_;
  std::vector<int> free_map_slots_;
  std::vector<std::deque<std::shared_ptr<PendingMap>>> pending_local_;
  std::deque<std::shared_ptr<PendingMap>> relaxed_;
  std::vector<std::unique_ptr<sim::Semaphore>> reduce_slots_;
  std::vector<std::pair<size_t, size_t>> reduce_pins_;
  size_t next_map_node_ = 0;
};

}  // namespace spongefiles::mapred

#endif  // SPONGEFILES_MAPRED_JOB_TRACKER_H_
