#ifndef SPONGEFILES_MAPRED_JOB_TRACKER_H_
#define SPONGEFILES_MAPRED_JOB_TRACKER_H_

#include <deque>
#include <memory>
#include <vector>

#include "cluster/dfs.h"
#include "mapred/job.h"
#include "mapred/map_task.h"
#include "mapred/task_attempt.h"
#include "sim/sync.h"
#include "sponge/sponge_env.h"

namespace spongefiles::mapred {

// The cluster's job scheduler: one instance per cluster, shared by every
// concurrently running job (the slot pools are the shared resource — a
// background job's tasks soak up whatever map slots the measured job
// leaves free, exactly the paper's multi-tenant setup).
//
// Scheduling model: delay scheduling for maps (the locality technique the
// paper's production clusters run): a map waits up to its job's
// locality_wait for a slot on the node holding its DFS block, then takes
// any free slot and reads the block remotely. Reduce tasks are placed
// round-robin unless the job pins them (JobConfig::reduce_pins). Failed
// tasks are retried up to max_attempts, which is how the framework
// recovers a task whose SpongeFile chunk was lost to a machine failure
// (section 3.1).
//
// Execution is attempt-based: every run of a logical task is a TaskAttempt
// with its own registry id, spill namespace, and result sink. A per-task
// driver coroutine owns the sequential retry chain and reports exactly one
// outcome on the job's outcome channel; the speculation monitor (when
// JobConfig::speculation.enabled) launches backup attempts for stragglers,
// and the first attempt to commit through the AttemptSet barrier wins —
// the loser is killed, deregistered, and its sponge chunks fall to the
// ordinary dead-task GC.
// lint: shard(global: central job scheduler; owns per-job state, driven only from driver and monitor events)
class JobTracker {
 public:
  JobTracker(sponge::SpongeEnv* env, cluster::Dfs* dfs);

  JobTracker(const JobTracker&) = delete;
  JobTracker& operator=(const JobTracker&) = delete;

  // Runs a job to completion (or first unrecoverable task failure).
  // Multiple jobs may run concurrently from separate coroutines.
  sim::Task<Result<JobResult>> Run(JobConfig config);

 private:
  // A map task waiting for a slot. Event-driven (no polling): the task is
  // assigned when (a) a slot frees on its preferred node, (b) its
  // locality deadline fires with a free slot somewhere, or (c) a slot
  // frees anywhere after the deadline moved it to the relaxed queue.
  struct PendingMap {
    size_t preferred = 0;
    std::unique_ptr<sim::Event> assigned;
    size_t node = 0;
    bool done = false;
  };

  // One logical task's outcome, reported exactly once by its primary
  // driver. A cancelled or losing backup attempt never reports, so it
  // cannot clobber the job status.
  struct TaskOutcome {
    int index = 0;
    Status status;
  };

  // Scheduling state of one logical map task: its attempts plus the
  // committed winner's results.
  struct MapTaskState {
    const InputSplit* split = nullptr;
    int index = 0;
    AttemptSet attempts;
    MapOutput output;
    TaskStats stats;
  };

  struct ReduceTaskState {
    size_t partition = 0;
    AttemptSet attempts;
    std::vector<Record> output;
    TaskStats stats;
  };

  // Primary drivers: own the slot, run the sequential retry chain, report
  // the single task outcome.
  sim::Task<> RunOneMap(const JobConfig* config, MapTaskState* state,
                        sim::Channel<TaskOutcome>* outcomes,
                        sim::WaitGroup* wg);
  sim::Task<> RunOneReduce(const JobConfig* config,
                           std::vector<MapOutput>* outputs,
                           ReduceTaskState* state,
                           sim::Channel<TaskOutcome>* outcomes,
                           sim::WaitGroup* wg);

  // Backup drivers: run one speculative attempt on a slot the monitor
  // already reserved, commit if they win, and stay silent otherwise.
  sim::Task<> RunMapBackup(const JobConfig* config, MapTaskState* state,
                           size_t node, sim::WaitGroup* wg);
  sim::Task<> RunReduceBackup(const JobConfig* config,
                              std::vector<MapOutput>* outputs,
                              ReduceTaskState* state, size_t node,
                              sim::WaitGroup* wg);

  // The straggler watcher for one wave: every check_period, compares each
  // open task's best progress against the wave median and launches a
  // backup on a free slot on a node no live attempt of the task occupies.
  sim::Task<> SpeculationLoop(const JobConfig* config, TaskKind kind,
                              std::deque<MapTaskState>* maps,
                              std::deque<ReduceTaskState>* reduces,
                              std::vector<MapOutput>* outputs,
                              const bool* wave_done, sim::WaitGroup* wg);

  // Synchronously grabs a slot for a backup attempt (the monitor must not
  // wait in a slot queue); false when the node has no free slot.
  bool TryReserveBackupSlot(TaskKind kind, size_t node);

  size_t MapNodeFor(const InputSplit& split) const;
  size_t ReduceNodeFor(const JobConfig& config, size_t partition) const;

  // Acquires a map slot for `task` honoring delay scheduling; resolves
  // task->node.
  sim::Task<> AcquireMapSlot(std::shared_ptr<PendingMap> task,
                             Duration locality_wait);
  void ReleaseMapSlot(size_t node);
  void AssignMap(PendingMap* task, size_t node);
  sim::Task<> DeadlineWake(std::shared_ptr<PendingMap> task);

  sponge::SpongeEnv* env_;
  cluster::Dfs* dfs_;
  std::vector<int> free_map_slots_;
  std::vector<std::deque<std::shared_ptr<PendingMap>>> pending_local_;
  std::deque<std::shared_ptr<PendingMap>> relaxed_;
  std::vector<std::unique_ptr<sim::Semaphore>> reduce_slots_;
  size_t next_map_node_ = 0;
};

}  // namespace spongefiles::mapred

#endif  // SPONGEFILES_MAPRED_JOB_TRACKER_H_
