#include "mapred/map_task.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace spongefiles::mapred {

namespace {
constexpr uint64_t kScanUnit = 4ull * 1024 * 1024;  // DFS read granularity

size_t DefaultPartition(const Record& record, int num_reducers) {
  uint64_t h = 14695981039346656037ull;
  for (char c : record.key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h % static_cast<uint64_t>(num_reducers));
}
}  // namespace

MapTask::MapTask(sponge::SpongeEnv* env, cluster::Dfs* dfs,
                 const JobConfig* config, const InputSplit* split,
                 TaskAttempt* attempt)
    : env_(env),
      dfs_(dfs),
      config_(config),
      split_(split),
      attempt_(attempt),
      node_(attempt->id.node) {
  buffer_.resize(static_cast<size_t>(config->num_reducers));
  spilled_.resize(static_cast<size_t>(config->num_reducers));
  partition_records_.resize(static_cast<size_t>(config->num_reducers), 0);
  // Attempt-unique prefix: two live attempts of one task must never share
  // spill files (they may even land on the same node across retries).
  spiller_ = std::make_unique<DiskSpiller>(
      env->engine(), &env->cluster()->node(node_).fs(),
      attempt->id.ToString());
}

size_t MapTask::PartitionOf(const Record& record) const {
  if (config_->partitioner) {
    return config_->partitioner(record, config_->num_reducers);
  }
  return DefaultPartition(record, config_->num_reducers);
}

sim::Task<Status> MapTask::SortAndSpill() {
  obs::SpanGuard span(&obs::Tracer::Default(), env_->engine(), node_,
                      attempt_->id.attempt_id, "mapred", "map.sort_spill");
  span.Arg("bytes", buffer_bytes_);
  ++spill_count_;
  for (size_t p = 0; p < buffer_.size(); ++p) {
    if (buffer_[p].empty()) continue;
    std::sort(buffer_[p].begin(), buffer_[p].end(),
              [](const Record& a, const Record& b) { return a.key < b.key; });
    VectorSource source(std::move(buffer_[p]));
    buffer_[p] = {};
    auto run = co_await WriteSortedRun(
        spiller_.get(),
        "spill" + std::to_string(spill_count_) + ".p" + std::to_string(p),
        &source);
    if (!run.ok()) co_return run.status();
    spilled_[p].push_back(std::move(*run));
  }
  buffer_bytes_ = 0;
  co_return Status::OK();
}

sim::Task<Result<MapAttemptResult>> MapTask::Run() {
  static obs::Counter* const tasks_counter = obs::Registry::Default().counter(
      "mapred.tasks", {{"kind", "map"}});
  tasks_counter->Increment();
  sim::Engine* engine = env_->engine();
  CpuMeter cpu(engine);
  MapAttemptResult result;
  result.stats.node = node_;
  SimTime start = engine->now();
  obs::SpanGuard span(&obs::Tracer::Default(), engine, node_,
                      attempt_->id.attempt_id, "mapred", "map.task");
  span.Arg("split_bytes", split_->bytes);

  // Stream the split off the DFS, charging scan CPU as we go.
  for (uint64_t off = 0; off < split_->bytes; off += kScanUnit) {
    if (config_->cancel && *config_->cancel) {
      co_return Aborted("job cancelled");
    }
    if (attempt_->killed()) co_return Aborted("attempt killed");
    uint64_t n = std::min<uint64_t>(kScanUnit, split_->bytes - off);
    Status read = co_await dfs_->Read(split_->dfs_file, node_,
                                      split_->offset + off, n);
    if (!read.ok()) co_return read;
    attempt_->Note(0, n);
    co_await cpu.Charge(TransferTime(n, config_->map_scan_bandwidth));
  }
  result.stats.input_bytes = split_->bytes;

  // Apply the map function and fill the sort buffer.
  std::vector<Record> records =
      split_->generate ? split_->generate() : std::vector<Record>{};
  result.stats.input_records = records.size();
  std::vector<Record> mapped;
  for (Record& record : records) {
    if (attempt_->killed()) co_return Aborted("attempt killed");
    co_await cpu.Charge(config_->map_cpu_per_record);
    attempt_->Note(1, 0);
    mapped.clear();
    if (config_->map_fn) {
      config_->map_fn(record, &mapped);
    } else {
      mapped.push_back(record);
    }
    for (Record& out : mapped) {
      uint64_t bytes = SerializedSize(out);
      size_t partition = PartitionOf(out);
      ++partition_records_[partition];
      buffer_[partition].push_back(std::move(out));
      buffer_bytes_ += bytes;
      if (buffer_bytes_ >= config_->io_sort_mb) {
        CO_RETURN_IF_ERROR(co_await SortAndSpill());
      }
    }
  }
  if (buffer_bytes_ > 0) {
    CO_RETURN_IF_ERROR(co_await SortAndSpill());
  }

  // Merge this attempt's spills into one sorted run per partition.
  MapOutput* output = &result.output;
  output->node = node_;
  output->partitions.resize(spilled_.size());
  output->partition_records = partition_records_;
  for (size_t p = 0; p < spilled_.size(); ++p) {
    if (spilled_[p].empty()) continue;
    if (spilled_[p].size() == 1) {
      output->partitions[p] = std::move(spilled_[p][0]);
      continue;
    }
    if (attempt_->killed()) co_return Aborted("attempt killed");
    std::vector<std::unique_ptr<RecordSource>> inputs;
    for (auto& file : spilled_[p]) {
      inputs.push_back(std::make_unique<SpillFileSource>(std::move(file)));
    }
    MergeStream merge(std::move(inputs));
    auto merged = co_await WriteSortedRun(
        spiller_.get(), "out.p" + std::to_string(p), &merge);
    co_await merge.Done();
    if (!merged.ok()) co_return merged.status();
    output->partitions[p] = std::move(*merged);
  }

  co_await cpu.Flush();
  result.stats.spill = spiller_->stats();
  result.stats.runtime = engine->now() - start;
  output->spiller = std::move(spiller_);
  co_return result;
}

}  // namespace spongefiles::mapred
