#include "mapred/merger.h"

#include <algorithm>

#include "obs/metrics.h"

namespace spongefiles::mapred {

sim::Task<Result<bool>> SpillFileSource::Next(Record* out) {
  if (exhausted_ && parser_.pending_bytes() == 0) co_return false;
  while (!parser_.Next(out)) {
    if (exhausted_) {
      if (parser_.pending_bytes() != 0) {
        co_return Internal("truncated record at end of spill file");
      }
      co_return false;
    }
    auto chunk = co_await file_->ReadNext();
    if (!chunk.ok()) co_return chunk.status();
    if (chunk->empty()) {
      exhausted_ = true;
    } else {
      parser_.Feed(*chunk);
    }
  }
  co_return true;
}

sim::Task<> SpillFileSource::Done() { co_await file_->Delete(); }

sim::Task<Result<bool>> VectorSource::Next(Record* out) {
  if (next_ >= records_.size()) co_return false;
  *out = std::move(records_[next_++]);
  co_return true;
}

sim::Task<> VectorSource::Done() {
  records_.clear();
  co_return;
}

namespace {
bool HeadLess(const MergeStream::Head& a, const MergeStream::Head& b) {
  return a.record.key < b.record.key;
}
}  // namespace

sim::Task<Status> MergeStream::Prime() {
  for (size_t i = 0; i < inputs_.size(); ++i) {
    Record record;
    auto has = co_await inputs_[i]->Next(&record);
    if (!has.ok()) co_return has.status();
    if (*has) heap_.push_back(Head{std::move(record), i});
  }
  std::make_heap(heap_.begin(), heap_.end(),
                 [](const Head& a, const Head& b) { return HeadLess(b, a); });
  primed_ = true;
  co_return Status::OK();
}

sim::Task<Result<bool>> MergeStream::Next(Record* out) {
  if (!primed_) {
    Status primed = co_await Prime();
    if (!primed.ok()) co_return primed;
  }
  if (heap_.empty()) co_return false;
  auto cmp = [](const Head& a, const Head& b) { return HeadLess(b, a); };
  std::pop_heap(heap_.begin(), heap_.end(), cmp);
  Head head = std::move(heap_.back());
  heap_.pop_back();
  *out = std::move(head.record);
  Record refill;
  auto has = co_await inputs_[head.input]->Next(&refill);
  if (!has.ok()) co_return has.status();
  if (*has) {
    heap_.push_back(Head{std::move(refill), head.input});
    std::push_heap(heap_.begin(), heap_.end(), cmp);
  }
  co_return true;
}

sim::Task<> MergeStream::Done() {
  for (auto& input : inputs_) co_await input->Done();
}

sim::Task<Result<std::unique_ptr<SpillFile>>> WriteSortedRun(
    Spiller* spiller, std::string name, RecordSource* source) {
  auto created = spiller->Create(name);
  if (!created.ok()) co_return created.status();
  std::unique_ptr<SpillFile> file = std::move(*created);
  ByteRuns pending;
  Record record;
  while (true) {
    auto has = co_await source->Next(&record);
    if (!has.ok()) co_return has.status();
    if (!*has) break;
    SerializeRecord(record, &pending);
    if (pending.size() >= kMiB) {
      Status appended = co_await file->Append(std::move(pending));
      if (!appended.ok()) co_return appended;
      pending = ByteRuns{};
    }
  }
  if (!pending.empty()) {
    Status appended = co_await file->Append(std::move(pending));
    if (!appended.ok()) co_return appended;
  }
  Status closed = co_await file->Close();
  if (!closed.ok()) co_return closed;
  static obs::Counter* const runs_counter =
      obs::Registry::Default().counter("mapred.merge.runs_written");
  static obs::Histogram* const run_bytes_histogram =
      obs::Registry::Default().histogram("mapred.merge.run_bytes");
  runs_counter->Increment();
  run_bytes_histogram->Record(file->size());
  co_return file;
}

}  // namespace spongefiles::mapred
