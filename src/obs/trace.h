#ifndef SPONGEFILES_OBS_TRACE_H_
#define SPONGEFILES_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace spongefiles::obs {

// The tracing half of the observability subsystem: spans ("X" complete
// events) and instant events stamped with simulated time plus a
// monotonically increasing sequence number, exported as Chrome
// trace_event JSON so a run opens directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// Conventions (see DESIGN.md "Observability"):
//   pid  = node id (Perfetto renders one process lane per node)
//   tid  = task id (0 for node-level services: disk, sponge server, GC)
//   cat  = layer: "sponge" | "rpc" | "disk" | "net" | "dfs" | "mapred" |
//          "tracker" | "gc"
//   ts   = sim::Engine simulated time (already microseconds, the unit
//          trace_event expects)
// Every event carries args.seq, the global emission sequence number; two
// runs of the same deterministic simulation produce byte-identical files.
//
// Tracing is off by default and every recording call is a cheap
// early-return when disabled, so instrumentation can stay on hot paths.

// One span/instant argument. Numeric args are stored pre-rendered so the
// hot path does no allocation beyond the digits.
struct TraceArg {
  std::string key;
  std::string value;
  bool quoted = true;  // false: emit raw (numbers)

  static TraceArg Str(std::string key, std::string value) {
    return TraceArg{std::move(key), std::move(value), true};
  }
  static TraceArg Num(std::string key, uint64_t value) {
    return TraceArg{std::move(key), std::to_string(value), false};
  }
  static TraceArg Num(std::string key, int64_t value) {
    return TraceArg{std::move(key), std::to_string(value), false};
  }
};

using TraceArgs = std::vector<TraceArg>;

class Tracer;

// Sharded-engine capture hook (mirror of obs::g_metric_sink): when
// installed, every recording call offers the fully built event — minus its
// sequence number — to the sink. A worker lane captures it into a per-lane
// buffer (returns true, consuming *name/*args); the driver replays buffers
// in lane order at the window barrier via Tracer::EmitCaptured, which is
// where the global sequence number is assigned. On the driver the sink
// declines and the event is recorded inline.
using TraceSinkFn = bool (*)(Tracer* tracer, char phase, int64_t ts,
                             int64_t dur, uint64_t pid, uint64_t tid,
                             const char* category, std::string* name,
                             TraceArgs* args);
extern TraceSinkFn g_trace_sink;

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Drops all recorded events and resets the sequence counter (fresh run).
  void Clear();

  size_t event_count() const { return events_.size(); }

  // A span covering [ts, ts + dur]. Most callers use SpanGuard instead.
  void CompleteEvent(int64_t ts, int64_t dur, uint64_t pid, uint64_t tid,
                     const char* category, std::string name,
                     TraceArgs args = {});

  // A zero-duration point event (spill decisions, GC reclaims).
  void InstantEvent(int64_t ts, uint64_t pid, uint64_t tid,
                    const char* category, std::string name,
                    TraceArgs args = {});

  // Records an event previously captured by g_trace_sink, assigning its
  // sequence number now (barrier replay path; bypasses the sink).
  void EmitCaptured(char phase, int64_t ts, int64_t dur, uint64_t pid,
                    uint64_t tid, const char* category, std::string name,
                    TraceArgs args);

  // {"traceEvents":[...]} — the Chrome trace_event array format.
  std::string ToJson() const;

  Status WriteFile(const std::string& path) const;

  // Returns events matching `name` as (ts, dur) pairs, in emission order
  // (test support; instants have dur 0).
  std::vector<std::pair<int64_t, int64_t>> SpansNamed(
      const std::string& name) const;

  static Tracer& Default();

 private:
  struct Event {
    char phase;  // 'X' or 'i'
    int64_t ts;
    int64_t dur;
    uint64_t pid;
    uint64_t tid;
    const char* category;
    std::string name;
    TraceArgs args;
    uint64_t seq;
  };

  bool enabled_ = false;
  uint64_t next_seq_ = 0;
  std::vector<Event> events_;
};

// RAII span: records the clock at construction and emits a complete event
// at destruction. `Clock` is anything with `int64_t now() const` —
// sim::Engine in this repo (obs deliberately does not depend on sim).
// When the tracer is disabled the guard is inert and costs two branches.
template <typename Clock>
class SpanGuard {
 public:
  SpanGuard(Tracer* tracer, const Clock* clock, uint64_t pid, uint64_t tid,
            const char* category, std::string name)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        clock_(clock),
        pid_(pid),
        tid_(tid),
        category_(category) {
    if (tracer_ != nullptr) {
      name_ = std::move(name);
      start_ = clock_->now();
    }
  }

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  // Attaches an argument to the span (no-op when tracing is disabled).
  void Arg(std::string key, std::string value) {
    if (tracer_ != nullptr) {
      args_.push_back(TraceArg::Str(std::move(key), std::move(value)));
    }
  }
  void Arg(std::string key, uint64_t value) {
    if (tracer_ != nullptr) {
      args_.push_back(TraceArg::Num(std::move(key), value));
    }
  }

  ~SpanGuard() {
    if (tracer_ != nullptr) {
      tracer_->CompleteEvent(start_, clock_->now() - start_, pid_, tid_,
                             category_, std::move(name_), std::move(args_));
    }
  }

 private:
  Tracer* tracer_;
  const Clock* clock_;
  uint64_t pid_;
  uint64_t tid_;
  const char* category_;
  std::string name_;
  int64_t start_ = 0;
  TraceArgs args_;
};

}  // namespace spongefiles::obs

#endif  // SPONGEFILES_OBS_TRACE_H_
