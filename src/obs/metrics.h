#ifndef SPONGEFILES_OBS_METRICS_H_
#define SPONGEFILES_OBS_METRICS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"

namespace spongefiles::obs {

// The metrics half of the observability subsystem: a process-wide registry
// of named counters, gauges, histograms, and summaries, each optionally
// qualified by a small set of labels ({medium=remote-memory}, {op=read}).
// Instruments are cheap enough for simulator hot paths — recording is a
// few integer operations on a cached pointer; the string-keyed lookup
// happens once, at instrument-creation time. Snapshots serialize to JSON
// deterministically, sorted by (name, labels) — creation order is not used
// because under the sharded engine first-touch order can vary from run to
// run while the values themselves stay deterministic.
//
// Naming convention (see DESIGN.md "Observability"):
//   <layer>.<component>.<metric>   e.g. sponge.spill.bytes, cluster.disk.seeks
// with labels for dimensions whose cardinality is small and bounded.

// An ordered list of key=value qualifiers. Order is significant: the same
// pairs in a different order name a different instrument, so call sites
// should use one canonical order.
using Labels = std::vector<std::pair<std::string, std::string>>;

// ---------------------------------------------------------------------------
// Sharded-engine capture hooks. The conservative parallel engine (see
// DESIGN.md "Parallel engine") runs worker lanes whose metric updates must
// fold into the shared instruments in a deterministic order. When a sink is
// installed (sim/parallel.cc does so while an engine is sharded), every
// mutation first offers itself to the sink; a worker lane captures the op
// into a per-lane log (sink returns true) and the driver replays the logs
// in lane order at the window barrier via ApplyMetricOp. On the driver the
// sink declines (returns false) and the mutation applies inline. With no
// sink installed the cost is one pointer load and branch per update.
// ---------------------------------------------------------------------------
enum MetricOp : int {
  kMetricCounterInc = 0,
  kMetricGaugeSet = 1,
  kMetricGaugeAdd = 2,
  kMetricHistogramRecord = 3,
  kMetricSummaryAdd = 4,
};

using MetricSinkFn = bool (*)(void* instrument, int op, uint64_t u, int64_t i,
                              double d);
extern MetricSinkFn g_metric_sink;

// Applies one captured op to `instrument` (the barrier replay path; runs on
// the driver, where the installed sink declines and the normal inline
// mutation executes).
void ApplyMetricOp(void* instrument, int op, uint64_t u, int64_t i, double d);

// Serializes Registry::FindOrCreate while instruments may be created from
// worker threads (instrument creation is rare — first touch per site — so
// one coarse lock is fine). Null outside sharded runs.
extern void (*g_registry_lock)(bool acquire);

// Monotonically increasing event/byte counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    if (g_metric_sink != nullptr &&
        g_metric_sink(this, kMetricCounterInc, n, 0, 0.0)) {
      return;
    }
    value_ += n;
  }
  uint64_t value() const { return value_; }

 private:
  friend class Registry;
  uint64_t value_ = 0;
};

// A value that can move both ways (pool occupancy, queue depth). Tracks
// its high-water mark.
class Gauge {
 public:
  void Set(int64_t v) {
    if (g_metric_sink != nullptr &&
        g_metric_sink(this, kMetricGaugeSet, 0, v, 0.0)) {
      return;
    }
    value_ = v;
    if (value_ > max_) max_ = value_;
  }
  // Deltas are captured as deltas: on a worker lane the current value may
  // be stale until earlier lanes' logs replay, so resolving Set(value_ + d)
  // at capture time would fold in the wrong order.
  void Add(int64_t d) {
    if (g_metric_sink != nullptr &&
        g_metric_sink(this, kMetricGaugeAdd, 0, d, 0.0)) {
      return;
    }
    value_ += d;
    if (value_ > max_) max_ = value_;
  }
  void Sub(int64_t d) { Add(-d); }
  int64_t value() const { return value_; }
  int64_t max() const { return max_; }

 private:
  friend class Registry;
  int64_t value_ = 0;
  int64_t max_ = 0;
};

// HDR-style log-linear histogram over non-negative integer samples
// (bytes, microseconds). Values below 2^kLinearBits are recorded exactly;
// above that, each power-of-two range is split into 2^kLinearBits linear
// sub-buckets, bounding the relative error of any reconstructed value by
// 2^-kLinearBits (~1.6%). Memory is a few KB regardless of range.
class Histogram {
 public:
  static constexpr uint32_t kLinearBits = 6;  // 64 sub-buckets per octave

  void Record(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Approximate quantile (q in [0,1]): the representative value of the
  // bucket containing the q-th sample, clamped to [min, max]. Exact for
  // values < 2^kLinearBits.
  uint64_t Quantile(double q) const;

  // Non-empty (lower_bound, count) pairs in increasing value order.
  std::vector<std::pair<uint64_t, uint64_t>> NonEmptyBuckets() const;

  static uint32_t BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(uint32_t index);

 private:
  friend class Registry;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

// Streaming min/max/mean/count over doubles — the successor of the old
// common/stats.h Accumulator, now living with the rest of the telemetry
// instruments so there is a single summary implementation in the tree.
class Summary {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  }
  double sum() const { return sum_; }

 private:
  friend class Registry;
  size_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Owns every instrument. Lookup by (name, labels) returns a stable pointer
// valid for the registry's lifetime; repeated lookups return the same
// instrument. Requesting an existing name with a different instrument kind
// is a programming error and aborts.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* counter(std::string_view name, const Labels& labels = {});
  Gauge* gauge(std::string_view name, const Labels& labels = {});
  Histogram* histogram(std::string_view name, const Labels& labels = {});
  Summary* summary(std::string_view name, const Labels& labels = {});

  size_t size() const { return entries_.size(); }

  // Distinct label sets registered under `name` (cardinality audits).
  size_t CardinalityOf(std::string_view name) const;

  // Zeroes every instrument's value but keeps the instruments themselves,
  // so pointers cached by instrumentation sites stay valid across runs.
  void ResetValues();

  // Deterministic JSON snapshot, instruments sorted by (name, labels):
  // {"counters":[{"name":...,"labels":{...},"value":N}, ...],
  //  "gauges":[...], "histograms":[...], "summaries":[...]}
  std::string ToJson() const;

  Status WriteJsonFile(const std::string& path) const;

  // The process-wide registry the instrumentation in src/{cluster,sponge,
  // mapred} records into.
  static Registry& Default();

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kSummary };
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<Summary> summary;
  };

  Entry* FindOrCreate(std::string_view name, const Labels& labels, Kind kind);

  std::vector<std::unique_ptr<Entry>> entries_;  // creation order
  std::unordered_map<std::string, Entry*> index_;  // key: name + labels
};

}  // namespace spongefiles::obs

#endif  // SPONGEFILES_OBS_METRICS_H_
