#include "obs/trace.h"

#include <cstdio>

#include "obs/json.h"

namespace spongefiles::obs {

TraceSinkFn g_trace_sink = nullptr;

void Tracer::Clear() {
  events_.clear();
  next_seq_ = 0;
}

void Tracer::CompleteEvent(int64_t ts, int64_t dur, uint64_t pid, uint64_t tid,
                           const char* category, std::string name,
                           TraceArgs args) {
  if (!enabled_) return;
  if (g_trace_sink != nullptr &&
      g_trace_sink(this, 'X', ts, dur, pid, tid, category, &name, &args)) {
    return;
  }
  events_.push_back(Event{'X', ts, dur, pid, tid, category, std::move(name),
                          std::move(args), next_seq_++});
}

void Tracer::InstantEvent(int64_t ts, uint64_t pid, uint64_t tid,
                          const char* category, std::string name,
                          TraceArgs args) {
  if (!enabled_) return;
  if (g_trace_sink != nullptr &&
      g_trace_sink(this, 'i', ts, 0, pid, tid, category, &name, &args)) {
    return;
  }
  events_.push_back(Event{'i', ts, 0, pid, tid, category, std::move(name),
                          std::move(args), next_seq_++});
}

void Tracer::EmitCaptured(char phase, int64_t ts, int64_t dur, uint64_t pid,
                          uint64_t tid, const char* category, std::string name,
                          TraceArgs args) {
  events_.push_back(Event{phase, ts, dur, pid, tid, category, std::move(name),
                          std::move(args), next_seq_++});
}

std::string Tracer::ToJson() const {
  std::string out;
  out.reserve(events_.size() * 128 + 64);
  out.append("{\"traceEvents\":[\n");
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out.append(",\n");
    first = false;
    out.append("{\"name\":");
    AppendJsonEscaped(&out, e.name);
    out.append(",\"cat\":");
    AppendJsonEscaped(&out, e.category);
    out.append(",\"ph\":\"");
    out.push_back(e.phase);
    out.push_back('"');
    if (e.phase == 'i') out.append(",\"s\":\"t\"");  // thread-scoped instant
    out.append(",\"ts\":");
    AppendJsonInt(&out, e.ts);
    if (e.phase == 'X') {
      out.append(",\"dur\":");
      AppendJsonInt(&out, e.dur);
    }
    out.append(",\"pid\":");
    AppendJsonUint(&out, e.pid);
    out.append(",\"tid\":");
    AppendJsonUint(&out, e.tid);
    out.append(",\"args\":{\"seq\":");
    AppendJsonUint(&out, e.seq);
    for (const TraceArg& arg : e.args) {
      out.push_back(',');
      AppendJsonEscaped(&out, arg.key);
      out.push_back(':');
      if (arg.quoted) {
        AppendJsonEscaped(&out, arg.value);
      } else {
        out.append(arg.value);
      }
    }
    out.append("}}");
  }
  out.append("\n],\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

Status Tracer::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Internal("cannot open " + path);
  std::string json = ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) return Internal("short write to " + path);
  return Status::OK();
}

std::vector<std::pair<int64_t, int64_t>> Tracer::SpansNamed(
    const std::string& name) const {
  std::vector<std::pair<int64_t, int64_t>> out;
  for (const Event& e : events_) {
    if (e.name == name) out.emplace_back(e.ts, e.dur);
  }
  return out;
}

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

}  // namespace spongefiles::obs
