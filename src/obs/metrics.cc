#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "obs/json.h"

namespace spongefiles::obs {

MetricSinkFn g_metric_sink = nullptr;
void (*g_registry_lock)(bool acquire) = nullptr;

void ApplyMetricOp(void* instrument, int op, uint64_t u, int64_t i, double d) {
  // Runs on the driver, where the installed sink declines — the calls below
  // fall through to the inline mutation paths.
  switch (op) {
    case kMetricCounterInc:
      static_cast<Counter*>(instrument)->Increment(u);
      break;
    case kMetricGaugeSet:
      static_cast<Gauge*>(instrument)->Set(i);
      break;
    case kMetricGaugeAdd:
      static_cast<Gauge*>(instrument)->Add(i);
      break;
    case kMetricHistogramRecord:
      static_cast<Histogram*>(instrument)->Record(u);
      break;
    case kMetricSummaryAdd:
      static_cast<Summary*>(instrument)->Add(d);
      break;
  }
}

namespace {

constexpr uint32_t kSubBuckets = 1u << Histogram::kLinearBits;

// Canonical map key: name + '\0' + k '\0' v '\0' per label.
std::string InstrumentKey(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key.push_back('\0');
    key.append(k);
    key.push_back('\0');
    key.append(v);
  }
  return key;
}

void AppendLabels(std::string* out, const Labels& labels) {
  out->append("\"labels\":{");
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out->push_back(',');
    first = false;
    AppendJsonEscaped(out, k);
    out->push_back(':');
    AppendJsonEscaped(out, v);
  }
  out->push_back('}');
}

}  // namespace

uint32_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<uint32_t>(value);
  uint32_t msb = 63u - static_cast<uint32_t>(std::countl_zero(value));
  uint32_t octave = msb - kLinearBits + 1;
  uint32_t sub =
      static_cast<uint32_t>(value >> (msb - kLinearBits)) & (kSubBuckets - 1);
  return octave * kSubBuckets + sub;
}

uint64_t Histogram::BucketLowerBound(uint32_t index) {
  uint32_t octave = index / kSubBuckets;
  uint64_t sub = index % kSubBuckets;
  if (octave == 0) return sub;
  return (static_cast<uint64_t>(kSubBuckets) + sub) << (octave - 1);
}

void Histogram::Record(uint64_t value) {
  if (g_metric_sink != nullptr &&
      g_metric_sink(this, kMetricHistogramRecord, value, 0, 0.0)) {
    return;
  }
  uint32_t index = BucketIndex(value);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

uint64_t Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0) return min();
  if (q >= 1) return max();
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (uint32_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      uint32_t octave = i / kSubBuckets;
      uint64_t width = octave == 0 ? 1 : (1ull << (octave - 1));
      uint64_t mid = BucketLowerBound(i) + (width >> 1);
      return std::clamp(mid, min(), max());
    }
  }
  return max();
}

std::vector<std::pair<uint64_t, uint64_t>> Histogram::NonEmptyBuckets() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (uint32_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) out.emplace_back(BucketLowerBound(i), buckets_[i]);
  }
  return out;
}

void Summary::Add(double x) {
  if (g_metric_sink != nullptr &&
      g_metric_sink(this, kMetricSummaryAdd, 0, 0, x)) {
    return;
  }
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

Registry::Entry* Registry::FindOrCreate(std::string_view name,
                                        const Labels& labels, Kind kind) {
  // Creation is first-touch-per-site rare; worker threads of a sharded
  // engine serialize through the hook, everyone else pays a null check.
  struct LockGuard {
    LockGuard() {
      if (g_registry_lock != nullptr) g_registry_lock(true);
    }
    ~LockGuard() {
      if (g_registry_lock != nullptr) g_registry_lock(false);
    }
  } guard;
  std::string key = InstrumentKey(name, labels);
  auto it = index_.find(key);
  if (it != index_.end()) {
    SPONGE_CHECK(it->second->kind == kind);
    return it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->labels = labels;
  entry->kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
    case Kind::kSummary:
      entry->summary = std::make_unique<Summary>();
      break;
  }
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  index_.emplace(std::move(key), raw);
  return raw;
}

Counter* Registry::counter(std::string_view name, const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kCounter)->counter.get();
}

Gauge* Registry::gauge(std::string_view name, const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kGauge)->gauge.get();
}

Histogram* Registry::histogram(std::string_view name, const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kHistogram)->histogram.get();
}

Summary* Registry::summary(std::string_view name, const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kSummary)->summary.get();
}

size_t Registry::CardinalityOf(std::string_view name) const {
  size_t n = 0;
  for (const auto& entry : entries_) {
    if (entry->name == name) ++n;
  }
  return n;
}

void Registry::ResetValues() {
  for (auto& entry : entries_) {
    switch (entry->kind) {
      case Kind::kCounter:
        entry->counter->value_ = 0;
        break;
      case Kind::kGauge:
        entry->gauge->value_ = 0;
        entry->gauge->max_ = 0;
        break;
      case Kind::kHistogram:
        *entry->histogram = Histogram();
        break;
      case Kind::kSummary:
        *entry->summary = Summary();
        break;
    }
  }
}

std::string Registry::ToJson() const {
  // Sort by (name, labels): creation order is deterministic only on the
  // unsharded engine, and the snapshot must be byte-identical across the
  // sequential and threaded sharded drivers.
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& entry : entries_) sorted.push_back(entry.get());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Entry* a, const Entry* b) {
                     if (a->name != b->name) return a->name < b->name;
                     return a->labels < b->labels;
                   });
  std::string out;
  out.reserve(4096);
  auto append_section = [&](const char* section, Kind kind) {
    out.push_back('"');
    out.append(section);
    out.append("\":[");
    bool first = true;
    for (const Entry* entry : sorted) {
      if (entry->kind != kind) continue;
      if (!first) out.push_back(',');
      first = false;
      out.append("{\"name\":");
      AppendJsonEscaped(&out, entry->name);
      out.push_back(',');
      AppendLabels(&out, entry->labels);
      switch (kind) {
        case Kind::kCounter:
          out.append(",\"value\":");
          AppendJsonUint(&out, entry->counter->value());
          break;
        case Kind::kGauge:
          out.append(",\"value\":");
          AppendJsonInt(&out, entry->gauge->value());
          out.append(",\"max\":");
          AppendJsonInt(&out, entry->gauge->max());
          break;
        case Kind::kHistogram: {
          const Histogram& h = *entry->histogram;
          out.append(",\"count\":");
          AppendJsonUint(&out, h.count());
          out.append(",\"sum\":");
          AppendJsonUint(&out, h.sum());
          out.append(",\"min\":");
          AppendJsonUint(&out, h.min());
          out.append(",\"max\":");
          AppendJsonUint(&out, h.max());
          out.append(",\"p50\":");
          AppendJsonUint(&out, h.Quantile(0.50));
          out.append(",\"p90\":");
          AppendJsonUint(&out, h.Quantile(0.90));
          out.append(",\"p99\":");
          AppendJsonUint(&out, h.Quantile(0.99));
          out.append(",\"buckets\":[");
          bool first_bucket = true;
          for (const auto& [lower, count] : h.NonEmptyBuckets()) {
            if (!first_bucket) out.push_back(',');
            first_bucket = false;
            out.push_back('[');
            AppendJsonUint(&out, lower);
            out.push_back(',');
            AppendJsonUint(&out, count);
            out.push_back(']');
          }
          out.push_back(']');
          break;
        }
        case Kind::kSummary: {
          const Summary& s = *entry->summary;
          out.append(",\"count\":");
          AppendJsonUint(&out, s.count());
          out.append(",\"min\":");
          AppendJsonDouble(&out, s.min());
          out.append(",\"max\":");
          AppendJsonDouble(&out, s.max());
          out.append(",\"mean\":");
          AppendJsonDouble(&out, s.mean());
          out.append(",\"sum\":");
          AppendJsonDouble(&out, s.sum());
          break;
        }
      }
      out.push_back('}');
    }
    out.push_back(']');
  };
  out.push_back('{');
  append_section("counters", Kind::kCounter);
  out.push_back(',');
  append_section("gauges", Kind::kGauge);
  out.push_back(',');
  append_section("histograms", Kind::kHistogram);
  out.push_back(',');
  append_section("summaries", Kind::kSummary);
  out.append("}\n");
  return out;
}

Status Registry::WriteJsonFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Internal("cannot open " + path);
  std::string json = ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) return Internal("short write to " + path);
  return Status::OK();
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace spongefiles::obs
