#ifndef SPONGEFILES_OBS_JSON_H_
#define SPONGEFILES_OBS_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace spongefiles::obs {

// Minimal JSON emission helpers shared by the metrics and trace writers.
// Output is fully deterministic: integers are emitted exactly, doubles via
// %.17g (round-trippable, locale-independent for the values we emit), and
// strings with standard escaping.

inline void AppendJsonEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

inline void AppendJsonUint(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

inline void AppendJsonInt(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out->append(buf);
}

inline void AppendJsonDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

}  // namespace spongefiles::obs

#endif  // SPONGEFILES_OBS_JSON_H_
