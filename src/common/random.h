#ifndef SPONGEFILES_COMMON_RANDOM_H_
#define SPONGEFILES_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace spongefiles {

// Deterministic 64-bit PRNG (splitmix64 seeding + xoshiro256**). All
// randomness in the simulator flows through explicitly seeded Rng instances
// so every experiment is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      s = x ^ (x >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Requires bound > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    return Next() % bound;
  }

  // Uniform in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Standard normal via Box-Muller.
  double Normal() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0) u1 = 1e-18;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // Lognormal with given parameters of the underlying normal.
  double LogNormal(double mu, double sigma) {
    return std::exp(mu + sigma * Normal());
  }

  // Exponential with the given mean.
  double Exponential(double mean) {
    double u = NextDouble();
    if (u <= 0) u = 1e-18;
    return -mean * std::log(u);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

// Samples ranks from a Zipf(s) distribution over {0, ..., n-1} using a
// precomputed inverse CDF table. Rank 0 is the most popular item.
class ZipfSampler {
 public:
  // Requires n > 0. `s` is the Zipf exponent (s = 1.0 is classic Zipf).
  ZipfSampler(size_t n, double s);

  size_t Sample(Rng& rng) const;

  // Probability mass of rank `k`.
  double Pmf(size_t k) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

}  // namespace spongefiles

#endif  // SPONGEFILES_COMMON_RANDOM_H_
