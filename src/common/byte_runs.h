#ifndef SPONGEFILES_COMMON_BYTE_RUNS_H_
#define SPONGEFILES_COMMON_BYTE_RUNS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/slice.h"

namespace spongefiles {

// A logical byte sequence stored as a list of runs. Two run kinds exist:
//
//  * literal runs carry real bytes (used for record headers, keys, and all
//    byte-exactness tests), and
//  * zero runs carry only a length (used to represent bulk payloads in the
//    macro benchmarks, where a 10 GB spill must not occupy 10 GB of RAM).
//
// All size accounting in the library uses the *logical* size, so capacities,
// chunk counts and transfer times are identical to a fully-materialized run.
class ByteRuns {
 public:
  ByteRuns() = default;

  // ByteRuns is copyable (chunks get handed between buffers) and movable.
  ByteRuns(const ByteRuns&) = default;
  ByteRuns& operator=(const ByteRuns&) = default;
  ByteRuns(ByteRuns&&) = default;
  ByteRuns& operator=(ByteRuns&&) = default;

  // Appends real bytes.
  void AppendLiteral(Slice data);

  // Appends `n` logical zero bytes without materializing them.
  void AppendZeros(uint64_t n);

  // Appends all of `other`.
  void Append(const ByteRuns& other);

  // Copies logical bytes [offset, offset + n) into `out`. Zero runs read
  // back as 0x00. Requires offset + n <= size().
  void Read(uint64_t offset, uint64_t n, uint8_t* out) const;

  // Splits off and returns the first `n` logical bytes, leaving the
  // remainder in place. Requires n <= size().
  ByteRuns SplitPrefix(uint64_t n);

  // Copies logical bytes [offset, offset + n) into a new ByteRuns,
  // preserving run structure (zero runs stay unmaterialized). Requires
  // offset + n <= size().
  ByteRuns SubRange(uint64_t offset, uint64_t n) const;

  // Invokes `fn(logical_offset, data, length)` for every literal run,
  // allowing in-place transformation of the real bytes (chunk encryption).
  // Zero runs are not visited; their logical offsets are skipped.
  void TransformLiterals(
      const std::function<void(uint64_t, uint8_t*, uint64_t)>& fn);

  // FNV-1a 64 over the logical content. Zero runs are folded in O(log n)
  // per run, so checksumming an unmaterialized multi-gigabyte payload is
  // cheap; the digest still equals Checksum::Of over ToBytes().
  uint64_t Checksum64() const;

  // Fault injection (bit rot): flips the byte at logical `offset`. A
  // literal byte is xor-flipped in place; a zero run is split around a new
  // one-byte literal. Requires offset < size(). The logical size is
  // unchanged, the content — and hence Checksum64() — is not.
  void CorruptByte(uint64_t offset);

  void Clear();

  // Logical size in bytes.
  uint64_t size() const { return size_; }

  // Physical bytes actually resident in memory (literal runs only).
  uint64_t physical_size() const { return physical_size_; }

  bool empty() const { return size_ == 0; }

  // Materializes the whole logical content. Intended for tests.
  std::vector<uint8_t> ToBytes() const;

 private:
  struct Run {
    // Literal payload; empty means a zero run of `length` bytes.
    std::vector<uint8_t> bytes;
    uint64_t length = 0;
    bool is_literal() const { return !bytes.empty() || length == 0; }
  };

  std::vector<Run> runs_;
  uint64_t size_ = 0;
  uint64_t physical_size_ = 0;
};

}  // namespace spongefiles

#endif  // SPONGEFILES_COMMON_BYTE_RUNS_H_
