#ifndef SPONGEFILES_COMMON_BYTE_RUNS_H_
#define SPONGEFILES_COMMON_BYTE_RUNS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/slice.h"

namespace spongefiles {

// A logical byte sequence stored as a list of runs. Two run kinds exist:
//
//  * literal runs carry real bytes (used for record headers, keys, and all
//    byte-exactness tests), and
//  * zero runs carry only a length (used to represent bulk payloads in the
//    macro benchmarks, where a 10 GB spill must not occupy 10 GB of RAM).
//
// All size accounting in the library uses the *logical* size, so capacities,
// chunk counts and transfer times are identical to a fully-materialized run.
//
// Zero-copy data plane: literal bytes live in ref-counted buffers shared
// between handles. Copying a ByteRuns, Append(other), SubRange and
// SplitPrefix are O(runs) pointer operations that never touch the payload;
// the byte movement they used to perform remains *simulated* (callers still
// charge transfer time), it just no longer happens on the host. The only
// mutating entry points into literal bytes — TransformLiterals and
// CorruptByte — copy-on-write when the underlying buffer is shared, so
// mutating one handle can never change the bytes another handle observes.
//
// Ownership rules (see DESIGN.md "Performance engineering"):
//  * a buffer's existing bytes are immutable while more than one run
//    references the buffer; in-place mutation requires sole ownership,
//  * a buffer may *grow* at the end even while shared (appended bytes are
//    beyond every existing run's view, so no observable range changes),
//  * physical_size() counts the literal bytes this handle references;
//    buffers shared between handles are counted once per handle.
class ByteRuns {
 public:
  ByteRuns() = default;

  // ByteRuns is copyable (chunks get handed between buffers) and movable.
  // A copy shares the literal buffers (O(runs)).
  ByteRuns(const ByteRuns& other);
  ByteRuns& operator=(const ByteRuns& other);
  ByteRuns(ByteRuns&&) = default;
  ByteRuns& operator=(ByteRuns&&) = default;

  // Appends real bytes.
  void AppendLiteral(Slice data);

  // Appends `n` logical zero bytes without materializing them.
  void AppendZeros(uint64_t n);

  // Appends all of `other` by sharing its buffers.
  void Append(const ByteRuns& other);

  // Copies logical bytes [offset, offset + n) into `out`. Zero runs read
  // back as 0x00. Requires offset + n <= size().
  void Read(uint64_t offset, uint64_t n, uint8_t* out) const;

  // Splits off and returns the first `n` logical bytes, leaving the
  // remainder in place. Requires n <= size(). A run cut in two ends up
  // shared between the prefix and the remainder.
  ByteRuns SplitPrefix(uint64_t n);

  // Drops the first `n` logical bytes in place: SplitPrefix for consumers
  // that do not want the prefix. O(run descriptors), no byte is touched.
  // Requires n <= size().
  void TrimPrefix(uint64_t n);

  // Returns logical bytes [offset, offset + n) as a new ByteRuns sharing
  // this handle's buffers (zero runs stay unmaterialized). Requires
  // offset + n <= size().
  ByteRuns SubRange(uint64_t offset, uint64_t n) const;

  // Returns a handle with the same logical content sharing NOTHING with
  // this one: literal runs are copied into fresh exactly-sized buffers;
  // zero runs stay unmaterialized. Used where a payload crosses a shard
  // lane boundary (sharded engine): shared buffers may grow under their
  // original owner, and the checksum memo is mutable, so cross-lane
  // aliasing would be a data race. The memoized checksum carries over —
  // the content is identical.
  ByteRuns Detached() const;

  // Invokes `fn(logical_offset, data, length)` for every literal run,
  // allowing in-place transformation of the real bytes (chunk encryption).
  // Zero runs are not visited; their logical offsets are skipped. Shared
  // buffers are copied first (copy-on-write), so other handles keep the
  // untransformed bytes.
  void TransformLiterals(
      const std::function<void(uint64_t, uint8_t*, uint64_t)>& fn);

  // FNV-1a 64 over the logical content. Zero runs are folded in O(log n)
  // per run, so checksumming an unmaterialized multi-gigabyte payload is
  // cheap; the digest still equals Checksum::Of over ToBytes(). The digest
  // is memoized per handle and rides along on copies; any mutation
  // invalidates it.
  uint64_t Checksum64() const;

  // Fault injection (bit rot): flips the byte at logical `offset`. A
  // solely-owned literal byte is xor-flipped in place; a shared literal
  // run is copied-on-write first (handles holding earlier reads keep the
  // pristine bytes); a zero run is split around a new one-byte literal.
  // Requires offset < size(). The logical size is unchanged, the content —
  // and hence Checksum64() — is not.
  void CorruptByte(uint64_t offset);

  void Clear();

  // Logical size in bytes.
  uint64_t size() const { return size_; }

  // Literal bytes this handle references (zero runs excluded). Shared
  // buffers count once per referencing handle; a split or sub-range pair
  // reports the bytes each side can see, not the (single) backing
  // allocation.
  uint64_t physical_size() const { return physical_size_; }

  bool empty() const { return size_ == 0; }

  // Materializes the whole logical content. Intended for tests.
  std::vector<uint8_t> ToBytes() const;

  // Streaming front-to-back consumer. Unlike Read(), which rescans the run
  // list from the start on every call, a Cursor remembers which run it is
  // in, so a parse loop over a many-run sequence is O(1) amortized per run
  // — and Skip() never materializes the bytes it passes over (skipping a
  // gigabyte zero run costs nothing). Any mutation of the underlying
  // ByteRuns invalidates the cursor; construct a fresh one after feeding
  // more data.
  class Cursor {
   public:
    explicit Cursor(const ByteRuns* runs) : runs_(runs) {}

    // Bytes between the cursor and the end of the sequence.
    uint64_t available() const { return runs_->size() - position_; }

    // Logical bytes consumed so far (== the Skip() total).
    uint64_t position() const { return position_; }

    // Copies the `n` bytes at the cursor into `out` without consuming them
    // (n <= available()).
    void Peek(uint64_t n, uint8_t* out) const;

    // Consumes `n` bytes (n <= available()).
    void Skip(uint64_t n);

   private:
    const ByteRuns* runs_;
    size_t run_index_ = 0;
    uint64_t run_offset_ = 0;  // consumed within runs_[run_index_]
    uint64_t position_ = 0;
  };

 private:
  using Buffer = std::vector<uint8_t>;
  using BufferRef = std::shared_ptr<Buffer>;

  struct Run {
    // Shared literal storage; null means a zero run of `length` bytes.
    // Literal runs view buffer bytes [offset, offset + length).
    BufferRef buffer;
    uint64_t offset = 0;
    uint64_t length = 0;

    bool is_literal() const { return buffer != nullptr; }
    const uint8_t* data() const { return buffer->data() + offset; }
    uint8_t* mutable_data() { return buffer->data() + offset; }
  };

  // Ensures runs_[i] solely owns its bytes (copy-on-write) and returns it.
  Run& MutableRun(size_t i);

  void InvalidateChecksum() { checksum_valid_ = false; }

  std::vector<Run> runs_;
  uint64_t size_ = 0;
  uint64_t physical_size_ = 0;
  // Memoized Checksum64 (content-derived, so copies may share it).
  mutable uint64_t checksum_ = 0;
  mutable bool checksum_valid_ = false;
};

}  // namespace spongefiles

#endif  // SPONGEFILES_COMMON_BYTE_RUNS_H_
