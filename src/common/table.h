#ifndef SPONGEFILES_COMMON_TABLE_H_
#define SPONGEFILES_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace spongefiles {

// A minimal ASCII table printer used by the benchmark harnesses to emit
// paper-style tables on stdout.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Renders the table with a header separator, columns padded to the widest
  // cell in each column.
  std::string ToString() const;

  // Convenience: renders and prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace spongefiles

#endif  // SPONGEFILES_COMMON_TABLE_H_
