#ifndef SPONGEFILES_COMMON_CRYPTO_H_
#define SPONGEFILES_COMMON_CRYPTO_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/byte_runs.h"

namespace spongefiles {

// A small symmetric stream cipher (XTEA in counter mode) for the paper's
// access-control story (section 3.1.4): once a chunk sits in another
// machine's sponge pool anyone on the cluster can map it, so tasks that
// care encrypt their chunks before storing them.
//
// This is NOT a vetted cryptographic implementation — it exists so the
// encryption code path (key handling, per-chunk nonces, the CPU cost of
// the transform) is real and testable in the reproduction.
class XteaCtr {
 public:
  using Key = std::array<uint32_t, 4>;

  explicit XteaCtr(const Key& key) : key_(key) {}

  // XORs the keystream for (nonce, starting counter 0) over `data` in
  // place. Applying it twice with the same nonce restores the input.
  void Apply(uint64_t nonce, uint8_t* data, size_t size) const;

  // Encrypts/decrypts the literal runs of `runs` in place. Zero-filler
  // runs (the synthetic stand-in for bulk payload bytes; see DESIGN.md)
  // keep their representation — their transform cost is charged by the
  // caller, while all real bytes are genuinely transformed.
  void ApplyToLiterals(uint64_t nonce, ByteRuns* runs) const;

  // Derives a key from a passphrase (FNV-based KDF stand-in).
  static Key DeriveKey(const std::string& passphrase);

 private:
  // One XTEA block encryption (64 rounds' worth of 32 cycles).
  uint64_t EncryptBlock(uint64_t block) const;

  Key key_;
};

}  // namespace spongefiles

#endif  // SPONGEFILES_COMMON_CRYPTO_H_
