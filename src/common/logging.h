#ifndef SPONGEFILES_COMMON_LOGGING_H_
#define SPONGEFILES_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace spongefiles {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global log threshold; messages below it are discarded. Benchmarks raise it
// to kWarning so simulation traces stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Discards the streamed expression entirely.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define SPONGE_LOG(level)                                                  \
  (static_cast<int>(::spongefiles::LogLevel::k##level) <                   \
   static_cast<int>(::spongefiles::GetLogLevel()))                         \
      ? (void)0                                                            \
      : (void)::spongefiles::internal_logging::LogMessage(                 \
            ::spongefiles::LogLevel::k##level, __FILE__, __LINE__)         \
            .stream()

#define SPONGE_CHECK(cond)                                                 \
  if (!(cond))                                                             \
  ::spongefiles::internal_logging::CheckFailure(#cond, __FILE__, __LINE__) \
      .stream()

namespace internal_logging {

class CheckFailure {
 public:
  CheckFailure(const char* cond, const char* file, int line);
  [[noreturn]] ~CheckFailure();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace spongefiles

#endif  // SPONGEFILES_COMMON_LOGGING_H_
