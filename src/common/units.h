#ifndef SPONGEFILES_COMMON_UNITS_H_
#define SPONGEFILES_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace spongefiles {

// Byte-size helpers. All capacities in the library are in bytes (uint64_t).
inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

constexpr uint64_t KiB(uint64_t n) { return n * kKiB; }
constexpr uint64_t MiB(uint64_t n) { return n * kMiB; }
constexpr uint64_t GiB(uint64_t n) { return n * kGiB; }

// Renders a byte count as a short human-readable string ("10.3 GB").
std::string FormatBytes(uint64_t bytes);

// Simulated time. The simulator clock counts microseconds from time zero.
// Durations are signed so arithmetic on deadlines behaves naturally, but a
// negative delay is a bug.
using SimTime = int64_t;   // microseconds since simulation start
using Duration = int64_t;  // microseconds

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;

constexpr Duration Micros(int64_t n) { return n; }
constexpr Duration Millis(int64_t n) { return n * kMillisecond; }
constexpr Duration Seconds(double n) {
  return static_cast<Duration>(n * kSecond);
}
constexpr Duration Minutes(double n) {
  return static_cast<Duration>(n * kMinute);
}

constexpr double ToSeconds(Duration d) {
  return static_cast<double>(d) / kSecond;
}
constexpr double ToMillis(Duration d) {
  return static_cast<double>(d) / kMillisecond;
}

// Renders a duration as a short human-readable string ("1.25 s", "174 ms").
std::string FormatDuration(Duration d);

// Time to move `bytes` at `bytes_per_second`, rounded up to 1 us.
Duration TransferTime(uint64_t bytes, double bytes_per_second);

}  // namespace spongefiles

#endif  // SPONGEFILES_COMMON_UNITS_H_
