#ifndef SPONGEFILES_COMMON_STATS_H_
#define SPONGEFILES_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace spongefiles {

// Descriptive statistics used by the skew analysis (Figure 1) and the
// experiment harnesses.

double Mean(const std::vector<double>& xs);
double Variance(const std::vector<double>& xs);  // population variance
double StdDev(const std::vector<double>& xs);

// The unbiased sample skewness estimator G1 used by the paper's Figure 1(b):
//   g1 = m3 / m2^{3/2},  G1 = g1 * sqrt(n (n-1)) / (n - 2)
// Returns 0 for n < 3 or zero variance.
double UnbiasedSkewness(const std::vector<double>& xs);

// Quantile by linear interpolation over the sorted sample. q in [0, 1].
double Quantile(std::vector<double> xs, double q);

// Quantiles over an already-sorted sample (no copy).
double QuantileSorted(const std::vector<double>& sorted, double q);

// A point on an empirical CDF: fraction of samples <= value.
struct CdfPoint {
  double value = 0;
  double fraction = 0;
};

// Builds an empirical CDF reduced to at most `max_points` points (always
// including the min and max).
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> xs,
                                   size_t max_points = 64);

// For streaming min/max/mean/count accumulation use obs::Summary
// (obs/metrics.h) — the single summary implementation in the tree.

}  // namespace spongefiles

#endif  // SPONGEFILES_COMMON_STATS_H_
