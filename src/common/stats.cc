#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace spongefiles {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double mean = Mean(xs);
  double sum = 0;
  for (double x : xs) sum += (x - mean) * (x - mean);
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double UnbiasedSkewness(const std::vector<double>& xs) {
  const size_t n = xs.size();
  if (n < 3) return 0;
  double mean = Mean(xs);
  double m2 = 0;
  double m3 = 0;
  for (double x : xs) {
    double d = x - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 <= 0) return 0;
  double g1 = m3 / std::pow(m2, 1.5);
  double dn = static_cast<double>(n);
  return g1 * std::sqrt(dn * (dn - 1.0)) / (dn - 2.0);
}

double QuantileSorted(const std::vector<double>& sorted, double q) {
  assert(!sorted.empty());
  if (q <= 0) return sorted.front();
  if (q >= 1) return sorted.back();
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1 - frac) + sorted[lo + 1] * frac;
}

double Quantile(std::vector<double> xs, double q) {
  assert(!xs.empty());
  std::sort(xs.begin(), xs.end());
  return QuantileSorted(xs, q);
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> xs,
                                   size_t max_points) {
  std::vector<CdfPoint> out;
  if (xs.empty()) return out;
  std::sort(xs.begin(), xs.end());
  const size_t n = xs.size();
  size_t points = std::min(max_points, n);
  out.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    // Pick evenly-spaced sample indices, always ending at the max.
    size_t idx = (points == 1) ? n - 1 : i * (n - 1) / (points - 1);
    out.push_back({xs[idx], static_cast<double>(idx + 1) /
                                static_cast<double>(n)});
  }
  return out;
}

}  // namespace spongefiles
