#include "common/table.h"

#include <cstdarg>
#include <cstdio>

namespace spongefiles {

std::string AsciiTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string sep = "+";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + render_row(header_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

void AsciiTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace spongefiles
