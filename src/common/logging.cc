#include "common/logging.h"

namespace spongefiles {

namespace {
LogLevel g_log_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::string msg = stream_.str();
  std::fprintf(stderr, "%s\n", msg.c_str());
  (void)level_;
}

CheckFailure::CheckFailure(const char* cond, const char* file, int line) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << cond << " ";
}

CheckFailure::~CheckFailure() {
  std::string msg = stream_.str();
  std::fprintf(stderr, "%s\n", msg.c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace spongefiles
