#include "common/crypto.h"

#include <cstring>
#include <string>

namespace spongefiles {

namespace {
constexpr uint32_t kDelta = 0x9e3779b9;
constexpr int kRounds = 32;
}  // namespace

uint64_t XteaCtr::EncryptBlock(uint64_t block) const {
  uint32_t v0 = static_cast<uint32_t>(block);
  uint32_t v1 = static_cast<uint32_t>(block >> 32);
  uint32_t sum = 0;
  for (int i = 0; i < kRounds; ++i) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key_[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key_[(sum >> 11) & 3]);
  }
  return (static_cast<uint64_t>(v1) << 32) | v0;
}

void XteaCtr::Apply(uint64_t nonce, uint8_t* data, size_t size) const {
  uint64_t counter = 0;
  size_t offset = 0;
  while (offset < size) {
    uint64_t keystream = EncryptBlock(nonce ^ counter);
    ++counter;
    size_t n = std::min<size_t>(8, size - offset);
    uint8_t bytes[8];
    std::memcpy(bytes, &keystream, 8);
    for (size_t i = 0; i < n; ++i) data[offset + i] ^= bytes[i];
    offset += n;
  }
}

void XteaCtr::ApplyToLiterals(uint64_t nonce, ByteRuns* runs) const {
  runs->TransformLiterals(
      [this, nonce](uint64_t offset, uint8_t* data, uint64_t len) {
        // Independent keystream per (nonce, logical offset) so the
        // transform is position-stable regardless of run structure.
        // Offsets are byte-granular, so fold them into the nonce.
        Apply(nonce ^ (offset * 0x9e3779b97f4a7c15ull), data, len);
      });
}

XteaCtr::Key XteaCtr::DeriveKey(const std::string& passphrase) {
  Key key{};
  uint64_t h = 14695981039346656037ull;
  for (size_t round = 0; round < 4; ++round) {
    for (char c : passphrase) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
    h ^= round * 0x9e3779b97f4a7c15ull;
    h *= 1099511628211ull;
    key[round] = static_cast<uint32_t>(h >> 16);
  }
  return key;
}

}  // namespace spongefiles
