#ifndef SPONGEFILES_COMMON_CHECKSUM_H_
#define SPONGEFILES_COMMON_CHECKSUM_H_

#include <cstdint>

#include "common/slice.h"

namespace spongefiles {

// Incremental FNV-1a 64-bit hash. Used by tests to verify that data read
// back from a SpongeFile is byte-identical to what was written, without
// retaining the full payload.
class Checksum {
 public:
  Checksum() = default;

  void Update(Slice data) {
    for (size_t i = 0; i < data.size(); ++i) {
      hash_ ^= data[i];
      hash_ *= kPrime;
    }
  }

  // Folds `n` zero bytes into the hash (matches Update over n 0x00 bytes).
  void UpdateZeros(uint64_t n) {
    for (uint64_t i = 0; i < n; ++i) {
      // hash_ ^= 0 is a no-op.
      hash_ *= kPrime;
    }
  }

  uint64_t digest() const { return hash_; }

  static uint64_t Of(Slice data) {
    Checksum c;
    c.Update(data);
    return c.digest();
  }

 private:
  static constexpr uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t hash_ = kOffsetBasis;
};

}  // namespace spongefiles

#endif  // SPONGEFILES_COMMON_CHECKSUM_H_
