#ifndef SPONGEFILES_COMMON_CHECKSUM_H_
#define SPONGEFILES_COMMON_CHECKSUM_H_

#include <cstdint>

#include "common/slice.h"

namespace spongefiles {

// Incremental FNV-1a 64-bit hash. Used to verify that data read back from
// a SpongeFile is byte-identical to what was written, without retaining
// the full payload: tests checksum whole files, and the sponge layer
// checksums every stored chunk for end-to-end integrity.
class Checksum {
 public:
  Checksum() = default;

  void Update(Slice data) {
    for (size_t i = 0; i < data.size(); ++i) {
      hash_ ^= data[i];
      hash_ *= kPrime;
    }
  }

  // Folds `n` zero bytes into the hash (matches Update over n 0x00 bytes).
  // Each zero byte only multiplies by kPrime (xor with 0 is a no-op), so
  // the whole run collapses to hash *= kPrime^n, computed in O(log n) —
  // checksumming a multi-gigabyte unmaterialized zero run must not cost a
  // multiplication per logical byte.
  void UpdateZeros(uint64_t n) {
    uint64_t factor = 1;
    uint64_t base = kPrime;
    while (n > 0) {
      if (n & 1) factor *= base;
      base *= base;
      n >>= 1;
    }
    hash_ *= factor;
  }

  uint64_t digest() const { return hash_; }

  static uint64_t Of(Slice data) {
    Checksum c;
    c.Update(data);
    return c.digest();
  }

 private:
  static constexpr uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t hash_ = kOffsetBasis;
};

}  // namespace spongefiles

#endif  // SPONGEFILES_COMMON_CHECKSUM_H_
