#include "common/byte_runs.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/checksum.h"

namespace spongefiles {

namespace {
// A zero run is represented as an empty `bytes` vector with length > 0.
// Literal runs with length 0 never appear in runs_.
constexpr uint64_t kMergeLiteralThreshold = 64 * 1024;
}  // namespace

void ByteRuns::AppendLiteral(Slice data) {
  if (data.empty()) return;
  size_ += data.size();
  physical_size_ += data.size();
  // Merge small literal appends into the previous literal run to keep the
  // run list short when callers write record-at-a-time.
  if (!runs_.empty() && runs_.back().is_literal() &&
      runs_.back().bytes.size() < kMergeLiteralThreshold) {
    Run& last = runs_.back();
    last.bytes.insert(last.bytes.end(), data.data(),
                      data.data() + data.size());
    last.length = last.bytes.size();
    return;
  }
  Run run;
  run.bytes.assign(data.data(), data.data() + data.size());
  run.length = data.size();
  runs_.push_back(std::move(run));
}

void ByteRuns::AppendZeros(uint64_t n) {
  if (n == 0) return;
  size_ += n;
  if (!runs_.empty() && !runs_.back().is_literal()) {
    runs_.back().length += n;
    return;
  }
  Run run;
  run.length = n;
  runs_.push_back(std::move(run));
}

void ByteRuns::Append(const ByteRuns& other) {
  for (const Run& run : other.runs_) {
    if (run.is_literal()) {
      AppendLiteral(Slice(run.bytes));
    } else {
      AppendZeros(run.length);
    }
  }
}

void ByteRuns::Read(uint64_t offset, uint64_t n, uint8_t* out) const {
  assert(offset + n <= size_);
  uint64_t run_start = 0;
  size_t i = 0;
  // Skip to the run containing `offset`.
  while (i < runs_.size() && run_start + runs_[i].length <= offset) {
    run_start += runs_[i].length;
    ++i;
  }
  uint64_t produced = 0;
  while (produced < n) {
    assert(i < runs_.size());
    const Run& run = runs_[i];
    uint64_t in_run_offset = offset + produced - run_start;
    uint64_t take = std::min<uint64_t>(run.length - in_run_offset,
                                       n - produced);
    if (run.is_literal()) {
      std::memcpy(out + produced, run.bytes.data() + in_run_offset, take);
    } else {
      std::memset(out + produced, 0, take);
    }
    produced += take;
    run_start += run.length;
    ++i;
  }
}

ByteRuns ByteRuns::SplitPrefix(uint64_t n) {
  assert(n <= size_);
  ByteRuns prefix;
  if (n == 0) return prefix;
  std::vector<Run> remainder;
  uint64_t taken = 0;
  for (size_t i = 0; i < runs_.size(); ++i) {
    Run& run = runs_[i];
    if (taken >= n) {
      remainder.push_back(std::move(run));
      continue;
    }
    uint64_t need = n - taken;
    if (run.length <= need) {
      taken += run.length;
      if (run.is_literal()) {
        prefix.AppendLiteral(Slice(run.bytes));
      } else {
        prefix.AppendZeros(run.length);
      }
    } else {
      // Split this run.
      if (run.is_literal()) {
        prefix.AppendLiteral(Slice(run.bytes.data(), need));
        Run rest;
        rest.bytes.assign(run.bytes.begin() + static_cast<long>(need),
                          run.bytes.end());
        rest.length = rest.bytes.size();
        remainder.push_back(std::move(rest));
      } else {
        prefix.AppendZeros(need);
        Run rest;
        rest.length = run.length - need;
        remainder.push_back(std::move(rest));
      }
      taken = n;
    }
  }
  runs_ = std::move(remainder);
  size_ -= n;
  physical_size_ = 0;
  for (const Run& run : runs_) {
    if (run.is_literal()) physical_size_ += run.bytes.size();
  }
  return prefix;
}

ByteRuns ByteRuns::SubRange(uint64_t offset, uint64_t n) const {
  assert(offset + n <= size_);
  ByteRuns out;
  if (n == 0) return out;
  uint64_t run_start = 0;
  for (const Run& run : runs_) {
    uint64_t run_end = run_start + run.length;
    if (run_end > offset && run_start < offset + n) {
      uint64_t lo = std::max(run_start, offset);
      uint64_t hi = std::min(run_end, offset + n);
      if (run.is_literal()) {
        out.AppendLiteral(Slice(run.bytes.data() + (lo - run_start),
                                hi - lo));
      } else {
        out.AppendZeros(hi - lo);
      }
    }
    run_start = run_end;
    if (run_start >= offset + n) break;
  }
  return out;
}

void ByteRuns::TransformLiterals(
    const std::function<void(uint64_t, uint8_t*, uint64_t)>& fn) {
  uint64_t offset = 0;
  for (Run& run : runs_) {
    if (run.is_literal() && run.length > 0) {
      fn(offset, run.bytes.data(), run.length);
    }
    offset += run.length;
  }
}

uint64_t ByteRuns::Checksum64() const {
  Checksum checksum;
  for (const Run& run : runs_) {
    if (run.is_literal()) {
      checksum.Update(Slice(run.bytes));
    } else {
      checksum.UpdateZeros(run.length);
    }
  }
  return checksum.digest();
}

void ByteRuns::CorruptByte(uint64_t offset) {
  assert(offset < size_);
  uint64_t run_start = 0;
  for (size_t i = 0; i < runs_.size(); ++i) {
    Run& run = runs_[i];
    if (offset >= run_start + run.length) {
      run_start += run.length;
      continue;
    }
    uint64_t in_run = offset - run_start;
    if (run.is_literal()) {
      run.bytes[in_run] ^= 0xFF;
      return;
    }
    // Split the zero run around a one-byte literal 0xFF.
    uint64_t before = in_run;
    uint64_t after = run.length - in_run - 1;
    std::vector<Run> patched;
    if (before > 0) {
      Run pre;
      pre.length = before;
      patched.push_back(std::move(pre));
    }
    Run flip;
    flip.bytes.assign(1, 0xFF);
    flip.length = 1;
    patched.push_back(std::move(flip));
    if (after > 0) {
      Run post;
      post.length = after;
      patched.push_back(std::move(post));
    }
    runs_.erase(runs_.begin() + static_cast<long>(i));
    runs_.insert(runs_.begin() + static_cast<long>(i),
                 std::make_move_iterator(patched.begin()),
                 std::make_move_iterator(patched.end()));
    physical_size_ += 1;
    return;
  }
}

void ByteRuns::Clear() {
  runs_.clear();
  size_ = 0;
  physical_size_ = 0;
}

std::vector<uint8_t> ByteRuns::ToBytes() const {
  std::vector<uint8_t> out(size_);
  if (size_ > 0) Read(0, size_, out.data());
  return out;
}

}  // namespace spongefiles
