#include "common/byte_runs.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/checksum.h"

namespace spongefiles {

namespace {
// A zero run is represented as a null buffer with length > 0. Literal runs
// with length 0 never appear in runs_.
constexpr uint64_t kMergeLiteralThreshold = 64 * 1024;
}  // namespace

ByteRuns::ByteRuns(const ByteRuns& other)
    : runs_(other.runs_),
      size_(other.size_),
      physical_size_(other.physical_size_),
      checksum_(other.checksum_),
      checksum_valid_(other.checksum_valid_) {}

ByteRuns& ByteRuns::operator=(const ByteRuns& other) {
  if (this != &other) {
    ByteRuns copy(other);
    *this = std::move(copy);
  }
  return *this;
}

void ByteRuns::AppendLiteral(Slice data) {
  if (data.empty()) return;
  InvalidateChecksum();
  size_ += data.size();
  physical_size_ += data.size();
  // Merge small literal appends into the previous literal run to keep the
  // run list short when callers write record-at-a-time. Growing a buffer is
  // safe even while shared: the new bytes lie beyond every existing view,
  // and views address by offset, so a reallocation moves no one's range.
  // The run must still end exactly at the buffer's end — if another handle
  // extended the buffer first, this run no longer does and gets a fresh
  // buffer instead.
  if (!runs_.empty() && runs_.back().is_literal() &&
      runs_.back().length < kMergeLiteralThreshold &&
      runs_.back().offset + runs_.back().length ==
          runs_.back().buffer->size()) {
    Run& last = runs_.back();
    last.buffer->insert(last.buffer->end(), data.data(),
                        data.data() + data.size());
    last.length += data.size();
    return;
  }
  Run run;
  run.buffer = std::make_shared<Buffer>(data.data(),
                                        data.data() + data.size());
  run.length = data.size();
  runs_.push_back(std::move(run));
}

void ByteRuns::AppendZeros(uint64_t n) {
  if (n == 0) return;
  InvalidateChecksum();
  size_ += n;
  if (!runs_.empty() && !runs_.back().is_literal()) {
    runs_.back().length += n;
    return;
  }
  Run run;
  run.length = n;
  runs_.push_back(std::move(run));
}

void ByteRuns::Append(const ByteRuns& other) {
  if (other.empty()) return;
  if (&other == this) {
    // Self-append: snapshot the descriptors first so the loop below does
    // not walk a vector it is growing.
    ByteRuns copy(other);
    Append(copy);
    return;
  }
  InvalidateChecksum();
  for (const Run& run : other.runs_) {
    if (!run.is_literal()) {
      AppendZeros(run.length);
      continue;
    }
    // Zero-copy hand-off: share the buffer, O(1) per run.
    runs_.push_back(run);
    size_ += run.length;
    physical_size_ += run.length;
  }
}

void ByteRuns::Read(uint64_t offset, uint64_t n, uint8_t* out) const {
  assert(offset + n <= size_);
  uint64_t run_start = 0;
  size_t i = 0;
  // Skip to the run containing `offset`.
  while (i < runs_.size() && run_start + runs_[i].length <= offset) {
    run_start += runs_[i].length;
    ++i;
  }
  uint64_t produced = 0;
  while (produced < n) {
    assert(i < runs_.size());
    const Run& run = runs_[i];
    uint64_t in_run_offset = offset + produced - run_start;
    uint64_t take = std::min<uint64_t>(run.length - in_run_offset,
                                       n - produced);
    if (run.is_literal()) {
      std::memcpy(out + produced, run.data() + in_run_offset, take);
    } else {
      std::memset(out + produced, 0, take);
    }
    produced += take;
    run_start += run.length;
    ++i;
  }
}

ByteRuns ByteRuns::SplitPrefix(uint64_t n) {
  assert(n <= size_);
  ByteRuns prefix;
  if (n == 0) return prefix;
  InvalidateChecksum();
  std::vector<Run> remainder;
  uint64_t taken = 0;
  uint64_t prefix_physical = 0;
  for (size_t i = 0; i < runs_.size(); ++i) {
    Run& run = runs_[i];
    if (taken >= n) {
      remainder.push_back(std::move(run));
      continue;
    }
    uint64_t need = n - taken;
    if (run.length <= need) {
      taken += run.length;
      if (run.is_literal()) prefix_physical += run.length;
      prefix.runs_.push_back(std::move(run));
    } else {
      // Cut this run in two; a literal ends up shared between the prefix
      // and the remainder (no byte is copied).
      Run head = run;
      head.length = need;
      Run rest = std::move(run);
      rest.offset += need;  // harmless on zero runs (offset unused)
      rest.length -= need;
      if (head.is_literal()) prefix_physical += head.length;
      prefix.runs_.push_back(std::move(head));
      remainder.push_back(std::move(rest));
      taken = n;
    }
  }
  runs_ = std::move(remainder);
  size_ -= n;
  prefix.size_ = n;
  prefix.physical_size_ = prefix_physical;
  physical_size_ -= prefix_physical;
  return prefix;
}

void ByteRuns::TrimPrefix(uint64_t n) {
  assert(n <= size_);
  if (n == 0) return;
  InvalidateChecksum();
  size_ -= n;
  size_t drop = 0;
  while (n > 0) {
    Run& run = runs_[drop];
    if (run.length <= n) {
      n -= run.length;
      if (run.is_literal()) physical_size_ -= run.length;
      ++drop;
    } else {
      if (run.is_literal()) {
        run.offset += n;
        physical_size_ -= n;
      }
      run.length -= n;
      n = 0;
    }
  }
  runs_.erase(runs_.begin(), runs_.begin() + static_cast<long>(drop));
}

void ByteRuns::Cursor::Peek(uint64_t n, uint8_t* out) const {
  assert(n <= available());
  size_t i = run_index_;
  uint64_t in_run = run_offset_;
  uint64_t produced = 0;
  while (produced < n) {
    const Run& run = runs_->runs_[i];
    uint64_t take = std::min<uint64_t>(run.length - in_run, n - produced);
    if (run.is_literal()) {
      std::memcpy(out + produced, run.data() + in_run, take);
    } else {
      std::memset(out + produced, 0, take);
    }
    produced += take;
    ++i;
    in_run = 0;
  }
}

void ByteRuns::Cursor::Skip(uint64_t n) {
  assert(n <= available());
  position_ += n;
  while (n > 0) {
    const Run& run = runs_->runs_[run_index_];
    uint64_t left = run.length - run_offset_;
    if (left <= n) {
      n -= left;
      ++run_index_;
      run_offset_ = 0;
    } else {
      run_offset_ += n;
      n = 0;
    }
  }
}

ByteRuns ByteRuns::SubRange(uint64_t offset, uint64_t n) const {
  assert(offset + n <= size_);
  ByteRuns out;
  if (n == 0) return out;
  uint64_t run_start = 0;
  for (const Run& run : runs_) {
    uint64_t run_end = run_start + run.length;
    if (run_end > offset && run_start < offset + n) {
      uint64_t lo = std::max(run_start, offset);
      uint64_t hi = std::min(run_end, offset + n);
      Run piece = run;
      piece.length = hi - lo;
      if (run.is_literal()) {
        piece.offset = run.offset + (lo - run_start);
        out.physical_size_ += piece.length;
      }
      out.size_ += piece.length;
      out.runs_.push_back(std::move(piece));
    }
    run_start = run_end;
    if (run_start >= offset + n) break;
  }
  return out;
}

ByteRuns ByteRuns::Detached() const {
  ByteRuns out;
  out.runs_.reserve(runs_.size());
  for (const Run& run : runs_) {
    Run piece;
    piece.length = run.length;
    if (run.is_literal()) {
      piece.buffer = std::make_shared<Buffer>(run.data(),
                                              run.data() + run.length);
      piece.offset = 0;
      out.physical_size_ += piece.length;
    }
    out.runs_.push_back(std::move(piece));
  }
  out.size_ = size_;
  out.checksum_ = checksum_;
  out.checksum_valid_ = checksum_valid_;
  return out;
}

ByteRuns::Run& ByteRuns::MutableRun(size_t i) {
  Run& run = runs_[i];
  assert(run.is_literal());
  // use_count() == 1 means this run holds the only reference anywhere (any
  // other run — in this handle or another — would hold its own shared_ptr),
  // so in-place mutation cannot be observed elsewhere.
  if (run.buffer.use_count() != 1) {
    run.buffer = std::make_shared<Buffer>(run.data(),
                                          run.data() + run.length);
    run.offset = 0;
  }
  return run;
}

void ByteRuns::TransformLiterals(
    const std::function<void(uint64_t, uint8_t*, uint64_t)>& fn) {
  InvalidateChecksum();
  uint64_t offset = 0;
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (runs_[i].is_literal() && runs_[i].length > 0) {
      Run& run = MutableRun(i);
      fn(offset, run.mutable_data(), run.length);
    }
    offset += runs_[i].length;
  }
}

uint64_t ByteRuns::Checksum64() const {
  if (checksum_valid_) return checksum_;
  Checksum checksum;
  for (const Run& run : runs_) {
    if (run.is_literal()) {
      checksum.Update(Slice(run.data(), run.length));
    } else {
      checksum.UpdateZeros(run.length);
    }
  }
  checksum_ = checksum.digest();
  checksum_valid_ = true;
  return checksum_;
}

void ByteRuns::CorruptByte(uint64_t offset) {
  assert(offset < size_);
  InvalidateChecksum();
  uint64_t run_start = 0;
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (offset >= run_start + runs_[i].length) {
      run_start += runs_[i].length;
      continue;
    }
    uint64_t in_run = offset - run_start;
    if (runs_[i].is_literal()) {
      // Copy-on-write: readers that fetched this chunk before the fault
      // keep the pristine bytes, exactly as if the store had deep-copied.
      MutableRun(i).mutable_data()[in_run] ^= 0xFF;
      return;
    }
    // Split the zero run around a one-byte literal 0xFF.
    Run& run = runs_[i];
    uint64_t before = in_run;
    uint64_t after = run.length - in_run - 1;
    std::vector<Run> patched;
    if (before > 0) {
      Run pre;
      pre.length = before;
      patched.push_back(std::move(pre));
    }
    Run flip;
    flip.buffer = std::make_shared<Buffer>(1, 0xFF);
    flip.length = 1;
    patched.push_back(std::move(flip));
    if (after > 0) {
      Run post;
      post.length = after;
      patched.push_back(std::move(post));
    }
    runs_.erase(runs_.begin() + static_cast<long>(i));
    runs_.insert(runs_.begin() + static_cast<long>(i),
                 std::make_move_iterator(patched.begin()),
                 std::make_move_iterator(patched.end()));
    physical_size_ += 1;
    return;
  }
}

void ByteRuns::Clear() {
  runs_.clear();
  size_ = 0;
  physical_size_ = 0;
  InvalidateChecksum();
}

std::vector<uint8_t> ByteRuns::ToBytes() const {
  std::vector<uint8_t> out(size_);
  if (size_ > 0) Read(0, size_, out.data());
  return out;
}

}  // namespace spongefiles
