#include "common/random.h"

#include <algorithm>

namespace spongefiles {

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t k) const {
  assert(k < cdf_.size());
  if (k == 0) return cdf_[0];
  return cdf_[k] - cdf_[k - 1];
}

}  // namespace spongefiles
