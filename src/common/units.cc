#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace spongefiles {

std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.1f GB",
                  static_cast<double>(bytes) / kGiB);
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.1f MB",
                  static_cast<double>(bytes) / kMiB);
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.1f KB",
                  static_cast<double>(bytes) / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatDuration(Duration d) {
  char buf[32];
  if (d >= kMinute) {
    std::snprintf(buf, sizeof(buf), "%.1f min",
                  static_cast<double>(d) / kMinute);
  } else if (d >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2f s", static_cast<double>(d) / kSecond);
  } else if (d >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.2f ms",
                  static_cast<double>(d) / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld us", static_cast<long long>(d));
  }
  return buf;
}

Duration TransferTime(uint64_t bytes, double bytes_per_second) {
  if (bytes == 0) return 0;
  double seconds = static_cast<double>(bytes) / bytes_per_second;
  Duration d = static_cast<Duration>(std::ceil(seconds * kSecond));
  return d < 1 ? 1 : d;
}

}  // namespace spongefiles
