#ifndef SPONGEFILES_COMMON_STATUS_H_
#define SPONGEFILES_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace spongefiles {

// Error categories used across the library. Modeled after the usual
// database-systems canonical codes; only the ones this codebase needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kResourceExhausted,   // e.g. a full sponge pool or disk
  kFailedPrecondition,  // API misuse (e.g. reading an unclosed SpongeFile)
  kUnavailable,         // e.g. a dead sponge server
  kAborted,             // e.g. a task killed by failure injection
  kOutOfRange,
  kInternal,
};

// Returns a stable human-readable name for `code` ("OK", "NOT_FOUND", ...).
[[nodiscard]] const char* StatusCodeName(StatusCode code);

// A lightweight error-or-success value. The library does not use exceptions;
// every fallible operation returns Status or Result<T>. The class-level
// [[nodiscard]] makes the compiler flag any call site that drops an error
// on the floor — the same contract spongelint's unchecked-status check
// enforces without needing a compile.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" rendering.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

[[nodiscard]] inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
[[nodiscard]] inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
[[nodiscard]] inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
[[nodiscard]] inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
[[nodiscard]] inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
[[nodiscard]] inline Status Aborted(std::string msg) {
  return Status(StatusCode::kAborted, std::move(msg));
}
[[nodiscard]] inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
[[nodiscard]] inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

// A value of type T or an error Status. Accessing the value of a failed
// Result aborts in debug builds.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status to the caller.
#define RETURN_IF_ERROR(expr)                   \
  do {                                          \
    ::spongefiles::Status _st = (expr);         \
    if (!_st.ok()) return _st;                  \
  } while (0)

// Coroutine variant: propagates a non-OK status via co_return.
#define CO_RETURN_IF_ERROR(expr)                \
  do {                                          \
    ::spongefiles::Status _st = (expr);         \
    if (!_st.ok()) co_return _st;               \
  } while (0)

// Evaluates a Result<T> expression, assigning the value to `lhs` or
// returning its error status.
#define ASSIGN_OR_RETURN(lhs, expr)             \
  ASSIGN_OR_RETURN_IMPL_(                       \
      SPONGE_STATUS_CONCAT_(_result_, __LINE__), lhs, expr)
#define ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                           \
  if (!result.ok()) return result.status();       \
  lhs = std::move(result).value()
#define SPONGE_STATUS_CONCAT_INNER_(a, b) a##b
#define SPONGE_STATUS_CONCAT_(a, b) SPONGE_STATUS_CONCAT_INNER_(a, b)

}  // namespace spongefiles

#endif  // SPONGEFILES_COMMON_STATUS_H_
