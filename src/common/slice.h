#ifndef SPONGEFILES_COMMON_SLICE_H_
#define SPONGEFILES_COMMON_SLICE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace spongefiles {

// A non-owning view over a contiguous byte range. The referenced storage
// must outlive the Slice (same contract as std::string_view).
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const char* data, size_t size)
      : data_(reinterpret_cast<const uint8_t*>(data)), size_(size) {}
  explicit Slice(std::string_view s) : Slice(s.data(), s.size()) {}
  explicit Slice(const std::string& s) : Slice(s.data(), s.size()) {}
  explicit Slice(const std::vector<uint8_t>& v)
      : data_(v.data()), size_(v.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const { return data_[i]; }

  // Returns a sub-slice [offset, offset + n); caller must keep it in range.
  Slice Sub(size_t offset, size_t n) const {
    return Slice(data_ + offset, n);
  }

  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

  bool operator==(const Slice& other) const {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

}  // namespace spongefiles

#endif  // SPONGEFILES_COMMON_SLICE_H_
