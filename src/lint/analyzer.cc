#include "lint/analyzer.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <utility>

#include "lint/lexer.h"

namespace spongefiles::lint {

const char* CheckId(Check check) {
  switch (check) {
    case Check::kCoroRef: return "ref";
    case Check::kDeterminism: return "det";
    case Check::kUnorderedIter: return "iter";
    case Check::kLockAcrossAwait: return "lock";
    case Check::kUncheckedStatus: return "status";
    case Check::kBannedHeader: return "header";
    case Check::kBadWaiver: return "waiver";
    case Check::kShardCross: return "shard";
    case Check::kShardAffinity: return "affinity";
    case Check::kOrphanWaiver: return "orphan";
  }
  return "?";
}

bool CheckFromId(const std::string& id, Check* out) {
  // kBadWaiver and kOrphanWaiver are deliberately absent: a waiver cannot
  // waive the waiver machinery.
  static const std::pair<const char*, Check> kIds[] = {
      {"ref", Check::kCoroRef},        {"det", Check::kDeterminism},
      {"iter", Check::kUnorderedIter}, {"lock", Check::kLockAcrossAwait},
      {"status", Check::kUncheckedStatus}, {"header", Check::kBannedHeader},
      {"shard", Check::kShardCross},   {"affinity", Check::kShardAffinity},
  };
  for (const auto& [name, check] : kIds) {
    if (id == name) {
      *out = check;
      return true;
    }
  }
  return false;
}

std::string Diagnostic::ToString() const {
  std::string s = file + ":" + std::to_string(line) + ": [" +
                  CheckId(check) + "] " + message;
  if (waived) s += " (waived: " + waiver_reason + ")";
  return s;
}

void SymbolIndex::Merge(const SymbolIndex& other) {
  status_functions.insert(other.status_functions.begin(),
                          other.status_functions.end());
  awaitable_status_functions.insert(other.awaitable_status_functions.begin(),
                                    other.awaitable_status_functions.end());
  unordered_names.insert(other.unordered_names.begin(),
                         other.unordered_names.end());
  quoted_includes.insert(quoted_includes.end(), other.quoted_includes.begin(),
                         other.quoted_includes.end());
  class_affinity.insert(other.class_affinity.begin(),
                        other.class_affinity.end());
  returns_class.insert(other.returns_class.begin(),
                       other.returns_class.end());
}

namespace {

using Tokens = std::vector<Token>;

bool Contains(const std::vector<std::string>& xs, const std::string& x) {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

// Returns the index just past the `>` matching the `<` at `i`. A `>>`
// token closes two levels (template context). Falls off the end of the
// token stream gracefully on malformed input.
size_t SkipAngles(const Tokens& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.punct("<")) {
      ++depth;
    } else if (t.punct(">")) {
      if (--depth == 0) return i + 1;
    } else if (t.punct(">>")) {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (t.punct(";") || t.punct("{")) {
      // A `<` that was a comparison, not a template bracket.
      return i;
    }
  }
  return i;
}

// `i` points at `(`; returns the index of the matching `)`.
size_t MatchParen(const Tokens& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].punct("(")) ++depth;
    if (toks[i].punct(")") && --depth == 0) return i;
  }
  return toks.size() - 1;
}

// `i` points at `{`; returns the index of the matching `}`.
size_t MatchBrace(const Tokens& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].punct("{")) ++depth;
    if (toks[i].punct("}") && --depth == 0) return i;
  }
  return toks.size() - 1;
}

// `i` points at `)`; returns the index of the matching `(` searching
// backwards, or npos-like 0 on malformed input.
size_t MatchParenBackward(const Tokens& toks, size_t i) {
  int depth = 0;
  for (;; --i) {
    if (toks[i].punct(")")) ++depth;
    if (toks[i].punct("(") && --depth == 0) return i;
    if (i == 0) return 0;
  }
}

// `i` points at `[`; returns the index of the matching `]`.
size_t MatchBracket(const Tokens& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].punct("[")) ++depth;
    if (toks[i].punct("]") && --depth == 0) return i;
  }
  return toks.size() - 1;
}

// ---- shard affinities ----------------------------------------------------

// Where a class's state lives in the planned sharded engine. kValue marks
// passive data that travels by copy; kChannel marks the sanctioned
// cross-shard machinery (network messages, RPC plumbing, engine event
// posting); kGlobal marks shared state whose annotation must carry the
// reason the sharing is acceptable.
enum class Affinity { kNone, kNode, kRack, kValue, kChannel, kGlobal };

const char* AffinityName(Affinity a) {
  switch (a) {
    case Affinity::kNode: return "node";
    case Affinity::kRack: return "rack";
    case Affinity::kValue: return "value";
    case Affinity::kChannel: return "channel";
    case Affinity::kGlobal: return "global";
    case Affinity::kNone: break;
  }
  return "none";
}

struct AffinityInfo {
  Affinity kind = Affinity::kNone;
  std::string reason;
  bool valid = false;
  std::string error;  // when !valid: what is wrong with the clause
};

std::string Trimmed(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

// Parses the interior of a `shard(...)` clause.
AffinityInfo ParseAffinity(const std::string& clause) {
  AffinityInfo info;
  std::string text = Trimmed(clause);
  if (text == "node") {
    info = {Affinity::kNode, "", true, ""};
  } else if (text == "rack") {
    info = {Affinity::kRack, "", true, ""};
  } else if (text == "value") {
    info = {Affinity::kValue, "", true, ""};
  } else if (text == "channel") {
    info = {Affinity::kChannel, "", true, ""};
  } else if (text.compare(0, 6, "global") == 0) {
    std::string rest = Trimmed(text.substr(6));
    if (!rest.empty() && rest[0] == ':') {
      info.reason = Trimmed(rest.substr(1));
    }
    info.kind = Affinity::kGlobal;
    if (info.reason.empty()) {
      info.error = "'global' needs a reason: shard(global: why sharing is ok)";
    } else {
      info.valid = true;
    }
  } else {
    info.error = "unknown affinity '" + text +
                 "'; expected node, rack, value, channel, or global: reason";
  }
  return info;
}

// Comment lines carrying the lint marker followed by a `shard(...)`
// affinity clause, mapped line -> clause interior. (The clause shares the
// waiver marker but is not a waiver; ParseWaivers skips it.)
std::map<int, std::string> AffinityClauseLines(
    const std::vector<Comment>& comments) {
  std::map<int, std::string> out;
  for (const Comment& c : comments) {
    size_t at = c.text.find("lint:");
    if (at == std::string::npos) continue;
    size_t s = c.text.find("shard(", at);
    if (s == std::string::npos) continue;
    size_t close = c.text.find(')', s);
    if (close == std::string::npos) continue;
    out[c.line] = c.text.substr(s + 6, close - s - 6);
  }
  return out;
}

// Parses `ident (:: ident | . ident | -> ident)*` starting at `i`.
// Returns the number of tokens consumed (0 if `i` is not an identifier)
// and fills `last` with the final identifier.
size_t ParseChain(const Tokens& toks, size_t i, std::string* last) {
  if (i >= toks.size() || toks[i].kind != TokenKind::kIdentifier) return 0;
  size_t start = i;
  *last = toks[i].text;
  ++i;
  while (i + 1 < toks.size() &&
         (toks[i].punct("::") || toks[i].punct(".") || toks[i].punct("->")) &&
         toks[i + 1].kind == TokenKind::kIdentifier) {
    *last = toks[i + 1].text;
    i += 2;
  }
  return i - start;
}

// One parsed waiver entry: a `<tag>-ok(reason)` clause following the
// waiver marker in a comment.
struct Waiver {
  Check check;
  std::string reason;
  mutable bool used = false;
};

class Analyzer {
 public:
  Analyzer(const std::string& path, const LexResult& lex,
           const SymbolIndex& index, const AnalyzerOptions& opts)
      : path_(path), toks_(lex.tokens), comments_(lex.comments),
        index_(index), opts_(opts) {}

  FileReport Run() {
    ParseWaivers();
    CheckCoroutineRefParams();
    CheckDeterminism();
    CheckBannedHeaders();
    CheckUnorderedIteration();
    CheckLockAcrossAwait();
    CheckUncheckedStatus();
    CheckShardAffinity();
    ApplyWaivers();
    ReportOrphanWaivers();
    std::stable_sort(report_.diagnostics.begin(), report_.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.line < b.line;
                     });
    report_.file = path_;
    return std::move(report_);
  }

 private:
  void Diag(Check check, int line, std::string message) {
    report_.diagnostics.push_back(
        Diagnostic{check, path_, line, std::move(message), false, ""});
  }

  bool PathAllowed() const {
    for (const auto& sub : opts_.allowlist) {
      if (path_.find(sub) != std::string::npos) return true;
    }
    return false;
  }

  bool PathThreadingAllowed() const {
    for (const auto& sub : opts_.threading_allowlist) {
      if (path_.find(sub) != std::string::npos) return true;
    }
    return false;
  }

  // ---- waivers ----------------------------------------------------------

  void ParseWaivers() {
    for (const Comment& c : comments_) {
      size_t at = c.text.find("lint:");
      if (at == std::string::npos) continue;
      size_t pos = at + 5;
      bool any = false;
      while (pos < c.text.size()) {
        while (pos < c.text.size() &&
               (c.text[pos] == ' ' || c.text[pos] == ',')) {
          ++pos;
        }
        size_t tag_begin = pos;
        while (pos < c.text.size() &&
               (std::isalnum(static_cast<unsigned char>(c.text[pos])) ||
                c.text[pos] == '-' || c.text[pos] == '_')) {
          ++pos;
        }
        std::string tag = c.text.substr(tag_begin, pos - tag_begin);
        if (tag.empty()) break;
        any = true;
        std::string reason;
        bool had_paren = false;
        if (pos < c.text.size() && c.text[pos] == '(') {
          had_paren = true;
          size_t close = c.text.find(')', pos);
          if (close == std::string::npos) close = c.text.size();
          reason = c.text.substr(pos + 1, close - pos - 1);
          pos = std::min(close + 1, c.text.size());
        }
        if (tag == "shard" && had_paren) {
          // A shard affinity clause, not a waiver; the shard pass attaches
          // and validates it.
          continue;
        }
        if (tag.size() < 4 || tag.substr(tag.size() - 3) != "-ok") {
          Diag(Check::kBadWaiver, c.line,
               "malformed waiver '" + tag +
                   "': expected '<check>-ok(reason)'");
          continue;
        }
        Check check;
        std::string id = tag.substr(0, tag.size() - 3);
        if (!CheckFromId(id, &check)) {
          Diag(Check::kBadWaiver, c.line,
               "waiver for unknown check '" + id + "'");
          continue;
        }
        if (reason.empty()) {
          Diag(Check::kBadWaiver, c.line,
               "waiver '" + tag + "' has no reason; write '" + tag +
                   "(why this is safe)'");
          continue;
        }
        waivers_[c.line].push_back(Waiver{check, reason});
      }
      if (!any) {
        Diag(Check::kBadWaiver, c.line, "empty 'lint:' waiver comment");
      }
    }
  }

  void ApplyWaivers() {
    for (Diagnostic& d : report_.diagnostics) {
      if (d.check == Check::kBadWaiver) continue;
      for (int line : {d.line, d.line - 1}) {
        auto it = waivers_.find(line);
        if (it == waivers_.end()) continue;
        for (const Waiver& w : it->second) {
          if (w.check == d.check) {
            d.waived = true;
            d.waiver_reason = w.reason;
            w.used = true;
            break;
          }
        }
        if (d.waived) break;
      }
    }
  }

  // ---- check 1: coroutine-frame escapes ---------------------------------

  bool IsAwaitableType(const std::string& name) const {
    return Contains(opts_.awaitable_types, name);
  }

  void CheckCoroutineRefParams() {
    for (size_t i = 0; i + 1 < toks_.size(); ++i) {
      const Token& t = toks_[i];
      // Function declarations/definitions returning Task<...>.
      if (t.kind == TokenKind::kIdentifier && IsAwaitableType(t.text) &&
          toks_[i + 1].punct("<")) {
        if (i > 0 && (toks_[i - 1].punct(".") || toks_[i - 1].punct("->"))) {
          continue;  // member access, not a type
        }
        size_t j = SkipAngles(toks_, i + 1);
        std::string name;
        size_t consumed = ParseChain(toks_, j, &name);
        if (consumed > 0 && j + consumed < toks_.size() &&
            toks_[j + consumed].punct("(")) {
          CheckParamList(j + consumed, name);
        }
      }
      // Lambdas with a trailing `-> Task<...>` return type.
      if (t.punct("->") && i > 0 && toks_[i - 1].punct(")")) {
        size_t k = i + 1;
        while (k + 1 < toks_.size() &&
               toks_[k].kind == TokenKind::kIdentifier &&
               toks_[k + 1].punct("::")) {
          k += 2;
        }
        if (k < toks_.size() && toks_[k].kind == TokenKind::kIdentifier &&
            IsAwaitableType(toks_[k].text) && k + 1 < toks_.size() &&
            toks_[k + 1].punct("<")) {
          size_t open = MatchParenBackward(toks_, i - 1);
          CheckParamList(open, "<lambda>");
        }
      }
    }
  }

  void CheckParamList(size_t open, const std::string& fn) {
    size_t close = MatchParen(toks_, open);
    size_t param_begin = open + 1;
    int angle = 0, paren = 0, brace = 0, bracket = 0;
    for (size_t i = open + 1; i <= close && i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.punct("<")) ++angle;
      if (t.punct(">")) angle = std::max(0, angle - 1);
      if (t.punct(">>")) angle = std::max(0, angle - 2);
      if (t.punct("(")) ++paren;
      if (t.punct(")")) --paren;
      if (t.punct("{")) ++brace;
      if (t.punct("}")) --brace;
      if (t.punct("[")) ++bracket;
      if (t.punct("]")) --bracket;
      bool at_end = (i == close);
      bool at_comma = t.punct(",") && angle == 0 && paren == 0 &&
                      brace == 0 && bracket == 0;
      if (at_end || at_comma) {
        CheckOneParam(param_begin, i, fn);
        param_begin = i + 1;
      }
    }
  }

  void CheckOneParam(size_t begin, size_t end, const std::string& fn) {
    if (begin >= end) return;
    // Param name: the last identifier before a default-argument `=`.
    std::string name = "<unnamed>";
    size_t value_end = end;
    for (size_t i = begin; i < end; ++i) {
      if (toks_[i].punct("=")) {
        value_end = i;
        break;
      }
    }
    for (size_t i = begin; i < value_end; ++i) {
      if (toks_[i].kind == TokenKind::kIdentifier) name = toks_[i].text;
    }
    // Only the top level of the declarator: a `&` nested inside template
    // arguments (e.g. the call signature of a by-value std::function) does
    // not make the parameter itself a reference.
    int depth = 0;
    for (size_t i = begin; i < value_end; ++i) {
      const Token& t = toks_[i];
      if (t.punct("<") || t.punct("(") || t.punct("{") || t.punct("[")) ++depth;
      if (t.punct(">") || t.punct(")") || t.punct("}") || t.punct("]")) --depth;
      if (t.punct(">>")) depth -= 2;
      if (depth > 0) continue;
      if (t.punct("&")) {
        Diag(Check::kCoroRef, t.line,
             "coroutine '" + fn + "' takes reference parameter '" + name +
                 "'; a frame that outlives its caller dangles — pass by "
                 "value, or waive with // lint: ref-ok(reason)");
        return;
      }
      if (t.kind == TokenKind::kIdentifier && Contains(opts_.view_types, t.text)) {
        Diag(Check::kCoroRef, t.line,
             "coroutine '" + fn + "' takes view parameter '" + name + "' (" +
                 t.text + "); the viewed storage must outlive the frame — "
                 "copy it, or waive with // lint: ref-ok(reason)");
        return;
      }
    }
  }

  // ---- check 2: determinism hazards -------------------------------------

  void CheckDeterminism() {
    if (PathAllowed()) return;
    for (size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (Contains(opts_.banned_idents, t.text)) {
        Diag(Check::kDeterminism, t.line,
             "'" + t.text + "' breaks reproducibility; all time comes from "
                 "sim::Engine::now() and all randomness from a seeded Rng");
        continue;
      }
      if (Contains(opts_.banned_calls, t.text) && i + 1 < toks_.size() &&
          toks_[i + 1].punct("(") && InExpressionContext(i)) {
        Diag(Check::kDeterminism, t.line,
             "call to '" + t.text + "()' reads ambient state; route it "
                 "through the simulation environment");
      }
    }
  }

  // True when the token at `i` begins an expression (so `name(` is a call
  // of the global function, not a declaration `Duration name(...)` or a
  // member access `x.name(`).
  bool InExpressionContext(size_t i) const {
    if (i == 0) return true;
    const Token& p = toks_[i - 1];
    if (p.punct("::")) {
      return i >= 2 && toks_[i - 2].ident("std");
    }
    if (p.kind == TokenKind::kPunct) {
      static const char* kDecl[] = {".", "->", "&", "*"};
      for (const char* d : kDecl) {
        if (p.text == d) return false;
      }
      return true;
    }
    if (p.kind == TokenKind::kIdentifier) {
      static const char* kExprKeywords[] = {"return", "co_return", "co_await",
                                            "co_yield", "else", "do"};
      for (const char* k : kExprKeywords) {
        if (p.text == k) return true;
      }
      return false;  // likely a declaration: `Foo time(...)`
    }
    return true;
  }

  // ---- check 5: banned headers ------------------------------------------

  void CheckBannedHeaders() {
    if (PathAllowed()) return;
    const bool threading_ok = PathThreadingAllowed();
    for (const Token& t : toks_) {
      if (t.kind != TokenKind::kPreprocessor) continue;
      std::string header = IncludeTarget(t.text, '<', '>');
      if (header.empty()) continue;
      if (!Contains(opts_.banned_headers, header)) continue;
      // The threading allowlist exempts only the threading headers: a
      // <random> or <ctime> in the sharded harness is still an error.
      if (threading_ok && Contains(opts_.threading_headers, header)) continue;
      Diag(Check::kBannedHeader, t.line,
           "#include <" + header + "> is banned here; the simulator is "
               "single-threaded and deterministic (allowed only under: " +
               (opts_.allowlist.empty() ? std::string("nothing")
                                        : opts_.allowlist.front()) + ")");
    }
  }

  static std::string IncludeTarget(const std::string& directive, char open,
                                   char close) {
    size_t pos = directive.find('#');
    if (pos == std::string::npos) return "";
    ++pos;
    while (pos < directive.size() && std::isspace(
               static_cast<unsigned char>(directive[pos]))) {
      ++pos;
    }
    if (directive.compare(pos, 7, "include") != 0) return "";
    size_t lt = directive.find(open, pos);
    if (lt == std::string::npos) return "";
    size_t gt = directive.find(close, lt + 1);
    if (gt == std::string::npos) return "";
    return directive.substr(lt + 1, gt - lt - 1);
  }

  // ---- check 3: unordered iteration -------------------------------------

  void CheckUnorderedIteration() {
    for (size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (!toks_[i].ident("for") || !toks_[i + 1].punct("(")) continue;
      size_t open = i + 1;
      size_t close = MatchParen(toks_, open);
      // Range-for: a top-level `:` inside the header.
      size_t colon = 0;
      int depth = 0;
      for (size_t j = open + 1; j < close; ++j) {
        if (toks_[j].punct("(") || toks_[j].punct("[") || toks_[j].punct("{"))
          ++depth;
        if (toks_[j].punct(")") || toks_[j].punct("]") || toks_[j].punct("}"))
          --depth;
        if (depth == 0 && toks_[j].punct(":")) {
          colon = j;
          break;
        }
      }
      if (colon == 0) continue;
      std::string container;
      for (size_t j = colon + 1; j < close; ++j) {
        if (toks_[j].kind == TokenKind::kIdentifier &&
            index_.unordered_names.count(toks_[j].text) > 0) {
          container = toks_[j].text;
          break;
        }
      }
      if (container.empty()) continue;
      size_t body_begin, body_end;
      if (close + 1 < toks_.size() && toks_[close + 1].punct("{")) {
        body_begin = close + 2;
        body_end = MatchBrace(toks_, close + 1);
      } else {
        body_begin = close + 1;
        body_end = body_begin;
        while (body_end < toks_.size() && !toks_[body_end].punct(";"))
          ++body_end;
      }
      for (size_t j = body_begin; j < body_end; ++j) {
        const Token& t = toks_[j];
        bool sink =
            (t.kind == TokenKind::kIdentifier &&
             Contains(opts_.sink_idents, t.text)) ||
            (t.kind == TokenKind::kPunct && Contains(opts_.sink_puncts, t.text));
        if (sink) {
          Diag(Check::kUnorderedIter, toks_[i].line,
               "iteration over unordered container '" + container +
                   "' reaches ordering-sensitive '" + t.text +
                   "' (line " + std::to_string(t.line) +
                   "); hash order is not deterministic across "
                   "implementations — iterate a sorted copy, or waive with "
                   "// lint: iter-ok(reason)");
          break;
        }
      }
    }
  }

  // ---- check 4: lock held across a suspension point ---------------------

  void CheckLockAcrossAwait() {
    struct Held {
      std::string name;
      int depth;
      int line;
    };
    std::vector<Held> held;
    int depth = 0;
    for (size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.punct("{")) ++depth;
      if (t.punct("}")) {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
      }
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "co_await") {
        // Does this statement acquire a lock, or suspend while holding one?
        size_t stmt_end = i;
        while (stmt_end < toks_.size() && !toks_[stmt_end].punct(";") &&
               !toks_[stmt_end].punct("{") && !toks_[stmt_end].punct("}")) {
          ++stmt_end;
        }
        bool acquires = false;
        for (size_t j = i + 1; j + 1 < stmt_end; ++j) {
          if (toks_[j].kind == TokenKind::kIdentifier &&
              Contains(opts_.lock_acquire, toks_[j].text) &&
              toks_[j + 1].punct("(")) {
            std::string obj = "<lock>";
            if (j >= 2 && (toks_[j - 1].punct(".") || toks_[j - 1].punct("->")) &&
                toks_[j - 2].kind == TokenKind::kIdentifier) {
              obj = toks_[j - 2].text;
            }
            held.push_back(Held{obj, depth, t.line});
            acquires = true;
            break;
          }
        }
        if (!acquires && !held.empty()) {
          Diag(Check::kLockAcrossAwait, t.line,
               "co_await while holding lock '" + held.back().name +
                   "' (acquired line " + std::to_string(held.back().line) +
                   "); a suspended holder can deadlock every waiter — "
                   "release first, or waive with // lint: lock-ok(reason)");
        }
        i = stmt_end > i ? stmt_end - 1 : i;
        continue;
      }
      if (Contains(opts_.lock_release, t.text) && i + 1 < toks_.size() &&
          toks_[i + 1].punct("(")) {
        std::string obj;
        if (i >= 2 && (toks_[i - 1].punct(".") || toks_[i - 1].punct("->")) &&
            toks_[i - 2].kind == TokenKind::kIdentifier) {
          obj = toks_[i - 2].text;
        }
        for (size_t k = held.size(); k > 0; --k) {
          if (obj.empty() || held[k - 1].name == obj) {
            held.erase(held.begin() + static_cast<long>(k - 1));
            break;
          }
        }
      }
    }
  }

  // ---- check 6: unchecked Status / Result -------------------------------

  void CheckUncheckedStatus() {
    bool at_start = true;
    for (size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.punct(";") || t.punct("{") || t.punct("}") ||
          t.kind == TokenKind::kPreprocessor) {
        at_start = true;
        continue;
      }
      if (!at_start) continue;
      if (t.kind == TokenKind::kIdentifier) {
        if (t.text == "if" || t.text == "while" || t.text == "for" ||
            t.text == "switch" || t.text == "catch") {
          size_t j = i + 1;
          if (j < toks_.size() && toks_[j].ident("constexpr")) ++j;
          if (j < toks_.size() && toks_[j].punct("(")) {
            i = MatchParen(toks_, j);
          }
          continue;  // what follows the header is a statement start
        }
        if (t.text == "else" || t.text == "do" || t.text == "try") continue;
        if (t.text == "case" || t.text == "default" || t.text == "public" ||
            t.text == "private" || t.text == "protected") {
          while (i + 1 < toks_.size() && !toks_[i].punct(":")) ++i;
          continue;
        }
        bool awaited = false;
        size_t j = i;
        if (t.text == "co_await") {
          awaited = true;
          ++j;
        }
        std::string callee;
        size_t consumed = ParseChain(toks_, j, &callee);
        if (consumed > 0 && j + consumed < toks_.size() &&
            toks_[j + consumed].punct("(")) {
          size_t close = MatchParen(toks_, j + consumed);
          if (close + 1 < toks_.size() && toks_[close + 1].punct(";")) {
            if (awaited &&
                index_.awaitable_status_functions.count(callee) > 0) {
              Diag(Check::kUncheckedStatus, t.line,
                   "result of co_await '" + callee +
                       "' (awaitable Status) is discarded; check it or "
                       "cast to (void)");
            } else if (!awaited && index_.status_functions.count(callee) > 0) {
              Diag(Check::kUncheckedStatus, t.line,
                   "return value of '" + callee +
                       "' (Status/Result) is discarded; check it or cast "
                       "to (void)");
            }
          }
          i = close;
        }
      }
      at_start = false;
    }
  }

  // ---- check 7: shard affinities & cross-affinity accesses ---------------

  void ReportOrphanWaivers() {
    for (const auto& [line, ws] : waivers_) {
      for (const Waiver& w : ws) {
        if (w.used) continue;
        Diag(Check::kOrphanWaiver, line,
             std::string("waiver '") + CheckId(w.check) +
                 "-ok' matches no diagnostic on this or the next line; "
                 "delete it");
      }
    }
  }

  bool InComponentLayer() const {
    for (const auto& sub : opts_.component_paths) {
      if (path_.find(sub) != std::string::npos) return true;
    }
    return false;
  }

  // Looks up a class's affinity: this file's clauses first (via
  // class_lines_), then the merged index (annotation at a definition in
  // another file of the closure).
  AffinityInfo ClassAffinity(const std::string& name) const {
    auto it = index_.class_affinity.find(name);
    if (it != index_.class_affinity.end()) return ParseAffinity(it->second);
    return AffinityInfo{};
  }

  // Harvests `name -> class` bindings for every declaration in this file
  // whose type mentions an affinity-annotated class: plain variables and
  // members (`SpongeServer* server`), containers of pointers
  // (`std::vector<SpongeServer*> members_`), references, and range-for
  // bindings. Name-based and file-wide, like the rest of the analyzer.
  void HarvestBindings() {
    for (size_t i = 0; i + 1 < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (index_.class_affinity.find(t.text) == index_.class_affinity.end()) {
        continue;
      }
      size_t j = i + 1;
      if (j < toks_.size() && toks_[j].punct("<")) j = SkipAngles(toks_, j);
      while (j < toks_.size() &&
             (toks_[j].punct("*") || toks_[j].punct("&") ||
              toks_[j].punct(">") || toks_[j].punct(">>") ||
              toks_[j].ident("const"))) {
        ++j;
      }
      if (j < toks_.size() && toks_[j].kind == TokenKind::kIdentifier &&
          !(j + 1 < toks_.size() && toks_[j + 1].punct("("))) {
        bindings_[toks_[j].text] = t.text;
      }
    }
  }

  struct Scope {
    std::string name;
    Affinity aff;
    int depth;  // brace depth the scope's body lives at
  };

  void CheckShardAffinity() {
    HarvestBindings();
    std::map<int, std::string> clauses = AffinityClauseLines(comments_);
    std::set<int> used_clauses;

    std::vector<Scope> scopes;
    int depth = 0;
    bool pending = false;      // a class head / out-of-line def awaits '{'
    bool pending_guarded = false;  // attach only to a function-body '{'
    Scope pend{};

    for (size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.punct("{")) {
        ++depth;
        if (pending) {
          bool attach = true;
          if (pending_guarded && i > 0) {
            // Out-of-line member definition: only a brace following the
            // parameter list (or its trailing qualifiers) starts the body;
            // member-initializer braces are preceded by an identifier.
            const Token& p = toks_[i - 1];
            attach = p.punct(")") || p.ident("const") || p.ident("noexcept") ||
                     p.ident("override") || p.punct(">") || p.punct(">>");
          }
          if (attach) {
            pend.depth = depth;
            scopes.push_back(pend);
            pending = false;
          }
        }
        continue;
      }
      if (t.punct("}")) {
        while (!scopes.empty() && scopes.back().depth == depth) {
          scopes.pop_back();
        }
        --depth;
        continue;
      }
      if (t.punct(";")) {
        pending = false;
        continue;
      }
      if (t.kind != TokenKind::kIdentifier && !t.punct(")") && !t.punct("]")) {
        continue;
      }

      // Skip template parameter lists wholesale: `template <class T>` must
      // not read as a class definition of T.
      if (t.ident("template") && i + 1 < toks_.size() &&
          toks_[i + 1].punct("<")) {
        i = SkipAngles(toks_, i + 1) - 1;
        continue;
      }

      // Class / struct definitions.
      if ((t.ident("class") || t.ident("struct")) &&
          !(i > 0 && toks_[i - 1].ident("enum"))) {
        size_t j = i + 1;
        // Skip attributes: class [[nodiscard]] Task.
        while (j + 1 < toks_.size() && toks_[j].punct("[") &&
               toks_[j + 1].punct("[")) {
          j = MatchBracket(toks_, j);
          // MatchBracket of the outer '[' lands on the second ']'.
          ++j;
        }
        if (j >= toks_.size() ||
            toks_[j].kind != TokenKind::kIdentifier) {
          continue;  // anonymous struct
        }
        std::string name = toks_[j].text;
        size_t k = j + 1;
        if (k < toks_.size() && toks_[k].punct("<")) {
          k = SkipAngles(toks_, k);  // template specialization args
        }
        bool is_def = false;
        for (size_t m = k; m < toks_.size(); ++m) {
          if (toks_[m].punct("{")) {
            is_def = true;
            break;
          }
          if (toks_[m].punct(";") || toks_[m].punct(")") ||
              toks_[m].punct("=")) {
            break;  // forward declaration, parameter, or alias
          }
        }
        if (!is_def) {
          i = j;
          continue;
        }
        AffinityInfo aff;
        for (int line : {t.line, t.line - 1}) {
          auto c = clauses.find(line);
          if (c == clauses.end()) continue;
          used_clauses.insert(line);
          aff = ParseAffinity(c->second);
          if (!aff.valid) {
            Diag(Check::kShardAffinity, line,
                 "bad shard affinity on class '" + name + "': " + aff.error);
          }
          break;
        }
        if (aff.kind == Affinity::kNone) {
          // Annotated at another definition in the closure?
          aff = ClassAffinity(name);
        }
        if (aff.kind == Affinity::kNone) {
          if (!scopes.empty()) {
            aff.kind = scopes.back().aff;  // nested classes inherit
            aff.valid = true;
          } else if (InComponentLayer()) {
            Diag(Check::kShardAffinity, t.line,
                 "class '" + name +
                     "' in the simulated-component layer has no shard "
                     "affinity; annotate with the lint marker and "
                     "shard(node|rack|value|channel|global: reason), or "
                     "waive with // lint: affinity-ok(reason)");
          }
        }
        pending = true;
        pending_guarded = false;
        pend = Scope{name, aff.valid ? aff.kind : Affinity::kNone, 0};
        i = j;
        continue;
      }

      // Out-of-line member definitions: `Ret ClassName::Method(...) {`.
      if (t.kind == TokenKind::kIdentifier && !pending &&
          scopes.empty() && i + 3 < toks_.size() &&
          toks_[i + 1].punct("::") &&
          toks_[i + 2].kind == TokenKind::kIdentifier &&
          (toks_[i + 3].punct("(") ||
           (toks_[i + 2].text == "operator"))) {
        auto it = index_.class_affinity.find(t.text);
        if (it != index_.class_affinity.end()) {
          AffinityInfo aff = ParseAffinity(it->second);
          pending = true;
          pending_guarded = true;
          pend = Scope{t.text, aff.valid ? aff.kind : Affinity::kNone, 0};
        }
        continue;
      }

      // Cross-affinity accesses, only inside node/rack scopes.
      Affinity cur = scopes.empty() ? Affinity::kNone : scopes.back().aff;
      if (cur != Affinity::kNode && cur != Affinity::kRack) continue;

      if (t.kind == TokenKind::kIdentifier) {
        if (i > 0 && (toks_[i - 1].punct(".") || toks_[i - 1].punct("->") ||
                      toks_[i - 1].punct("::"))) {
          continue;  // middle of a chain; the head was already checked
        }
        size_t j = i + 1;
        if (j < toks_.size() && toks_[j].punct("[")) {
          j = MatchBracket(toks_, j) + 1;  // members_[i]->alive()
        }
        if (j + 1 < toks_.size() &&
            (toks_[j].punct(".") || toks_[j].punct("->")) &&
            toks_[j + 1].kind == TokenKind::kIdentifier) {
          auto b = bindings_.find(t.text);
          if (b != bindings_.end()) {
            CheckCrossAccess(scopes.back(), cur, b->second, t.text,
                             toks_[j + 1]);
          }
        }
        continue;
      }

      // Accessor chains: `cluster_->node(i).free_slots()` — the `.` after
      // a call binds through the callee's declared return class.
      if ((t.punct(")") || t.punct("]")) && i + 2 < toks_.size() &&
          (toks_[i + 1].punct(".") || toks_[i + 1].punct("->")) &&
          toks_[i + 2].kind == TokenKind::kIdentifier) {
        size_t open = t.punct(")") ? MatchParenBackward(toks_, i) : 0;
        if (open > 0 && toks_[open - 1].kind == TokenKind::kIdentifier) {
          auto f = index_.returns_class.find(toks_[open - 1].text);
          if (f != index_.returns_class.end()) {
            CheckCrossAccess(scopes.back(), cur, f->second,
                             toks_[open - 1].text + "(...)", toks_[i + 2]);
          }
        }
        continue;
      }
    }

    // Affinity clauses that attached to nothing are drift (a deleted or
    // renamed class) or a typo'd placement.
    for (const auto& [line, clause] : clauses) {
      if (used_clauses.count(line) > 0) continue;
      Diag(Check::kShardAffinity, line,
           "shard affinity 'shard(" + clause +
               ")' is not attached to a class definition (put it on the "
               "class line or the line above)");
    }
  }

  void CheckCrossAccess(const Scope& scope, Affinity cur,
                        const std::string& target_class,
                        const std::string& expr, const Token& member) {
    if (Contains(opts_.shard_identity_members, member.text)) return;
    AffinityInfo target = ClassAffinity(target_class);
    if (!target.valid) return;  // unannotated or malformed: flagged at decl
    if (target.kind == cur || target.kind == Affinity::kValue ||
        target.kind == Affinity::kChannel ||
        target.kind == Affinity::kGlobal) {
      return;  // same domain, passive data, sanctioned channel, or
               // reasoned global
    }
    Diag(Check::kShardCross, member.line,
         "class '" + scope.name + "' (" + AffinityName(cur) + ") touches '" +
             expr + (expr.back() == ')' ? "." : "->") + member.text +
             "' of class '" + target_class + "' (" +
             AffinityName(target.kind) +
             "): cross-shard state access outside a sanctioned channel — "
             "move it behind a message, or waive with "
             "// lint: shard-ok(reason)");
  }

  const std::string& path_;
  const Tokens& toks_;
  const std::vector<Comment>& comments_;
  const SymbolIndex& index_;
  const AnalyzerOptions& opts_;
  std::map<int, std::vector<Waiver>> waivers_;
  std::map<std::string, std::string> bindings_;  // name -> class
  FileReport report_;
};

}  // namespace

SymbolIndex IndexSymbols(const LexResult& lex) {
  SymbolIndex out;
  const Tokens& toks = lex.tokens;
  std::map<int, std::string> affinity_clauses = AffinityClauseLines(lex.comments);
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];

    // Skip template parameter lists: `template <class T>` must not harvest
    // a class named T.
    if (t.ident("template") && i + 1 < toks.size() &&
        toks[i + 1].punct("<")) {
      i = SkipAngles(toks, i + 1) - 1;
      continue;
    }

    // Shard-affinity-annotated class definitions.
    if ((t.ident("class") || t.ident("struct")) &&
        !(i > 0 && toks[i - 1].ident("enum"))) {
      size_t j = i + 1;
      while (j + 1 < toks.size() && toks[j].punct("[") &&
             toks[j + 1].punct("[")) {
        j = MatchBracket(toks, j) + 1;
      }
      if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier) {
        for (int line : {t.line, t.line - 1}) {
          auto c = affinity_clauses.find(line);
          if (c != affinity_clauses.end()) {
            out.class_affinity[toks[j].text] = c->second;
            break;
          }
        }
      }
      continue;
    }
    if (t.kind == TokenKind::kPreprocessor) {
      // Quoted includes, for include-closure scoping.
      size_t q1 = t.text.find('"');
      if (t.text.find("include") != std::string::npos &&
          q1 != std::string::npos) {
        size_t q2 = t.text.find('"', q1 + 1);
        if (q2 != std::string::npos) {
          out.quoted_includes.push_back(t.text.substr(q1 + 1, q2 - q1 - 1));
        }
      }
      continue;
    }
    if (t.kind != TokenKind::kIdentifier) continue;

    // Declarations of unordered containers (and accessors returning them).
    if (t.text == "unordered_map" || t.text == "unordered_set" ||
        t.text == "unordered_multimap" || t.text == "unordered_multiset") {
      if (i + 1 >= toks.size() || !toks[i + 1].punct("<")) continue;
      size_t j = SkipAngles(toks, i + 1);
      if (j < toks.size() && toks[j].punct("::")) continue;  // ::iterator
      while (j < toks.size() &&
             (toks[j].punct("&") || toks[j].punct("*") ||
              toks[j].ident("const"))) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier) {
        out.unordered_names.insert(toks[j].text);
      }
      continue;
    }

    // Functions returning Status / StatusCode / Result<...>.
    bool is_status = t.text == "Status" || t.text == "StatusCode";
    bool is_result = t.text == "Result" && i + 1 < toks.size() &&
                     toks[i + 1].punct("<");
    if (is_status || is_result) {
      if (i > 0) {
        const Token& p = toks[i - 1];
        if (p.ident("return") || p.ident("co_return") ||
            p.ident("co_await") || p.ident("new") || p.ident("throw") ||
            p.punct("=") || p.punct("(") || p.punct(",") || p.punct("<") ||
            p.punct(".") || p.punct("->")) {
          continue;  // expression use, not a declaration
        }
      }
      size_t j = is_result ? SkipAngles(toks, i + 1) : i + 1;
      std::string name;
      size_t consumed = ParseChain(toks, j, &name);
      if (consumed > 0 && j + consumed < toks.size() &&
          toks[j + consumed].punct("(") && name != "operator") {
        out.status_functions.insert(name);
      }
      continue;
    }

    // Functions returning Task<Status> / Task<Result<...>>.
    if (t.text == "Task" && i + 1 < toks.size() && toks[i + 1].punct("<")) {
      size_t j = SkipAngles(toks, i + 1);
      bool carries_status = false;
      for (size_t k = i + 2; k + 1 < j; ++k) {
        if (toks[k].ident("Status") || toks[k].ident("Result")) {
          carries_status = true;
          break;
        }
      }
      if (!carries_status) continue;
      std::string name;
      size_t consumed = ParseChain(toks, j, &name);
      if (consumed > 0 && j + consumed < toks.size() &&
          toks[j + consumed].punct("(") && name != "operator") {
        out.awaitable_status_functions.insert(name);
      }
      continue;
    }

    // Accessor functions declared to return `Class&` / `Class*` (Class in
    // PascalCase): `Node& node(int i)` lets the shard pass bind the result
    // of `cluster->node(i)` to Node. Declarations only — an expression use
    // of `T&` / `T*` at this token shape is vanishingly rare.
    if (std::isupper(static_cast<unsigned char>(t.text[0]))) {
      size_t j = i + 1;
      if (j < toks.size() && toks[j].punct("<")) j = SkipAngles(toks, j);
      if (j < toks.size() && (toks[j].punct("&") || toks[j].punct("*"))) {
        ++j;
        while (j < toks.size() && toks[j].ident("const")) ++j;
        if (j + 1 < toks.size() && toks[j].kind == TokenKind::kIdentifier &&
            toks[j + 1].punct("(")) {
          out.returns_class[toks[j].text] = t.text;
        }
      }
    }
  }
  return out;
}

FileReport AnalyzeFile(const std::string& path, const LexResult& lex,
                       const SymbolIndex& index, const AnalyzerOptions& opts) {
  return Analyzer(path, lex, index, opts).Run();
}

FileReport AnalyzeSource(const std::string& path, std::string_view source,
                         const AnalyzerOptions& opts) {
  LexResult lex = Lex(source);
  SymbolIndex index = IndexSymbols(lex);
  return AnalyzeFile(path, lex, index, opts);
}

}  // namespace spongefiles::lint
