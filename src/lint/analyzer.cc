#include "lint/analyzer.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <utility>

#include "lint/lexer.h"

namespace spongefiles::lint {

const char* CheckId(Check check) {
  switch (check) {
    case Check::kCoroRef: return "ref";
    case Check::kDeterminism: return "det";
    case Check::kUnorderedIter: return "iter";
    case Check::kLockAcrossAwait: return "lock";
    case Check::kUncheckedStatus: return "status";
    case Check::kBannedHeader: return "header";
    case Check::kBadWaiver: return "waiver";
  }
  return "?";
}

bool CheckFromId(const std::string& id, Check* out) {
  static const std::pair<const char*, Check> kIds[] = {
      {"ref", Check::kCoroRef},        {"det", Check::kDeterminism},
      {"iter", Check::kUnorderedIter}, {"lock", Check::kLockAcrossAwait},
      {"status", Check::kUncheckedStatus}, {"header", Check::kBannedHeader},
  };
  for (const auto& [name, check] : kIds) {
    if (id == name) {
      *out = check;
      return true;
    }
  }
  return false;
}

std::string Diagnostic::ToString() const {
  std::string s = file + ":" + std::to_string(line) + ": [" +
                  CheckId(check) + "] " + message;
  if (waived) s += " (waived: " + waiver_reason + ")";
  return s;
}

void SymbolIndex::Merge(const SymbolIndex& other) {
  status_functions.insert(other.status_functions.begin(),
                          other.status_functions.end());
  awaitable_status_functions.insert(other.awaitable_status_functions.begin(),
                                    other.awaitable_status_functions.end());
  unordered_names.insert(other.unordered_names.begin(),
                         other.unordered_names.end());
  quoted_includes.insert(quoted_includes.end(), other.quoted_includes.begin(),
                         other.quoted_includes.end());
}

namespace {

using Tokens = std::vector<Token>;

bool Contains(const std::vector<std::string>& xs, const std::string& x) {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

// Returns the index just past the `>` matching the `<` at `i`. A `>>`
// token closes two levels (template context). Falls off the end of the
// token stream gracefully on malformed input.
size_t SkipAngles(const Tokens& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.punct("<")) {
      ++depth;
    } else if (t.punct(">")) {
      if (--depth == 0) return i + 1;
    } else if (t.punct(">>")) {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (t.punct(";") || t.punct("{")) {
      // A `<` that was a comparison, not a template bracket.
      return i;
    }
  }
  return i;
}

// `i` points at `(`; returns the index of the matching `)`.
size_t MatchParen(const Tokens& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].punct("(")) ++depth;
    if (toks[i].punct(")") && --depth == 0) return i;
  }
  return toks.size() - 1;
}

// `i` points at `{`; returns the index of the matching `}`.
size_t MatchBrace(const Tokens& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].punct("{")) ++depth;
    if (toks[i].punct("}") && --depth == 0) return i;
  }
  return toks.size() - 1;
}

// `i` points at `)`; returns the index of the matching `(` searching
// backwards, or npos-like 0 on malformed input.
size_t MatchParenBackward(const Tokens& toks, size_t i) {
  int depth = 0;
  for (;; --i) {
    if (toks[i].punct(")")) ++depth;
    if (toks[i].punct("(") && --depth == 0) return i;
    if (i == 0) return 0;
  }
}

// Parses `ident (:: ident | . ident | -> ident)*` starting at `i`.
// Returns the number of tokens consumed (0 if `i` is not an identifier)
// and fills `last` with the final identifier.
size_t ParseChain(const Tokens& toks, size_t i, std::string* last) {
  if (i >= toks.size() || toks[i].kind != TokenKind::kIdentifier) return 0;
  size_t start = i;
  *last = toks[i].text;
  ++i;
  while (i + 1 < toks.size() &&
         (toks[i].punct("::") || toks[i].punct(".") || toks[i].punct("->")) &&
         toks[i + 1].kind == TokenKind::kIdentifier) {
    *last = toks[i + 1].text;
    i += 2;
  }
  return i - start;
}

// One parsed waiver entry: a `<tag>-ok(reason)` clause following the
// waiver marker in a comment.
struct Waiver {
  Check check;
  std::string reason;
  mutable bool used = false;
};

class Analyzer {
 public:
  Analyzer(const std::string& path, const LexResult& lex,
           const SymbolIndex& index, const AnalyzerOptions& opts)
      : path_(path), toks_(lex.tokens), comments_(lex.comments),
        index_(index), opts_(opts) {}

  FileReport Run() {
    ParseWaivers();
    CheckCoroutineRefParams();
    CheckDeterminism();
    CheckBannedHeaders();
    CheckUnorderedIteration();
    CheckLockAcrossAwait();
    CheckUncheckedStatus();
    ApplyWaivers();
    std::stable_sort(report_.diagnostics.begin(), report_.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.line < b.line;
                     });
    report_.file = path_;
    return std::move(report_);
  }

 private:
  void Diag(Check check, int line, std::string message) {
    report_.diagnostics.push_back(
        Diagnostic{check, path_, line, std::move(message), false, ""});
  }

  bool PathAllowed() const {
    for (const auto& sub : opts_.allowlist) {
      if (path_.find(sub) != std::string::npos) return true;
    }
    return false;
  }

  // ---- waivers ----------------------------------------------------------

  void ParseWaivers() {
    for (const Comment& c : comments_) {
      size_t at = c.text.find("lint:");
      if (at == std::string::npos) continue;
      size_t pos = at + 5;
      bool any = false;
      while (pos < c.text.size()) {
        while (pos < c.text.size() &&
               (c.text[pos] == ' ' || c.text[pos] == ',')) {
          ++pos;
        }
        size_t tag_begin = pos;
        while (pos < c.text.size() &&
               (std::isalnum(static_cast<unsigned char>(c.text[pos])) ||
                c.text[pos] == '-' || c.text[pos] == '_')) {
          ++pos;
        }
        std::string tag = c.text.substr(tag_begin, pos - tag_begin);
        if (tag.empty()) break;
        any = true;
        std::string reason;
        if (pos < c.text.size() && c.text[pos] == '(') {
          size_t close = c.text.find(')', pos);
          if (close == std::string::npos) close = c.text.size();
          reason = c.text.substr(pos + 1, close - pos - 1);
          pos = std::min(close + 1, c.text.size());
        }
        if (tag.size() < 4 || tag.substr(tag.size() - 3) != "-ok") {
          Diag(Check::kBadWaiver, c.line,
               "malformed waiver '" + tag +
                   "': expected '<check>-ok(reason)'");
          continue;
        }
        Check check;
        std::string id = tag.substr(0, tag.size() - 3);
        if (!CheckFromId(id, &check)) {
          Diag(Check::kBadWaiver, c.line,
               "waiver for unknown check '" + id + "'");
          continue;
        }
        if (reason.empty()) {
          Diag(Check::kBadWaiver, c.line,
               "waiver '" + tag + "' has no reason; write '" + tag +
                   "(why this is safe)'");
          continue;
        }
        waivers_[c.line].push_back(Waiver{check, reason});
      }
      if (!any) {
        Diag(Check::kBadWaiver, c.line, "empty 'lint:' waiver comment");
      }
    }
  }

  void ApplyWaivers() {
    for (Diagnostic& d : report_.diagnostics) {
      if (d.check == Check::kBadWaiver) continue;
      for (int line : {d.line, d.line - 1}) {
        auto it = waivers_.find(line);
        if (it == waivers_.end()) continue;
        for (const Waiver& w : it->second) {
          if (w.check == d.check) {
            d.waived = true;
            d.waiver_reason = w.reason;
            w.used = true;
            break;
          }
        }
        if (d.waived) break;
      }
    }
  }

  // ---- check 1: coroutine-frame escapes ---------------------------------

  bool IsAwaitableType(const std::string& name) const {
    return Contains(opts_.awaitable_types, name);
  }

  void CheckCoroutineRefParams() {
    for (size_t i = 0; i + 1 < toks_.size(); ++i) {
      const Token& t = toks_[i];
      // Function declarations/definitions returning Task<...>.
      if (t.kind == TokenKind::kIdentifier && IsAwaitableType(t.text) &&
          toks_[i + 1].punct("<")) {
        if (i > 0 && (toks_[i - 1].punct(".") || toks_[i - 1].punct("->"))) {
          continue;  // member access, not a type
        }
        size_t j = SkipAngles(toks_, i + 1);
        std::string name;
        size_t consumed = ParseChain(toks_, j, &name);
        if (consumed > 0 && j + consumed < toks_.size() &&
            toks_[j + consumed].punct("(")) {
          CheckParamList(j + consumed, name);
        }
      }
      // Lambdas with a trailing `-> Task<...>` return type.
      if (t.punct("->") && i > 0 && toks_[i - 1].punct(")")) {
        size_t k = i + 1;
        while (k + 1 < toks_.size() &&
               toks_[k].kind == TokenKind::kIdentifier &&
               toks_[k + 1].punct("::")) {
          k += 2;
        }
        if (k < toks_.size() && toks_[k].kind == TokenKind::kIdentifier &&
            IsAwaitableType(toks_[k].text) && k + 1 < toks_.size() &&
            toks_[k + 1].punct("<")) {
          size_t open = MatchParenBackward(toks_, i - 1);
          CheckParamList(open, "<lambda>");
        }
      }
    }
  }

  void CheckParamList(size_t open, const std::string& fn) {
    size_t close = MatchParen(toks_, open);
    size_t param_begin = open + 1;
    int angle = 0, paren = 0, brace = 0, bracket = 0;
    for (size_t i = open + 1; i <= close && i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.punct("<")) ++angle;
      if (t.punct(">")) angle = std::max(0, angle - 1);
      if (t.punct(">>")) angle = std::max(0, angle - 2);
      if (t.punct("(")) ++paren;
      if (t.punct(")")) --paren;
      if (t.punct("{")) ++brace;
      if (t.punct("}")) --brace;
      if (t.punct("[")) ++bracket;
      if (t.punct("]")) --bracket;
      bool at_end = (i == close);
      bool at_comma = t.punct(",") && angle == 0 && paren == 0 &&
                      brace == 0 && bracket == 0;
      if (at_end || at_comma) {
        CheckOneParam(param_begin, i, fn);
        param_begin = i + 1;
      }
    }
  }

  void CheckOneParam(size_t begin, size_t end, const std::string& fn) {
    if (begin >= end) return;
    // Param name: the last identifier before a default-argument `=`.
    std::string name = "<unnamed>";
    size_t value_end = end;
    for (size_t i = begin; i < end; ++i) {
      if (toks_[i].punct("=")) {
        value_end = i;
        break;
      }
    }
    for (size_t i = begin; i < value_end; ++i) {
      if (toks_[i].kind == TokenKind::kIdentifier) name = toks_[i].text;
    }
    // Only the top level of the declarator: a `&` nested inside template
    // arguments (e.g. the call signature of a by-value std::function) does
    // not make the parameter itself a reference.
    int depth = 0;
    for (size_t i = begin; i < value_end; ++i) {
      const Token& t = toks_[i];
      if (t.punct("<") || t.punct("(") || t.punct("{") || t.punct("[")) ++depth;
      if (t.punct(">") || t.punct(")") || t.punct("}") || t.punct("]")) --depth;
      if (t.punct(">>")) depth -= 2;
      if (depth > 0) continue;
      if (t.punct("&")) {
        Diag(Check::kCoroRef, t.line,
             "coroutine '" + fn + "' takes reference parameter '" + name +
                 "'; a frame that outlives its caller dangles — pass by "
                 "value, or waive with // lint: ref-ok(reason)");
        return;
      }
      if (t.kind == TokenKind::kIdentifier && Contains(opts_.view_types, t.text)) {
        Diag(Check::kCoroRef, t.line,
             "coroutine '" + fn + "' takes view parameter '" + name + "' (" +
                 t.text + "); the viewed storage must outlive the frame — "
                 "copy it, or waive with // lint: ref-ok(reason)");
        return;
      }
    }
  }

  // ---- check 2: determinism hazards -------------------------------------

  void CheckDeterminism() {
    if (PathAllowed()) return;
    for (size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (Contains(opts_.banned_idents, t.text)) {
        Diag(Check::kDeterminism, t.line,
             "'" + t.text + "' breaks reproducibility; all time comes from "
                 "sim::Engine::now() and all randomness from a seeded Rng");
        continue;
      }
      if (Contains(opts_.banned_calls, t.text) && i + 1 < toks_.size() &&
          toks_[i + 1].punct("(") && InExpressionContext(i)) {
        Diag(Check::kDeterminism, t.line,
             "call to '" + t.text + "()' reads ambient state; route it "
                 "through the simulation environment");
      }
    }
  }

  // True when the token at `i` begins an expression (so `name(` is a call
  // of the global function, not a declaration `Duration name(...)` or a
  // member access `x.name(`).
  bool InExpressionContext(size_t i) const {
    if (i == 0) return true;
    const Token& p = toks_[i - 1];
    if (p.punct("::")) {
      return i >= 2 && toks_[i - 2].ident("std");
    }
    if (p.kind == TokenKind::kPunct) {
      static const char* kDecl[] = {".", "->", "&", "*"};
      for (const char* d : kDecl) {
        if (p.text == d) return false;
      }
      return true;
    }
    if (p.kind == TokenKind::kIdentifier) {
      static const char* kExprKeywords[] = {"return", "co_return", "co_await",
                                            "co_yield", "else", "do"};
      for (const char* k : kExprKeywords) {
        if (p.text == k) return true;
      }
      return false;  // likely a declaration: `Foo time(...)`
    }
    return true;
  }

  // ---- check 5: banned headers ------------------------------------------

  void CheckBannedHeaders() {
    if (PathAllowed()) return;
    for (const Token& t : toks_) {
      if (t.kind != TokenKind::kPreprocessor) continue;
      std::string header = IncludeTarget(t.text, '<', '>');
      if (header.empty()) continue;
      if (Contains(opts_.banned_headers, header)) {
        Diag(Check::kBannedHeader, t.line,
             "#include <" + header + "> is banned here; the simulator is "
                 "single-threaded and deterministic (allowed only under: " +
                 (opts_.allowlist.empty() ? std::string("nothing")
                                          : opts_.allowlist.front()) + ")");
      }
    }
  }

  static std::string IncludeTarget(const std::string& directive, char open,
                                   char close) {
    size_t pos = directive.find('#');
    if (pos == std::string::npos) return "";
    ++pos;
    while (pos < directive.size() && std::isspace(
               static_cast<unsigned char>(directive[pos]))) {
      ++pos;
    }
    if (directive.compare(pos, 7, "include") != 0) return "";
    size_t lt = directive.find(open, pos);
    if (lt == std::string::npos) return "";
    size_t gt = directive.find(close, lt + 1);
    if (gt == std::string::npos) return "";
    return directive.substr(lt + 1, gt - lt - 1);
  }

  // ---- check 3: unordered iteration -------------------------------------

  void CheckUnorderedIteration() {
    for (size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (!toks_[i].ident("for") || !toks_[i + 1].punct("(")) continue;
      size_t open = i + 1;
      size_t close = MatchParen(toks_, open);
      // Range-for: a top-level `:` inside the header.
      size_t colon = 0;
      int depth = 0;
      for (size_t j = open + 1; j < close; ++j) {
        if (toks_[j].punct("(") || toks_[j].punct("[") || toks_[j].punct("{"))
          ++depth;
        if (toks_[j].punct(")") || toks_[j].punct("]") || toks_[j].punct("}"))
          --depth;
        if (depth == 0 && toks_[j].punct(":")) {
          colon = j;
          break;
        }
      }
      if (colon == 0) continue;
      std::string container;
      for (size_t j = colon + 1; j < close; ++j) {
        if (toks_[j].kind == TokenKind::kIdentifier &&
            index_.unordered_names.count(toks_[j].text) > 0) {
          container = toks_[j].text;
          break;
        }
      }
      if (container.empty()) continue;
      size_t body_begin, body_end;
      if (close + 1 < toks_.size() && toks_[close + 1].punct("{")) {
        body_begin = close + 2;
        body_end = MatchBrace(toks_, close + 1);
      } else {
        body_begin = close + 1;
        body_end = body_begin;
        while (body_end < toks_.size() && !toks_[body_end].punct(";"))
          ++body_end;
      }
      for (size_t j = body_begin; j < body_end; ++j) {
        const Token& t = toks_[j];
        bool sink =
            (t.kind == TokenKind::kIdentifier &&
             Contains(opts_.sink_idents, t.text)) ||
            (t.kind == TokenKind::kPunct && Contains(opts_.sink_puncts, t.text));
        if (sink) {
          Diag(Check::kUnorderedIter, toks_[i].line,
               "iteration over unordered container '" + container +
                   "' reaches ordering-sensitive '" + t.text +
                   "' (line " + std::to_string(t.line) +
                   "); hash order is not deterministic across "
                   "implementations — iterate a sorted copy, or waive with "
                   "// lint: iter-ok(reason)");
          break;
        }
      }
    }
  }

  // ---- check 4: lock held across a suspension point ---------------------

  void CheckLockAcrossAwait() {
    struct Held {
      std::string name;
      int depth;
      int line;
    };
    std::vector<Held> held;
    int depth = 0;
    for (size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.punct("{")) ++depth;
      if (t.punct("}")) {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
      }
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "co_await") {
        // Does this statement acquire a lock, or suspend while holding one?
        size_t stmt_end = i;
        while (stmt_end < toks_.size() && !toks_[stmt_end].punct(";") &&
               !toks_[stmt_end].punct("{") && !toks_[stmt_end].punct("}")) {
          ++stmt_end;
        }
        bool acquires = false;
        for (size_t j = i + 1; j + 1 < stmt_end; ++j) {
          if (toks_[j].kind == TokenKind::kIdentifier &&
              Contains(opts_.lock_acquire, toks_[j].text) &&
              toks_[j + 1].punct("(")) {
            std::string obj = "<lock>";
            if (j >= 2 && (toks_[j - 1].punct(".") || toks_[j - 1].punct("->")) &&
                toks_[j - 2].kind == TokenKind::kIdentifier) {
              obj = toks_[j - 2].text;
            }
            held.push_back(Held{obj, depth, t.line});
            acquires = true;
            break;
          }
        }
        if (!acquires && !held.empty()) {
          Diag(Check::kLockAcrossAwait, t.line,
               "co_await while holding lock '" + held.back().name +
                   "' (acquired line " + std::to_string(held.back().line) +
                   "); a suspended holder can deadlock every waiter — "
                   "release first, or waive with // lint: lock-ok(reason)");
        }
        i = stmt_end > i ? stmt_end - 1 : i;
        continue;
      }
      if (Contains(opts_.lock_release, t.text) && i + 1 < toks_.size() &&
          toks_[i + 1].punct("(")) {
        std::string obj;
        if (i >= 2 && (toks_[i - 1].punct(".") || toks_[i - 1].punct("->")) &&
            toks_[i - 2].kind == TokenKind::kIdentifier) {
          obj = toks_[i - 2].text;
        }
        for (size_t k = held.size(); k > 0; --k) {
          if (obj.empty() || held[k - 1].name == obj) {
            held.erase(held.begin() + static_cast<long>(k - 1));
            break;
          }
        }
      }
    }
  }

  // ---- check 6: unchecked Status / Result -------------------------------

  void CheckUncheckedStatus() {
    bool at_start = true;
    for (size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.punct(";") || t.punct("{") || t.punct("}") ||
          t.kind == TokenKind::kPreprocessor) {
        at_start = true;
        continue;
      }
      if (!at_start) continue;
      if (t.kind == TokenKind::kIdentifier) {
        if (t.text == "if" || t.text == "while" || t.text == "for" ||
            t.text == "switch" || t.text == "catch") {
          size_t j = i + 1;
          if (j < toks_.size() && toks_[j].ident("constexpr")) ++j;
          if (j < toks_.size() && toks_[j].punct("(")) {
            i = MatchParen(toks_, j);
          }
          continue;  // what follows the header is a statement start
        }
        if (t.text == "else" || t.text == "do" || t.text == "try") continue;
        if (t.text == "case" || t.text == "default" || t.text == "public" ||
            t.text == "private" || t.text == "protected") {
          while (i + 1 < toks_.size() && !toks_[i].punct(":")) ++i;
          continue;
        }
        bool awaited = false;
        size_t j = i;
        if (t.text == "co_await") {
          awaited = true;
          ++j;
        }
        std::string callee;
        size_t consumed = ParseChain(toks_, j, &callee);
        if (consumed > 0 && j + consumed < toks_.size() &&
            toks_[j + consumed].punct("(")) {
          size_t close = MatchParen(toks_, j + consumed);
          if (close + 1 < toks_.size() && toks_[close + 1].punct(";")) {
            if (awaited &&
                index_.awaitable_status_functions.count(callee) > 0) {
              Diag(Check::kUncheckedStatus, t.line,
                   "result of co_await '" + callee +
                       "' (awaitable Status) is discarded; check it or "
                       "cast to (void)");
            } else if (!awaited && index_.status_functions.count(callee) > 0) {
              Diag(Check::kUncheckedStatus, t.line,
                   "return value of '" + callee +
                       "' (Status/Result) is discarded; check it or cast "
                       "to (void)");
            }
          }
          i = close;
        }
      }
      at_start = false;
    }
  }

  const std::string& path_;
  const Tokens& toks_;
  const std::vector<Comment>& comments_;
  const SymbolIndex& index_;
  const AnalyzerOptions& opts_;
  std::map<int, std::vector<Waiver>> waivers_;
  FileReport report_;
};

}  // namespace

SymbolIndex IndexSymbols(const LexResult& lex) {
  SymbolIndex out;
  const Tokens& toks = lex.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kPreprocessor) {
      // Quoted includes, for include-closure scoping.
      size_t q1 = t.text.find('"');
      if (t.text.find("include") != std::string::npos &&
          q1 != std::string::npos) {
        size_t q2 = t.text.find('"', q1 + 1);
        if (q2 != std::string::npos) {
          out.quoted_includes.push_back(t.text.substr(q1 + 1, q2 - q1 - 1));
        }
      }
      continue;
    }
    if (t.kind != TokenKind::kIdentifier) continue;

    // Declarations of unordered containers (and accessors returning them).
    if (t.text == "unordered_map" || t.text == "unordered_set" ||
        t.text == "unordered_multimap" || t.text == "unordered_multiset") {
      if (i + 1 >= toks.size() || !toks[i + 1].punct("<")) continue;
      size_t j = SkipAngles(toks, i + 1);
      if (j < toks.size() && toks[j].punct("::")) continue;  // ::iterator
      while (j < toks.size() &&
             (toks[j].punct("&") || toks[j].punct("*") ||
              toks[j].ident("const"))) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier) {
        out.unordered_names.insert(toks[j].text);
      }
      continue;
    }

    // Functions returning Status / StatusCode / Result<...>.
    bool is_status = t.text == "Status" || t.text == "StatusCode";
    bool is_result = t.text == "Result" && i + 1 < toks.size() &&
                     toks[i + 1].punct("<");
    if (is_status || is_result) {
      if (i > 0) {
        const Token& p = toks[i - 1];
        if (p.ident("return") || p.ident("co_return") ||
            p.ident("co_await") || p.ident("new") || p.ident("throw") ||
            p.punct("=") || p.punct("(") || p.punct(",") || p.punct("<") ||
            p.punct(".") || p.punct("->")) {
          continue;  // expression use, not a declaration
        }
      }
      size_t j = is_result ? SkipAngles(toks, i + 1) : i + 1;
      std::string name;
      size_t consumed = ParseChain(toks, j, &name);
      if (consumed > 0 && j + consumed < toks.size() &&
          toks[j + consumed].punct("(") && name != "operator") {
        out.status_functions.insert(name);
      }
      continue;
    }

    // Functions returning Task<Status> / Task<Result<...>>.
    if (t.text == "Task" && i + 1 < toks.size() && toks[i + 1].punct("<")) {
      size_t j = SkipAngles(toks, i + 1);
      bool carries_status = false;
      for (size_t k = i + 2; k + 1 < j; ++k) {
        if (toks[k].ident("Status") || toks[k].ident("Result")) {
          carries_status = true;
          break;
        }
      }
      if (!carries_status) continue;
      std::string name;
      size_t consumed = ParseChain(toks, j, &name);
      if (consumed > 0 && j + consumed < toks.size() &&
          toks[j + consumed].punct("(") && name != "operator") {
        out.awaitable_status_functions.insert(name);
      }
    }
  }
  return out;
}

FileReport AnalyzeFile(const std::string& path, const LexResult& lex,
                       const SymbolIndex& index, const AnalyzerOptions& opts) {
  return Analyzer(path, lex, index, opts).Run();
}

FileReport AnalyzeSource(const std::string& path, std::string_view source,
                         const AnalyzerOptions& opts) {
  LexResult lex = Lex(source);
  SymbolIndex index = IndexSymbols(lex);
  return AnalyzeFile(path, lex, index, opts);
}

}  // namespace spongefiles::lint
