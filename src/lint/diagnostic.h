#ifndef SPONGEFILES_LINT_DIAGNOSTIC_H_
#define SPONGEFILES_LINT_DIAGNOSTIC_H_

#include <string>
#include <vector>

namespace spongefiles::lint {

// The check catalogue. Each check has a stable short id used both in
// diagnostic output ("file:12: [ref] ...") and in waiver comments: a
// diagnostic from check `x` is suppressed by a comment carrying the lint
// marker followed by `x-ok(reason)`, placed on the flagged line or the
// line directly above. (The marker is spelled out in DESIGN.md; writing
// it verbatim here would make this header waive itself.)
enum class Check {
  kCoroRef,         // coroutine-frame escape via reference/view parameter
  kDeterminism,     // wall clock / ambient randomness / environment reads
  kUnorderedIter,   // unordered-container iteration feeding ordered output
  kLockAcrossAwait, // co_await while holding a sim::Mutex
  kUncheckedStatus, // Status / Result return value discarded
  kBannedHeader,    // <thread>, <mutex>, <random>, ... outside allowlist
  kBadWaiver,       // a waiver with no reason, or for an unknown check
  kShardCross,      // member access crossing shard-affinity domains
  kShardAffinity,   // missing or malformed shard affinity annotation
  kOrphanWaiver,    // a waiver that no longer matches any diagnostic
};

// Stable short id ("ref", "det", "iter", "lock", "status", "header",
// "waiver", "shard", "affinity", "orphan"); the waiver tag is this id
// plus "-ok". kBadWaiver and kOrphanWaiver are not themselves waivable.
const char* CheckId(Check check);

// Parses a check id back; returns false for unknown ids.
bool CheckFromId(const std::string& id, Check* out);

struct Diagnostic {
  Check check;
  std::string file;
  int line = 0;
  std::string message;
  bool waived = false;          // true if a matching waiver covered it
  std::string waiver_reason;    // the reason text when waived

  // "file:line: [id] message" (with a trailing waiver note when waived).
  std::string ToString() const;
};

// Output of analyzing one file.
struct FileReport {
  std::string file;
  std::vector<Diagnostic> diagnostics;

  size_t unwaived() const {
    size_t n = 0;
    for (const auto& d : diagnostics) {
      if (!d.waived) ++n;
    }
    return n;
  }
};

}  // namespace spongefiles::lint

#endif  // SPONGEFILES_LINT_DIAGNOSTIC_H_
