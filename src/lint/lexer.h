#ifndef SPONGEFILES_LINT_LEXER_H_
#define SPONGEFILES_LINT_LEXER_H_

#include <string_view>

#include "lint/token.h"

namespace spongefiles::lint {

// Tokenizes one C++ translation unit (or header) into a flat token
// stream. This is a lexer, not a compiler front end: it understands
// comments, string/char literals (incl. raw strings), numbers with digit
// separators, identifiers, multi-character operators, and whole-line
// preprocessor directives with backslash continuations — exactly enough
// for the pattern-level analyses in lint/analyzer.h. Malformed input
// never aborts; an unterminated literal is closed at end of file.
LexResult Lex(std::string_view source);

}  // namespace spongefiles::lint

#endif  // SPONGEFILES_LINT_LEXER_H_
