#include "lint/lexer.h"

#include <array>
#include <cctype>
#include <cstring>

namespace spongefiles::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character operators, longest first so maximal munch works with a
// simple prefix scan.
constexpr std::array<const char*, 22> kMultiPunct = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "|=",
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexResult Run() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        Advance();
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        Advance();
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        LexPreprocessor();
        continue;
      }
      at_line_start_ = false;
      if (IsIdentStart(c)) {
        LexIdentifierOrRawString();
        continue;
      }
      if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber();
        continue;
      }
      if (c == '"') {
        LexString();
        continue;
      }
      if (c == '\'') {
        LexCharLiteral();
        continue;
      }
      LexPunct();
    }
    Emit(TokenKind::kEndOfFile, "", line_, col_);
    return std::move(result_);
  }

 private:
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (pos_ < src_.size()) {
      if (src_[pos_] == '\n') {
        ++line_;
        col_ = 1;
      } else {
        ++col_;
      }
      ++pos_;
    }
  }

  void Emit(TokenKind kind, std::string text, int line, int col) {
    result_.tokens.push_back(Token{kind, std::move(text), line, col});
  }

  void LexLineComment() {
    int start_line = line_;
    Advance();
    Advance();  // consume //
    size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') Advance();
    result_.comments.push_back(
        Comment{start_line, std::string(src_.substr(begin, pos_ - begin))});
  }

  void LexBlockComment() {
    Advance();
    Advance();  // consume /*
    int seg_line = line_;
    size_t seg_begin = pos_;
    auto flush = [&](size_t end) {
      result_.comments.push_back(
          Comment{seg_line, std::string(src_.substr(seg_begin, end - seg_begin))});
    };
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && Peek(1) == '/') {
        flush(pos_);
        Advance();
        Advance();
        return;
      }
      if (src_[pos_] == '\n') {
        flush(pos_);
        Advance();
        seg_line = line_;
        seg_begin = pos_;
        continue;
      }
      Advance();
    }
    flush(pos_);  // unterminated: close at EOF
  }

  void LexPreprocessor() {
    int start_line = line_;
    int start_col = col_;
    std::string text;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\\' && (Peek(1) == '\n' || (Peek(1) == '\r' && Peek(2) == '\n'))) {
        // Continuation: join the next physical line with a single space.
        Advance();
        while (pos_ < src_.size() && src_[pos_] != '\n') Advance();
        Advance();
        text += ' ';
        continue;
      }
      if (c == '\n') break;
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        break;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        text += ' ';
        continue;
      }
      text += c;
      Advance();
    }
    Emit(TokenKind::kPreprocessor, std::move(text), start_line, start_col);
    at_line_start_ = true;
  }

  void LexIdentifierOrRawString() {
    int start_line = line_;
    int start_col = col_;
    size_t begin = pos_;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) Advance();
    std::string text(src_.substr(begin, pos_ - begin));
    // Raw-string prefix? (R"..., u8R"..., LR"..., ...)
    if (Peek() == '"' && !text.empty() && text.back() == 'R') {
      LexRawString(start_line, start_col);
      return;
    }
    // Encoding prefix on an ordinary string/char literal (u8"x", L'c').
    if ((text == "u8" || text == "u" || text == "U" || text == "L")) {
      if (Peek() == '"') {
        LexString();
        return;
      }
      if (Peek() == '\'') {
        LexCharLiteral();
        return;
      }
    }
    Emit(TokenKind::kIdentifier, std::move(text), start_line, start_col);
  }

  void LexRawString(int start_line, int start_col) {
    Advance();  // consume "
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') {
      delim += src_[pos_];
      Advance();
    }
    Advance();  // consume (
    std::string closer = ")" + delim + "\"";
    size_t begin = pos_;
    size_t end = src_.find(closer, pos_);
    if (end == std::string_view::npos) end = src_.size();
    std::string body(src_.substr(begin, end - begin));
    while (pos_ < std::min(end + closer.size(), src_.size())) Advance();
    Emit(TokenKind::kString, std::move(body), start_line, start_col);
  }

  void LexNumber() {
    int start_line = line_;
    int start_col = col_;
    size_t begin = pos_;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        // Exponent sign: 1e+5, 0x1p-3.
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (Peek(1) == '+' || Peek(1) == '-')) {
          Advance();
        }
        Advance();
        continue;
      }
      break;
    }
    Emit(TokenKind::kNumber, std::string(src_.substr(begin, pos_ - begin)),
         start_line, start_col);
  }

  void LexString() {
    int start_line = line_;
    int start_col = col_;
    Advance();  // consume "
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '"' && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        Advance();
      }
      text += src_[pos_];
      Advance();
    }
    Advance();  // closing quote (or newline/EOF on malformed input)
    Emit(TokenKind::kString, std::move(text), start_line, start_col);
  }

  void LexCharLiteral() {
    int start_line = line_;
    int start_col = col_;
    Advance();  // consume '
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\'' && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        Advance();
      }
      text += src_[pos_];
      Advance();
    }
    Advance();
    Emit(TokenKind::kCharLiteral, std::move(text), start_line, start_col);
  }

  void LexPunct() {
    int start_line = line_;
    int start_col = col_;
    std::string_view rest = src_.substr(pos_);
    for (const char* op : kMultiPunct) {
      size_t n = std::strlen(op);
      if (rest.substr(0, n) == op) {
        for (size_t i = 0; i < n; ++i) Advance();
        Emit(TokenKind::kPunct, op, start_line, start_col);
        return;
      }
    }
    std::string one(1, src_[pos_]);
    Advance();
    Emit(TokenKind::kPunct, std::move(one), start_line, start_col);
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool at_line_start_ = true;
  LexResult result_;
};

}  // namespace

LexResult Lex(std::string_view source) { return Lexer(source).Run(); }

}  // namespace spongefiles::lint
