#ifndef SPONGEFILES_LINT_ANALYZER_H_
#define SPONGEFILES_LINT_ANALYZER_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostic.h"
#include "lint/token.h"

namespace spongefiles::lint {

// Tuning knobs for the checks. The defaults encode this repository's
// conventions (sim::Task coroutines, sim::Mutex locks, the seeded Rng in
// common/random as the only randomness gateway); tests override them to
// exercise the machinery in isolation.
struct AnalyzerOptions {
  // Type names treated as awaitable coroutine return types for the
  // coroutine-frame-escape check (matched on the unqualified name).
  std::vector<std::string> awaitable_types = {"Task"};

  // Parameter type names that are non-owning views into caller storage.
  // Passed by value they are exactly as dangerous as a T& when the
  // coroutine outlives its caller's frame.
  std::vector<std::string> view_types = {"string_view", "Slice", "span"};

  // Identifiers whose mere mention is a determinism hazard.
  std::vector<std::string> banned_idents = {
      "system_clock",     "steady_clock",        "high_resolution_clock",
      "random_device",    "mt19937",             "mt19937_64",
      "default_random_engine", "minstd_rand",
  };

  // Free functions that read ambient time/randomness/environment; flagged
  // only in call position (`name(`) in an expression context, so a method
  // or member named `time` does not trip it.
  std::vector<std::string> banned_calls = {
      "time", "rand", "srand", "getenv", "gettimeofday", "clock", "localtime",
  };

  // Headers whose inclusion is banned outside the allowlist.
  std::vector<std::string> banned_headers = {
      "thread", "mutex", "shared_mutex", "condition_variable",
      "random", "ctime",  "future",
  };

  // Path substrings exempt from the determinism and banned-header checks
  // (the seeded-randomness gateway lives here).
  std::vector<std::string> allowlist = {"common/random"};

  // The subset of banned_headers that exist to keep host threading out of
  // the simulator. Files matching threading_allowlist may include exactly
  // these — and remain subject to every other check, including the rest of
  // banned_headers. The sharded engine's phase-A thread pool is the one
  // sanctioned user (see DESIGN.md "Parallel engine").
  std::vector<std::string> threading_headers = {
      "thread", "mutex", "shared_mutex", "condition_variable", "future",
  };
  std::vector<std::string> threading_allowlist = {"src/sim/parallel"};

  // Method names that acquire / release a lock for the
  // lock-across-suspension check. Semaphore::Acquire is deliberately NOT
  // listed: holding a simulated resource (disk queue, network link)
  // across simulated time is the simulator's job; holding a Mutex across
  // a suspension point is how coroutine deadlocks start.
  std::vector<std::string> lock_acquire = {"Lock"};
  std::vector<std::string> lock_release = {"Unlock"};

  // Ordering-sensitive sinks: iterating an unordered container is only
  // flagged when the loop body hits one of these (appends to a sequence,
  // emits output, awaits, destroys, schedules).
  std::vector<std::string> sink_idents = {
      "push_back", "emplace_back", "append", "Append", "Push",  "Spawn",
      "ScheduleHandle", "destroy", "co_await", "Set", "Increment", "Observe",
  };
  std::vector<std::string> sink_puncts = {"<<", "+="};

  // Path substrings naming the simulated-component layer: every top-level
  // class defined under one of these must carry a shard affinity
  // annotation (the marker followed by `shard(node|rack|value|channel|`
  // `global: reason)`), and member accesses from a node/rack class into a
  // class of a different affinity are flagged unless the target is a
  // value, a channel, or a reasoned global.
  std::vector<std::string> component_paths = {"src/cluster/", "src/sponge/",
                                              "src/mapred/", "src/pig/"};

  // Members that carry immutable identity (ids, shard coordinates, sizes
  // fixed at construction) plus standard container operations — a
  // container of Foo* is owned by the class that declares it, so
  // `members_.front()` is an access to *our* member, not to a Foo. Only
  // dereferencing an element (`members_[i]->x`) crosses domains.
  std::vector<std::string> shard_identity_members = {
      "node_id", "rack", "rack_of", "home_node", "num_racks", "num_nodes",
      "size", "empty", "name", "id",
      // container ops
      "front", "back", "begin", "end", "at", "find", "count", "push_back",
      "pop_back", "emplace_back", "clear", "erase", "insert", "resize",
      "assign", "reserve",
  };
};

// Names harvested from a first pass over one or more files; the analyzer
// consults it for cross-file checks (unchecked Status calls, iteration
// over unordered members returned by accessors declared elsewhere). The
// index is name-based — deliberately over-approximate; waivers handle the
// rare collision.
struct SymbolIndex {
  // Functions declared to return Status / Result<...> / StatusCode.
  std::set<std::string> status_functions;
  // Functions declared to return Task<Status> / Task<Result<...>>.
  std::set<std::string> awaitable_status_functions;
  // Variables, members, parameters, and accessor functions whose declared
  // type involves unordered_map / unordered_set.
  std::set<std::string> unordered_names;
  // Quoted #include targets, for include-closure scoping by the driver.
  std::vector<std::string> quoted_includes;
  // Class name -> shard affinity clause text ("node", "rack", "value",
  // "channel", or "global: reason"), harvested from annotated class
  // definitions. Name-based like everything else in the index.
  std::map<std::string, std::string> class_affinity;
  // Function name -> class name, for accessor functions declared to return
  // `Class&` or `Class*`: `cluster->node(i).free_slots()` binds through
  // the return type of `node`.
  std::map<std::string, std::string> returns_class;

  void Merge(const SymbolIndex& other);
};

// Pass 1: harvest declarations from a lexed file.
SymbolIndex IndexSymbols(const LexResult& lex);

// Pass 2: run every check over a lexed file. `path` is used for
// diagnostics and allowlist matching (match it repo-relative).
FileReport AnalyzeFile(const std::string& path, const LexResult& lex,
                       const SymbolIndex& index, const AnalyzerOptions& opts);

// Convenience for tests and single-file use: lex, self-index, analyze.
FileReport AnalyzeSource(const std::string& path, std::string_view source,
                         const AnalyzerOptions& opts = AnalyzerOptions());

}  // namespace spongefiles::lint

#endif  // SPONGEFILES_LINT_ANALYZER_H_
