#ifndef SPONGEFILES_LINT_ANALYZER_H_
#define SPONGEFILES_LINT_ANALYZER_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostic.h"
#include "lint/token.h"

namespace spongefiles::lint {

// Tuning knobs for the checks. The defaults encode this repository's
// conventions (sim::Task coroutines, sim::Mutex locks, the seeded Rng in
// common/random as the only randomness gateway); tests override them to
// exercise the machinery in isolation.
struct AnalyzerOptions {
  // Type names treated as awaitable coroutine return types for the
  // coroutine-frame-escape check (matched on the unqualified name).
  std::vector<std::string> awaitable_types = {"Task"};

  // Parameter type names that are non-owning views into caller storage.
  // Passed by value they are exactly as dangerous as a T& when the
  // coroutine outlives its caller's frame.
  std::vector<std::string> view_types = {"string_view", "Slice", "span"};

  // Identifiers whose mere mention is a determinism hazard.
  std::vector<std::string> banned_idents = {
      "system_clock",     "steady_clock",        "high_resolution_clock",
      "random_device",    "mt19937",             "mt19937_64",
      "default_random_engine", "minstd_rand",
  };

  // Free functions that read ambient time/randomness/environment; flagged
  // only in call position (`name(`) in an expression context, so a method
  // or member named `time` does not trip it.
  std::vector<std::string> banned_calls = {
      "time", "rand", "srand", "getenv", "gettimeofday", "clock", "localtime",
  };

  // Headers whose inclusion is banned outside the allowlist.
  std::vector<std::string> banned_headers = {
      "thread", "mutex", "shared_mutex", "condition_variable",
      "random", "ctime",  "future",
  };

  // Path substrings exempt from the determinism and banned-header checks
  // (the seeded-randomness gateway lives here).
  std::vector<std::string> allowlist = {"common/random"};

  // Method names that acquire / release a lock for the
  // lock-across-suspension check. Semaphore::Acquire is deliberately NOT
  // listed: holding a simulated resource (disk queue, network link)
  // across simulated time is the simulator's job; holding a Mutex across
  // a suspension point is how coroutine deadlocks start.
  std::vector<std::string> lock_acquire = {"Lock"};
  std::vector<std::string> lock_release = {"Unlock"};

  // Ordering-sensitive sinks: iterating an unordered container is only
  // flagged when the loop body hits one of these (appends to a sequence,
  // emits output, awaits, destroys, schedules).
  std::vector<std::string> sink_idents = {
      "push_back", "emplace_back", "append", "Append", "Push",  "Spawn",
      "ScheduleHandle", "destroy", "co_await", "Set", "Increment", "Observe",
  };
  std::vector<std::string> sink_puncts = {"<<", "+="};
};

// Names harvested from a first pass over one or more files; the analyzer
// consults it for cross-file checks (unchecked Status calls, iteration
// over unordered members returned by accessors declared elsewhere). The
// index is name-based — deliberately over-approximate; waivers handle the
// rare collision.
struct SymbolIndex {
  // Functions declared to return Status / Result<...> / StatusCode.
  std::set<std::string> status_functions;
  // Functions declared to return Task<Status> / Task<Result<...>>.
  std::set<std::string> awaitable_status_functions;
  // Variables, members, parameters, and accessor functions whose declared
  // type involves unordered_map / unordered_set.
  std::set<std::string> unordered_names;
  // Quoted #include targets, for include-closure scoping by the driver.
  std::vector<std::string> quoted_includes;

  void Merge(const SymbolIndex& other);
};

// Pass 1: harvest declarations from a lexed file.
SymbolIndex IndexSymbols(const LexResult& lex);

// Pass 2: run every check over a lexed file. `path` is used for
// diagnostics and allowlist matching (match it repo-relative).
FileReport AnalyzeFile(const std::string& path, const LexResult& lex,
                       const SymbolIndex& index, const AnalyzerOptions& opts);

// Convenience for tests and single-file use: lex, self-index, analyze.
FileReport AnalyzeSource(const std::string& path, std::string_view source,
                         const AnalyzerOptions& opts = AnalyzerOptions());

}  // namespace spongefiles::lint

#endif  // SPONGEFILES_LINT_ANALYZER_H_
