#ifndef SPONGEFILES_LINT_COMPILE_COMMANDS_H_
#define SPONGEFILES_LINT_COMPILE_COMMANDS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace spongefiles::lint {

// One translation unit from a CMake-exported compile_commands.json.
struct CompileEntry {
  std::string file;       // absolute path of the TU
  std::string directory;  // build directory the command runs in
  std::vector<std::string> include_dirs;  // -I / -isystem, absolutized
};

// A minimal, dependency-free reader for compile_commands.json
// (CMAKE_EXPORT_COMPILE_COMMANDS). It extracts exactly what spongelint
// needs — per-file include roots — so quoted #includes can be resolved
// to project files without hardcoding the layout, and so future clang
// tooling shares the same database.
class CompileCommands {
 public:
  // Parses the JSON text. Returns InvalidArgument on input that is not a
  // JSON array of objects; unknown keys are ignored. A relative
  // `directory` entry resolves against `base_dir` (the database's own
  // location); @response-file arguments are expanded relative to the
  // entry's directory.
  static Result<CompileCommands> Parse(std::string_view json,
                                       const std::string& base_dir = "");

  // Reads and parses the file at `path`; relative `directory` entries
  // resolve against the directory containing `path`.
  static Result<CompileCommands> Load(const std::string& path);

  const std::vector<CompileEntry>& entries() const { return entries_; }

  // Union of every entry's include dirs, in first-seen order.
  std::vector<std::string> AllIncludeDirs() const;

  // Include dirs for one TU (exact path match), or nullptr.
  const CompileEntry* EntryFor(const std::string& file) const;

 private:
  std::vector<CompileEntry> entries_;
};

}  // namespace spongefiles::lint

#endif  // SPONGEFILES_LINT_COMPILE_COMMANDS_H_
