#ifndef SPONGEFILES_LINT_TOKEN_H_
#define SPONGEFILES_LINT_TOKEN_H_

#include <string>
#include <vector>

namespace spongefiles::lint {

// Token kinds produced by the lexer. Comments are not tokens; they are
// recorded on the side (see LexResult::comments) so checks see a clean
// stream while waiver scanning still has access to comment text.
enum class TokenKind {
  kIdentifier,    // identifiers and keywords (checks match on text)
  kNumber,        // integer / floating literals, incl. digit separators
  kString,        // "..." and raw R"(...)" literals (text excludes quotes)
  kCharLiteral,   // '...'
  kPunct,         // operators and punctuation, longest-munch
  kPreprocessor,  // a whole logical #-directive line, continuations joined
  kEndOfFile,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
  int col = 0;   // 1-based column

  bool is(TokenKind k, const char* t) const {
    return kind == k && text == t;
  }
  bool ident(const char* t) const {
    return is(TokenKind::kIdentifier, t);
  }
  bool punct(const char* t) const { return is(TokenKind::kPunct, t); }
};

// A comment, attributed to every source line it spans (a block comment
// yields one entry per line so waivers inside it attach where written).
struct Comment {
  int line = 0;
  std::string text;  // without the // or /* */ markers
};

struct LexResult {
  std::vector<Token> tokens;  // terminated by kEndOfFile
  std::vector<Comment> comments;
};

}  // namespace spongefiles::lint

#endif  // SPONGEFILES_LINT_TOKEN_H_
