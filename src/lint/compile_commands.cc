#include "lint/compile_commands.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace spongefiles::lint {
namespace {

// Decodes one JSON string starting at the opening quote `pos`; advances
// `pos` past the closing quote.
std::string ReadJsonString(std::string_view json, size_t* pos) {
  std::string out;
  ++*pos;  // opening quote
  while (*pos < json.size() && json[*pos] != '"') {
    char c = json[*pos];
    if (c == '\\' && *pos + 1 < json.size()) {
      ++*pos;
      char esc = json[*pos];
      switch (esc) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u':
          // CMake never emits \u escapes for paths; keep the raw text.
          out += "\\u";
          break;
        default: out += esc; break;
      }
    } else {
      out += c;
    }
    ++*pos;
  }
  ++*pos;  // closing quote
  return out;
}

// Splits a shell-ish command string into arguments (whitespace separated,
// honoring double and single quotes and backslash escapes). Newlines count
// as separators: response files are one-argument-per-line by convention.
std::vector<std::string> SplitCommand(const std::string& command) {
  std::vector<std::string> args;
  std::string cur;
  bool in_double = false, in_single = false, any = false;
  for (size_t i = 0; i < command.size(); ++i) {
    char c = command[i];
    if (c == '\\' && i + 1 < command.size() && !in_single) {
      cur += command[++i];
      any = true;
      continue;
    }
    if (c == '"' && !in_single) {
      in_double = !in_double;
      any = true;
      continue;
    }
    if (c == '\'' && !in_double) {
      in_single = !in_single;
      any = true;
      continue;
    }
    if ((c == ' ' || c == '\t' || c == '\n' || c == '\r') && !in_double &&
        !in_single) {
      if (any) args.push_back(cur);
      cur.clear();
      any = false;
      continue;
    }
    cur += c;
    any = true;
  }
  if (any) args.push_back(cur);
  return args;
}

std::string Absolutize(const std::string& path, const std::string& dir) {
  if (path.empty() || path.front() == '/') return path;
  if (dir.empty()) return path;
  return dir.back() == '/' ? dir + path : dir + "/" + path;
}

// Expands @file arguments (compiler response files, which CMake emits for
// long link/include lines on some generators) in place: each @file is
// replaced by the file's contents split like a command line, resolved
// relative to the entry's directory. Unreadable files drop the argument —
// a stale database must not fail the whole load. Response files may nest;
// depth is bounded to break reference cycles.
constexpr int kMaxResponseDepth = 8;

std::vector<std::string> ExpandResponseFiles(std::vector<std::string> args,
                                             const std::string& dir,
                                             int depth) {
  std::vector<std::string> out;
  out.reserve(args.size());
  for (std::string& a : args) {
    if (a.size() < 2 || a[0] != '@' || depth >= kMaxResponseDepth) {
      out.push_back(std::move(a));
      continue;
    }
    std::ifstream in(Absolutize(a.substr(1), dir));
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<std::string> expanded =
        ExpandResponseFiles(SplitCommand(buf.str()), dir, depth + 1);
    for (std::string& e : expanded) out.push_back(std::move(e));
  }
  return out;
}

void ExtractIncludeDirs(std::vector<std::string> raw_args,
                        const std::string& dir, CompileEntry* entry) {
  std::vector<std::string> args =
      ExpandResponseFiles(std::move(raw_args), dir, 0);
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    std::string inc;
    if (a == "-I" || a == "-isystem") {
      if (i + 1 < args.size()) inc = args[++i];
    } else if (a.rfind("-I", 0) == 0) {
      inc = a.substr(2);
    } else if (a.rfind("-isystem", 0) == 0 && a.size() > 8) {
      inc = a.substr(8);
    }
    if (!inc.empty()) entry->include_dirs.push_back(Absolutize(inc, dir));
  }
}

}  // namespace

Result<CompileCommands> CompileCommands::Parse(std::string_view json,
                                               const std::string& base_dir) {
  CompileCommands db;
  size_t pos = 0;
  auto skip_ws = [&] {
    while (pos < json.size() &&
           (json[pos] == ' ' || json[pos] == '\n' || json[pos] == '\t' ||
            json[pos] == '\r' || json[pos] == ',')) {
      ++pos;
    }
  };
  skip_ws();
  if (pos >= json.size() || json[pos] != '[') {
    return InvalidArgument("compile_commands: expected a JSON array");
  }
  ++pos;
  while (true) {
    skip_ws();
    if (pos >= json.size()) {
      return InvalidArgument("compile_commands: unterminated array");
    }
    if (json[pos] == ']') break;
    if (json[pos] != '{') {
      return InvalidArgument("compile_commands: expected an object");
    }
    ++pos;
    CompileEntry entry;
    std::string command;
    std::vector<std::string> arguments;
    while (true) {
      skip_ws();
      if (pos >= json.size()) {
        return InvalidArgument("compile_commands: unterminated object");
      }
      if (json[pos] == '}') {
        ++pos;
        break;
      }
      if (json[pos] != '"') {
        return InvalidArgument("compile_commands: expected a key string");
      }
      std::string key = ReadJsonString(json, &pos);
      skip_ws();
      if (pos >= json.size() || json[pos] != ':') {
        return InvalidArgument("compile_commands: expected ':' after key");
      }
      ++pos;
      skip_ws();
      if (pos < json.size() && json[pos] == '"') {
        std::string value = ReadJsonString(json, &pos);
        if (key == "file") entry.file = value;
        if (key == "directory") entry.directory = value;
        if (key == "command") command = value;
      } else if (pos < json.size() && json[pos] == '[') {
        ++pos;
        while (true) {
          skip_ws();
          if (pos >= json.size()) {
            return InvalidArgument("compile_commands: unterminated list");
          }
          if (json[pos] == ']') {
            ++pos;
            break;
          }
          if (json[pos] != '"') {
            return InvalidArgument("compile_commands: expected a string");
          }
          std::string value = ReadJsonString(json, &pos);
          if (key == "arguments") arguments.push_back(value);
        }
      } else {
        // Scalar (number / bool / null): skip to the next delimiter.
        while (pos < json.size() && json[pos] != ',' && json[pos] != '}') {
          ++pos;
        }
      }
    }
    // The spec allows a relative `directory` (relative to the database's
    // own location); resolve it first so file and include paths chain off
    // an absolute root.
    entry.directory = Absolutize(entry.directory, base_dir);
    entry.file = Absolutize(entry.file, entry.directory);
    if (!arguments.empty()) {
      ExtractIncludeDirs(std::move(arguments), entry.directory, &entry);
    } else if (!command.empty()) {
      ExtractIncludeDirs(SplitCommand(command), entry.directory, &entry);
    }
    if (!entry.file.empty()) db.entries_.push_back(std::move(entry));
  }
  return db;
}

Result<CompileCommands> CompileCommands::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  // Relative `directory` entries resolve against the database's location.
  size_t slash = path.find_last_of('/');
  return Parse(buf.str(),
               slash == std::string::npos ? "" : path.substr(0, slash));
}

std::vector<std::string> CompileCommands::AllIncludeDirs() const {
  std::vector<std::string> out;
  for (const auto& e : entries_) {
    for (const auto& d : e.include_dirs) {
      if (std::find(out.begin(), out.end(), d) == out.end()) {
        out.push_back(d);
      }
    }
  }
  return out;
}

const CompileEntry* CompileCommands::EntryFor(const std::string& file) const {
  for (const auto& e : entries_) {
    if (e.file == file) return &e;
  }
  return nullptr;
}

}  // namespace spongefiles::lint
