#include "sim/engine.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace spongefiles::sim {

// Wraps a detached task so the frame marks itself detached before running.
// (The wrapper frame is what Spawn schedules; it awaits the real task.)
// On completion the wrapper removes itself from the engine's live-frame
// registry *before* final_suspend destroys the frame, so the registry only
// ever holds destroyable frames.
Task<> RunDetachedWrapper(Engine* engine, uint64_t id, Task<> task) {
  co_await task;
  engine->detached_.erase(id);
}

void Engine::Spawn(Task<> task) { SpawnAt(now_, std::move(task)); }

void Engine::SpawnAt(SimTime at, Task<> task) {
  SPONGE_CHECK(at >= now_) << "SpawnAt in the past: " << at << " < " << now_;
  uint64_t id = next_detached_id_++;
  Task<> wrapper = RunDetachedWrapper(this, id, std::move(task));
  auto handle = wrapper.Release();
  handle.promise().detached = true;
  detached_.emplace(id, handle);
  ScheduleHandle(at, handle);
}

size_t Engine::DrainDetached() {
  // Discard pending events first: they reference frames about to be
  // destroyed (and destroying a parent already reclaims any suspended
  // child a queued handle might point into).
  queue_ = {};
  // Move the registry out so the loop is immune to destructor side effects
  // (a frame-local destructor must not spawn, but be defensive).
  std::unordered_map<uint64_t, std::coroutine_handle<>> frames =
      std::move(detached_);
  detached_.clear();
  // Destroy in spawn order, not hash order: frame-local destructors touch
  // telemetry and shared state, so teardown side effects must be as
  // reproducible as the run that created them.
  std::vector<std::pair<uint64_t, std::coroutine_handle<>>> ordered(
      frames.begin(), frames.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [id, handle] : ordered) handle.destroy();
  return ordered.size();
}

void Engine::ScheduleHandle(SimTime at, std::coroutine_handle<> h) {
  SPONGE_CHECK(at >= now_) << "schedule in the past: " << at << " < " << now_;
  queue_.push(Event{at, next_seq_++, h});
}

uint64_t Engine::Run() {
  uint64_t processed = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++processed;
    ++events_processed_;
    ev.handle.resume();
  }
  return processed;
}

uint64_t Engine::RunUntil(SimTime deadline) {
  uint64_t processed = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++processed;
    ++events_processed_;
    ev.handle.resume();
  }
  if (now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace spongefiles::sim
