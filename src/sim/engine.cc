#include "sim/engine.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "sim/access.h"

namespace spongefiles::sim {

namespace {

// Heap order: earlier time first; FIFO by schedule sequence within an
// instant.
inline bool Before(SimTime a_at, uint64_t a_seq, SimTime b_at,
                   uint64_t b_seq) {
  if (a_at != b_at) return a_at < b_at;
  return a_seq < b_seq;
}

}  // namespace

// Wraps a detached task so the frame marks itself detached before running.
// (The wrapper frame is what Spawn schedules; it awaits the real task.)
// On completion the wrapper returns its registry slot *before*
// final_suspend destroys the frame, so the registry only ever holds
// destroyable frames.
Task<> RunDetachedWrapper(Engine* engine, uint32_t slot, Task<> task) {
  co_await task;
  engine->ReleaseDetached(slot);
}

void Engine::Spawn(Task<> task) { SpawnAt(now_, std::move(task)); }

void Engine::SpawnAt(SimTime at, Task<> task) {
  SPONGE_CHECK(at >= now_) << "SpawnAt in the past: " << at << " < " << now_;
  // Claim the slot first: the wrapper's frame captures the slot index it
  // will release on completion.
  uint32_t slot;
  if (!detached_free_.empty()) {
    slot = detached_free_.back();
    detached_free_.pop_back();
  } else {
    slot = static_cast<uint32_t>(detached_slots_.size());
    detached_slots_.emplace_back();
  }
  Task<> wrapper = RunDetachedWrapper(this, slot, std::move(task));
  auto handle = wrapper.Release();
  handle.promise().detached = true;
  detached_slots_[slot] = DetachedSlot{next_detached_id_++, handle};
  ++detached_live_;
  ScheduleHandle(at, handle);
}

void Engine::ReleaseDetached(uint32_t slot) {
  detached_slots_[slot].handle = nullptr;
  detached_free_.push_back(slot);
  --detached_live_;
}

size_t Engine::DrainDetached() {
  // Discard pending events first: they reference frames about to be
  // destroyed (and destroying a parent already reclaims any suspended
  // child a queued handle might point into).
  heap_.clear();
  ring_head_ = ring_tail_ = 0;
  // Snapshot the live frames and reset the registry before destroying, so
  // the loop is immune to destructor side effects (a frame-local destructor
  // must not spawn, but be defensive).
  std::vector<DetachedSlot> live;
  live.reserve(detached_live_);
  for (const DetachedSlot& slot : detached_slots_) {
    if (slot.handle) live.push_back(slot);
  }
  detached_slots_.clear();
  detached_free_.clear();
  detached_live_ = 0;
  // Destroy in spawn order, not slot order: slots are recycled, but the
  // spawn id is monotone, and teardown side effects (telemetry, shared
  // state) must be as reproducible as the run that created them.
  std::sort(live.begin(), live.end(),
            [](const DetachedSlot& a, const DetachedSlot& b) {
              return a.id < b.id;
            });
  for (const DetachedSlot& slot : live) slot.handle.destroy();
  return live.size();
}

void Engine::ScheduleHandle(SimTime at, std::coroutine_handle<> h) {
  SPONGE_CHECK(at >= now_) << "schedule in the past: " << at << " < " << now_;
  if (at == now_) {
    // Same-instant fast path: no heap sift, no seq needed — the ring is
    // FIFO, and every already-heaped event at this instant was scheduled
    // earlier (smaller seq), so "drain heap@now first, then ring" is exact
    // schedule order.
    RingPush(h);
  } else {
    HeapPush(Event{at, next_seq_++, h});
  }
}

// ---- timed-event store ----------------------------------------------------

void Engine::HeapPush(Event ev) {
  heap_.push_back(ev);
  size_t i = heap_.size() - 1;
  while (i > 0) {
    size_t parent = (i - 1) >> 2;
    if (!Before(heap_[i].at, heap_[i].seq, heap_[parent].at,
                heap_[parent].seq)) {
      break;
    }
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Engine::Event Engine::HeapPop() {
  Event top = heap_.front();
  Event last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Percolate the hole down, moving `last` as little as possible: a
    // 4-ary heap halves the tree depth of the binary heap and keeps the
    // children of a node on one cache line pair.
    size_t i = 0;
    const size_t n = heap_.size();
    for (;;) {
      size_t first = 4 * i + 1;
      if (first >= n) break;
      size_t best = first;
      size_t end = std::min(first + 4, n);
      for (size_t j = first + 1; j < end; ++j) {
        if (Before(heap_[j].at, heap_[j].seq, heap_[best].at,
                   heap_[best].seq)) {
          best = j;
        }
      }
      if (!Before(heap_[best].at, heap_[best].seq, last.at, last.seq)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

bool Engine::HeapEmpty() const { return heap_.empty(); }

SimTime Engine::HeapTopTime() const { return heap_.front().at; }

// ---- same-instant FIFO ring -----------------------------------------------

void Engine::RingPush(std::coroutine_handle<> h) {
  if (ring_.empty()) ring_.resize(1024);
  size_t cap = ring_.size();
  if (((ring_tail_ + 1) & (cap - 1)) == ring_head_) {
    // Full: double the slab, linearizing the live range to the front.
    std::vector<std::coroutine_handle<>> bigger(cap * 2);
    size_t n = 0;
    for (size_t i = ring_head_; i != ring_tail_; i = (i + 1) & (cap - 1)) {
      bigger[n++] = ring_[i];
    }
    ring_ = std::move(bigger);
    ring_head_ = 0;
    ring_tail_ = n;
    cap = ring_.size();
  }
  ring_[ring_tail_] = h;
  ring_tail_ = (ring_tail_ + 1) & (cap - 1);
}

std::coroutine_handle<> Engine::RingPop() {
  std::coroutine_handle<> h = ring_[ring_head_];
  ring_head_ = (ring_head_ + 1) & (ring_.size() - 1);
  return h;
}

// ---- run loops ------------------------------------------------------------

uint64_t Engine::Run() {
  uint64_t processed = 0;
  for (;;) {
    std::coroutine_handle<> h;
    if (!HeapEmpty() && HeapTopTime() == now_) {
      h = HeapPop().handle;
    } else if (!RingEmpty()) {
      h = RingPop();
    } else if (!HeapEmpty()) {
      now_ = HeapTopTime();
      h = HeapPop().handle;
    } else {
      break;
    }
    ++processed;
    ++events_processed_;
    if (recorder_ != nullptr) recorder_->BeginEvent(now_);
    h.resume();
  }
  return processed;
}

uint64_t Engine::RunUntil(SimTime deadline) {
  uint64_t processed = 0;
  for (;;) {
    std::coroutine_handle<> h;
    if (now_ <= deadline && !HeapEmpty() && HeapTopTime() == now_) {
      h = HeapPop().handle;
    } else if (now_ <= deadline && !RingEmpty()) {
      h = RingPop();
    } else if (!HeapEmpty() && HeapTopTime() <= deadline) {
      now_ = HeapTopTime();
      h = HeapPop().handle;
    } else {
      break;
    }
    ++processed;
    ++events_processed_;
    if (recorder_ != nullptr) recorder_->BeginEvent(now_);
    h.resume();
  }
  if (now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace spongefiles::sim
