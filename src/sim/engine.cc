#include "sim/engine.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "sim/access.h"

namespace spongefiles::sim {

namespace internal {
thread_local LaneTls g_lane_tls;
}  // namespace internal

namespace {

constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();

// Heap order: earlier time first; FIFO by schedule sequence within an
// instant.
inline bool Before(SimTime a_at, uint64_t a_seq, SimTime b_at,
                   uint64_t b_seq) {
  if (a_at != b_at) return a_at < b_at;
  return a_seq < b_seq;
}

}  // namespace

// Wraps a detached task so the frame marks itself detached before running.
// (The wrapper frame is what Spawn schedules; it awaits the real task.)
// On completion the wrapper returns its registry slot *before*
// final_suspend destroys the frame, so the registry only ever holds
// destroyable frames.
Task<> RunDetachedWrapper(Engine* engine, uint32_t lane, uint32_t slot,
                          Task<> task) {
  co_await task;
  engine->ReleaseDetached(lane, slot);
}

void Engine::ConfigureShards(ShardPlan plan) {
  SPONGE_CHECK(plan.lanes >= 1);
  SPONGE_CHECK(lane_count_ == 1) << "engine already sharded";
  SPONGE_CHECK(main_->heap.empty() && RingEmpty(*main_) &&
               main_->detached_live == 0)
      << "ConfigureShards must precede all scheduling";
  for (uint32_t lane : plan.lane_of_node) SPONGE_CHECK(lane < plan.lanes);
  lane_of_node_ = std::move(plan.lane_of_node);
  if (plan.lanes == 1) return;  // stays on the legacy single-queue path
  SPONGE_CHECK(plan.lookahead > 0)
      << "sharded execution needs a positive lookahead";
  lane_count_ = plan.lanes;
  lookahead_ = plan.lookahead;
  lanes_.resize(lane_count_);
  main_ = &lanes_[0];
  for (uint32_t i = 0; i < lane_count_; ++i) lanes_[i].index = i;
}

void Engine::Spawn(Task<> task) {
  Lane& lane = CurrentLaneRef();
  ScheduleSpawn(lane, lane.now, std::move(task));
}

void Engine::SpawnAt(SimTime at, Task<> task) {
  ScheduleSpawn(CurrentLaneRef(), at, std::move(task));
}

void Engine::SpawnOnShard(uint32_t lane, SimTime at, Task<> task) {
  SPONGE_CHECK(lane < lane_count_);
  ScheduleSpawn(lanes_[lane], at, std::move(task));
}

uint32_t Engine::ClaimDetachedSlot(Lane& lane) {
  if (!lane.detached_free.empty()) {
    uint32_t slot = lane.detached_free.back();
    lane.detached_free.pop_back();
    return slot;
  }
  uint32_t slot = static_cast<uint32_t>(lane.detached_slots.size());
  lane.detached_slots.emplace_back();
  return slot;
}

void Engine::ScheduleSpawn(Lane& lane, SimTime at, Task<> task) {
  SPONGE_CHECK(at >= lane.now)
      << "SpawnAt in the past: " << at << " < " << lane.now;
  // Claim the slot first: the wrapper's frame captures the slot index it
  // will release on completion.
  uint32_t slot = ClaimDetachedSlot(lane);
  Task<> wrapper = RunDetachedWrapper(this, lane.index, slot, std::move(task));
  auto handle = wrapper.Release();
  handle.promise().detached = true;
  lane.detached_slots[slot] = DetachedSlot{lane.next_detached_id++, handle};
  ++lane.detached_live;
  if (&lane == &CurrentLaneRef()) {
    if (at == lane.now) {
      RingPush(lane, handle);
    } else {
      HeapPush(lane, Event{at, lane.next_seq++, handle});
    }
  } else {
    // Homing onto a quiescent foreign lane (pre-run setup, or the global
    // lane placing work during phase B): always through the heap — heap
    // events at an instant precede ring events, and the lane is not at
    // `at` yet anyway.
    HeapPush(lane, Event{at, lane.next_seq++, handle});
  }
}

void Engine::ReleaseDetached(uint32_t lane_index, uint32_t slot) {
  Lane& owner = lanes_[lane_index];
  if (&owner == &CurrentLaneRef()) {
    owner.detached_slots[slot].handle = nullptr;
    owner.detached_free.push_back(slot);
    --owner.detached_live;
    return;
  }
  // The task finished on a foreign lane (it hopped and never returned
  // home); the owner's registry is not ours to touch mid-window.
  DeferToBarrier([this, lane_index, slot] {
    Lane& owner_lane = lanes_[lane_index];
    owner_lane.detached_slots[slot].handle = nullptr;
    owner_lane.detached_free.push_back(slot);
    --owner_lane.detached_live;
  });
}

void Engine::DeferToBarrier(std::function<void()> fn) {
  if (lane_count_ == 1) {
    fn();
    return;
  }
  CurrentLaneRef().deferred.push_back(std::move(fn));
}

size_t Engine::DrainDetached() {
  // Pending barrier work first: it is registry bookkeeping for frames that
  // already destroyed themselves, and must land before the snapshot below
  // treats their slots as live.
  for (Lane& lane : lanes_) {
    std::vector<std::function<void()>> work;
    work.swap(lane.deferred);
    for (auto& fn : work) fn();
  }
  size_t destroyed = 0;
  // Lane order: the global lane's frames first, then each worker lane's —
  // within a lane, spawn order (ids are per-lane monotone).
  for (Lane& lane : lanes_) {
    // Discard pending events first: they reference frames about to be
    // destroyed (and destroying a parent already reclaims any suspended
    // child a queued handle might point into).
    lane.heap.clear();
    lane.ring_head = lane.ring_tail = 0;
    lane.outbox.clear();
    // Snapshot the live frames and reset the registry before destroying,
    // so the loop is immune to destructor side effects (a frame-local
    // destructor must not spawn, but be defensive).
    std::vector<DetachedSlot> live;
    live.reserve(lane.detached_live);
    for (const DetachedSlot& slot : lane.detached_slots) {
      if (slot.handle) live.push_back(slot);
    }
    lane.detached_slots.clear();
    lane.detached_free.clear();
    lane.detached_live = 0;
    std::sort(live.begin(), live.end(),
              [](const DetachedSlot& a, const DetachedSlot& b) {
                return a.id < b.id;
              });
    for (const DetachedSlot& slot : live) slot.handle.destroy();
    destroyed += live.size();
  }
  return destroyed;
}

size_t Engine::detached_live() const {
  size_t n = 0;
  for (const Lane& lane : lanes_) n += lane.detached_live;
  return n;
}

uint64_t Engine::events_processed() const {
  uint64_t n = 0;
  for (const Lane& lane : lanes_) n += lane.events_processed;
  return n;
}

void Engine::ScheduleHandle(SimTime at, std::coroutine_handle<> h) {
  Lane& lane = CurrentLaneRef();
  SPONGE_CHECK(at >= lane.now)
      << "schedule in the past: " << at << " < " << lane.now;
  if (at == lane.now) {
    // Same-instant fast path: no heap sift, no seq needed — the ring is
    // FIFO, and every already-heaped event at this instant was scheduled
    // earlier (smaller seq), so "drain heap@now first, then ring" is exact
    // schedule order.
    RingPush(lane, h);
  } else {
    HeapPush(lane, Event{at, lane.next_seq++, h});
  }
}

void Engine::ScheduleHandleOnLane(SimTime at, std::coroutine_handle<> h,
                                  uint32_t target) {
  Lane& current = CurrentLaneRef();
  if (target == current.index) {
    SPONGE_CHECK(at >= current.now)
        << "schedule in the past: " << at << " < " << current.now;
    if (at == current.now) {
      RingPush(current, h);
    } else {
      HeapPush(current, Event{at, current.next_seq++, h});
    }
    return;
  }
  SPONGE_CHECK(target < lane_count_);
  // Buffered until the window barrier; delivery clamps to the window
  // boundary, so the receiving lane has provably not run past it.
  current.outbox.push_back(Outbound{target, at, h});
}

// ---- timed-event store ----------------------------------------------------

void Engine::HeapPush(Lane& lane, Event ev) {
  auto& heap = lane.heap;
  heap.push_back(ev);
  size_t i = heap.size() - 1;
  while (i > 0) {
    size_t parent = (i - 1) >> 2;
    if (!Before(heap[i].at, heap[i].seq, heap[parent].at, heap[parent].seq)) {
      break;
    }
    std::swap(heap[i], heap[parent]);
    i = parent;
  }
}

Engine::Event Engine::HeapPop(Lane& lane) {
  auto& heap = lane.heap;
  Event top = heap.front();
  Event last = heap.back();
  heap.pop_back();
  if (!heap.empty()) {
    // Percolate the hole down, moving `last` as little as possible: a
    // 4-ary heap halves the tree depth of the binary heap and keeps the
    // children of a node on one cache line pair.
    size_t i = 0;
    const size_t n = heap.size();
    for (;;) {
      size_t first = 4 * i + 1;
      if (first >= n) break;
      size_t best = first;
      size_t end = std::min(first + 4, n);
      for (size_t j = first + 1; j < end; ++j) {
        if (Before(heap[j].at, heap[j].seq, heap[best].at, heap[best].seq)) {
          best = j;
        }
      }
      if (!Before(heap[best].at, heap[best].seq, last.at, last.seq)) break;
      heap[i] = heap[best];
      i = best;
    }
    heap[i] = last;
  }
  return top;
}

// ---- same-instant FIFO ring -----------------------------------------------

void Engine::RingPush(Lane& lane, std::coroutine_handle<> h) {
  auto& ring = lane.ring;
  if (ring.empty()) ring.resize(1024);
  size_t cap = ring.size();
  if (((lane.ring_tail + 1) & (cap - 1)) == lane.ring_head) {
    // Full: double the slab, linearizing the live range to the front.
    std::vector<std::coroutine_handle<>> bigger(cap * 2);
    size_t n = 0;
    for (size_t i = lane.ring_head; i != lane.ring_tail;
         i = (i + 1) & (cap - 1)) {
      bigger[n++] = ring[i];
    }
    ring = std::move(bigger);
    lane.ring_head = 0;
    lane.ring_tail = n;
    cap = ring.size();
  }
  ring[lane.ring_tail] = h;
  lane.ring_tail = (lane.ring_tail + 1) & (cap - 1);
}

std::coroutine_handle<> Engine::RingPop(Lane& lane) {
  std::coroutine_handle<> h = lane.ring[lane.ring_head];
  lane.ring_head = (lane.ring_head + 1) & (lane.ring.size() - 1);
  return h;
}

// ---- run loops ------------------------------------------------------------

uint64_t Engine::RunLaneEvents(Lane& lane, SimTime deadline) {
  uint64_t processed = 0;
  const uint32_t lane_index = lane.index;
  for (;;) {
    std::coroutine_handle<> h;
    if (lane.now <= deadline && !lane.heap.empty() &&
        lane.heap.front().at == lane.now) {
      h = HeapPop(lane).handle;
    } else if (lane.now <= deadline && !RingEmpty(lane)) {
      h = RingPop(lane);
    } else if (!lane.heap.empty() && lane.heap.front().at <= deadline) {
      lane.now = lane.heap.front().at;
      h = HeapPop(lane).handle;
    } else {
      break;
    }
    ++processed;
    ++lane.events_processed;
    if (recorder_ != nullptr) recorder_->BeginEvent(lane.now, lane_index);
    h.resume();
  }
  return processed;
}

uint64_t Engine::RunWorkerLane(uint32_t lane_index, SimTime window_end) {
  Lane& lane = lanes_[lane_index];
  internal::g_lane_tls = internal::LaneTls{this, &lane, lane_index};
  uint64_t processed = RunLaneEvents(lane, window_end - 1);
  internal::g_lane_tls = internal::LaneTls{};
  return processed;
}

SimTime Engine::NextEventTime(const Lane& lane) {
  // Rings drain fully within a window (their events sit at the lane's
  // current instant, always eligible), so between windows only the heaps —
  // and pre-run ring entries — carry pending work.
  if (!RingEmpty(lane)) return lane.now;
  if (!lane.heap.empty()) return lane.heap.front().at;
  return kNoEvent;
}

uint64_t Engine::RunWindows(SimTime deadline, bool bounded) {
  SPONGE_CHECK(runner_ == nullptr || recorder_ == nullptr)
      << "access-set recording requires the serial lane driver";
  const uint64_t start_events = events_processed();
  for (;;) {
    SimTime t = kNoEvent;
    for (const Lane& lane : lanes_) {
      t = std::min(t, NextEventTime(lane));
    }
    if (t == kNoEvent || (bounded && t > deadline)) break;
    // The window [t, w): every lane may run its own events below w without
    // hearing from the others, because any cross-lane effect emitted at or
    // after t is delivered no earlier than w.
    SimTime w = t + lookahead_;
    if (bounded && w > deadline) w = deadline + 1;
    ++window_counter_;
    if (recorder_ != nullptr) recorder_->BeginWindow(window_counter_);
    // Phase A: worker lanes, independently.
    if (runner_ != nullptr) {
      runner_->RunWorkers(this, w);
    } else {
      for (uint32_t l = 1; l < lane_count_; ++l) RunWorkerLane(l, w);
    }
    // Replay captured side effects in lane order, so the global fold order
    // matches the serial schedule exactly.
    if (hooks_ != nullptr) {
      for (uint32_t l = 1; l < lane_count_; ++l) hooks_->ReplayLane(l);
    }
    // Phase B: the global lane, alone — it may touch any lane's state.
    RunLaneEvents(lanes_[0], w - 1);
    // Barrier: deferred bookkeeping, then cross-lane deliveries, in
    // (source lane, emission order); arrivals clamp to the window edge.
    for (uint32_t l = 0; l < lane_count_; ++l) {
      if (lanes_[l].deferred.empty()) continue;
      std::vector<std::function<void()>> work;
      work.swap(lanes_[l].deferred);
      for (auto& fn : work) fn();
    }
    for (uint32_t l = 0; l < lane_count_; ++l) {
      Lane& source = lanes_[l];
      for (const Outbound& ob : source.outbox) {
        Lane& target = lanes_[ob.lane];
        SimTime at = ob.at < w ? w : ob.at;
        HeapPush(target, Event{at, target.next_seq++, ob.handle});
      }
      source.outbox.clear();
    }
  }
  if (bounded) {
    for (Lane& lane : lanes_) {
      if (lane.now < deadline) lane.now = deadline;
    }
  }
  return events_processed() - start_events;
}

uint64_t Engine::Run() {
  if (lane_count_ == 1) return RunLaneEvents(*main_, kNoEvent);
  return RunWindows(kNoEvent - 1, /*bounded=*/false);
}

uint64_t Engine::RunUntil(SimTime deadline) {
  if (lane_count_ == 1) {
    uint64_t processed = RunLaneEvents(*main_, deadline);
    if (main_->now < deadline) main_->now = deadline;
    return processed;
  }
  return RunWindows(deadline, /*bounded=*/true);
}

}  // namespace spongefiles::sim
