#include "sim/engine.h"

#include "common/logging.h"

namespace spongefiles::sim {

namespace {

// Wraps a detached task so the frame marks itself detached before running.
// (The wrapper frame is what Spawn schedules; it awaits the real task.)
Task<> RunDetached(Task<> task) { co_await task; }

}  // namespace

void Engine::Spawn(Task<> task) { SpawnAt(now_, std::move(task)); }

void Engine::SpawnAt(SimTime at, Task<> task) {
  SPONGE_CHECK(at >= now_) << "SpawnAt in the past: " << at << " < " << now_;
  Task<> wrapper = RunDetached(std::move(task));
  auto handle = wrapper.Release();
  handle.promise().detached = true;
  ScheduleHandle(at, handle);
}

void Engine::ScheduleHandle(SimTime at, std::coroutine_handle<> h) {
  SPONGE_CHECK(at >= now_) << "schedule in the past: " << at << " < " << now_;
  queue_.push(Event{at, next_seq_++, h});
}

uint64_t Engine::Run() {
  uint64_t processed = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++processed;
    ++events_processed_;
    ev.handle.resume();
  }
  return processed;
}

uint64_t Engine::RunUntil(SimTime deadline) {
  uint64_t processed = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++processed;
    ++events_processed_;
    ev.handle.resume();
  }
  if (now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace spongefiles::sim
