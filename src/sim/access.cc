#include "sim/access.h"

#include <algorithm>
#include <cstring>

namespace spongefiles::sim {

namespace {

std::string HomeLabel(bool has_node, size_t node, size_t rack,
                      const char* projection) {
  if (std::strcmp(projection, "node") == 0) {
    return "node" + std::to_string(node);
  }
  (void)has_node;
  return "rack" + std::to_string(rack);
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

void AccessRecorder::BeginEvent(SimTime now, uint32_t lane) {
  FlushEvent();
  in_event_ = true;
  event_time_ = now;
  event_lane_ = lane;
  ++event_id_;
  ++census_.events;
}

void AccessRecorder::BeginWindow(uint64_t id) {
  FlushEvent();
  window_id_ = id;
}

void AccessRecorder::Record(const void* obj, const char* object_name,
                            const char* group, bool write, Domain domain) {
  ++census_.accesses;
  auto [it, inserted] = objects_.try_emplace(obj);
  if (inserted) {
    ObjectInfo& info = it->second;
    info.domain = domain;
    switch (domain.home) {
      case Home::kNode:
        info.label = std::string(object_name) + "@node" +
                     std::to_string(domain.node);
        info.rack = RackOf(domain.node);
        break;
      case Home::kRack:
        info.label = std::string(object_name) + "@rack" +
                     std::to_string(domain.rack);
        info.rack = domain.rack;
        break;
      case Home::kGlobal:
        info.label = std::string(object_name) + "@global";
        break;
    }
    if (domain.home == Home::kGlobal) {
      census_.global_objects[info.label] = domain.reason;
    }
  }
  if (it->second.domain.home == Home::kGlobal) {
    ++census_.global_accesses;
    return;  // sanctioned shared state: censused, never a conflict
  }
  if (!in_event_) return;  // touch outside any scheduled event (setup code)
  // Within-event dedup: one entry per (obj, group), strongest kind wins.
  // An event is one sequential continuation chain — it cannot race with
  // itself, so only its net footprint matters.
  for (EventAccess& a : event_accesses_) {
    if (a.obj == obj && std::strcmp(a.group, group) == 0) {
      a.write = a.write || write;
      return;
    }
  }
  event_accesses_.push_back(EventAccess{obj, group, write});
}

void AccessRecorder::FlushEvent() {
  if (!in_event_) return;
  in_event_ = false;
  if (event_accesses_.empty()) return;
  ++census_.touched_events;

  // Derive the event's home from the first node-/rack-homed touch, and
  // count node-projection splits (an event touching state homed at two
  // nodes is a point the parallel port must cut with a message).
  bool has_node = false;
  size_t anchor_node = 0, anchor_rack = 0;
  bool anchored = false, split = false;
  for (const EventAccess& a : event_accesses_) {
    const ObjectInfo& info = objects_.at(a.obj);
    if (!anchored) {
      anchored = true;
      has_node = info.domain.home == Home::kNode;
      anchor_node = info.domain.node;
      anchor_rack = info.rack;
    } else if (info.domain.home == Home::kNode &&
               (!has_node || info.domain.node != anchor_node)) {
      split = true;
    } else if (info.domain.home == Home::kRack && has_node) {
      split = true;
    }
  }
  if (split) ++census_.split_events;

  const Duration max_window =
      std::max(config_.node_lookahead, config_.rack_lookahead);
  for (const EventAccess& a : event_accesses_) {
    const ObjectInfo& info = objects_.at(a.obj);
    auto& window = windows_[{a.obj, a.group}];
    while (!window.empty() && event_time_ - window.front().time >= max_window &&
           !(window_id_ != 0 && window.front().window == window_id_)) {
      window.pop_front();
    }
    for (const WindowEntry& e : window) {
      if (!e.write && !a.write) continue;  // read-read never conflicts
      // Lane projection (sharded runs only): two worker lanes touching the
      // same (object, group) inside one conservative window is exactly the
      // pair the threaded driver would run concurrently. The global lane
      // (lane 0) runs in its own exclusive phase and never conflicts.
      if (window_id_ != 0 && e.window == window_id_ && e.lane != event_lane_ &&
          e.lane >= 1 && event_lane_ >= 1) {
        std::string key = info.label + "/" + std::string(a.group) + "/lane/" +
                          "lane" + std::to_string(e.lane) + "/lane" +
                          std::to_string(event_lane_);
        if (reported_.insert(key).second) {
          Conflict c;
          c.object = info.label;
          c.group = a.group;
          c.projection = "lane";
          c.event_a = e.event_id;
          c.event_b = event_id_;
          c.time_a = e.time;
          c.time_b = event_time_;
          c.home_a = "lane" + std::to_string(e.lane);
          c.home_b = "lane" + std::to_string(event_lane_);
          c.write_a = e.write;
          c.write_b = a.write;
          census_.conflicts.push_back(std::move(c));
        }
      }
      const Duration dt = event_time_ - e.time;
      struct Projection {
        const char* name;
        bool applies;
        bool differs;
        Duration lookahead;
      };
      const Projection projections[] = {
          {"node", e.has_node && has_node,
           e.node != anchor_node, config_.node_lookahead},
          {"rack", true, e.rack != anchor_rack, config_.rack_lookahead},
      };
      for (const Projection& p : projections) {
        if (!p.applies || !p.differs || dt >= p.lookahead) continue;
        std::string key = info.label + "/" + a.group + "/" + p.name + "/" +
                          HomeLabel(e.has_node, e.node, e.rack, p.name) +
                          "/" +
                          HomeLabel(has_node, anchor_node, anchor_rack,
                                    p.name);
        if (!reported_.insert(key).second) continue;
        Conflict c;
        c.object = info.label;
        c.group = a.group;
        c.projection = p.name;
        c.event_a = e.event_id;
        c.event_b = event_id_;
        c.time_a = e.time;
        c.time_b = event_time_;
        c.home_a = HomeLabel(e.has_node, e.node, e.rack, p.name);
        c.home_b = HomeLabel(has_node, anchor_node, anchor_rack, p.name);
        c.write_a = e.write;
        c.write_b = a.write;
        census_.conflicts.push_back(std::move(c));
      }
    }
    window.push_back(WindowEntry{event_time_, event_id_, a.write, has_node,
                                 anchor_node, anchor_rack, event_lane_,
                                 window_id_});
  }
  event_accesses_.clear();
}

void AccessRecorder::Finish() { FlushEvent(); }

std::string AccessRecorder::CensusJson() const {
  std::string out = "{\n";
  out += "  \"events\": " + std::to_string(census_.events) + ",\n";
  out += "  \"touched_events\": " + std::to_string(census_.touched_events) +
         ",\n";
  out += "  \"accesses\": " + std::to_string(census_.accesses) + ",\n";
  out += "  \"global_accesses\": " + std::to_string(census_.global_accesses) +
         ",\n";
  out += "  \"split_events\": " + std::to_string(census_.split_events) + ",\n";
  out += "  \"unexplained_conflicts\": " +
         std::to_string(census_.conflicts.size()) + ",\n";
  out += "  \"global_objects\": {";
  bool first = true;
  for (const auto& [label, reason] : census_.global_objects) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, label);
    out += ": ";
    AppendJsonString(&out, reason);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"conflicts\": [";
  first = true;
  for (const Conflict& c : census_.conflicts) {
    out += first ? "\n    {" : ",\n    {";
    first = false;
    out += "\"object\": ";
    AppendJsonString(&out, c.object);
    out += ", \"group\": ";
    AppendJsonString(&out, c.group);
    out += ", \"projection\": ";
    AppendJsonString(&out, c.projection);
    out += ", \"event_a\": " + std::to_string(c.event_a);
    out += ", \"event_b\": " + std::to_string(c.event_b);
    out += ", \"time_a\": " + std::to_string(c.time_a);
    out += ", \"time_b\": " + std::to_string(c.time_b);
    out += ", \"home_a\": ";
    AppendJsonString(&out, c.home_a);
    out += ", \"home_b\": ";
    AppendJsonString(&out, c.home_b);
    out += ", \"write_a\": ";
    out += c.write_a ? "true" : "false";
    out += ", \"write_b\": ";
    out += c.write_b ? "true" : "false";
    out += "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace spongefiles::sim
