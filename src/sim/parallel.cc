#include "sim/parallel.h"

// The one translation unit in the tree allowed to use threading headers
// (spongelint's threading allowlist covers src/sim/parallel*). Everything
// here is host-machine concurrency — simulated time never advances on these
// threads except through Engine::RunWorkerLane, whose schedule is identical
// to the serial driver's.
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace spongefiles::sim {

namespace {

// The live Sharding (obs sinks are process-global function pointers, so at
// most one sharded engine can run at a time).
Sharding* g_active = nullptr;

// Serializes Registry::FindOrCreate while worker threads may create
// instruments (first touch per call site).
std::mutex g_registry_mu;

void RegistryLock(bool acquire) {
  if (acquire) {
    g_registry_mu.lock();
  } else {
    g_registry_mu.unlock();
  }
}

// True iff the calling thread is currently executing a worker lane of the
// active sharded engine; sets *lane on success. The driver thread between
// phases — and any unrelated thread — declines, so the mutation applies
// inline (which is exactly what the barrier replay path relies on).
bool OnWorkerLane(uint32_t* lane) {
  const internal::LaneTls& tls = internal::g_lane_tls;
  if (g_active == nullptr || tls.engine != g_active->engine() ||
      tls.index == 0) {
    return false;
  }
  *lane = tls.index;
  return true;
}

bool MetricSink(void* instrument, int op, uint64_t u, int64_t i, double d) {
  uint32_t lane;
  if (!OnWorkerLane(&lane)) return false;
  g_active->CaptureMetric(lane, instrument, op, u, i, d);
  return true;
}

bool TraceSink(obs::Tracer* tracer, char phase, int64_t ts, int64_t dur,
               uint64_t pid, uint64_t tid, const char* category,
               std::string* name, obs::TraceArgs* args) {
  uint32_t lane;
  if (!OnWorkerLane(&lane)) return false;
  g_active->CaptureTrace(lane, tracer, phase, ts, dur, pid, tid, category,
                         std::move(*name), std::move(*args));
  return true;
}

// Phase-A executor: a persistent pool of `threads` workers plus the driver
// thread drain the worker lanes of each window, claiming lanes through an
// atomic cursor. RunWorkers does not return until every lane has completed
// (the engine's phase barrier), and the mutex hand-offs on entry and exit
// order each window's captures before its replay.
class PoolRunner : public LaneRunner {
 public:
  explicit PoolRunner(unsigned threads) {
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      threads_.emplace_back([this] { WorkerMain(); });
    }
  }

  ~PoolRunner() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void RunWorkers(Engine* engine, SimTime window_end) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      engine_ = engine;
      window_end_ = window_end;
      next_lane_.store(1, std::memory_order_relaxed);
      remaining_ = threads_.size();
      ++generation_;
    }
    cv_work_.notify_all();
    DrainLanes(engine, window_end);  // the driver helps
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  void DrainLanes(Engine* engine, SimTime window_end) {
    const uint32_t end = engine->lane_count();
    for (;;) {
      uint32_t lane = next_lane_.fetch_add(1, std::memory_order_relaxed);
      if (lane >= end) break;
      engine->RunWorkerLane(lane, window_end);
    }
  }

  void WorkerMain() {
    uint64_t seen = 0;
    for (;;) {
      Engine* engine;
      SimTime window_end;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_work_.wait(lock,
                      [this, seen] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        engine = engine_;
        window_end = window_end_;
      }
      DrainLanes(engine, window_end);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--remaining_ == 0) cv_done_.notify_one();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  bool stop_ = false;
  uint64_t generation_ = 0;
  size_t remaining_ = 0;
  Engine* engine_ = nullptr;
  SimTime window_end_ = 0;
  std::atomic<uint32_t> next_lane_{1};
};

}  // namespace

ShardPlan NodeShardPlan(size_t num_nodes, Duration lookahead) {
  ShardPlan plan;
  plan.lanes = static_cast<uint32_t>(num_nodes) + 1;
  plan.lookahead = lookahead;
  plan.lane_of_node.resize(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    plan.lane_of_node[i] = static_cast<uint32_t>(i) + 1;
  }
  return plan;
}

ShardPlan RackShardPlan(const std::vector<size_t>& rack_of_node,
                        size_t num_racks, Duration lookahead) {
  ShardPlan plan;
  plan.lanes = static_cast<uint32_t>(num_racks) + 1;
  plan.lookahead = lookahead;
  plan.lane_of_node.resize(rack_of_node.size());
  for (size_t i = 0; i < rack_of_node.size(); ++i) {
    SPONGE_CHECK(rack_of_node[i] < num_racks);
    plan.lane_of_node[i] = static_cast<uint32_t>(rack_of_node[i]) + 1;
  }
  return plan;
}

unsigned HostCores() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

Sharding::Sharding(Engine* engine, ShardPlan plan, unsigned threads)
    : engine_(engine), threads_(threads) {
  const uint32_t lanes = plan.lanes;
  engine_->ConfigureShards(std::move(plan));
  if (lanes <= 1) return;  // legacy path: nothing to install
  SPONGE_CHECK(g_active == nullptr)
      << "only one sharded engine may be live at a time";
  metric_ops_.resize(lanes);
  trace_events_.resize(lanes);
  g_active = this;
  obs::g_metric_sink = &MetricSink;
  obs::g_trace_sink = &TraceSink;
  obs::g_registry_lock = &RegistryLock;
  engine_->SetLaneHooks(this);
  if (threads_ > 0) {
    runner_ = std::make_unique<PoolRunner>(threads_);
    engine_->SetLaneRunner(runner_.get());
  }
  installed_ = true;
}

Sharding::~Sharding() {
  if (!installed_) return;
  engine_->SetLaneRunner(nullptr);
  engine_->SetLaneHooks(nullptr);
  obs::g_metric_sink = nullptr;
  obs::g_trace_sink = nullptr;
  obs::g_registry_lock = nullptr;
  g_active = nullptr;
  runner_.reset();
}

void Sharding::ReplayLane(uint32_t lane) {
  std::vector<MetricRec>& ops = metric_ops_[lane];
  for (const MetricRec& op : ops) {
    obs::ApplyMetricOp(op.instrument, op.op, op.u, op.i, op.d);
  }
  ops.clear();
  std::vector<TraceRec>& events = trace_events_[lane];
  for (TraceRec& ev : events) {
    ev.tracer->EmitCaptured(ev.phase, ev.ts, ev.dur, ev.pid, ev.tid,
                            ev.category, std::move(ev.name),
                            std::move(ev.args));
  }
  events.clear();
}

void Sharding::CaptureMetric(uint32_t lane, void* instrument, int op,
                             uint64_t u, int64_t i, double d) {
  metric_ops_[lane].push_back(MetricRec{instrument, op, u, i, d});
}

void Sharding::CaptureTrace(uint32_t lane, obs::Tracer* tracer, char phase,
                            int64_t ts, int64_t dur, uint64_t pid,
                            uint64_t tid, const char* category,
                            std::string name, obs::TraceArgs args) {
  trace_events_[lane].push_back(TraceRec{tracer, phase, ts, dur, pid, tid,
                                         category, std::move(name),
                                         std::move(args)});
}

}  // namespace spongefiles::sim
