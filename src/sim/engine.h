#ifndef SPONGEFILES_SIM_ENGINE_H_
#define SPONGEFILES_SIM_ENGINE_H_

#include <coroutine>
#include <cstdint>
#include <vector>

#include "common/units.h"
#include "sim/task.h"

namespace spongefiles::sim {

// A deterministic single-threaded discrete-event engine. Simulated
// activities are coroutines (Task<T>); they advance simulated time by
// awaiting Delay and the synchronization primitives in sim/sync.h.
//
// Determinism: events scheduled for the same instant fire in schedule
// order (FIFO by a monotonically increasing sequence number).
//
// Fast path (see DESIGN.md "Performance engineering"): timed events live in
// a pooled 4-ary min-heap ordered by (time, seq); events scheduled for the
// *current* instant — zero-delay yields, symmetric hand-offs — skip the
// heap entirely and go through a FIFO ring, making the dominant event class
// O(1). The two structures together preserve exact seq order: every heap
// event at time T was scheduled before now() reached T, so it precedes
// every ring event (all enqueued at now() == T). Both structures recycle
// their slabs — steady-state scheduling allocates nothing.
class AccessRecorder;  // sim/access.h

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine() { DrainDetached(); }

  SimTime now() const { return now_; }

  // Detaches `task` and schedules it to start at the current time. The
  // coroutine frame self-destructs when the task completes.
  void Spawn(Task<> task);

  // Detaches `task` and schedules it to start at absolute time `at`
  // (must be >= now()).
  void SpawnAt(SimTime at, Task<> task);

  // Runs until the event queue drains. Returns the number of events
  // processed. Activities blocked on sync primitives with no pending
  // wake-ups simply never resume (e.g. a server loop awaiting a closed-over
  // channel); callers shut such loops down via their own stop mechanisms.
  uint64_t Run();

  // Runs until the event queue drains or simulated time would exceed
  // `deadline`; events after the deadline remain queued.
  uint64_t RunUntil(SimTime deadline);

  // Schedules `h` to resume at absolute simulated time `at` (>= now()).
  // This is the primitive all awaitables build on.
  void ScheduleHandle(SimTime at, std::coroutine_handle<> h);

  // Teardown pass: destroys every still-live detached coroutine (service
  // loops parked on their next period, RPCs abandoned on a hung server,
  // ...) after discarding the pending event queue, so no frame leaks when
  // the simulation ends mid-flight. Destroying a spawn wrapper cascades
  // down its await chain, reclaiming the whole suspended stack. Frames may
  // hold locals whose destructors touch the engine or process-wide
  // telemetry, so callers owning both the engine and the simulated
  // components (e.g. a testbed) should drain before destroying the
  // components; the engine's own destructor drains as a backstop. Frames
  // are destroyed in spawn order. Returns the number of top-level frames
  // destroyed.
  size_t DrainDetached();

  // Detached frames currently live (diagnostics and tests).
  size_t detached_live() const { return detached_live_; }

  // Awaitable: suspends the caller for `d` simulated microseconds
  // (d >= 0; a zero delay still yields through the event queue).
  auto Delay(Duration d) {
    struct Awaiter {
      Engine* engine;
      Duration d;
      bool await_ready() const { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        engine->ScheduleHandle(engine->now_ + d, h);
      }
      void await_resume() const {}
    };
    return Awaiter{this, d < 0 ? 0 : d};
  }

  // Number of events processed so far (diagnostics).
  uint64_t events_processed() const { return events_processed_; }

  // Opt-in access-set recording (see sim/access.h): when a recorder is
  // attached, the engine announces each event to it before resuming the
  // event's continuation chain, and the SIM_READ/SIM_WRITE hooks in the
  // components feed it. Pass nullptr to detach. Off by default; the only
  // hot-path cost when off is one null check per event and per hook.
  void RecordAccessSets(AccessRecorder* recorder) { recorder_ = recorder; }
  AccessRecorder* access_recorder() const { return recorder_; }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    std::coroutine_handle<> handle;
  };

  // ---- timed-event store -------------------------------------------------
  void HeapPush(Event ev);
  // Requires a non-empty heap; returns the (time, seq)-least event.
  Event HeapPop();
  bool HeapEmpty() const;
  // Earliest queued time; heap must be non-empty.
  SimTime HeapTopTime() const;

  // ---- same-instant FIFO ring ---------------------------------------------
  bool RingEmpty() const { return ring_head_ == ring_tail_; }
  void RingPush(std::coroutine_handle<> h);
  std::coroutine_handle<> RingPop();

  // ---- detached-frame registry (insertion-ordered slot map) ---------------
  // Spawn wrappers still in flight. Slots are recycled through a free list
  // (O(1) register/release, no hashing, no rehash churn); each slot keeps
  // the monotonically increasing spawn id so DrainDetached can destroy
  // frames in spawn order even after slot reuse has shuffled the vector.
  struct DetachedSlot {
    uint64_t id = 0;
    std::coroutine_handle<> handle;  // null when the slot is free
  };

  void ReleaseDetached(uint32_t slot);

  friend Task<> RunDetachedWrapper(Engine* engine, uint32_t slot,
                                   Task<> task);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_detached_id_ = 0;
  uint64_t events_processed_ = 0;
  AccessRecorder* recorder_ = nullptr;

  std::vector<Event> heap_;  // 4-ary min-heap by (at, seq)

  // Power-of-two circular buffer of handles resuming at now_.
  std::vector<std::coroutine_handle<>> ring_;
  size_t ring_head_ = 0;
  size_t ring_tail_ = 0;

  std::vector<DetachedSlot> detached_slots_;
  std::vector<uint32_t> detached_free_;
  size_t detached_live_ = 0;
};

}  // namespace spongefiles::sim

#endif  // SPONGEFILES_SIM_ENGINE_H_
