#ifndef SPONGEFILES_SIM_ENGINE_H_
#define SPONGEFILES_SIM_ENGINE_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"
#include "sim/task.h"

namespace spongefiles::sim {

// A deterministic discrete-event engine. Simulated activities are
// coroutines (Task<T>); they advance simulated time by awaiting Delay and
// the synchronization primitives in sim/sync.h.
//
// Determinism: events scheduled for the same instant fire in schedule
// order (FIFO by a monotonically increasing sequence number).
//
// Fast path (see DESIGN.md "Performance engineering"): timed events live in
// a pooled 4-ary min-heap ordered by (time, seq); events scheduled for the
// *current* instant — zero-delay yields, symmetric hand-offs — skip the
// heap entirely and go through a FIFO ring, making the dominant event class
// O(1). The two structures together preserve exact seq order: every heap
// event at time T was scheduled before now() reached T, so it precedes
// every ring event (all enqueued at now() == T). Both structures recycle
// their slabs — steady-state scheduling allocates nothing.
//
// Sharded mode (see DESIGN.md "Parallel engine"): ConfigureShards splits
// the engine into N lanes, each running the same heap+ring fast path over
// its own queue. Lane 0 is the *global* lane (services, coordinators, any
// state not owned by one shard); lanes 1..N-1 are worker lanes holding the
// events of the nodes mapped to them. Execution proceeds in conservative
// windows of width `lookahead` (the minimum cross-shard message latency):
// within a window, worker lanes run independently (phase A) — serially in
// lane order, or concurrently when a LaneRunner is installed — then the
// global lane runs alone (phase B), then cross-lane messages buffered in
// per-lane outboxes are delivered in (source lane, emission order) into
// the target heaps, clamped to the window boundary. Because phase B is
// exclusive, the global lane may touch any lane's state; worker lanes may
// only touch their own. The serial (seq) and threaded (par) drivers make
// exactly the same scheduling decisions, so their outputs are
// byte-identical by construction.
class AccessRecorder;  // sim/access.h
class Engine;

// Maps simulation state to lanes. lane_of_node[i] is the lane that owns
// node i's events (0 = the global lane); lookahead is the conservative
// window width — no cross-lane interaction can take effect sooner.
struct ShardPlan {
  uint32_t lanes = 1;  // total, including lane 0 (the global lane)
  Duration lookahead = 0;  // required > 0 when lanes > 1
  std::vector<uint32_t> lane_of_node;  // node -> lane; empty = all lane 0
};

// Executes phase A of one window: RunWorkerLane(lane, window_end) for
// every lane in [1, lane_count). The serial driver is the reference
// schedule; a threaded implementation (sim/parallel.cc) distributes lanes
// over a pool but must not return before every lane completes. Declared
// here so the engine stays free of threading headers.
class LaneRunner {
 public:
  virtual ~LaneRunner() = default;
  virtual void RunWorkers(Engine* engine, SimTime window_end) = 0;
};

// Replays side effects a worker lane captured during phase A (metrics,
// trace events) on the driver thread, in lane order, before phase B runs —
// so the fold order is identical to the serial schedule. Installed by
// sim/parallel.cc whenever the engine is sharded (even serially, for path
// identity between the seq and par drivers).
class LaneHooks {
 public:
  virtual ~LaneHooks() = default;
  virtual void ReplayLane(uint32_t lane) = 0;
};

namespace internal {
// Identifies the lane the calling thread is currently executing (set only
// while a worker lane runs phase A; the driver thread outside phase A — and
// any thread in an unsharded engine — resolves to lane 0).
struct LaneTls {
  const void* engine = nullptr;
  void* lane = nullptr;
  uint32_t index = 0;
};
extern thread_local LaneTls g_lane_tls;
}  // namespace internal

class Engine {
 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    std::coroutine_handle<> handle;
  };

  // A cross-lane wake buffered during a window, delivered at the barrier.
  struct Outbound {
    uint32_t lane;
    SimTime at;
    std::coroutine_handle<> handle;
  };

  // Spawn wrappers still in flight. Slots are recycled through a free list
  // (O(1) register/release, no hashing); each slot keeps the monotonically
  // increasing spawn id so DrainDetached can destroy frames in spawn order
  // even after slot reuse has shuffled the vector.
  struct DetachedSlot {
    uint64_t id = 0;
    std::coroutine_handle<> handle;  // null when the slot is free
  };

  // One shard context: the complete single-threaded engine state, per
  // lane. An unsharded engine is exactly one lane.
  struct Lane {
    uint32_t index = 0;
    SimTime now = 0;
    uint64_t next_seq = 0;
    uint64_t next_detached_id = 0;
    uint64_t events_processed = 0;

    std::vector<Event> heap;  // 4-ary min-heap by (at, seq)

    // Power-of-two circular buffer of handles resuming at `now`.
    std::vector<std::coroutine_handle<>> ring;
    size_t ring_head = 0;
    size_t ring_tail = 0;

    std::vector<DetachedSlot> detached_slots;
    std::vector<uint32_t> detached_free;
    size_t detached_live = 0;

    // Cross-lane traffic and deferred barrier work, filled while this lane
    // runs, drained by the driver at the window barrier.
    std::vector<Outbound> outbox;
    std::vector<std::function<void()>> deferred;
  };

 public:
  Engine() : lanes_(1), main_(&lanes_[0]) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine() { DrainDetached(); }

  // Simulated time as seen by the calling context: the current lane's
  // clock while a worker lane runs, the global lane's otherwise.
  SimTime now() const {
    if (lane_count_ > 1 && internal::g_lane_tls.engine == this) {
      return static_cast<const Lane*>(internal::g_lane_tls.lane)->now;
    }
    return main_->now;
  }

  // ---- sharding ----------------------------------------------------------

  // Splits the engine into `plan.lanes` shard contexts. Must be called
  // before anything is spawned or run; irreversible for the engine's
  // lifetime. With plan.lanes == 1 the engine stays on the legacy
  // single-queue path, byte-identical to an unconfigured engine.
  void ConfigureShards(ShardPlan plan);

  uint32_t lane_count() const { return lane_count_; }
  Duration lookahead() const { return lookahead_; }

  // Lane of the calling context (0 outside worker-lane execution).
  uint32_t current_lane() const {
    if (lane_count_ > 1 && internal::g_lane_tls.engine == this) {
      return internal::g_lane_tls.index;
    }
    return 0;
  }

  uint32_t lane_of_node(size_t node) const {
    return node < lane_of_node_.size() ? lane_of_node_[node] : 0;
  }

  // Whether node `node`'s state is owned by a lane other than the calling
  // one — the RPC layer's cue to hop to the global lane.
  bool OnForeignLane(size_t node) const {
    return lane_count_ > 1 && current_lane() != lane_of_node(node);
  }

  // Installs the phase-A executor (null = serial reference schedule) and
  // the side-effect replay hooks. Both borrowed; callers keep them alive
  // across Run/RunUntil.
  void SetLaneRunner(LaneRunner* runner) { runner_ = runner; }
  void SetLaneHooks(LaneHooks* hooks) { hooks_ = hooks; }

  // Awaitable: migrates the awaiting coroutine to `lane`. Same-lane hops
  // complete without suspending; cross-lane hops are delivered at the next
  // window barrier (so they cost up to one lookahead of simulated time —
  // the quantization every cross-shard interaction pays in sharded mode).
  auto HopToLane(uint32_t lane) {
    struct Awaiter {
      Engine* engine;
      uint32_t lane;
      bool await_ready() const { return engine->current_lane() == lane; }
      void await_suspend(std::coroutine_handle<> h) {
        engine->ScheduleHandleOnLane(engine->now(), h, lane);
      }
      void await_resume() const {}
    };
    return Awaiter{this, lane};
  }

  // Runs `fn` on the driver thread at the next window barrier (unsharded:
  // at the next event boundary). For rare cross-lane bookkeeping that must
  // not touch another lane's state mid-window.
  void DeferToBarrier(std::function<void()> fn);

  // ---- spawning ----------------------------------------------------------

  // Detaches `task` and schedules it to start at the current time on the
  // calling context's lane. The coroutine frame self-destructs when the
  // task completes.
  void Spawn(Task<> task);

  // Detaches `task` and schedules it to start at absolute time `at`
  // (must be >= the current lane's now()).
  void SpawnAt(SimTime at, Task<> task);

  // Homes `task` on `lane` starting at `at`. Only safe while the target
  // lane is quiescent: before the first Run, or from the global lane.
  void SpawnOnShard(uint32_t lane, SimTime at, Task<> task);

  // ---- running ------------------------------------------------------------

  // Runs until the event queue drains. Returns the number of events
  // processed. Activities blocked on sync primitives with no pending
  // wake-ups simply never resume (e.g. a server loop awaiting a closed-over
  // channel); callers shut such loops down via their own stop mechanisms.
  uint64_t Run();

  // Runs until the event queue drains or simulated time would exceed
  // `deadline`; events after the deadline remain queued. On return every
  // lane's clock reads at least `deadline`.
  uint64_t RunUntil(SimTime deadline);

  // Executes one worker lane's events below `window_end` (phase A of the
  // current window). Called by the serial driver and by LaneRunner
  // implementations — from a pool thread in the threaded driver. Returns
  // events processed.
  uint64_t RunWorkerLane(uint32_t lane, SimTime window_end);

  // ---- scheduling primitives ---------------------------------------------

  // Schedules `h` to resume at absolute simulated time `at` (>= now()) on
  // the calling context's lane. This is the primitive all awaitables build
  // on.
  void ScheduleHandle(SimTime at, std::coroutine_handle<> h);

  // Schedules `h` on `lane`: directly when `lane` is the calling context's
  // own, via the calling lane's outbox otherwise (delivered at the next
  // barrier, clamped to the window boundary). Sync primitives use this to
  // return a waiter to the lane it suspended on.
  void ScheduleHandleOnLane(SimTime at, std::coroutine_handle<> h,
                            uint32_t lane);

  // Teardown pass: destroys every still-live detached coroutine (service
  // loops parked on their next period, RPCs abandoned on a hung server,
  // ...) after discarding the pending event queues, so no frame leaks when
  // the simulation ends mid-flight. Destroying a spawn wrapper cascades
  // down its await chain, reclaiming the whole suspended stack. Frames are
  // destroyed in spawn order: the global lane's first, then each worker
  // lane's in lane order. Returns the number of top-level frames destroyed.
  size_t DrainDetached();

  // Detached frames currently live (diagnostics and tests).
  size_t detached_live() const;

  // Awaitable: suspends the caller for `d` simulated microseconds
  // (d >= 0; a zero delay still yields through the event queue).
  auto Delay(Duration d) {
    struct Awaiter {
      Engine* engine;
      Duration d;
      bool await_ready() const { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        engine->ScheduleHandle(engine->now() + d, h);
      }
      void await_resume() const {}
    };
    return Awaiter{this, d < 0 ? 0 : d};
  }

  // Number of events processed so far, all lanes (diagnostics).
  uint64_t events_processed() const;

  // Per-lane event count (sharded diagnostics; lane < lane_count()).
  uint64_t lane_events(uint32_t lane) const {
    return lanes_[lane].events_processed;
  }

  // Opt-in access-set recording (see sim/access.h): when a recorder is
  // attached, the engine announces each event to it before resuming the
  // event's continuation chain, and the SIM_READ/SIM_WRITE hooks in the
  // components feed it. Pass nullptr to detach. Off by default; the only
  // hot-path cost when off is one null check per event and per hook.
  // Incompatible with a threaded LaneRunner (the recorder is
  // single-threaded); the sharded *serial* driver supports it and stamps
  // each event with its lane and window for the lane-conflict census.
  void RecordAccessSets(AccessRecorder* recorder) { recorder_ = recorder; }
  AccessRecorder* access_recorder() const { return recorder_; }

 private:
  // ---- per-lane structure helpers ----------------------------------------
  static void HeapPush(Lane& lane, Event ev);
  // Requires a non-empty heap; returns the (time, seq)-least event.
  static Event HeapPop(Lane& lane);
  static void RingPush(Lane& lane, std::coroutine_handle<> h);
  static std::coroutine_handle<> RingPop(Lane& lane);
  static bool RingEmpty(const Lane& lane) {
    return lane.ring_head == lane.ring_tail;
  }

  // The calling context's lane.
  Lane& CurrentLaneRef() {
    if (lane_count_ > 1 && internal::g_lane_tls.engine == this) {
      return *static_cast<Lane*>(internal::g_lane_tls.lane);
    }
    return *main_;
  }

  // The legacy run loop over one lane: executes events with at <=
  // `deadline` (heap-at-now first, then ring, then advance). Exact
  // schedule order; see ScheduleHandle.
  uint64_t RunLaneEvents(Lane& lane, SimTime deadline);

  // The sharded windowed driver (lane_count_ > 1).
  uint64_t RunWindows(SimTime deadline, bool bounded);

  // Earliest pending event time on `lane`, or kNoEvent.
  static SimTime NextEventTime(const Lane& lane);

  uint32_t ClaimDetachedSlot(Lane& lane);
  void ReleaseDetached(uint32_t lane, uint32_t slot);
  void ScheduleSpawn(Lane& lane, SimTime at, Task<> task);

  friend Task<> RunDetachedWrapper(Engine* engine, uint32_t lane,
                                   uint32_t slot, Task<> task);

  uint32_t lane_count_ = 1;
  Duration lookahead_ = 0;
  std::vector<uint32_t> lane_of_node_;
  std::vector<Lane> lanes_;
  Lane* main_;  // &lanes_[0]
  LaneRunner* runner_ = nullptr;
  LaneHooks* hooks_ = nullptr;
  AccessRecorder* recorder_ = nullptr;
  uint64_t window_counter_ = 0;
};

}  // namespace spongefiles::sim

#endif  // SPONGEFILES_SIM_ENGINE_H_
