#include "sim/sync.h"

namespace spongefiles::sim {

void Event::Set() {
  if (set_) return;
  set_ = true;
  while (!waiters_.empty()) {
    engine_->ScheduleHandle(engine_->now(), waiters_.front());
    waiters_.pop_front();
  }
}

void Semaphore::Release(int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if (!waiters_.empty()) {
      // Hand the permit directly to the longest waiter; permits_ stays
      // unchanged so late arrivals cannot barge past it.
      engine_->ScheduleHandle(engine_->now(), waiters_.front());
      waiters_.pop_front();
    } else {
      ++permits_;
    }
  }
}

void WaitGroup::Done() {
  --count_;
  if (count_ <= 0) event_.Set();
}

}  // namespace spongefiles::sim
