#include "sim/sync.h"

namespace spongefiles::sim {

void Event::Set() {
  if (set_) return;
  set_ = true;
  while (!waiters_.empty()) {
    const LaneWaiter& waiter = waiters_.front();
    engine_->ScheduleHandleOnLane(engine_->now(), waiter.handle, waiter.lane);
    waiters_.pop_front();
  }
}

void Semaphore::Release(int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if (!waiters_.empty()) {
      // Hand the permit directly to the longest waiter; permits_ stays
      // unchanged so late arrivals cannot barge past it.
      const LaneWaiter& waiter = waiters_.front();
      engine_->ScheduleHandleOnLane(engine_->now(), waiter.handle,
                                    waiter.lane);
      waiters_.pop_front();
    } else {
      ++permits_;
    }
  }
}

void WaitGroup::Done() {
  --count_;
  if (count_ <= 0) event_.Set();
}

}  // namespace spongefiles::sim
