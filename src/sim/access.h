#ifndef SPONGEFILES_SIM_ACCESS_H_
#define SPONGEFILES_SIM_ACCESS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"

namespace spongefiles::sim {

// ---------------------------------------------------------------------------
// Access-set recording: a race detector for races that do not exist yet.
//
// The planned parallel engine shards the event loop by node (or by rack)
// and runs shards optimistically up to a conservative lookahead — the
// minimum latency of any message that could still arrive from another
// shard. Under that rule, two events may execute concurrently iff they
// live on different shards and their timestamps are within one lookahead
// of each other; any state they share is then a data race.
//
// The sequential engine, in an opt-in instrumented mode
// (Engine::RecordAccessSets), tells the recorder when each event begins;
// components log (object, field-group, read/write) touches via the
// SIM_READ/SIM_WRITE macros below. The recorder derives each event's home
// shard from the first node- or rack-homed object it touches, keeps a
// sliding window of recent accesses per (object, group), and reports every
// read-write or write-write pair that (a) comes from two events with
// different homes and (b) falls within the lookahead window — i.e. every
// pair the parallel engine could actually interleave. Objects declared
// global-with-reason are the sanctioned shared state (failure-detector
// flags, central services); their touches are censused but never
// conflicts.
//
// Causally-ordered cross-shard work is excluded automatically: a message
// from shard A to shard B pays at least the minimum link latency, which
// is at least the lookahead, so the receive event sits outside the
// window. Only shared-memory shortcuts — state touched from two homes
// within a lookahead, with no message in between — surface.
// ---------------------------------------------------------------------------

class AccessRecorder {
 public:
  struct Config {
    // Lookahead of the node-sharded engine: the minimum one-way network
    // latency (any cross-node message pays at least this much).
    Duration node_lookahead = Micros(300);
    // Lookahead of the rack-sharded engine: latency + cross-rack penalty.
    Duration rack_lookahead = Micros(500);
  };

  // Where an object lives in the sharded design.
  enum class Home : uint8_t {
    kNode,    // owned by one node's shard
    kRack,    // owned by one rack's shard (e.g. a tracker shard)
    kGlobal,  // deliberately shared; must carry a reason
  };

  struct Domain {
    Home home;
    size_t node = 0;  // kNode only
    size_t rack = 0;  // kRack only (kNode racks resolve via SetRacks)
    const char* reason = "";  // kGlobal only
  };

  static Domain NodeDomain(size_t node) {
    return Domain{Home::kNode, node, 0, ""};
  }
  static Domain RackDomain(size_t rack) {
    return Domain{Home::kRack, 0, rack, ""};
  }
  static Domain GlobalDomain(const char* reason) {
    return Domain{Home::kGlobal, 0, 0, reason};
  }

  // One confirmed conflicting pair under one projection.
  struct Conflict {
    std::string object;      // "SpongeServer@node3"
    std::string group;       // field group, e.g. "pool"
    std::string projection;  // "node" or "rack"
    uint64_t event_a = 0, event_b = 0;
    SimTime time_a = 0, time_b = 0;
    std::string home_a, home_b;  // "node3" / "rack1"
    bool write_a = false, write_b = false;
  };

  struct Census {
    uint64_t events = 0;           // instrumented events seen
    uint64_t touched_events = 0;   // events with at least one access
    uint64_t accesses = 0;         // raw Record calls
    uint64_t global_accesses = 0;  // touches of global-with-reason objects
    uint64_t split_events = 0;     // events spanning >1 node home (these
                                   // are the message-split points a
                                   // parallel port must cut at)
    std::vector<Conflict> conflicts;
    // Global objects touched, with their declared reasons.
    std::map<std::string, std::string> global_objects;
  };

  AccessRecorder() : config_(Config()) {}
  explicit AccessRecorder(Config config) : config_(config) {}

  // Node -> rack mapping so node-homed objects resolve their rack for the
  // rack projection; unset (or out of range) means rack 0.
  void SetRacks(std::vector<size_t> rack_of_node) {
    rack_of_node_ = std::move(rack_of_node);
  }

  // Called by the engine before resuming each scheduled event. `lane` is
  // the shard lane executing the event (0 on an unsharded engine and on
  // the global lane).
  void BeginEvent(SimTime now, uint32_t lane = 0);

  // Called by the sharded serial driver at each conservative window start.
  // Once windows are announced, the recorder additionally reports a "lane"
  // projection conflict for every (object, group) touched from two
  // distinct *worker* lanes inside one window with at least one write —
  // the accesses the threaded driver would actually run concurrently. A
  // clean sequential census predicts zero of these; any hit is a shard
  // assignment the static analysis missed.
  void BeginWindow(uint64_t id);

  // Called by components via SIM_READ / SIM_WRITE. `object_name` and
  // `group` must be literals (or otherwise outlive the recorder). The
  // domain is bound to `obj` on first touch; later touches reuse it.
  void Record(const void* obj, const char* object_name, const char* group,
              bool write, Domain domain);

  // Flushes the final in-flight event into the census.
  void Finish();

  const Census& census() const { return census_; }

  // Conflicts whose object is NOT global (global ones never enter
  // `conflicts` in the first place) — the go/no-go number.
  size_t unexplained_conflicts() const { return census_.conflicts.size(); }

  // The full census as deterministic JSON (stable ordering).
  std::string CensusJson() const;

 private:
  struct ObjectInfo {
    std::string label;  // "SpongeServer@node3"
    Domain domain;
    size_t rack = 0;  // resolved rack (all homes)
  };

  // One deduplicated access by the event being processed.
  struct EventAccess {
    const void* obj;
    const char* group;
    bool write;
  };

  // A window entry: one (event, object, group) access, strongest kind.
  struct WindowEntry {
    SimTime time;
    uint64_t event_id;
    bool write;
    bool has_node;   // anchored event had a node home (node projection)
    size_t node;     // anchor node (when has_node)
    size_t rack;     // anchor rack (always)
    uint32_t lane;   // executing shard lane (sharded runs; 0 otherwise)
    uint64_t window; // conservative window id (0 = no window announced)
  };

  void FlushEvent();
  size_t RackOf(size_t node) const {
    return node < rack_of_node_.size() ? rack_of_node_[node] : 0;
  }

  Config config_;
  std::vector<size_t> rack_of_node_;
  Census census_;

  std::map<const void*, ObjectInfo> objects_;
  // Keyed by group *content*, not pointer: the same group literal shows up
  // at different addresses across translation units.
  std::map<std::pair<const void*, std::string>, std::deque<WindowEntry>>
      windows_;
  std::set<std::string> reported_;  // conflict dedup keys

  // Current event state.
  bool in_event_ = false;
  SimTime event_time_ = 0;
  uint64_t event_id_ = 0;
  uint32_t event_lane_ = 0;
  uint64_t window_id_ = 0;  // current conservative window (0 = none)
  std::vector<EventAccess> event_accesses_;
};

}  // namespace spongefiles::sim

// Instrumentation hooks. Compiled in everywhere, but the only cost when
// recording is off (the default) is one pointer load and branch.
#define SIM_ACCESS(engine, obj, object_name, group, write, domain)       \
  do {                                                                   \
    ::spongefiles::sim::AccessRecorder* sim_access_recorder_tmp_ =       \
        (engine)->access_recorder();                                     \
    if (sim_access_recorder_tmp_ != nullptr) {                           \
      sim_access_recorder_tmp_->Record((obj), (object_name), (group),    \
                                       (write), (domain));               \
    }                                                                    \
  } while (0)

#define SIM_READ(engine, obj, object_name, group, domain) \
  SIM_ACCESS(engine, obj, object_name, group, false, domain)
#define SIM_WRITE(engine, obj, object_name, group, domain) \
  SIM_ACCESS(engine, obj, object_name, group, true, domain)

#endif  // SPONGEFILES_SIM_ACCESS_H_
