#ifndef SPONGEFILES_SIM_PARALLEL_H_
#define SPONGEFILES_SIM_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/trace.h"
#include "sim/engine.h"

namespace spongefiles::sim {

// Sharded execution harness (see DESIGN.md "Parallel engine"). The engine
// itself (sim/engine.{h,cc}) stays single-threaded and obs-free; this file
// is the one place in the tree that may use threading headers (spongelint
// enforces that), and the one place that knows how worker-lane side effects
// fold back into the shared observability state.
//
// A Sharding object is the RAII switch: constructing one configures the
// engine's lanes, installs the obs capture sinks (metrics and trace events
// from worker lanes are buffered per lane and replayed in lane order at
// each window barrier, so the fold order is identical under the serial and
// threaded drivers), and — when threads > 0 — installs a thread-pool
// LaneRunner for phase A. Destroying it uninstalls everything. At most one
// Sharding may be live per process at a time (the obs sinks are global).

// Builds the node-projection plan: node i is owned by lane i + 1; lane 0
// remains the global lane. `lookahead` is the minimum cross-node message
// latency (NetworkConfig::latency in this repo's cluster model).
ShardPlan NodeShardPlan(size_t num_nodes, Duration lookahead);

// Builds the rack-projection plan from a node -> rack map: rack r is owned
// by lane r + 1. `lookahead` is the minimum cross-rack message latency
// (latency + cross_rack_latency on a metered topology).
ShardPlan RackShardPlan(const std::vector<size_t>& rack_of_node,
                        size_t num_racks, Duration lookahead);

// Host hardware concurrency (never 0). Lives here because this harness is
// the only code allowed the threading headers; benches use it to size
// --engine=par pools and to report host_cores next to speedup numbers.
unsigned HostCores();

class Sharding : public LaneHooks {
 public:
  // threads == 0: the serial sharded driver (the canonical reference
  // schedule). threads > 0: a pool of `threads` workers plus the driver
  // thread execute phase A, one lane at a time per thread. The plan may
  // have lanes == 1, in which case the engine stays on the legacy path and
  // nothing is installed (uniform call sites).
  Sharding(Engine* engine, ShardPlan plan, unsigned threads = 0);
  ~Sharding() override;

  Sharding(const Sharding&) = delete;
  Sharding& operator=(const Sharding&) = delete;

  Engine* engine() const { return engine_; }
  unsigned threads() const { return threads_; }

  // LaneHooks: replays `lane`'s captured metric ops and trace events on the
  // driver thread (called by the engine between phase A and phase B, in
  // lane order).
  void ReplayLane(uint32_t lane) override;

  // Capture entry points used by the installed obs sinks (worker lanes
  // only; the driver context declines at the sink).
  void CaptureMetric(uint32_t lane, void* instrument, int op, uint64_t u,
                     int64_t i, double d);
  void CaptureTrace(uint32_t lane, obs::Tracer* tracer, char phase,
                    int64_t ts, int64_t dur, uint64_t pid, uint64_t tid,
                    const char* category, std::string name,
                    obs::TraceArgs args);

 private:
  struct MetricRec {
    void* instrument;
    int op;
    uint64_t u;
    int64_t i;
    double d;
  };
  struct TraceRec {
    obs::Tracer* tracer;
    char phase;
    int64_t ts;
    int64_t dur;
    uint64_t pid;
    uint64_t tid;
    const char* category;
    std::string name;
    obs::TraceArgs args;
  };

  Engine* engine_;
  unsigned threads_ = 0;
  bool installed_ = false;
  std::vector<std::vector<MetricRec>> metric_ops_;   // indexed by lane
  std::vector<std::vector<TraceRec>> trace_events_;  // indexed by lane
  std::unique_ptr<LaneRunner> runner_;
};

}  // namespace spongefiles::sim

#endif  // SPONGEFILES_SIM_PARALLEL_H_
