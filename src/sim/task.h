#ifndef SPONGEFILES_SIM_TASK_H_
#define SPONGEFILES_SIM_TASK_H_

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace spongefiles::sim {

// Task<T> is the coroutine type for all simulated activities. A Task is
// lazy: it runs only when co_awaited by another task or spawned on an
// Engine. Awaiting a child task transfers control symmetrically (no engine
// involvement, no simulated time passes); simulated time advances only
// through Engine awaitables (Delay, resource waits, ...).
//
// Lifetime: the Task object owns the coroutine frame. Engine::Spawn detaches
// the frame, which then destroys itself upon completion.
template <typename T = void>
class Task;

namespace internal_task {

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto& promise = h.promise();
    if (promise.continuation) return promise.continuation;
    if (promise.detached) {
      // Nothing will ever resume or destroy this frame; reclaim it now.
      h.destroy();
    }
    return std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;
  bool detached = false;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { std::terminate(); }
};

}  // namespace internal_task

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal_task::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task(Task&& other) noexcept : handle_(other.handle_) {
    other.handle_ = nullptr;
  }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = other.handle_;
      other.handle_ = nullptr;
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }

  // Awaiting a task starts it (if not started) and suspends the awaiter
  // until the task completes, yielding its return value.
  auto operator co_await() {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const { return handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
        handle.promise().continuation = parent;
        return handle;
      }
      T await_resume() {
        assert(handle.promise().value.has_value());
        return std::move(*handle.promise().value);
      }
    };
    assert(handle_);
    return Awaiter{handle_};
  }

  // Releases ownership of the coroutine frame (used by Engine::Spawn).
  std::coroutine_handle<promise_type> Release() {
    auto h = handle_;
    handle_ = nullptr;
    return h;
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_ = nullptr;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal_task::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task(Task&& other) noexcept : handle_(other.handle_) {
    other.handle_ = nullptr;
  }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = other.handle_;
      other.handle_ = nullptr;
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }

  auto operator co_await() {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const { return handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
        handle.promise().continuation = parent;
        return handle;
      }
      void await_resume() const {}
    };
    assert(handle_);
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> Release() {
    auto h = handle_;
    handle_ = nullptr;
    return h;
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_ = nullptr;
};

}  // namespace spongefiles::sim

#endif  // SPONGEFILES_SIM_TASK_H_
