#ifndef SPONGEFILES_SIM_SYNC_H_
#define SPONGEFILES_SIM_SYNC_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>

#include "sim/engine.h"

namespace spongefiles::sim {

// Synchronization primitives for simulated tasks. All wake-ups go through
// the engine's event queue at the current simulated time, so resumption
// order is deterministic (FIFO) and never re-enters the caller's stack.
//
// Sharded engines: every waiter records the lane it suspended on, and the
// wake is scheduled back onto that lane (ScheduleHandleOnLane) — a
// coroutine never migrates lanes through a sync primitive, only through an
// explicit Engine::HopToLane. Cross-lane wakes are delivered at the next
// window barrier, clamped to the window edge.

// A suspended coroutine plus the lane it must resume on.
struct LaneWaiter {
  std::coroutine_handle<> handle;
  uint32_t lane = 0;
};

// A level-triggered one-shot event. Waiters block until Set() is called;
// once set, Wait() completes immediately.
class Event {
 public:
  explicit Event(Engine* engine) : engine_(engine) {}

  void Set();
  bool is_set() const { return set_; }

  auto Wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() const { return event->set_; }
      void await_suspend(std::coroutine_handle<> h) {
        event->waiters_.push_back(
            LaneWaiter{h, event->engine_->current_lane()});
      }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

 private:
  Engine* engine_;
  bool set_ = false;
  std::deque<LaneWaiter> waiters_;
};

// A counting semaphore with FIFO handoff: Release wakes the longest-waiting
// acquirer, which is guaranteed to obtain the permit (no barging).
class Semaphore {
 public:
  Semaphore(Engine* engine, int64_t permits)
      : engine_(engine), permits_(permits) {}

  void Release(int64_t n = 1);

  // Non-blocking acquire: takes a permit only if one is free and no task
  // is queued ahead (no barging past the FIFO).
  bool TryAcquire() {
    if (permits_ > 0 && waiters_.empty()) {
      --permits_;
      return true;
    }
    return false;
  }

  int64_t available() const { return permits_; }
  size_t waiters() const { return waiters_.size(); }

  auto Acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() {
        if (sem->permits_ > 0 && sem->waiters_.empty()) {
          --sem->permits_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem->waiters_.push_back(LaneWaiter{h, sem->engine_->current_lane()});
      }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

 private:
  Engine* engine_;
  int64_t permits_;
  std::deque<LaneWaiter> waiters_;
};

// A FIFO mutex for simulated tasks.
class Mutex {
 public:
  explicit Mutex(Engine* engine) : sem_(engine, 1) {}

  auto Lock() { return sem_.Acquire(); }
  void Unlock() { sem_.Release(); }

 private:
  Semaphore sem_;
};

// Completion counter: Add(n) registers work, Done() retires one unit, and
// Wait() blocks until the count returns to zero.
class WaitGroup {
 public:
  explicit WaitGroup(Engine* engine) : event_(engine) {}

  void Add(int64_t n = 1) { count_ += n; }
  void Done();

  auto Wait() { return event_.Wait(); }

  int64_t count() const { return count_; }

 private:
  Event event_;
  int64_t count_ = 0;
};

// An unbounded FIFO queue of T with awaitable Pop. Close() wakes all
// blocked consumers; Pop on a closed, drained channel yields nullopt.
// Items are handed directly to the longest-waiting consumer, so a consumer
// that arrives later can never steal an item from one already woken.
template <typename T>
class Channel {
 public:
  explicit Channel(Engine* engine) : engine_(engine) {}

  void Push(T item) {
    if (!waiters_.empty()) {
      PopAwaiter* waiter = waiters_.front();
      waiters_.pop_front();
      waiter->item = std::move(item);
      engine_->ScheduleHandleOnLane(engine_->now(), waiter->handle,
                                    waiter->lane);
      return;
    }
    items_.push_back(std::move(item));
  }

  void Close() {
    closed_ = true;
    while (!waiters_.empty()) {
      PopAwaiter* waiter = waiters_.front();
      waiters_.pop_front();
      engine_->ScheduleHandleOnLane(engine_->now(), waiter->handle,
                                    waiter->lane);
    }
  }

  bool closed() const { return closed_; }
  size_t size() const { return items_.size(); }

  // Awaitable returning std::optional<T>; nullopt means closed-and-empty.
  auto Pop() { return PopAwaiter{this, {}, 0, {}}; }

 private:
  struct PopAwaiter {
    Channel* ch;
    std::coroutine_handle<> handle;
    uint32_t lane;
    std::optional<T> item;

    bool await_ready() const {
      return (ch->waiters_.empty() && !ch->items_.empty()) || ch->closed_;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      lane = ch->engine_->current_lane();
      ch->waiters_.push_back(this);
    }
    std::optional<T> await_resume() {
      if (item.has_value()) return std::move(item);
      // Ready path, or woken by Close: a closed channel drains queued
      // items first.
      if (!ch->items_.empty()) {
        T front = std::move(ch->items_.front());
        ch->items_.pop_front();
        return front;
      }
      return std::nullopt;
    }
  };

  Engine* engine_;
  bool closed_ = false;
  std::deque<T> items_;
  std::deque<PopAwaiter*> waiters_;
};

}  // namespace spongefiles::sim

#endif  // SPONGEFILES_SIM_SYNC_H_
