#ifndef SPONGEFILES_PIG_QUERY_H_
#define SPONGEFILES_PIG_QUERY_H_

#include <functional>
#include <memory>
#include <string>

#include "mapred/job.h"
#include "pig/udfs.h"

namespace spongefiles::pig {

// A Pig-Latin "GROUP input BY key; FOREACH group GENERATE Udf(bag)" query,
// compiled into one MapReduce job: the map phase extracts the group key
// (optionally projecting each tuple down to the needed columns — the spam
// quantiles query deliberately skips this step), the reduce phase feeds
// each group's bag to the UDF.
// lint: shard(value)
struct GroupByQuery {
  std::string name = "pig-query";
  mapred::InputFormat* input = nullptr;
  std::function<std::string(const mapred::Record&)> group_key;
  // Null: no projection (full tuples shuffle and fill the bags).
  std::function<mapred::Record(const mapred::Record&)> project;
  std::function<std::unique_ptr<Udf>()> udf_factory;
  mapred::SpillMode spill_mode = mapred::SpillMode::kDisk;
  int num_reducers = 1;
};

// Translates the query to a MapReduce job config (the Pig-to-Hadoop
// compilation step of section 2.1.1).
mapred::JobConfig Compile(const GroupByQuery& query);

}  // namespace spongefiles::pig

#endif  // SPONGEFILES_PIG_QUERY_H_
