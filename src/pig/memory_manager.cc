#include "pig/memory_manager.h"

#include <algorithm>

#include "pig/data_bag.h"

namespace spongefiles::pig {

void MemoryManager::Register(DataBag* bag) { bags_.push_back(bag); }

void MemoryManager::Unregister(DataBag* bag) {
  bags_.erase(std::remove(bags_.begin(), bags_.end(), bag), bags_.end());
}

uint64_t MemoryManager::memory_in_use() const {
  uint64_t total = 0;
  for (const DataBag* bag : bags_) total += bag->memory_bytes();
  return total;
}

sim::Task<Status> MemoryManager::MaybeSpill() {
  if (memory_in_use() <= limit_) co_return Status::OK();
  ++spill_upcalls_;
  // Largest bags first: one big spill frees more memory per file created.
  std::vector<DataBag*> order = bags_;
  std::sort(order.begin(), order.end(), [](DataBag* a, DataBag* b) {
    return a->memory_bytes() > b->memory_bytes();
  });
  for (DataBag* bag : order) {
    if (memory_in_use() <= limit_) break;
    if (bag->memory_bytes() == 0) continue;
    CO_RETURN_IF_ERROR(co_await bag->SpillMemory());
  }
  co_return Status::OK();
}

}  // namespace spongefiles::pig
