#include "pig/query.h"

namespace spongefiles::pig {

mapred::JobConfig Compile(const GroupByQuery& query) {
  mapred::JobConfig config;
  config.name = query.name;
  config.input = query.input;
  config.num_reducers = query.num_reducers;
  config.spill_mode = query.spill_mode;

  auto group_key = query.group_key;
  auto project = query.project;
  config.map_fn = [group_key, project](const mapred::Record& in,
                                       std::vector<mapred::Record>* out) {
    mapred::Record tuple = project ? project(in) : in;
    tuple.key = group_key(in);
    out->push_back(std::move(tuple));
  };

  auto udf_factory = query.udf_factory;
  config.reducer_factory = [udf_factory]() -> std::unique_ptr<mapred::Reducer> {
    return std::make_unique<PigReducer>(udf_factory);
  };
  return config;
}

}  // namespace spongefiles::pig
