#include "pig/data_bag.h"

#include <algorithm>

#include "pig/memory_manager.h"

namespace spongefiles::pig {

DataBag::DataBag(MemoryManager* manager, mapred::Spiller* spiller,
                 mapred::CpuMeter* cpu, std::string name,
                 uint64_t spill_chunk_bytes, Duration per_tuple_cpu)
    : manager_(manager),
      spiller_(spiller),
      cpu_(cpu),
      name_(std::move(name)),
      spill_chunk_bytes_(spill_chunk_bytes),
      per_tuple_cpu_(per_tuple_cpu) {
  manager_->Register(this);
}

DataBag::~DataBag() {
  if (!destroyed_) manager_->Unregister(this);
}

sim::Task<Status> DataBag::Add(Tuple tuple) {
  uint64_t bytes = mapred::SerializedSize(tuple);
  memory_.push_back(std::move(tuple));
  memory_bytes_ += bytes;
  ++count_;
  // Growth may push the JVM over its limit, triggering the upcall.
  co_return co_await manager_->MaybeSpill();
}

sim::Task<Status> DataBag::SpillTuples(
    std::vector<Tuple> tuples,
    std::vector<std::unique_ptr<mapred::SpillFile>>* out) {
  ByteRuns pending;
  auto flush = [&]() -> sim::Task<Status> {
    if (pending.empty()) co_return Status::OK();
    auto file = spiller_->Create(name_ + ".bag" +
                                 std::to_string(next_spill_++));
    if (!file.ok()) co_return file.status();
    uint64_t bytes = pending.size();
    CO_RETURN_IF_ERROR(co_await (*file)->Append(std::move(pending)));
    pending = ByteRuns{};
    CO_RETURN_IF_ERROR(co_await (*file)->Close());
    spilled_bytes_ += bytes;
    out->push_back(std::move(*file));
    co_return Status::OK();
  };
  for (const Tuple& tuple : tuples) {
    mapred::SerializeRecord(tuple, &pending);
    if (pending.size() >= spill_chunk_bytes_) {
      CO_RETURN_IF_ERROR(co_await flush());
    }
  }
  CO_RETURN_IF_ERROR(co_await flush());
  co_return Status::OK();
}

sim::Task<Status> DataBag::SpillMemory() {
  if (memory_.empty()) co_return Status::OK();
  std::vector<Tuple> tuples = std::move(memory_);
  memory_.clear();
  memory_bytes_ = 0;
  co_return co_await SpillTuples(std::move(tuples), &spill_files_);
}

sim::Task<Status> DataBag::ForEach(std::function<Status(const Tuple&)> fn,
                                   bool respill) {
  std::vector<std::unique_ptr<mapred::SpillFile>> files =
      std::move(spill_files_);
  spill_files_.clear();
  spilled_bytes_ = 0;

  ByteRuns pending;
  // lint: ref-ok(awaited inline by the traversal; the tuple outlives each call)
  auto respill_tuple = [&](const Tuple& tuple) -> sim::Task<Status> {
    mapred::SerializeRecord(tuple, &pending);
    if (pending.size() >= spill_chunk_bytes_) {
      auto file = spiller_->Create(name_ + ".bag" +
                                   std::to_string(next_spill_++));
      if (!file.ok()) co_return file.status();
      uint64_t bytes = pending.size();
      CO_RETURN_IF_ERROR(co_await (*file)->Append(std::move(pending)));
      pending = ByteRuns{};
      CO_RETURN_IF_ERROR(co_await (*file)->Close());
      spilled_bytes_ += bytes;
      spill_files_.push_back(std::move(*file));
    }
    co_return Status::OK();
  };

  for (auto& file : files) {
    mapred::SpillFileSource source(std::move(file));
    Tuple tuple;
    while (true) {
      auto has = co_await source.Next(&tuple);
      if (!has.ok()) co_return has.status();
      if (!*has) break;
      co_await cpu_->Charge(per_tuple_cpu_);
      CO_RETURN_IF_ERROR(fn(tuple));
      if (respill) CO_RETURN_IF_ERROR(co_await respill_tuple(tuple));
    }
    co_await source.Done();
  }
  if (respill && !pending.empty()) {
    auto file =
        spiller_->Create(name_ + ".bag" + std::to_string(next_spill_++));
    if (!file.ok()) co_return file.status();
    uint64_t bytes = pending.size();
    CO_RETURN_IF_ERROR(co_await (*file)->Append(std::move(pending)));
    CO_RETURN_IF_ERROR(co_await (*file)->Close());
    spilled_bytes_ += bytes;
    spill_files_.push_back(std::move(*file));
  }
  if (!respill) {
    // The spilled portion has been consumed; only memory tuples remain.
    count_ = memory_.size();
  }

  for (const Tuple& tuple : memory_) {
    co_await cpu_->Charge(per_tuple_cpu_);
    CO_RETURN_IF_ERROR(fn(tuple));
  }
  co_return Status::OK();
}

sim::Task<Status> DataBag::SortedForEach(
    std::function<bool(const Tuple&, const Tuple&)> less,
    std::function<Status(const Tuple&)> fn) {
  // Run generation: each spill chunk (<= C bytes) fits in memory; sort it
  // into a fresh sorted run. In-memory tuples form one more run.
  std::vector<std::unique_ptr<mapred::SpillFile>> files =
      std::move(spill_files_);
  spill_files_.clear();

  std::vector<std::unique_ptr<mapred::SpillFile>> runs;
  for (auto& file : files) {
    mapred::SpillFileSource source(std::move(file));
    std::vector<Tuple> tuples;
    Tuple tuple;
    while (true) {
      auto has = co_await source.Next(&tuple);
      if (!has.ok()) co_return has.status();
      if (!*has) break;
      co_await cpu_->Charge(per_tuple_cpu_);
      tuples.push_back(std::move(tuple));
    }
    co_await source.Done();
    std::sort(tuples.begin(), tuples.end(), less);
    CO_RETURN_IF_ERROR(co_await SpillTuples(std::move(tuples), &runs));
  }
  std::sort(memory_.begin(), memory_.end(), less);

  // K-way merge of the sorted runs plus the in-memory run, streaming
  // through `fn`. Note the merge orders by `less` on whole tuples, not by
  // record key, so we merge manually here.
  // lint: shard(value)
  struct Cursor {
    std::unique_ptr<mapred::SpillFileSource> source;  // null: memory run
    size_t memory_index = 0;
    Tuple head;
    bool has = false;
  };
  std::vector<Cursor> cursors;
  for (auto& run : runs) {
    Cursor cursor;
    cursor.source =
        std::make_unique<mapred::SpillFileSource>(std::move(run));
    cursors.push_back(std::move(cursor));
  }
  cursors.emplace_back();  // the in-memory run

  // lint: ref-ok(awaited inline; the cursor lives in the enclosing merge frame)
  auto advance = [&](Cursor& cursor) -> sim::Task<Status> {
    if (cursor.source != nullptr) {
      auto has = co_await cursor.source->Next(&cursor.head);
      if (!has.ok()) co_return has.status();
      cursor.has = *has;
    } else if (cursor.memory_index < memory_.size()) {
      cursor.head = std::move(memory_[cursor.memory_index++]);
      cursor.has = true;
    } else {
      cursor.has = false;
    }
    co_return Status::OK();
  };
  for (Cursor& cursor : cursors) {
    CO_RETURN_IF_ERROR(co_await advance(cursor));
  }
  while (true) {
    Cursor* best = nullptr;
    for (Cursor& cursor : cursors) {
      if (cursor.has &&
          (best == nullptr || less(cursor.head, best->head))) {
        best = &cursor;
      }
    }
    if (best == nullptr) break;
    co_await cpu_->Charge(per_tuple_cpu_);
    CO_RETURN_IF_ERROR(fn(best->head));
    CO_RETURN_IF_ERROR(co_await advance(*best));
  }
  for (Cursor& cursor : cursors) {
    if (cursor.source != nullptr) co_await cursor.source->Done();
  }
  memory_.clear();
  memory_bytes_ = 0;
  count_ = 0;
  co_return Status::OK();
}

sim::Task<> DataBag::Destroy() {
  if (destroyed_) co_return;
  destroyed_ = true;
  manager_->Unregister(this);
  for (auto& file : spill_files_) {
    if (file != nullptr) co_await file->Delete();
  }
  spill_files_.clear();
  memory_.clear();
  memory_bytes_ = 0;
}

}  // namespace spongefiles::pig
