#ifndef SPONGEFILES_PIG_MEMORY_MANAGER_H_
#define SPONGEFILES_PIG_MEMORY_MANAGER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sim/task.h"

namespace spongefiles::pig {

class DataBag;

// Pig's memory manager (section 2.1.3): tracks every registered bag,
// estimates aggregate usage against the JVM's bag-memory budget, and — on
// the low-memory upcall — spills the largest bags first until usage drops
// below the budget.
// lint: shard(value)
class MemoryManager {
 public:
  explicit MemoryManager(uint64_t memory_limit_bytes)
      : limit_(memory_limit_bytes) {}

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  void Register(DataBag* bag);
  void Unregister(DataBag* bag);

  // The JVM low-memory upcall: called by bags after growth. Spills the
  // largest registered bags (largest first, matching Pig's policy) until
  // in-memory usage fits the budget again.
  sim::Task<Status> MaybeSpill();

  uint64_t memory_in_use() const;
  uint64_t limit() const { return limit_; }
  size_t bag_count() const { return bags_.size(); }
  uint64_t spill_upcalls() const { return spill_upcalls_; }

 private:
  uint64_t limit_;
  std::vector<DataBag*> bags_;
  uint64_t spill_upcalls_ = 0;
};

}  // namespace spongefiles::pig

#endif  // SPONGEFILES_PIG_MEMORY_MANAGER_H_
