#ifndef SPONGEFILES_PIG_DATA_BAG_H_
#define SPONGEFILES_PIG_DATA_BAG_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "mapred/job.h"
#include "mapred/merger.h"
#include "mapred/spill.h"
#include "sim/task.h"

namespace spongefiles::pig {

// Pig's tuple is the same wire record the MapReduce layer moves around.
using Tuple = mapred::Record;

class MemoryManager;

// Pig's primary intermediate-data structure (section 2.1.3): an insert-and-
// iterate collection registered with the memory manager, which spills
// (portions of) large bags when the JVM reports memory pressure. Spills go
// through the task's Spiller in chunks of C (10 MB by default), so they
// land on disk or in SpongeFiles depending on the experiment.
//
// Spill files have SpongeFile semantics (read once), so a multi-pass UDF
// re-spills the data it reads when it needs another pass — this is why the
// evaluation's holistic UDFs spill ~3x their input (Table 2).
// lint: shard(value)
class DataBag {
 public:
  // `per_tuple_cpu` is charged for every tuple an iteration touches.
  DataBag(MemoryManager* manager, mapred::Spiller* spiller,
          mapred::CpuMeter* cpu, std::string name,
          uint64_t spill_chunk_bytes = 10ull * 1024 * 1024,
          Duration per_tuple_cpu = Micros(1));
  ~DataBag();

  DataBag(const DataBag&) = delete;
  DataBag& operator=(const DataBag&) = delete;

  // Inserts a tuple; may trigger the memory manager's spill upcall.
  sim::Task<Status> Add(Tuple tuple);

  // One pass over every tuple (spilled portions first, then in-memory).
  // With `respill`, tuples read from consumed spill files are written to
  // fresh ones so another pass remains possible; without it the spilled
  // portion is gone afterwards.
  sim::Task<Status> ForEach(std::function<Status(const Tuple&)> fn,
                            bool respill);

  // Consuming sorted traversal: external sort (each <= C-sized spill chunk
  // is sorted into a run, in-memory tuples form one more run, then a k-way
  // merge streams tuples through `fn` in `less` order). The bag is empty
  // afterwards.
  sim::Task<Status> SortedForEach(
      std::function<bool(const Tuple&, const Tuple&)> less,
      std::function<Status(const Tuple&)> fn);

  // Moves in-memory tuples into spill files in C-sized chunks (the memory
  // manager's spill hook). Leaves the bag logically intact.
  sim::Task<Status> SpillMemory();

  // Deletes all spill files and drops in-memory contents.
  sim::Task<> Destroy();

  uint64_t count() const { return count_; }
  uint64_t memory_bytes() const { return memory_bytes_; }
  uint64_t spilled_bytes() const { return spilled_bytes_; }
  uint64_t total_bytes() const { return memory_bytes_ + spilled_bytes_; }
  size_t spill_file_count() const { return spill_files_.size(); }
  const std::string& name() const { return name_; }

 private:
  // Serializes `tuples` into spill files of at most spill_chunk_bytes each.
  sim::Task<Status> SpillTuples(std::vector<Tuple> tuples,
                                std::vector<std::unique_ptr<mapred::SpillFile>>*
                                    out);

  MemoryManager* manager_;
  mapred::Spiller* spiller_;
  mapred::CpuMeter* cpu_;
  std::string name_;
  uint64_t spill_chunk_bytes_;
  Duration per_tuple_cpu_;

  std::vector<Tuple> memory_;
  uint64_t memory_bytes_ = 0;
  std::vector<std::unique_ptr<mapred::SpillFile>> spill_files_;
  uint64_t spilled_bytes_ = 0;
  uint64_t count_ = 0;
  uint64_t next_spill_ = 0;
  bool destroyed_ = false;
};

}  // namespace spongefiles::pig

#endif  // SPONGEFILES_PIG_DATA_BAG_H_
