#include "pig/udfs.h"

#include <algorithm>
#include <limits>
#include <list>
#include <unordered_map>

namespace spongefiles::pig {

namespace {

// Space-saving heavy-hitter sketch (Metwally et al.) with the stream-
// summary structure: buckets of equal counts kept in ascending order, so
// increments and minimum-eviction are both O(1).
// lint: shard(value)
class SpaceSaving {
 public:
  explicit SpaceSaving(size_t capacity) : capacity_(capacity) {}

  void Add(const std::string& item) {
    auto it = entries_.find(item);
    if (it != entries_.end()) {
      Increment(it);
      return;
    }
    if (entries_.size() < capacity_) {
      // Fresh entry with count 1: lives in the first bucket.
      if (buckets_.empty() || buckets_.front().count != 1) {
        buckets_.push_front(Bucket{1, {}});
      }
      buckets_.front().terms.push_front(item);
      entries_[item] = {buckets_.begin(), buckets_.front().terms.begin()};
      return;
    }
    // Evict any entry from the minimum bucket; the newcomer inherits its
    // count (the classic overestimation floor) plus one.
    auto min_bucket = buckets_.begin();
    std::string victim = min_bucket->terms.front();
    auto victim_entry = entries_.find(victim);
    // Rename the victim's slot to the new item, then increment it.
    *victim_entry->second.term_it = item;
    entries_[item] = victim_entry->second;
    entries_.erase(victim_entry);
    Increment(entries_.find(item));
  }

  std::vector<std::string> Candidates() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    // lint: iter-ok(hash-order list is sorted immediately below)
    for (const auto& [item, entry] : entries_) out.push_back(item);
    // The sketch map is unordered; sort so downstream passes never see
    // hash order.
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  struct Bucket {
    uint64_t count;
    std::list<std::string> terms;
  };
  struct Entry {
    std::list<Bucket>::iterator bucket_it;
    std::list<std::string>::iterator term_it;
  };

  void Increment(std::unordered_map<std::string, Entry>::iterator it) {
    Entry& entry = it->second;
    auto bucket = entry.bucket_it;
    uint64_t next_count = bucket->count + 1;
    auto next = std::next(bucket);
    if (next == buckets_.end() || next->count != next_count) {
      next = buckets_.insert(next, Bucket{next_count, {}});
    }
    next->terms.splice(next->terms.begin(), bucket->terms, entry.term_it);
    entry.bucket_it = next;
    entry.term_it = next->terms.begin();
    if (bucket->terms.empty()) buckets_.erase(bucket);
  }

  size_t capacity_;
  std::list<Bucket> buckets_;  // ascending by count
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace

sim::Task<Status> TopKUdf::Apply(std::string group, DataBag* bag,
                                 mapred::ReduceContext* ctx) {
  // Pass 1: sketch the candidate heavy hitters (re-spill: pass 2 follows).
  SpaceSaving sketch(sketch_capacity_);
  CO_RETURN_IF_ERROR(co_await bag->ForEach(
      [&](const Tuple& tuple) {
        for (const std::string& term : tuple.fields) sketch.Add(term);
        return Status::OK();
      },
      /*respill=*/true));

  // Pass 2: exact counts for the candidates only.
  std::vector<std::string> candidates = sketch.Candidates();
  std::unordered_map<std::string, uint64_t> exact;
  exact.reserve(candidates.size());
  for (const std::string& c : candidates) exact[c] = 0;
  CO_RETURN_IF_ERROR(co_await bag->ForEach(
      [&](const Tuple& tuple) {
        for (const std::string& term : tuple.fields) {
          auto it = exact.find(term);
          if (it != exact.end()) ++it->second;
        }
        return Status::OK();
      },
      /*respill=*/false));

  std::vector<std::pair<uint64_t, std::string>> ranked;
  ranked.reserve(exact.size());
  // lint: iter-ok(ranked is fully sorted by a total order before any output)
  for (auto& [term, count] : exact) ranked.push_back({count, term});
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (size_t i = 0; i < std::min(k_, ranked.size()); ++i) {
    mapred::Record out;
    out.key = group;
    out.fields = {ranked[i].second};
    out.number = static_cast<double>(ranked[i].first);
    ctx->output->push_back(std::move(out));
  }
  co_return Status::OK();
}

sim::Task<Status> SpamQuantilesUdf::Apply(std::string group,
                                          DataBag* bag,
                                          mapred::ReduceContext* ctx) {
  const uint64_t n = bag->count();
  if (n == 0) co_return Status::OK();
  // Target positions, in ascending order (quantiles_ is ascending).
  std::vector<uint64_t> positions;
  positions.reserve(quantiles_.size());
  for (double q : quantiles_) {
    uint64_t pos = static_cast<uint64_t>(q * static_cast<double>(n - 1));
    positions.push_back(pos);
  }
  size_t next = 0;
  uint64_t index = 0;
  std::vector<double> values(quantiles_.size(), 0);
  CO_RETURN_IF_ERROR(co_await bag->SortedForEach(
      [](const Tuple& a, const Tuple& b) { return a.number < b.number; },
      [&](const Tuple& tuple) {
        while (next < positions.size() && positions[next] == index) {
          values[next] = tuple.number;
          ++next;
        }
        ++index;
        return Status::OK();
      }));
  for (size_t i = 0; i < quantiles_.size(); ++i) {
    mapred::Record out;
    out.key = group;
    out.number = values[i];
    out.fields = {"q" + std::to_string(static_cast<int>(
                            quantiles_[i] * 100))};
    ctx->output->push_back(std::move(out));
  }
  co_return Status::OK();
}

sim::Task<Status> MedianReducer::Start(mapred::ReduceContext* ctx) {
  ctx_ = ctx;
  manager_ = std::make_unique<MemoryManager>(
      static_cast<uint64_t>(0.3 * static_cast<double>(ctx->heap_bytes)));
  co_return Status::OK();
}

sim::Task<Status> MedianReducer::StartKey(std::string key) {
  (void)key;
  bag_ = std::make_unique<DataBag>(manager_.get(), ctx_->spiller, ctx_->cpu,
                                   "median");
  co_return Status::OK();
}

sim::Task<Status> MedianReducer::AddValue(mapred::Record value) {
  co_return co_await bag_->Add(std::move(value));
}

sim::Task<Status> MedianReducer::FinishKey() {
  const uint64_t n = bag_->count();
  uint64_t target = n == 0 ? 0 : (n - 1) / 2;
  uint64_t index = 0;
  double median = 0;
  CO_RETURN_IF_ERROR(co_await bag_->SortedForEach(
      [](const Tuple& a, const Tuple& b) { return a.number < b.number; },
      [&](const Tuple& tuple) {
        if (index == target) median = tuple.number;
        ++index;
        return Status::OK();
      }));
  mapred::Record out;
  out.key = "median";
  out.number = median;
  ctx_->output->push_back(std::move(out));
  co_await bag_->Destroy();
  bag_.reset();
  co_return Status::OK();
}

sim::Task<Status> PigReducer::Start(mapred::ReduceContext* ctx) {
  ctx_ = ctx;
  manager_ = std::make_unique<MemoryManager>(static_cast<uint64_t>(
      bag_memory_fraction_ * static_cast<double>(ctx->heap_bytes)));
  co_return Status::OK();
}

sim::Task<Status> PigReducer::StartKey(std::string key) {
  group_ = key;
  bag_ = std::make_unique<DataBag>(manager_.get(), ctx_->spiller, ctx_->cpu,
                                   "group." + key,
                                   /*spill_chunk_bytes=*/10ull * 1024 * 1024,
                                   per_tuple_cpu_);
  co_return Status::OK();
}

sim::Task<Status> PigReducer::AddValue(mapred::Record value) {
  co_return co_await bag_->Add(std::move(value));
}

sim::Task<Status> PigReducer::FinishKey() {
  std::unique_ptr<Udf> udf = udf_factory_();
  Status applied = co_await udf->Apply(group_, bag_.get(), ctx_);
  co_await bag_->Destroy();
  bag_.reset();
  co_return applied;
}

}  // namespace spongefiles::pig
