#ifndef SPONGEFILES_PIG_UDFS_H_
#define SPONGEFILES_PIG_UDFS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mapred/job.h"
#include "pig/data_bag.h"
#include "pig/memory_manager.h"

namespace spongefiles::pig {

// A holistic user-defined function applied to one group's bag in the
// reduce phase. UDFs may take multiple passes over the bag (each pass over
// spilled data re-spills it, since spill files are read-once).
// lint: shard(value)
class Udf {
 public:
  virtual ~Udf() = default;

  virtual sim::Task<Status> Apply(std::string group, DataBag* bag,
                                  mapred::ReduceContext* ctx) = 0;
};

// The paper's Frequent Anchortext UDF: the k most frequent anchortext
// terms per group. Two passes: a space-saving sketch proposes candidate
// heavy hitters, then an exact counting pass over the candidates picks the
// true top k. Terms are the tuple's `fields`.
// Emits one record per top term: key=group, fields={term}, number=count.
// lint: shard(value)
class TopKUdf : public Udf {
 public:
  explicit TopKUdf(size_t k, size_t sketch_capacity = 4096)
      : k_(k), sketch_capacity_(sketch_capacity) {}

  sim::Task<Status> Apply(std::string group, DataBag* bag,
                          mapred::ReduceContext* ctx) override;

 private:
  size_t k_;
  size_t sketch_capacity_;
};

// The paper's Spam Quantiles UDF: orders the group's tuples by spam score
// (the `number` column) via the bag's external sort and reports the
// requested quantiles. Deliberately holds full, unprojected tuples — the
// hastily-written-UDF pattern section 4.2.1 describes.
// Emits one record per quantile: key=group, number=score,
// fields={"q<percent>"}.
// lint: shard(value)
class SpamQuantilesUdf : public Udf {
 public:
  explicit SpamQuantilesUdf(std::vector<double> quantiles = {0.0, 0.25, 0.5,
                                                             0.75, 1.0})
      : quantiles_(std::move(quantiles)) {}

  sim::Task<Status> Apply(std::string group, DataBag* bag,
                          mapred::ReduceContext* ctx) override;

 private:
  std::vector<double> quantiles_;
};

// The median MapReduce job's reducer: a single reduce task receives every
// number (one key), accumulates them in a spillable bag, and finds the
// exact median via sorted traversal. Emits key="median", number=value.
// lint: shard(value)
class MedianReducer : public mapred::Reducer {
 public:
  sim::Task<Status> Start(mapred::ReduceContext* ctx) override;
  sim::Task<Status> StartKey(std::string key) override;
  sim::Task<Status> AddValue(mapred::Record value) override;
  sim::Task<Status> FinishKey() override;

 private:
  std::unique_ptr<MemoryManager> manager_;
  std::unique_ptr<DataBag> bag_;
};

// The generic Pig reduce-side runner: one spillable bag per group, then
// the UDF. This is what a Pig GROUP BY ... FOREACH ... compiles to.
// `per_tuple_cpu` is the UDF's processing cost per tuple per pass; Pig's
// interpreted pipeline typically burns on the order of 100 us per tuple.
// lint: shard(value)
class PigReducer : public mapred::Reducer {
 public:
  explicit PigReducer(std::function<std::unique_ptr<Udf>()> udf_factory,
                      double bag_memory_fraction = 0.3,
                      Duration per_tuple_cpu = Micros(120))
      : udf_factory_(std::move(udf_factory)),
        bag_memory_fraction_(bag_memory_fraction),
        per_tuple_cpu_(per_tuple_cpu) {}

  sim::Task<Status> Start(mapred::ReduceContext* ctx) override;
  sim::Task<Status> StartKey(std::string key) override;
  sim::Task<Status> AddValue(mapred::Record value) override;
  sim::Task<Status> FinishKey() override;

 private:
  std::function<std::unique_ptr<Udf>()> udf_factory_;
  double bag_memory_fraction_;
  Duration per_tuple_cpu_;
  std::unique_ptr<MemoryManager> manager_;
  std::unique_ptr<DataBag> bag_;
  std::string group_;
};

}  // namespace spongefiles::pig

#endif  // SPONGEFILES_PIG_UDFS_H_
