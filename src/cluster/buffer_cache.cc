#include "cluster/buffer_cache.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"
#include "sim/access.h"

namespace spongefiles::cluster {

namespace {

// lint: shard(value)
struct CacheCounters {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* absorbed_bytes;
};

const CacheCounters& Counters() {
  static const CacheCounters counters = {
      obs::Registry::Default().counter("cluster.cache.hits"),
      obs::Registry::Default().counter("cluster.cache.misses"),
      obs::Registry::Default().counter("cluster.cache.absorbed_bytes"),
  };
  return counters;
}

}  // namespace

BufferCache::Block* BufferCache::Find(const BlockKey& key) {
  auto it = blocks_.find(key);
  return it == blocks_.end() ? nullptr : &it->second;
}

sim::Task<> BufferCache::Write(uint64_t file, uint64_t offset,
                               uint64_t bytes) {
  if (bytes == 0) co_return;
  // Even reads mutate cache state (LRU lists), so both paths record writes.
  SIM_WRITE(engine_, this, "BufferCache", "pages",
            sim::AccessRecorder::NodeDomain(disk_->node()));
  if (config_.capacity < config_.block_size) {
    // Effectively no cache: write through to disk synchronously, in small
    // fragments (no coalescing without page-cache batching). Fragments of
    // one stream stay contiguous, so the cost shows up only when other
    // streams interleave — exactly the memory-pressure effect.
    for (uint64_t off = 0; off < bytes;
         off += config_.uncached_write_unit) {
      uint64_t n = std::min<uint64_t>(config_.uncached_write_unit,
                                      bytes - off);
      co_await disk_->Write(file, offset + off, n);
    }
    co_return;
  }
  // Memory-copy cost for landing the data in cache.
  co_await engine_->Delay(TransferTime(bytes, config_.memory_bandwidth));
  uint64_t first = offset / config_.block_size;
  uint64_t last = (offset + bytes - 1) / config_.block_size;
  for (uint64_t b = first; b <= last; ++b) {
    co_await Touch(BlockKey{file, b}, /*mark_dirty=*/true);
  }
  bytes_absorbed_ += bytes;
  Counters().absorbed_bytes->Increment(bytes);
  co_await FlushDirtyIfThrottled();
}

sim::Task<> BufferCache::Read(uint64_t file, uint64_t offset,
                              uint64_t bytes) {
  if (bytes == 0) co_return;
  SIM_WRITE(engine_, this, "BufferCache", "pages",
            sim::AccessRecorder::NodeDomain(disk_->node()));
  if (config_.capacity < config_.block_size) {
    // No cache: no readahead; reads reach the disk in small fragments.
    for (uint64_t off = 0; off < bytes; off += config_.uncached_read_unit) {
      uint64_t n = std::min<uint64_t>(config_.uncached_read_unit,
                                      bytes - off);
      co_await disk_->Read(file, offset + off, n);
    }
    co_return;
  }
  uint64_t first = offset / config_.block_size;
  uint64_t last = (offset + bytes - 1) / config_.block_size;
  // Group contiguous misses into single disk requests so an uncached
  // sequential scan still enjoys sequential bandwidth.
  uint64_t miss_start = 0;
  uint64_t miss_blocks = 0;
  uint64_t hit_blocks = 0;
  auto flush_miss_range = [&]() -> sim::Task<> {
    if (miss_blocks == 0) co_return;
    co_await disk_->Read(file, miss_start * config_.block_size,
                         miss_blocks * config_.block_size);
    misses_ += miss_blocks;
    Counters().misses->Increment(miss_blocks);
    miss_blocks = 0;
  };
  for (uint64_t b = first; b <= last; ++b) {
    BlockKey key{file, b};
    if (Find(key) != nullptr) {
      co_await flush_miss_range();
      ++hit_blocks;
      ++hits_;
      Counters().hits->Increment();
      co_await Touch(key, /*mark_dirty=*/false);
    } else {
      if (miss_blocks == 0) miss_start = b;
      ++miss_blocks;
      co_await Touch(key, /*mark_dirty=*/false);
    }
  }
  co_await flush_miss_range();
  if (hit_blocks > 0) {
    // Copy-out cost for the cached portion.
    co_await engine_->Delay(
        TransferTime(hit_blocks * config_.block_size,
                     config_.memory_bandwidth));
  }
}

sim::Task<> BufferCache::Touch(BlockKey key, bool mark_dirty) {
  Block* block = Find(key);
  if (block != nullptr) {
    if (block->active) {
      active_.erase(block->lru_it);
      active_.push_front(key);
      block->lru_it = active_.begin();
    } else {
      // Second touch: promote to the active list.
      inactive_.erase(block->lru_it);
      active_.push_front(key);
      block->lru_it = active_.begin();
      block->active = true;
      active_bytes_ += config_.block_size;
    }
    if (mark_dirty && !block->dirty) {
      block->dirty = true;
      dirty_bytes_ += config_.block_size;
      dirty_fifo_.push_back(key);
    }
    co_return;
  }
  // First touch: insert on the inactive (probationary) list.
  inactive_.push_front(key);
  Block entry;
  entry.key = key;
  entry.dirty = mark_dirty;
  entry.active = false;
  entry.lru_it = inactive_.begin();
  blocks_.emplace(key, entry);
  cached_bytes_ += config_.block_size;
  if (mark_dirty) {
    dirty_bytes_ += config_.block_size;
    dirty_fifo_.push_back(key);
  }
  co_await EvictIfNeeded();
}

sim::Task<> BufferCache::EvictIfNeeded() {
  while (cached_bytes_ > config_.capacity) {
    // Prefer evicting from the inactive list; fall back to shrinking the
    // active list when it exceeds its share (or inactive is empty).
    bool from_active =
        inactive_.empty() ||
        active_bytes_ >
            static_cast<uint64_t>(config_.active_fraction *
                                  static_cast<double>(config_.capacity));
    std::list<BlockKey>& list = from_active ? active_ : inactive_;
    if (list.empty()) co_return;  // cache smaller than one block
    BlockKey victim = list.back();
    auto it = blocks_.find(victim);
    bool dirty = it->second.dirty;
    list.pop_back();
    if (it->second.active) active_bytes_ -= config_.block_size;
    blocks_.erase(it);
    cached_bytes_ -= config_.block_size;
    if (dirty) {
      dirty_bytes_ -= config_.block_size;
      co_await disk_->Write(victim.file, victim.index * config_.block_size,
                            config_.block_size);
    }
  }
}

sim::Task<> BufferCache::FlushDirtyIfThrottled() {
  uint64_t threshold = static_cast<uint64_t>(
      config_.dirty_threshold * static_cast<double>(config_.capacity));
  while (dirty_bytes_ > threshold && !dirty_fifo_.empty()) {
    // Flush the oldest dirty block. Entries whose block was since cleaned,
    // evicted or dropped are skipped lazily.
    BlockKey key = dirty_fifo_.front();
    dirty_fifo_.pop_front();
    Block* block = Find(key);
    if (block == nullptr || !block->dirty) continue;
    block->dirty = false;
    dirty_bytes_ -= config_.block_size;
    co_await disk_->Write(key.file, key.index * config_.block_size,
                          config_.block_size);
  }
}

sim::Task<> BufferCache::Flush(uint64_t file) {
  SIM_WRITE(engine_, this, "BufferCache", "pages",
            sim::AccessRecorder::NodeDomain(disk_->node()));
  // Collect this file's dirty blocks, then write them in index order.
  std::vector<uint64_t> dirty;
  // lint: iter-ok(collects dirty block indexes only; sorted before any IO below)
  for (auto& [key, block] : blocks_) {
    if (key.file == file && block.dirty) dirty.push_back(key.index);
  }
  std::sort(dirty.begin(), dirty.end());
  for (uint64_t index : dirty) {
    Block* block = Find(BlockKey{file, index});
    if (block == nullptr || !block->dirty) continue;
    block->dirty = false;
    dirty_bytes_ -= config_.block_size;
    co_await disk_->Write(file, index * config_.block_size,
                          config_.block_size);
  }
}

void BufferCache::Drop(uint64_t file) {
  SIM_WRITE(engine_, this, "BufferCache", "pages",
            sim::AccessRecorder::NodeDomain(disk_->node()));
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (it->first.file == file) {
      if (it->second.dirty) dirty_bytes_ -= config_.block_size;
      if (it->second.active) {
        active_.erase(it->second.lru_it);
        active_bytes_ -= config_.block_size;
      } else {
        inactive_.erase(it->second.lru_it);
      }
      cached_bytes_ -= config_.block_size;
      it = blocks_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace spongefiles::cluster
