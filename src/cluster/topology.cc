#include "cluster/topology.h"

#include "common/logging.h"

namespace spongefiles::cluster {

ClusterConfig MakeClusterConfig(const TopologyConfig& topo) {
  SPONGE_CHECK(topo.num_racks > 0);
  SPONGE_CHECK(topo.nodes_per_rack > 0);
  SPONGE_CHECK(topo.oversubscription >= 0);
  ClusterConfig cc;
  cc.num_nodes = topo.num_racks * topo.nodes_per_rack;
  cc.nodes_per_rack = topo.nodes_per_rack;
  cc.node = topo.node;
  cc.network = topo.network;
  if (topo.oversubscription > 0) {
    cc.network.cross_rack_bandwidth =
        static_cast<double>(topo.nodes_per_rack) * topo.network.bandwidth /
        topo.oversubscription;
  } else {
    cc.network.cross_rack_bandwidth = 0;  // non-blocking core
  }
  return cc;
}

}  // namespace spongefiles::cluster
