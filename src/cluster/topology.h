#ifndef SPONGEFILES_CLUSTER_TOPOLOGY_H_
#define SPONGEFILES_CLUSTER_TOPOLOGY_H_

#include <cstddef>

#include "cluster/cluster.h"
#include "cluster/network.h"
#include "cluster/node.h"

namespace spongefiles::cluster {

// Datacenter-shaped cluster description: `num_racks` racks of
// `nodes_per_rack` nodes each, every rack behind a shared uplink into a
// non-blocking core. The uplink is provisioned at the rack's aggregate NIC
// bandwidth divided by `oversubscription` — the classic 4:1..10:1 ratios
// that make cross-rack spilling expensive and motivated the paper's
// rack-local restriction in the first place.
// lint: shard(value)
struct TopologyConfig {
  size_t num_racks = 16;
  size_t nodes_per_rack = 32;
  // Aggregate rack NIC bandwidth over uplink bandwidth. 4.0 means a rack
  // of 32 1 Gb nodes shares an 8 Gb/s uplink. <= 1 models a full-bisection
  // (non-oversubscribed, but still metered) core; 0 disables core metering
  // entirely (infinite fabric, cross-rack pays only the extra hop latency).
  double oversubscription = 4.0;
  NodeConfig node;
  // Edge (in-rack) parameters; cross_rack_bandwidth is derived from
  // `oversubscription` and overwritten by MakeClusterConfig.
  NetworkConfig network;
};

// Expands the rack-level description into the flat ClusterConfig the
// Cluster constructor consumes, deriving cross_rack_bandwidth from the
// oversubscription ratio.
ClusterConfig MakeClusterConfig(const TopologyConfig& topo);

}  // namespace spongefiles::cluster

#endif  // SPONGEFILES_CLUSTER_TOPOLOGY_H_
