#ifndef SPONGEFILES_CLUSTER_DISK_H_
#define SPONGEFILES_CLUSTER_DISK_H_

#include <cstdint>

#include "common/units.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace spongefiles::cluster {

// Mechanical-disk timing model (one spindle, one head). Matches the paper's
// testbed: 7200 RPM SATA drives whose throughput collapses under concurrent
// streams because every stream switch costs a seek.
// lint: shard(value)
struct DiskConfig {
  // Average seek (arm movement) plus controller overhead.
  Duration avg_seek = Micros(8000);
  // Average rotational delay: half a revolution at 7200 RPM is ~4.17 ms.
  Duration avg_rotation = Micros(4170);
  // Sequential transfer rate in bytes/second.
  double sequential_bandwidth = 62.0 * 1024 * 1024;
};

// A single disk serving requests FIFO. A request on the same stream at the
// next sequential offset continues without a seek; anything else pays
// seek + rotation. Contention between streams therefore degrades the disk
// into random IO, which is the effect Table 1 and Figures 4-6 hinge on.
// lint: shard(node)
class Disk {
 public:
  // `node` is the owning node's id, used only to label trace spans.
  Disk(sim::Engine* engine, const DiskConfig& config, size_t node = 0)
      : engine_(engine), config_(config), node_(node), queue_(engine, 1) {}

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Performs one request: waits for the head, seeks if needed, transfers.
  // `stream` identifies the file; `offset` is the position within it.
  sim::Task<> Access(uint64_t stream, uint64_t offset, uint64_t bytes,
                     bool is_write);

  sim::Task<> Read(uint64_t stream, uint64_t offset, uint64_t bytes) {
    return Access(stream, offset, bytes, /*is_write=*/false);
  }
  sim::Task<> Write(uint64_t stream, uint64_t offset, uint64_t bytes) {
    return Access(stream, offset, bytes, /*is_write=*/true);
  }

  // Pending + in-service request count (for load-aware callers and tests).
  size_t queue_depth() const { return queue_.waiters() + busy_; }

  // Owning node id (labels trace spans and access-set records).
  size_t node() const { return node_; }

  // Gray-failure injection: multiplies every request's service time
  // (seek + rotation + transfer) by `factor` >= 1 — a sick spindle,
  // firmware-level retries, or a congested controller. 1.0 restores
  // nominal speed. Takes effect for requests entering service afterwards.
  void SetSlowdown(double factor) {
    slowdown_ = factor < 1.0 ? 1.0 : factor;
  }
  double slowdown() const { return slowdown_; }

  // --- statistics ---
  uint64_t seeks() const { return seeks_; }
  uint64_t requests() const { return requests_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }
  Duration busy_time() const { return busy_time_; }

 private:
  sim::Engine* engine_;
  DiskConfig config_;
  size_t node_;
  sim::Semaphore queue_;
  double slowdown_ = 1.0;

  // Head position: the stream and offset a request can continue without
  // seeking from.
  uint64_t last_stream_ = ~0ull;
  uint64_t next_offset_ = 0;

  int busy_ = 0;
  uint64_t seeks_ = 0;
  uint64_t requests_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  Duration busy_time_ = 0;
};

}  // namespace spongefiles::cluster

#endif  // SPONGEFILES_CLUSTER_DISK_H_
