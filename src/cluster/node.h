#ifndef SPONGEFILES_CLUSTER_NODE_H_
#define SPONGEFILES_CLUSTER_NODE_H_

#include <cstdint>
#include <memory>

#include "cluster/buffer_cache.h"
#include "cluster/disk.h"
#include "cluster/local_fs.h"
#include "cluster/ssd.h"
#include "common/units.h"
#include "sim/engine.h"

namespace spongefiles::cluster {

// Static memory layout of a worker node. Mirrors the paper's testbed: each
// node runs T task slots with fixed JVM heaps, reserves a shared sponge
// pool outside the heaps, and whatever physical memory remains backs the
// OS buffer cache. The "memory pressure" micro-benchmark pins memory,
// shrinking the cache.
// lint: shard(value)
struct NodeConfig {
  uint64_t physical_memory = 16ull * 1024 * 1024 * 1024;
  int map_slots = 2;
  int reduce_slots = 1;
  uint64_t heap_per_slot = 1024ull * 1024 * 1024;
  uint64_t sponge_memory = 1024ull * 1024 * 1024;
  uint64_t pinned_memory = 0;              // simulated external pressure
  uint64_t os_reserved = 512ull * 1024 * 1024;
  uint64_t disk_capacity = 300ull * 1024 * 1024 * 1024;
  DiskConfig disk;
  // Local SSD for the spill cascade's middle rung; capacity 0 (the
  // default) means the node has no SSD and the cascade skips the rung.
  SsdConfig ssd;
  BufferCacheConfig cache;  // capacity is derived, other knobs honored
};

// One worker machine: a disk behind a buffer cache, a local filesystem,
// and bookkeeping for the memory split. The sponge pool object itself
// lives in src/sponge (it needs the allocator logic); the node only
// carves out its capacity.
// lint: shard(node)
class Node {
 public:
  Node(sim::Engine* engine, size_t id, size_t rack, const NodeConfig& config);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  size_t id() const { return id_; }
  size_t rack() const { return rack_; }
  const NodeConfig& config() const { return config_; }

  Disk& disk() { return *disk_; }
  bool has_ssd() const { return ssd_->present(); }
  Ssd& ssd() { return *ssd_; }
  BufferCache& cache() { return *cache_; }
  LocalFs& fs() { return *fs_; }

  // Physical memory left for the buffer cache after heaps, sponge, pinned
  // memory and the OS reservation.
  uint64_t cache_capacity() const;

  int total_slots() const { return config_.map_slots + config_.reduce_slots; }

 private:
  size_t id_;
  size_t rack_;
  NodeConfig config_;
  std::unique_ptr<Disk> disk_;
  std::unique_ptr<Ssd> ssd_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<LocalFs> fs_;
};

}  // namespace spongefiles::cluster

#endif  // SPONGEFILES_CLUSTER_NODE_H_
