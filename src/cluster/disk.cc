#include "cluster/disk.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/access.h"

namespace spongefiles::cluster {

namespace {

obs::Counter* DiskBytesCounter(bool is_write) {
  static obs::Counter* const read = obs::Registry::Default().counter(
      "cluster.disk.bytes", {{"op", "read"}});
  static obs::Counter* const write = obs::Registry::Default().counter(
      "cluster.disk.bytes", {{"op", "write"}});
  return is_write ? write : read;
}

}  // namespace

sim::Task<> Disk::Access(uint64_t stream, uint64_t offset, uint64_t bytes,
                         bool is_write) {
  static obs::Counter* const requests_counter =
      obs::Registry::Default().counter("cluster.disk.requests");
  static obs::Counter* const seeks_counter =
      obs::Registry::Default().counter("cluster.disk.seeks");
  static obs::Histogram* const queue_depth_histogram =
      obs::Registry::Default().histogram("cluster.disk.queue_depth");

  // The span covers queue wait plus service time, making disk queueing
  // contention directly visible in traces.
  obs::SpanGuard span(&obs::Tracer::Default(), engine_, node_, 0, "disk",
                      is_write ? "disk.write" : "disk.read");
  span.Arg("bytes", bytes);
  queue_depth_histogram->Record(queue_depth());

  // Every request mutates spindle state (queue, head position), so this is
  // a write for conflict purposes regardless of direction.
  SIM_WRITE(engine_, this, "Disk", "spindle",
            sim::AccessRecorder::NodeDomain(node_));
  co_await queue_.Acquire();
  ++busy_;
  Duration cost = 0;
  if (stream != last_stream_ || offset != next_offset_) {
    cost += config_.avg_seek + config_.avg_rotation;
    ++seeks_;
    seeks_counter->Increment();
    span.Arg("seek", uint64_t{1});
  }
  cost += TransferTime(bytes, config_.sequential_bandwidth);
  if (slowdown_ > 1.0) {
    cost = static_cast<Duration>(static_cast<double>(cost) * slowdown_);
    span.Arg("slowdown", static_cast<uint64_t>(slowdown_));
  }
  ++requests_;
  requests_counter->Increment();
  DiskBytesCounter(is_write)->Increment(bytes);
  if (is_write) {
    bytes_written_ += bytes;
  } else {
    bytes_read_ += bytes;
  }
  busy_time_ += cost;
  last_stream_ = stream;
  next_offset_ = offset + bytes;
  co_await engine_->Delay(cost);
  --busy_;
  queue_.Release();
}

}  // namespace spongefiles::cluster
