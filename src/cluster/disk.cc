#include "cluster/disk.h"

namespace spongefiles::cluster {

sim::Task<> Disk::Access(uint64_t stream, uint64_t offset, uint64_t bytes,
                         bool is_write) {
  co_await queue_.Acquire();
  ++busy_;
  Duration cost = 0;
  if (stream != last_stream_ || offset != next_offset_) {
    cost += config_.avg_seek + config_.avg_rotation;
    ++seeks_;
  }
  cost += TransferTime(bytes, config_.sequential_bandwidth);
  ++requests_;
  if (is_write) {
    bytes_written_ += bytes;
  } else {
    bytes_read_ += bytes;
  }
  busy_time_ += cost;
  last_stream_ = stream;
  next_offset_ = offset + bytes;
  co_await engine_->Delay(cost);
  --busy_;
  queue_.Release();
}

}  // namespace spongefiles::cluster
