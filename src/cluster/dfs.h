#ifndef SPONGEFILES_CLUSTER_DFS_H_
#define SPONGEFILES_CLUSTER_DFS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "sim/task.h"

namespace spongefiles::cluster {

// A minimal HDFS-like distributed filesystem: files are sequences of
// fixed-size blocks placed round-robin across the cluster's local
// filesystems. It serves two purposes in the reproduction:
//   * storing job input datasets (map tasks read their splits from it, with
//     Hadoop-style locality: a split is read from the local disk when a
//     replica is local, otherwise fetched over the network), and
//   * the last-resort spill target in the SpongeFile allocation cascade.
// lint: shard(global: central namenode and block placement; block data motion already pays Disk and Network time)
class Dfs {
 public:
  static constexpr uint64_t kBlockSize = 128ull * 1024 * 1024;

  explicit Dfs(Cluster* cluster) : cluster_(cluster) {}

  Dfs(const Dfs&) = delete;
  Dfs& operator=(const Dfs&) = delete;

  // Creates a file of `size` bytes with blocks placed round-robin starting
  // at a deterministic node derived from the name. The block payloads are
  // synthesized by readers; the DFS charges IO and tracks placement.
  Status CreateFile(const std::string& name, uint64_t size);

  // Appends one block of `bytes` (<= kBlockSize) to `name` from `writer`,
  // creating the file when needed. Used by the spill path; charges a
  // network transfer when the chosen storage node is remote, plus the
  // storage node's write path.
  sim::Task<Status> AppendBlock(std::string name, size_t writer,
                                uint64_t bytes);

  // Reads `bytes` at `offset` of `name` into `reader`'s memory, charging
  // disk IO at each owning node and network transfer for non-local blocks.
  sim::Task<Status> Read(std::string name, size_t reader,
                         uint64_t offset, uint64_t bytes);

  // Deletes the file, releasing space on every owning node.
  Status Delete(const std::string& name);

  Result<uint64_t> Size(const std::string& name) const;

  // Node holding the block covering `offset`, or NOT_FOUND.
  Result<size_t> BlockLocation(const std::string& name,
                               uint64_t offset) const;

  bool Exists(const std::string& name) const {
    return files_.contains(name);
  }

 private:
  struct Block {
    size_t node;
    uint64_t local_file_id;
    uint64_t size;
  };
  struct File {
    std::vector<Block> blocks;
    uint64_t size = 0;
  };

  // Adds one block of `bytes` on `node`, backed by a local file there.
  Status PlaceBlock(File* file, const std::string& name, size_t node,
                    uint64_t bytes);

  Cluster* cluster_;
  std::unordered_map<std::string, File> files_;
  size_t next_node_ = 0;
};

}  // namespace spongefiles::cluster

#endif  // SPONGEFILES_CLUSTER_DFS_H_
