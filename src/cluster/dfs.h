#ifndef SPONGEFILES_CLUSTER_DFS_H_
#define SPONGEFILES_CLUSTER_DFS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "sim/task.h"

namespace spongefiles::cluster {

// A minimal HDFS-like distributed filesystem: files are sequences of
// fixed-size blocks placed round-robin across the cluster's local
// filesystems. It serves two purposes in the reproduction:
//   * storing job input datasets (map tasks read their splits from it, with
//     Hadoop-style locality: a split is read from the local disk when a
//     replica is local, otherwise fetched over the network), and
//   * the last-resort spill target in the SpongeFile allocation cascade.
// lint: shard(global: central namenode and block placement; block data motion already pays Disk and Network time)
class Dfs {
 public:
  static constexpr uint64_t kBlockSize = 128ull * 1024 * 1024;

  explicit Dfs(Cluster* cluster) : cluster_(cluster) {}

  Dfs(const Dfs&) = delete;
  Dfs& operator=(const Dfs&) = delete;

  // Creates a file of `size` bytes with blocks placed round-robin starting
  // at a deterministic node derived from the name. The block payloads are
  // synthesized by readers; the DFS charges IO and tracks placement.
  Status CreateFile(const std::string& name, uint64_t size);

  // Appends one block of `bytes` (<= kBlockSize) to `name` from `writer`,
  // creating the file when needed. Used by the spill path; charges a
  // network transfer when the chosen storage node is remote, plus the
  // storage node's write path.
  //
  // Sharded engine: the namenode (and every node's LocalFs it places
  // blocks on) is global-lane state, so worker-lane appends and reads hop
  // to the global lane, run there, and hop home — the same quantized
  // protocol remote sponge operations use (see sponge_server.h).
  sim::Task<Status> AppendBlock(std::string name, size_t writer,
                                uint64_t bytes);

  // Reads `bytes` at `offset` of `name` into `reader`'s memory, charging
  // disk IO at each owning node and network transfer for non-local blocks.
  sim::Task<Status> Read(std::string name, size_t reader,
                         uint64_t offset, uint64_t bytes);

  // Deletes the file, releasing space on every owning node. Synchronous,
  // so a worker lane cannot hop: off-global callers defer the delete to
  // the next window barrier (it runs on the driver, phase-exclusive) and
  // get OK back — deletion is best-effort cleanup on every call site.
  Status Delete(const std::string& name);

  Result<uint64_t> Size(const std::string& name) const;

  // Node holding the block covering `offset`, or NOT_FOUND.
  Result<size_t> BlockLocation(const std::string& name,
                               uint64_t offset) const;

  bool Exists(const std::string& name) const {
    return files_.contains(name);
  }

 private:
  struct Block {
    size_t node;
    uint64_t local_file_id;
    uint64_t size;
  };
  struct File {
    std::vector<Block> blocks;
    uint64_t size = 0;
  };

  // Adds one block of `bytes` on `node`, backed by a local file there.
  Status PlaceBlock(File* file, const std::string& name, size_t node,
                    uint64_t bytes);

  // The real implementations; the public entry points add the cross-lane
  // hop when called off the global lane and call these directly otherwise.
  sim::Task<Status> AppendBlockBody(std::string name, size_t writer,
                                    uint64_t bytes);
  sim::Task<Status> ReadBody(std::string name, size_t reader,
                             uint64_t offset, uint64_t bytes);
  Status DeleteBody(const std::string& name);

  Cluster* cluster_;
  std::unordered_map<std::string, File> files_;
  size_t next_node_ = 0;
};

}  // namespace spongefiles::cluster

#endif  // SPONGEFILES_CLUSTER_DFS_H_
