#ifndef SPONGEFILES_CLUSTER_NETWORK_H_
#define SPONGEFILES_CLUSTER_NETWORK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace spongefiles::cluster {

// Network timing model. Every node has a full-duplex NIC (independent
// transmit and receive pipes); the rack switch is non-blocking, matching the
// paper's assumption that in-rack bandwidth is plentiful. Loopback traffic
// (task talking to the sponge server on the same node over a local socket)
// does not touch the NIC; it pays IPC copy bandwidth plus per-message
// overhead — this is what separates the 7 ms "local sponge server" column
// of Table 1 from the 1 ms shared-memory column.
// lint: shard(value)
struct NetworkConfig {
  double bandwidth = 125.0 * 1024 * 1024;  // 1 Gb Ethernet, bytes/second
  Duration latency = Micros(300);          // one-way message latency
  double ipc_bandwidth = 160.0 * 1024 * 1024;  // local-socket copy rate
  Duration ipc_overhead = Micros(400);     // syscalls + context switches
  // Off-rack links are typically oversubscribed (the paper's reason for
  // restricting remote spilling to the local rack). When > 0, every
  // cross-rack transfer is serialized through its racks' shared
  // uplink/downlink pipes at this rate; 0 models a non-blocking core.
  double cross_rack_bandwidth = 0;
  Duration cross_rack_latency = Micros(200);  // extra hop latency
};

// lint: shard(channel)
class Network {
 public:
  // `racks[i]` is node i's rack; empty means everything on one rack.
  Network(sim::Engine* engine, size_t num_nodes, const NetworkConfig& config,
          std::vector<size_t> racks = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Moves `bytes` from node `src` to node `dst`, occupying src's transmit
  // pipe and dst's receive pipe for the duration. src == dst uses the IPC
  // (local socket) path.
  sim::Task<> Transfer(size_t src, size_t dst, uint64_t bytes);

  // A small request/response exchange (control messages): two one-way
  // latencies plus the payload transfer times.
  sim::Task<> Rpc(size_t src, size_t dst, uint64_t request_bytes,
                  uint64_t response_bytes);

  // Gray-failure injection: degrades `node`'s NIC. Transfers touching the
  // node run at `bandwidth_factor` of nominal rate (0 < factor <= 1) with
  // `extra_latency` added per message — a flapping link, or loss forcing
  // retransmits, seen as lower goodput and fatter tails. IPC traffic is
  // unaffected (it never leaves the host).
  void DegradeLink(size_t node, double bandwidth_factor,
                   Duration extra_latency);
  void RestoreLink(size_t node);

  const NetworkConfig& config() const { return config_; }

  // Total bytes moved, summed over the per-lane tallies (Transfer is the
  // one network mutation that runs on worker lanes — rack-local traffic
  // under the rack projection — so its counter is lane-striped; everything
  // else here is global-lane-only or phase-exclusive).
  uint64_t bytes_transferred() const {
    uint64_t total = 0;
    for (uint64_t lane_bytes : bytes_transferred_) total += lane_bytes;
    return total;
  }

  // Background-repair traffic accounting (re-replication after a sponge
  // server death). The bytes already went through Transfer and paid their
  // simulated time there; this tags them so operators — and the
  // bench_recovery budget gate — can tell repair load apart from
  // foreground spill traffic, per rack uplink.
  void NoteRepairTraffic(size_t src, size_t dst, uint64_t bytes);
  uint64_t repair_bytes() const { return repair_bytes_; }
  uint64_t rack_repair_uplink_bytes(size_t rack) const {
    return repair_uplink_bytes_[rack];
  }

  size_t num_racks() const { return uplink_.size(); }
  size_t rack_of(size_t node) const { return racks_[node]; }

  // Per-rack core-link accounting, charged only when the core is metered
  // (cross_rack_bandwidth > 0): bytes that crossed the rack boundary in
  // each direction, and the cumulative wire time the shared pipe was held.
  // Busy time over elapsed time is the rack's core-link utilization.
  uint64_t rack_uplink_bytes(size_t rack) const {
    return uplink_bytes_[rack];
  }
  uint64_t rack_downlink_bytes(size_t rack) const {
    return downlink_bytes_[rack];
  }
  Duration rack_uplink_busy(size_t rack) const { return uplink_busy_[rack]; }
  Duration rack_downlink_busy(size_t rack) const {
    return downlink_busy_[rack];
  }

 private:
  sim::Engine* engine_;
  NetworkConfig config_;
  std::vector<size_t> racks_;
  std::vector<std::unique_ptr<sim::Semaphore>> tx_;
  std::vector<std::unique_ptr<sim::Semaphore>> rx_;
  // Per-rack shared uplink (outbound) and downlink (inbound) pipes.
  std::vector<std::unique_ptr<sim::Semaphore>> uplink_;
  std::vector<std::unique_ptr<sim::Semaphore>> downlink_;
  // Metered-core accounting per rack (see accessors above).
  std::vector<uint64_t> uplink_bytes_;
  std::vector<uint64_t> downlink_bytes_;
  std::vector<Duration> uplink_busy_;
  std::vector<Duration> downlink_busy_;
  // Per-node NIC degradation (gray failures); 1.0 / 0 means healthy.
  std::vector<double> link_factor_;
  std::vector<Duration> link_extra_latency_;
  std::vector<uint64_t> bytes_transferred_;  // indexed by lane
  uint64_t cross_rack_bytes_ = 0;
  uint64_t repair_bytes_ = 0;
  std::vector<uint64_t> repair_uplink_bytes_;  // per source rack

 public:
  uint64_t cross_rack_bytes() const { return cross_rack_bytes_; }
};

}  // namespace spongefiles::cluster

#endif  // SPONGEFILES_CLUSTER_NETWORK_H_
