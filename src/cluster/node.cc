#include "cluster/node.h"

namespace spongefiles::cluster {

Node::Node(sim::Engine* engine, size_t id, size_t rack,
           const NodeConfig& config)
    : id_(id), rack_(rack), config_(config) {
  disk_ = std::make_unique<Disk>(engine, config.disk, id);
  ssd_ = std::make_unique<Ssd>(engine, config.ssd, id);
  BufferCacheConfig cache_config = config.cache;
  cache_config.capacity = cache_capacity();
  cache_ = std::make_unique<BufferCache>(engine, disk_.get(), cache_config);
  fs_ = std::make_unique<LocalFs>(cache_.get(), config.disk_capacity);
}

uint64_t Node::cache_capacity() const {
  uint64_t reserved = static_cast<uint64_t>(total_slots()) *
                          config_.heap_per_slot +
                      config_.sponge_memory + config_.pinned_memory +
                      config_.os_reserved;
  if (reserved >= config_.physical_memory) return 0;
  return config_.physical_memory - reserved;
}

}  // namespace spongefiles::cluster
