#ifndef SPONGEFILES_CLUSTER_LOCAL_FS_H_
#define SPONGEFILES_CLUSTER_LOCAL_FS_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "cluster/buffer_cache.h"
#include "common/status.h"
#include "common/units.h"
#include "sim/task.h"

namespace spongefiles::cluster {

// A node-local filesystem used for spill files, map outputs and DFS block
// storage. It tracks capacity and per-file sizes and charges IO time
// through the node's buffer cache and disk; file *contents* live with their
// owners (spill files and sponge chunks carry their own ByteRuns), keeping
// a single source of truth for data while the filesystem provides timing
// and space accounting.
// lint: shard(node)
class LocalFs {
 public:
  LocalFs(BufferCache* cache, uint64_t capacity)
      : cache_(cache), capacity_(capacity) {}

  LocalFs(const LocalFs&) = delete;
  LocalFs& operator=(const LocalFs&) = delete;

  // Creates an empty file and returns its id. Fails if the name exists.
  Result<uint64_t> Create(const std::string& name);

  // Reserves space and charges the write path for appending `bytes`.
  // Returns RESOURCE_EXHAUSTED (before any time passes) if the disk is
  // full.
  sim::Task<Status> Append(uint64_t file_id, uint64_t bytes);

  // Charges the read path for `bytes` at `offset`. Reading past EOF is an
  // OUT_OF_RANGE error.
  sim::Task<Status> Read(uint64_t file_id, uint64_t offset, uint64_t bytes);

  // Sets the file's size without charging IO time (pre-loaded datasets).
  Status Truncate(uint64_t file_id, uint64_t size);

  // Forces the file's dirty cache blocks to disk.
  sim::Task<Status> Sync(uint64_t file_id);

  // Deletes the file: frees its space and drops its cache blocks without
  // writeback.
  Status Delete(uint64_t file_id);

  // Size of an existing file, or NOT_FOUND.
  Result<uint64_t> Size(uint64_t file_id) const;

  uint64_t capacity() const { return capacity_; }
  uint64_t used() const { return used_; }
  uint64_t free_space() const { return capacity_ - used_; }
  size_t file_count() const { return files_.size(); }

 private:
  struct File {
    std::string name;
    uint64_t size = 0;
  };

  BufferCache* cache_;
  uint64_t capacity_;
  uint64_t used_ = 0;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, File> files_;
  std::unordered_map<std::string, uint64_t> by_name_;
};

}  // namespace spongefiles::cluster

#endif  // SPONGEFILES_CLUSTER_LOCAL_FS_H_
