#include "cluster/dfs.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/access.h"

namespace spongefiles::cluster {

namespace {

obs::Counter* DfsBytesCounter(bool is_write) {
  static obs::Counter* const read = obs::Registry::Default().counter(
      "cluster.dfs.bytes", {{"op", "read"}});
  static obs::Counter* const write = obs::Registry::Default().counter(
      "cluster.dfs.bytes", {{"op", "write"}});
  return is_write ? write : read;
}

// Namespace metadata (file table, block placement) is the namenode: a
// single shared structure every writer and reader consults.
void NoteNamespaceAccess(sim::Engine* engine, const void* dfs, bool write) {
  SIM_ACCESS(engine, dfs, "Dfs", "namespace", write,
             sim::AccessRecorder::GlobalDomain(
                 "central namenode: file table and block placement; the "
                 "parallel port keeps it a service reached by message"));
}

uint64_t NameHash(const std::string& name) {
  uint64_t h = 14695981039346656037ull;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

Status Dfs::PlaceBlock(File* file, const std::string& name, size_t node,
                       uint64_t bytes) {
  LocalFs& fs = cluster_->node(node).fs();
  auto created =
      fs.Create(name + ".blk" + std::to_string(file->blocks.size()));
  if (!created.ok()) return created.status();
  file->blocks.push_back(Block{node, *created, bytes});
  file->size += bytes;
  return Status::OK();
}

Status Dfs::CreateFile(const std::string& name, uint64_t size) {
  if (files_.contains(name)) {
    return FailedPrecondition("DFS file exists: " + name);
  }
  File file;
  size_t node = NameHash(name) % cluster_->size();
  uint64_t remaining = size;
  while (remaining > 0) {
    uint64_t block = std::min(remaining, kBlockSize);
    RETURN_IF_ERROR(PlaceBlock(&file, name, node, block));
    // Pre-existing data occupies disk space without charging IO time.
    Block& placed = file.blocks.back();
    LocalFs& fs = cluster_->node(placed.node).fs();
    RETURN_IF_ERROR(fs.Truncate(placed.local_file_id, block));
    remaining -= block;
    node = (node + 1) % cluster_->size();
  }
  files_[name] = std::move(file);
  return Status::OK();
}

sim::Task<Status> Dfs::AppendBlock(std::string name, size_t writer,
                                   uint64_t bytes) {
  sim::Engine* engine = cluster_->engine();
  if (engine->current_lane() != 0) {
    const uint32_t home = engine->current_lane();
    co_await engine->HopToLane(0);
    Status result = co_await AppendBlockBody(std::move(name), writer, bytes);
    co_await engine->HopToLane(home);
    co_return result;
  }
  co_return co_await AppendBlockBody(std::move(name), writer, bytes);
}

sim::Task<Status> Dfs::AppendBlockBody(std::string name, size_t writer,
                                       uint64_t bytes) {
  if (bytes > kBlockSize) {
    co_return InvalidArgument("block larger than DFS block size");
  }
  obs::SpanGuard span(&obs::Tracer::Default(), cluster_->engine(), writer, 0,
                      "dfs", "dfs.append");
  span.Arg("bytes", bytes);
  DfsBytesCounter(/*is_write=*/true)->Increment(bytes);
  NoteNamespaceAccess(cluster_->engine(), this, /*write=*/true);
  File& file = files_[name];  // creates on first append
  // Hadoop writes the first replica locally when the writer is a datanode
  // with space; otherwise the namenode picks a node that can hold the
  // block.
  size_t preferred = file.blocks.empty()
                         ? writer
                         : (file.blocks.back().node + 1) % cluster_->size();
  size_t target = preferred;
  bool found = false;
  for (size_t i = 0; i < cluster_->size(); ++i) {
    size_t candidate = (preferred + i) % cluster_->size();
    if (cluster_->node(candidate).fs().free_space() >= bytes) {
      target = candidate;
      found = true;
      break;
    }
  }
  if (!found) co_return ResourceExhausted("DFS out of space");
  Status placed = PlaceBlock(&file, name, target, bytes);
  if (!placed.ok()) co_return placed;
  Block& block = file.blocks.back();
  if (target != writer) {
    co_await cluster_->network().Transfer(writer, target, bytes);
  }
  LocalFs& fs = cluster_->node(target).fs();
  Status appended = co_await fs.Append(block.local_file_id, bytes);
  co_return appended;
}

sim::Task<Status> Dfs::Read(std::string name, size_t reader,
                            uint64_t offset, uint64_t bytes) {
  sim::Engine* engine = cluster_->engine();
  if (engine->current_lane() != 0) {
    const uint32_t home = engine->current_lane();
    co_await engine->HopToLane(0);
    Status result = co_await ReadBody(std::move(name), reader, offset, bytes);
    co_await engine->HopToLane(home);
    co_return result;
  }
  co_return co_await ReadBody(std::move(name), reader, offset, bytes);
}

sim::Task<Status> Dfs::ReadBody(std::string name, size_t reader,
                                uint64_t offset, uint64_t bytes) {
  NoteNamespaceAccess(cluster_->engine(), this, /*write=*/false);
  auto it = files_.find(name);
  if (it == files_.end()) co_return NotFound("no DFS file: " + name);
  const File& file = it->second;
  if (offset + bytes > file.size) co_return OutOfRange("DFS read past EOF");
  obs::SpanGuard span(&obs::Tracer::Default(), cluster_->engine(), reader, 0,
                      "dfs", "dfs.read");
  span.Arg("bytes", bytes);
  DfsBytesCounter(/*is_write=*/false)->Increment(bytes);

  uint64_t pos = 0;
  for (const Block& block : file.blocks) {
    uint64_t block_end = pos + block.size;
    if (block_end > offset && pos < offset + bytes) {
      uint64_t lo = std::max(pos, offset);
      uint64_t hi = std::min(block_end, offset + bytes);
      uint64_t chunk = hi - lo;
      LocalFs& fs = cluster_->node(block.node).fs();
      Status read = co_await fs.Read(block.local_file_id, lo - pos, chunk);
      if (!read.ok()) co_return read;
      if (block.node != reader) {
        co_await cluster_->network().Transfer(block.node, reader, chunk);
      }
    }
    pos = block_end;
    if (pos >= offset + bytes) break;
  }
  co_return Status::OK();
}

Status Dfs::Delete(const std::string& name) {
  sim::Engine* engine = cluster_->engine();
  if (engine->current_lane() != 0) {
    engine->DeferToBarrier([this, name] { (void)DeleteBody(name); });
    return Status::OK();
  }
  return DeleteBody(name);
}

Status Dfs::DeleteBody(const std::string& name) {
  NoteNamespaceAccess(cluster_->engine(), this, /*write=*/true);
  auto it = files_.find(name);
  if (it == files_.end()) return NotFound("no DFS file: " + name);
  for (const Block& block : it->second.blocks) {
    (void)cluster_->node(block.node).fs().Delete(block.local_file_id);
  }
  files_.erase(it);
  return Status::OK();
}

Result<uint64_t> Dfs::Size(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return NotFound("no DFS file: " + name);
  return it->second.size;
}

Result<size_t> Dfs::BlockLocation(const std::string& name,
                                  uint64_t offset) const {
  auto it = files_.find(name);
  if (it == files_.end()) return NotFound("no DFS file: " + name);
  uint64_t pos = 0;
  for (const Block& block : it->second.blocks) {
    if (offset < pos + block.size) return block.node;
    pos += block.size;
  }
  return OutOfRange("offset past EOF");
}

}  // namespace spongefiles::cluster
