#ifndef SPONGEFILES_CLUSTER_SSD_H_
#define SPONGEFILES_CLUSTER_SSD_H_

#include <cstdint>

#include "common/status.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace spongefiles::cluster {

// Local-SSD timing model: a flash device with per-request latency, a
// bandwidth far above the spinning disk, internal channel parallelism
// (no head to contend for — concurrent streams do NOT collapse into
// random IO the way Disk does), and a bounded capacity. It is the middle
// rung the spill cascade inserts between remote memory and local disk
// (DESIGN.md §14): slower than a network round-trip to a rack peer's
// memory, an order of magnitude faster than the seek-bound spindle.
// lint: shard(value)
struct SsdConfig {
  // Usable capacity reserved for spill chunks. 0 = the node has no SSD
  // (the default — every existing topology is unchanged until a bench or
  // experiment opts in with --ssd-gb).
  uint64_t capacity = 0;
  // Per-request flash translation + controller latency.
  Duration read_latency = Micros(80);
  Duration write_latency = Micros(25);
  // Transfer rates in bytes/second (reads faster than writes, as for
  // real NAND: program ops are slower than page reads).
  double read_bandwidth = 2.0 * 1024 * 1024 * 1024;
  double write_bandwidth = 1.0 * 1024 * 1024 * 1024;
  // Internal parallelism: requests served concurrently before queueing.
  int channels = 4;
};

// A node's local SSD serving requests over `channels` lanes. Capacity is
// tracked by reservation (TryReserve/Release) so the cascade can gate on
// space before paying the write. Gray failures: SetSlowdown stretches
// service times (thermal throttling, a congested controller); SetWorn
// models exhausted program/erase endurance — writes fail UNAVAILABLE
// after paying their latency, while reads of already-stored data still
// succeed, so a worn device drains gracefully as the cascade falls
// through to disk.
// lint: shard(node)
class Ssd {
 public:
  // `node` is the owning node's id, used only to label trace spans.
  Ssd(sim::Engine* engine, const SsdConfig& config, size_t node = 0)
      : engine_(engine),
        config_(config),
        node_(node),
        queue_(engine, config.channels < 1 ? 1 : config.channels) {}

  Ssd(const Ssd&) = delete;
  Ssd& operator=(const Ssd&) = delete;

  sim::Task<Status> Read(uint64_t bytes);
  sim::Task<Status> Write(uint64_t bytes);

  // Capacity accounting. TryReserve claims space for a chunk about to be
  // written (false when it doesn't fit); Release returns it on delete.
  bool TryReserve(uint64_t bytes);
  void Release(uint64_t bytes);

  bool present() const { return config_.capacity > 0; }
  uint64_t capacity() const { return config_.capacity; }
  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t free_bytes() const { return config_.capacity - used_bytes_; }

  size_t node() const { return node_; }
  size_t queue_depth() const { return queue_.waiters() + busy_; }

  // Gray-failure injection (chaos kSsdSlowdown / kSsdWear).
  void SetSlowdown(double factor) { slowdown_ = factor < 1.0 ? 1.0 : factor; }
  double slowdown() const { return slowdown_; }
  void SetWorn(bool worn) { worn_ = worn; }
  bool worn() const { return worn_; }

  // --- statistics ---
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t failed_writes() const { return failed_writes_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }
  Duration busy_time() const { return busy_time_; }

 private:
  sim::Task<Status> Access(uint64_t bytes, bool is_write);

  sim::Engine* engine_;
  SsdConfig config_;
  size_t node_;
  sim::Semaphore queue_;
  double slowdown_ = 1.0;
  bool worn_ = false;

  uint64_t used_bytes_ = 0;
  int busy_ = 0;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t failed_writes_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  Duration busy_time_ = 0;
};

}  // namespace spongefiles::cluster

#endif  // SPONGEFILES_CLUSTER_SSD_H_
