#include "cluster/cluster.h"

namespace spongefiles::cluster {

Cluster::Cluster(sim::Engine* engine, const ClusterConfig& config)
    : engine_(engine), config_(config) {
  std::vector<size_t> racks;
  racks.reserve(config.num_nodes);
  for (size_t i = 0; i < config.num_nodes; ++i) {
    racks.push_back(i / config.nodes_per_rack);
  }
  network_ = std::make_unique<Network>(engine, config.num_nodes,
                                       config.network, racks);
  nodes_.reserve(config.num_nodes);
  for (size_t i = 0; i < config.num_nodes; ++i) {
    nodes_.push_back(
        std::make_unique<Node>(engine, i, racks[i], config.node));
  }
}

std::vector<size_t> Cluster::RackPeers(size_t node_id) const {
  std::vector<size_t> peers;
  size_t rack = nodes_[node_id]->rack();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->rack() == rack) peers.push_back(i);
  }
  return peers;
}

}  // namespace spongefiles::cluster
