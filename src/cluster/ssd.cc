#include "cluster/ssd.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/access.h"

namespace spongefiles::cluster {

namespace {

obs::Counter* SsdBytesCounter(bool is_write) {
  static obs::Counter* const read =
      obs::Registry::Default().counter("cluster.ssd.bytes", {{"op", "read"}});
  static obs::Counter* const write =
      obs::Registry::Default().counter("cluster.ssd.bytes", {{"op", "write"}});
  return is_write ? write : read;
}

}  // namespace

sim::Task<Status> Ssd::Read(uint64_t bytes) {
  return Access(bytes, /*is_write=*/false);
}

sim::Task<Status> Ssd::Write(uint64_t bytes) {
  return Access(bytes, /*is_write=*/true);
}

bool Ssd::TryReserve(uint64_t bytes) {
  SIM_WRITE(engine_, this, "Ssd", "capacity",
            sim::AccessRecorder::NodeDomain(node_));
  if (bytes > config_.capacity - used_bytes_) return false;
  used_bytes_ += bytes;
  return true;
}

void Ssd::Release(uint64_t bytes) {
  SIM_WRITE(engine_, this, "Ssd", "capacity",
            sim::AccessRecorder::NodeDomain(node_));
  used_bytes_ = bytes > used_bytes_ ? 0 : used_bytes_ - bytes;
}

sim::Task<Status> Ssd::Access(uint64_t bytes, bool is_write) {
  static obs::Counter* const requests_counter =
      obs::Registry::Default().counter("cluster.ssd.requests");
  static obs::Counter* const failed_writes_counter =
      obs::Registry::Default().counter("cluster.ssd.failed_writes");
  static obs::Histogram* const queue_depth_histogram =
      obs::Registry::Default().histogram("cluster.ssd.queue_depth");

  // The span covers channel wait plus service time, like Disk's.
  obs::SpanGuard span(&obs::Tracer::Default(), engine_, node_, 0, "ssd",
                      is_write ? "ssd.write" : "ssd.read");
  span.Arg("bytes", bytes);
  queue_depth_histogram->Record(queue_depth());

  // Every request mutates device state (queue, counters), so this is a
  // write for conflict purposes regardless of direction.
  SIM_WRITE(engine_, this, "Ssd", "device",
            sim::AccessRecorder::NodeDomain(node_));
  co_await queue_.Acquire();
  ++busy_;
  Duration cost;
  Status result = Status::OK();
  if (is_write && worn_) {
    // Endurance exhausted: the program op fails after its latency (the
    // controller still tries) without moving any data.
    cost = config_.write_latency;
    ++failed_writes_;
    failed_writes_counter->Increment();
    span.Arg("worn", uint64_t{1});
    result = Unavailable("ssd worn out");
  } else if (is_write) {
    cost = config_.write_latency +
           TransferTime(bytes, config_.write_bandwidth);
    ++writes_;
    bytes_written_ += bytes;
    SsdBytesCounter(true)->Increment(bytes);
  } else {
    cost = config_.read_latency + TransferTime(bytes, config_.read_bandwidth);
    ++reads_;
    bytes_read_ += bytes;
    SsdBytesCounter(false)->Increment(bytes);
  }
  if (slowdown_ > 1.0) {
    cost = static_cast<Duration>(static_cast<double>(cost) * slowdown_);
    span.Arg("slowdown", static_cast<uint64_t>(slowdown_));
  }
  requests_counter->Increment();
  busy_time_ += cost;
  co_await engine_->Delay(cost);
  --busy_;
  queue_.Release();
  co_return result;
}

}  // namespace spongefiles::cluster
