#ifndef SPONGEFILES_CLUSTER_BUFFER_CACHE_H_
#define SPONGEFILES_CLUSTER_BUFFER_CACHE_H_

#include <cstdint>
#include <deque>
#include <list>
#include <unordered_map>

#include "cluster/disk.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace spongefiles::cluster {

// An OS page-cache model in front of a Disk. All file IO on a node flows
// through it; its capacity is whatever physical memory is left after task
// heaps, the sponge pool, and any pinned memory (the "memory pressure"
// scenario in Table 1 pins 12 GB, shrinking this cache to almost nothing).
//
// The design mirrors the Linux behaviours the evaluation depends on:
//  * write-back: writes land in cache as dirty blocks and cost only a
//    memory copy until the dirty share exceeds a threshold, at which point
//    the writer flushes synchronously (throttling);
//  * deleted files discard their dirty blocks without any disk IO, which is
//    why small short-lived spill files are nearly free when memory is big;
//  * segmented LRU (inactive/active lists): blocks enter the inactive list
//    on first touch and are promoted on a second touch, so a huge one-pass
//    streaming scan (the 1 TB background grep) cannot evict a spill file
//    that is written and then read back.
// lint: shard(value)
struct BufferCacheConfig {
  uint64_t capacity = 0;              // bytes of cacheable memory
  uint64_t block_size = kMiB;         // cache granularity
  double memory_bandwidth = 3.0 * 1024 * 1024 * 1024;  // hit-path copy speed
  double dirty_threshold = 0.4;       // of capacity, before write throttling
  double active_fraction = 0.5;       // share reserved for the active list
  // With no cache to speak of, the OS loses readahead and write
  // coalescing: IO reaches the disk in these small fragments instead of
  // whole requests (this is what turns Table 1's 174 ms contended spill
  // into 499 ms under memory pressure).
  uint64_t uncached_read_unit = 256 * 1024;
  uint64_t uncached_write_unit = 128 * 1024;
};

// lint: shard(node)
class BufferCache {
 public:
  BufferCache(sim::Engine* engine, Disk* disk, const BufferCacheConfig& config)
      : engine_(engine), disk_(disk), config_(config) {}

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  // Writes `bytes` at `offset` of `file` through the cache. With space, the
  // cost is a memory copy; under dirty pressure or with a tiny cache the
  // writer pays for disk writes inline.
  sim::Task<> Write(uint64_t file, uint64_t offset, uint64_t bytes);

  // Reads `bytes` at `offset` of `file`; cached blocks cost a memory copy,
  // misses go to the disk (one request per contiguous miss range).
  sim::Task<> Read(uint64_t file, uint64_t offset, uint64_t bytes);

  // Drops every cached block of `file`, discarding dirty ones (the file was
  // deleted; Linux never writes back pages of unlinked files).
  void Drop(uint64_t file);

  // Flushes all dirty blocks of `file` to disk (fsync).
  sim::Task<> Flush(uint64_t file);

  void set_capacity(uint64_t capacity) { config_.capacity = capacity; }
  uint64_t capacity() const { return config_.capacity; }

  // --- statistics ---
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t bytes_absorbed() const { return bytes_absorbed_; }
  uint64_t dirty_bytes() const { return dirty_bytes_; }
  uint64_t cached_bytes() const { return cached_bytes_; }

 private:
  struct BlockKey {
    uint64_t file;
    uint64_t index;
    bool operator==(const BlockKey& other) const {
      return file == other.file && index == other.index;
    }
  };
  struct BlockKeyHash {
    size_t operator()(const BlockKey& k) const {
      return std::hash<uint64_t>()(k.file * 0x9e3779b97f4a7c15ull ^ k.index);
    }
  };
  struct Block {
    BlockKey key;
    bool dirty = false;
    bool active = false;  // which LRU list it is on
    std::list<BlockKey>::iterator lru_it;
  };

  // Returns the block if cached, nullptr otherwise.
  Block* Find(const BlockKey& key);

  // Inserts or touches a block; handles promotion and eviction. Any dirty
  // blocks that must be evicted are flushed via the returned awaitable
  // chain, so callers co_await the returned task. `key` is by value: a
  // coroutine must not hold references into its caller's frame.
  sim::Task<> Touch(BlockKey key, bool mark_dirty);

  // Evicts from the given list until the cache fits; flushes dirty victims.
  sim::Task<> EvictIfNeeded();

  sim::Task<> FlushDirtyIfThrottled();

  uint64_t NumBlocks(uint64_t bytes) const {
    return (bytes + config_.block_size - 1) / config_.block_size;
  }

  sim::Engine* engine_;
  Disk* disk_;
  BufferCacheConfig config_;

  std::unordered_map<BlockKey, Block, BlockKeyHash> blocks_;
  // LRU lists: front = most recently used.
  std::list<BlockKey> inactive_;
  std::list<BlockKey> active_;
  // Blocks in dirty-marking order; stale entries are skipped lazily.
  std::deque<BlockKey> dirty_fifo_;
  uint64_t cached_bytes_ = 0;
  uint64_t active_bytes_ = 0;
  uint64_t dirty_bytes_ = 0;

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t bytes_absorbed_ = 0;
};

}  // namespace spongefiles::cluster

#endif  // SPONGEFILES_CLUSTER_BUFFER_CACHE_H_
