#include "cluster/local_fs.h"

namespace spongefiles::cluster {

Result<uint64_t> LocalFs::Create(const std::string& name) {
  if (by_name_.contains(name)) {
    return FailedPrecondition("file exists: " + name);
  }
  uint64_t id = next_id_++;
  files_[id] = File{name, 0};
  by_name_[name] = id;
  return id;
}

sim::Task<Status> LocalFs::Append(uint64_t file_id, uint64_t bytes) {
  auto it = files_.find(file_id);
  if (it == files_.end()) co_return NotFound("no such file");
  if (used_ + bytes > capacity_) {
    co_return ResourceExhausted("local filesystem full");
  }
  uint64_t offset = it->second.size;
  it->second.size += bytes;
  used_ += bytes;
  co_await cache_->Write(file_id, offset, bytes);
  co_return Status::OK();
}

sim::Task<Status> LocalFs::Read(uint64_t file_id, uint64_t offset,
                                uint64_t bytes) {
  auto it = files_.find(file_id);
  if (it == files_.end()) co_return NotFound("no such file");
  if (offset + bytes > it->second.size) {
    co_return OutOfRange("read past end of file");
  }
  // lint: status-ok(BufferCache::Read returns Task<>; the index name-collides with DfsClient::Read)
  co_await cache_->Read(file_id, offset, bytes);
  co_return Status::OK();
}

Status LocalFs::Truncate(uint64_t file_id, uint64_t size) {
  auto it = files_.find(file_id);
  if (it == files_.end()) return NotFound("no such file");
  if (size < it->second.size) return InvalidArgument("shrinking unsupported");
  uint64_t growth = size - it->second.size;
  if (used_ + growth > capacity_) {
    return ResourceExhausted("local filesystem full");
  }
  it->second.size = size;
  used_ += growth;
  return Status::OK();
}

sim::Task<Status> LocalFs::Sync(uint64_t file_id) {
  if (!files_.contains(file_id)) co_return NotFound("no such file");
  co_await cache_->Flush(file_id);
  co_return Status::OK();
}

Status LocalFs::Delete(uint64_t file_id) {
  auto it = files_.find(file_id);
  if (it == files_.end()) return NotFound("no such file");
  used_ -= it->second.size;
  by_name_.erase(it->second.name);
  cache_->Drop(file_id);
  files_.erase(it);
  return Status::OK();
}

Result<uint64_t> LocalFs::Size(uint64_t file_id) const {
  auto it = files_.find(file_id);
  if (it == files_.end()) return NotFound("no such file");
  return it->second.size;
}

}  // namespace spongefiles::cluster
