#ifndef SPONGEFILES_CLUSTER_CLUSTER_H_
#define SPONGEFILES_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/network.h"
#include "cluster/node.h"
#include "sim/engine.h"

namespace spongefiles::cluster {

// A rack-organized collection of worker nodes sharing a network. Matches
// the paper's setup: the 30-node testbed is a single rack; multi-rack
// layouts exist so the "spill within the rack only" policy has something
// to be tested against.
// lint: shard(value)
struct ClusterConfig {
  size_t num_nodes = 30;
  size_t nodes_per_rack = 40;
  NodeConfig node;
  NetworkConfig network;
};

// lint: shard(global: topology container handing out per-node components; post-wiring reads are identity lookups)
class Cluster {
 public:
  Cluster(sim::Engine* engine, const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Engine* engine() { return engine_; }
  Network& network() { return *network_; }

  size_t size() const { return nodes_.size(); }
  Node& node(size_t i) { return *nodes_[i]; }
  const Node& node(size_t i) const { return *nodes_[i]; }

  // All node ids in the same rack as `node_id` (including itself).
  std::vector<size_t> RackPeers(size_t node_id) const;

  bool SameRack(size_t a, size_t b) const {
    return nodes_[a]->rack() == nodes_[b]->rack();
  }

  size_t rack_of(size_t node_id) const { return nodes_[node_id]->rack(); }
  size_t num_racks() const {
    return nodes_.empty() ? 0 : nodes_.back()->rack() + 1;
  }

  const ClusterConfig& config() const { return config_; }

 private:
  sim::Engine* engine_;
  ClusterConfig config_;
  std::unique_ptr<Network> network_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace spongefiles::cluster

#endif  // SPONGEFILES_CLUSTER_CLUSTER_H_
