#include "cluster/network.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace spongefiles::cluster {

namespace {

obs::Counter* NetBytesCounter(const char* path) {
  static obs::Registry& registry = obs::Registry::Default();
  static obs::Counter* const ipc =
      registry.counter("cluster.net.bytes", {{"path", "ipc"}});
  static obs::Counter* const rack =
      registry.counter("cluster.net.bytes", {{"path", "rack"}});
  static obs::Counter* const cross =
      registry.counter("cluster.net.bytes", {{"path", "cross-rack"}});
  if (path[0] == 'i') return ipc;
  return path[0] == 'r' ? rack : cross;
}

}  // namespace

Network::Network(sim::Engine* engine, size_t num_nodes,
                 const NetworkConfig& config, std::vector<size_t> racks)
    : engine_(engine), config_(config), racks_(std::move(racks)) {
  if (racks_.empty()) racks_.assign(num_nodes, 0);
  SPONGE_CHECK(racks_.size() == num_nodes);
  tx_.reserve(num_nodes);
  rx_.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    tx_.push_back(std::make_unique<sim::Semaphore>(engine, 1));
    rx_.push_back(std::make_unique<sim::Semaphore>(engine, 1));
  }
  link_factor_.assign(num_nodes, 1.0);
  link_extra_latency_.assign(num_nodes, 0);
  bytes_transferred_.assign(engine->lane_count(), 0);
  size_t num_racks =
      1 + *std::max_element(racks_.begin(), racks_.end());
  for (size_t r = 0; r < num_racks; ++r) {
    uplink_.push_back(std::make_unique<sim::Semaphore>(engine, 1));
    downlink_.push_back(std::make_unique<sim::Semaphore>(engine, 1));
  }
  uplink_bytes_.assign(num_racks, 0);
  downlink_bytes_.assign(num_racks, 0);
  uplink_busy_.assign(num_racks, 0);
  downlink_busy_.assign(num_racks, 0);
  repair_uplink_bytes_.assign(num_racks, 0);
}

void Network::NoteRepairTraffic(size_t src, size_t dst, uint64_t bytes) {
  SPONGE_CHECK(src < racks_.size() && dst < racks_.size());
  static obs::Counter* const repair_counter =
      obs::Registry::Default().counter("cluster.net.repair.bytes");
  repair_counter->Increment(bytes);
  repair_bytes_ += bytes;
  repair_uplink_bytes_[racks_[src]] += bytes;
}

sim::Task<> Network::Transfer(size_t src, size_t dst, uint64_t bytes) {
  SPONGE_CHECK(src < tx_.size() && dst < rx_.size());
  bytes_transferred_[engine_->current_lane()] += bytes;
  if (src == dst) {
    // Local socket: copies through the kernel, no NIC involvement.
    NetBytesCounter("ipc")->Increment(bytes);
    co_await engine_->Delay(config_.ipc_overhead +
                            TransferTime(bytes, config_.ipc_bandwidth));
    co_return;
  }
  const bool cross_rack = racks_[src] != racks_[dst];
  const bool metered_core = cross_rack && config_.cross_rack_bandwidth > 0;
  NetBytesCounter(cross_rack ? "cross-rack" : "rack")->Increment(bytes);

  // The span covers pipe acquisition (queueing on the NIC and, for a
  // metered core, the shared rack uplink/downlink) plus the wire time.
  obs::SpanGuard span(&obs::Tracer::Default(), engine_, src, 0, "net",
                      "net.transfer");
  span.Arg("dst", static_cast<uint64_t>(dst));
  span.Arg("bytes", bytes);

  // Hold the sender's transmit pipe, then the receiver's receive pipe,
  // then (for a metered core) the racks' shared uplink and downlink.
  // The acquisition order is consistent and uplink/downlink are distinct
  // resource families, so this cannot deadlock.
  co_await tx_[src]->Acquire();
  co_await rx_[dst]->Acquire();
  // A degraded endpoint caps the whole path: the wire clocks at the
  // slower NIC and pays both ends' extra latency.
  double degrade = std::min(link_factor_[src], link_factor_[dst]);
  double rate = config_.bandwidth * degrade;
  Duration latency = config_.latency + link_extra_latency_[src] +
                     link_extra_latency_[dst];
  if (metered_core) {
    co_await uplink_[racks_[src]]->Acquire();
    co_await downlink_[racks_[dst]]->Acquire();
    rate = std::min(rate, config_.cross_rack_bandwidth);
    latency += config_.cross_rack_latency;
    cross_rack_bytes_ += bytes;
    uplink_bytes_[racks_[src]] += bytes;
    downlink_bytes_[racks_[dst]] += bytes;
    Duration wire = TransferTime(bytes, rate);
    uplink_busy_[racks_[src]] += wire;
    downlink_busy_[racks_[dst]] += wire;
  }
  co_await engine_->Delay(latency + TransferTime(bytes, rate));
  if (metered_core) {
    downlink_[racks_[dst]]->Release();
    uplink_[racks_[src]]->Release();
  }
  rx_[dst]->Release();
  tx_[src]->Release();
}

sim::Task<> Network::Rpc(size_t src, size_t dst, uint64_t request_bytes,
                         uint64_t response_bytes) {
  co_await Transfer(src, dst, request_bytes);
  co_await Transfer(dst, src, response_bytes);
}

void Network::DegradeLink(size_t node, double bandwidth_factor,
                          Duration extra_latency) {
  SPONGE_CHECK(node < link_factor_.size());
  SPONGE_CHECK(bandwidth_factor > 0 && bandwidth_factor <= 1.0)
      << "bandwidth_factor must be in (0, 1]: " << bandwidth_factor;
  link_factor_[node] = bandwidth_factor;
  link_extra_latency_[node] = extra_latency < 0 ? 0 : extra_latency;
}

void Network::RestoreLink(size_t node) {
  SPONGE_CHECK(node < link_factor_.size());
  link_factor_[node] = 1.0;
  link_extra_latency_[node] = 0;
}

}  // namespace spongefiles::cluster
