// Figure 6: the three jobs under four memory configurations, no
// contention:
//   1. disk spilling with plenty (16 GB) of memory -> the buffer cache
//      absorbs what it can;
//   2. spilling exclusively to a large (12 GB) *local* memory sponge;
//   3. no spilling at all (a 12 GB heap fits everything);
//   4. SpongeFile spilling with the normal 1 GB sponge per node -> most
//      chunks go to *remote* memory.
//
// Paper shape: no-spilling best; local sponge second; disk(+cache) beats
// remote-heavy SpongeFiles for the two Pig jobs, but loses on Median
// because the capped disk merge re-spills extra data (16.1 GB vs 10.3 GB)
// while the SpongeFile merge runs in one round.

#include <cstdio>

#include "bench_util.h"

using namespace spongefiles;
using namespace spongefiles::bench;

namespace {

struct Config {
  const char* name;
  mapred::SpillMode mode;
  MacroOptions options;
};

std::vector<Config> MakeConfigs() {
  std::vector<Config> configs;
  {
    Config c{"disk (16 GB buffer cache)", mapred::SpillMode::kDisk, {}};
    configs.push_back(c);
  }
  {
    Config c{"local sponge (12 GB)", mapred::SpillMode::kSponge, {}};
    c.options.sponge_memory = GiB(12);
    c.options.sponge.allow_remote_memory = false;
    configs.push_back(c);
  }
  {
    Config c{"no spilling (12 GB heap)", mapred::SpillMode::kDisk, {}};
    c.options.no_spill = true;
    configs.push_back(c);
  }
  {
    Config c{"SpongeFiles (1 GB/node, mostly remote)",
             mapred::SpillMode::kSponge, {}};
    configs.push_back(c);
  }
  return configs;
}

}  // namespace

int main(int argc, char** argv) {
  auto obs_options = spongefiles::bench::ParseObsFlags(argc, argv);
  std::printf(
      "Figure 6: spilling schemes vs the no-spilling optimum (16 GB nodes, "
      "no contention)\n\n");

  AsciiTable table({"Job", "configuration", "runtime", "spilled", "ok"});
  for (MacroJob job : {MacroJob::kMedian, MacroJob::kAnchortext,
                       MacroJob::kSpamQuantiles}) {
    for (const Config& config : MakeConfigs()) {
      MacroRun run = RunMacro(job, config.mode, config.options);
      table.AddRow({MacroJobName(job), config.name,
                    FormatDuration(run.runtime),
                    FormatBytes(run.straggler.spill.bytes_spilled),
                    run.correct ? "exact" : "WRONG"});
    }
  }
  table.Print();
  std::printf(
      "\npaper: no-spill best, local sponge second; SpongeFiles beat disk "
      "only for Median (one merge round vs re-spilling), and remote "
      "spilling costs the Pig jobs slightly more than the cache-absorbed "
      "disk.\n");
  spongefiles::bench::WriteObsOutputs(obs_options);
  return 0;
}
