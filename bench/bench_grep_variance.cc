// Section 4.2.3, "Effects of Disk Spilling on Other Jobs": the runtimes of
// background grep tasks running next to a disk-spilling job become highly
// variable — most tasks run ~16 s, but the unlucky ones co-located with
// the spilling straggler take ~39 s. SpongeFile spilling removes the
// interference.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"

using namespace spongefiles;
using namespace spongefiles::bench;

namespace {

struct GrepProfile {
  double median_s = 0;
  double p95_s = 0;
  double max_s = 0;
  double colocated_max_s = 0;  // tasks sharing the straggler's node/disk
  size_t tasks = 0;
  size_t colocated = 0;
};

GrepProfile Profile(mapred::SpillMode mode) {
  MacroOptions options;
  options.node_memory = GiB(4);  // scarce memory: spills really hit disk
  options.background_grep = true;
  MacroRun run = RunMacro(MacroJob::kMedian, mode, options);
  std::vector<double> seconds;
  GrepProfile profile;
  for (const auto& stats : run.background_tasks) {
    // Only data-local tasks: migrated ones are slow for an unrelated
    // reason (remote block reads).
    if (!stats.data_local) continue;
    seconds.push_back(ToSeconds(stats.runtime));
    if (stats.node == run.straggler.node) {
      ++profile.colocated;
      profile.colocated_max_s =
          std::max(profile.colocated_max_s, ToSeconds(stats.runtime));
    }
  }
  profile.tasks = seconds.size();
  if (!seconds.empty()) {
    std::sort(seconds.begin(), seconds.end());
    profile.median_s = QuantileSorted(seconds, 0.5);
    profile.p95_s = QuantileSorted(seconds, 0.95);
    profile.max_s = seconds.back();
  }
  return profile;
}

}  // namespace

int main(int argc, char** argv) {
  auto obs_options = spongefiles::bench::ParseObsFlags(argc, argv);
  std::printf(
      "Effects of disk spilling on other jobs: grep task runtimes while "
      "the median job spills\n\n");

  GrepProfile disk = Profile(mapred::SpillMode::kDisk);
  GrepProfile sponge = Profile(mapred::SpillMode::kSponge);

  AsciiTable table({"spilling via", "grep tasks", "median (s)", "p95 (s)",
                    "max (s)", "max co-located with straggler (s)"});
  table.AddRow({"disk", StrFormat("%zu", disk.tasks),
                StrFormat("%.1f", disk.median_s),
                StrFormat("%.1f", disk.p95_s),
                StrFormat("%.1f", disk.max_s),
                StrFormat("%.1f", disk.colocated_max_s)});
  table.AddRow({"SpongeFiles", StrFormat("%zu", sponge.tasks),
                StrFormat("%.1f", sponge.median_s),
                StrFormat("%.1f", sponge.p95_s),
                StrFormat("%.1f", sponge.max_s),
                StrFormat("%.1f", sponge.colocated_max_s)});
  table.Print();
  std::printf(
      "\npaper: most grep tasks ~16 s, unlucky ones overlapping disk "
      "spills up to ~39 s (%.1fx); SpongeFile spilling keeps the tail "
      "close to the median (measured disk tail %.1fx vs sponge %.1fx).\n",
      39.0 / 16.0, disk.colocated_max_s / std::max(disk.median_s, 1e-9),
      sponge.colocated_max_s / std::max(sponge.median_s, 1e-9));
  spongefiles::bench::WriteObsOutputs(obs_options);
  return 0;
}
