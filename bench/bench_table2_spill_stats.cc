// Table 2: statistics about the straggling reduce task of each job when
// spilling to SpongeFiles, plus the section-4.2.3 fragmentation analysis.
//
//   | job                 | input  | spilled | chunks | (paper)
//   | Median              | 10 GB  | 10.3 GB | 10527  |
//   | Frequent Anchortext | 2.5 GB |  7.2 GB |  7383  |
//   | Spam Quantiles      | 3 GB   | 10.2 GB | 10478  |
//
// Internal fragmentation (chunk slots larger than the bytes stored in
// them) must stay well below 1%.

#include <cstdio>

#include "bench_util.h"

using namespace spongefiles;
using namespace spongefiles::bench;

int main() {
  std::printf(
      "Table 2: straggling reduce task statistics (SpongeFile spilling, "
      "16 GB nodes)\n\n");

  AsciiTable table({"Job", "Input", "Spilled", "Chunks", "frag %",
                    "paper (in/spill/chunks)"});
  const char* paper[] = {"10 GB / 10.3 GB / 10527",
                         "2.5 GB / 7.2 GB / 7383",
                         "3 GB / 10.2 GB / 10478"};
  int row = 0;
  double max_frag = 0;
  for (MacroJob job : {MacroJob::kMedian, MacroJob::kAnchortext,
                       MacroJob::kSpamQuantiles}) {
    MacroOptions options;
    MacroRun run = RunMacro(job, mapred::SpillMode::kSponge, options);
    const auto& spill = run.straggler.spill;
    uint64_t memory_chunks =
        spill.sponge_chunks_local + spill.sponge_chunks_remote;
    double frag = memory_chunks == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(spill.fragmentation_bytes) /
                            static_cast<double>(memory_chunks * MiB(1));
    max_frag = std::max(max_frag, frag);
    table.AddRow({MacroJobName(job),
                  FormatBytes(run.straggler.input_bytes),
                  FormatBytes(spill.bytes_spilled),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(
                                spill.sponge_chunks)),
                  StrFormat("%.3f", frag), paper[row]});
    ++row;
  }
  table.Print();
  std::printf(
      "\nfragmentation check: %.3f%% worst case — the paper reports well "
      "below 1%% for 1 MB chunks.\n",
      max_frag);
  return 0;
}
