// Table 2: statistics about the straggling reduce task of each job when
// spilling to SpongeFiles, plus the section-4.2.3 fragmentation analysis.
//
//   | job                 | input  | spilled | chunks | (paper)
//   | Median              | 10 GB  | 10.3 GB | 10527  |
//   | Frequent Anchortext | 2.5 GB |  7.2 GB |  7383  |
//   | Spam Quantiles      | 3 GB   | 10.2 GB | 10478  |
//
// Internal fragmentation (chunk slots larger than the bytes stored in
// them) must stay well below 1%.
//
// The bench also cross-checks the observability subsystem: the registry's
// per-medium sponge.spill.bytes counters must agree exactly with the
// SpillStats the tasks themselves accumulated.

#include <cstdio>

#include "bench_util.h"

using namespace spongefiles;
using namespace spongefiles::bench;

int main(int argc, char** argv) {
  ObsOptions obs_options = ParseObsFlags(argc, argv);
  std::printf(
      "Table 2: straggling reduce task statistics (SpongeFile spilling, "
      "16 GB nodes)\n\n");

  AsciiTable table({"Job", "Input", "Spilled", "Chunks", "frag %",
                    "paper (in/spill/chunks)"});
  const char* paper[] = {"10 GB / 10.3 GB / 10527",
                         "2.5 GB / 7.2 GB / 7383",
                         "3 GB / 10.2 GB / 10478"};
  int row = 0;
  double max_frag = 0;
  mapred::SpillStats all_jobs;  // summed over every task of every job
  for (MacroJob job : {MacroJob::kMedian, MacroJob::kAnchortext,
                       MacroJob::kSpamQuantiles}) {
    MacroOptions options;
    MacroRun run = RunMacro(job, mapred::SpillMode::kSponge, options);
    all_jobs.Add(run.total_spill);
    const auto& spill = run.straggler.spill;
    uint64_t memory_chunks =
        spill.sponge_chunks_local + spill.sponge_chunks_remote;
    double frag = memory_chunks == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(spill.fragmentation_bytes) /
                            static_cast<double>(memory_chunks * MiB(1));
    max_frag = std::max(max_frag, frag);
    table.AddRow({MacroJobName(job),
                  FormatBytes(run.straggler.input_bytes),
                  FormatBytes(spill.bytes_spilled),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(
                                spill.sponge_chunks)),
                  StrFormat("%.3f", frag), paper[row]});
    ++row;
  }
  table.Print();
  std::printf(
      "\nfragmentation check: %.3f%% worst case — the paper reports well "
      "below 1%% for 1 MB chunks.\n",
      max_frag);

  // Baseline contrast: the Median straggler spilling to disk instead. Its
  // 10 GB of dirty spill data on one node crosses the write-back threshold,
  // so this run exercises the disk write path the sponge runs above never
  // touch — the cluster.disk.bytes{op=write} counter reports the IO that
  // SpongeFiles kept off the disks.
  obs::Registry& registry = obs::Registry::Default();
  obs::Counter* disk_writes =
      registry.counter("cluster.disk.bytes", {{"op", "write"}});
  uint64_t disk_write_bytes_before = disk_writes->value();
  {
    MacroOptions options;
    MacroRun run = RunMacro(MacroJob::kMedian, mapred::SpillMode::kDisk,
                            options);
    all_jobs.Add(run.total_spill);  // adds zero sponge bytes
    std::printf(
        "\ndisk-spill baseline (Median): straggler spilled %s to local "
        "disk;\n  disks absorbed %s of write-back (vs none in the sponge "
        "runs above).\n",
        FormatBytes(run.straggler.spill.bytes_spilled).c_str(),
        FormatBytes(disk_writes->value() - disk_write_bytes_before).c_str());
  }

  // Cross-check the metrics registry against the tasks' own accounting.
  // Both sides count logical bytes on the same store path, so they must
  // match to the byte (no failed or cancelled tasks in this bench).
  struct {
    const char* medium;
    uint64_t expected;
  } media[] = {
      {"local-memory", all_jobs.sponge_bytes_local},
      {"remote-memory", all_jobs.sponge_bytes_remote},
      {"local-disk", all_jobs.sponge_bytes_disk},
      {"dfs", all_jobs.sponge_bytes_dfs},
  };
  bool agree = true;
  std::printf("\nmetrics cross-check (sponge.spill.bytes vs task stats):\n");
  for (const auto& m : media) {
    uint64_t counted =
        registry.counter("sponge.spill.bytes", {{"medium", m.medium}})
            ->value();
    bool ok = counted == m.expected;
    agree = agree && ok;
    std::printf("  %-14s registry=%llu tasks=%llu %s\n", m.medium,
                static_cast<unsigned long long>(counted),
                static_cast<unsigned long long>(m.expected),
                ok ? "OK" : "MISMATCH");
  }
  std::printf("metrics cross-check: %s\n", agree ? "PASS" : "FAIL");

  WriteObsOutputs(obs_options);
  return agree ? 0 : 1;
}
