// Section 4.3 failure analysis: (1) the closed-form probability that a
// task fails because one of the N machines holding its spilled chunks
// fails during its runtime t, P = 1 - exp(-N t / MTTF), with the paper's
// parameters (MTTF = 100 months, tasks up to ~120 minutes); and (2) an
// end-to-end injection experiment: a node holding a straggler's remote
// chunks crashes mid-job, the read fails, the framework retries the task,
// and the job still finishes with the right answer.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sponge/failure.h"

using namespace spongefiles;
using namespace spongefiles::bench;

namespace {

void ClosedForm() {
  std::printf(
      "P(task failure) = 1 - exp(-N t / MTTF), MTTF = 100 months\n\n");
  const Duration mttf = Minutes(100.0 * 30 * 24 * 60);
  AsciiTable table({"machines N", "t = 10 min", "t = 120 min",
                    "t = 24 h"});
  for (int n : {1, 5, 10, 30, 40}) {
    table.AddRow(
        {StrFormat("%d", n),
         StrFormat("%.2e", sponge::TaskFailureProbability(
                               n, Minutes(10), mttf)),
         StrFormat("%.2e", sponge::TaskFailureProbability(
                               n, Minutes(120), mttf)),
         StrFormat("%.2e", sponge::TaskFailureProbability(
                               n, Minutes(24 * 60), mttf))});
  }
  table.Print();
  std::printf(
      "\npaper: even a 120-minute task spilling to a whole 40-node rack "
      "fails with probability ~%.0e — pre-existing failure causes "
      "dominate.\n\n",
      sponge::TaskFailureProbability(40, Minutes(120), mttf));
}

void InjectionExperiment() {
  std::printf("injection: crash a chunk-holding node mid-job\n");
  workload::TestbedConfig bed_config;
  bed_config.sponge_memory = MiB(256);  // straggler must go remote early
  workload::Testbed bed(bed_config);
  workload::NumbersDatasetConfig data;
  data.count = MedianCount() / 4;
  workload::NumbersDataset numbers(&bed.dfs(), "numbers", data);

  // The straggling reduce runs on node 0 (partition 0); crash one of its
  // rack peers while the job is in flight. The GC on the restarted node
  // has nothing to recover (sponge servers are stateless).
  sponge::FailureInjector injector(&bed.env(), 1);
  injector.ScheduleCrash(/*node=*/1, /*at=*/Seconds(40),
                         /*downtime=*/Seconds(5));
  injector.ScheduleCrash(/*node=*/2, /*at=*/Seconds(50),
                         /*downtime=*/Seconds(5));

  auto result = bed.RunJob(
      workload::MakeMedianJob(&numbers, mapred::SpillMode::kSponge));
  if (!result.ok()) {
    std::printf("  job failed permanently: %s\n",
                result.status().ToString().c_str());
    return;
  }
  const mapred::TaskStats* straggler = result->straggler();
  bool correct = result->output.size() == 1 &&
                 result->output[0].number == numbers.expected_median();
  std::printf(
      "  job completed in %s; straggling reduce needed %d attempt(s); "
      "median %s\n",
      FormatDuration(result->runtime).c_str(), straggler->attempts,
      correct ? "EXACT" : "WRONG");
  std::printf(
      "  (a lost chunk fails the task; the framework restarts it — "
      "section 3.1's recovery story)\n");
}

struct HungRunOutcome {
  Duration runtime = 0;
  bool correct = false;
};

HungRunOutcome RunMedianWithOptionalHang(bool hang) {
  workload::TestbedConfig bed_config;
  bed_config.sponge_memory = MiB(256);
  workload::Testbed bed(bed_config);
  workload::NumbersDatasetConfig data;
  data.count = MedianCount() / 4;
  workload::NumbersDataset numbers(&bed.dfs(), "numbers", data);
  sponge::FailureInjector injector(&bed.env(), 1);
  if (hang) {
    // A rack peer of the straggling reduce stops answering mid-spill,
    // then comes back while the job is still running.
    injector.ScheduleHang(/*node=*/1, /*at=*/Seconds(10),
                          /*duration=*/Seconds(20));
  }
  auto result = bed.RunJob(
      workload::MakeMedianJob(&numbers, mapred::SpillMode::kSponge));
  HungRunOutcome out;
  if (!result.ok()) return out;
  out.runtime = result->runtime;
  out.correct = result->output.size() == 1 &&
                result->output[0].number == numbers.expected_median();
  return out;
}

void HungServerExperiment() {
  std::printf(
      "gray failure: a sponge server hangs (no answers, machine alive) "
      "mid-job\n");
  obs::Registry& registry = obs::Registry::Default();
  obs::Counter* timeouts = registry.counter("sponge.rpc.timeouts");
  obs::Counter* retries = registry.counter("sponge.rpc.retries");
  obs::Counter* trips =
      registry.counter("sponge.rpc.breaker", {{"event", "trip"}});
  obs::Counter* recoveries =
      registry.counter("sponge.rpc.breaker", {{"event", "recover"}});

  HungRunOutcome baseline = RunMedianWithOptionalHang(false);
  uint64_t timeouts0 = timeouts->value();
  uint64_t retries0 = retries->value();
  uint64_t trips0 = trips->value();
  uint64_t recoveries0 = recoveries->value();
  HungRunOutcome hung = RunMedianWithOptionalHang(true);
  uint64_t d_timeouts = timeouts->value() - timeouts0;
  uint64_t d_retries = retries->value() - retries0;
  uint64_t d_trips = trips->value() - trips0;
  uint64_t d_recoveries = recoveries->value() - recoveries0;

  if (baseline.runtime == 0 || hung.runtime == 0) {
    std::printf("  a run failed permanently; see above\n");
    return;
  }
  double slowdown =
      static_cast<double>(hung.runtime) / static_cast<double>(baseline.runtime);
  std::printf(
      "  fault-free: %s, hung-server: %s (%.2fx), median %s\n",
      FormatDuration(baseline.runtime).c_str(),
      FormatDuration(hung.runtime).c_str(), slowdown,
      hung.correct ? "EXACT" : "WRONG");
  std::printf(
      "  client hardening: %llu rpc timeouts, %llu retries, breaker "
      "trips=%llu recoveries=%llu\n",
      static_cast<unsigned long long>(d_timeouts),
      static_cast<unsigned long long>(d_retries),
      static_cast<unsigned long long>(d_trips),
      static_cast<unsigned long long>(d_recoveries));
  bool ejected = d_trips >= 1;
  bool rejoined = d_recoveries >= 1;
  bool bounded = slowdown < 3.0;
  std::printf(
      "  breaker ejected the sick server: %s; rejoined after half-open "
      "probe: %s; slowdown bounded (<3x): %s\n",
      ejected ? "YES" : "NO", rejoined ? "YES" : "NO",
      bounded ? "YES" : "NO");
  std::printf(
      "  (deadlines un-stick the spill cascade; the hung peer is ejected "
      "and spills fall to other servers or disk until it recovers)\n");
}

struct StragglerOutcome {
  Duration runtime = 0;
  bool correct = false;
  std::vector<mapred::Record> output;
  uint64_t leaked_chunks = 0;
};

// One median job under a fixed gray-failure schedule: the disk below the
// first split's block runs 30x slow for the whole job (the classic
// degraded-disk straggler), and short 1 s RPC-delay spikes sweep the
// sponge servers while the reduce merges. `recover` turns on the two
// recovery mechanisms this PR adds — speculative backup attempts and
// hedged remote reads — while the baseline rides the hardened
// deadline/retry/breaker path alone. The fault schedule is identical in
// both configurations.
StragglerOutcome RunStragglerJob(bool recover) {
  workload::TestbedConfig bed_config;
  bed_config.num_nodes = 8;
  bed_config.sponge_memory = MiB(64);
  // A small OS buffer cache (~48 MB) so map spill streams really reach
  // the slow disk instead of parking in write-back cache.
  bed_config.node_memory = GiB(4);
  bed_config.pinned_memory = MiB(400);
  bed_config.sponge.rpc.hedge_reads = recover;
  // Spikes below last 300 ms; a hedge fired at the 150 ms floor can land
  // after the spike has cleared and win the race.
  bed_config.sponge.rpc.hedge_min_delay = Millis(150);
  workload::Testbed bed(bed_config);
  workload::NumbersDatasetConfig data;
  data.count = 50001;
  workload::NumbersDataset numbers(&bed.dfs(), "nums", data);
  auto block0 = bed.dfs().BlockLocation("nums", 0);
  size_t sick_node = block0.ok() ? *block0 : 0;

  sponge::FailureInjector injector(&bed.env(), 1);
  injector.ScheduleDiskSlowdown(sick_node, Millis(100), /*factor=*/30.0,
                                Minutes(5));
  // RPC-delay spikes: every 977 ms, all sponge servers answer 1 s late
  // for a 120 ms window (think a fleet-wide GC pause or a periodic
  // scraper). The window is shorter than the 150 ms hedge floor, so a
  // hedged read caught by a spike fires its duplicate after the window
  // has cleared and takes the fast copy (~150 ms); the hardened path
  // instead burns the full 500 ms deadline plus a retry. The 977 ms
  // period is co-prime with the simulation's 1 s rhythms so the windows
  // actually intersect traffic.
  for (int k = 0; k < 160; ++k) {
    for (size_t n = 0; n < bed_config.num_nodes; ++n) {
      injector.ScheduleRpcDelay(n, Millis(30000 + 977 * k), Seconds(1),
                                Millis(120));
    }
  }

  auto job = workload::MakeMedianJob(&numbers, mapred::SpillMode::kSponge);
  // Keep the lone reduce away from the sick disk's node (and prove out
  // JobConfig::reduce_pins while at it).
  size_t reduce_node = (sick_node + 4) % bed_config.num_nodes;
  job.reduce_pins.push_back({0, reduce_node});
  if (recover) {
    job.speculation.enabled = true;
    job.speculation.check_period = Millis(500);
    job.speculation.min_attempt_age = Seconds(2);
  }

  StragglerOutcome out;
  auto result = bed.RunJob(std::move(job));
  if (!result.ok()) {
    std::printf("  job failed permanently: %s\n",
                result.status().ToString().c_str());
    return out;
  }
  out.runtime = result->runtime;
  out.output = result->output;
  out.correct = result->output.size() == 1 &&
                result->output[0].number == numbers.expected_median();

  // Past every fault window, sweep the GC everywhere: no chunk may
  // survive — in particular none owned by a cancelled backup's loser.
  SimTime settle =
      std::max(bed.engine().now(), SimTime{Minutes(5)}) + Seconds(10);
  bed.engine().RunUntil(settle);
  bool swept = false;
  auto sweep = [](workload::Testbed* tb, StragglerOutcome* record,
                  bool* done) -> sim::Task<> {
    for (size_t n = 0; n < tb->cluster().size(); ++n) {
      (void)co_await tb->env().server(n).GcSweep();
      record->leaked_chunks +=
          tb->env().server(n).pool().AllocatedChunks().size();
    }
    *done = true;
  };
  bed.engine().Spawn(sweep(&bed, &out, &swept));
  bed.engine().RunUntil(bed.engine().now() + Seconds(10));
  if (!swept) std::printf("  WARNING: GC sweep did not finish\n");
  return out;
}

void StragglerExperiment() {
  std::printf(
      "degraded-disk straggler: 30x slow disk under one map's data, plus "
      "RPC-delay spikes\n");
  obs::Registry& registry = obs::Registry::Default();
  obs::Counter* launched = registry.counter("mapred.speculation.launched");
  obs::Counter* won = registry.counter("mapred.speculation.won");
  obs::Counter* cancelled = registry.counter("mapred.speculation.cancelled");
  obs::Counter* hedge_issued = registry.counter("sponge.read.hedge.issued");
  obs::Counter* hedge_won = registry.counter("sponge.read.hedge.won");
  obs::Counter* timeouts = registry.counter("sponge.rpc.timeouts");

  uint64_t timeouts0 = timeouts->value();
  StragglerOutcome baseline = RunStragglerJob(/*recover=*/false);
  uint64_t base_timeouts = timeouts->value() - timeouts0;

  uint64_t launched0 = launched->value();
  uint64_t won0 = won->value();
  uint64_t cancelled0 = cancelled->value();
  uint64_t issued0 = hedge_issued->value();
  uint64_t hwon0 = hedge_won->value();
  timeouts0 = timeouts->value();
  StragglerOutcome recovered = RunStragglerJob(/*recover=*/true);
  uint64_t d_launched = launched->value() - launched0;
  uint64_t d_won = won->value() - won0;
  uint64_t d_cancelled = cancelled->value() - cancelled0;
  uint64_t d_issued = hedge_issued->value() - issued0;
  uint64_t d_hwon = hedge_won->value() - hwon0;
  uint64_t rec_timeouts = timeouts->value() - timeouts0;

  if (baseline.runtime == 0 || recovered.runtime == 0) {
    std::printf("  a run failed permanently; see above\n");
    return;
  }
  double improvement = 1.0 - static_cast<double>(recovered.runtime) /
                                 static_cast<double>(baseline.runtime);
  std::printf(
      "  hardened baseline: %s (%llu rpc timeouts), speculation+hedging: "
      "%s (%llu rpc timeouts)\n",
      FormatDuration(baseline.runtime).c_str(),
      static_cast<unsigned long long>(base_timeouts),
      FormatDuration(recovered.runtime).c_str(),
      static_cast<unsigned long long>(rec_timeouts));
  std::printf(
      "  runtime improvement: %.0f%% (target >= 25%%): %s\n",
      improvement * 100.0, improvement >= 0.25 ? "MET" : "MISSED");
  std::printf(
      "  speculation: launched=%llu won=%llu cancelled=%llu; hedged "
      "reads: issued=%llu won=%llu\n",
      static_cast<unsigned long long>(d_launched),
      static_cast<unsigned long long>(d_won),
      static_cast<unsigned long long>(d_cancelled),
      static_cast<unsigned long long>(d_issued),
      static_cast<unsigned long long>(d_hwon));
  bool identical = baseline.output == recovered.output &&
                   baseline.correct && recovered.correct;
  std::printf(
      "  output byte-identical across configurations: %s (median %s); "
      "leaked chunks after GC: baseline=%llu recovered=%llu\n",
      identical ? "YES" : "NO", recovered.correct ? "EXACT" : "WRONG",
      static_cast<unsigned long long>(baseline.leaked_chunks),
      static_cast<unsigned long long>(recovered.leaked_chunks));
  std::printf(
      "  (the backup map escapes the 30x spill path and commits first; "
      "hedged reads ride out the spikes without feeding the breaker)\n");
}

}  // namespace

int main(int argc, char** argv) {
  auto obs_options = spongefiles::bench::ParseObsFlags(argc, argv);
  ClosedForm();
  InjectionExperiment();
  HungServerExperiment();
  StragglerExperiment();
  spongefiles::bench::WriteObsOutputs(obs_options);
  return 0;
}
