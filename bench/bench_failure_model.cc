// Section 4.3 failure analysis: (1) the closed-form probability that a
// task fails because one of the N machines holding its spilled chunks
// fails during its runtime t, P = 1 - exp(-N t / MTTF), with the paper's
// parameters (MTTF = 100 months, tasks up to ~120 minutes); and (2) an
// end-to-end injection experiment: a node holding a straggler's remote
// chunks crashes mid-job, the read fails, the framework retries the task,
// and the job still finishes with the right answer.

#include <cstdio>

#include "bench_util.h"
#include "sponge/failure.h"

using namespace spongefiles;
using namespace spongefiles::bench;

namespace {

void ClosedForm() {
  std::printf(
      "P(task failure) = 1 - exp(-N t / MTTF), MTTF = 100 months\n\n");
  const Duration mttf = Minutes(100.0 * 30 * 24 * 60);
  AsciiTable table({"machines N", "t = 10 min", "t = 120 min",
                    "t = 24 h"});
  for (int n : {1, 5, 10, 30, 40}) {
    table.AddRow(
        {StrFormat("%d", n),
         StrFormat("%.2e", sponge::TaskFailureProbability(
                               n, Minutes(10), mttf)),
         StrFormat("%.2e", sponge::TaskFailureProbability(
                               n, Minutes(120), mttf)),
         StrFormat("%.2e", sponge::TaskFailureProbability(
                               n, Minutes(24 * 60), mttf))});
  }
  table.Print();
  std::printf(
      "\npaper: even a 120-minute task spilling to a whole 40-node rack "
      "fails with probability ~%.0e — pre-existing failure causes "
      "dominate.\n\n",
      sponge::TaskFailureProbability(40, Minutes(120), mttf));
}

void InjectionExperiment() {
  std::printf("injection: crash a chunk-holding node mid-job\n");
  workload::TestbedConfig bed_config;
  bed_config.sponge_memory = MiB(256);  // straggler must go remote early
  workload::Testbed bed(bed_config);
  workload::NumbersDatasetConfig data;
  data.count = MedianCount() / 4;
  workload::NumbersDataset numbers(&bed.dfs(), "numbers", data);

  // The straggling reduce runs on node 0 (partition 0); crash one of its
  // rack peers while the job is in flight. The GC on the restarted node
  // has nothing to recover (sponge servers are stateless).
  sponge::FailureInjector injector(&bed.env(), 1);
  injector.ScheduleCrash(/*node=*/1, /*at=*/Seconds(40),
                         /*downtime=*/Seconds(5));
  injector.ScheduleCrash(/*node=*/2, /*at=*/Seconds(50),
                         /*downtime=*/Seconds(5));

  auto result = bed.RunJob(
      workload::MakeMedianJob(&numbers, mapred::SpillMode::kSponge));
  if (!result.ok()) {
    std::printf("  job failed permanently: %s\n",
                result.status().ToString().c_str());
    return;
  }
  const mapred::TaskStats* straggler = result->straggler();
  bool correct = result->output.size() == 1 &&
                 result->output[0].number == numbers.expected_median();
  std::printf(
      "  job completed in %s; straggling reduce needed %d attempt(s); "
      "median %s\n",
      FormatDuration(result->runtime).c_str(), straggler->attempts,
      correct ? "EXACT" : "WRONG");
  std::printf(
      "  (a lost chunk fails the task; the framework restarts it — "
      "section 3.1's recovery story)\n");
}

struct HungRunOutcome {
  Duration runtime = 0;
  bool correct = false;
};

HungRunOutcome RunMedianWithOptionalHang(bool hang) {
  workload::TestbedConfig bed_config;
  bed_config.sponge_memory = MiB(256);
  workload::Testbed bed(bed_config);
  workload::NumbersDatasetConfig data;
  data.count = MedianCount() / 4;
  workload::NumbersDataset numbers(&bed.dfs(), "numbers", data);
  sponge::FailureInjector injector(&bed.env(), 1);
  if (hang) {
    // A rack peer of the straggling reduce stops answering mid-spill,
    // then comes back while the job is still running.
    injector.ScheduleHang(/*node=*/1, /*at=*/Seconds(10),
                          /*duration=*/Seconds(20));
  }
  auto result = bed.RunJob(
      workload::MakeMedianJob(&numbers, mapred::SpillMode::kSponge));
  HungRunOutcome out;
  if (!result.ok()) return out;
  out.runtime = result->runtime;
  out.correct = result->output.size() == 1 &&
                result->output[0].number == numbers.expected_median();
  return out;
}

void HungServerExperiment() {
  std::printf(
      "gray failure: a sponge server hangs (no answers, machine alive) "
      "mid-job\n");
  obs::Registry& registry = obs::Registry::Default();
  obs::Counter* timeouts = registry.counter("sponge.rpc.timeouts");
  obs::Counter* retries = registry.counter("sponge.rpc.retries");
  obs::Counter* trips =
      registry.counter("sponge.rpc.breaker", {{"event", "trip"}});
  obs::Counter* recoveries =
      registry.counter("sponge.rpc.breaker", {{"event", "recover"}});

  HungRunOutcome baseline = RunMedianWithOptionalHang(false);
  uint64_t timeouts0 = timeouts->value();
  uint64_t retries0 = retries->value();
  uint64_t trips0 = trips->value();
  uint64_t recoveries0 = recoveries->value();
  HungRunOutcome hung = RunMedianWithOptionalHang(true);
  uint64_t d_timeouts = timeouts->value() - timeouts0;
  uint64_t d_retries = retries->value() - retries0;
  uint64_t d_trips = trips->value() - trips0;
  uint64_t d_recoveries = recoveries->value() - recoveries0;

  if (baseline.runtime == 0 || hung.runtime == 0) {
    std::printf("  a run failed permanently; see above\n");
    return;
  }
  double slowdown =
      static_cast<double>(hung.runtime) / static_cast<double>(baseline.runtime);
  std::printf(
      "  fault-free: %s, hung-server: %s (%.2fx), median %s\n",
      FormatDuration(baseline.runtime).c_str(),
      FormatDuration(hung.runtime).c_str(), slowdown,
      hung.correct ? "EXACT" : "WRONG");
  std::printf(
      "  client hardening: %llu rpc timeouts, %llu retries, breaker "
      "trips=%llu recoveries=%llu\n",
      static_cast<unsigned long long>(d_timeouts),
      static_cast<unsigned long long>(d_retries),
      static_cast<unsigned long long>(d_trips),
      static_cast<unsigned long long>(d_recoveries));
  bool ejected = d_trips >= 1;
  bool rejoined = d_recoveries >= 1;
  bool bounded = slowdown < 3.0;
  std::printf(
      "  breaker ejected the sick server: %s; rejoined after half-open "
      "probe: %s; slowdown bounded (<3x): %s\n",
      ejected ? "YES" : "NO", rejoined ? "YES" : "NO",
      bounded ? "YES" : "NO");
  std::printf(
      "  (deadlines un-stick the spill cascade; the hung peer is ejected "
      "and spills fall to other servers or disk until it recovers)\n");
}

}  // namespace

int main(int argc, char** argv) {
  auto obs_options = spongefiles::bench::ParseObsFlags(argc, argv);
  ClosedForm();
  InjectionExperiment();
  HungServerExperiment();
  spongefiles::bench::WriteObsOutputs(obs_options);
  return 0;
}
