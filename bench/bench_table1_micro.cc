// Table 1: the cost of spilling a 1 MB buffer to six media.
//
//   | medium                                   | paper (ms) |
//   | local shared memory                      |          1 |
//   | local memory via local sponge server     |          7 |
//   | remote memory over the network           |          9 |
//   | disk                                     |         25 |
//   | disk with background IO                  |        174 |
//   | disk with background IO + memory pressure|        499 |
//
// The memory cases spill through a SpongeFile (synchronous writes so the
// raw per-buffer cost is visible). The disk cases follow the paper's
// methodology: each 1 MB buffer is written at a random offset, defeating
// the buffer cache (the paper seeks before every write for exactly that
// reason), so they are timed against the raw disk. Background IO is two
// grep-style tasks streaming their own files; memory pressure removes the
// OS's ability to batch IO, so the background readers lose readahead
// (small requests) and the spill writes lose coalescing (they fragment),
// multiplying seeks.

#include <cstdio>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/random.h"
#include "common/table.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sponge/sponge_env.h"
#include "sponge/sponge_file.h"

#include "bench_util.h"

using namespace spongefiles;

namespace {

constexpr int kIterations = 2000;  // paper used 10,000; average converges

struct MicroEnv {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Dfs> dfs;
  std::unique_ptr<sponge::SpongeEnv> env;

  explicit MicroEnv(uint64_t local_sponge, sponge::SpongeConfig config) {
    cluster::ClusterConfig cc;
    cc.num_nodes = 2;
    cc.node.sponge_memory = GiB(4);
    cluster_ = std::make_unique<cluster::Cluster>(&engine, cc);
    dfs = std::make_unique<cluster::Dfs>(cluster_.get());
    config.async_write = false;  // measure the raw synchronous cost
    config.prefetch = false;
    env = std::make_unique<sponge::SpongeEnv>(cluster_.get(), dfs.get(),
                                              config);
    // Shrink node 0's pool by pre-allocating it when the case needs the
    // spill to go remote.
    if (local_sponge == 0) {
      sponge::ChunkOwner hog{9999, 0};
      while (env->server(0).pool().Allocate(hog).ok()) {
      }
    }
    auto prime = [](sponge::MemoryTracker* t) -> sim::Task<> {
      co_await t->PollOnce();
    };
    engine.Spawn(prime(&env->tracker()));
    engine.Run();
  }
};

// Average simulated time to spill one 1 MB buffer through a SpongeFile.
double MemorySpillMs(uint64_t local_sponge, bool direct_local) {
  sponge::SpongeConfig config;
  config.direct_local_access = direct_local;
  MicroEnv micro(local_sponge, config);
  sponge::TaskContext task = micro.env->StartTask(0);
  Duration total = 0;
  auto run = [&]() -> sim::Task<> {
    for (int i = 0; i < kIterations; ++i) {
      sponge::SpongeFile file(micro.env.get(), &task,
                              "micro" + std::to_string(i));
      ByteRuns buffer;
      buffer.AppendZeros(MiB(1));
      SimTime start = micro.engine.now();
      (void)co_await file.Append(std::move(buffer));
      (void)co_await file.Close();
      total += micro.engine.now() - start;
      co_await file.Delete();
    }
  };
  micro.engine.Spawn(run());
  micro.engine.Run();
  micro.env->EndTask(task);
  return ToMillis(total) / kIterations;
}

// A background task endlessly streaming its own file off the disk.
sim::Task<> BackgroundReader(sim::Engine* engine, cluster::Disk* disk,
                             uint64_t stream, uint64_t request_bytes,
                             const bool* stop) {
  uint64_t offset = 0;
  while (!*stop) {
    // lint: status-ok(Disk::Read returns Task<>; the index name-collides with DfsClient::Read)
    co_await disk->Read(stream, offset, request_bytes);
    offset += request_bytes;
    co_await engine->Delay(Micros(100));  // brief compute between reads
  }
}

// Average time to write one 1 MB buffer at a random disk offset, with
// `background_readers` competing streams. `write_fragment` models the loss
// of write coalescing under memory pressure (the 1 MB buffer reaches the
// disk as several smaller requests).
double DiskSpillMs(int background_readers, uint64_t reader_request,
                   uint64_t write_fragment) {
  sim::Engine engine;
  cluster::Disk disk(&engine, cluster::DiskConfig{});
  bool stop = false;
  for (int i = 0; i < background_readers; ++i) {
    engine.Spawn(BackgroundReader(&engine, &disk, 100 + i, reader_request,
                                  &stop));
  }
  Duration total = 0;
  auto run = [&]() -> sim::Task<> {
    Rng rng(7);
    for (int i = 0; i < kIterations; ++i) {
      uint64_t offset = rng.Uniform(GiB(100) / MiB(1)) * MiB(1);
      SimTime start = engine.now();
      for (uint64_t done = 0; done < MiB(1); done += write_fragment) {
        // lint: status-ok(Disk::Write returns Task<>; the index name-collides with Ssd::Write)
        co_await disk.Write(1, offset + done, write_fragment);
      }
      total += engine.now() - start;
    }
    stop = true;
  };
  engine.Spawn(run());
  engine.Run();
  return ToMillis(total) / kIterations;
}

}  // namespace

int main(int argc, char** argv) {
  auto obs_options = spongefiles::bench::ParseObsFlags(argc, argv);
  std::printf(
      "Table 1: spilling a 1 MB buffer to different media "
      "(%d iterations each)\n\n",
      kIterations);

  double shared = MemorySpillMs(GiB(4), /*direct_local=*/true);
  double via_server = MemorySpillMs(GiB(4), /*direct_local=*/false);
  double remote = MemorySpillMs(/*local_sponge=*/0, /*direct_local=*/true);
  double disk_alone = DiskSpillMs(0, 0, MiB(1));
  double disk_bg = DiskSpillMs(2, MiB(4), MiB(1));
  double disk_bg_pressure = DiskSpillMs(2, KiB(256), KiB(96));

  AsciiTable table({"Spill medium", "measured (ms)", "paper (ms)"});
  table.AddRow({"Local shared memory", StrFormat("%.1f", shared), "1"});
  table.AddRow({"Local memory (local sponge server)",
                StrFormat("%.1f", via_server), "7"});
  table.AddRow({"Remote memory, over the network",
                StrFormat("%.1f", remote), "9"});
  table.AddRow({"Disk", StrFormat("%.1f", disk_alone), "25"});
  table.AddRow({"Disk with background IO", StrFormat("%.1f", disk_bg),
                "174"});
  table.AddRow({"Disk with background IO and memory pressure",
                StrFormat("%.1f", disk_bg_pressure), "499"});
  table.Print();

  std::printf(
      "\nshape check: memory media ~1-10 ms; disk 1 order slower; "
      "contention adds another order (%.0fx -> %.0fx solo disk).\n",
      disk_bg / disk_alone, disk_bg_pressure / disk_alone);
  spongefiles::bench::WriteObsOutputs(obs_options);
  return 0;
}
