// Crash-recovery bench (ISSUE 7 acceptance gate): k of the cluster's
// sponge servers fail-stop mid-run while hundreds of tasks are between
// their spill and read-back phases. Three same-seed scenarios run in one
// process:
//
//   baseline      no faults, replication on   (the answer key)
//   replicated    crashes,   replication on   (failover + repair save it)
//   unreplicated  crashes,   replication off  (every lost chunk re-runs)
//
// Each task writes a deterministic payload through the sponge cascade,
// waits out a compute window (the exposure that puts its chunks at risk),
// then reads everything back into a content digest. The driver retries a
// failed attempt like the job tracker does, counting each re-run through
// mapred::CountTaskRerun so the reasons land in the same
// mapred.task.rerun.reason counter the framework uses.
//
// Gates (exit 1 on any miss):
//   - both fault runs finish every task with a content digest
//     byte-identical to the fault-free baseline
//   - replicated run: ZERO re-runs attributed to lost chunks, and the
//     measured repair throughput stays within the configured budget
//   - unreplicated run: chunk-lost re-runs strictly positive (the cost
//     replication exists to avoid)
//   - no scenario leaks a chunk once every server is GC-swept
//
//   --out=PATH       wall-clock + full report (default BENCH_recovery.json)
//   --sim-out=PATH   simulated quantities only; byte-identical per seed
//   --racks=N --nodes-per-rack=N --jobs=N --crashes=K --seed=N
//   (plus the standard --trace-out= / --metrics-out= observability flags)
//
// The default shape (16 racks x 32 nodes = 512 servers, 6 crashed) keeps
// the >=500-node acceptance bar; tools/check.sh runs a small smoke shape.

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/topology.h"
#include "common/random.h"
#include "mapred/task_attempt.h"
#include "obs/json.h"
#include "sponge/failure.h"
#include "sponge/repair.h"
#include "sponge/sponge_file.h"

using namespace spongefiles;
using namespace spongefiles::bench;

namespace {

// Host wall clock in milliseconds. Monotonic, never feeds simulated state.
double WallMs() {
  // lint: det-ok(bench wall-clock measurement; reported separately from sim outputs)
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t.time_since_epoch())
      .count();
}

uint64_t PeakRssBytes() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

// FNV-1a 64 over the deterministic outputs.
struct Digest {
  uint64_t h = 1469598103934665603ull;
  void U64(uint64_t v) {
    const auto* c = reinterpret_cast<const unsigned char*>(&v);
    for (size_t i = 0; i < sizeof(v); ++i) h = (h ^ c[i]) * 1099511628211ull;
  }
};

struct Options {
  size_t racks = 16;
  size_t nodes_per_rack = 32;
  size_t jobs = 600;  // one spilling task per job
  size_t crashes = 6;
  uint64_t seed = 7;
  std::string out = "BENCH_recovery.json";
  std::string sim_out;
};

constexpr uint64_t kMinTaskBytes = 256 * 1024;
constexpr uint64_t kMaxTaskBytes = 2ull * 1024 * 1024;
constexpr uint64_t kSpongePerNode = 16ull * 1024 * 1024;
constexpr int64_t kSlotsPerNode = 2;
constexpr int kMaxAttempts = 4;

// Tasks arrive over this window, spill, then sit in a compute phase for
// kExposure before reading back. The crash at kCrashAt therefore lands
// squarely inside most tasks' write-to-read window — the chunks it
// destroys are ones somebody still needs.
constexpr SimTime kArrivalStart = Seconds(2);
constexpr SimTime kArrivalWindow = Seconds(18);
constexpr Duration kExposure = Seconds(25);
constexpr SimTime kCrashAt = Seconds(30);

// Deterministic payload for (seed, job): a 16-byte random literal every
// 64 KiB, zeros between — ByteRuns stays compact while every chunk still
// carries content the checksums (and the read-back digest) depend on.
ByteRuns MakePayload(uint64_t bytes, uint64_t seed) {
  ByteRuns data;
  Rng rng(seed);
  char marker[16];
  uint64_t remaining = bytes;
  while (remaining > 0) {
    for (char& c : marker) {
      c = static_cast<char>('a' + rng.Uniform(26));
    }
    uint64_t lit = std::min<uint64_t>(sizeof(marker), remaining);
    data.AppendLiteral(Slice(marker, static_cast<size_t>(lit)));
    remaining -= lit;
    uint64_t zeros = std::min<uint64_t>(64 * 1024 - lit, remaining);
    data.AppendZeros(zeros);
    remaining -= zeros;
  }
  return data;
}

uint64_t PayloadSeed(uint64_t seed, size_t job) {
  return seed * 2654435761ull + job + 1;
}

struct RecoveryState {
  sim::Engine* engine = nullptr;
  sponge::SpongeEnv* env = nullptr;
  std::vector<std::unique_ptr<sim::Semaphore>>* slots = nullptr;
  uint64_t seed = 0;
  size_t tasks_done = 0;
  size_t tasks_failed = 0;
  uint64_t attempts = 0;
  // Wrapping sum of per-task digests: order-independent, so the combined
  // value is comparable even though crashes reorder task completions.
  uint64_t content_digest = 0;
};

// One spilling task: write, compute, read back, digest. On failure the
// driver retries the whole attempt — a fresh TaskContext and file, exactly
// like the job tracker relaunching a task — after recording the re-run
// reason through the framework's counter.
sim::Task<> RunRecoveryTask(RecoveryState* state, size_t job, size_t node,
                            uint64_t bytes) {
  sim::Semaphore* slot = (*state->slots)[node].get();
  co_await slot->Acquire();
  sponge::SpongeEnv* env = state->env;
  Status last = Status::OK();
  for (int attempt = 1; attempt <= kMaxAttempts; ++attempt) {
    ++state->attempts;
    sponge::TaskContext task = env->StartTask(node);
    sponge::SpongeFile file(env, &task,
                            "rc.j" + std::to_string(job) + ".a" +
                                std::to_string(attempt));
    ByteRuns payload = MakePayload(bytes, PayloadSeed(state->seed, job));
    Status status = co_await file.Append(std::move(payload));
    if (status.ok()) status = co_await file.Close();
    if (status.ok()) co_await state->engine->Delay(kExposure);
    uint64_t task_digest = 0;
    if (status.ok()) {
      Digest d;
      uint64_t chunk_index = 0;
      while (true) {
        Result<ByteRuns> chunk = co_await file.ReadNext();
        if (!chunk.ok()) {
          status = chunk.status();
          break;
        }
        if (chunk->empty()) break;
        d.U64(chunk_index++);
        d.U64(chunk->Checksum64());
      }
      task_digest = d.h;
    }
    co_await file.Delete();
    env->EndTask(task);
    if (status.ok()) {
      Digest mix;
      mix.U64(job);
      mix.U64(task_digest);
      state->content_digest += mix.h;
      last = Status::OK();
      break;
    }
    last = status;
    if (attempt < kMaxAttempts) mapred::CountTaskRerun(status);
  }
  if (!last.ok()) ++state->tasks_failed;
  slot->Release();
  ++state->tasks_done;
}

// The rerun/failover/replica counters are process-global; each scenario
// diffs a snapshot taken before it ran.
struct CounterSnap {
  uint64_t rerun_chunk_lost = 0;
  uint64_t rerun_checksum = 0;
  uint64_t rerun_timeout = 0;
  uint64_t failover_attempted = 0;
  uint64_t failover_won = 0;
  uint64_t failover_exhausted = 0;
  uint64_t replica_stored = 0;
  uint64_t replica_skipped = 0;
};

CounterSnap TakeSnap() {
  obs::Registry& registry = obs::Registry::Default();
  CounterSnap s;
  s.rerun_chunk_lost =
      registry.counter("mapred.task.rerun.reason", {{"reason", "chunk-lost"}})
          ->value();
  s.rerun_checksum =
      registry.counter("mapred.task.rerun.reason", {{"reason", "checksum"}})
          ->value();
  s.rerun_timeout =
      registry.counter("mapred.task.rerun.reason", {{"reason", "timeout"}})
          ->value();
  s.failover_attempted =
      registry.counter("sponge.read.failover.attempted")->value();
  s.failover_won = registry.counter("sponge.read.failover.won")->value();
  s.failover_exhausted =
      registry.counter("sponge.read.failover.exhausted")->value();
  s.replica_stored = registry.counter("sponge.replica.stored")->value();
  s.replica_skipped = registry.counter("sponge.replica.skipped")->value();
  return s;
}

struct ScenarioResult {
  size_t tasks_done = 0;
  size_t tasks_failed = 0;
  uint64_t attempts = 0;
  uint64_t content_digest = 0;
  SimTime makespan = 0;
  uint64_t engine_events = 0;
  uint64_t leaked_chunks = 0;
  bool swept = false;
  // Counter deltas for this scenario.
  uint64_t rerun_chunk_lost = 0;
  uint64_t rerun_checksum = 0;
  uint64_t rerun_timeout = 0;
  uint64_t failover_attempted = 0;
  uint64_t failover_won = 0;
  uint64_t failover_exhausted = 0;
  uint64_t replica_stored = 0;
  uint64_t replica_skipped = 0;
  // Repair-loop stats (zero when replication is off).
  uint64_t repairs_completed = 0;
  uint64_t repair_bytes = 0;
  uint64_t repair_entries_dropped = 0;
  uint64_t repair_copies_lost = 0;
  Duration repair_active = 0;
  SimTime last_repair_at = 0;
  double repair_budget = 0;  // bytes/sec
};

sim::Task<> SweepAll(sponge::SpongeEnv* env, size_t num_nodes,
                     ScenarioResult* result) {
  for (size_t n = 0; n < num_nodes; ++n) {
    (void)co_await env->server(n).GcSweep();
    result->leaked_chunks += env->server(n).pool().AllocatedChunks().size();
  }
  result->swept = true;
}

ScenarioResult RunScenario(const Options& options, bool inject_crashes,
                           bool replicate) {
  ScenarioResult result;
  const size_t num_nodes = options.racks * options.nodes_per_rack;
  CounterSnap before = TakeSnap();

  cluster::TopologyConfig topo;
  topo.num_racks = options.racks;
  topo.nodes_per_rack = options.nodes_per_rack;
  topo.oversubscription = 4.0;
  topo.node.sponge_memory = kSpongePerNode;

  sim::Engine engine;
  cluster::Cluster cluster(&engine, cluster::MakeClusterConfig(topo));
  cluster::Dfs dfs(&cluster);
  sponge::SpongeConfig sponge_config;
  sponge_config.allow_cross_rack = true;
  sponge_config.rpc.hedge_reads = true;
  sponge_config.replication.enabled = replicate;
  // Generous headroom so the pressure gate never vetoes a replica: the
  // zero-re-runs gate below assumes every memory chunk got its spare copy.
  sponge_config.replication.min_free_fraction = 0.05;
  // The periodic GC must not fire mid-run: a sweep on a replica holder
  // would see the (crashed) owner node as dead and reclaim chunks a
  // still-running task needs. The bench owns its GC epoch — one explicit
  // sweep after every task has finished — mirroring the framework, where
  // the job tracker keeps task registrations alive until commit.
  sponge::SpongeServerConfig server_config;
  server_config.gc_period = Minutes(60);
  sponge::SpongeEnv env(&cluster, &dfs, sponge_config, {}, server_config);
  env.tracker().Start();
  env.StartServices();

  // The fault schedule: k fail-stop crashes (no restart), all in rack 1 so
  // rack-diverse replicas always have survivors to fail over to.
  sponge::FailureInjector injector(&env, options.seed);
  if (inject_crashes) {
    for (size_t i = 0; i < options.crashes; ++i) {
      injector.ScheduleCrash(options.nodes_per_rack + i, kCrashAt,
                             /*downtime=*/0);
    }
  }

  std::vector<std::unique_ptr<sim::Semaphore>> slots;
  slots.reserve(num_nodes);
  for (size_t n = 0; n < num_nodes; ++n) {
    slots.push_back(std::make_unique<sim::Semaphore>(&engine, kSlotsPerNode));
  }
  RecoveryState state;
  state.engine = &engine;
  state.env = &env;
  state.slots = &slots;
  state.seed = options.seed;

  // Identical plan in every scenario: sizes and arrivals from the seeded
  // Rng, tasks round-robin over all nodes (so the crashed servers are both
  // spill targets and task homes).
  Rng plan_rng(options.seed);
  for (size_t j = 0; j < options.jobs; ++j) {
    uint64_t bytes =
        kMinTaskBytes + plan_rng.Uniform(kMaxTaskBytes - kMinTaskBytes + 1);
    SimTime arrival = kArrivalStart + static_cast<SimTime>(plan_rng.Uniform(
                                          static_cast<uint64_t>(kArrivalWindow)));
    size_t node = j % num_nodes;
    engine.SpawnAt(arrival, RunRecoveryTask(&state, j, node, bytes));
  }

  const SimTime deadline = Minutes(24 * 60.0);
  while (state.tasks_done < options.jobs && engine.now() < deadline) {
    engine.RunUntil(engine.now() + Seconds(10));
  }
  result.makespan = engine.now();
  result.tasks_done = state.tasks_done;
  result.tasks_failed = state.tasks_failed;
  result.attempts = state.attempts;
  result.content_digest = state.content_digest;

  // Let the repair loop drain its queue, then judge leaks: one sweep over
  // every server (crashed ones included — their pools were reset) must
  // leave zero allocated chunks, replicas and repair copies included.
  engine.RunUntil(engine.now() + Seconds(30));
  engine.Spawn(SweepAll(&env, num_nodes, &result));
  engine.RunUntil(engine.now() + Seconds(30));

  result.repairs_completed = env.repair().repairs_completed();
  result.repair_bytes = env.repair().repair_bytes();
  result.repair_entries_dropped = env.repair().entries_dropped();
  result.repair_copies_lost = env.repair().copies_lost();
  result.repair_active = env.repair().active_time();
  result.last_repair_at = env.repair().last_repair_at();
  result.repair_budget = env.repair().budget_bandwidth();
  result.engine_events = engine.events_processed();

  env.StopServices();
  engine.RunUntil(engine.now() + Seconds(30));
  // Reclaim the service loops while the cluster objects are still alive.
  engine.DrainDetached();

  CounterSnap after = TakeSnap();
  result.rerun_chunk_lost = after.rerun_chunk_lost - before.rerun_chunk_lost;
  result.rerun_checksum = after.rerun_checksum - before.rerun_checksum;
  result.rerun_timeout = after.rerun_timeout - before.rerun_timeout;
  result.failover_attempted =
      after.failover_attempted - before.failover_attempted;
  result.failover_won = after.failover_won - before.failover_won;
  result.failover_exhausted =
      after.failover_exhausted - before.failover_exhausted;
  result.replica_stored = after.replica_stored - before.replica_stored;
  result.replica_skipped = after.replica_skipped - before.replica_skipped;
  return result;
}

struct BenchResult {
  ScenarioResult baseline;
  ScenarioResult replicated;
  ScenarioResult unreplicated;
  uint64_t reruns_avoided = 0;
  Duration recovery_time = 0;
  double failover_win_rate = 0;
  double repair_throughput = 0;  // bytes/sec, measured
  bool replicated_ok = false;
  bool unreplicated_ok = false;
  bool ok = false;
  uint64_t digest = 0;
  double wall_ms = 0;  // kept out of --sim-out
};

BenchResult RunBench(const Options& options) {
  BenchResult r;
  double start_wall = WallMs();

  std::printf("scenario 1/3: fault-free baseline (replication on)\n");
  r.baseline = RunScenario(options, /*inject_crashes=*/false,
                           /*replicate=*/true);
  std::printf("scenario 2/3: %zu crashes, replication ON\n", options.crashes);
  r.replicated = RunScenario(options, /*inject_crashes=*/true,
                             /*replicate=*/true);
  std::printf("scenario 3/3: %zu crashes, replication OFF\n", options.crashes);
  r.unreplicated = RunScenario(options, /*inject_crashes=*/true,
                               /*replicate=*/false);

  r.reruns_avoided =
      r.unreplicated.rerun_chunk_lost - r.replicated.rerun_chunk_lost;
  if (r.replicated.repairs_completed > 0) {
    r.recovery_time = r.replicated.last_repair_at - kCrashAt;
  }
  if (r.replicated.failover_attempted > 0) {
    r.failover_win_rate =
        static_cast<double>(r.replicated.failover_won) /
        static_cast<double>(r.replicated.failover_attempted);
  }
  if (r.replicated.repair_active > 0) {
    r.repair_throughput = static_cast<double>(r.replicated.repair_bytes) /
                          ToSeconds(r.replicated.repair_active);
  }

  const ScenarioResult& base = r.baseline;
  bool baseline_ok = base.tasks_done == options.jobs &&
                     base.tasks_failed == 0 && base.swept &&
                     base.leaked_chunks == 0;
  const ScenarioResult& on = r.replicated;
  // Pacing guarantees throughput <= budget; 5% slack covers rounding.
  bool budget_ok = on.repair_active == 0 ||
                   r.repair_throughput <= on.repair_budget * 1.05;
  r.replicated_ok = on.tasks_done == options.jobs && on.tasks_failed == 0 &&
                    on.swept && on.content_digest == base.content_digest &&
                    on.rerun_chunk_lost == 0 && on.rerun_checksum == 0 &&
                    on.leaked_chunks == 0 && budget_ok;
  const ScenarioResult& off = r.unreplicated;
  r.unreplicated_ok = off.tasks_done == options.jobs &&
                      off.tasks_failed == 0 && off.swept &&
                      off.content_digest == base.content_digest &&
                      off.rerun_chunk_lost > 0 && off.leaked_chunks == 0;
  r.ok = baseline_ok && r.replicated_ok && r.unreplicated_ok;

  Digest digest;
  for (const ScenarioResult* s : {&r.baseline, &r.replicated,
                                  &r.unreplicated}) {
    digest.U64(s->tasks_done);
    digest.U64(s->attempts);
    digest.U64(s->content_digest);
    digest.U64(static_cast<uint64_t>(s->makespan));
    digest.U64(s->engine_events);
    digest.U64(s->rerun_chunk_lost);
    digest.U64(s->failover_won);
    digest.U64(s->replica_stored);
    digest.U64(s->repair_bytes);
    digest.U64(s->leaked_chunks);
  }
  r.digest = digest.h;

  r.wall_ms = WallMs() - start_wall;
  return r;
}

void AppendScenario(std::string* out, const char* key,
                    const ScenarioResult& s) {
  *out += "  \"";
  *out += key;
  *out += "\": {\n    \"tasks_done\": ";
  obs::AppendJsonUint(out, s.tasks_done);
  *out += ",\n    \"tasks_failed\": ";
  obs::AppendJsonUint(out, s.tasks_failed);
  *out += ",\n    \"task_attempts\": ";
  obs::AppendJsonUint(out, s.attempts);
  *out += ",\n    \"content_digest\": ";
  obs::AppendJsonUint(out, s.content_digest);
  *out += ",\n    \"makespan_us\": ";
  obs::AppendJsonUint(out, static_cast<uint64_t>(s.makespan));
  *out += ",\n    \"engine_events\": ";
  obs::AppendJsonUint(out, s.engine_events);
  *out += ",\n    \"reruns_chunk_lost\": ";
  obs::AppendJsonUint(out, s.rerun_chunk_lost);
  *out += ",\n    \"reruns_checksum\": ";
  obs::AppendJsonUint(out, s.rerun_checksum);
  *out += ",\n    \"reruns_timeout\": ";
  obs::AppendJsonUint(out, s.rerun_timeout);
  *out += ",\n    \"failover_attempted\": ";
  obs::AppendJsonUint(out, s.failover_attempted);
  *out += ",\n    \"failover_won\": ";
  obs::AppendJsonUint(out, s.failover_won);
  *out += ",\n    \"failover_exhausted\": ";
  obs::AppendJsonUint(out, s.failover_exhausted);
  *out += ",\n    \"replicas_stored\": ";
  obs::AppendJsonUint(out, s.replica_stored);
  *out += ",\n    \"replicas_skipped\": ";
  obs::AppendJsonUint(out, s.replica_skipped);
  *out += ",\n    \"repairs_completed\": ";
  obs::AppendJsonUint(out, s.repairs_completed);
  *out += ",\n    \"repair_bytes\": ";
  obs::AppendJsonUint(out, s.repair_bytes);
  *out += ",\n    \"repair_entries_dropped\": ";
  obs::AppendJsonUint(out, s.repair_entries_dropped);
  *out += ",\n    \"repair_copies_lost\": ";
  obs::AppendJsonUint(out, s.repair_copies_lost);
  *out += ",\n    \"repair_active_us\": ";
  obs::AppendJsonUint(out, static_cast<uint64_t>(s.repair_active));
  *out += ",\n    \"leaked_chunks\": ";
  obs::AppendJsonUint(out, s.leaked_chunks);
  *out += "\n  }";
}

// Simulated quantities only — byte-identical for a fixed seed and shape.
std::string SimJson(const Options& options, const BenchResult& r) {
  std::string out = "{\n";
  out += "  \"bench\": \"recovery\",\n";
  out += "  \"racks\": ";
  obs::AppendJsonUint(&out, options.racks);
  out += ",\n  \"nodes\": ";
  obs::AppendJsonUint(&out, options.racks * options.nodes_per_rack);
  out += ",\n  \"jobs\": ";
  obs::AppendJsonUint(&out, options.jobs);
  out += ",\n  \"crashes\": ";
  obs::AppendJsonUint(&out, options.crashes);
  out += ",\n  \"crash_at_us\": ";
  obs::AppendJsonUint(&out, static_cast<uint64_t>(kCrashAt));
  out += ",\n  \"seed\": ";
  obs::AppendJsonUint(&out, options.seed);
  out += ",\n";
  AppendScenario(&out, "baseline", r.baseline);
  out += ",\n";
  AppendScenario(&out, "replicated", r.replicated);
  out += ",\n";
  AppendScenario(&out, "unreplicated", r.unreplicated);
  out += ",\n  \"reruns_avoided\": ";
  obs::AppendJsonUint(&out, r.reruns_avoided);
  out += ",\n  \"recovery_time_us\": ";
  obs::AppendJsonUint(&out, static_cast<uint64_t>(r.recovery_time));
  out += ",\n  \"failover_win_rate\": ";
  obs::AppendJsonDouble(&out, r.failover_win_rate);
  out += ",\n  \"repair_throughput_bytes_per_sec\": ";
  obs::AppendJsonDouble(&out, r.repair_throughput);
  out += ",\n  \"repair_budget_bytes_per_sec\": ";
  obs::AppendJsonDouble(&out, r.replicated.repair_budget);
  out += ",\n  \"replicated_ok\": ";
  out += r.replicated_ok ? "true" : "false";
  out += ",\n  \"unreplicated_ok\": ";
  out += r.unreplicated_ok ? "true" : "false";
  out += ",\n  \"digest\": ";
  obs::AppendJsonUint(&out, r.digest);
  out += ",\n  \"ok\": ";
  out += r.ok ? "true" : "false";
  out += "\n}\n";
  return out;
}

std::string FullJson(const Options& options, const BenchResult& r) {
  std::string sim = SimJson(options, r);
  // Splice the wall-clock section in before the closing brace.
  std::string out = sim.substr(0, sim.rfind("\n}\n"));
  out += ",\n  \"wall_ms\": ";
  obs::AppendJsonDouble(&out, r.wall_ms);
  out += ",\n  \"peak_rss_bytes\": ";
  obs::AppendJsonUint(&out, PeakRssBytes());
  out += "\n}\n";
  return out;
}

bool WriteText(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  int closed = std::fclose(f);
  return written == text.size() && closed == 0;
}

void PrintScenarioRow(AsciiTable* table, const char* name,
                      const ScenarioResult& s) {
  table->AddRow(
      {name, StrFormat("%zu/%zu", s.tasks_done - s.tasks_failed, s.tasks_done),
       StrFormat("%llu", (unsigned long long)s.attempts),
       StrFormat("%llu", (unsigned long long)s.rerun_chunk_lost),
       StrFormat("%llu/%llu", (unsigned long long)s.failover_won,
                 (unsigned long long)s.failover_attempted),
       StrFormat("%llu", (unsigned long long)s.repairs_completed),
       FormatBytes(s.repair_bytes),
       StrFormat("%llu", (unsigned long long)s.leaked_chunks),
       FormatDuration(s.makespan)});
}

}  // namespace

int main(int argc, char** argv) {
  ObsOptions obs_options = ParseObsFlags(argc, argv);
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      options.out = arg.substr(6);
    } else if (arg.rfind("--sim-out=", 0) == 0) {
      options.sim_out = arg.substr(10);
    } else if (arg.rfind("--racks=", 0) == 0) {
      options.racks = static_cast<size_t>(std::atoll(arg.c_str() + 8));
    } else if (arg.rfind("--nodes-per-rack=", 0) == 0) {
      options.nodes_per_rack =
          static_cast<size_t>(std::atoll(arg.c_str() + 17));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = static_cast<size_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--crashes=", 0) == 0) {
      options.crashes = static_cast<size_t>(std::atoll(arg.c_str() + 10));
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    }
  }
  // Crashes stay inside rack 1 so replicas (rack-diverse by preference)
  // always have survivors; losing a whole rack is out of scope here.
  if (options.racks < 2 || options.nodes_per_rack < 2 ||
      options.jobs < 1 || options.crashes < 1 ||
      options.crashes >= options.nodes_per_rack) {
    std::fprintf(stderr,
                 "need --racks>=2, --nodes-per-rack>=2, --jobs>=1, "
                 "1<=--crashes<nodes-per-rack\n");
    return 2;
  }

  std::printf(
      "recovery bench: %zu racks x %zu nodes, %zu tasks, %zu fail-stop "
      "crashes at t=%s, seed %llu\n\n",
      options.racks, options.nodes_per_rack, options.jobs, options.crashes,
      FormatDuration(kCrashAt).c_str(),
      static_cast<unsigned long long>(options.seed));

  BenchResult r = RunBench(options);

  std::printf("\n");
  AsciiTable table({"scenario", "tasks ok", "attempts", "chunk-lost reruns",
                    "failover won/try", "repairs", "repair bytes", "leaks",
                    "makespan"});
  PrintScenarioRow(&table, "baseline", r.baseline);
  PrintScenarioRow(&table, "replicated", r.replicated);
  PrintScenarioRow(&table, "unreplicated", r.unreplicated);
  table.Print();
  std::printf(
      "\nre-runs avoided by replication: %llu (off %llu vs on %llu)\n",
      static_cast<unsigned long long>(r.reruns_avoided),
      static_cast<unsigned long long>(r.unreplicated.rerun_chunk_lost),
      static_cast<unsigned long long>(r.replicated.rerun_chunk_lost));
  std::printf("recovery: last repair %s after the crash, %s re-replicated "
              "at %s/s (budget %s/s)\n",
              FormatDuration(r.recovery_time).c_str(),
              FormatBytes(r.replicated.repair_bytes).c_str(),
              FormatBytes(static_cast<uint64_t>(r.repair_throughput)).c_str(),
              FormatBytes(static_cast<uint64_t>(r.replicated.repair_budget))
                  .c_str());
  std::printf("failover win rate %.1f%%, digests %s, wall %.0f ms\n",
              r.failover_win_rate * 100.0,
              r.ok ? "byte-identical" : "MISMATCH OR GATE MISS",
              r.wall_ms);

  if (!WriteText(options.out, FullJson(options, r))) {
    std::fprintf(stderr, "failed to write %s\n", options.out.c_str());
    return 1;
  }
  std::printf("report written to %s\n", options.out.c_str());
  if (!options.sim_out.empty()) {
    if (!WriteText(options.sim_out, SimJson(options, r))) {
      std::fprintf(stderr, "failed to write %s\n", options.sim_out.c_str());
      return 1;
    }
    std::printf("sim snapshot written to %s\n", options.sim_out.c_str());
  }
  WriteObsOutputs(obs_options);
  return r.ok ? 0 : 1;
}
