// Figure 5: the Figure 4 comparison repeated in a multi-tenant setting: a
// background map-only "grep" job is submitted right after the measured job
// and keeps every idle map slot busy, so its streaming reads contend with
// the measured job's disk spills.
//
// Paper shape:
//  * Median suffers most from disk spilling under contention; SpongeFiles
//    cut its runtime by over 85% at 4 GB.
//  * Spam Quantiles behaves like Median.
//  * Frequent Anchortext: SpongeFiles win at 4 GB; at 16 GB the spilled
//    data is small enough to live in the buffer cache, so disk is slightly
//    better even with contention.

#include <cstdio>

#include "bench_util.h"

using namespace spongefiles;
using namespace spongefiles::bench;

int main(int argc, char** argv) {
  auto obs_options = spongefiles::bench::ParseObsFlags(argc, argv);
  std::printf(
      "Figure 5: job runtimes under disk contention (background grep over "
      "%s)\n\n",
      FormatBytes(GrepBytes()).c_str());

  AsciiTable table({"Job", "memory", "disk", "SpongeFiles", "reduction",
                    "answers"});
  for (MacroJob job : {MacroJob::kMedian, MacroJob::kAnchortext,
                       MacroJob::kSpamQuantiles}) {
    for (uint64_t memory : {GiB(4), GiB(16)}) {
      MacroOptions options;
      options.node_memory = memory;
      options.background_grep = true;
      MacroRun disk = RunMacro(job, mapred::SpillMode::kDisk, options);
      MacroRun sponge = RunMacro(job, mapred::SpillMode::kSponge, options);
      table.AddRow(
          {MacroJobName(job), memory == GiB(4) ? "4 GB" : "16 GB",
           FormatDuration(disk.runtime), FormatDuration(sponge.runtime),
           Pct(static_cast<double>(disk.runtime),
               static_cast<double>(sponge.runtime)),
           disk.correct && sponge.correct ? "exact" : "WRONG"});
    }
  }
  table.Print();
  std::printf(
      "\npaper: SpongeFiles cut the median job by over 85%% under "
      "contention and memory pressure.\n");
  spongefiles::bench::WriteObsOutputs(obs_options);
  return 0;
}
