// The paper's core architectural argument against kernel-level remote
// paging (sections 1 and 5): paging moves one page (a few KB) per network
// round trip, because the kernel cannot know which pages a task needs
// next; SpongeFiles move megabyte chunks with prefetch, because the
// application knows its access pattern is strictly sequential.
//
// This bench spills and reads back 256 MB through both models on the same
// simulated network and reports effective throughput.

#include <cstdio>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/table.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sponge/sponge_env.h"
#include "sponge/sponge_file.h"

#include "bench_util.h"

using namespace spongefiles;

namespace {

constexpr uint64_t kTotal = 256ull * 1024 * 1024;

// Kernel-style remote paging: synchronous, one page per round trip (the
// kernel blocks the faulting thread until the page arrives).
Duration RemotePagingTime(uint64_t page_size) {
  sim::Engine engine;
  cluster::ClusterConfig cc;
  cc.num_nodes = 2;
  cluster::Cluster cluster(&engine, cc);
  auto run = [&]() -> sim::Task<> {
    // Page-out whole region, then page it back in, one page at a time.
    for (int direction = 0; direction < 2; ++direction) {
      size_t src = direction == 0 ? 0 : 1;
      size_t dst = 1 - src;
      for (uint64_t off = 0; off < kTotal; off += page_size) {
        // Request (page fault message) + the page itself.
        co_await cluster.network().Transfer(src, dst, 64);
        co_await cluster.network().Transfer(dst, src, page_size);
      }
    }
  };
  engine.Spawn(run());
  engine.Run();
  return engine.now();
}

// SpongeFile spilling of the same volume to remote memory (async writes,
// prefetched reads).
Duration SpongeFileTime(uint64_t chunk_size) {
  sim::Engine engine;
  cluster::ClusterConfig cc;
  cc.num_nodes = 2;
  cc.node.sponge_memory = 2 * kTotal;
  cluster::Cluster cluster(&engine, cc);
  cluster::Dfs dfs(&cluster);
  sponge::SpongeConfig config;
  config.chunk_size = chunk_size;
  sponge::SpongeEnv env(&cluster, &dfs, config);
  // Force everything remote: drain node 0's pool.
  sponge::ChunkOwner hog{999, 0};
  while (env.server(0).pool().Allocate(hog).ok()) {
  }
  auto prime = [&]() -> sim::Task<> { co_await env.tracker().PollOnce(); };
  engine.Spawn(prime());
  engine.Run();

  sponge::TaskContext task = env.StartTask(0);
  sponge::SpongeFile file(&env, &task, "spill");
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    data.AppendZeros(kTotal);
    (void)co_await file.Append(std::move(data));
    (void)co_await file.Close();
    while (true) {
      auto chunk = co_await file.ReadNext();
      if (!chunk.ok() || chunk->empty()) break;
    }
  };
  engine.Spawn(run());
  engine.Run();
  return engine.now();
}

std::string Throughput(Duration d) {
  double mb_per_s = 2.0 * kTotal / kMiB / ToSeconds(d);
  return StrFormat("%.0f MB/s", mb_per_s);
}

}  // namespace

int main(int argc, char** argv) {
  auto obs_options = spongefiles::bench::ParseObsFlags(argc, argv);
  std::printf(
      "Remote paging vs SpongeFiles: move %s out and back over the same "
      "1 Gb network\n\n",
      FormatBytes(kTotal).c_str());

  AsciiTable table({"mechanism", "granularity", "total time",
                    "effective throughput"});
  for (uint64_t page : {KiB(4), KiB(16), KiB(64)}) {
    Duration t = RemotePagingTime(page);
    table.AddRow({"kernel remote paging", FormatBytes(page),
                  FormatDuration(t), Throughput(t)});
  }
  for (uint64_t chunk : {MiB(1), MiB(4)}) {
    Duration t = SpongeFileTime(chunk);
    table.AddRow({"SpongeFile chunks", FormatBytes(chunk),
                  FormatDuration(t), Throughput(t)});
  }
  table.Print();
  std::printf(
      "\n4 KB pages pay a round-trip latency per page and cannot overlap; "
      "1 MB sequential chunks amortize the latency and prefetch/async "
      "writes hide it — the paper's case for an application-level "
      "abstraction.\n");
  spongefiles::bench::WriteObsOutputs(obs_options);
  return 0;
}
