// Figure 4: SpongeFile spilling vs disk spilling with no other jobs in the
// system, at 4 GB and 16 GB of node memory.
//
// Paper shape:
//  * Median (10 GB single reduce): SpongeFiles win decisively at both
//    memory sizes — the spill overwhelms the buffer cache and the
//    multi-round disk merge re-spills extra data.
//  * Frequent Anchortext / Spam Quantiles: SpongeFiles win with 4 GB
//    nodes; with 16 GB the buffer cache absorbs the (smaller,
//    quickly-re-read) spills, so disk is competitive or slightly better.
//  * SpongeFile runtimes barely depend on node memory.

#include <cstdio>

#include "bench_util.h"

using namespace spongefiles;
using namespace spongefiles::bench;

int main(int argc, char** argv) {
  auto obs_options = spongefiles::bench::ParseObsFlags(argc, argv);
  std::printf(
      "Figure 4: job runtimes, disk vs SpongeFile spilling, no contention\n"
      "(30 nodes, 1 GB heaps, 1 GB sponge/node; web data %s, median count "
      "%llu)\n\n",
      FormatBytes(WebBytes()).c_str(),
      static_cast<unsigned long long>(MedianCount()));

  AsciiTable table({"Job", "memory", "disk", "SpongeFiles", "reduction",
                    "answers"});
  for (MacroJob job : {MacroJob::kMedian, MacroJob::kAnchortext,
                       MacroJob::kSpamQuantiles}) {
    for (uint64_t memory : {GiB(4), GiB(16)}) {
      MacroOptions options;
      options.node_memory = memory;
      MacroRun disk = RunMacro(job, mapred::SpillMode::kDisk, options);
      MacroRun sponge = RunMacro(job, mapred::SpillMode::kSponge, options);
      table.AddRow(
          {MacroJobName(job), memory == GiB(4) ? "4 GB" : "16 GB",
           FormatDuration(disk.runtime), FormatDuration(sponge.runtime),
           Pct(static_cast<double>(disk.runtime),
               static_cast<double>(sponge.runtime)),
           disk.correct && sponge.correct ? "exact" : "WRONG"});
    }
  }
  table.Print();
  std::printf(
      "\npaper: sponge wins up to ~55%%; disk competitive for the Pig jobs "
      "only when 16 GB of memory lets the buffer cache absorb spills.\n");
  spongefiles::bench::WriteObsOutputs(obs_options);
  return 0;
}
