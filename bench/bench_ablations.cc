// Ablations of the design choices DESIGN.md calls out:
//   1. chunk size: setup-cost amortization vs internal fragmentation
//      (the paper picked 1 MB);
//   2. memory-tracker staleness: longer poll periods mean more bounced
//      allocations and disk fallbacks under concurrent spilling;
//   3. affinity: how many distinct machines hold a task's chunks (its
//      failure footprint), with and without preferring already-used
//      servers;
//   4. read prefetch and asynchronous writes: overlap of IO with the
//      task's computation.

#include <cstdio>
#include <set>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/table.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sponge/failure.h"
#include "sponge/sponge_env.h"
#include "sponge/sponge_file.h"

#include "bench_util.h"

using namespace spongefiles;

namespace {

struct Rig {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Dfs> dfs;
  std::unique_ptr<sponge::SpongeEnv> env;

  Rig(size_t nodes, uint64_t sponge_per_node, sponge::SpongeConfig config,
      Duration tracker_poll = Seconds(1)) {
    cluster::ClusterConfig cc;
    cc.num_nodes = nodes;
    cc.node.sponge_memory = sponge_per_node;
    cluster_ = std::make_unique<cluster::Cluster>(&engine, cc);
    dfs = std::make_unique<cluster::Dfs>(cluster_.get());
    sponge::MemoryTrackerConfig tracker_config;
    tracker_config.poll_period = tracker_poll;
    env = std::make_unique<sponge::SpongeEnv>(
        cluster_.get(), dfs.get(), config, sponge::ChunkPoolConfig{},
        sponge::SpongeServerConfig{}, tracker_config);
    auto prime = [](sponge::MemoryTracker* t) -> sim::Task<> {
      co_await t->PollOnce();
    };
    engine.Spawn(prime(&env->tracker()));
    engine.Run();
  }
};

void ChunkSizeSweep() {
  std::printf("1. chunk size (spill 64 MB + 300 KB to remote memory)\n");
  AsciiTable table({"chunk size", "write time", "frag bytes", "chunks"});
  for (uint64_t chunk : {KiB(64), KiB(256), MiB(1), MiB(4), MiB(16)}) {
    sponge::SpongeConfig config;
    config.chunk_size = chunk;
    Rig rig(4, GiB(1), config);
    // Local pool full: everything goes remote, exposing per-chunk setup.
    sponge::ChunkOwner hog{999, 0};
    while (rig.env->server(0).pool().Allocate(hog).ok()) {
    }
    sponge::TaskContext task = rig.env->StartTask(0);
    sponge::SpongeFile file(rig.env.get(), &task, "sweep");
    Duration elapsed = 0;
    auto run = [&]() -> sim::Task<> {
      SimTime start = rig.engine.now();
      ByteRuns data;
      data.AppendZeros(MiB(64) + 300 * kKiB);
      (void)co_await file.Append(std::move(data));
      (void)co_await file.Close();
      elapsed = rig.engine.now() - start;
    };
    rig.engine.Spawn(run());
    rig.engine.Run();
    table.AddRow({FormatBytes(chunk), FormatDuration(elapsed),
                  FormatBytes(file.stats().fragmentation_bytes),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        file.stats().total_chunks()))});
  }
  table.Print();
  std::printf(
      "   small chunks pay per-chunk round trips; huge chunks waste the "
      "partial tail. 1 MB balances both (the paper's choice).\n\n");
}

void StalenessSweep() {
  std::printf(
      "2. tracker staleness (8 tasks racing to spill 48 MB each into a "
      "nearly-full rack)\n");
  AsciiTable table({"poll period", "stale retries", "disk chunks",
                    "memory chunks"});
  for (Duration poll : {Millis(100), Seconds(1), Seconds(10), Seconds(30)}) {
    sponge::SpongeConfig config;
    // Local pools are tiny; the rack fills up as the staggered tasks
    // arrive, so late tasks live or die by the freshness of their list.
    Rig rig(8, MiB(24), config, poll);
    rig.env->tracker().Start();
    uint64_t stale = 0;
    uint64_t disk_chunks = 0;
    uint64_t memory_chunks = 0;
    sim::WaitGroup wg(&rig.engine);
    std::vector<std::unique_ptr<sponge::TaskContext>> tasks;
    std::vector<std::unique_ptr<sponge::SpongeFile>> files;
    for (int t = 0; t < 8; ++t) {
      tasks.push_back(std::make_unique<sponge::TaskContext>(
          rig.env->StartTask(static_cast<size_t>(t))));
      files.push_back(std::make_unique<sponge::SpongeFile>(
          rig.env.get(), tasks.back().get(),
          "race" + std::to_string(t)));
    }
    wg.Add(8);
    auto spill = [&](int t) -> sim::Task<> {
      // Staggered arrivals: each task's snapshot is up to `poll` stale
      // with respect to the spills already in flight.
      co_await rig.engine.Delay(Seconds(2) * t);
      ByteRuns data;
      data.AppendZeros(MiB(48));
      (void)co_await files[static_cast<size_t>(t)]->Append(std::move(data));
      (void)co_await files[static_cast<size_t>(t)]->Close();
      wg.Done();
    };
    for (int t = 0; t < 8; ++t) rig.engine.Spawn(spill(t));
    bool done = false;
    auto wait_all = [&]() -> sim::Task<> {
      co_await wg.Wait();
      done = true;
    };
    rig.engine.Spawn(wait_all());
    while (!done) rig.engine.RunUntil(rig.engine.now() + Seconds(1));
    for (const auto& file : files) {
      stale += file->stats().stale_list_retries;
      disk_chunks += file->stats().chunks_local_disk + file->stats().chunks_dfs;
      memory_chunks += file->stats().chunks_local_memory +
                       file->stats().chunks_remote_memory;
    }
    rig.env->StopServices();
    table.AddRow({FormatDuration(poll), StrFormat("%llu", (unsigned long long)stale),
                  StrFormat("%llu", (unsigned long long)disk_chunks),
                  StrFormat("%llu", (unsigned long long)memory_chunks)});
  }
  table.Print();
  std::printf(
      "   staler views bounce off full servers more often (wasted RPCs); "
      "walking the rest of the list still finds whatever memory exists, so "
      "placement only degrades to disk when the rack is truly full — the "
      "paper's argument for cheap 1 s polling with relaxed consistency.\n\n");
}

void AffinityAblation() {
  std::printf("3. affinity (failure footprint of one 24 MB spill)\n");
  AsciiTable table({"affinity", "distinct remote nodes", "P(fail), t=120min"});
  for (bool affinity : {true, false}) {
    sponge::SpongeConfig config;
    config.affinity = affinity;
    Rig rig(16, MiB(8), config);
    sponge::ChunkOwner hog{999, 0};
    while (rig.env->server(0).pool().Allocate(hog).ok()) {
    }
    sponge::TaskContext task = rig.env->StartTask(0);
    // Pig-style spilling: the task writes many small SpongeFiles (bag
    // chunks). Each file queries the tracker afresh, so without the
    // task-level affinity preference the chunks scatter across the rack.
    auto run = [&]() -> sim::Task<> {
      for (int i = 0; i < 24; ++i) {
        sponge::SpongeFile file(rig.env.get(), &task,
                                "aff" + std::to_string(i));
        ByteRuns data;
        data.AppendZeros(MiB(1));
        (void)co_await file.Append(std::move(data));
        (void)co_await file.Close();
        co_await rig.engine.Delay(Seconds(2));  // tracker re-polls between
      }
    };
    rig.env->tracker().Start();
    bool finished = false;
    auto wrapper = [&]() -> sim::Task<> {
      co_await run();
      finished = true;
    };
    rig.engine.Spawn(wrapper());
    while (!finished) rig.engine.RunUntil(rig.engine.now() + Seconds(1));
    rig.env->StopServices();
    std::set<size_t> nodes;
    for (size_t n = 1; n < 16; ++n) {
      if (!rig.env->server(n).pool().AllocatedChunks().empty()) {
        nodes.insert(n);
      }
    }
    const Duration mttf = Minutes(100.0 * 30 * 24 * 60);
    table.AddRow(
        {affinity ? "on" : "off", StrFormat("%zu", nodes.size()),
         StrFormat("%.2e",
                   sponge::TaskFailureProbability(
                       static_cast<int>(nodes.size()) + 1, Minutes(120),
                       mttf))});
  }
  table.Print();
  std::printf(
      "   affinity concentrates a task's chunks on fewer machines, "
      "shrinking the failure probability (section 3.1.1).\n\n");
}

void OverlapAblation() {
  std::printf(
      "4. prefetch / async writes (48 MB remote spill, 8 ms compute per "
      "MB)\n");
  AsciiTable table({"config", "write phase", "read phase"});
  for (int mode = 0; mode < 2; ++mode) {
    sponge::SpongeConfig config;
    config.prefetch = mode == 1;
    config.async_write = mode == 1;
    Rig rig(8, MiB(16), config);
    sponge::ChunkOwner hog{999, 0};
    while (rig.env->server(0).pool().Allocate(hog).ok()) {
    }
    sponge::TaskContext task = rig.env->StartTask(0);
    sponge::SpongeFile file(rig.env.get(), &task, "ovl");
    Duration write_time = 0;
    Duration read_time = 0;
    auto run = [&]() -> sim::Task<> {
      SimTime start = rig.engine.now();
      for (int i = 0; i < 48; ++i) {
        ByteRuns data;
        data.AppendZeros(MiB(1));
        (void)co_await file.Append(std::move(data));
        co_await rig.engine.Delay(Millis(8));  // producer's computation
      }
      (void)co_await file.Close();
      write_time = rig.engine.now() - start;
      start = rig.engine.now();
      while (true) {
        auto chunk = co_await file.ReadNext();
        if (!chunk.ok() || chunk->empty()) break;
        co_await rig.engine.Delay(Millis(8));  // consumer's computation
      }
      read_time = rig.engine.now() - start;
    };
    rig.engine.Spawn(run());
    rig.engine.Run();
    table.AddRow({mode == 1 ? "prefetch + async writes" : "synchronous",
                  FormatDuration(write_time), FormatDuration(read_time)});
  }
  table.Print();
  std::printf(
      "   overlapping transfers with computation hides most of the remote "
      "memory latency (section 3.1.2).\n");
}

void RackRestrictionAblation() {
  std::printf(
      "5. rack-local spilling (2 racks, 4:1 oversubscribed core)\n");
  AsciiTable table({"policy", "spill 64 MB", "cross-rack bytes",
                    "chunks on disk"});
  for (bool allow_cross_rack : {false, true}) {
    sim::Engine engine;
    cluster::ClusterConfig cc;
    cc.num_nodes = 8;
    cc.nodes_per_rack = 4;
    cc.node.sponge_memory = MiB(16);
    cc.network.cross_rack_bandwidth = cc.network.bandwidth / 4;
    cluster::Cluster cluster(&engine, cc);
    cluster::Dfs dfs(&cluster);
    sponge::SpongeConfig config;
    config.allow_cross_rack = allow_cross_rack;
    sponge::SpongeEnv env(&cluster, &dfs, config);
    // Rack 0 is entirely full, so remote-memory demand must leave it.
    for (size_t n = 0; n < 4; ++n) {
      while (env.server(n).pool().Allocate(
                 sponge::ChunkOwner{999, n}).ok()) {
      }
    }
    auto prime = [&]() -> sim::Task<> { co_await env.tracker().PollOnce(); };
    engine.Spawn(prime());
    engine.Run();
    sponge::TaskContext task = env.StartTask(0);
    sponge::SpongeFile file(&env, &task, "xrack");
    Duration elapsed = 0;
    auto run = [&]() -> sim::Task<> {
      SimTime start = engine.now();
      ByteRuns data;
      data.AppendZeros(MiB(64));
      (void)co_await file.Append(std::move(data));
      (void)co_await file.Close();
      elapsed = engine.now() - start;
    };
    engine.Spawn(run());
    engine.Run();
    table.AddRow(
        {allow_cross_rack ? "cross-rack rung" : "rack-local only (paper)",
         FormatDuration(elapsed),
         FormatBytes(cluster.network().cross_rack_bytes()),
         StrFormat("%llu", static_cast<unsigned long long>(
                               file.stats().chunks_local_disk +
                               file.stats().chunks_dfs))});
  }
  table.Print();
  std::printf(
      "   with an oversubscribed core, shipping chunks off-rack is slower "
      "than the local disk the policy falls back to — and it would also "
      "congest everyone else's off-rack traffic (section 3.1.1).\n");
}

}  // namespace

int main(int argc, char** argv) {
  auto obs_options = spongefiles::bench::ParseObsFlags(argc, argv);
  std::printf("Ablations of SpongeFile design choices\n\n");
  ChunkSizeSweep();
  StalenessSweep();
  AffinityAblation();
  OverlapAblation();
  RackRestrictionAblation();
  spongefiles::bench::WriteObsOutputs(obs_options);
  return 0;
}
