// Figure 1: data skew in a month of production reduce tasks, from the
// synthetic trace (the paper's Yahoo! trace is proprietary; DESIGN.md
// documents the substitution).
//
//   (a) CDFs of reduce-task input sizes — all tasks and per-job averages —
//       spanning ~8 orders of magnitude with a max around 105 GB (bigger
//       than any node's memory).
//   (b) CDF of the per-job unbiased skewness of reduce input sizes, with a
//       large fraction of jobs beyond +/-1 on both sides.

#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "workload/trace.h"

#include "bench_util.h"

using namespace spongefiles;
using workload::TraceConfig;
using workload::TraceSynthesizer;

namespace {

void PrintCdf(const char* title, const std::vector<CdfPoint>& cdf,
              bool bytes) {
  std::printf("%s\n", title);
  AsciiTable table({"value", "CDF"});
  for (const CdfPoint& p : cdf) {
    table.AddRow({bytes ? FormatBytes(static_cast<uint64_t>(p.value))
                        : StrFormat("%.2f", p.value),
                  StrFormat("%.3f", p.fraction)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  auto obs_options = spongefiles::bench::ParseObsFlags(argc, argv);
  TraceConfig config;
  TraceSynthesizer synth(config);
  auto fig = synth.BuildFigure1(/*cdf_points=*/24);

  std::printf("Figure 1: data skew across a month-long synthetic trace "
              "(%zu jobs)\n\n", config.num_jobs);
  PrintCdf("(a) reduce-task input sizes, all tasks:", fig.task_inputs,
           /*bytes=*/true);
  PrintCdf("(a) average input per reduce task per job:",
           fig.job_average_inputs, /*bytes=*/true);
  PrintCdf("(b) per-job unbiased skewness of reduce input sizes:",
           fig.job_skewness, /*bytes=*/false);

  // Summary checks against the paper's reading of the figure.
  double min_task = fig.task_inputs.front().value;
  double max_task = fig.task_inputs.back().value;
  auto jobs = synth.Generate();
  int eligible = 0;
  int beyond = 0;
  for (const auto& job : jobs) {
    if (job.reduce_input_bytes.size() < 3) continue;
    ++eligible;
    double s = job.skewness();
    if (s > 1 || s < -1) ++beyond;
  }
  std::printf(
      "max task input: %s (paper: ~105 GB, more than any node's memory)\n"
      "input spread: %.1f orders of magnitude (paper: ~8)\n"
      "jobs with |skewness| > 1: %.0f%% (paper: 'a big fraction')\n",
      FormatBytes(static_cast<uint64_t>(max_task)).c_str(),
      std::log10(max_task) - std::log10(std::max(min_task, 1.0)),
      100.0 * beyond / std::max(eligible, 1));
  spongefiles::bench::WriteObsOutputs(obs_options);
  return 0;
}
