// Section 4.3 "Effectiveness": for SpongeFiles to keep spills in memory,
// the aggregate intermediate data of the jobs running at any instant must
// fit in the cluster's aggregate (sponge) memory. The paper measures a
// month of Yahoo! clusters and finds intermediate data peaks at ~25% of
// total cluster memory, because (a) maps filter ~90% of their input and
// (b) most jobs are small ad-hoc queries.
//
// This bench replays the synthetic trace as an arrival process over a
// month and reports the aggregate live intermediate data as a fraction of
// cluster memory, plus how often a 105 GB straggler exceeds one node's
// memory (the paper's argument for remote spilling).

#include <algorithm>
#include <cstdio>

#include "common/random.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"
#include "workload/trace.h"

#include "bench_util.h"

using namespace spongefiles;
using workload::TraceConfig;
using workload::TraceSynthesizer;

namespace {

struct ClusterModel {
  // "Yahoo! has tens of thousands of machines in its clusters" (4.3).
  size_t nodes = 20000;
  uint64_t memory_per_node = GiB(16);
};

}  // namespace

int main(int argc, char** argv) {
  auto obs_options = spongefiles::bench::ParseObsFlags(argc, argv);
  TraceConfig trace_config;
  trace_config.num_jobs = 20000;
  TraceSynthesizer synth(trace_config);
  auto jobs = synth.Generate();
  ClusterModel cluster;

  // Arrival process: jobs spread uniformly over a month; each lives for a
  // duration proportional to its total reduce input (min 1 minute). Its
  // intermediate data (post-filter map output = reduce input) is live
  // while it runs.
  Rng rng(77);
  const double month_s = 30.0 * 24 * 3600;
  struct Interval {
    double start;
    double end;
    double bytes;
  };
  std::vector<Interval> intervals;
  intervals.reserve(jobs.size());
  double max_task_input = 0;
  size_t tasks_over_node_memory = 0;
  size_t total_tasks = 0;
  for (const auto& job : jobs) {
    double total = 0;
    for (double b : job.reduce_input_bytes) {
      total += b;
      max_task_input = std::max(max_task_input, b);
      if (b > static_cast<double>(cluster.memory_per_node)) {
        ++tasks_over_node_memory;
      }
      ++total_tasks;
    }
    double start = rng.NextDouble() * month_s;
    // Throughput-based lifetime: ~100 MB/s of aggregate job progress
    // (the intermediate data of a job is live only while it runs).
    double duration = std::max(60.0, total / (100.0 * kMiB));
    intervals.push_back({start, start + duration, total});
  }

  // Sweep-line over the month: peak and mean aggregate live bytes.
  std::vector<std::pair<double, double>> events;  // time, +/- bytes
  events.reserve(intervals.size() * 2);
  for (const auto& iv : intervals) {
    events.push_back({iv.start, iv.bytes});
    events.push_back({iv.end, -iv.bytes});
  }
  std::sort(events.begin(), events.end());
  double live = 0;
  double peak = 0;
  double area = 0;
  double last_t = 0;
  for (const auto& [t, delta] : events) {
    area += live * (t - last_t);
    last_t = t;
    live += delta;
    peak = std::max(peak, live);
  }
  double mean = area / month_s;
  double cluster_memory = static_cast<double>(cluster.nodes) *
                          static_cast<double>(cluster.memory_per_node);

  AsciiTable table({"quantity", "value"});
  table.AddRow({"cluster memory",
                FormatBytes(static_cast<uint64_t>(cluster_memory))});
  table.AddRow({"peak live intermediate data",
                FormatBytes(static_cast<uint64_t>(peak))});
  table.AddRow({"peak / cluster memory",
                StrFormat("%.1f%%", 100.0 * peak / cluster_memory)});
  table.AddRow({"mean / cluster memory",
                StrFormat("%.1f%%", 100.0 * mean / cluster_memory)});
  table.AddRow({"largest single reduce input",
                FormatBytes(static_cast<uint64_t>(max_task_input))});
  table.AddRow({"reduce tasks bigger than one node's memory",
                StrFormat("%.3f%% (%zu of %zu)",
                          100.0 * static_cast<double>(tasks_over_node_memory) /
                              static_cast<double>(total_tasks),
                          tasks_over_node_memory, total_tasks)});
  table.Print();

  std::printf(
      "\npaper: aggregate intermediate data stays at or below ~25%% of "
      "cluster memory (maps filter ~90%%; most jobs are small), so sponge "
      "memory can absorb the spills; and some reduce inputs (up to "
      "~105 GB) exceed any single node's memory, so remote sponge memory "
      "is necessary, not just convenient.\n");
  spongefiles::bench::WriteObsOutputs(obs_options);
  return 0;
}
