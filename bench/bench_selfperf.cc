// Self-performance suite: wall-clock benchmarks of the simulator itself,
// the measurement side of the zero-copy data plane and event-engine fast
// path (DESIGN.md "Performance engineering").
//
// Unlike every other bench in this directory, which reports *simulated*
// quantities, this one deliberately reads the host's wall clock and RSS —
// the only place in the tree allowed to (spongelint waivers below). The
// fixed suite:
//
//   event_storm       ~1M zero-delay yields + interleaved timed events;
//                     pure engine throughput, no workload.
//   table2_spill      Median + Spam Quantiles under SpongeFile spilling at
//                     pinned dataset sizes (the Table 2 shape).
//   fig5_contention   Frequent Anchortext with a background grep on 4 GB
//                     nodes (the Figure 5 shape).
//   chaos_sweep       N seeded gray-failure runs of the skewed median job,
//                     leak-checked after a GC sweep.
//
// Dataset sizes are pinned here (not via SPONGE_BENCH_SCALE) so two runs
// always execute the identical simulation. Determinism is the acceptance
// gate:
//   --sim-out=PATH  writes only simulated quantities; byte-identical
//                   across runs for the same build (tools/perf.sh diffs
//                   it, along with --trace-out and --metrics-out
//                   snapshots).
//   --out=PATH      writes the wall-clock report (BENCH_selfperf.json).
//   --baseline=PATH a prior --out file; its totals are embedded next to
//                   ours and the ratio computed (regression tracking
//                   across commits).
//   --engine=MODE   legacy (default): the single-queue engine, bit-exact
//                   old behaviour. seq: the sharded engine (node
//                   projection) on the serial reference driver. par: the
//                   same sharded schedule on the thread pool — tools/
//                   perf.sh byte-compares seq and par --sim-out snapshots.
//   --threads=N     pool size under --engine=par (default: host cores).

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/json.h"
#include "sim/parallel.h"
#include "sponge/failure.h"

using namespace spongefiles;
using namespace spongefiles::bench;

namespace {

// Host wall clock in milliseconds. Monotonic, never feeds simulated state.
double WallMs() {
  // lint: det-ok(self-perf bench measures host wall time by design)
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t.time_since_epoch())
      .count();
}

// Peak resident set, bytes (ru_maxrss is KiB on Linux).
uint64_t PeakRssBytes() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

// Engine mode for every scenario (--engine / --threads), set once in main
// before any scenario runs. The testbeds here are single-rack, so seq/par
// use the node projection (one worker lane per node) — the rack projection
// would degenerate to a single worker lane.
std::string g_engine_mode = "legacy";
unsigned g_engine_threads = 0;  // --engine=par pool size; 0 = host cores

// --pool=flat runs every scenario on the pre-tiered allocator (one global
// free list + one global lock); the default is the tiered pool. tools/
// perf.sh runs fig5_contention both ways and gates on tiered winning.
bool g_pool_flat = false;

// --scenarios=a,b restricts the suite (perf.sh's pool gate runs just
// fig5_contention twice instead of the whole suite). Empty = everything.
std::string g_scenarios;

bool ScenarioEnabled(const char* name) {
  if (g_scenarios.empty()) return true;
  size_t pos = 0;
  while (pos < g_scenarios.size()) {
    size_t comma = g_scenarios.find(',', pos);
    if (comma == std::string::npos) comma = g_scenarios.size();
    if (g_scenarios.compare(pos, comma - pos, name) == 0) return true;
    pos = comma + 1;
  }
  return false;
}

workload::ShardProjection Projection() {
  return g_engine_mode == "legacy" ? workload::ShardProjection::kNone
                                   : workload::ShardProjection::kNode;
}

unsigned ShardThreads() {
  if (g_engine_mode != "par") return 0;
  return g_engine_threads > 0 ? g_engine_threads : sim::HostCores();
}

struct ScenarioResult {
  std::string name;
  double wall_ms = 0;
  uint64_t engine_events = 0;  // deterministic
  SimTime sim_time = 0;        // deterministic
  // Deterministic: summed job runtimes. Unlike sim_time (the testbed's
  // final clock, often pinned by a fixed-length background workload) this
  // moves with the data plane's efficiency — the pool gate compares it
  // between --pool=flat and --pool=tiered.
  Duration job_runtime = 0;
  uint64_t sim_bytes = 0;      // deterministic: logical bytes the data
                               // plane moved (spill accounting)
  uint64_t digest = 0;         // deterministic: FNV over scenario outputs
  bool ok = false;             // deterministic
  // Events per engine lane, summed elementwise over the scenario's engines
  // ([total] on the legacy engine). Identical between seq and par — the
  // sharded schedule is the same either way.
  std::vector<uint64_t> per_lane_events;
};

void FoldLaneEvents(const std::vector<uint64_t>& lanes, ScenarioResult* r) {
  if (r->per_lane_events.size() < lanes.size()) {
    r->per_lane_events.resize(lanes.size(), 0);
  }
  for (size_t l = 0; l < lanes.size(); ++l) r->per_lane_events[l] += lanes[l];
}

// FNV-1a 64 over arbitrary stuff, for the per-scenario output digest.
struct Digest {
  uint64_t h = 1469598103934665603ull;
  void Bytes(const void* p, size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < n; ++i) h = (h ^ c[i]) * 1099511628211ull;
  }
  void Str(const std::string& s) { Bytes(s.data(), s.size()); }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void F64(double v) { Bytes(&v, sizeof(v)); }
};

// ---- event_storm -----------------------------------------------------------

sim::Task<> StormLane(sim::Engine* engine, uint64_t lane, uint64_t yields,
                      uint64_t* acc) {
  for (uint64_t i = 0; i < yields; ++i) {
    // Mostly zero-delay yields (the ring's diet) with a timed event mixed
    // in per lane per 16 iterations (keeps the heap honest).
    co_await engine->Delay((i & 15) == lane ? 1 : 0);
    *acc += lane + 1;
  }
}

// Per-storm-lane accumulator: padded to a cache line so the threaded
// driver's worker lanes never false-share (each engine lane touches only
// its own entry, so there is no cross-lane data race to begin with).
struct alignas(64) StormAcc {
  uint64_t v = 0;
};

ScenarioResult RunEventStorm() {
  ScenarioResult r;
  r.name = "event_storm";
  constexpr uint64_t kLanes = 8;
  constexpr uint64_t kYields = 125000;  // 8 * 125k = 1M events
  double start = WallMs();
  sim::Engine engine;
  // seq/par: one engine lane per storm lane. The storm lanes never talk to
  // each other, so any positive lookahead is conservative; one microsecond
  // matches the smallest timed delay in the mix.
  std::unique_ptr<sim::Sharding> sharding;
  if (g_engine_mode != "legacy") {
    sharding = std::make_unique<sim::Sharding>(
        &engine, sim::NodeShardPlan(kLanes, Micros(1)), ShardThreads());
  }
  std::vector<StormAcc> accs(kLanes);
  for (uint64_t lane = 0; lane < kLanes; ++lane) {
    if (sharding != nullptr) {
      engine.SpawnOnShard(static_cast<uint32_t>(lane) + 1, 0,
                          StormLane(&engine, lane, kYields, &accs[lane].v));
    } else {
      engine.Spawn(StormLane(&engine, lane, kYields, &accs[lane].v));
    }
  }
  engine.Run();
  uint64_t acc = 0;
  for (const StormAcc& a : accs) acc += a.v;
  r.engine_events = engine.events_processed();
  r.sim_time = engine.now();
  for (uint32_t l = 0; l < engine.lane_count(); ++l) {
    r.per_lane_events.push_back(engine.lane_events(l));
  }
  r.wall_ms = WallMs() - start;
  Digest d;
  d.U64(acc);
  d.U64(engine.now());
  r.digest = d.h;
  r.ok = acc == kLanes * (kLanes + 1) / 2 * kYields;
  return r;
}

// ---- macro-job scenarios ---------------------------------------------------

// Pinned sizes: small enough that the suite finishes in minutes, large
// enough that every job spills through the sponge path.
MacroOptions PinnedOptions() {
  MacroOptions options;
  options.node_memory = GiB(4);
  options.heap_per_slot = MiB(128);
  options.sponge_memory = MiB(256);
  options.median_count = 200001;
  options.web_bytes = MiB(256);
  options.grep_bytes = GiB(1);
  options.shard_projection = Projection();
  options.shard_threads = ShardThreads();
  options.pool.flat = g_pool_flat;
  return options;
}

void FoldRun(const MacroRun& run, ScenarioResult* r, Digest* d) {
  FoldLaneEvents(run.lane_events, r);
  r->engine_events += run.engine_events;
  r->sim_time += run.sim_now;
  r->job_runtime += run.runtime;
  r->sim_bytes += run.total_spill.bytes_spilled + run.straggler.input_bytes;
  r->ok = r->ok && run.correct;
  d->U64(run.runtime);
  d->U64(run.total_spill.bytes_spilled);
  d->U64(run.total_spill.sponge_chunks);
  d->U64(run.straggler.input_bytes);
  d->U64(run.engine_events);
  d->U64(run.sim_now);
}

ScenarioResult RunTable2Spill() {
  ScenarioResult r;
  r.name = "table2_spill";
  r.ok = true;
  Digest d;
  double start = WallMs();
  for (MacroJob job : {MacroJob::kMedian, MacroJob::kSpamQuantiles}) {
    MacroRun run = RunMacro(job, mapred::SpillMode::kSponge, PinnedOptions());
    FoldRun(run, &r, &d);
  }
  r.wall_ms = WallMs() - start;
  r.digest = d.h;
  return r;
}

ScenarioResult RunFig5Contention() {
  ScenarioResult r;
  r.name = "fig5_contention";
  r.ok = true;
  Digest d;
  double start = WallMs();
  MacroOptions options = PinnedOptions();
  options.background_grep = true;
  MacroRun run =
      RunMacro(MacroJob::kAnchortext, mapred::SpillMode::kSponge, options);
  FoldRun(run, &r, &d);
  r.wall_ms = WallMs() - start;
  r.digest = d.h;
  return r;
}

// ---- chaos_sweep -----------------------------------------------------------

struct ChaosOutcome {
  Duration runtime = 0;
  std::vector<mapred::Record> output;
  uint64_t leaked_chunks = 0;
  uint64_t engine_events = 0;
  SimTime sim_now = 0;
  uint64_t spilled_bytes = 0;
  bool ok = false;
  std::vector<uint64_t> lane_events;
};

constexpr SimTime kFaultHorizon = Seconds(90);

// The chaos test's scenario (tests/sponge_chaos_test.cc) sans gtest: the
// skewed median job on a small testbed under a seeded gray-failure
// schedule, GC-swept afterwards and leak-counted.
ChaosOutcome RunChaosJob(uint64_t seed, bool inject) {
  ChaosOutcome out;
  workload::TestbedConfig bed_config;
  bed_config.num_nodes = 8;
  bed_config.sponge_memory = MiB(64);
  bed_config.sponge.rpc.hedge_reads = true;
  bed_config.shard_projection = Projection();
  bed_config.shard_threads = ShardThreads();
  bed_config.pool.flat = g_pool_flat;
  workload::Testbed bed(bed_config);
  workload::NumbersDatasetConfig data;
  data.count = 50001;
  workload::NumbersDataset numbers(&bed.dfs(), "nums", data);

  sponge::FailureInjector injector(&bed.env(), seed);
  if (inject) {
    sponge::ChaosOptions options;
    options.start = Seconds(2);
    options.horizon = kFaultHorizon;
    options.num_faults = 10;
    injector.ScheduleChaos(options);
  }

  auto job = workload::MakeMedianJob(&numbers, mapred::SpillMode::kSponge);
  job.speculation.enabled = true;
  job.speculation.check_period = Seconds(1);
  job.speculation.min_attempt_age = Seconds(3);
  auto result = bed.RunJob(std::move(job));
  if (!result.ok()) {
    std::fprintf(stderr, "chaos seed %llu failed: %s\n",
                 static_cast<unsigned long long>(seed),
                 result.status().ToString().c_str());
    return out;
  }
  out.runtime = result->runtime;
  out.output = result->output;
  for (const auto& task : result->map_tasks) {
    out.spilled_bytes += task.spill.bytes_spilled;
  }
  for (const auto& task : result->reduce_tasks) {
    out.spilled_bytes += task.spill.bytes_spilled;
  }

  SimTime settle = std::max(bed.engine().now(), kFaultHorizon) + Seconds(10);
  bed.engine().RunUntil(settle);

  bool swept = false;
  auto sweep = [](workload::Testbed* tb, ChaosOutcome* record,
                  bool* done) -> sim::Task<> {
    for (size_t n = 0; n < tb->cluster().size(); ++n) {
      (void)co_await tb->env().server(n).GcSweep();
      record->leaked_chunks +=
          tb->env().server(n).pool().AllocatedChunks().size();
    }
    *done = true;
  };
  bed.engine().Spawn(sweep(&bed, &out, &swept));
  bed.engine().RunUntil(bed.engine().now() + Seconds(10));
  out.engine_events = bed.engine().events_processed();
  out.sim_now = bed.engine().now();
  for (uint32_t l = 0; l < bed.engine().lane_count(); ++l) {
    out.lane_events.push_back(bed.engine().lane_events(l));
  }
  out.ok = swept && out.output.size() == 1 &&
           out.output[0].number == numbers.expected_median();
  return out;
}

ScenarioResult RunChaosSweep(int seeds) {
  ScenarioResult r;
  r.name = "chaos_sweep";
  r.ok = true;
  Digest d;
  double start = WallMs();
  ChaosOutcome baseline = RunChaosJob(0, /*inject=*/false);
  r.ok = r.ok && baseline.ok && baseline.leaked_chunks == 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    ChaosOutcome chaotic = RunChaosJob(static_cast<uint64_t>(seed),
                                       /*inject=*/true);
    r.ok = r.ok && chaotic.ok && chaotic.leaked_chunks == 0 &&
           chaotic.output == baseline.output;
    FoldLaneEvents(chaotic.lane_events, &r);
    r.engine_events += chaotic.engine_events;
    r.sim_time += chaotic.sim_now;
    r.sim_bytes += chaotic.spilled_bytes;
    d.U64(chaotic.runtime);
    d.U64(chaotic.spilled_bytes);
    d.U64(chaotic.leaked_chunks);
    d.U64(chaotic.engine_events);
  }
  FoldLaneEvents(baseline.lane_events, &r);
  r.engine_events += baseline.engine_events;
  r.sim_time += baseline.sim_now;
  r.sim_bytes += baseline.spilled_bytes;
  d.U64(baseline.runtime);
  d.U64(baseline.engine_events);
  r.wall_ms = WallMs() - start;
  r.digest = d.h;
  return r;
}

// ---- reports ---------------------------------------------------------------

bool WriteText(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  int closed = std::fclose(f);
  return written == text.size() && closed == 0;
}

// Simulated quantities only — must be byte-identical across build flavors.
std::string SimJson(const std::vector<ScenarioResult>& results) {
  std::string out = "{\n  \"scenarios\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    out += "    {\"name\": ";
    obs::AppendJsonEscaped(&out, r.name);
    out += ", \"engine_events\": ";
    obs::AppendJsonUint(&out, r.engine_events);
    out += ", \"sim_time_us\": ";
    obs::AppendJsonUint(&out, static_cast<uint64_t>(r.sim_time));
    out += ", \"job_runtime_us\": ";
    obs::AppendJsonUint(&out, static_cast<uint64_t>(r.job_runtime));
    out += ", \"sim_bytes\": ";
    obs::AppendJsonUint(&out, r.sim_bytes);
    out += ", \"digest\": ";
    obs::AppendJsonUint(&out, r.digest);
    out += ", \"ok\": ";
    out += r.ok ? "true" : "false";
    out += "}";
    if (i + 1 < results.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

// Pulls `"key": <number>` out of a baseline report (our own output format,
// so naive extraction is fine).
double ExtractNumber(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\": ";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

std::string WallJson(const std::vector<ScenarioResult>& results,
                     const std::string& baseline_json) {
  const char* flavor = "fastpath";
  double total_wall = 0;
  uint64_t total_events = 0, total_bytes = 0;
  for (const ScenarioResult& r : results) {
    total_wall += r.wall_ms;
    total_events += r.engine_events;
    total_bytes += r.sim_bytes;
  }
  std::string out = "{\n  \"bench\": \"selfperf\",\n  \"flavor\": \"";
  out += flavor;
  out += "\",\n  \"engine\": \"";
  out += g_engine_mode;
  out += "\",\n  \"pool\": \"";
  out += g_pool_flat ? "flat" : "tiered";
  out += "\",\n  \"threads\": ";
  obs::AppendJsonUint(&out, ShardThreads());
  out += ",\n  \"host_cores\": ";
  obs::AppendJsonUint(&out, sim::HostCores());
  out += ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    double secs = r.wall_ms / 1000.0;
    out += "    {\"name\": ";
    obs::AppendJsonEscaped(&out, r.name);
    out += ", \"wall_ms\": ";
    obs::AppendJsonDouble(&out, r.wall_ms);
    out += ", \"engine_events\": ";
    obs::AppendJsonUint(&out, r.engine_events);
    out += ", \"events_per_sec\": ";
    obs::AppendJsonDouble(&out, secs > 0 ? r.engine_events / secs : 0);
    out += ", \"sim_bytes\": ";
    obs::AppendJsonUint(&out, r.sim_bytes);
    out += ", \"sim_bytes_per_sec\": ";
    obs::AppendJsonDouble(&out, secs > 0 ? r.sim_bytes / secs : 0);
    out += ", \"per_lane_events\": [";
    for (size_t l = 0; l < r.per_lane_events.size(); ++l) {
      if (l > 0) out += ", ";
      obs::AppendJsonUint(&out, r.per_lane_events[l]);
    }
    out += "], \"ok\": ";
    out += r.ok ? "true" : "false";
    out += "}";
    if (i + 1 < results.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n  \"total_wall_ms\": ";
  obs::AppendJsonDouble(&out, total_wall);
  out += ",\n  \"total_engine_events\": ";
  obs::AppendJsonUint(&out, total_events);
  double total_secs = total_wall / 1000.0;
  out += ",\n  \"events_per_sec\": ";
  obs::AppendJsonDouble(&out, total_secs > 0 ? total_events / total_secs : 0);
  out += ",\n  \"sim_bytes_per_sec\": ";
  obs::AppendJsonDouble(&out, total_secs > 0 ? total_bytes / total_secs : 0);
  out += ",\n  \"peak_rss_bytes\": ";
  obs::AppendJsonUint(&out, PeakRssBytes());
  if (!baseline_json.empty()) {
    double base_wall = ExtractNumber(baseline_json, "total_wall_ms");
    double base_rss = ExtractNumber(baseline_json, "peak_rss_bytes");
    out += ",\n  \"baseline_total_wall_ms\": ";
    obs::AppendJsonDouble(&out, base_wall);
    out += ",\n  \"baseline_peak_rss_bytes\": ";
    obs::AppendJsonUint(&out, static_cast<uint64_t>(base_rss));
    out += ",\n  \"speedup\": ";
    obs::AppendJsonDouble(&out, total_wall > 0 ? base_wall / total_wall : 0);
  }
  out += "\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ObsOptions obs_options = ParseObsFlags(argc, argv);
  std::string out_path = "BENCH_selfperf.json";
  std::string sim_out_path;
  std::string baseline_path;
  int chaos_seeds = 5;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--sim-out=", 0) == 0) {
      sim_out_path = arg.substr(10);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--chaos-seeds=", 0) == 0) {
      chaos_seeds = std::atoi(arg.c_str() + 14);
      if (chaos_seeds < 1) chaos_seeds = 1;
    } else if (arg.rfind("--engine=", 0) == 0) {
      g_engine_mode = arg.substr(9);
    } else if (arg.rfind("--pool=", 0) == 0) {
      std::string mode = arg.substr(7);
      if (mode != "flat" && mode != "tiered") {
        std::fprintf(stderr, "unknown --pool=%s (flat|tiered)\n",
                     mode.c_str());
        return 2;
      }
      g_pool_flat = mode == "flat";
    } else if (arg.rfind("--scenarios=", 0) == 0) {
      g_scenarios = arg.substr(12);
    } else if (arg.rfind("--threads=", 0) == 0) {
      g_engine_threads =
          static_cast<unsigned>(std::atoi(arg.c_str() + 10));
    }
  }
  if (g_engine_mode != "legacy" && g_engine_mode != "seq" &&
      g_engine_mode != "par") {
    std::fprintf(stderr, "unknown --engine=%s (legacy|seq|par)\n",
                 g_engine_mode.c_str());
    return 2;
  }

  std::printf("self-perf suite (fast-path data plane, engine=%s, pool=%s)\n\n",
              g_engine_mode.c_str(), g_pool_flat ? "flat" : "tiered");

  std::vector<ScenarioResult> results;
  if (ScenarioEnabled("event_storm")) results.push_back(RunEventStorm());
  if (ScenarioEnabled("table2_spill")) results.push_back(RunTable2Spill());
  if (ScenarioEnabled("fig5_contention")) {
    results.push_back(RunFig5Contention());
  }
  if (ScenarioEnabled("chaos_sweep")) {
    results.push_back(RunChaosSweep(chaos_seeds));
  }
  if (results.empty()) {
    std::fprintf(stderr, "no scenarios matched --scenarios=%s\n",
                 g_scenarios.c_str());
    return 2;
  }

  AsciiTable table({"Scenario", "wall", "events", "Mev/s", "sim bytes",
                    "ok"});
  bool all_ok = true;
  for (const ScenarioResult& r : results) {
    all_ok = all_ok && r.ok;
    double secs = r.wall_ms / 1000.0;
    table.AddRow({r.name, StrFormat("%.0f ms", r.wall_ms),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(r.engine_events)),
                  StrFormat("%.2f",
                            secs > 0 ? r.engine_events / secs / 1e6 : 0.0),
                  FormatBytes(r.sim_bytes), r.ok ? "yes" : "NO"});
  }
  table.Print();
  std::printf("\npeak RSS: %s\n", FormatBytes(PeakRssBytes()).c_str());

  std::string baseline_json;
  if (!baseline_path.empty()) {
    std::FILE* f = std::fopen(baseline_path.c_str(), "r");
    if (f != nullptr) {
      char buf[4096];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        baseline_json.append(buf, n);
      }
      std::fclose(f);
    } else {
      std::fprintf(stderr, "baseline %s unreadable; omitting speedup\n",
                   baseline_path.c_str());
    }
  }
  if (!baseline_json.empty()) {
    double base = ExtractNumber(baseline_json, "total_wall_ms");
    double total = 0;
    for (const ScenarioResult& r : results) total += r.wall_ms;
    if (base > 0 && total > 0) {
      std::printf("speedup vs baseline: %.2fx (%.0f ms -> %.0f ms)\n",
                  base / total, base, total);
    }
  }

  if (!WriteText(out_path, WallJson(results, baseline_json))) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("report written to %s\n", out_path.c_str());
  if (!sim_out_path.empty()) {
    if (!WriteText(sim_out_path, SimJson(results))) {
      std::fprintf(stderr, "failed to write %s\n", sim_out_path.c_str());
      return 1;
    }
    std::printf("sim snapshot written to %s\n", sim_out_path.c_str());
  }
  WriteObsOutputs(obs_options);
  return all_ok ? 0 : 1;
}
