// Datacenter-scale replay: thousands of concurrent skewed jobs from the
// Figure-1 trace synthesizer spilling through SpongeFiles on a multi-rack
// cluster (ISSUE 6 / ROADMAP "datacenter-scale simulation"). Racks sit
// behind a 4:1 oversubscribed core, the memory tracker is sharded per
// rack with gossip-fed cross-rack visibility, and the allocation cascade
// runs every rung (local -> rack-local remote -> cross-rack remote ->
// local SSD -> disk/DFS).
//
// Mid-run, one rack's tracker shard is taken down (a seeded chaos event).
// The acceptance cross-check: only that rack's tasks record tracker-down
// spill decisions — every other rack keeps its remote-memory visibility —
// verified here from the per-rack sponge.spill.reason counters.
//
// Reported per rack: spill-medium breakdown (chunks/bytes incl. the
// cross-rack subset), tracker-shard load (polls, queries, digests merged),
// and core-link utilization (uplink/downlink busy time over the makespan).
//
//   --out=PATH       wall-clock + full report (default BENCH_datacenter.json)
//   --sim-out=PATH   simulated quantities only; byte-identical per seed
//   --racks=N --nodes-per-rack=N --jobs=N --seed=N   scenario shape
//   --ssd-gb=F       per-node SSD capacity in GiB (0 removes the SSD rung;
//                    default 0.015625 = 16 MiB, 2x the per-node sponge)
//   --ssd-bw=N       SSD read+write stream rate in MB/s (0 = defaults)
//   --engine=legacy|seq|par   event-loop driver: the legacy single queue,
//                    the rack-sharded serial schedule, or the rack-sharded
//                    threaded schedule (byte-identical to seq; see
//                    DESIGN.md §13). Replay tasks are homed on their
//                    rack's lane, so par runs the racks concurrently.
//   --threads=N      worker threads for --engine=par (default: host cores)
//   (plus the standard --trace-out= / --metrics-out= observability flags)
//
// The default shape (16 racks x 32 nodes, 1200 jobs) satisfies the
// >=500-node / >=16-rack / >=1k-concurrent-job acceptance bar;
// tools/check.sh runs a small smoke shape under the sanitizers.

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/topology.h"
#include "common/random.h"
#include "obs/json.h"
#include "sim/parallel.h"
#include "sponge/failure.h"
#include "sponge/sponge_file.h"
#include "workload/trace.h"

using namespace spongefiles;
using namespace spongefiles::bench;

namespace {

// Host wall clock in milliseconds. Monotonic, never feeds simulated state.
double WallMs() {
  // lint: det-ok(bench wall-clock measurement; reported separately from sim outputs)
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t.time_since_epoch())
      .count();
}

uint64_t PeakRssBytes() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

// FNV-1a 64 over the deterministic outputs.
struct Digest {
  uint64_t h = 1469598103934665603ull;
  void U64(uint64_t v) {
    const auto* c = reinterpret_cast<const unsigned char*>(&v);
    for (size_t i = 0; i < sizeof(v); ++i) h = (h ^ c[i]) * 1099511628211ull;
  }
};

struct Options {
  size_t racks = 16;
  size_t nodes_per_rack = 32;
  size_t jobs = 1200;
  uint64_t seed = 14;
  size_t max_tasks_per_job = 50;
  // Per-node local SSD for the cascade's middle rung. The default (2x the
  // 8 MiB per-node sponge) leaves the SSD visibly absorbing overflow while
  // concurrent demand still pushes the tail to disk; --ssd-gb=0 removes
  // the rung entirely (the pre-SSD cascade, byte-identical placements).
  uint64_t ssd_bytes = 16ull * 1024 * 1024;  // 2 * kSpongePerNode
  // --ssd-bw=MB/s overrides both the read and write stream rates (0 keeps
  // the SsdConfig defaults: 2 GiB/s read, 1 GiB/s write).
  double ssd_bw_mbps = 0;
  std::string engine_mode = "legacy";  // legacy | seq | par
  unsigned threads = 0;                // 0 = host cores (par only)
  std::string out = "BENCH_datacenter.json";
  std::string sim_out;
};

// Per-task spill demand, scaled down from the trace's reduce-input bytes
// so the replay stays tractable while keeping the Figure-1 skew shape.
constexpr uint64_t kSizeDivisor = 8;
constexpr uint64_t kMinTaskBytes = 256 * 1024;
constexpr uint64_t kMaxTaskBytes = 32ull * 1024 * 1024;
constexpr uint64_t kSpongePerNode = 8ull * 1024 * 1024;
constexpr int64_t kSlotsPerNode = 2;

// Jobs arrive uniformly over this window; spill work queues on node slots
// far past it, which is what makes the replay concurrent.
constexpr SimTime kArrivalStart = Seconds(2);
constexpr SimTime kArrivalWindow = Seconds(60);
// The chaos event: one rack's tracker shard down for a mid-run window.
constexpr SimTime kOutageAt = Seconds(25);
constexpr Duration kOutageDuration = Seconds(30);

struct TaskPlan {
  size_t job = 0;
  size_t index = 0;  // within the job
  size_t node = 0;
  uint64_t bytes = 0;
  SimTime at = 0;
};

struct RackAgg {
  uint64_t tasks = 0;
  uint64_t chunks_local = 0;
  uint64_t chunks_remote_rack_local = 0;
  uint64_t chunks_remote_cross_rack = 0;
  uint64_t chunks_ssd = 0;
  uint64_t chunks_disk = 0;
  uint64_t chunks_dfs = 0;
  uint64_t bytes_local = 0;
  uint64_t bytes_remote_rack_local = 0;
  uint64_t bytes_remote_cross_rack = 0;
  uint64_t bytes_ssd = 0;
  uint64_t bytes_disk = 0;
  uint64_t bytes_dfs = 0;
};

// Job/task progress tallies, striped by lane: a job's tasks are all homed
// on one rack (hence one lane under the rack-sharded engine), so the
// per-job arrays are single-lane by construction, but these cluster-wide
// counters are touched by every lane and must not share cache lines.
// Legacy engine: one entry, identical to the old shared scalars.
struct alignas(64) LaneTally {
  size_t active_jobs = 0;
  size_t peak_jobs = 0;
  size_t tasks_done = 0;
  size_t tasks_failed = 0;
};

struct ReplayState {
  sim::Engine* engine = nullptr;
  sponge::SpongeEnv* env = nullptr;
  std::vector<std::unique_ptr<sim::Semaphore>>* slots = nullptr;
  std::vector<RackAgg>* agg = nullptr;
  std::vector<uint32_t>* job_remaining = nullptr;
  std::vector<uint8_t>* job_started = nullptr;
  std::vector<LaneTally> tally;  // indexed by lane
};

sim::Task<> RunReplayTask(ReplayState* state, size_t job, size_t index,
                          size_t node, uint64_t bytes) {
  // The task never migrates lanes (RPC hops always return home), so its
  // tally stripe is stable across every await below.
  LaneTally& tally = state->tally[state->engine->current_lane()];
  if ((*state->job_started)[job] == 0) {
    (*state->job_started)[job] = 1;
    ++tally.active_jobs;
    tally.peak_jobs = std::max(tally.peak_jobs, tally.active_jobs);
  }
  sim::Semaphore* slot = (*state->slots)[node].get();
  co_await slot->Acquire();
  sponge::SpongeEnv* env = state->env;
  sponge::TaskContext task = env->StartTask(node);
  sponge::SpongeFile file(env, &task,
                          "dc.j" + std::to_string(job) + ".t" +
                              std::to_string(index));
  ByteRuns data;
  data.AppendZeros(bytes);
  Status status = co_await file.Append(std::move(data));
  if (status.ok()) status = co_await file.Close();
  if (status.ok()) {
    const sponge::SpongeFile::Stats& s = file.stats();
    RackAgg& agg = (*state->agg)[env->cluster()->rack_of(node)];
    ++agg.tasks;
    agg.chunks_local += s.chunks_local_memory;
    agg.chunks_remote_rack_local +=
        s.chunks_remote_memory - s.chunks_remote_cross_rack;
    agg.chunks_remote_cross_rack += s.chunks_remote_cross_rack;
    agg.chunks_ssd += s.chunks_local_ssd;
    agg.chunks_disk += s.chunks_local_disk;
    agg.chunks_dfs += s.chunks_dfs;
    agg.bytes_local += s.bytes_local_memory;
    agg.bytes_remote_rack_local +=
        s.bytes_remote_memory - s.bytes_remote_cross_rack;
    agg.bytes_remote_cross_rack += s.bytes_remote_cross_rack;
    agg.bytes_ssd += s.bytes_local_ssd;
    agg.bytes_disk += s.bytes_local_disk;
    agg.bytes_dfs += s.bytes_dfs;
  } else {
    ++tally.tasks_failed;
  }
  co_await file.Delete();
  env->EndTask(task);
  slot->Release();
  if (--(*state->job_remaining)[job] == 0) --tally.active_jobs;
  ++tally.tasks_done;
}

uint64_t TrackerDownCount(size_t rack) {
  return obs::Registry::Default()
      .counter("sponge.spill.reason",
               {{"rack", std::to_string(rack)}, {"reason", "tracker-down"}})
      ->value();
}

struct RunResult {
  // Deterministic.
  size_t num_nodes = 0;
  size_t tasks_total = 0;
  size_t tasks_done = 0;
  size_t tasks_failed = 0;
  // Under the sharded engine this is the sum of per-lane peaks (each
  // rack's tasks stay on one lane): an upper bound on the true cluster
  // peak, equal to it on the legacy engine. Deterministic either way.
  size_t peak_concurrent_jobs = 0;
  SimTime makespan = 0;
  uint64_t engine_events = 0;
  std::vector<uint64_t> per_lane_events;  // [global, rack 0, rack 1, ...]
  uint64_t spill_bytes_total = 0;
  std::vector<RackAgg> agg;
  std::vector<uint64_t> tracker_down;    // per rack
  std::vector<uint64_t> shard_polls;     // per rack
  std::vector<uint64_t> shard_queries;   // per rack
  std::vector<uint64_t> shard_digests;   // per rack
  std::vector<uint64_t> uplink_bytes;    // per rack
  std::vector<uint64_t> downlink_bytes;  // per rack
  std::vector<Duration> uplink_busy;     // per rack
  std::vector<Duration> downlink_busy;   // per rack
  size_t outage_rack = 0;
  bool outage_isolated = false;
  bool ok = false;
  uint64_t digest = 0;
  // Wall clock and host facts (not deterministic; kept out of --sim-out —
  // the seq/par differential gate byte-compares sim snapshots).
  double wall_ms = 0;
  unsigned threads_used = 0;
};

RunResult RunReplay(const Options& options) {
  RunResult result;
  double start_wall = WallMs();

  cluster::TopologyConfig topo;
  topo.num_racks = options.racks;
  topo.nodes_per_rack = options.nodes_per_rack;
  topo.oversubscription = 4.0;
  topo.node.sponge_memory = kSpongePerNode;
  topo.node.ssd.capacity = options.ssd_bytes;
  if (options.ssd_bw_mbps > 0) {
    topo.node.ssd.read_bandwidth = options.ssd_bw_mbps * 1e6;
    topo.node.ssd.write_bandwidth = options.ssd_bw_mbps * 1e6;
  }
  result.num_nodes = topo.num_racks * topo.nodes_per_rack;

  sim::Engine engine;
  cluster::ClusterConfig cc = cluster::MakeClusterConfig(topo);
  // Sharded drivers: one lane per rack plus the global lane. The
  // lookahead is the minimum cross-rack message delay — no event on one
  // rack can affect another sooner than the core's latency, which is what
  // lets a whole window of each rack's events run without coordination.
  std::unique_ptr<sim::Sharding> sharding;
  if (options.engine_mode != "legacy") {
    std::vector<size_t> rack_of;
    rack_of.reserve(result.num_nodes);
    for (size_t i = 0; i < result.num_nodes; ++i) {
      rack_of.push_back(i / options.nodes_per_rack);
    }
    unsigned threads = 0;
    if (options.engine_mode == "par") {
      threads = options.threads > 0 ? options.threads : sim::HostCores();
    }
    result.threads_used = threads;
    sharding = std::make_unique<sim::Sharding>(
        &engine,
        sim::RackShardPlan(rack_of, options.racks,
                           cc.network.latency +
                               cc.network.cross_rack_latency),
        threads);
  }
  cluster::Cluster cluster(&engine, cc);
  cluster::Dfs dfs(&cluster);
  sponge::SpongeConfig sponge_config;
  sponge_config.allow_cross_rack = true;
  sponge::SpongeEnv env(&cluster, &dfs, sponge_config);
  env.tracker().Start();
  env.StartServices();

  // Build the replay plan: per-job reduce-task demands from the Figure-1
  // synthesizer, each job homed on one rack (its tasks round-robin over
  // that rack's nodes) so job-level skew becomes rack-level imbalance.
  workload::TraceConfig trace_config;
  trace_config.num_jobs = options.jobs;
  trace_config.seed = options.seed;
  std::vector<workload::TraceJob> jobs =
      workload::TraceSynthesizer(trace_config).Generate();
  Rng placement_rng(options.seed * 2654435761ull + 1);
  std::vector<TaskPlan> plan;
  std::vector<uint32_t> job_remaining(jobs.size(), 0);
  for (size_t j = 0; j < jobs.size(); ++j) {
    const workload::TraceJob& job = jobs[j];
    size_t home_rack = placement_rng.Uniform(options.racks);
    SimTime arrival =
        kArrivalStart + static_cast<SimTime>(placement_rng.Uniform(
                            static_cast<uint64_t>(kArrivalWindow)));
    size_t num_tasks =
        std::min(job.reduce_input_bytes.size(), options.max_tasks_per_job);
    for (size_t t = 0; t < num_tasks; ++t) {
      uint64_t bytes = static_cast<uint64_t>(job.reduce_input_bytes[t]) /
                       kSizeDivisor;
      bytes = std::clamp(bytes, kMinTaskBytes, kMaxTaskBytes);
      size_t node = home_rack * options.nodes_per_rack +
                    (t % options.nodes_per_rack);
      plan.push_back({j, t, node, bytes, arrival});
      result.spill_bytes_total += bytes;
    }
    job_remaining[j] = static_cast<uint32_t>(num_tasks);
  }
  result.tasks_total = plan.size();

  // The chaos event, seeded through the injector so it lands in the fault
  // schedule like any other (and BitRot-style draws stay reproducible).
  result.outage_rack = options.racks / 2;
  sponge::FailureInjector injector(&env, options.seed);
  injector.ScheduleTrackerShardOutage(result.outage_rack, kOutageAt,
                                      kOutageDuration);

  std::vector<std::unique_ptr<sim::Semaphore>> slots;
  slots.reserve(result.num_nodes);
  for (size_t n = 0; n < result.num_nodes; ++n) {
    slots.push_back(std::make_unique<sim::Semaphore>(&engine, kSlotsPerNode));
  }
  std::vector<RackAgg> agg(options.racks);
  std::vector<uint8_t> job_started(jobs.size(), 0);
  ReplayState state;
  state.engine = &engine;
  state.env = &env;
  state.slots = &slots;
  state.agg = &agg;
  state.job_remaining = &job_remaining;
  state.job_started = &job_started;
  state.tally.resize(engine.lane_count());

  // Home each task on its rack's lane (lane 0 on the legacy engine, where
  // SpawnOnShard from the driver is exactly SpawnAt).
  for (const TaskPlan& task : plan) {
    engine.SpawnOnShard(engine.lane_of_node(task.node), task.at,
                        RunReplayTask(&state, task.job, task.index,
                                      task.node, task.bytes));
  }

  auto tasks_done = [&state] {
    size_t n = 0;
    for (const LaneTally& tally : state.tally) n += tally.tasks_done;
    return n;
  };
  const SimTime deadline = Minutes(24 * 60.0);
  while (tasks_done() < result.tasks_total && engine.now() < deadline) {
    engine.RunUntil(engine.now() + Seconds(10));
  }
  result.makespan = engine.now();
  result.tasks_done = tasks_done();
  for (const LaneTally& tally : state.tally) {
    result.tasks_failed += tally.tasks_failed;
    result.peak_concurrent_jobs += tally.peak_jobs;
  }
  result.engine_events = engine.events_processed();
  for (uint32_t l = 0; l < engine.lane_count(); ++l) {
    result.per_lane_events.push_back(engine.lane_events(l));
  }

  result.agg = agg;
  for (size_t r = 0; r < options.racks; ++r) {
    result.tracker_down.push_back(TrackerDownCount(r));
    result.shard_polls.push_back(env.tracker().shard(r).polls_completed());
    result.shard_queries.push_back(env.tracker().shard(r).queries_served());
    result.shard_digests.push_back(env.tracker().shard(r).digests_merged());
    result.uplink_bytes.push_back(cluster.network().rack_uplink_bytes(r));
    result.downlink_bytes.push_back(cluster.network().rack_downlink_bytes(r));
    result.uplink_busy.push_back(cluster.network().rack_uplink_busy(r));
    result.downlink_busy.push_back(cluster.network().rack_downlink_busy(r));
  }

  // The acceptance cross-check: the outage degraded ONLY its own rack.
  uint64_t elsewhere = 0;
  for (size_t r = 0; r < options.racks; ++r) {
    if (r != result.outage_rack) elsewhere += result.tracker_down[r];
  }
  result.outage_isolated =
      result.tracker_down[result.outage_rack] > 0 && elsewhere == 0;
  result.ok = result.outage_isolated &&
              result.tasks_done == result.tasks_total &&
              result.tasks_failed == 0;

  Digest digest;
  digest.U64(result.tasks_done);
  digest.U64(static_cast<uint64_t>(result.makespan));
  digest.U64(result.engine_events);
  digest.U64(result.peak_concurrent_jobs);
  for (const RackAgg& a : result.agg) {
    digest.U64(a.tasks);
    digest.U64(a.bytes_local);
    digest.U64(a.bytes_remote_rack_local);
    digest.U64(a.bytes_remote_cross_rack);
    digest.U64(a.bytes_ssd);
    digest.U64(a.bytes_disk);
    digest.U64(a.bytes_dfs);
  }
  for (uint64_t v : result.tracker_down) digest.U64(v);
  for (uint64_t v : result.uplink_bytes) digest.U64(v);
  result.digest = digest.h;

  env.StopServices();
  engine.RunUntil(engine.now() + Seconds(30));
  // Reclaim the service loops (shard polls, gossip, GC) while the cluster
  // objects they reference are still alive.
  engine.DrainDetached();

  result.wall_ms = WallMs() - start_wall;
  return result;
}

void AppendRackArray(std::string* out, const char* key,
                     const std::vector<uint64_t>& values) {
  *out += "  \"";
  *out += key;
  *out += "\": [";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) *out += ", ";
    obs::AppendJsonUint(out, values[i]);
  }
  *out += "]";
}

// Simulated quantities only — byte-identical for a fixed seed and shape.
std::string SimJson(const Options& options, const RunResult& r) {
  std::string out = "{\n";
  out += "  \"bench\": \"datacenter\",\n";
  out += "  \"racks\": ";
  obs::AppendJsonUint(&out, options.racks);
  out += ",\n  \"nodes\": ";
  obs::AppendJsonUint(&out, r.num_nodes);
  out += ",\n  \"jobs\": ";
  obs::AppendJsonUint(&out, options.jobs);
  out += ",\n  \"seed\": ";
  obs::AppendJsonUint(&out, options.seed);
  out += ",\n  \"ssd_bytes_per_node\": ";
  obs::AppendJsonUint(&out, options.ssd_bytes);
  out += ",\n  \"tasks_total\": ";
  obs::AppendJsonUint(&out, r.tasks_total);
  out += ",\n  \"tasks_done\": ";
  obs::AppendJsonUint(&out, r.tasks_done);
  out += ",\n  \"tasks_failed\": ";
  obs::AppendJsonUint(&out, r.tasks_failed);
  out += ",\n  \"peak_concurrent_jobs\": ";
  obs::AppendJsonUint(&out, r.peak_concurrent_jobs);
  out += ",\n  \"spill_bytes_total\": ";
  obs::AppendJsonUint(&out, r.spill_bytes_total);
  out += ",\n  \"makespan_us\": ";
  obs::AppendJsonUint(&out, static_cast<uint64_t>(r.makespan));
  out += ",\n  \"engine_events\": ";
  obs::AppendJsonUint(&out, r.engine_events);
  out += ",\n  \"outage_rack\": ";
  obs::AppendJsonUint(&out, r.outage_rack);
  out += ",\n  \"outage_isolated\": ";
  out += r.outage_isolated ? "true" : "false";
  out += ",\n  \"per_rack\": [\n";
  for (size_t i = 0; i < r.agg.size(); ++i) {
    const RackAgg& a = r.agg[i];
    out += "    {\"rack\": ";
    obs::AppendJsonUint(&out, i);
    out += ", \"tasks\": ";
    obs::AppendJsonUint(&out, a.tasks);
    out += ", \"chunks_local\": ";
    obs::AppendJsonUint(&out, a.chunks_local);
    out += ", \"chunks_remote_rack_local\": ";
    obs::AppendJsonUint(&out, a.chunks_remote_rack_local);
    out += ", \"chunks_remote_cross_rack\": ";
    obs::AppendJsonUint(&out, a.chunks_remote_cross_rack);
    out += ", \"chunks_ssd\": ";
    obs::AppendJsonUint(&out, a.chunks_ssd);
    out += ", \"chunks_disk\": ";
    obs::AppendJsonUint(&out, a.chunks_disk);
    out += ", \"chunks_dfs\": ";
    obs::AppendJsonUint(&out, a.chunks_dfs);
    out += ", \"bytes_local\": ";
    obs::AppendJsonUint(&out, a.bytes_local);
    out += ", \"bytes_remote_rack_local\": ";
    obs::AppendJsonUint(&out, a.bytes_remote_rack_local);
    out += ", \"bytes_remote_cross_rack\": ";
    obs::AppendJsonUint(&out, a.bytes_remote_cross_rack);
    out += ", \"bytes_ssd\": ";
    obs::AppendJsonUint(&out, a.bytes_ssd);
    out += ", \"bytes_disk\": ";
    obs::AppendJsonUint(&out, a.bytes_disk);
    out += ", \"bytes_dfs\": ";
    obs::AppendJsonUint(&out, a.bytes_dfs);
    out += "}";
    if (i + 1 < r.agg.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  AppendRackArray(&out, "tracker_down_per_rack", r.tracker_down);
  out += ",\n";
  AppendRackArray(&out, "shard_polls", r.shard_polls);
  out += ",\n";
  AppendRackArray(&out, "shard_queries", r.shard_queries);
  out += ",\n";
  AppendRackArray(&out, "shard_digests_merged", r.shard_digests);
  out += ",\n";
  AppendRackArray(&out, "uplink_bytes", r.uplink_bytes);
  out += ",\n";
  AppendRackArray(&out, "downlink_bytes", r.downlink_bytes);
  out += ",\n";
  // Identical between the seq and par drivers (same windowed schedule);
  // [total] on the legacy engine.
  AppendRackArray(&out, "per_lane_events", r.per_lane_events);
  out += ",\n  \"uplink_utilization\": [";
  for (size_t i = 0; i < r.uplink_busy.size(); ++i) {
    if (i > 0) out += ", ";
    obs::AppendJsonDouble(&out,
                          r.makespan > 0
                              ? static_cast<double>(r.uplink_busy[i]) /
                                    static_cast<double>(r.makespan)
                              : 0.0);
  }
  out += "],\n  \"downlink_utilization\": [";
  for (size_t i = 0; i < r.downlink_busy.size(); ++i) {
    if (i > 0) out += ", ";
    obs::AppendJsonDouble(&out,
                          r.makespan > 0
                              ? static_cast<double>(r.downlink_busy[i]) /
                                    static_cast<double>(r.makespan)
                              : 0.0);
  }
  out += "],\n  \"digest\": ";
  obs::AppendJsonUint(&out, r.digest);
  out += ",\n  \"ok\": ";
  out += r.ok ? "true" : "false";
  out += "\n}\n";
  return out;
}

std::string FullJson(const Options& options, const RunResult& r) {
  std::string sim = SimJson(options, r);
  // Splice the wall-clock section in before the closing brace.
  std::string out = sim.substr(0, sim.rfind("\n}\n"));
  out += ",\n  \"engine\": \"";
  out += options.engine_mode;
  out += "\",\n  \"threads\": ";
  obs::AppendJsonUint(&out, r.threads_used);
  out += ",\n  \"host_cores\": ";
  obs::AppendJsonUint(&out, sim::HostCores());
  out += ",\n  \"wall_ms\": ";
  obs::AppendJsonDouble(&out, r.wall_ms);
  double secs = r.wall_ms / 1000.0;
  out += ",\n  \"events_per_sec\": ";
  obs::AppendJsonDouble(&out,
                        secs > 0 ? static_cast<double>(r.engine_events) / secs
                                 : 0.0);
  out += ",\n  \"peak_rss_bytes\": ";
  obs::AppendJsonUint(&out, PeakRssBytes());
  out += "\n}\n";
  return out;
}

bool WriteText(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  int closed = std::fclose(f);
  return written == text.size() && closed == 0;
}

}  // namespace

int main(int argc, char** argv) {
  ObsOptions obs_options = ParseObsFlags(argc, argv);
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      options.out = arg.substr(6);
    } else if (arg.rfind("--sim-out=", 0) == 0) {
      options.sim_out = arg.substr(10);
    } else if (arg.rfind("--racks=", 0) == 0) {
      options.racks = static_cast<size_t>(std::atoll(arg.c_str() + 8));
    } else if (arg.rfind("--nodes-per-rack=", 0) == 0) {
      options.nodes_per_rack =
          static_cast<size_t>(std::atoll(arg.c_str() + 17));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = static_cast<size_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--ssd-gb=", 0) == 0) {
      options.ssd_bytes = static_cast<uint64_t>(
          std::strtod(arg.c_str() + 9, nullptr) *
          1024.0 * 1024.0 * 1024.0);
    } else if (arg.rfind("--ssd-bw=", 0) == 0) {
      options.ssd_bw_mbps = std::strtod(arg.c_str() + 9, nullptr);
    } else if (arg.rfind("--engine=", 0) == 0) {
      options.engine_mode = arg.substr(9);
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads = static_cast<unsigned>(std::atoll(arg.c_str() + 10));
    }
  }
  if (options.racks < 2 || options.nodes_per_rack < 1 || options.jobs < 1) {
    std::fprintf(stderr, "need --racks>=2, --nodes-per-rack>=1, --jobs>=1\n");
    return 2;
  }
  if (options.engine_mode != "legacy" && options.engine_mode != "seq" &&
      options.engine_mode != "par") {
    std::fprintf(stderr, "--engine must be legacy, seq, or par\n");
    return 2;
  }

  std::printf(
      "datacenter replay: %zu racks x %zu nodes, %zu jobs, seed %llu, "
      "engine %s\n\n",
      options.racks, options.nodes_per_rack, options.jobs,
      static_cast<unsigned long long>(options.seed),
      options.engine_mode.c_str());

  RunResult r = RunReplay(options);

  AsciiTable table({"rack", "tasks", "local", "rack-remote", "cross-rack",
                    "ssd", "disk", "dfs", "uplink util", "queries"});
  for (size_t i = 0; i < r.agg.size(); ++i) {
    const RackAgg& a = r.agg[i];
    double util = r.makespan > 0 ? static_cast<double>(r.uplink_busy[i]) /
                                       static_cast<double>(r.makespan)
                                 : 0.0;
    std::string label = std::to_string(i);
    if (i == r.outage_rack) label += " (outage)";
    table.AddRow({label, StrFormat("%llu", (unsigned long long)a.tasks),
                  FormatBytes(a.bytes_local),
                  FormatBytes(a.bytes_remote_rack_local),
                  FormatBytes(a.bytes_remote_cross_rack),
                  FormatBytes(a.bytes_ssd), FormatBytes(a.bytes_disk),
                  FormatBytes(a.bytes_dfs),
                  StrFormat("%.1f%%", util * 100.0),
                  StrFormat("%llu",
                            (unsigned long long)r.shard_queries[i])});
  }
  table.Print();
  std::printf(
      "\n%zu/%zu tasks, peak %zu concurrent jobs, makespan %s, "
      "%llu engine events\n",
      r.tasks_done, r.tasks_total, r.peak_concurrent_jobs,
      FormatDuration(r.makespan).c_str(),
      static_cast<unsigned long long>(r.engine_events));
  std::printf(
      "tracker-shard outage on rack %zu: tracker-down decisions there %llu, "
      "elsewhere %llu -> %s\n",
      r.outage_rack,
      static_cast<unsigned long long>(r.tracker_down[r.outage_rack]),
      static_cast<unsigned long long>(
          [&] {
            uint64_t sum = 0;
            for (size_t i = 0; i < r.tracker_down.size(); ++i) {
              if (i != r.outage_rack) sum += r.tracker_down[i];
            }
            return sum;
          }()),
      r.outage_isolated ? "isolated to its rack" : "NOT ISOLATED");
  std::printf("wall %.0f ms, %.2f Mev/s\n", r.wall_ms,
              r.wall_ms > 0 ? r.engine_events / r.wall_ms / 1000.0 : 0.0);

  if (!WriteText(options.out, FullJson(options, r))) {
    std::fprintf(stderr, "failed to write %s\n", options.out.c_str());
    return 1;
  }
  std::printf("report written to %s\n", options.out.c_str());
  if (!options.sim_out.empty()) {
    if (!WriteText(options.sim_out, SimJson(options, r))) {
      std::fprintf(stderr, "failed to write %s\n", options.sim_out.c_str());
      return 1;
    }
    std::printf("sim snapshot written to %s\n", options.sim_out.c_str());
  }
  WriteObsOutputs(obs_options);
  return r.ok ? 0 : 1;
}
