#ifndef SPONGEFILES_BENCH_BENCH_UTIL_H_
#define SPONGEFILES_BENCH_BENCH_UTIL_H_

// Shared helpers for the macro-benchmark binaries: each bench reproduces
// one table or figure from the paper (see DESIGN.md's experiment index)
// by running the three evaluation jobs on the simulated 30-node testbed.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "common/table.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/testbed.h"

namespace spongefiles::bench {

// Observability outputs every bench binary supports:
//   --trace-out=PATH    write a Chrome trace_event JSON (open in Perfetto)
//   --metrics-out=PATH  write the metrics registry snapshot as JSON
struct ObsOptions {
  std::string trace_out;
  std::string metrics_out;
};

// Parses the observability flags (other arguments are ignored, so benches
// can layer their own) and enables tracing when a trace path was given.
inline ObsOptions ParseObsFlags(int argc, char** argv) {
  ObsOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      options.trace_out = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      options.metrics_out = arg.substr(14);
    }
  }
  if (!options.trace_out.empty()) {
    obs::Tracer::Default().set_enabled(true);
  }
  return options;
}

// Writes whichever outputs were requested; call once, after the runs.
// A failed artifact write exits nonzero: a bench invoked for its telemetry
// must not report success while silently dropping it.
inline void WriteObsOutputs(const ObsOptions& options) {
  if (!options.trace_out.empty()) {
    Status written = obs::Tracer::Default().WriteFile(options.trace_out);
    if (written.ok()) {
      std::printf("\ntrace written to %s (%zu events)\n",
                  options.trace_out.c_str(),
                  obs::Tracer::Default().event_count());
    } else {
      std::fprintf(stderr, "trace write failed: %s\n",
                   written.ToString().c_str());
      std::exit(1);
    }
  }
  if (!options.metrics_out.empty()) {
    Status written =
        obs::Registry::Default().WriteJsonFile(options.metrics_out);
    if (written.ok()) {
      std::printf("metrics written to %s (%zu instruments)\n",
                  options.metrics_out.c_str(),
                  obs::Registry::Default().size());
    } else {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   written.ToString().c_str());
      std::exit(1);
    }
  }
}

// Full paper scale by default; SPONGE_BENCH_SCALE=N divides dataset sizes
// by N for quick runs (shapes hold, absolute numbers shrink).
inline uint64_t ScaleDivisor() {
  // lint: det-ok(bench scale knob, read once at startup before any simulated activity)
  const char* env = std::getenv("SPONGE_BENCH_SCALE");
  if (env == nullptr) return 1;
  uint64_t n = std::strtoull(env, nullptr, 10);
  return n == 0 ? 1 : n;
}

inline uint64_t WebBytes() { return GiB(10) / ScaleDivisor(); }
inline uint64_t MedianCount() { return 1000001 / ScaleDivisor(); }
inline uint64_t GrepBytes() { return 4ull * GiB(1024) / ScaleDivisor(); }

enum class MacroJob { kMedian, kAnchortext, kSpamQuantiles };

inline const char* MacroJobName(MacroJob job) {
  switch (job) {
    case MacroJob::kMedian:
      return "Median";
    case MacroJob::kAnchortext:
      return "Frequent Anchortext";
    case MacroJob::kSpamQuantiles:
      return "Spam Quantiles";
  }
  return "?";
}

struct MacroRun {
  Duration runtime = 0;
  mapred::TaskStats straggler;
  bool correct = false;  // job-specific answer check
  std::vector<mapred::TaskStats> background_tasks;
  // Spill accounting summed over every map and reduce task of the job
  // (what the global metrics registry should agree with).
  mapred::SpillStats total_spill;
  // Engine accounting for the whole run (self-perf suite: events/sec and
  // simulated time are read off the testbed before it is torn down).
  uint64_t engine_events = 0;
  SimTime sim_now = 0;
  // Events per engine lane ([total] on the legacy single-queue engine).
  // Identical between the serial and threaded sharded drivers.
  std::vector<uint64_t> lane_events;
};

struct MacroOptions {
  uint64_t node_memory = GiB(16);
  uint64_t heap_per_slot = GiB(1);
  uint64_t sponge_memory = GiB(1);
  bool background_grep = false;
  sponge::SpongeConfig sponge;
  // Overrides for the Figure 6 configurations.
  bool no_spill = false;  // heap sized to fit everything in memory
  // Explicit dataset sizes (0 = the paper-scale defaults divided by
  // SPONGE_BENCH_SCALE). bench_selfperf pins these so its fixed suite is
  // identical regardless of environment.
  uint64_t web_bytes = 0;
  uint64_t median_count = 0;
  uint64_t grep_bytes = 0;
  // Engine sharding for the testbed (the benches' --engine flags; see
  // workload/testbed.h). kNone keeps the legacy single-queue engine.
  workload::ShardProjection shard_projection = workload::ShardProjection::kNone;
  unsigned shard_threads = 0;
  // Sponge pool shape (size classes / flat baseline) and the optional
  // per-node SSD rung (capacity 0 = no SSD).
  sponge::ChunkPoolConfig pool;
  cluster::SsdConfig ssd;
};

// Runs one macro job in one configuration on a fresh testbed.
inline MacroRun RunMacro(MacroJob job, mapred::SpillMode mode,
                         const MacroOptions& options) {
  workload::TestbedConfig bed_config;
  bed_config.node_memory = options.node_memory;
  bed_config.heap_per_slot = options.heap_per_slot;
  bed_config.sponge_memory = options.sponge_memory;
  bed_config.sponge = options.sponge;
  bed_config.shard_projection = options.shard_projection;
  bed_config.shard_threads = options.shard_threads;
  bed_config.pool = options.pool;
  bed_config.ssd = options.ssd;
  workload::Testbed bed(bed_config);

  std::unique_ptr<workload::WebDataset> web;
  std::unique_ptr<workload::NumbersDataset> numbers;
  mapred::JobConfig config;
  if (job == MacroJob::kMedian) {
    workload::NumbersDatasetConfig data;
    data.count = options.median_count != 0 ? options.median_count
                                           : MedianCount();
    numbers = std::make_unique<workload::NumbersDataset>(&bed.dfs(),
                                                         "numbers", data);
    config = workload::MakeMedianJob(numbers.get(), mode);
  } else {
    workload::WebDatasetConfig data;
    data.total_bytes = options.web_bytes != 0 ? options.web_bytes
                                              : WebBytes();
    web = std::make_unique<workload::WebDataset>(&bed.dfs(), "web", data);
    config = job == MacroJob::kAnchortext
                 ? workload::MakeAnchortextJob(web.get(), mode)
                 : workload::MakeSpamQuantilesJob(web.get(), mode);
  }
  if (options.no_spill) {
    // Figure 6's "no spilling" configuration: the reduce JVM gets a 12 GB
    // heap so the shuffle buffer holds the whole input and nothing is
    // ever written out. Only the reduce heap grows (the paper's setup);
    // map slots and the rest of the memory layout stay stock.
    config.reduce_heap_bytes = GiB(12);
    config.shuffle_buffer_fraction = 0.95;
    config.reduce_retain_fraction = 1.0;
  }

  std::optional<mapred::JobConfig> background;
  std::unique_ptr<workload::ScanDataset> grep_data;
  if (options.background_grep) {
    grep_data = std::make_unique<workload::ScanDataset>(
        &bed.dfs(), "grepdata",
        options.grep_bytes != 0 ? options.grep_bytes : GrepBytes());
    background = workload::MakeGrepJob(grep_data.get(), nullptr);
  }

  MacroRun run;
  auto result = bed.RunJob(std::move(config), std::move(background),
                           &run.background_tasks);
  run.engine_events = bed.engine().events_processed();
  run.sim_now = bed.engine().now();
  for (uint32_t l = 0; l < bed.engine().lane_count(); ++l) {
    run.lane_events.push_back(bed.engine().lane_events(l));
  }
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", MacroJobName(job),
                 result.status().ToString().c_str());
    return run;
  }
  run.runtime = result->runtime;
  run.straggler = *result->straggler();
  for (const auto& task : result->map_tasks) run.total_spill.Add(task.spill);
  for (const auto& task : result->reduce_tasks) {
    run.total_spill.Add(task.spill);
  }
  switch (job) {
    case MacroJob::kMedian:
      run.correct = result->output.size() == 1 &&
                    result->output[0].number == numbers->expected_median();
      break;
    case MacroJob::kAnchortext:
      // The giant group must report k terms led by the most popular one.
      run.correct = false;
      for (const auto& row : result->output) {
        if (row.key == "english" && row.fields[0] == "term0") {
          run.correct = true;
        }
      }
      break;
    case MacroJob::kSpamQuantiles: {
      run.correct = false;
      std::string giant = workload::WebDataset::DomainName(0);
      for (const auto& row : result->output) {
        if (row.key == giant && row.fields[0] == "q50" &&
            row.number > 0.45 && row.number < 0.55) {
          run.correct = true;
        }
      }
      break;
    }
  }
  return run;
}

inline std::string Pct(double from, double to) {
  return StrFormat("%.0f%%", 100.0 * (1.0 - to / from));
}

}  // namespace spongefiles::bench

#endif  // SPONGEFILES_BENCH_BENCH_UTIL_H_
