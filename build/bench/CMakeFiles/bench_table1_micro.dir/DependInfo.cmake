
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_micro.cc" "bench/CMakeFiles/bench_table1_micro.dir/bench_table1_micro.cc.o" "gcc" "bench/CMakeFiles/bench_table1_micro.dir/bench_table1_micro.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/sponge_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pig/CMakeFiles/sponge_pig.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/sponge_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/sponge/CMakeFiles/sponge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sponge_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sponge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sponge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
