file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_micro.dir/bench_table1_micro.cc.o"
  "CMakeFiles/bench_table1_micro.dir/bench_table1_micro.cc.o.d"
  "bench_table1_micro"
  "bench_table1_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
