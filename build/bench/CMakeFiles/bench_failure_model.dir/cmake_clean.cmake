file(REMOVE_RECURSE
  "CMakeFiles/bench_failure_model.dir/bench_failure_model.cc.o"
  "CMakeFiles/bench_failure_model.dir/bench_failure_model.cc.o.d"
  "bench_failure_model"
  "bench_failure_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failure_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
