# Empty compiler generated dependencies file for bench_failure_model.
# This may be replaced when dependencies are built.
