# Empty compiler generated dependencies file for bench_table2_spill_stats.
# This may be replaced when dependencies are built.
