# Empty compiler generated dependencies file for bench_fig1_skew_cdfs.
# This may be replaced when dependencies are built.
