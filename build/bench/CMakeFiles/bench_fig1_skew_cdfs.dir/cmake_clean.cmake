file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_skew_cdfs.dir/bench_fig1_skew_cdfs.cc.o"
  "CMakeFiles/bench_fig1_skew_cdfs.dir/bench_fig1_skew_cdfs.cc.o.d"
  "bench_fig1_skew_cdfs"
  "bench_fig1_skew_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_skew_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
