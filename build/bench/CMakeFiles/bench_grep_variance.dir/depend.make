# Empty dependencies file for bench_grep_variance.
# This may be replaced when dependencies are built.
