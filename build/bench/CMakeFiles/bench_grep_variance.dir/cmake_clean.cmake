file(REMOVE_RECURSE
  "CMakeFiles/bench_grep_variance.dir/bench_grep_variance.cc.o"
  "CMakeFiles/bench_grep_variance.dir/bench_grep_variance.cc.o.d"
  "bench_grep_variance"
  "bench_grep_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grep_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
