file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_contention.dir/bench_fig5_contention.cc.o"
  "CMakeFiles/bench_fig5_contention.dir/bench_fig5_contention.cc.o.d"
  "bench_fig5_contention"
  "bench_fig5_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
