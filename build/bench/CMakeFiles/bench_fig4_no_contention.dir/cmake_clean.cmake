file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_no_contention.dir/bench_fig4_no_contention.cc.o"
  "CMakeFiles/bench_fig4_no_contention.dir/bench_fig4_no_contention.cc.o.d"
  "bench_fig4_no_contention"
  "bench_fig4_no_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_no_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
