# Empty compiler generated dependencies file for bench_fig4_no_contention.
# This may be replaced when dependencies are built.
