# Empty dependencies file for bench_remote_paging.
# This may be replaced when dependencies are built.
