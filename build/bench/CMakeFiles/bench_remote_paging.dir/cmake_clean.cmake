file(REMOVE_RECURSE
  "CMakeFiles/bench_remote_paging.dir/bench_remote_paging.cc.o"
  "CMakeFiles/bench_remote_paging.dir/bench_remote_paging.cc.o.d"
  "bench_remote_paging"
  "bench_remote_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_remote_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
