file(REMOVE_RECURSE
  "CMakeFiles/bench_sponge_sizing.dir/bench_sponge_sizing.cc.o"
  "CMakeFiles/bench_sponge_sizing.dir/bench_sponge_sizing.cc.o.d"
  "bench_sponge_sizing"
  "bench_sponge_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sponge_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
