# Empty compiler generated dependencies file for bench_sponge_sizing.
# This may be replaced when dependencies are built.
