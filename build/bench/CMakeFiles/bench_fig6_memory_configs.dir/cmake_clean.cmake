file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_memory_configs.dir/bench_fig6_memory_configs.cc.o"
  "CMakeFiles/bench_fig6_memory_configs.dir/bench_fig6_memory_configs.cc.o.d"
  "bench_fig6_memory_configs"
  "bench_fig6_memory_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_memory_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
