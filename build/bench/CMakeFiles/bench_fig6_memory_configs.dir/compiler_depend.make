# Empty compiler generated dependencies file for bench_fig6_memory_configs.
# This may be replaced when dependencies are built.
