# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_status_test[1]_include.cmake")
include("/root/repo/build/tests/common_byte_runs_test[1]_include.cmake")
include("/root/repo/build/tests/common_random_test[1]_include.cmake")
include("/root/repo/build/tests/common_stats_test[1]_include.cmake")
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_sync_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_disk_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_buffer_cache_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_network_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_fs_test[1]_include.cmake")
include("/root/repo/build/tests/sponge_pool_test[1]_include.cmake")
include("/root/repo/build/tests/sponge_file_test[1]_include.cmake")
include("/root/repo/build/tests/sponge_services_test[1]_include.cmake")
include("/root/repo/build/tests/mapred_record_test[1]_include.cmake")
include("/root/repo/build/tests/mapred_spill_merge_test[1]_include.cmake")
include("/root/repo/build/tests/mapred_job_test[1]_include.cmake")
include("/root/repo/build/tests/pig_bag_test[1]_include.cmake")
include("/root/repo/build/tests/pig_query_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/common_crypto_test[1]_include.cmake")
include("/root/repo/build/tests/sponge_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/mapred_map_task_test[1]_include.cmake")
include("/root/repo/build/tests/workload_jobs_test[1]_include.cmake")
include("/root/repo/build/tests/mapred_scheduler_test[1]_include.cmake")
