file(REMOVE_RECURSE
  "CMakeFiles/cluster_disk_test.dir/cluster_disk_test.cc.o"
  "CMakeFiles/cluster_disk_test.dir/cluster_disk_test.cc.o.d"
  "cluster_disk_test"
  "cluster_disk_test.pdb"
  "cluster_disk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
