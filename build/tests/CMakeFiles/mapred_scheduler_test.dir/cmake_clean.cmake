file(REMOVE_RECURSE
  "CMakeFiles/mapred_scheduler_test.dir/mapred_scheduler_test.cc.o"
  "CMakeFiles/mapred_scheduler_test.dir/mapred_scheduler_test.cc.o.d"
  "mapred_scheduler_test"
  "mapred_scheduler_test.pdb"
  "mapred_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapred_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
