# Empty compiler generated dependencies file for mapred_scheduler_test.
# This may be replaced when dependencies are built.
