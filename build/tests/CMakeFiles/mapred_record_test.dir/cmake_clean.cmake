file(REMOVE_RECURSE
  "CMakeFiles/mapred_record_test.dir/mapred_record_test.cc.o"
  "CMakeFiles/mapred_record_test.dir/mapred_record_test.cc.o.d"
  "mapred_record_test"
  "mapred_record_test.pdb"
  "mapred_record_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapred_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
