# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mapred_record_test.
