# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mapred_spill_merge_test.
