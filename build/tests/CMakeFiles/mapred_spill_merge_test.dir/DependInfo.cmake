
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mapred_spill_merge_test.cc" "tests/CMakeFiles/mapred_spill_merge_test.dir/mapred_spill_merge_test.cc.o" "gcc" "tests/CMakeFiles/mapred_spill_merge_test.dir/mapred_spill_merge_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapred/CMakeFiles/sponge_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/sponge/CMakeFiles/sponge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sponge_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sponge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sponge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
