# Empty compiler generated dependencies file for mapred_spill_merge_test.
# This may be replaced when dependencies are built.
