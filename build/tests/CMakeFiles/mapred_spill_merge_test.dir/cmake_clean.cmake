file(REMOVE_RECURSE
  "CMakeFiles/mapred_spill_merge_test.dir/mapred_spill_merge_test.cc.o"
  "CMakeFiles/mapred_spill_merge_test.dir/mapred_spill_merge_test.cc.o.d"
  "mapred_spill_merge_test"
  "mapred_spill_merge_test.pdb"
  "mapred_spill_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapred_spill_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
