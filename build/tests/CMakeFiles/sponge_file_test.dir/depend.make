# Empty dependencies file for sponge_file_test.
# This may be replaced when dependencies are built.
