file(REMOVE_RECURSE
  "CMakeFiles/sponge_file_test.dir/sponge_file_test.cc.o"
  "CMakeFiles/sponge_file_test.dir/sponge_file_test.cc.o.d"
  "sponge_file_test"
  "sponge_file_test.pdb"
  "sponge_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sponge_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
