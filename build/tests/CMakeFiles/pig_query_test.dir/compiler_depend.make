# Empty compiler generated dependencies file for pig_query_test.
# This may be replaced when dependencies are built.
