file(REMOVE_RECURSE
  "CMakeFiles/pig_query_test.dir/pig_query_test.cc.o"
  "CMakeFiles/pig_query_test.dir/pig_query_test.cc.o.d"
  "pig_query_test"
  "pig_query_test.pdb"
  "pig_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pig_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
