# Empty dependencies file for sponge_services_test.
# This may be replaced when dependencies are built.
