file(REMOVE_RECURSE
  "CMakeFiles/sponge_services_test.dir/sponge_services_test.cc.o"
  "CMakeFiles/sponge_services_test.dir/sponge_services_test.cc.o.d"
  "sponge_services_test"
  "sponge_services_test.pdb"
  "sponge_services_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sponge_services_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
