file(REMOVE_RECURSE
  "CMakeFiles/sponge_pool_test.dir/sponge_pool_test.cc.o"
  "CMakeFiles/sponge_pool_test.dir/sponge_pool_test.cc.o.d"
  "sponge_pool_test"
  "sponge_pool_test.pdb"
  "sponge_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sponge_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
