# Empty dependencies file for sponge_pool_test.
# This may be replaced when dependencies are built.
