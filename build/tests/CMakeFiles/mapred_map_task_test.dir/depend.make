# Empty dependencies file for mapred_map_task_test.
# This may be replaced when dependencies are built.
