file(REMOVE_RECURSE
  "CMakeFiles/mapred_map_task_test.dir/mapred_map_task_test.cc.o"
  "CMakeFiles/mapred_map_task_test.dir/mapred_map_task_test.cc.o.d"
  "mapred_map_task_test"
  "mapred_map_task_test.pdb"
  "mapred_map_task_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapred_map_task_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
