# Empty dependencies file for sim_engine_test.
# This may be replaced when dependencies are built.
