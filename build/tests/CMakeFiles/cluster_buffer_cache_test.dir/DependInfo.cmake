
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster_buffer_cache_test.cc" "tests/CMakeFiles/cluster_buffer_cache_test.dir/cluster_buffer_cache_test.cc.o" "gcc" "tests/CMakeFiles/cluster_buffer_cache_test.dir/cluster_buffer_cache_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/sponge_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sponge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sponge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
