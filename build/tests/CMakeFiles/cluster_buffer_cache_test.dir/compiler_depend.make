# Empty compiler generated dependencies file for cluster_buffer_cache_test.
# This may be replaced when dependencies are built.
