file(REMOVE_RECURSE
  "CMakeFiles/cluster_buffer_cache_test.dir/cluster_buffer_cache_test.cc.o"
  "CMakeFiles/cluster_buffer_cache_test.dir/cluster_buffer_cache_test.cc.o.d"
  "cluster_buffer_cache_test"
  "cluster_buffer_cache_test.pdb"
  "cluster_buffer_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_buffer_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
