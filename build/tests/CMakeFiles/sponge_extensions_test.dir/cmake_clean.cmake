file(REMOVE_RECURSE
  "CMakeFiles/sponge_extensions_test.dir/sponge_extensions_test.cc.o"
  "CMakeFiles/sponge_extensions_test.dir/sponge_extensions_test.cc.o.d"
  "sponge_extensions_test"
  "sponge_extensions_test.pdb"
  "sponge_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sponge_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
