# Empty dependencies file for sponge_extensions_test.
# This may be replaced when dependencies are built.
