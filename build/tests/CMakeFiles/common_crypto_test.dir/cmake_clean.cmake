file(REMOVE_RECURSE
  "CMakeFiles/common_crypto_test.dir/common_crypto_test.cc.o"
  "CMakeFiles/common_crypto_test.dir/common_crypto_test.cc.o.d"
  "common_crypto_test"
  "common_crypto_test.pdb"
  "common_crypto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
