# Empty dependencies file for common_crypto_test.
# This may be replaced when dependencies are built.
