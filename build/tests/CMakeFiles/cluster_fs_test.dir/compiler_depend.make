# Empty compiler generated dependencies file for cluster_fs_test.
# This may be replaced when dependencies are built.
