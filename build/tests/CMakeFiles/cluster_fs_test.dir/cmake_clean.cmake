file(REMOVE_RECURSE
  "CMakeFiles/cluster_fs_test.dir/cluster_fs_test.cc.o"
  "CMakeFiles/cluster_fs_test.dir/cluster_fs_test.cc.o.d"
  "cluster_fs_test"
  "cluster_fs_test.pdb"
  "cluster_fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
