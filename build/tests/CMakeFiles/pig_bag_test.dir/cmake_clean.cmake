file(REMOVE_RECURSE
  "CMakeFiles/pig_bag_test.dir/pig_bag_test.cc.o"
  "CMakeFiles/pig_bag_test.dir/pig_bag_test.cc.o.d"
  "pig_bag_test"
  "pig_bag_test.pdb"
  "pig_bag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pig_bag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
