# Empty compiler generated dependencies file for pig_bag_test.
# This may be replaced when dependencies are built.
