# Empty compiler generated dependencies file for common_byte_runs_test.
# This may be replaced when dependencies are built.
