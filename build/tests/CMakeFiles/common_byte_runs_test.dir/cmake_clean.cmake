file(REMOVE_RECURSE
  "CMakeFiles/common_byte_runs_test.dir/common_byte_runs_test.cc.o"
  "CMakeFiles/common_byte_runs_test.dir/common_byte_runs_test.cc.o.d"
  "common_byte_runs_test"
  "common_byte_runs_test.pdb"
  "common_byte_runs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_byte_runs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
