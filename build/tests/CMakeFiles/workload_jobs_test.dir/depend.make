# Empty dependencies file for workload_jobs_test.
# This may be replaced when dependencies are built.
