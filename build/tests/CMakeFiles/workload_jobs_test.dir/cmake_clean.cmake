file(REMOVE_RECURSE
  "CMakeFiles/workload_jobs_test.dir/workload_jobs_test.cc.o"
  "CMakeFiles/workload_jobs_test.dir/workload_jobs_test.cc.o.d"
  "workload_jobs_test"
  "workload_jobs_test.pdb"
  "workload_jobs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_jobs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
