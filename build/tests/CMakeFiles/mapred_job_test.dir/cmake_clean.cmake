file(REMOVE_RECURSE
  "CMakeFiles/mapred_job_test.dir/mapred_job_test.cc.o"
  "CMakeFiles/mapred_job_test.dir/mapred_job_test.cc.o.d"
  "mapred_job_test"
  "mapred_job_test.pdb"
  "mapred_job_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapred_job_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
