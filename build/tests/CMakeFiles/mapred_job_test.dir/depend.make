# Empty dependencies file for mapred_job_test.
# This may be replaced when dependencies are built.
