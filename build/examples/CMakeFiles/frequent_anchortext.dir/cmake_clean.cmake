file(REMOVE_RECURSE
  "CMakeFiles/frequent_anchortext.dir/frequent_anchortext.cpp.o"
  "CMakeFiles/frequent_anchortext.dir/frequent_anchortext.cpp.o.d"
  "frequent_anchortext"
  "frequent_anchortext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequent_anchortext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
