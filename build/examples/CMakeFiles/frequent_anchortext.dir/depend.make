# Empty dependencies file for frequent_anchortext.
# This may be replaced when dependencies are built.
