file(REMOVE_RECURSE
  "CMakeFiles/spam_quantiles.dir/spam_quantiles.cpp.o"
  "CMakeFiles/spam_quantiles.dir/spam_quantiles.cpp.o.d"
  "spam_quantiles"
  "spam_quantiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_quantiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
