# Empty dependencies file for spam_quantiles.
# This may be replaced when dependencies are built.
