# Empty compiler generated dependencies file for median_job.
# This may be replaced when dependencies are built.
