file(REMOVE_RECURSE
  "CMakeFiles/median_job.dir/median_job.cpp.o"
  "CMakeFiles/median_job.dir/median_job.cpp.o.d"
  "median_job"
  "median_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/median_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
