
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sponge/chunk_pool.cc" "src/sponge/CMakeFiles/sponge_core.dir/chunk_pool.cc.o" "gcc" "src/sponge/CMakeFiles/sponge_core.dir/chunk_pool.cc.o.d"
  "/root/repo/src/sponge/failure.cc" "src/sponge/CMakeFiles/sponge_core.dir/failure.cc.o" "gcc" "src/sponge/CMakeFiles/sponge_core.dir/failure.cc.o.d"
  "/root/repo/src/sponge/memory_tracker.cc" "src/sponge/CMakeFiles/sponge_core.dir/memory_tracker.cc.o" "gcc" "src/sponge/CMakeFiles/sponge_core.dir/memory_tracker.cc.o.d"
  "/root/repo/src/sponge/sponge_env.cc" "src/sponge/CMakeFiles/sponge_core.dir/sponge_env.cc.o" "gcc" "src/sponge/CMakeFiles/sponge_core.dir/sponge_env.cc.o.d"
  "/root/repo/src/sponge/sponge_file.cc" "src/sponge/CMakeFiles/sponge_core.dir/sponge_file.cc.o" "gcc" "src/sponge/CMakeFiles/sponge_core.dir/sponge_file.cc.o.d"
  "/root/repo/src/sponge/sponge_server.cc" "src/sponge/CMakeFiles/sponge_core.dir/sponge_server.cc.o" "gcc" "src/sponge/CMakeFiles/sponge_core.dir/sponge_server.cc.o.d"
  "/root/repo/src/sponge/task_registry.cc" "src/sponge/CMakeFiles/sponge_core.dir/task_registry.cc.o" "gcc" "src/sponge/CMakeFiles/sponge_core.dir/task_registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/sponge_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sponge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sponge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
