file(REMOVE_RECURSE
  "CMakeFiles/sponge_core.dir/chunk_pool.cc.o"
  "CMakeFiles/sponge_core.dir/chunk_pool.cc.o.d"
  "CMakeFiles/sponge_core.dir/failure.cc.o"
  "CMakeFiles/sponge_core.dir/failure.cc.o.d"
  "CMakeFiles/sponge_core.dir/memory_tracker.cc.o"
  "CMakeFiles/sponge_core.dir/memory_tracker.cc.o.d"
  "CMakeFiles/sponge_core.dir/sponge_env.cc.o"
  "CMakeFiles/sponge_core.dir/sponge_env.cc.o.d"
  "CMakeFiles/sponge_core.dir/sponge_file.cc.o"
  "CMakeFiles/sponge_core.dir/sponge_file.cc.o.d"
  "CMakeFiles/sponge_core.dir/sponge_server.cc.o"
  "CMakeFiles/sponge_core.dir/sponge_server.cc.o.d"
  "CMakeFiles/sponge_core.dir/task_registry.cc.o"
  "CMakeFiles/sponge_core.dir/task_registry.cc.o.d"
  "libsponge_core.a"
  "libsponge_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sponge_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
