# Empty compiler generated dependencies file for sponge_core.
# This may be replaced when dependencies are built.
