file(REMOVE_RECURSE
  "libsponge_core.a"
)
