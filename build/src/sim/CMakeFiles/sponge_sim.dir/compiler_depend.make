# Empty compiler generated dependencies file for sponge_sim.
# This may be replaced when dependencies are built.
