file(REMOVE_RECURSE
  "CMakeFiles/sponge_sim.dir/engine.cc.o"
  "CMakeFiles/sponge_sim.dir/engine.cc.o.d"
  "CMakeFiles/sponge_sim.dir/sync.cc.o"
  "CMakeFiles/sponge_sim.dir/sync.cc.o.d"
  "libsponge_sim.a"
  "libsponge_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sponge_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
