file(REMOVE_RECURSE
  "libsponge_sim.a"
)
