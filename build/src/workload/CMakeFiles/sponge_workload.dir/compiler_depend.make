# Empty compiler generated dependencies file for sponge_workload.
# This may be replaced when dependencies are built.
