file(REMOVE_RECURSE
  "CMakeFiles/sponge_workload.dir/jobs.cc.o"
  "CMakeFiles/sponge_workload.dir/jobs.cc.o.d"
  "CMakeFiles/sponge_workload.dir/testbed.cc.o"
  "CMakeFiles/sponge_workload.dir/testbed.cc.o.d"
  "CMakeFiles/sponge_workload.dir/trace.cc.o"
  "CMakeFiles/sponge_workload.dir/trace.cc.o.d"
  "CMakeFiles/sponge_workload.dir/webdata.cc.o"
  "CMakeFiles/sponge_workload.dir/webdata.cc.o.d"
  "libsponge_workload.a"
  "libsponge_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sponge_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
