file(REMOVE_RECURSE
  "libsponge_workload.a"
)
