file(REMOVE_RECURSE
  "libsponge_cluster.a"
)
