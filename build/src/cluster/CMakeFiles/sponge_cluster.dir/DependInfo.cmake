
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/buffer_cache.cc" "src/cluster/CMakeFiles/sponge_cluster.dir/buffer_cache.cc.o" "gcc" "src/cluster/CMakeFiles/sponge_cluster.dir/buffer_cache.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/cluster/CMakeFiles/sponge_cluster.dir/cluster.cc.o" "gcc" "src/cluster/CMakeFiles/sponge_cluster.dir/cluster.cc.o.d"
  "/root/repo/src/cluster/dfs.cc" "src/cluster/CMakeFiles/sponge_cluster.dir/dfs.cc.o" "gcc" "src/cluster/CMakeFiles/sponge_cluster.dir/dfs.cc.o.d"
  "/root/repo/src/cluster/disk.cc" "src/cluster/CMakeFiles/sponge_cluster.dir/disk.cc.o" "gcc" "src/cluster/CMakeFiles/sponge_cluster.dir/disk.cc.o.d"
  "/root/repo/src/cluster/local_fs.cc" "src/cluster/CMakeFiles/sponge_cluster.dir/local_fs.cc.o" "gcc" "src/cluster/CMakeFiles/sponge_cluster.dir/local_fs.cc.o.d"
  "/root/repo/src/cluster/network.cc" "src/cluster/CMakeFiles/sponge_cluster.dir/network.cc.o" "gcc" "src/cluster/CMakeFiles/sponge_cluster.dir/network.cc.o.d"
  "/root/repo/src/cluster/node.cc" "src/cluster/CMakeFiles/sponge_cluster.dir/node.cc.o" "gcc" "src/cluster/CMakeFiles/sponge_cluster.dir/node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sponge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sponge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
