file(REMOVE_RECURSE
  "CMakeFiles/sponge_cluster.dir/buffer_cache.cc.o"
  "CMakeFiles/sponge_cluster.dir/buffer_cache.cc.o.d"
  "CMakeFiles/sponge_cluster.dir/cluster.cc.o"
  "CMakeFiles/sponge_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/sponge_cluster.dir/dfs.cc.o"
  "CMakeFiles/sponge_cluster.dir/dfs.cc.o.d"
  "CMakeFiles/sponge_cluster.dir/disk.cc.o"
  "CMakeFiles/sponge_cluster.dir/disk.cc.o.d"
  "CMakeFiles/sponge_cluster.dir/local_fs.cc.o"
  "CMakeFiles/sponge_cluster.dir/local_fs.cc.o.d"
  "CMakeFiles/sponge_cluster.dir/network.cc.o"
  "CMakeFiles/sponge_cluster.dir/network.cc.o.d"
  "CMakeFiles/sponge_cluster.dir/node.cc.o"
  "CMakeFiles/sponge_cluster.dir/node.cc.o.d"
  "libsponge_cluster.a"
  "libsponge_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sponge_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
