# Empty compiler generated dependencies file for sponge_cluster.
# This may be replaced when dependencies are built.
