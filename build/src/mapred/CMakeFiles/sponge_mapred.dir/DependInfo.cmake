
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapred/job.cc" "src/mapred/CMakeFiles/sponge_mapred.dir/job.cc.o" "gcc" "src/mapred/CMakeFiles/sponge_mapred.dir/job.cc.o.d"
  "/root/repo/src/mapred/job_tracker.cc" "src/mapred/CMakeFiles/sponge_mapred.dir/job_tracker.cc.o" "gcc" "src/mapred/CMakeFiles/sponge_mapred.dir/job_tracker.cc.o.d"
  "/root/repo/src/mapred/map_task.cc" "src/mapred/CMakeFiles/sponge_mapred.dir/map_task.cc.o" "gcc" "src/mapred/CMakeFiles/sponge_mapred.dir/map_task.cc.o.d"
  "/root/repo/src/mapred/merger.cc" "src/mapred/CMakeFiles/sponge_mapred.dir/merger.cc.o" "gcc" "src/mapred/CMakeFiles/sponge_mapred.dir/merger.cc.o.d"
  "/root/repo/src/mapred/record.cc" "src/mapred/CMakeFiles/sponge_mapred.dir/record.cc.o" "gcc" "src/mapred/CMakeFiles/sponge_mapred.dir/record.cc.o.d"
  "/root/repo/src/mapred/reduce_task.cc" "src/mapred/CMakeFiles/sponge_mapred.dir/reduce_task.cc.o" "gcc" "src/mapred/CMakeFiles/sponge_mapred.dir/reduce_task.cc.o.d"
  "/root/repo/src/mapred/spill.cc" "src/mapred/CMakeFiles/sponge_mapred.dir/spill.cc.o" "gcc" "src/mapred/CMakeFiles/sponge_mapred.dir/spill.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sponge/CMakeFiles/sponge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sponge_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sponge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sponge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
