# Empty compiler generated dependencies file for sponge_mapred.
# This may be replaced when dependencies are built.
