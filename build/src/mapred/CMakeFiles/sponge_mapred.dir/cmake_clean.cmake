file(REMOVE_RECURSE
  "CMakeFiles/sponge_mapred.dir/job.cc.o"
  "CMakeFiles/sponge_mapred.dir/job.cc.o.d"
  "CMakeFiles/sponge_mapred.dir/job_tracker.cc.o"
  "CMakeFiles/sponge_mapred.dir/job_tracker.cc.o.d"
  "CMakeFiles/sponge_mapred.dir/map_task.cc.o"
  "CMakeFiles/sponge_mapred.dir/map_task.cc.o.d"
  "CMakeFiles/sponge_mapred.dir/merger.cc.o"
  "CMakeFiles/sponge_mapred.dir/merger.cc.o.d"
  "CMakeFiles/sponge_mapred.dir/record.cc.o"
  "CMakeFiles/sponge_mapred.dir/record.cc.o.d"
  "CMakeFiles/sponge_mapred.dir/reduce_task.cc.o"
  "CMakeFiles/sponge_mapred.dir/reduce_task.cc.o.d"
  "CMakeFiles/sponge_mapred.dir/spill.cc.o"
  "CMakeFiles/sponge_mapred.dir/spill.cc.o.d"
  "libsponge_mapred.a"
  "libsponge_mapred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sponge_mapred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
