file(REMOVE_RECURSE
  "libsponge_mapred.a"
)
