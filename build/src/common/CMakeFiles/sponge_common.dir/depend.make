# Empty dependencies file for sponge_common.
# This may be replaced when dependencies are built.
