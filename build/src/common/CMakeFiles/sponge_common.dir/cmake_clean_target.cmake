file(REMOVE_RECURSE
  "libsponge_common.a"
)
