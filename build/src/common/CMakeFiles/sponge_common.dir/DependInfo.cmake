
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/byte_runs.cc" "src/common/CMakeFiles/sponge_common.dir/byte_runs.cc.o" "gcc" "src/common/CMakeFiles/sponge_common.dir/byte_runs.cc.o.d"
  "/root/repo/src/common/crypto.cc" "src/common/CMakeFiles/sponge_common.dir/crypto.cc.o" "gcc" "src/common/CMakeFiles/sponge_common.dir/crypto.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/common/CMakeFiles/sponge_common.dir/logging.cc.o" "gcc" "src/common/CMakeFiles/sponge_common.dir/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/common/CMakeFiles/sponge_common.dir/random.cc.o" "gcc" "src/common/CMakeFiles/sponge_common.dir/random.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/common/CMakeFiles/sponge_common.dir/stats.cc.o" "gcc" "src/common/CMakeFiles/sponge_common.dir/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/common/CMakeFiles/sponge_common.dir/status.cc.o" "gcc" "src/common/CMakeFiles/sponge_common.dir/status.cc.o.d"
  "/root/repo/src/common/table.cc" "src/common/CMakeFiles/sponge_common.dir/table.cc.o" "gcc" "src/common/CMakeFiles/sponge_common.dir/table.cc.o.d"
  "/root/repo/src/common/units.cc" "src/common/CMakeFiles/sponge_common.dir/units.cc.o" "gcc" "src/common/CMakeFiles/sponge_common.dir/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
