file(REMOVE_RECURSE
  "CMakeFiles/sponge_common.dir/byte_runs.cc.o"
  "CMakeFiles/sponge_common.dir/byte_runs.cc.o.d"
  "CMakeFiles/sponge_common.dir/crypto.cc.o"
  "CMakeFiles/sponge_common.dir/crypto.cc.o.d"
  "CMakeFiles/sponge_common.dir/logging.cc.o"
  "CMakeFiles/sponge_common.dir/logging.cc.o.d"
  "CMakeFiles/sponge_common.dir/random.cc.o"
  "CMakeFiles/sponge_common.dir/random.cc.o.d"
  "CMakeFiles/sponge_common.dir/stats.cc.o"
  "CMakeFiles/sponge_common.dir/stats.cc.o.d"
  "CMakeFiles/sponge_common.dir/status.cc.o"
  "CMakeFiles/sponge_common.dir/status.cc.o.d"
  "CMakeFiles/sponge_common.dir/table.cc.o"
  "CMakeFiles/sponge_common.dir/table.cc.o.d"
  "CMakeFiles/sponge_common.dir/units.cc.o"
  "CMakeFiles/sponge_common.dir/units.cc.o.d"
  "libsponge_common.a"
  "libsponge_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sponge_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
