file(REMOVE_RECURSE
  "CMakeFiles/sponge_pig.dir/data_bag.cc.o"
  "CMakeFiles/sponge_pig.dir/data_bag.cc.o.d"
  "CMakeFiles/sponge_pig.dir/memory_manager.cc.o"
  "CMakeFiles/sponge_pig.dir/memory_manager.cc.o.d"
  "CMakeFiles/sponge_pig.dir/query.cc.o"
  "CMakeFiles/sponge_pig.dir/query.cc.o.d"
  "CMakeFiles/sponge_pig.dir/udfs.cc.o"
  "CMakeFiles/sponge_pig.dir/udfs.cc.o.d"
  "libsponge_pig.a"
  "libsponge_pig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sponge_pig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
