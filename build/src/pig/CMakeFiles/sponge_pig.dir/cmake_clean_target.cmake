file(REMOVE_RECURSE
  "libsponge_pig.a"
)
