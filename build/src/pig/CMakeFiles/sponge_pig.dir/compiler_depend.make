# Empty compiler generated dependencies file for sponge_pig.
# This may be replaced when dependencies are built.
