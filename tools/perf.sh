#!/usr/bin/env bash
# Self-performance gate (DESIGN.md "Performance engineering"): builds the
# data plane once, runs bench_selfperf's fixed suite twice, and proves the
# simulated outcomes are byte-identical between the runs (sim summary,
# metrics snapshot, trace). The second run's wall-clock report is written
# to BENCH_selfperf.json, with the first run embedded as the baseline so
# run-to-run wall noise is visible in the ratio.
#
# (The old dual-build mode — comparing against the retired
# -DSPONGEFILES_LEGACY_DATAPLANE baseline — is gone; the zero-copy plane
# is the only implementation, and this gate keeps it deterministic.)
#
# Usage: tools/perf.sh [--chaos-seeds=N] [--out=PATH] [--keep-work]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="$repo/BENCH_selfperf.json"
seeds=5
keep_work=0
for arg in "$@"; do
  case "$arg" in
    --chaos-seeds=*) seeds="${arg#*=}" ;;
    --out=*) out="${arg#*=}" ;;
    --keep-work) keep_work=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

build="$repo/build-perf"
work="$(mktemp -d)"
trap '[ "$keep_work" = 1 ] && echo "work dir kept: $work" || rm -rf "$work"' EXIT

echo "== building ($build)"
cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$build" --target bench_selfperf -j "$(nproc)"

echo
echo "== run 1 (baseline)"
"$build/bench/bench_selfperf" --chaos-seeds="$seeds" \
  --out="$work/run1.json" --sim-out="$work/run1_sim.json" \
  --metrics-out="$work/run1_metrics.json" \
  --trace-out="$work/run1_trace.json"

echo
echo "== run 2 (measured)"
"$build/bench/bench_selfperf" --chaos-seeds="$seeds" \
  --baseline="$work/run1.json" --out="$out" \
  --sim-out="$work/run2_sim.json" \
  --metrics-out="$work/run2_metrics.json" \
  --trace-out="$work/run2_trace.json"

echo
echo "== determinism gate: simulated outcomes must be byte-identical"
for pair in sim metrics trace; do
  if cmp -s "$work/run1_${pair}.json" "$work/run2_${pair}.json"; then
    echo "  $pair snapshot: identical"
  else
    echo "  $pair snapshot: DIFFERS — a run-to-run nondeterminism crept into the simulation" >&2
    diff "$work/run1_${pair}.json" "$work/run2_${pair}.json" | head -40 >&2 || true
    exit 1
  fi
done

echo
echo "report: $out"
grep -E '"(total_wall_ms|baseline_total_wall_ms|speedup|events_per_sec|peak_rss_bytes)"' "$out" || true
echo "self-perf gate passed"
