#!/usr/bin/env bash
# Self-performance gate (DESIGN.md "Performance engineering"): builds the
# zero-copy fast path and the -DSPONGEFILES_LEGACY_DATAPLANE baseline,
# runs bench_selfperf's fixed suite on both, proves the simulated outcomes
# are byte-identical (sim summary, metrics snapshot, trace), and writes
# BENCH_selfperf.json containing both wall-clock totals and the speedup.
#
# Usage: tools/perf.sh [--chaos-seeds=N] [--out=PATH] [--keep-work]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="$repo/BENCH_selfperf.json"
seeds=5
keep_work=0
for arg in "$@"; do
  case "$arg" in
    --chaos-seeds=*) seeds="${arg#*=}" ;;
    --out=*) out="${arg#*=}" ;;
    --keep-work) keep_work=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

fast_build="$repo/build-perf"
legacy_build="$repo/build-perf-legacy"
work="$(mktemp -d)"
trap '[ "$keep_work" = 1 ] && echo "work dir kept: $work" || rm -rf "$work"' EXIT

echo "== building fast path ($fast_build)"
cmake -B "$fast_build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPONGEFILES_LEGACY_DATAPLANE=OFF >/dev/null
cmake --build "$fast_build" --target bench_selfperf -j "$(nproc)"

echo "== building legacy baseline ($legacy_build)"
cmake -B "$legacy_build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPONGEFILES_LEGACY_DATAPLANE=ON >/dev/null
cmake --build "$legacy_build" --target bench_selfperf -j "$(nproc)"

echo
echo "== legacy baseline run"
"$legacy_build/bench/bench_selfperf" --chaos-seeds="$seeds" \
  --out="$work/legacy.json" --sim-out="$work/legacy_sim.json" \
  --metrics-out="$work/legacy_metrics.json" \
  --trace-out="$work/legacy_trace.json"

echo
echo "== fast-path run"
"$fast_build/bench/bench_selfperf" --chaos-seeds="$seeds" \
  --baseline="$work/legacy.json" --out="$out" \
  --sim-out="$work/fast_sim.json" \
  --metrics-out="$work/fast_metrics.json" \
  --trace-out="$work/fast_trace.json"

echo
echo "== determinism gate: simulated outcomes must be byte-identical"
for pair in sim metrics trace; do
  if cmp -s "$work/legacy_${pair}.json" "$work/fast_${pair}.json"; then
    echo "  $pair snapshot: identical"
  else
    echo "  $pair snapshot: DIFFERS — the fast path changed a simulated outcome" >&2
    diff "$work/legacy_${pair}.json" "$work/fast_${pair}.json" | head -40 >&2 || true
    exit 1
  fi
done

echo
echo "report: $out"
grep -E '"(total_wall_ms|baseline_total_wall_ms|speedup|events_per_sec|peak_rss_bytes)"' "$out" || true
echo "self-perf gate passed"
