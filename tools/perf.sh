#!/usr/bin/env bash
# Self-performance gate (DESIGN.md "Performance engineering" and §13
# "Parallel engine"). Four gates on one RelWithDebInfo build:
#
#   1. Run-to-run determinism: bench_selfperf's fixed suite twice on the
#      legacy engine; sim summary, metrics snapshot, and trace must be
#      byte-identical between the runs.
#   2. Seq-vs-par differential: the suite once on the sharded serial
#      driver (--engine=seq) and once on the thread pool (--engine=par).
#      All three simulated snapshots must be byte-identical between the
#      drivers — the tentpole invariant. The suite includes the seeded
#      chaos sweep, so gray-failure schedules are covered too.
#   3. Datacenter differential + speedup: bench_datacenter (16 racks x 32
#      nodes) under seq and par; --sim-out must match byte for byte, and
#      the wall-clock ratio is recorded. On multi-core hosts the par run
#      must be at least 2x the seq run; on a single core the ratio is
#      recorded honestly (alongside host_cores) but not enforced.
#   4. Pool gate (DESIGN.md §14): fig5_contention once on the tiered
#      size-classed pool and once on --pool=flat (the pre-tiered global
#      lock). The tiered pool's summed job runtime — a simulated,
#      deterministic quantity — must beat the flat baseline; both numbers
#      land in the report.
#
# BENCH_selfperf.json is written by the --engine=par suite run with the
# seq run as its baseline, so the report's "speedup" field *is* the
# parallel speedup and the per-scenario per_lane_events are populated; the
# datacenter numbers are spliced in at the end.
#
# Usage: tools/perf.sh [--chaos-seeds=N] [--out=PATH] [--keep-work]
#                      [--dc-jobs=N] [--threads=N]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="$repo/BENCH_selfperf.json"
seeds=5
keep_work=0
dc_jobs=400
threads=0
for arg in "$@"; do
  case "$arg" in
    --chaos-seeds=*) seeds="${arg#*=}" ;;
    --out=*) out="${arg#*=}" ;;
    --keep-work) keep_work=1 ;;
    --dc-jobs=*) dc_jobs="${arg#*=}" ;;
    --threads=*) threads="${arg#*=}" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

build="$repo/build-perf"
work="$(mktemp -d)"
trap '[ "$keep_work" = 1 ] && echo "work dir kept: $work" || rm -rf "$work"' EXIT

threads_flag=""
if [ "$threads" != 0 ]; then threads_flag="--threads=$threads"; fi

echo "== building ($build)"
cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$build" --target bench_selfperf bench_datacenter -j "$(nproc)"

echo
echo "== gate 1: run-to-run determinism (legacy engine)"
"$build/bench/bench_selfperf" --chaos-seeds="$seeds" \
  --out="$work/run1.json" --sim-out="$work/run1_sim.json" \
  --metrics-out="$work/run1_metrics.json" \
  --trace-out="$work/run1_trace.json"
echo
"$build/bench/bench_selfperf" --chaos-seeds="$seeds" \
  --baseline="$work/run1.json" --out="$work/run2.json" \
  --sim-out="$work/run2_sim.json" \
  --metrics-out="$work/run2_metrics.json" \
  --trace-out="$work/run2_trace.json"
echo
for pair in sim metrics trace; do
  if cmp -s "$work/run1_${pair}.json" "$work/run2_${pair}.json"; then
    echo "  $pair snapshot: identical"
  else
    echo "  $pair snapshot: DIFFERS — a run-to-run nondeterminism crept into the simulation" >&2
    diff "$work/run1_${pair}.json" "$work/run2_${pair}.json" | head -40 >&2 || true
    exit 1
  fi
done

echo
echo "== gate 2: seq-vs-par differential (sharded engine, incl. chaos sweep)"
"$build/bench/bench_selfperf" --chaos-seeds="$seeds" --engine=seq \
  --out="$work/seq.json" --sim-out="$work/seq_sim.json" \
  --metrics-out="$work/seq_metrics.json" \
  --trace-out="$work/seq_trace.json"
echo
"$build/bench/bench_selfperf" --chaos-seeds="$seeds" --engine=par \
  $threads_flag \
  --baseline="$work/seq.json" --out="$out" \
  --sim-out="$work/par_sim.json" \
  --metrics-out="$work/par_metrics.json" \
  --trace-out="$work/par_trace.json"
echo
for pair in sim metrics trace; do
  if cmp -s "$work/seq_${pair}.json" "$work/par_${pair}.json"; then
    echo "  $pair snapshot: seq == par"
  else
    echo "  $pair snapshot: seq and par DIFFER — the threaded driver diverged from the reference schedule" >&2
    diff "$work/seq_${pair}.json" "$work/par_${pair}.json" | head -40 >&2 || true
    exit 1
  fi
done

echo
echo "== gate 3: datacenter differential + parallel speedup (512 nodes / 16 racks)"
"$build/bench/bench_datacenter" --jobs="$dc_jobs" --engine=seq \
  --out="$work/dc_seq.json" --sim-out="$work/dc_seq_sim.json"
"$build/bench/bench_datacenter" --jobs="$dc_jobs" --engine=par \
  $threads_flag \
  --out="$work/dc_par.json" --sim-out="$work/dc_par_sim.json"
if cmp -s "$work/dc_seq_sim.json" "$work/dc_par_sim.json"; then
  echo "  datacenter sim snapshot: seq == par"
else
  echo "  datacenter sim snapshot: seq and par DIFFER" >&2
  diff "$work/dc_seq_sim.json" "$work/dc_par_sim.json" | head -40 >&2 || true
  exit 1
fi

extract() { grep -o "\"$2\": [0-9.]*" "$1" | head -1 | awk '{print $2}'; }

echo
echo "== gate 4: tiered pool vs flat baseline (fig5_contention)"
"$build/bench/bench_selfperf" --scenarios=fig5_contention --pool=flat \
  --out="$work/pool_flat.json" --sim-out="$work/pool_flat_sim.json"
"$build/bench/bench_selfperf" --scenarios=fig5_contention --pool=tiered \
  --out="$work/pool_tiered.json" --sim-out="$work/pool_tiered_sim.json"
pool_flat_us="$(extract "$work/pool_flat_sim.json" job_runtime_us)"
pool_tiered_us="$(extract "$work/pool_tiered_sim.json" job_runtime_us)"
echo "  job runtime: flat ${pool_flat_us} us, tiered ${pool_tiered_us} us"
if awk "BEGIN{exit !($pool_tiered_us < $pool_flat_us)}"; then
  echo "  pool gate: tiered beats the flat global-lock baseline"
else
  echo "  pool gate: tiered pool is NOT faster than --pool=flat" >&2
  exit 1
fi

dc_seq_wall="$(extract "$work/dc_seq.json" wall_ms)"
dc_par_wall="$(extract "$work/dc_par.json" wall_ms)"
cores="$(extract "$work/dc_par.json" host_cores)"
dc_speedup="$(awk "BEGIN{printf \"%.3f\", $dc_seq_wall / $dc_par_wall}")"
echo "  datacenter wall: seq ${dc_seq_wall} ms, par ${dc_par_wall} ms -> ${dc_speedup}x on ${cores} core(s)"

# Splice the datacenter numbers into the report (drop the closing brace,
# append the extra keys, close again).
tmp="$(mktemp)"
sed '$d' "$out" > "$tmp"
{
  cat "$tmp"
  echo ",
  \"datacenter_seq_wall_ms\": $dc_seq_wall,
  \"datacenter_par_wall_ms\": $dc_par_wall,
  \"datacenter_parallel_speedup\": $dc_speedup,
  \"datacenter_jobs\": $dc_jobs,
  \"pool_flat_job_runtime_us\": $pool_flat_us,
  \"pool_tiered_job_runtime_us\": $pool_tiered_us
}"
} > "$out"
rm -f "$tmp"

if [ "$cores" -gt 1 ]; then
  if awk "BEGIN{exit !($dc_speedup >= 2.0)}"; then
    echo "  parallel speedup gate: ${dc_speedup}x >= 2x"
  else
    echo "  parallel speedup gate: ${dc_speedup}x < 2x on a ${cores}-core host" >&2
    exit 1
  fi
else
  echo "  single-core host: speedup recorded, 2x gate not applicable"
fi

echo
echo "report: $out"
grep -E '"(engine|threads|host_cores|total_wall_ms|baseline_total_wall_ms|speedup|datacenter_parallel_speedup|events_per_sec|peak_rss_bytes)"' "$out" || true
echo "self-perf gate passed"
