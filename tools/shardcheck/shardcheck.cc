// shardcheck: the dynamic half of the shard-safety analysis (see DESIGN.md
// "Static analysis"). Runs a workload shape under the engine's instrumented
// access-set mode (Engine::RecordAccessSets) and reports every event pair
// the planned parallel engine's lookahead rule could interleave that shares
// non-sanctioned state — i.e. the data races the parallel port would have,
// measured before it exists.
//
// Shapes:
//   chaos       the chaos integration test's testbed (8 nodes / 2 racks,
//               gray failures + crashes + replication + speculation) over a
//               seed sweep — the densest fault-path coverage per second.
//   datacenter  the 512-node bench_datacenter topology (16 racks x 32
//               nodes) replaying trace-synthesized spill tasks through the
//               full allocation cascade with a mid-run tracker-shard
//               outage.
//   recovery    bench_recovery's write / crash / read-back-with-failover
//               loop: fail-stop crashes land between spill and read-back,
//               so repair and failover run under the recorder.
//
// Usage: shardcheck --shape=chaos|datacenter|recovery [--out=FILE]
//                   [--seeds=N] [--jobs=N] [--engine=legacy|seq]
//
// --engine=seq reruns the shape on the *sharded* engine (rack projection,
// serial reference driver) with the recorder in lane mode: every access is
// stamped with its lane and window, and any same-window cross-lane
// conflict the sequential census did not predict fails the run. The
// threaded driver is deliberately not an option here — the recorder is
// single-threaded (the engine CHECKs the combination) and the par driver
// executes the identical schedule anyway; its host-level synchronization
// is certified by tools/check.sh --tsan and the seq-vs-par byte gates.
//
// Output: a deterministic JSON census (events, accesses, split points,
// sanctioned global objects with their reasons, and the conflict list).
// Exit status: 0 when no unexplained conflicts, 1 when any, 2 on usage
// errors. tools/shardcheck.sh runs all shapes under both engines and
// merges the artifacts.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "common/random.h"
#include "mapred/job.h"
#include "sim/access.h"
#include "sim/parallel.h"
#include "sponge/failure.h"
#include "sponge/sponge_file.h"
#include "workload/testbed.h"
#include "workload/trace.h"

using namespace spongefiles;

namespace {

struct Options {
  std::string shape;
  std::string out;
  int seeds = 3;     // chaos: number of injected fault schedules
  size_t jobs = 96;  // datacenter / recovery: replayed trace jobs
  std::string engine = "legacy";  // legacy | seq (see header comment)
};

// Set from --engine before any shape runs.
bool g_sharded = false;

// Rack-projection plan for a raw-topology shape (the testbed shapes go
// through TestbedConfig instead). Lookahead = the minimum cross-rack
// message latency.
sim::ShardPlan PlanFor(const cluster::TopologyConfig& topo,
                       const cluster::ClusterConfig& cc) {
  std::vector<size_t> rack_of;
  rack_of.reserve(topo.num_racks * topo.nodes_per_rack);
  for (size_t i = 0; i < topo.num_racks * topo.nodes_per_rack; ++i) {
    rack_of.push_back(i / topo.nodes_per_rack);
  }
  return sim::RackShardPlan(rack_of, topo.num_racks,
                            cc.network.latency + cc.network.cross_rack_latency);
}

// One instrumented run's result: the census JSON plus the go/no-go count.
struct RunReport {
  std::string name;
  std::string census_json;
  size_t unexplained = 0;
  uint64_t events = 0;
};

std::vector<size_t> RackTable(cluster::Cluster& cluster) {
  std::vector<size_t> racks(cluster.size());
  for (size_t n = 0; n < cluster.size(); ++n) racks[n] = cluster.rack_of(n);
  return racks;
}

// ---- chaos shape ----------------------------------------------------------
// Mirrors tests/sponge_chaos_test.cc RunChaosJob: small two-rack testbed,
// tiny pools forcing the remote path, a randomized gray-failure schedule,
// then a settle + GC sweep so the reclamation paths run instrumented too.
RunReport RunChaosShape(uint64_t seed, bool inject) {
  workload::TestbedConfig bed_config;
  bed_config.num_nodes = 8;
  bed_config.nodes_per_rack = 4;
  bed_config.oversubscription = 4.0;
  bed_config.sponge.allow_cross_rack = true;
  bed_config.sponge_memory = MiB(64);
  bed_config.sponge.rpc.hedge_reads = true;
  bed_config.sponge.replication.enabled = true;
  if (g_sharded) {
    bed_config.shard_projection = workload::ShardProjection::kRack;
  }
  workload::Testbed bed(bed_config);

  sim::AccessRecorder recorder;
  recorder.SetRacks(RackTable(bed.cluster()));
  bed.engine().RecordAccessSets(&recorder);

  workload::NumbersDatasetConfig data;
  data.count = 50001;
  workload::NumbersDataset numbers(&bed.dfs(), "nums", data);

  const SimTime fault_horizon = Seconds(90);
  sponge::FailureInjector injector(&bed.env(), seed);
  if (inject) {
    sponge::ChaosOptions chaos;
    chaos.start = Seconds(2);
    chaos.horizon = fault_horizon;
    chaos.num_faults = 10;
    chaos.fail_stop_crashes = true;
    injector.ScheduleChaos(chaos);
  }

  auto job = workload::MakeMedianJob(&numbers, mapred::SpillMode::kSponge);
  job.speculation.enabled = true;
  job.speculation.check_period = Seconds(1);
  job.speculation.min_attempt_age = Seconds(3);
  auto result = bed.RunJob(std::move(job));
  if (!result.ok()) {
    std::fprintf(stderr, "chaos seed %llu: job failed: %s\n",
                 static_cast<unsigned long long>(seed),
                 result.status().ToString().c_str());
  }

  // Let faults fire and clear, then sweep every server under the recorder.
  SimTime settle = std::max(bed.engine().now(), fault_horizon) + Seconds(10);
  bed.engine().RunUntil(settle);
  auto sweep = [](workload::Testbed* tb) -> sim::Task<> {
    for (size_t n = 0; n < tb->cluster().size(); ++n) {
      (void)co_await tb->env().server(n).GcSweep();
    }
  };
  bed.engine().Spawn(sweep(&bed));
  bed.engine().RunUntil(bed.engine().now() + Seconds(10));

  recorder.Finish();
  bed.engine().RecordAccessSets(nullptr);
  RunReport report;
  report.name =
      (inject ? "chaos-seed" : "fault-free-seed") + std::to_string(seed);
  report.census_json = recorder.CensusJson();
  report.unexplained = recorder.unexplained_conflicts();
  report.events = recorder.census().events;
  return report;
}

// ---- datacenter shape -----------------------------------------------------
// bench_datacenter's 512-node topology and replay loop (trace-synthesized
// per-task spill demands, jobs homed per rack, mid-run tracker-shard
// outage), at a job count sized for a check rather than a benchmark.
sim::Task<> RunSpillTask(sponge::SpongeEnv* env, sim::Semaphore* slot,
                         size_t* done, std::string name, size_t node,
                         uint64_t bytes) {
  co_await slot->Acquire();
  sponge::TaskContext task = env->StartTask(node);
  sponge::SpongeFile file(env, &task, std::move(name));
  ByteRuns data;
  data.AppendZeros(bytes);
  Status status = co_await file.Append(std::move(data));
  if (status.ok()) status = co_await file.Close();
  co_await file.Delete();
  env->EndTask(task);
  slot->Release();
  ++*done;
}

RunReport RunDatacenterShape(size_t num_jobs) {
  cluster::TopologyConfig topo;
  topo.num_racks = 16;
  topo.nodes_per_rack = 32;
  topo.oversubscription = 4.0;
  topo.node.sponge_memory = 8ull * 1024 * 1024;
  const size_t num_nodes = topo.num_racks * topo.nodes_per_rack;

  sim::Engine engine;
  cluster::ClusterConfig cc = cluster::MakeClusterConfig(topo);
  std::unique_ptr<sim::Sharding> sharding;
  if (g_sharded) {
    sharding = std::make_unique<sim::Sharding>(&engine, PlanFor(topo, cc));
  }
  cluster::Cluster cluster(&engine, cc);
  cluster::Dfs dfs(&cluster);
  sponge::SpongeConfig sponge_config;
  sponge_config.allow_cross_rack = true;
  sponge::SpongeEnv env(&cluster, &dfs, sponge_config);

  sim::AccessRecorder recorder;
  recorder.SetRacks(RackTable(cluster));
  engine.RecordAccessSets(&recorder);

  env.tracker().Start();
  env.StartServices();

  workload::TraceConfig trace_config;
  trace_config.num_jobs = num_jobs;
  trace_config.seed = 14;
  std::vector<workload::TraceJob> jobs =
      workload::TraceSynthesizer(trace_config).Generate();
  Rng placement_rng(14 * 2654435761ull + 1);

  sponge::FailureInjector injector(&env, 14);
  injector.ScheduleTrackerShardOutage(topo.num_racks / 2, Seconds(25),
                                      Seconds(30));

  std::vector<std::unique_ptr<sim::Semaphore>> slots;
  slots.reserve(num_nodes);
  for (size_t n = 0; n < num_nodes; ++n) {
    slots.push_back(std::make_unique<sim::Semaphore>(&engine, 2));
  }

  size_t planned = 0, done = 0;
  for (size_t j = 0; j < jobs.size(); ++j) {
    size_t home_rack = placement_rng.Uniform(topo.num_racks);
    SimTime arrival = Seconds(2) + static_cast<SimTime>(placement_rng.Uniform(
                                       static_cast<uint64_t>(Seconds(60))));
    size_t num_tasks = std::min<size_t>(jobs[j].reduce_input_bytes.size(), 50);
    for (size_t t = 0; t < num_tasks; ++t) {
      uint64_t bytes =
          std::clamp<uint64_t>(jobs[j].reduce_input_bytes[t] / 8, 256 * 1024,
                               32ull * 1024 * 1024);
      size_t node = home_rack * topo.nodes_per_rack + (t % topo.nodes_per_rack);
      engine.SpawnAt(arrival,
                     RunSpillTask(&env, slots[node].get(), &done,
                                  "dc.j" + std::to_string(j) + ".t" +
                                      std::to_string(t),
                                  node, bytes));
      ++planned;
    }
  }

  const SimTime deadline = Minutes(24 * 60.0);
  while (done < planned && engine.now() < deadline) {
    engine.RunUntil(engine.now() + Seconds(10));
  }
  if (done < planned) {
    std::fprintf(stderr, "datacenter: %zu of %zu tasks unfinished\n",
                 planned - done, planned);
  }

  recorder.Finish();
  engine.RecordAccessSets(nullptr);
  RunReport report;
  report.name = "datacenter-512n-" + std::to_string(num_jobs) + "j";
  report.census_json = recorder.CensusJson();
  report.unexplained = recorder.unexplained_conflicts();
  report.events = recorder.census().events;
  return report;
}

// ---- recovery shape -------------------------------------------------------
// bench_recovery's loop at check scale: tasks spill, sit exposed, read
// back with failover; fail-stop crashes land inside the exposure window so
// replica reads and the repair service run instrumented.
sim::Task<> RunRecoveryTask(sim::Engine* engine, sponge::SpongeEnv* env,
                            sim::Semaphore* slot, size_t* done, size_t job,
                            size_t node, uint64_t bytes) {
  co_await slot->Acquire();
  for (int attempt = 1; attempt <= 4; ++attempt) {
    sponge::TaskContext task = env->StartTask(node);
    sponge::SpongeFile file(env, &task,
                            "rc.j" + std::to_string(job) + ".a" +
                                std::to_string(attempt));
    ByteRuns payload;
    payload.AppendZeros(bytes);
    Status status = co_await file.Append(std::move(payload));
    if (status.ok()) status = co_await file.Close();
    if (status.ok()) co_await engine->Delay(Seconds(20));
    while (status.ok()) {
      Result<ByteRuns> chunk = co_await file.ReadNext();
      if (!chunk.ok()) {
        status = chunk.status();
        break;
      }
      if (chunk->empty()) break;
    }
    co_await file.Delete();
    env->EndTask(task);
    if (status.ok()) break;
  }
  slot->Release();
  ++*done;
}

RunReport RunRecoveryShape(size_t num_jobs) {
  cluster::TopologyConfig topo;
  topo.num_racks = 2;
  topo.nodes_per_rack = 8;
  topo.oversubscription = 4.0;
  topo.node.sponge_memory = 8ull * 1024 * 1024;
  const size_t num_nodes = topo.num_racks * topo.nodes_per_rack;

  sim::Engine engine;
  cluster::ClusterConfig cc = cluster::MakeClusterConfig(topo);
  std::unique_ptr<sim::Sharding> sharding;
  if (g_sharded) {
    sharding = std::make_unique<sim::Sharding>(&engine, PlanFor(topo, cc));
  }
  cluster::Cluster cluster(&engine, cc);
  cluster::Dfs dfs(&cluster);
  sponge::SpongeConfig sponge_config;
  sponge_config.allow_cross_rack = true;
  sponge_config.replication.enabled = true;
  sponge_config.replication.min_free_fraction = 0.05;
  sponge::SpongeEnv env(&cluster, &dfs, sponge_config);

  sim::AccessRecorder recorder;
  recorder.SetRacks(RackTable(cluster));
  engine.RecordAccessSets(&recorder);

  env.tracker().Start();
  env.StartServices();

  sponge::FailureInjector injector(&env, 7);
  for (size_t i = 0; i < 3; ++i) {
    injector.ScheduleCrash(topo.nodes_per_rack + i, Seconds(30), Seconds(40));
  }

  std::vector<std::unique_ptr<sim::Semaphore>> slots;
  slots.reserve(num_nodes);
  for (size_t n = 0; n < num_nodes; ++n) {
    slots.push_back(std::make_unique<sim::Semaphore>(&engine, 2));
  }

  Rng plan_rng(7);
  size_t done = 0;
  for (size_t j = 0; j < num_jobs; ++j) {
    uint64_t bytes = 256 * 1024 + plan_rng.Uniform(4ull * 1024 * 1024);
    SimTime arrival = Seconds(2) + static_cast<SimTime>(
                                       plan_rng.Uniform(
                                           static_cast<uint64_t>(Seconds(20))));
    engine.SpawnAt(arrival, RunRecoveryTask(&engine, &env,
                                            slots[j % num_nodes].get(), &done,
                                            j, j % num_nodes, bytes));
  }

  const SimTime deadline = Minutes(60.0);
  while (done < num_jobs && engine.now() < deadline) {
    engine.RunUntil(engine.now() + Seconds(10));
  }
  if (done < num_jobs) {
    std::fprintf(stderr, "recovery: %zu of %zu tasks unfinished\n",
                 num_jobs - done, num_jobs);
  }

  recorder.Finish();
  engine.RecordAccessSets(nullptr);
  RunReport report;
  report.name = "recovery-16n-" + std::to_string(num_jobs) + "j";
  report.census_json = recorder.CensusJson();
  report.unexplained = recorder.unexplained_conflicts();
  report.events = recorder.census().events;
  return report;
}

// ---------------------------------------------------------------------------

// Indents an embedded census JSON so the merged artifact stays readable.
std::string Indent(const std::string& json, const std::string& pad) {
  std::string out;
  for (size_t i = 0; i < json.size(); ++i) {
    out.push_back(json[i]);
    if (json[i] == '\n' && i + 1 < json.size()) out += pad;
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

int Usage() {
  std::fprintf(stderr,
               "usage: shardcheck --shape=chaos|datacenter|recovery "
               "[--out=FILE] [--seeds=N] [--jobs=N] "
               "[--engine=legacy|seq]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    const char* v = nullptr;
    if ((v = value("--shape="))) {
      options.shape = v;
    } else if ((v = value("--out="))) {
      options.out = v;
    } else if ((v = value("--seeds="))) {
      options.seeds = std::atoi(v);
      if (options.seeds < 1) options.seeds = 1;
    } else if ((v = value("--jobs="))) {
      options.jobs = static_cast<size_t>(std::atoll(v));
      if (options.jobs < 1) options.jobs = 1;
    } else if ((v = value("--engine="))) {
      options.engine = v;
    } else {
      return Usage();
    }
  }
  if (options.engine == "par") {
    std::fprintf(stderr,
                 "shardcheck: --engine=par is not recordable (the access "
                 "recorder is single-threaded); use --engine=seq — the "
                 "threaded driver runs the identical schedule, and its host "
                 "synchronization is covered by tools/check.sh --tsan\n");
    return 2;
  }
  if (options.engine != "legacy" && options.engine != "seq") return Usage();
  g_sharded = options.engine == "seq";

  std::vector<RunReport> reports;
  if (options.shape == "chaos") {
    reports.push_back(RunChaosShape(0, /*inject=*/false));
    for (int seed = 1; seed <= options.seeds; ++seed) {
      reports.push_back(
          RunChaosShape(static_cast<uint64_t>(seed), /*inject=*/true));
    }
  } else if (options.shape == "datacenter") {
    reports.push_back(RunDatacenterShape(options.jobs));
  } else if (options.shape == "recovery") {
    reports.push_back(RunRecoveryShape(options.jobs));
  } else {
    return Usage();
  }

  size_t total_unexplained = 0;
  for (const RunReport& report : reports) total_unexplained += report.unexplained;

  std::string out = "{\n";
  out += "  \"shape\": \"" + options.shape + "\",\n";
  out += "  \"engine\": \"" + options.engine + "\",\n";
  out += "  \"unexplained_conflicts\": " + std::to_string(total_unexplained) +
         ",\n";
  out += "  \"runs\": [";
  for (size_t i = 0; i < reports.size(); ++i) {
    out += i == 0 ? "\n    {" : ",\n    {";
    out += "\n      \"name\": \"" + reports[i].name + "\",\n";
    out += "      \"census\": " + Indent(reports[i].census_json, "      ");
    out += "\n    }";
  }
  out += "\n  ]\n}\n";

  if (options.out.empty()) {
    std::fputs(out.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(options.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "shardcheck: cannot open %s\n",
                   options.out.c_str());
      return 2;
    }
    std::fputs(out.c_str(), f);
    std::fclose(f);
  }
  for (const RunReport& report : reports) {
    std::fprintf(stderr,
                 "shardcheck %-24s engine=%s events=%llu unexplained=%zu\n",
                 report.name.c_str(), options.engine.c_str(),
                 static_cast<unsigned long long>(report.events),
                 report.unexplained);
  }
  return total_unexplained == 0 ? 0 : 1;
}
