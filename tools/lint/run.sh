#!/usr/bin/env bash
# Builds spongelint and runs it over the repository (src, bench, tests).
# Usage: tools/lint/run.sh [build-dir] [extra spongelint args...]
#        (default build dir: build)
# Exits non-zero if any unwaived diagnostic remains; pass --verbose to also
# see waived findings with their reasons.
set -euo pipefail

repo="$(cd "$(dirname "$0")/../.." && pwd)"
build="$repo/build"
if [[ $# -gt 0 && "$1" != -* ]]; then
  build="$1"
  shift
fi

cmake -B "$build" -S "$repo" > /dev/null
cmake --build "$build" -j "$(nproc)" --target spongelint

"$build/tools/lint/spongelint" \
  --root "$repo" \
  --compile-commands "$build/compile_commands.json" \
  "$@" \
  src bench tests
